/**
 * @file
 * Unit tests for the numeric solvers: least squares, 1-D minimisation,
 * and differential evolution.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "solver/differential_evolution.h"
#include "solver/least_squares.h"
#include "solver/minimize.h"

namespace fsmoe::solver {
namespace {

TEST(LeastSquares, RecoversExactLine)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(0.5 + 2.0 * x);
    LineFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.intercept, 0.5, 1e-12);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LeastSquares, NoisyFitHasHighR2)
{
    std::vector<double> xs, ys;
    for (int i = 1; i <= 24; ++i) {
        double x = i * 1048576.0;
        xs.push_back(x);
        // +-0.5% deterministic wiggle.
        double noise = 1.0 + 0.005 * std::sin(i * 1.7);
        ys.push_back((0.3 + 2.2e-7 * x) * noise);
    }
    LineFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 2.2e-7, 2e-9);
    EXPECT_GT(fit.r2, 0.999);
}

TEST(LeastSquares, FlatDataGivesZeroSlopePerfectR2)
{
    std::vector<double> xs = {1, 2, 3};
    std::vector<double> ys = {4, 4, 4};
    LineFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(MinimizeHyperbolic, InteriorOptimum)
{
    // f(r) = 2r + 32/r -> r* = 4, f* = 16.
    Minimum m = minimizeHyperbolic(2.0, 32.0, 0.0);
    EXPECT_NEAR(m.x, 4.0, 1e-9);
    EXPECT_NEAR(m.value, 16.0, 1e-9);
}

TEST(MinimizeHyperbolic, BoundaryOptimumWhenIncreasing)
{
    Minimum m = minimizeHyperbolic(3.0, 0.0, 1.0, 1.0);
    EXPECT_NEAR(m.x, 1.0, 1e-12);
    EXPECT_NEAR(m.value, 4.0, 1e-12);
}

TEST(GoldenSection, FindsQuadraticMinimum)
{
    auto f = [](double x) { return (x - 2.7) * (x - 2.7) + 1.0; };
    Minimum m = goldenSection(f, 0.0, 10.0);
    EXPECT_NEAR(m.x, 2.7, 1e-4);
    EXPECT_NEAR(m.value, 1.0, 1e-8);
}

TEST(MinimizeConstrained, RespectsFeasibleRegion)
{
    auto f = [](double x) { return (x - 5.0) * (x - 5.0); };
    auto feasible = [](double x) { return x <= 3.0; };
    auto m = minimizeConstrained(f, feasible, 0.0, 10.0);
    ASSERT_TRUE(m.has_value());
    EXPECT_NEAR(m->x, 3.0, 0.05);
}

TEST(MinimizeConstrained, HandlesDisjointFeasibleSet)
{
    auto f = [](double x) { return x; };
    auto feasible = [](double x) {
        return (x >= 2.0 && x <= 3.0) || (x >= 7.0 && x <= 8.0);
    };
    auto m = minimizeConstrained(f, feasible, 0.0, 10.0);
    ASSERT_TRUE(m.has_value());
    EXPECT_NEAR(m->x, 2.0, 0.05);
}

TEST(MinimizeConstrained, ReturnsEmptyWhenInfeasible)
{
    auto f = [](double x) { return x; };
    auto feasible = [](double) { return false; };
    EXPECT_FALSE(minimizeConstrained(f, feasible, 0.0, 1.0).has_value());
}

TEST(DifferentialEvolution, SolvesSphere)
{
    auto sphere = [](const std::vector<double> &x) {
        double s = 0.0;
        for (double v : x)
            s += (v - 1.5) * (v - 1.5);
        return s;
    };
    std::vector<double> lo(4, -10.0), hi(4, 10.0);
    DeResult r = differentialEvolution(sphere, lo, hi);
    EXPECT_LT(r.value, 1e-3);
    for (double v : r.x)
        EXPECT_NEAR(v, 1.5, 0.05);
}

TEST(DifferentialEvolution, SolvesRosenbrock2D)
{
    auto rosen = [](const std::vector<double> &x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    std::vector<double> lo(2, -2.0), hi(2, 2.0);
    DeConfig cfg;
    cfg.maxGenerations = 400;
    DeResult r = differentialEvolution(rosen, lo, hi, cfg);
    EXPECT_LT(r.value, 1e-2);
}

TEST(DifferentialEvolution, RespectsBoxBounds)
{
    auto f = [](const std::vector<double> &x) { return -x[0]; };
    std::vector<double> lo = {0.0}, hi = {2.0};
    DeResult r = differentialEvolution(f, lo, hi);
    EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(DifferentialEvolution, DeterministicGivenSeed)
{
    auto f = [](const std::vector<double> &x) {
        return std::sin(x[0]) + x[0] * x[0] * 0.1;
    };
    std::vector<double> lo = {-5.0}, hi = {5.0};
    DeResult a = differentialEvolution(f, lo, hi);
    DeResult b = differentialEvolution(f, lo, hi);
    EXPECT_EQ(a.x[0], b.x[0]);
    EXPECT_EQ(a.value, b.value);
}

} // namespace
} // namespace fsmoe::solver
