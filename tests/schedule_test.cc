/**
 * @file
 * Tests for the six schedule generators: graph validity, per-op time
 * conservation, and the performance orderings the paper reports
 * (DS-MoE slowest; FSMoE at least as fast as its No-IIO ablation and
 * the Tutel baselines).
 */
#include <algorithm>

#include <gtest/gtest.h>

#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"
#include "model/models.h"
#include "sim/cluster.h"
#include "sim/simulator.h"

namespace fsmoe::core {
namespace {

ModelCost
smallModel(const sim::ClusterSpec &cluster, int layers = 3,
           int64_t embed = 2048)
{
    LayerShape shape;
    shape.batch = 2;
    shape.seqLen = 512;
    shape.embed = embed;
    shape.hidden = embed * 3;
    shape.numExperts = cluster.numNodes;
    ParallelConfig par = model::paperParallelism(cluster);
    ModelCost cost;
    cost.models = PerfModelSet::fromCluster(cluster);
    for (int i = 0; i < layers; ++i)
        cost.layers.push_back(makeLayerCost(cost.models, shape, par));
    return cost;
}

TEST(Schedules, FactoryCoversAllRegisteredSchedules)
{
    const auto names = ScheduleRegistry::instance().names();
    ASSERT_GE(names.size(), 6u);
    for (const std::string &name : names) {
        auto sched = Schedule::create(name);
        ASSERT_NE(sched, nullptr);
        EXPECT_EQ(sched->name(), name);
        // No parameters given, so the canonical spec is the bare name.
        EXPECT_EQ(sched->spec(), name);
    }
}

TEST(Schedules, GraphsAreValidAndSimulable)
{
    ModelCost cost = smallModel(sim::testbedB());
    for (const std::string &name : ScheduleRegistry::instance().names()) {
        auto sched = Schedule::create(name);
        sim::TaskGraph graph = sched->build(cost);
        EXPECT_FALSE(graph.empty()) << sched->name();
        sim::SimResult res = sim::Simulator{}.run(graph);
        EXPECT_GT(res.makespan, 0.0) << sched->name();
    }
}

TEST(Schedules, OpTimeConservation)
{
    // Total busy time per op class must not depend on the schedule for
    // fixed pipeline-degree-independent classes (attention, routing),
    // and AlltoAll busy time must scale with 2*r*alpha + volume terms.
    ModelCost cost = smallModel(sim::testbedB());
    auto ds = Schedule::create("ds-moe");
    auto fs = Schedule::create("fsmoe");
    sim::SimResult ds_res = ds->simulate(cost);
    sim::SimResult fs_res = fs->simulate(cost);
    EXPECT_NEAR(ds_res.timeOf(sim::OpType::Attention),
                fs_res.timeOf(sim::OpType::Attention), 1e-9);
    // DS-MoE's unfused kernels make its routing busy time strictly
    // larger (the modelled Table-6 kernel gap).
    EXPECT_GT(ds_res.timeOf(sim::OpType::Routing),
              fs_res.timeOf(sim::OpType::Routing));
    // Gradient traffic is conserved in total bytes; AllReduce busy
    // time can only grow via extra per-slice startups.
    EXPECT_GE(fs_res.timeOf(sim::OpType::GradAllReduce) + 1e-9,
              0.0);
}

TEST(Schedules, DsMoeIsSlowest)
{
    for (const sim::ClusterSpec &cluster :
         {sim::testbedA(), sim::testbedB()}) {
        ModelCost cost = smallModel(cluster);
        double ds = Schedule::create("ds-moe")->iterationTimeMs(cost);
        for (const char *spec :
             {"tutel", "tutel-improved", "lina", "no-iio", "fsmoe"}) {
            double t = Schedule::create(spec)->iterationTimeMs(cost);
            EXPECT_LE(t, ds * 1.001)
                << spec << " slower than DS-MoE on " << cluster.name;
        }
    }
}

TEST(Schedules, FsMoeBeatsOrMatchesTutel)
{
    for (const sim::ClusterSpec &cluster :
         {sim::testbedA(), sim::testbedB()}) {
        ModelCost cost = smallModel(cluster);
        double tutel = Schedule::create("tutel")->iterationTimeMs(cost);
        double fsmoe = Schedule::create("fsmoe")->iterationTimeMs(cost);
        EXPECT_LE(fsmoe, tutel * 1.001) << cluster.name;
    }
}

TEST(Schedules, IioOverlapHelps)
{
    // FSMoE with inter/intra overlap must not lose to its ablation.
    ModelCost cost = smallModel(sim::testbedA(), 3, 4096);
    double no_iio =
        Schedule::create("no-iio")->iterationTimeMs(cost);
    double full = Schedule::create("fsmoe")->iterationTimeMs(cost);
    EXPECT_LE(full, no_iio * 1.001);
}

TEST(Schedules, GradientOverlapHelpsTutel)
{
    ModelCost cost = smallModel(sim::testbedB(), 4);
    double plain = Schedule::create("tutel")->iterationTimeMs(cost);
    double improved =
        Schedule::create("tutel-improved")->iterationTimeMs(cost);
    EXPECT_LE(improved, plain * 1.001);
}

TEST(Schedules, SequentialMakespanEqualsSumOfDurations)
{
    ModelCost cost = smallModel(sim::testbedB(), 2);
    auto ds = Schedule::create("ds-moe");
    sim::TaskGraph graph = ds->build(cost);
    double sum = 0.0;
    for (const sim::Task &t : graph.tasks())
        sum += t.duration;
    sim::SimResult res = sim::Simulator{}.run(graph);
    EXPECT_NEAR(res.makespan, sum, 1e-6);
}

TEST(Schedules, FsMoeUsesMultipleStreams)
{
    ModelCost cost = smallModel(sim::testbedB(), 2);
    sim::TaskGraph graph = Schedule::create("fsmoe")->build(cost);
    EXPECT_GE(graph.numStreams(), 3);
    bool has_intra = false;
    for (const sim::Task &t : graph.tasks())
        has_intra |= t.link == sim::Link::IntraNode;
    EXPECT_TRUE(has_intra) << "FSMoE must use the intra-node channel";
}

TEST(Schedules, NoIioKeepsCommOnOneChannel)
{
    ModelCost cost = smallModel(sim::testbedB(), 2);
    sim::TaskGraph graph = Schedule::create("no-iio")->build(cost);
    for (const sim::Task &t : graph.tasks())
        EXPECT_NE(t.link, sim::Link::IntraNode)
            << "No-IIO must serialise " << t.name()
            << " on the inter-node channel";
}

TEST(Schedules, GradAllReduceBytesConservedAcrossSchedules)
{
    ModelCost cost = smallModel(sim::testbedB(), 3);
    const PerfModelSet &m = cost.models;
    double total_bytes = 0.0;
    for (const LayerCost &lc : cost.layers)
        total_bytes += lc.workload.gradBytes;

    for (const std::string &name : ScheduleRegistry::instance().names()) {
        sim::TaskGraph graph = Schedule::create(name)->build(cost);
        double gar_bytes = 0.0;
        for (const sim::Task &t : graph.tasks()) {
            if (t.op == sim::OpType::GradAllReduce)
                gar_bytes += std::max(0.0, m.allreduce.inverse(t.duration));
        }
        // Chunk-streamed AllReduces pay the startup term once, so the
        // naive per-task inversion undercounts by a few alpha-worths;
        // 5% covers every schedule's slicing policy.
        EXPECT_NEAR(gar_bytes, total_bytes, total_bytes * 0.05)
            << name;
    }
}

} // namespace
} // namespace fsmoe::core
