/**
 * @file
 * Cross-PR bit-exactness gate, in-tree: sweeping the demo grid must
 * serialise to the exact bytes of the blessed baseline
 * (bench/baselines/demo_grid.json). CI runs the same check through
 * fsmoe_diff; this test makes the guarantee enforceable from a bare
 * `ctest`, so a simulator or schedule change that moves any simulated
 * number fails locally before a PR is even drafted. Regenerate the
 * baseline deliberately (`fsmoe_sweep --out-json
 * bench/baselines/demo_grid.json`) when a change is *supposed* to move
 * the numbers.
 *
 * The baseline path is compiled in from CMake (FSMOE_DEMO_BASELINE),
 * so the test is independent of the ctest working directory.
 */
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "runtime/result_store.h"
#include "runtime/scenario.h"
#include "runtime/sweep_engine.h"

namespace fsmoe::runtime {
namespace {

TEST(DemoGridBaseline, SweepIsByteIdenticalToBlessedBaseline)
{
    std::ifstream in(FSMOE_DEMO_BASELINE, std::ios::binary);
    ASSERT_TRUE(in.good()) << "cannot open baseline " FSMOE_DEMO_BASELINE;
    const std::string baseline((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());

    SweepEngine engine({/*numThreads=*/1});
    const std::string current =
        toJson(toSweepResults(engine.run(demoGrid())));

    ASSERT_EQ(current.size(), baseline.size())
        << "demo-grid sweep serialised to a different length than the "
           "baseline — the optimization moved simulated numbers";
    EXPECT_TRUE(current == baseline)
        << "demo-grid sweep bytes differ from " FSMOE_DEMO_BASELINE;
}

} // namespace
} // namespace fsmoe::runtime
