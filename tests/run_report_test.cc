/**
 * @file
 * Unit tests for sim/run_report: link-utilization math on known
 * timelines and critical-path extraction (with hop reasons) on
 * hand-built DAGs, plus the per-link busy accounting the simulator
 * now attaches to every SimResult.
 */
#include <gtest/gtest.h>

#include "sim/run_report.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe::sim {
namespace {

TEST(RunReport, EmptyGraphYieldsEmptyReport)
{
    TaskGraph g;
    SimResult r = Simulator{}.run(g);
    RunReport report = analyzeRun(g, r);
    EXPECT_DOUBLE_EQ(report.makespanMs, 0.0);
    EXPECT_TRUE(report.criticalPath.empty());
    EXPECT_DOUBLE_EQ(report.criticalPathMs, 0.0);
    for (const LinkUsage &u : report.links) {
        EXPECT_DOUBLE_EQ(u.busyMs, 0.0);
        EXPECT_EQ(u.tasks, 0);
    }
    // The renderer must cope with the empty report too.
    EXPECT_FALSE(formatRunReport(g, report).empty());
}

TEST(RunReport, LinkUtilizationOnKnownTimeline)
{
    // compute busy 3 ms and inter-node busy 4 ms, concurrently:
    // makespan 4, compute util 0.75, inter-node util 1.0, intra idle.
    TaskGraph g;
    g.addTask("c", OpType::Experts, Link::Compute, 0, 3.0);
    g.addTask("n", OpType::AlltoAll, Link::InterNode, 1, 4.0);
    SimResult r = Simulator{}.run(g);
    ASSERT_DOUBLE_EQ(r.makespan, 4.0);
    EXPECT_DOUBLE_EQ(r.busyOf(Link::Compute), 3.0);
    EXPECT_DOUBLE_EQ(r.busyOf(Link::InterNode), 4.0);
    EXPECT_DOUBLE_EQ(r.busyOf(Link::IntraNode), 0.0);

    RunReport report = analyzeRun(g, r);
    const LinkUsage &compute =
        report.links[static_cast<size_t>(Link::Compute)];
    const LinkUsage &inter =
        report.links[static_cast<size_t>(Link::InterNode)];
    const LinkUsage &intra =
        report.links[static_cast<size_t>(Link::IntraNode)];
    EXPECT_DOUBLE_EQ(compute.busyMs, 3.0);
    EXPECT_DOUBLE_EQ(compute.utilization, 0.75);
    EXPECT_DOUBLE_EQ(compute.idleFraction, 0.25);
    EXPECT_EQ(compute.tasks, 1);
    EXPECT_DOUBLE_EQ(inter.utilization, 1.0);
    EXPECT_DOUBLE_EQ(inter.idleFraction, 0.0);
    EXPECT_DOUBLE_EQ(intra.utilization, 0.0);
    EXPECT_DOUBLE_EQ(intra.idleFraction, 1.0);
}

TEST(RunReport, DependencyChainIsTheCriticalPath)
{
    // a -> b -> c in sequence, plus a short independent task that is
    // never critical.
    TaskGraph g;
    TaskId a = g.addTask("a", OpType::Experts, Link::Compute, 0, 2.0);
    TaskId b = g.addTask("b", OpType::AlltoAll, Link::InterNode, 1, 3.0,
                         {a});
    TaskId c = g.addTask("c", OpType::AllGather, Link::IntraNode, 2, 4.0,
                         {b});
    g.addTask("idle", OpType::Experts, Link::Compute, 3, 0.5);
    SimResult r = Simulator{}.run(g);
    ASSERT_DOUBLE_EQ(r.makespan, 9.0);

    RunReport report = analyzeRun(g, r);
    ASSERT_EQ(report.criticalPath.size(), 3u);
    EXPECT_EQ(report.criticalPath[0].task, a);
    EXPECT_EQ(report.criticalPath[0].reason, HopReason::Root);
    EXPECT_EQ(report.criticalPath[1].task, b);
    EXPECT_EQ(report.criticalPath[1].reason, HopReason::Dependency);
    EXPECT_EQ(report.criticalPath[2].task, c);
    EXPECT_EQ(report.criticalPath[2].reason, HopReason::Dependency);
    // No stream-order hops: durations cover the makespan exactly.
    EXPECT_DOUBLE_EQ(report.criticalPathMs, 9.0);
    EXPECT_DOUBLE_EQ(
        report.criticalOpMs[static_cast<size_t>(OpType::Experts)], 2.0);
    EXPECT_DOUBLE_EQ(
        report.criticalOpMs[static_cast<size_t>(OpType::AlltoAll)], 3.0);
    EXPECT_DOUBLE_EQ(
        report.criticalOpMs[static_cast<size_t>(OpType::AllGather)], 4.0);
}

TEST(RunReport, LinkContentionShowsUpAsLinkWait)
{
    // Two independent tasks contend for the inter-node link; the
    // second can only start when the first releases it.
    TaskGraph g;
    TaskId a = g.addTask("a", OpType::AlltoAll, Link::InterNode, 0, 3.0);
    TaskId b = g.addTask("b", OpType::GradAllReduce, Link::InterNode, 1,
                         4.0);
    SimResult r = Simulator{}.run(g);
    ASSERT_DOUBLE_EQ(r.makespan, 7.0);

    RunReport report = analyzeRun(g, r);
    ASSERT_EQ(report.criticalPath.size(), 2u);
    EXPECT_EQ(report.criticalPath[0].task, a);
    EXPECT_EQ(report.criticalPath[0].reason, HopReason::Root);
    EXPECT_EQ(report.criticalPath[1].task, b);
    EXPECT_EQ(report.criticalPath[1].reason, HopReason::LinkWait);
    EXPECT_DOUBLE_EQ(report.criticalPathMs, 7.0);
}

TEST(RunReport, StreamFifoShowsUpAsStreamOrder)
{
    // "tail" shares a stream with "head" but uses an otherwise idle
    // link: the only thing that delayed it was FIFO order, which gates
    // on the predecessor's *start*.
    TaskGraph g;
    TaskId slow = g.addTask("slow", OpType::Experts, Link::Compute, 0,
                            5.0);
    TaskId head = g.addTask("head", OpType::AlltoAll, Link::InterNode, 1,
                            1.0, {slow});
    TaskId tail = g.addTask("tail", OpType::AllGather, Link::IntraNode, 1,
                            4.0);
    SimResult r = Simulator{}.run(g);
    ASSERT_DOUBLE_EQ(r.makespan, 9.0); // tail: 5 + 4

    RunReport report = analyzeRun(g, r);
    ASSERT_EQ(report.criticalPath.size(), 3u);
    EXPECT_EQ(report.criticalPath[0].task, slow);
    EXPECT_EQ(report.criticalPath[0].reason, HopReason::Root);
    EXPECT_EQ(report.criticalPath[1].task, head);
    EXPECT_EQ(report.criticalPath[1].reason, HopReason::Dependency);
    EXPECT_EQ(report.criticalPath[2].task, tail);
    EXPECT_EQ(report.criticalPath[2].reason, HopReason::StreamOrder);
    // head overlaps tail, so path durations exceed nothing but cover
    // less than slow+head+tail laid end to end.
    EXPECT_DOUBLE_EQ(report.criticalPath[2].startMs, 5.0);
}

TEST(RunReport, HopReasonNamesAreStable)
{
    EXPECT_STREQ(hopReasonName(HopReason::Root), "root");
    EXPECT_STREQ(hopReasonName(HopReason::Dependency), "dep");
    EXPECT_STREQ(hopReasonName(HopReason::LinkWait), "link-wait");
    EXPECT_STREQ(hopReasonName(HopReason::StreamOrder), "stream-order");
}

TEST(RunReport, FormatMentionsLinksAndReasons)
{
    TaskGraph g;
    TaskId a = g.addTask("first", OpType::Experts, Link::Compute, 0, 2.0);
    g.addTask("second", OpType::AlltoAll, Link::InterNode, 1, 3.0, {a});
    SimResult r = Simulator{}.run(g);
    const std::string text = formatRunReport(g, analyzeRun(g, r));
    EXPECT_NE(text.find("link utilization"), std::string::npos);
    EXPECT_NE(text.find("critical path"), std::string::npos);
    EXPECT_NE(text.find("first"), std::string::npos);
    EXPECT_NE(text.find("second"), std::string::npos);
    EXPECT_NE(text.find("root"), std::string::npos);
    EXPECT_NE(text.find("dep"), std::string::npos);
}

} // namespace
} // namespace fsmoe::sim
