/**
 * @file
 * Tests for the fault-tolerant sweep runner: clean runs byte-match the
 * plain engine, retries and quarantine behave deterministically under
 * injected faults, isolated workers survive crashes and hangs, and a
 * journaled sweep SIGKILLed mid-run resumes to byte-identical results
 * — the repo's determinism contract extended across process death.
 */
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/interrupt.h"
#include "base/stats.h"
#include "runtime/fault.h"
#include "runtime/journal.h"
#include "runtime/result_store.h"
#include "runtime/scenario.h"
#include "runtime/sweep_engine.h"
#include "runtime/worker.h"

namespace fsmoe::runtime {
namespace {

/** RAII: no injection before or after each test, whatever happens. */
struct FaultGuard
{
    FaultGuard() { fault::reset(); }
    ~FaultGuard() { fault::reset(); }
};

std::vector<Scenario>
smallGrid()
{
    return ScenarioGrid()
        .models({"gpt2xl-moe"})
        .clusters({"testbedA"})
        .numLayers({1})
        .build();
}

std::vector<Scenario>
oneScenario()
{
    return ScenarioGrid()
        .models({"gpt2xl-moe"})
        .clusters({"testbedA"})
        .schedules({"FSMoE"})
        .numLayers({1})
        .build();
}

std::vector<std::string>
recordBytes(const std::vector<SweepResult> &results)
{
    std::vector<std::string> out;
    for (const SweepResult &r : results)
        out.push_back(toJsonRecord(r));
    return out;
}

std::vector<SweepResult>
engineResults(const std::vector<Scenario> &grid)
{
    SweepEngine engine({/*numThreads=*/2});
    return toSweepResults(engine.run(grid));
}

void
configureFaults(const std::string &spec)
{
    fault::FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(fault::parseSpec(spec, &cfg, &error)) << error;
    fault::configure(cfg);
}

RobustOptions
fastOpts()
{
    RobustOptions opts;
    opts.numThreads = 2;
    opts.backoffBaseMs = 1;
    opts.backoffMaxMs = 2;
    return opts;
}

TEST(Worker, RetryBackoffDoublesAndSaturates)
{
    RobustOptions opts;
    opts.backoffBaseMs = 10;
    opts.backoffMaxMs = 1000;
    EXPECT_EQ(retryBackoffMs(opts, 1), 10);
    EXPECT_EQ(retryBackoffMs(opts, 2), 20);
    EXPECT_EQ(retryBackoffMs(opts, 5), 160);
    EXPECT_EQ(retryBackoffMs(opts, 8), 1000);  // capped
    EXPECT_EQ(retryBackoffMs(opts, 30), 1000); // no overflow blow-up
}

TEST(Worker, CleanRobustRunIsByteIdenticalToThePlainEngine)
{
    FaultGuard guard;
    const auto grid = smallGrid();
    EXPECT_EQ(recordBytes(runRobust(grid, fastOpts())),
              recordBytes(engineResults(grid)));
}

TEST(Worker, EvalFaultsRetryDeterministicallyAndSpareSurvivors)
{
    FaultGuard guard;
    const auto grid = smallGrid();
    const auto clean = recordBytes(engineResults(grid));

    configureFaults("seed=42,eval=0.4");
    const auto first = runRobust(grid, fastOpts());
    configureFaults("seed=42,eval=0.4");
    const auto second = runRobust(grid, fastOpts());

    // Identical bytes across runs: which scenarios fail, how often,
    // and what gets recorded is a pure function of the seed.
    EXPECT_EQ(recordBytes(first), recordBytes(second));

    ASSERT_EQ(first.size(), grid.size());
    for (size_t i = 0; i < first.size(); ++i) {
        const SweepResult &r = first[i];
        if (r.status == ResultStatus::Ok) {
            // Survivors carry exactly the clean run's bytes.
            EXPECT_EQ(toJsonRecord(r), clean[i]);
        } else {
            EXPECT_EQ(r.status, ResultStatus::Quarantined);
            EXPECT_EQ(r.attempts, fastOpts().maxAttempts);
            EXPECT_NE(r.error.find("injected eval fault"),
                      std::string::npos)
                << r.error;
            EXPECT_EQ(r.makespanMs, 0.0);
        }
    }
}

TEST(Worker, CertainFailureQuarantinesAfterMaxAttempts)
{
    FaultGuard guard;
    const auto grid = oneScenario();
    ASSERT_EQ(grid.size(), 1u);

    configureFaults("seed=1,eval=1");
    RobustOptions opts = fastOpts();
    opts.maxAttempts = 2;
    const auto results = runRobust(grid, opts);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, ResultStatus::Quarantined);
    EXPECT_EQ(results[0].attempts, 2);
    EXPECT_FALSE(results[0].error.empty());
    EXPECT_EQ(results[0].key(), grid[0].label());
}

TEST(Worker, IsolateCleanRunIsByteIdenticalToThePlainEngine)
{
    FaultGuard guard;
    const auto grid = smallGrid();
    RobustOptions opts = fastOpts();
    opts.isolate = true;
    EXPECT_EQ(recordBytes(runRobust(grid, opts)),
              recordBytes(engineResults(grid)));
}

TEST(Worker, IsolateSurvivesWorkerCrashesAndQuarantines)
{
    FaultGuard guard;
    const auto grid = oneScenario();

    configureFaults("seed=1,crash=1");
    RobustOptions opts = fastOpts();
    opts.isolate = true;
    opts.maxAttempts = 2;
    const auto results = runRobust(grid, opts);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, ResultStatus::Quarantined);
    EXPECT_EQ(results[0].attempts, 2);
    EXPECT_NE(results[0].error.find("worker"), std::string::npos)
        << results[0].error;
}

TEST(Worker, IsolateWatchdogKillsHungWorkers)
{
    FaultGuard guard;
    const auto grid = oneScenario();

    configureFaults("seed=1,timeout=1");
    RobustOptions opts = fastOpts();
    opts.isolate = true;
    opts.maxAttempts = 1;
    opts.timeoutMs = 300;
    const auto results = runRobust(grid, opts);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, ResultStatus::Quarantined);
    EXPECT_NE(results[0].error.find("timed out"), std::string::npos)
        << results[0].error;
}

TEST(Worker, JournaledRunRecordsEverythingAndResumeSkipsOkEntries)
{
    FaultGuard guard;
    const auto grid = smallGrid();
    const std::string path =
        testing::TempDir() + "/worker_journal_skip.txt";
    std::remove(path.c_str());

    std::string error;
    {
        Journal j;
        ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error))
            << error;
        runRobust(grid, fastOpts(), &j);
    }

    // Resume over a complete journal re-simulates nothing: the
    // recovered entries alone must reproduce the full result set.
    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    EXPECT_EQ(back.recovered().size(), grid.size());
    const uint64_t sims_before = stats::counter("sim.runs").value();
    const auto resumed = runRobust(grid, fastOpts(), &back);
    EXPECT_EQ(stats::counter("sim.runs").value(), sims_before)
        << "resume over a complete journal re-simulated scenarios";
    EXPECT_EQ(recordBytes(resumed), recordBytes(engineResults(grid)));
    std::remove(path.c_str());
}

TEST(Worker, KilledMidSweepResumesToByteIdenticalResults)
{
    const auto grid = smallGrid();
    const std::string path =
        testing::TempDir() + "/worker_journal_kill.txt";
    std::remove(path.c_str());

    // Child: journaled sweep that exits (137) after the 2nd append —
    // the SIGKILL-mid-sweep case with a deterministic kill point.
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        fault::FaultConfig cfg;
        std::string error;
        if (!fault::parseSpec("kill-after=2", &cfg, &error))
            ::_exit(3);
        fault::configure(cfg);
        Journal j;
        if (!j.open(path, grid, /*resume=*/false, &error))
            ::_exit(4);
        RobustOptions opts;
        opts.numThreads = 1; // deterministic append order in the child
        opts.backoffBaseMs = 1;
        opts.backoffMaxMs = 2;
        runRobust(grid, opts, &j); // must die on the 2nd append
        ::_exit(5);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137)
        << "child completed the sweep it was told to die in";

    // Parent: resume the interrupted journal with injection off.
    FaultGuard guard;
    Journal back;
    std::string error;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    EXPECT_EQ(back.recovered().size(), 2u);
    const auto resumed = runRobust(grid, fastOpts(), &back);
    EXPECT_EQ(recordBytes(resumed), recordBytes(engineResults(grid)));
    std::remove(path.c_str());
}

TEST(Worker, QuarantinedSweepResumedCleanConvergesToCleanBytes)
{
    FaultGuard guard;
    const auto grid = smallGrid();
    const std::string path =
        testing::TempDir() + "/worker_journal_heal.txt";
    std::remove(path.c_str());

    // Fault-injected journaled sweep: a high rate so at least one
    // scenario exhausts its attempts, but not so high that nothing
    // survives — the resume must mix kept-Ok and re-attempted entries.
    configureFaults("seed=42,eval=0.9");
    std::string error;
    size_t quarantined = 0;
    {
        Journal j;
        ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error))
            << error;
        for (const SweepResult &r : runRobust(grid, fastOpts(), &j))
            quarantined += r.status != ResultStatus::Ok;
    }
    ASSERT_GT(quarantined, 0u)
        << "seed=42,eval=0.9 no longer quarantines anything; pick a "
           "seed that does so this test exercises re-attempts";
    ASSERT_LT(quarantined, grid.size())
        << "everything quarantined; pick a seed that leaves survivors "
           "so the resume path exercises kept-Ok journal entries";

    // Resume with injection off: non-Ok journal entries are
    // re-attempted, healing the sweep to the clean run's bytes.
    fault::reset();
    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    const auto resumed = runRobust(grid, fastOpts(), &back);
    EXPECT_EQ(recordBytes(resumed), recordBytes(engineResults(grid)));
    std::remove(path.c_str());
}

TEST(Worker, StopAfterResultsDrainsGracefullyAndResumeConverges)
{
    // stopAfterResults is the deterministic stand-in for SIGTERM: the
    // sweep stops starting scenarios once N finished, journalled work
    // survives, unstarted scenarios come back empty, and a resumed
    // sweep converges to the clean bytes.
    FaultGuard guard;
    interrupt::clearStop();
    const auto grid = smallGrid();
    ASSERT_GT(grid.size(), 2u);
    const std::string path =
        testing::TempDir() + "/worker_journal_stop.txt";
    std::remove(path.c_str());

    RobustOptions opts = fastOpts();
    opts.numThreads = 1; // serial: exactly N finish before the stop
    opts.stopAfterResults = 2;
    std::string error;
    size_t finished = 0;
    {
        Journal j;
        ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error))
            << error;
        const auto partial = runRobust(grid, opts, &j);
        EXPECT_TRUE(interrupt::stopRequested());
        ASSERT_EQ(partial.size(), grid.size());
        for (const SweepResult &r : partial)
            finished += !r.schedule.empty();
    }
    EXPECT_EQ(finished, 2u);
    interrupt::clearStop();

    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    EXPECT_EQ(back.recovered().size(), finished);
    const auto resumed = runRobust(grid, fastOpts(), &back);
    EXPECT_FALSE(interrupt::stopRequested());
    EXPECT_EQ(recordBytes(resumed), recordBytes(engineResults(grid)));
    std::remove(path.c_str());
}

} // namespace
} // namespace fsmoe::runtime
