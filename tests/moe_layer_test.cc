/**
 * @file
 * Integration tests for the full MoeLayer: distributed execution
 * (EP x ESP with AlltoAll/AllGather/ReduceScatter) must match the
 * single-rank reference token-for-token in both directions, hooks must
 * fire, and a training loop must reduce a regression loss.
 */
#include <gtest/gtest.h>

#include "core/moe_layer.h"
#include "test_util.h"

namespace fsmoe::core {
namespace {

/** Per-rank random inputs with a deterministic seed. */
std::vector<Tensor>
makeInputs(int world, int64_t tokens, int64_t embed, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Tensor> xs;
    for (int r = 0; r < world; ++r)
        xs.push_back(rng.normalTensor({tokens, embed}));
    return xs;
}

MoeLayerOptions
baseOptions()
{
    MoeLayerOptions opt;
    opt.embed = 16;
    opt.hidden = 24;
    opt.numExperts = 4;
    opt.topK = 2;
    opt.capacityFactor = 0.0; // no drops: distributed == reference
    opt.seed = 77;
    return opt;
}

/**
 * Distributed-vs-reference equivalence across layouts, gates, orders
 * and expert types. The reference is the same layer with numEp =
 * numEsp = 1 processing each rank's tokens; identical seeds guarantee
 * identical weights.
 */
struct LayoutCase
{
    int ep, esp;
    GateKind gate;
    OrderKind order;
    FfnType ffn;
};

class MoeEquivalenceTest : public ::testing::TestWithParam<LayoutCase>
{
};

TEST_P(MoeEquivalenceTest, ForwardMatchesSingleRankReference)
{
    const LayoutCase &lc = GetParam();
    MoeLayerOptions opt = baseOptions();
    opt.numEp = lc.ep;
    opt.numEsp = lc.esp;
    opt.gate = lc.gate;
    opt.order = lc.order;
    opt.ffn = lc.ffn;

    MoeLayer dist_layer(opt);
    MoeLayerOptions ref_opt = opt;
    ref_opt.numEp = 1;
    ref_opt.numEsp = 1;
    MoeLayer ref_layer(ref_opt);

    const int world = dist_layer.worldSize();
    auto xs = makeInputs(world, 8, opt.embed, 31);
    auto ys = dist_layer.forward(xs);
    for (int r = 0; r < world; ++r) {
        auto ref = ref_layer.forward({xs[r]});
        test::expectClose(ys[r], ref[0], 2e-4f, "distributed forward");
    }
}

TEST_P(MoeEquivalenceTest, BackwardMatchesSingleRankReference)
{
    const LayoutCase &lc = GetParam();
    MoeLayerOptions opt = baseOptions();
    opt.numEp = lc.ep;
    opt.numEsp = lc.esp;
    opt.gate = lc.gate;
    opt.order = lc.order;
    opt.ffn = lc.ffn;

    MoeLayer dist_layer(opt);
    MoeLayerOptions ref_opt = opt;
    ref_opt.numEp = 1;
    ref_opt.numEsp = 1;

    const int world = dist_layer.worldSize();
    auto xs = makeInputs(world, 8, opt.embed, 37);
    auto gs = makeInputs(world, 8, opt.embed, 38);
    dist_layer.forward(xs);
    auto dxs = dist_layer.backward(gs);
    for (int r = 0; r < world; ++r) {
        MoeLayer ref_layer(ref_opt);
        ref_layer.forward({xs[r]});
        auto ref = ref_layer.backward({gs[r]});
        test::expectClose(dxs[r], ref[0], 3e-4f, "distributed backward");
    }
}

std::string
layoutName(const ::testing::TestParamInfo<LayoutCase> &info)
{
    const LayoutCase &c = info.param;
    std::string name = "ep" + std::to_string(c.ep) + "_esp" +
                       std::to_string(c.esp);
    name += c.gate == GateKind::GShard      ? "_gshard"
            : c.gate == GateKind::Sigmoid   ? "_sigmoid"
            : c.gate == GateKind::XMoe      ? "_xmoe"
                                            : "_ec";
    name += c.order == OrderKind::TutelSparse ? "_tutel" : "_gshardord";
    name += c.ffn == FfnType::Mixtral ? "_mixtral" : "_simple";
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, MoeEquivalenceTest,
    ::testing::Values(
        LayoutCase{2, 1, GateKind::GShard, OrderKind::TutelSparse,
                   FfnType::Simple},
        LayoutCase{1, 2, GateKind::GShard, OrderKind::TutelSparse,
                   FfnType::Simple},
        LayoutCase{2, 2, GateKind::GShard, OrderKind::TutelSparse,
                   FfnType::Simple},
        LayoutCase{4, 2, GateKind::GShard, OrderKind::TutelSparse,
                   FfnType::Simple},
        LayoutCase{2, 2, GateKind::Sigmoid, OrderKind::TutelSparse,
                   FfnType::Simple},
        LayoutCase{2, 2, GateKind::XMoe, OrderKind::GShardEinsum,
                   FfnType::Mixtral},
        LayoutCase{2, 2, GateKind::ExpertChoice, OrderKind::TutelSparse,
                   FfnType::Mixtral},
        LayoutCase{2, 3, GateKind::GShard, OrderKind::GShardEinsum,
                   FfnType::Mixtral}),
    layoutName);

TEST(MoeLayer, AlltoAllAlgorithmsProduceIdenticalOutputs)
{
    MoeLayerOptions opt = baseOptions();
    opt.numEp = 4;
    auto xs = makeInputs(4, 8, opt.embed, 41);

    opt.a2a = dist::A2aAlgo::NcclDirect;
    MoeLayer direct(opt);
    auto y_direct = direct.forward(xs);

    for (auto algo : {dist::A2aAlgo::Hier1D, dist::A2aAlgo::Hier2D}) {
        opt.a2a = algo;
        MoeLayer layer(opt);
        auto y = layer.forward(xs);
        for (int r = 0; r < 4; ++r)
            test::expectClose(y[r], y_direct[r], 1e-6f, "a2a algo");
    }
}

TEST(MoeLayer, EndToEndGradientMatchesFiniteDifference)
{
    MoeLayerOptions opt = baseOptions();
    opt.numEp = 2;
    opt.numEsp = 2;
    MoeLayer layer(opt);
    auto xs = makeInputs(4, 6, opt.embed, 43);
    auto coeff = makeInputs(4, 6, opt.embed, 44);

    layer.forward(xs);
    auto dxs = layer.backward(coeff);

    auto loss = [&]() {
        auto ys = layer.forward(xs);
        double s = 0.0;
        for (int r = 0; r < 4; ++r)
            for (int64_t i = 0; i < ys[r].numel(); ++i)
                s += ys[r].flat(i) * coeff[r].flat(i);
        return s;
    };
    // Probe rank 0's input only (the others are symmetric).
    test::expectGradMatches(xs[0], dxs[0], loss, 1e-2, 3e-2, 16);
}

TEST(MoeLayer, CapacityDropsAreCounted)
{
    MoeLayerOptions opt = baseOptions();
    opt.capacityFactor = 0.5; // deliberately tight
    MoeLayer layer(opt);
    auto xs = makeInputs(1, 16, opt.embed, 47);
    layer.forward(xs);
    EXPECT_GT(layer.dropped(0), 0);

    MoeLayerOptions loose = baseOptions();
    loose.capacityFactor = 0.0;
    MoeLayer layer2(loose);
    layer2.forward(xs);
    EXPECT_EQ(layer2.dropped(0), 0);
}

/** Counts hook invocations and checks payload mutability. */
class CountingCallback : public CallbackBase
{
  public:
    void beforeMoeStart(HookContext &ctx) override
    {
        counts[0]++;
        last_start_shape = ctx.payload->shapeString();
    }
    void beforeDispatch(HookContext &) override { counts[1]++; }
    void afterDispatch(HookContext &) override { counts[2]++; }
    void beforeCombine(HookContext &) override { counts[3]++; }
    void afterCombine(HookContext &) override { counts[4]++; }
    void beforeMoeEnd(HookContext &) override { counts[5]++; }

    int counts[6] = {0, 0, 0, 0, 0, 0};
    std::string last_start_shape;
};

TEST(MoeLayer, HooksFireOncePerRankPerPoint)
{
    MoeLayerOptions opt = baseOptions();
    opt.numEp = 2;
    opt.numEsp = 2;
    MoeLayer layer(opt);
    auto cb = std::make_shared<CountingCallback>();
    layer.addCallback(cb);
    auto xs = makeInputs(4, 8, opt.embed, 51);
    layer.forward(xs);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(cb->counts[i], 4) << "hook point " << i;
    EXPECT_EQ(cb->last_start_shape, "[8, 16]");
}

/** A compression-style hook: scale on dispatch, undo after. */
class ScalingCallback : public CallbackBase
{
  public:
    void beforeDispatch(HookContext &ctx) override
    {
        ctx.payload->scale_(0.5f);
    }
    void afterDispatch(HookContext &ctx) override
    {
        ctx.payload->scale_(2.0f);
    }
};

TEST(MoeLayer, InverseHookPairIsTransparent)
{
    MoeLayerOptions opt = baseOptions();
    opt.numEp = 2;
    auto xs = makeInputs(2, 8, opt.embed, 53);

    MoeLayer plain(opt);
    auto y_plain = plain.forward(xs);

    MoeLayer hooked(opt);
    hooked.addCallback(std::make_shared<ScalingCallback>());
    auto y_hooked = hooked.forward(xs);
    for (int r = 0; r < 2; ++r)
        test::expectClose(y_hooked[r], y_plain[r], 1e-5f,
                          "hooked forward");
}

TEST(MoeLayer, TrainingStepReducesLoss)
{
    MoeLayerOptions opt = baseOptions();
    opt.numEp = 2;
    opt.numEsp = 2;
    MoeLayer layer(opt);
    const int world = layer.worldSize();
    auto xs = makeInputs(world, 8, opt.embed, 57);
    auto targets = makeInputs(world, 8, opt.embed, 58);

    auto compute_loss = [&](const std::vector<Tensor> &ys) {
        double s = 0.0;
        int64_t n = 0;
        for (int r = 0; r < world; ++r) {
            for (int64_t i = 0; i < ys[r].numel(); ++i) {
                double d = ys[r].flat(i) - targets[r].flat(i);
                s += d * d;
                n++;
            }
        }
        return s / n;
    };

    double first_loss = 0.0, last_loss = 0.0;
    for (int step = 0; step < 60; ++step) {
        auto ys = layer.forward(xs);
        double loss = compute_loss(ys);
        if (step == 0)
            first_loss = loss;
        last_loss = loss;
        std::vector<Tensor> grads(world);
        for (int r = 0; r < world; ++r) {
            grads[r] = sub(ys[r], targets[r]);
            grads[r].scale_(2.0f / (world * ys[r].numel()));
        }
        layer.zeroGrad();
        layer.backward(grads);
        layer.syncReplicatedGrads();
        layer.sgdStep(10.0f);
    }
    EXPECT_LT(last_loss, 0.75 * first_loss)
        << "training failed to reduce the loss (first " << first_loss
        << ", last " << last_loss << ")";
}

TEST(MoeLayer, SyncKeepsGateReplicasIdentical)
{
    MoeLayerOptions opt = baseOptions();
    opt.numEp = 2;
    opt.numEsp = 2;
    MoeLayer layer(opt);
    const int world = layer.worldSize();
    auto xs = makeInputs(world, 8, opt.embed, 61);
    auto gs = makeInputs(world, 8, opt.embed, 62);
    layer.zeroGrad();
    layer.forward(xs);
    layer.backward(gs);
    layer.syncReplicatedGrads();
    layer.sgdStep(0.1f);
    auto p0 = layer.gate(0).params();
    for (int r = 1; r < world; ++r) {
        auto pr = layer.gate(r).params();
        for (size_t i = 0; i < p0.size(); ++i)
            test::expectClose(*p0[i], *pr[i], 1e-6f, "gate replica");
    }
}

TEST(MoeLayer, RejectsInvalidConfigurations)
{
    MoeLayerOptions opt = baseOptions();
    opt.numExperts = 3;
    opt.numEp = 2; // 3 % 2 != 0
    EXPECT_EXIT({ MoeLayer layer(opt); }, ::testing::ExitedWithCode(1),
                "divisible");
}

} // namespace
} // namespace fsmoe::core
