/**
 * @file
 * Shared helpers for the FSMoE test suite: finite-difference gradient
 * checking and tensor comparison utilities.
 */
#ifndef FSMOE_TESTS_TEST_UTIL_H
#define FSMOE_TESTS_TEST_UTIL_H

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace fsmoe::test {

/**
 * Central-difference derivative of a scalar function of one tensor
 * element: perturbs x[index] by +/-eps around its current value.
 */
inline double
numericalGrad(Tensor &x, int64_t index,
              const std::function<double()> &loss, double eps = 1e-3)
{
    const float saved = x.flat(index);
    x.flat(index) = saved + static_cast<float>(eps);
    double up = loss();
    x.flat(index) = saved - static_cast<float>(eps);
    double down = loss();
    x.flat(index) = saved;
    return (up - down) / (2.0 * eps);
}

/** EXPECT that two tensors match elementwise within a tolerance. */
inline void
expectClose(const Tensor &a, const Tensor &b, float tol = 1e-4f,
            const char *what = "tensors")
{
    ASSERT_TRUE(a.sameShape(b)) << what << ": shape " << a.shapeString()
                                << " vs " << b.shapeString();
    EXPECT_LE(maxAbsDiff(a, b), tol) << what;
}

/**
 * Compare an analytic gradient tensor against finite differences of a
 * scalar loss, probing a strided subset of elements to keep runtime
 * bounded.
 */
inline void
expectGradMatches(Tensor &x, const Tensor &analytic,
                  const std::function<double()> &loss, double eps = 1e-2,
                  double tol = 2e-2, int64_t max_probes = 40)
{
    ASSERT_TRUE(x.sameShape(analytic));
    const int64_t stride = std::max<int64_t>(1, x.numel() / max_probes);
    for (int64_t i = 0; i < x.numel(); i += stride) {
        double num = numericalGrad(x, i, loss, eps);
        double ana = analytic.flat(i);
        double scale = std::max({1.0, std::fabs(num), std::fabs(ana)});
        EXPECT_NEAR(ana, num, tol * scale)
            << "gradient mismatch at flat index " << i;
    }
}

} // namespace fsmoe::test

#endif // FSMOE_TESTS_TEST_UTIL_H
