/**
 * @file
 * Unit tests for the discrete-event simulator: dependency handling,
 * stream FIFO semantics, exclusive links, readiness arbitration, the
 * per-op accounting, and the testbed specifications.
 */
#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe::sim {
namespace {

TEST(TaskGraph, AddAndQuery)
{
    TaskGraph g;
    TaskId a = g.addTask("a", OpType::Experts, Link::Compute, 0, 1.0);
    TaskId b = g.addTask("b", OpType::AlltoAll, Link::InterNode, 1, 2.0,
                         {a});
    EXPECT_EQ(g.size(), 2u);
    EXPECT_EQ(g.deps(b).size(), 1u);
    EXPECT_EQ(g.deps(b)[0], a);
    EXPECT_EQ(g.deps(a).size(), 0u);
    EXPECT_EQ(g.numDeps(), 1u);
    EXPECT_EQ(g.taskName(a), "a");
    EXPECT_EQ(g.numStreams(), 2);
}

TEST(Simulator, EmptyGraph)
{
    Simulator s;
    SimResult r = s.run(TaskGraph{});
    EXPECT_EQ(r.makespan, 0.0);
}

TEST(Simulator, SequentialChainSums)
{
    TaskGraph g;
    TaskId prev = -1;
    for (int i = 0; i < 5; ++i) {
        std::vector<TaskId> deps;
        if (prev >= 0)
            deps.push_back(prev);
        prev = g.addTask("t", OpType::Experts, Link::Compute, 0, 2.0,
                         deps);
    }
    SimResult r = Simulator{}.run(g);
    EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(Simulator, IndependentLinksRunConcurrently)
{
    TaskGraph g;
    g.addTask("c", OpType::Experts, Link::Compute, 0, 3.0);
    g.addTask("n", OpType::AlltoAll, Link::InterNode, 1, 4.0);
    g.addTask("i", OpType::AllGather, Link::IntraNode, 2, 5.0);
    SimResult r = Simulator{}.run(g);
    EXPECT_DOUBLE_EQ(r.makespan, 5.0);
}

TEST(Simulator, SameLinkSerializesAcrossStreams)
{
    TaskGraph g;
    g.addTask("a", OpType::AlltoAll, Link::InterNode, 0, 3.0);
    g.addTask("b", OpType::GradAllReduce, Link::InterNode, 1, 4.0);
    SimResult r = Simulator{}.run(g);
    EXPECT_DOUBLE_EQ(r.makespan, 7.0); // never concurrent
}

TEST(Simulator, StreamFifoOrderHolds)
{
    // Second task on the stream is ready first but must wait for the
    // stream head, which depends on a slow compute task.
    TaskGraph g;
    TaskId slow = g.addTask("slow", OpType::Experts, Link::Compute, 0, 5.0);
    TaskId head = g.addTask("head", OpType::AlltoAll, Link::InterNode, 1,
                            1.0, {slow});
    g.addTask("tail", OpType::AlltoAll, Link::InterNode, 1, 1.0);
    SimResult r = Simulator{}.run(g);
    EXPECT_DOUBLE_EQ(r.trace[head].start, 5.0);
    EXPECT_DOUBLE_EQ(r.trace[2].start, 6.0); // FIFO behind the head
    EXPECT_DOUBLE_EQ(r.makespan, 7.0);
}

TEST(Simulator, ReadinessArbitrationPicksEarliestReady)
{
    TaskGraph g;
    TaskId gate_a = g.addTask("ga", OpType::Experts, Link::Compute, 0, 1.0);
    TaskId gate_b = g.addTask("gb", OpType::Experts, Link::Compute, 0, 2.0);
    // Two inter-node tasks on different streams; a becomes ready at 1,
    // b at 3 (compute serial: gb ends at 3).
    TaskId a = g.addTask("a", OpType::AlltoAll, Link::InterNode, 1, 10.0,
                         {gate_a});
    TaskId b = g.addTask("b", OpType::AlltoAll, Link::InterNode, 2, 1.0,
                         {gate_b});
    SimResult r = Simulator{}.run(g);
    EXPECT_DOUBLE_EQ(r.trace[a].start, 1.0);
    EXPECT_DOUBLE_EQ(r.trace[b].start, 11.0);
}

TEST(Simulator, DiamondDependency)
{
    TaskGraph g;
    TaskId src = g.addTask("s", OpType::Experts, Link::Compute, 0, 1.0);
    TaskId l = g.addTask("l", OpType::AlltoAll, Link::InterNode, 1, 2.0,
                         {src});
    TaskId rgt = g.addTask("r", OpType::AllGather, Link::IntraNode, 2, 3.0,
                           {src});
    TaskId sink = g.addTask("k", OpType::Experts, Link::Compute, 0, 1.0,
                            {l, rgt});
    SimResult res = Simulator{}.run(g);
    EXPECT_DOUBLE_EQ(res.trace[sink].start, 4.0);
    EXPECT_DOUBLE_EQ(res.makespan, 5.0);
}

TEST(Simulator, OpTimeAccounting)
{
    TaskGraph g;
    g.addTask("a", OpType::AlltoAll, Link::InterNode, 0, 2.0);
    g.addTask("b", OpType::AlltoAll, Link::InterNode, 0, 3.0);
    g.addTask("e", OpType::Experts, Link::Compute, 1, 4.0);
    SimResult r = Simulator{}.run(g);
    EXPECT_DOUBLE_EQ(r.timeOf(OpType::AlltoAll), 5.0);
    EXPECT_DOUBLE_EQ(r.timeOf(OpType::Experts), 4.0);
    EXPECT_DOUBLE_EQ(r.timeOf(OpType::Routing), 0.0);
}

TEST(Simulator, ZeroDurationBarrier)
{
    TaskGraph g;
    TaskId a = g.addTask("a", OpType::Experts, Link::Compute, 0, 2.0);
    TaskId b = g.addTask("b", OpType::AlltoAll, Link::InterNode, 1, 3.0);
    TaskId bar = g.addTask("bar", OpType::Other, Link::Compute, 0, 0.0,
                           {a, b});
    SimResult r = Simulator{}.run(g);
    EXPECT_DOUBLE_EQ(r.trace[bar].start, 3.0);
    EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(Simulator, PipelineOverlapMatchesClosedForm)
{
    // r chunks: a2a (inter) then expert (compute), expert slower.
    // Closed form (paper case 2 shape): t = t_a2a + r * t_exp.
    const int r = 4;
    const double t_a2a = 1.0, t_exp = 2.0;
    TaskGraph g;
    std::vector<TaskId> disp(r);
    for (int i = 0; i < r; ++i)
        disp[i] = g.addTask("d", OpType::AlltoAll, Link::InterNode, 1,
                            t_a2a);
    for (int i = 0; i < r; ++i)
        g.addTask("e", OpType::Experts, Link::Compute, 0, t_exp,
                  {disp[i]});
    SimResult res = Simulator{}.run(g);
    EXPECT_DOUBLE_EQ(res.makespan, t_a2a + r * t_exp);
}

TEST(Simulator, GanttRendersAllStreams)
{
    TaskGraph g;
    g.addTask("alpha", OpType::Experts, Link::Compute, 0, 1.0);
    g.addTask("beta", OpType::AlltoAll, Link::InterNode, 1, 2.0);
    SimResult r = Simulator{}.run(g);
    std::string chart = Simulator::gantt(g, r, 40);
    EXPECT_NE(chart.find("stream 0"), std::string::npos);
    EXPECT_NE(chart.find("stream 1"), std::string::npos);
    EXPECT_NE(chart.find('a'), std::string::npos);
    EXPECT_NE(chart.find('b'), std::string::npos);
}

TEST(Simulator, GanttClampsEveryTaskIntoTheAxis)
{
    // A short task whose whole extent lies at the very end of the
    // span: its start maps to the last column, where unclamped
    // truncation used to let it vanish. Every positive-duration task
    // must paint at least one cell, and rows must stay exactly
    // `columns` wide.
    const int columns = 20;
    TaskGraph g;
    TaskId bulk = g.addTask("b", OpType::Experts, Link::Compute, 0, 100.0);
    g.addTask("z", OpType::AlltoAll, Link::InterNode, 1, 1e-9, {bulk});
    SimResult r = Simulator{}.run(g);
    std::string chart = Simulator::gantt(g, r, columns);

    EXPECT_NE(chart.find('b'), std::string::npos);
    EXPECT_NE(chart.find('z'), std::string::npos) << chart;
    // The tail task renders in the final column of its row.
    const size_t row1 = chart.find("stream 1 |");
    ASSERT_NE(row1, std::string::npos);
    EXPECT_EQ(chart[row1 + 10 + columns - 1], 'z') << chart;
    EXPECT_EQ(chart[row1 + 10 + columns], '|') << chart;
}

TEST(Cluster, TestbedSpecsMatchPaper)
{
    ClusterSpec a = testbedA();
    EXPECT_EQ(a.numNodes, 6);
    EXPECT_EQ(a.gpusPerNode, 8);
    EXPECT_EQ(a.totalGpus(), 48);
    EXPECT_DOUBLE_EQ(a.gemm.alpha, 4.26e-2);
    EXPECT_DOUBLE_EQ(a.alltoall.beta, 2.21e-7);

    ClusterSpec b = testbedB();
    EXPECT_EQ(b.totalGpus(), 32);
    EXPECT_DOUBLE_EQ(b.allreduce.beta, 5.99e-7);
}

TEST(Cluster, CostCoeffsEvaluateLinearly)
{
    CostCoeffs c{1.0, 2.0};
    EXPECT_DOUBLE_EQ(c(3.0), 7.0);
}

TEST(Cluster, ScaledTestbedAdjustsInterNodeOnly)
{
    ClusterSpec base = testbedA();
    ClusterSpec scaled = scaledTestbedA(2);
    EXPECT_EQ(scaled.numNodes, 2);
    EXPECT_LT(scaled.alltoall.beta, base.alltoall.beta);
    EXPECT_DOUBLE_EQ(scaled.allgather.beta, base.allgather.beta);
    EXPECT_DOUBLE_EQ(scaled.gemm.beta, base.gemm.beta);
    // Scaling back to 6 nodes is the identity.
    ClusterSpec same = scaledTestbedA(6);
    EXPECT_DOUBLE_EQ(same.alltoall.beta, base.alltoall.beta);
}

} // namespace
} // namespace fsmoe::sim
