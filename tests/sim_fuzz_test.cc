/**
 * @file
 * Equivalence fuzzing of the heap-based simulator against the retained
 * naive reference (tests/sim_reference.h).
 *
 * The production inner loop maintains per-link ready heaps
 * incrementally; the reference rescans every stream per link per
 * event. Both implement the same machine model, so on ANY graph they
 * must agree *bit-exactly* — makespan, per-op busy times, and the full
 * per-task trace. The fuzzer exercises the corners that matter for
 * that claim: zero-duration barriers, priority classes, deep FIFO
 * streams, wide fan-in, and simultaneous completions; a second test
 * runs every registered schedule's real graph through both engines.
 */
#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"
#include "model/models.h"
#include "sim/cluster.h"
#include "sim/simulator.h"
#include "sim_reference.h"

namespace fsmoe::sim {
namespace {

/**
 * A random DAG shaped to stress the arbitration paths: random streams
 * and links, ~10% zero-duration tasks, ~25% background-priority tasks,
 * up to 3 backward dependencies each, and quantised durations so that
 * equal readiness times (the id tie-break) actually occur.
 */
TaskGraph
randomDag(std::mt19937 &rng)
{
    std::uniform_int_distribution<int> n_dist(2, 160);
    std::uniform_int_distribution<int> stream_count_dist(1, 8);
    const int n = n_dist(rng);
    const int num_streams = stream_count_dist(rng);

    std::uniform_int_distribution<int> stream_dist(0, num_streams - 1);
    std::uniform_int_distribution<int> link_dist(
        0, static_cast<int>(Link::NumLinks) - 1);
    std::uniform_int_distribution<int> op_dist(
        0, static_cast<int>(OpType::NumOpTypes) - 1);
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<int> quantum(1, 40);
    std::uniform_int_distribution<int> dep_count_dist(0, 3);

    TaskGraph g;
    g.reserve(n, 3 * n);
    std::vector<TaskId> deps;
    for (int i = 0; i < n; ++i) {
        deps.clear();
        if (i > 0) {
            std::uniform_int_distribution<TaskId> dep_dist(0, i - 1);
            int k = dep_count_dist(rng);
            for (int d = 0; d < k; ++d) {
                TaskId cand = dep_dist(rng);
                if (std::find(deps.begin(), deps.end(), cand) == deps.end())
                    deps.push_back(cand);
            }
        }
        // Durations on a 0.25 ms grid force readiness-time ties.
        const double duration =
            pct(rng) < 10 ? 0.0 : 0.25 * quantum(rng);
        const int priority = pct(rng) < 25 ? 1 : 0;
        g.addTask({"t", i}, static_cast<OpType>(op_dist(rng)),
                  static_cast<Link>(link_dist(rng)), stream_dist(rng),
                  duration, deps, priority);
    }
    return g;
}

/** Bitwise agreement of two runs over one graph. */
void
expectIdentical(const TaskGraph &g, const SimResult &got,
                const SimResult &want, const std::string &what)
{
    ASSERT_EQ(got.trace.size(), want.trace.size()) << what;
    EXPECT_EQ(got.makespan, want.makespan) << what;
    for (size_t op = 0; op < want.opTime.size(); ++op)
        EXPECT_EQ(got.opTime[op], want.opTime[op])
            << what << ": op " << opTypeName(static_cast<OpType>(op));
    for (size_t i = 0; i < want.trace.size(); ++i) {
        EXPECT_EQ(got.trace[i].id, want.trace[i].id) << what << " #" << i;
        EXPECT_EQ(got.trace[i].start, want.trace[i].start)
            << what << ": " << g.taskName(static_cast<TaskId>(i));
        EXPECT_EQ(got.trace[i].finish, want.trace[i].finish)
            << what << ": " << g.taskName(static_cast<TaskId>(i));
    }
}

TEST(SimFuzz, MatchesNaiveReferenceOnRandomDags)
{
    constexpr int kSeeds = 120;
    Simulator simulator;
    for (int seed = 0; seed < kSeeds; ++seed) {
        std::mt19937 rng(0xf5013e5u + static_cast<unsigned>(seed));
        TaskGraph g = randomDag(rng);
        SimResult fast = simulator.run(g);
        SimResult ref = referenceRun(g);
        expectIdentical(g, fast, ref, "seed " + std::to_string(seed));
        if (::testing::Test::HasFailure())
            FAIL() << "first divergence at seed " << seed << " ("
                   << g.size() << " tasks, " << g.numStreams()
                   << " streams)";
    }
}

TEST(SimFuzz, MatchesNaiveReferenceOnScheduleGraphs)
{
    // Real graphs from every registered schedule plugin, both
    // testbeds: the exact shapes the sweep hot path simulates.
    for (const sim::ClusterSpec &cluster : {testbedA(), testbedB()}) {
        core::LayerShape shape;
        shape.batch = 2;
        shape.seqLen = 512;
        shape.embed = 2048;
        shape.hidden = 3 * 2048;
        shape.numExperts = cluster.numNodes;
        core::ParallelConfig par = model::paperParallelism(cluster);
        core::ModelCost cost;
        cost.models = core::PerfModelSet::fromCluster(cluster);
        for (int i = 0; i < 3; ++i)
            cost.layers.push_back(
                core::makeLayerCost(cost.models, shape, par));

        for (const std::string &name :
             core::ScheduleRegistry::instance().names()) {
            TaskGraph graph = core::Schedule::create(name)->build(cost);
            SimResult fast = Simulator{}.run(graph);
            SimResult ref = referenceRun(graph);
            expectIdentical(graph, fast, ref, name);
        }
    }
}

} // namespace
} // namespace fsmoe::sim
