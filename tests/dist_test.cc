/**
 * @file
 * Unit tests for the in-process distributed runtime: collective
 * semantics, hierarchical AlltoAll equivalence, and the DP/EP/ESP rank
 * layout.
 */
#include <gtest/gtest.h>

#include "dist/communicator.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace fsmoe::dist {
namespace {

/** Rank-stamped buffers so data provenance is visible in asserts. */
std::vector<Tensor>
makeBuffers(int world, int64_t rows, int64_t cols)
{
    std::vector<Tensor> bufs;
    for (int r = 0; r < world; ++r) {
        Tensor t({rows, cols});
        for (int64_t i = 0; i < t.numel(); ++i)
            t.flat(i) = static_cast<float>(r * 1000 + i);
        bufs.push_back(std::move(t));
    }
    return bufs;
}

TEST(Communicator, AllToAllSemantics)
{
    const int world = 4;
    Communicator comm(world);
    auto bufs = makeBuffers(world, 8, 2); // 4 chunks of 2 rows
    auto original = bufs;
    Group everyone = {0, 1, 2, 3};
    comm.allToAll(bufs, everyone);
    // out[d] chunk s == in[s] chunk d.
    for (int d = 0; d < world; ++d) {
        for (int s = 0; s < world; ++s) {
            for (int64_t i = 0; i < 4; ++i) {
                EXPECT_EQ(bufs[d].flat(s * 4 + i),
                          original[s].flat(d * 4 + i))
                    << "dst " << d << " src " << s;
            }
        }
    }
}

TEST(Communicator, AllToAllIsSelfInverse)
{
    const int world = 4;
    Communicator comm(world);
    auto bufs = makeBuffers(world, 8, 3);
    auto original = bufs;
    Group everyone = {0, 1, 2, 3};
    comm.allToAll(bufs, everyone);
    comm.allToAll(bufs, everyone);
    for (int r = 0; r < world; ++r)
        test::expectClose(bufs[r], original[r], 0.0f, "double AlltoAll");
}

TEST(Communicator, AllGatherConcatenatesInGroupOrder)
{
    const int world = 3;
    Communicator comm(world);
    auto bufs = makeBuffers(world, 2, 2);
    auto original = bufs;
    Group everyone = {0, 1, 2};
    comm.allGather(bufs, everyone);
    for (int r = 0; r < world; ++r) {
        EXPECT_EQ(bufs[r].size(0), 6);
        for (int s = 0; s < world; ++s)
            for (int64_t i = 0; i < 4; ++i)
                EXPECT_EQ(bufs[r].flat(s * 4 + i), original[s].flat(i));
    }
}

TEST(Communicator, ReduceScatterSumsAndSplits)
{
    const int world = 2;
    Communicator comm(world);
    std::vector<Tensor> bufs = {Tensor({4, 1}, {1, 2, 3, 4}),
                                Tensor({4, 1}, {10, 20, 30, 40})};
    Group everyone = {0, 1};
    comm.reduceScatter(bufs, everyone);
    EXPECT_EQ(bufs[0].size(0), 2);
    EXPECT_EQ(bufs[0].flat(0), 11.0f);
    EXPECT_EQ(bufs[0].flat(1), 22.0f);
    EXPECT_EQ(bufs[1].flat(0), 33.0f);
    EXPECT_EQ(bufs[1].flat(1), 44.0f);
}

TEST(Communicator, AllGatherThenReduceScatterScalesByGroup)
{
    // ReduceScatter(AllGather(x)) = |group| * x restored to shape.
    const int world = 3;
    Communicator comm(world);
    auto bufs = makeBuffers(world, 2, 2);
    auto original = bufs;
    Group everyone = {0, 1, 2};
    comm.allGather(bufs, everyone);
    comm.reduceScatter(bufs, everyone);
    for (int r = 0; r < world; ++r) {
        Tensor expect = original[r];
        expect.scale_(3.0f);
        test::expectClose(bufs[r], expect, 1e-5f, "AG+RS");
    }
}

TEST(Communicator, AllReduceSums)
{
    const int world = 3;
    Communicator comm(world);
    std::vector<Tensor> bufs = {Tensor({2}, {1, 2}), Tensor({2}, {3, 4}),
                                Tensor({2}, {5, 6})};
    comm.allReduce(bufs, {0, 1, 2});
    for (int r = 0; r < world; ++r) {
        EXPECT_EQ(bufs[r].flat(0), 9.0f);
        EXPECT_EQ(bufs[r].flat(1), 12.0f);
    }
}

TEST(Communicator, BroadcastCopiesRoot)
{
    Communicator comm(3);
    std::vector<Tensor> bufs = {Tensor({1}, {1}), Tensor({1}, {2}),
                                Tensor({1}, {3})};
    comm.broadcast(bufs, {0, 1, 2}, 1);
    for (int r = 0; r < 3; ++r)
        EXPECT_EQ(bufs[r].flat(0), 2.0f);
}

TEST(Communicator, SubgroupCollectiveLeavesOthersUntouched)
{
    Communicator comm(4);
    auto bufs = makeBuffers(4, 2, 1);
    auto original = bufs;
    comm.allReduce(bufs, {0, 2});
    EXPECT_EQ(bufs[0].flat(0), original[0].flat(0) + original[2].flat(0));
    test::expectClose(bufs[1], original[1], 0.0f, "untouched rank 1");
    test::expectClose(bufs[3], original[3], 0.0f, "untouched rank 3");
}

/** Hierarchical AlltoAll must equal the direct algorithm bit-exactly. */
class HierA2aTest
    : public ::testing::TestWithParam<std::tuple<A2aAlgo, int, int>>
{
};

TEST_P(HierA2aTest, MatchesDirect)
{
    auto [algo, nodes, rpn] = GetParam();
    const int world = nodes * rpn;
    Communicator comm(world);
    Rng rng(42);
    std::vector<Tensor> bufs, direct;
    for (int r = 0; r < world; ++r)
        bufs.push_back(rng.normalTensor({static_cast<int64_t>(world * 2),
                                         3}));
    direct = bufs;

    Group everyone;
    for (int r = 0; r < world; ++r)
        everyone.push_back(r);
    comm.allToAll(direct, everyone, A2aAlgo::NcclDirect);
    comm.allToAll(bufs, everyone, algo, rpn);
    for (int r = 0; r < world; ++r)
        test::expectClose(bufs[r], direct[r], 0.0f, "hierarchical a2a");
}

std::string
hierA2aName(const ::testing::TestParamInfo<std::tuple<A2aAlgo, int, int>>
                &info)
{
    std::string name =
        std::get<0>(info.param) == A2aAlgo::Hier1D ? "h1d" : "h2d";
    return name + "_n" + std::to_string(std::get<1>(info.param)) + "_g" +
           std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, HierA2aTest,
    ::testing::Combine(::testing::Values(A2aAlgo::Hier1D, A2aAlgo::Hier2D),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 4)),
    hierA2aName);

TEST(ParallelLayout, RankMappingRoundTrips)
{
    ParallelLayout layout(3, 4);
    EXPECT_EQ(layout.worldSize(), 12);
    for (int ep = 0; ep < 3; ++ep) {
        for (int esp = 0; esp < 4; ++esp) {
            int r = layout.rankOf(ep, esp);
            EXPECT_EQ(layout.epOf(r), ep);
            EXPECT_EQ(layout.espOf(r), esp);
        }
    }
}

TEST(ParallelLayout, GroupsPartitionTheWorld)
{
    ParallelLayout layout(2, 3);
    std::vector<int> seen(layout.worldSize(), 0);
    for (int esp = 0; esp < 3; ++esp)
        for (int r : layout.epGroup(esp))
            seen[r]++;
    for (int c : seen)
        EXPECT_EQ(c, 1);
    std::fill(seen.begin(), seen.end(), 0);
    for (int ep = 0; ep < 2; ++ep)
        for (int r : layout.espGroup(ep))
            seen[r]++;
    for (int c : seen)
        EXPECT_EQ(c, 1);
}

TEST(ParallelLayout, EspGroupIsContiguousNode)
{
    ParallelLayout layout(2, 4);
    Group node0 = layout.espGroup(0);
    ASSERT_EQ(node0.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(node0[i], i);
}

} // namespace
} // namespace fsmoe::dist
