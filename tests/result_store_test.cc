/**
 * @file
 * Tests for the persistent result store: bit-exact JSON/CSV
 * round-trips, regression-diff gating, shard partitioning, and shard
 * merging back into the unsharded sweep.
 */
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/result_store.h"
#include "runtime/scenario.h"
#include "runtime/sweep_engine.h"

namespace fsmoe::runtime {
namespace {

/** A small real sweep (2 configurations x 6 schedules, 2 layers). */
std::vector<SweepResult>
sweptResults()
{
    const auto grid = ScenarioGrid()
                          .models({"gpt2xl-moe"})
                          .clusters({"testbedA", "testbedB"})
                          .numLayers({2})
                          .build();
    SweepEngine engine({/*numThreads=*/2});
    return toSweepResults(engine.run(grid));
}

void
expectBitEqual(const std::vector<SweepResult> &a,
               const std::vector<SweepResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].model, b[i].model);
        EXPECT_EQ(a[i].cluster, b[i].cluster);
        EXPECT_EQ(a[i].schedule, b[i].schedule);
        EXPECT_EQ(a[i].batch, b[i].batch);
        EXPECT_EQ(a[i].seqLen, b[i].seqLen);
        EXPECT_EQ(a[i].numLayers, b[i].numLayers);
        EXPECT_EQ(a[i].numExperts, b[i].numExperts);
        EXPECT_EQ(a[i].rMax, b[i].rMax);
        // memcmp: bit-identical doubles, not approximately equal.
        EXPECT_EQ(std::memcmp(&a[i].makespanMs, &b[i].makespanMs,
                              sizeof(double)),
                  0)
            << a[i].key();
        EXPECT_EQ(std::memcmp(a[i].opTimeMs.data(), b[i].opTimeMs.data(),
                              sizeof(double) * a[i].opTimeMs.size()),
                  0)
            << a[i].key();
    }
}

// --------------------------------------------------------- round-trip

TEST(ResultStore, KeyMatchesScenarioLabel)
{
    const auto grid = ScenarioGrid()
                          .models({"gpt2xl-moe"})
                          .clusters({"testbedB"})
                          .numLayers({1})
                          .build();
    SweepEngine engine({/*numThreads=*/1});
    const auto results = engine.run(grid);
    for (const auto &r : results)
        EXPECT_EQ(SweepResult::fromScenarioResult(r).key(),
                  r.scenario.label());
}

TEST(ResultStore, JsonRoundTripIsBitExact)
{
    const auto records = sweptResults();
    std::vector<SweepResult> reread;
    std::string error;
    ASSERT_TRUE(parseJson(toJson(records), &reread, &error)) << error;
    expectBitEqual(records, reread);
    // Writer determinism: serialising twice yields the same bytes.
    EXPECT_EQ(toJson(records), toJson(reread));
}

TEST(ResultStore, CsvRoundTripIsBitExact)
{
    const auto records = sweptResults();
    std::vector<SweepResult> reread;
    std::string error;
    ASSERT_TRUE(parseCsv(toCsv(records), &reread, &error)) << error;
    expectBitEqual(records, reread);
    EXPECT_EQ(toCsv(records), toCsv(reread));
}

TEST(ResultStore, LinkStatsRoundTripThroughBothFormats)
{
    const auto records = sweptResults();
    // The engine populates the per-link breakdown on every record.
    for (const SweepResult &r : records) {
        ASSERT_TRUE(r.hasLinkStats);
        double total = 0.0;
        for (double v : r.linkBusyMs)
            total += v;
        EXPECT_GT(total, 0.0) << r.key();
    }

    std::vector<SweepResult> reread;
    std::string error;
    ASSERT_TRUE(parseJson(toJson(records, /*include_link_stats=*/true),
                          &reread, &error))
        << error;
    expectBitEqual(records, reread);
    for (size_t i = 0; i < records.size(); ++i) {
        ASSERT_TRUE(reread[i].hasLinkStats);
        EXPECT_EQ(std::memcmp(records[i].linkBusyMs.data(),
                              reread[i].linkBusyMs.data(),
                              sizeof(double) * records[i].linkBusyMs.size()),
                  0)
            << records[i].key();
    }

    ASSERT_TRUE(parseCsv(toCsv(records, /*include_link_stats=*/true),
                         &reread, &error))
        << error;
    expectBitEqual(records, reread);
    for (size_t i = 0; i < records.size(); ++i) {
        ASSERT_TRUE(reread[i].hasLinkStats);
        EXPECT_EQ(std::memcmp(records[i].linkBusyMs.data(),
                              reread[i].linkBusyMs.data(),
                              sizeof(double) * records[i].linkBusyMs.size()),
                  0)
            << records[i].key();
    }
}

TEST(ResultStore, DefaultWritersOmitLinkStats)
{
    const auto records = sweptResults();
    // Opt-out writers emit the pre-link-stat shape: no link columns in
    // the bytes, and readers leave hasLinkStats false.
    EXPECT_EQ(toJson(records).find("link_busy_ms"), std::string::npos);
    EXPECT_EQ(toCsv(records).find("link_"), std::string::npos);
    std::vector<SweepResult> reread;
    std::string error;
    ASSERT_TRUE(parseJson(toJson(records), &reread, &error)) << error;
    for (const SweepResult &r : reread)
        EXPECT_FALSE(r.hasLinkStats);
    ASSERT_TRUE(parseCsv(toCsv(records), &reread, &error)) << error;
    for (const SweepResult &r : reread)
        EXPECT_FALSE(r.hasLinkStats);
}

TEST(ResultStore, StatusFieldsRoundTripThroughAllFourHeaderShapes)
{
    auto records = sweptResults();
    ASSERT_GE(records.size(), 3u);
    records[1].status = ResultStatus::Quarantined;
    records[1].attempts = 3;
    records[1].error = "injected eval fault, \"quoted\" and, commas";
    records[1].makespanMs = 0.0;
    records[1].opTimeMs.fill(0.0);
    records[2].status = ResultStatus::Failed;
    records[2].attempts = 1;
    records[2].error = "transient";
    records[2].makespanMs = 0.0;
    records[2].opTimeMs.fill(0.0);

    for (bool links : {false, true}) {
        SCOPED_TRACE(links ? "with links" : "without links");
        std::vector<SweepResult> reread;
        std::string error;
        ASSERT_TRUE(parseJson(toJson(records, links), &reread, &error))
            << error;
        expectBitEqual(records, reread);
        ASSERT_TRUE(parseCsv(toCsv(records, links), &reread, &error))
            << error;
        expectBitEqual(records, reread);
        EXPECT_EQ(reread[0].status, ResultStatus::Ok);
        EXPECT_EQ(reread[1].status, ResultStatus::Quarantined);
        EXPECT_EQ(reread[1].attempts, 3);
        EXPECT_EQ(reread[1].error, records[1].error);
        EXPECT_EQ(reread[2].status, ResultStatus::Failed);
        EXPECT_EQ(reread[2].attempts, 1);
    }
}

TEST(ResultStore, AllOkOutputIsByteIdenticalToPreStatusWriters)
{
    // The status columns are strictly opt-in-by-necessity: a result
    // set without failures serialises to the exact bytes the writers
    // emitted before status existed, keeping blessed baselines valid.
    const auto records = sweptResults();
    EXPECT_EQ(toJson(records).find("status"), std::string::npos);
    EXPECT_EQ(toCsv(records).find("status"), std::string::npos);
    for (const SweepResult &r : records)
        EXPECT_EQ(toJsonRecord(r).find("status"), std::string::npos);
}

TEST(ResultStore, JournalRecordRoundTripsStatusAndLinkStats)
{
    auto records = sweptResults();
    SweepResult ok = records[0];
    SweepResult bad = records[1];
    bad.status = ResultStatus::Quarantined;
    bad.attempts = 2;
    bad.error = "worker killed by signal 9";
    bad.makespanMs = 0.0;
    bad.opTimeMs.fill(0.0);

    for (const SweepResult &r : {ok, bad}) {
        const std::string line = toJsonRecord(r);
        EXPECT_EQ(line.find('\n'), std::string::npos);
        SweepResult reread;
        std::string error;
        ASSERT_TRUE(parseJsonRecord(line, &reread, &error)) << error;
        EXPECT_EQ(toJsonRecord(reread), line);
        EXPECT_EQ(reread.status, r.status);
        EXPECT_EQ(reread.attempts, r.attempts);
        EXPECT_EQ(reread.hasLinkStats, r.hasLinkStats);
    }
    SweepResult out;
    std::string error;
    EXPECT_FALSE(parseJsonRecord("not json", &out, &error));
    EXPECT_FALSE(parseJsonRecord("{\"model\":\"m\"}", &out, &error));
}

TEST(ResultStore, ParseResultStatusAcceptsOnlyWireNames)
{
    ResultStatus s;
    EXPECT_TRUE(parseResultStatus("ok", &s));
    EXPECT_EQ(s, ResultStatus::Ok);
    EXPECT_TRUE(parseResultStatus("failed", &s));
    EXPECT_EQ(s, ResultStatus::Failed);
    EXPECT_TRUE(parseResultStatus("quarantined", &s));
    EXPECT_EQ(s, ResultStatus::Quarantined);
    EXPECT_FALSE(parseResultStatus("OK", &s));
    EXPECT_FALSE(parseResultStatus("", &s));
    EXPECT_STREQ(resultStatusName(ResultStatus::Quarantined),
                 "quarantined");
}

TEST(ResultStore, AwkwardValuesAndNamesSurviveBothFormats)
{
    SweepResult r;
    r.model = "model,with \"quotes\"\nand newline";
    r.cluster = "back\\slash";
    r.schedule = "FSMoE";
    r.batch = 7;
    r.seqLen = 4096;
    r.numLayers = 3;
    r.numExperts = 9;
    r.rMax = 8;
    r.makespanMs = 1.0 / 3.0;
    r.opTimeMs[0] = 1e-300;         // subnormal-adjacent tiny value
    r.opTimeMs[1] = 12345.678901234567;
    r.opTimeMs[2] = -0.0;
    const std::vector<SweepResult> records = {r};

    std::vector<SweepResult> reread;
    std::string error;
    ASSERT_TRUE(parseJson(toJson(records), &reread, &error)) << error;
    expectBitEqual(records, reread);
    ASSERT_TRUE(parseCsv(toCsv(records), &reread, &error)) << error;
    expectBitEqual(records, reread);
}

TEST(ResultStore, FileRoundTripThroughBothExtensions)
{
    const auto records = sweptResults();
    const std::string json_path =
        testing::TempDir() + "/fsmoe_results.json";
    const std::string csv_path = testing::TempDir() + "/fsmoe_results.csv";
    ASSERT_TRUE(writeResultsJson(json_path, records));
    ASSERT_TRUE(writeResultsCsv(csv_path, records));

    std::vector<SweepResult> from_json, from_csv;
    std::string error;
    ASSERT_TRUE(readResults(json_path, &from_json, &error)) << error;
    ASSERT_TRUE(readResults(csv_path, &from_csv, &error)) << error;
    expectBitEqual(records, from_json);
    expectBitEqual(records, from_csv);

    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
}

TEST(ResultStore, ReadersRejectMalformedInput)
{
    std::vector<SweepResult> out;
    std::string error;
    EXPECT_FALSE(parseJson("", &out, &error));
    EXPECT_FALSE(parseJson("[1,2,3]", &out, &error));
    EXPECT_FALSE(parseJson("{\"schema\":\"other\",\"results\":[]}", &out,
                           &error));
    EXPECT_FALSE(
        parseJson("{\"schema\":\"fsmoe-sweep-results\",\"version\":1,"
                  "\"results\":[{\"model\":\"m\"}]}",
                  &out, &error));
    EXPECT_FALSE(parseCsv("", &out, &error));
    EXPECT_FALSE(parseCsv("not,the,header\n", &out, &error));
    EXPECT_FALSE(readResults("/no/such/file.json", &out, &error));

    // Pathological nesting must fail the parse, not overflow the stack.
    EXPECT_FALSE(parseJson(std::string(200000, '['), &out, &error));

    // The empty result set is valid in both formats.
    EXPECT_TRUE(parseJson(toJson({}), &out, &error)) << error;
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(parseCsv(toCsv({}), &out, &error)) << error;
    EXPECT_TRUE(out.empty());
}

// ------------------------------------------------------------ diffing

TEST(ResultStore, SelfDiffPassesWithZeroDeltas)
{
    const auto records = sweptResults();
    const DiffReport report = diffResults(records, records);
    EXPECT_EQ(report.matched.size(), records.size());
    EXPECT_TRUE(report.onlyBaseline.empty());
    EXPECT_TRUE(report.onlyCurrent.empty());
    EXPECT_TRUE(report.duplicateKeys.empty());
    for (const DiffEntry &e : report.matched) {
        EXPECT_EQ(e.deltaMs(), 0.0);
        EXPECT_EQ(e.relDelta(), 0.0);
    }
    EXPECT_TRUE(report.passes(0.0));
    EXPECT_NE(formatDiff(report, 0.0).find("PASS"), std::string::npos);
}

TEST(ResultStore, DiffGatesOnDriftAndRespectsTolerance)
{
    const auto baseline = sweptResults();
    auto current = baseline;
    current[3].makespanMs *= 1.001; // +0.1 % regression

    const DiffReport report = diffResults(baseline, current);
    EXPECT_FALSE(report.passes(0.0));
    ASSERT_EQ(report.exceeding(0.0).size(), 1u);
    EXPECT_EQ(report.exceeding(0.0)[0]->key, baseline[3].key());
    EXPECT_NEAR(report.exceeding(0.0)[0]->relDelta(), 0.001, 1e-12);
    // Within a 0.5 % budget the drift is tolerated...
    EXPECT_TRUE(report.passes(0.005));
    // ...but not within 0.05 %.
    EXPECT_FALSE(report.passes(0.0005));
    EXPECT_NE(formatDiff(report, 0.0).find("FAIL"), std::string::npos);

    // Improvements beyond tolerance fail too: a stale baseline is a
    // stale baseline in either direction.
    current = baseline;
    current[3].makespanMs *= 0.9;
    EXPECT_FALSE(diffResults(baseline, current).passes(0.01));
}

TEST(ResultStore, DiffFlagsMissingExtraAndDuplicateScenarios)
{
    const auto baseline = sweptResults();
    auto current = baseline;
    const std::string dropped = current.back().key();
    current.pop_back();
    SweepResult extra = current.front();
    extra.model = "some-other-model";
    current.push_back(extra);

    const DiffReport report = diffResults(baseline, current);
    ASSERT_EQ(report.onlyBaseline.size(), 1u);
    EXPECT_EQ(report.onlyBaseline[0], dropped);
    ASSERT_EQ(report.onlyCurrent.size(), 1u);
    EXPECT_EQ(report.onlyCurrent[0], extra.key());
    EXPECT_FALSE(report.passes(1.0)); // no tolerance forgives a set diff

    auto dup = baseline;
    dup.push_back(dup.front());
    EXPECT_FALSE(diffResults(baseline, dup).passes(1.0));
    EXPECT_EQ(diffResults(baseline, dup).duplicateKeys.size(), 1u);
}

// ----------------------------------------------------------- sharding

TEST(ResultStore, ShardsPartitionTheGridDisjointlyInOrder)
{
    const auto grid = ScenarioGrid()
                          .models({"gpt2xl-moe", "mixtral-7b"})
                          .clusters({"testbedA", "testbedB"})
                          .batches({1, 2})
                          .build();
    ASSERT_EQ(grid.size(), 48u);

    for (int n = 1; n <= 5; ++n) {
        std::vector<std::string> merged_labels;
        std::set<std::string> seen;
        for (int k = 1; k <= n; ++k) {
            const auto part = shardScenarios(grid, {k, n});
            for (const Scenario &s : part) {
                EXPECT_TRUE(seen.insert(s.label()).second)
                    << "duplicate across shards: " << s.label();
                merged_labels.push_back(s.label());
            }
        }
        // Union == full grid, in the original order.
        ASSERT_EQ(merged_labels.size(), grid.size()) << "n=" << n;
        for (size_t i = 0; i < grid.size(); ++i)
            EXPECT_EQ(merged_labels[i], grid[i].label()) << "n=" << n;
    }

    // More shards than scenarios: every scenario still lands exactly
    // once, the surplus shards are empty.
    const auto tiny = ScenarioGrid().numLayers({1}).build();
    size_t total = 0;
    for (int k = 1; k <= 50; ++k)
        total += shardScenarios(tiny, {k, 50}).size();
    EXPECT_EQ(total, tiny.size());
}

TEST(ResultStore, ParseShardSpecAcceptsOnlyValidRanges)
{
    ShardSpec spec;
    ASSERT_TRUE(parseShardSpec("1/1", &spec));
    EXPECT_EQ(spec.index, 1);
    EXPECT_EQ(spec.count, 1);
    ASSERT_TRUE(parseShardSpec("3/8", &spec));
    EXPECT_EQ(spec.index, 3);
    EXPECT_EQ(spec.count, 8);
    EXPECT_FALSE(parseShardSpec("", &spec));
    EXPECT_FALSE(parseShardSpec("2", &spec));
    EXPECT_FALSE(parseShardSpec("2/", &spec));
    EXPECT_FALSE(parseShardSpec("/2", &spec));
    EXPECT_FALSE(parseShardSpec("0/2", &spec));
    EXPECT_FALSE(parseShardSpec("3/2", &spec));
    EXPECT_FALSE(parseShardSpec("a/b", &spec));
    EXPECT_FALSE(parseShardSpec("1/2/3", &spec));
}

TEST(ResultStore, ParseShardSpecExplainsRejectionsAndRejectsOverflow)
{
    ShardSpec spec{-7, -7};
    std::string error;

    // K > N and N == 0 name the violated constraint, not just "false".
    EXPECT_FALSE(parseShardSpec("3/2", &spec, &error));
    EXPECT_NE(error.find("'3/2'"), std::string::npos) << error;
    EXPECT_NE(error.find("K must be in [1, N]"), std::string::npos)
        << error;
    EXPECT_FALSE(parseShardSpec("0/0", &spec, &error));
    EXPECT_NE(error.find("N must be >= 1"), std::string::npos) << error;
    EXPECT_FALSE(parseShardSpec("nope", &spec, &error));
    EXPECT_NE(error.find("K/N"), std::string::npos) << error;

    // Values beyond 32 bits used to wrap through the int cast and
    // silently select the wrong shard (4294967297 -> 1); they must be
    // rejected, including strtol-saturating digit strings.
    EXPECT_FALSE(parseShardSpec("4294967297/4294967298", &spec, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
    EXPECT_FALSE(
        parseShardSpec("1/99999999999999999999999999", &spec, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;

    // Failures never partially update the output spec.
    EXPECT_EQ(spec.index, -7);
    EXPECT_EQ(spec.count, -7);

    // The error argument stays optional.
    EXPECT_FALSE(parseShardSpec("3/2", &spec));
    ASSERT_TRUE(parseShardSpec("2147483647/2147483647", &spec, &error));
    EXPECT_EQ(spec.index, 2147483647);
}

TEST(ResultStore, MergeAutoDetectsMixedShapeShards)
{
    // One sweep, split in two, persisted in the two on-disk shapes:
    // shard A without the link-util columns (old shape), shard B with
    // them (new shape). A single mergeResults call over what the
    // readers auto-detected must reassemble the full sweep.
    const auto full = sweptResults();
    ASSERT_GE(full.size(), 4u);
    const size_t half = full.size() / 2;
    const std::vector<SweepResult> a(full.begin(), full.begin() + half);
    const std::vector<SweepResult> b(full.begin() + half, full.end());

    std::vector<SweepResult> a_read, b_read;
    std::string error;
    ASSERT_TRUE(parseJson(toJson(a, /*include_link_stats=*/false),
                          &a_read, &error))
        << error;
    ASSERT_TRUE(parseCsv(toCsv(b, /*include_link_stats=*/true), &b_read,
                         &error))
        << error;
    for (const SweepResult &r : a_read)
        EXPECT_FALSE(r.hasLinkStats) << r.key();
    for (const SweepResult &r : b_read)
        EXPECT_TRUE(r.hasLinkStats) << r.key();

    std::vector<SweepResult> merged;
    ASSERT_TRUE(mergeResults({a_read, b_read}, &merged, &error)) << error;
    expectBitEqual(merged, full);

    // The merged set diffs clean against the original sweep even
    // though its rows disagree about carrying link stats.
    EXPECT_TRUE(diffResults(full, merged).passes(0.0));
}

TEST(ResultStore, DiffTreatsNonFiniteMakespansAsExceeding)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    auto row = [](const char *model, double ms) {
        SweepResult r;
        r.model = model;
        r.makespanMs = ms;
        return r;
    };

    // NaN drift would otherwise sail through every tolerance (NaN
    // comparisons are all false), and inf == inf would "match".
    const std::vector<SweepResult> baseline = {
        row("m-nan", 100.0), row("m-inf", inf), row("m-nan2", nan),
        row("m-ok", 100.0)};
    const std::vector<SweepResult> current = {
        row("m-nan", nan), row("m-inf", inf), row("m-nan2", nan),
        row("m-ok", 100.0)};
    const DiffReport report = diffResults(baseline, current);
    ASSERT_EQ(report.matched.size(), 4u);

    const auto bad = report.exceeding(/*tolerance_frac=*/1e9);
    ASSERT_EQ(bad.size(), 3u);
    std::set<std::string> keys;
    for (const DiffEntry *e : bad)
        keys.insert(e->key);
    EXPECT_EQ(keys, (std::set<std::string>{
                        row("m-nan", 0).key(), row("m-inf", 0).key(),
                        row("m-nan2", 0).key()}));
    EXPECT_FALSE(report.passes(1e9));
}

TEST(ResultStore, DiffToleranceBoundaryIsInclusive)
{
    auto row = [](double ms) {
        SweepResult r;
        r.model = "m";
        r.makespanMs = ms;
        return r;
    };
    // Drift of exactly the tolerance passes (the gate is "exceeds"),
    // one ulp beyond fails, and the bound is symmetric.
    const double tol = (101.0 - 100.0) / 100.0;
    EXPECT_TRUE(diffResults({row(100.0)}, {row(101.0)}).passes(tol));
    EXPECT_TRUE(diffResults({row(100.0)}, {row(99.0)}).passes(tol));
    EXPECT_FALSE(diffResults({row(100.0)},
                             {row(std::nextafter(101.0, 1e9))})
                     .passes(tol));
    EXPECT_FALSE(diffResults({row(100.0)}, {row(98.999999)}).passes(tol));
    // Zero tolerance still accepts bit-identical rows.
    EXPECT_TRUE(diffResults({row(100.0)}, {row(100.0)}).passes(0.0));
}

TEST(ResultStore, MergedShardSweepsAreBitIdenticalToUnsharded)
{
    const auto grid = ScenarioGrid()
                          .models({"gpt2xl-moe"})
                          .clusters({"testbedA", "testbedB"})
                          .numLayers({2})
                          .build();

    SweepEngine full_engine({/*numThreads=*/2});
    const auto full = toSweepResults(full_engine.run(grid));

    // Each shard runs in its own engine, as separate processes would.
    std::vector<std::vector<SweepResult>> shards;
    for (int k = 1; k <= 3; ++k) {
        SweepEngine shard_engine({/*numThreads=*/2});
        shards.push_back(toSweepResults(
            shard_engine.run(shardScenarios(grid, {k, 3}))));
    }

    std::vector<SweepResult> merged;
    std::string error;
    ASSERT_TRUE(mergeResults(shards, &merged, &error)) << error;
    expectBitEqual(full, merged);
    // The acceptance bar: the merged *serialised artifact* is
    // byte-identical to the unsharded one.
    EXPECT_EQ(toJson(full), toJson(merged));
    EXPECT_EQ(toCsv(full), toCsv(merged));
}

TEST(ResultStore, MergeRejectsOverlappingShards)
{
    const auto records = sweptResults();
    std::vector<SweepResult> merged;
    std::string error;
    ASSERT_TRUE(mergeResults({records, {}}, &merged, &error)) << error;
    EXPECT_EQ(merged.size(), records.size());
    EXPECT_FALSE(mergeResults({records, records}, &merged, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
    EXPECT_TRUE(merged.empty());
}

} // namespace
} // namespace fsmoe::runtime
