/**
 * @file
 * Tests for the Order/I-Order sub-module (both kernels) and the two
 * expert networks, including capacity dropping, combine gradients, and
 * ESP hidden-dimension sharding.
 */
#include <gtest/gtest.h>

#include "core/expert.h"
#include "core/gate.h"
#include "core/order.h"
#include "test_util.h"

namespace fsmoe::core {
namespace {

GateResult
fixedRouting()
{
    // 4 tokens, 2 experts, k=2 with fixed weights.
    GateResult r;
    r.assignments = {
        {0, 0, 0.7f}, {0, 1, 0.3f}, {1, 1, 0.9f}, {1, 0, 0.1f},
        {2, 0, 0.5f}, {2, 1, 0.5f}, {3, 1, 1.0f}, {3, 0, 0.0f},
    };
    return r;
}

TEST(Order, BothKernelsProduceIdenticalLayouts)
{
    Rng rng(3);
    Tensor x = rng.normalTensor({4, 6});
    GateResult routing = fixedRouting();
    OrderMap map_a, map_b;
    Order tutel(OrderKind::TutelSparse), gshard(OrderKind::GShardEinsum);
    Tensor ya = tutel.forward(x, routing, 2, 4, map_a);
    Tensor yb = gshard.forward(x, routing, 2, 4, map_b);
    test::expectClose(ya, yb, 1e-6f, "order kernels");
    EXPECT_EQ(map_a.slotToken, map_b.slotToken);
}

TEST(Order, DispatchPlacesTokensAtAssignedSlots)
{
    Rng rng(4);
    Tensor x = rng.normalTensor({4, 6});
    GateResult routing = fixedRouting();
    OrderMap map;
    Order order(OrderKind::TutelSparse);
    Tensor y = order.forward(x, routing, 2, 4, map);
    EXPECT_EQ(y.size(0), 2);
    EXPECT_EQ(y.size(1), 4);
    // Expert 0 receives tokens 0, 1, 2, 3 in assignment order.
    for (int64_t slot = 0; slot < 4; ++slot) {
        int64_t t = map.slotToken[slot];
        ASSERT_GE(t, 0);
        for (int64_t c = 0; c < 6; ++c)
            EXPECT_EQ(y.at(0, slot, c), x.at(t, c));
    }
}

TEST(Order, CapacityDropsOverflowFirstComeFirstServed)
{
    Rng rng(5);
    Tensor x = rng.normalTensor({4, 6});
    GateResult routing = fixedRouting();
    OrderMap map;
    Order order(OrderKind::TutelSparse);
    order.forward(x, routing, 2, 2, map); // capacity 2 < 4 per expert
    EXPECT_EQ(map.droppedCount(), 4);
    // First two assignments per expert survive.
    EXPECT_GE(map.assignmentSlot[0], 0); // token 0 -> expert 0
    EXPECT_GE(map.assignmentSlot[1], 0); // token 0 -> expert 1
    EXPECT_GE(map.assignmentSlot[2], 0); // token 1 -> expert 1
    EXPECT_GE(map.assignmentSlot[3], 0); // token 1 -> expert 0
    EXPECT_EQ(map.assignmentSlot[4], -1);
    EXPECT_EQ(map.assignmentSlot[7], -1);
}

TEST(Order, CombineAppliesGateWeights)
{
    Tensor x({2, 2}, {1, 2, 3, 4});
    GateResult routing;
    routing.assignments = {{0, 0, 0.5f}, {1, 0, 2.0f}};
    OrderMap map;
    Order order(OrderKind::TutelSparse);
    Tensor disp = order.forward(x, routing, 1, 2, map);
    Tensor out = order.combine(disp, map);
    EXPECT_EQ(out.at(0, 0), 0.5f);
    EXPECT_EQ(out.at(0, 1), 1.0f);
    EXPECT_EQ(out.at(1, 0), 6.0f);
    EXPECT_EQ(out.at(1, 1), 8.0f);
}

TEST(Order, RoundTripWithUnitWeightsIsIdentity)
{
    Rng rng(6);
    Tensor x = rng.normalTensor({5, 3});
    GateResult routing;
    for (int64_t t = 0; t < 5; ++t)
        routing.assignments.push_back({t, 0, 1.0f});
    OrderMap map;
    Order order(OrderKind::TutelSparse);
    Tensor disp = order.forward(x, routing, 1, 5, map);
    Tensor out = order.combine(disp, map);
    test::expectClose(out, x, 1e-6f, "order round trip");
}

TEST(Order, BackwardGathersDispatchGradient)
{
    Rng rng(7);
    Tensor x = rng.normalTensor({4, 6});
    GateResult routing = fixedRouting();
    OrderMap map;
    Order order(OrderKind::TutelSparse);
    order.forward(x, routing, 2, 4, map);
    Tensor d_disp = rng.normalTensor({2, 4, 6});
    Tensor dx = order.backward(d_disp, map);
    // Token 2 went to expert 0 and expert 1; its gradient is the sum.
    int64_t s0 = map.assignmentSlot[4];
    int64_t s1 = map.assignmentSlot[5];
    for (int64_t c = 0; c < 6; ++c) {
        EXPECT_NEAR(dx.at(2, c),
                    d_disp.flat(s0 * 6 + c) + d_disp.flat(s1 * 6 + c),
                    1e-6f);
    }
}

TEST(Order, CombineBackwardMatchesFiniteDifference)
{
    Rng rng(8);
    Tensor x = rng.normalTensor({4, 6});
    GateResult routing = fixedRouting();
    OrderMap map;
    Order order(OrderKind::TutelSparse);
    Tensor disp = order.forward(x, routing, 2, 4, map);
    Tensor d_out = rng.normalTensor({4, 6});

    Tensor d_disp;
    std::vector<float> d_weights;
    order.combineBackward(d_out, disp, map, d_disp, d_weights);

    auto loss = [&]() {
        Tensor out = order.combine(disp, map);
        double s = 0.0;
        for (int64_t i = 0; i < out.numel(); ++i)
            s += out.flat(i) * d_out.flat(i);
        return s;
    };
    test::expectGradMatches(disp, d_disp, loss, 1e-3, 1e-2);
    // Weight gradient: perturb map weights directly.
    for (size_t i = 0; i < routing.assignments.size(); ++i) {
        int64_t slot = map.assignmentSlot[i];
        if (slot < 0)
            continue;
        float saved = map.slotWeight[slot];
        map.slotWeight[slot] = saved + 1e-2f;
        double up = loss();
        map.slotWeight[slot] = saved - 1e-2f;
        double down = loss();
        map.slotWeight[slot] = saved;
        EXPECT_NEAR(d_weights[i], (up - down) / 2e-2, 2e-2)
            << "assignment " << i;
    }
}

class ExpertTest : public ::testing::TestWithParam<FfnType>
{
};

TEST_P(ExpertTest, OutputShapeMatchesInput)
{
    Rng rng(9);
    auto expert = makeExpert(GetParam(), 10, 16, rng);
    Tensor x = rng.normalTensor({7, 10});
    Tensor y = expert->forward(x);
    EXPECT_TRUE(y.sameShape(x));
}

TEST_P(ExpertTest, ZeroRowsStayZero)
{
    Rng rng(10);
    auto expert = makeExpert(GetParam(), 8, 12, rng);
    Tensor x({3, 8});
    Tensor y = expert->forward(x);
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_EQ(y.flat(i), 0.0f) << "padding leaked through expert";
}

TEST_P(ExpertTest, BackwardMatchesFiniteDifference)
{
    Rng rng(11);
    auto expert = makeExpert(GetParam(), 6, 8, rng);
    Tensor x = rng.normalTensor({5, 6});
    Tensor dy = rng.normalTensor({5, 6});
    expert->zeroGrad();
    expert->forward(x);
    Tensor dx = expert->backward(dy);

    auto loss = [&]() {
        Tensor y = expert->forward(x);
        double s = 0.0;
        for (int64_t i = 0; i < y.numel(); ++i)
            s += y.flat(i) * dy.flat(i);
        return s;
    };
    test::expectGradMatches(x, dx, loss, 1e-2, 3e-2, 24);
    auto params = expert->params();
    auto grads = expert->grads();
    for (size_t pi = 0; pi < params.size(); ++pi)
        test::expectGradMatches(*params[pi], *grads[pi], loss, 1e-2, 3e-2,
                                16);
}

TEST_P(ExpertTest, ShardOutputsSumToFullExpert)
{
    Rng rng(12);
    auto expert = makeExpert(GetParam(), 6, 12, rng);
    Tensor x = rng.normalTensor({4, 6});
    Tensor full = expert->forward(x);
    for (int shards : {2, 3, 4}) {
        Tensor sum({4, 6});
        for (int s = 0; s < shards; ++s) {
            auto piece = expert->shard(s, shards);
            sum.add_(piece->forward(x));
        }
        test::expectClose(sum, full, 1e-4f, "shard sum");
    }
}

TEST_P(ExpertTest, ShardGradientsTileTheFullGradient)
{
    Rng rng(13);
    auto expert = makeExpert(GetParam(), 6, 8, rng);
    Tensor x = rng.normalTensor({3, 6});
    Tensor dy = rng.normalTensor({3, 6});

    expert->zeroGrad();
    expert->forward(x);
    Tensor dx_full = expert->backward(dy);

    auto s0 = expert->shard(0, 2);
    auto s1 = expert->shard(1, 2);
    s0->forward(x);
    s1->forward(x);
    Tensor dx = s0->backward(dy);
    dx.add_(s1->backward(dy));
    test::expectClose(dx, dx_full, 1e-4f, "sharded input gradient");
}

INSTANTIATE_TEST_SUITE_P(
    Ffns, ExpertTest,
    ::testing::Values(FfnType::Simple, FfnType::Mixtral),
    [](const ::testing::TestParamInfo<FfnType> &info) {
        return info.param == FfnType::Mixtral ? "mixtral" : "simple";
    });

TEST(Expert, NamesAndGemmCounts)
{
    Rng rng(14);
    EXPECT_EQ(makeExpert(FfnType::Simple, 4, 4, rng)->name(),
              "simple-ffn");
    EXPECT_EQ(makeExpert(FfnType::Mixtral, 4, 4, rng)->name(),
              "mixtral-ffn");
    EXPECT_EQ(ffnGemmCount(FfnType::Simple), 2);
    EXPECT_EQ(ffnGemmCount(FfnType::Mixtral), 3);
}

} // namespace
} // namespace fsmoe::core
