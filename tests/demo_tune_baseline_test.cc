/**
 * @file
 * Cross-PR byte-gate for the schedule advisor, in-tree: tuning the
 * demo query must serialise to the exact bytes of the blessed answer
 * (bench/baselines/demo_tune.json). CI runs the same `cmp` on the
 * fsmoe_tune artifact in Debug and Release; this test makes the
 * guarantee enforceable from a bare `ctest`, so a simulator, schedule,
 * or search change that moves the recommendation (or any frontier
 * number) fails locally before a PR is drafted. Regenerate the
 * baseline deliberately (`fsmoe_tune --quiet --out-json
 * bench/baselines/demo_tune.json`) when a change is *supposed* to move
 * it.
 *
 * The baseline path is compiled in from CMake (FSMOE_TUNE_BASELINE),
 * so the test is independent of the ctest working directory.
 */
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "runtime/tuner.h"

namespace fsmoe::runtime {
namespace {

TEST(DemoTuneBaseline, AnswerIsByteIdenticalToBlessedBaseline)
{
    std::ifstream in(FSMOE_TUNE_BASELINE, std::ios::binary);
    ASSERT_TRUE(in.good()) << "cannot open baseline " FSMOE_TUNE_BASELINE;
    const std::string baseline((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());

    TuneQuery query;
    query.model = "gpt2xl-moe";
    query.cluster = "testbedA";
    Tuner tuner;
    const std::string current = Tuner::answerJson(tuner.tune(query));

    ASSERT_EQ(current.size(), baseline.size())
        << "demo tuner answer serialised to a different length than "
           "the baseline — the search moved";
    EXPECT_TRUE(current == baseline)
        << "demo tuner answer bytes differ from " FSMOE_TUNE_BASELINE;
}

} // namespace
} // namespace fsmoe::runtime
