/**
 * @file
 * Tests for the scenario-sweep runtime: thread-pool semantics, grid
 * enumeration, parallel-equals-serial determinism, ModelCost cache
 * accounting, and Chrome-trace export well-formedness.
 */
#include <atomic>
#include <cctype>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"
#include "runtime/scenario.h"
#include "runtime/sweep_engine.h"
#include "runtime/thread_pool.h"
#include "runtime/trace_export.h"
#include "sim/trace.h"

namespace fsmoe::runtime {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
    EXPECT_EQ(pool.submitted(), 64u);
}

TEST(ThreadPool, BoundedQueueCompletesEverything)
{
    // Capacity 2 with many more tasks than workers: submit() must
    // block-and-release rather than drop or deadlock.
    ThreadPool pool(2, /*queue_capacity=*/2);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([&ran]() { ran++; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
}

// ---------------------------------------------------------- scenarios

TEST(Scenario, GridEnumeratesCartesianProductDeterministically)
{
    auto grid = ScenarioGrid()
                    .models({"gpt2xl-moe", "mixtral-7b"})
                    .clusters({"testbedA", "testbedB"})
                    .batches({1, 2})
                    .build();
    EXPECT_EQ(grid.size(),
              2u * 2u * 2u * core::ScheduleRegistry::instance().names().size());
    auto again = ScenarioGrid()
                     .models({"gpt2xl-moe", "mixtral-7b"})
                     .clusters({"testbedA", "testbedB"})
                     .batches({1, 2})
                     .build();
    ASSERT_EQ(grid.size(), again.size());
    for (size_t i = 0; i < grid.size(); ++i)
        EXPECT_EQ(grid[i].label(), again[i].label());
}

TEST(Scenario, CostKeyIgnoresScheduleOnly)
{
    Scenario a;
    a.model = "gpt2xl-moe";
    a.cluster = "testbedA";
    a.schedule = "FSMoE";
    Scenario b = a;
    b.schedule = "Tutel?degree=4";
    EXPECT_EQ(a.costKey(), b.costKey());
    EXPECT_NE(a.label(), b.label());
    b.batch = 2;
    EXPECT_NE(a.costKey(), b.costKey());
}

TEST(Scenario, RegistryKnowsBuiltinsAndAcceptsCustomPresets)
{
    ScenarioRegistry &reg = ScenarioRegistry::instance();
    EXPECT_TRUE(reg.hasModel("mixtral-7b"));
    EXPECT_TRUE(reg.hasCluster("testbedB"));
    EXPECT_FALSE(reg.hasModel("no-such-model"));

    reg.registerCluster("testbedA-3node",
                        []() { return sim::scaledTestbedA(3); });
    EXPECT_TRUE(reg.hasCluster("testbedA-3node"));
    EXPECT_EQ(reg.makeCluster("testbedA-3node").numNodes, 3);
}

TEST(Schedule, FactoryBySpecResolvesCanonicalNamesAndAliases)
{
    // Alias/normalization details live in schedule_registry_test; here
    // we only check the runtime-facing contract: every registered name
    // resolves to a schedule reporting that canonical name.
    for (const std::string &name :
         core::ScheduleRegistry::instance().names()) {
        auto sched = core::Schedule::create(name);
        EXPECT_EQ(sched->name(), name);
    }
    std::string error;
    EXPECT_EQ(core::ScheduleRegistry::instance().tryCreate("bogus", &error),
              nullptr);
    EXPECT_NE(error.find("unknown schedule"), std::string::npos);
}

// -------------------------------------------------------------- engine

/** A small but non-trivial grid: 4 configurations x 6 schedules. */
std::vector<Scenario>
testGrid()
{
    return ScenarioGrid()
        .models({"gpt2xl-moe"})
        .clusters({"testbedA", "testbedB"})
        .batches({1, 2})
        .numLayers({3})
        .build();
}

TEST(SweepEngine, ParallelResultsAreBitIdenticalToSerial)
{
    const auto grid = testGrid();
    SweepEngine serial({/*numThreads=*/1});
    SweepEngine parallel({/*numThreads=*/4});
    const auto s = serial.run(grid);
    const auto p = parallel.run(grid);

    ASSERT_EQ(s.size(), grid.size());
    ASSERT_EQ(p.size(), grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        EXPECT_GT(s[i].makespanMs, 0.0);
        // memcmp: bit-identical, not approximately equal.
        EXPECT_EQ(std::memcmp(&s[i].makespanMs, &p[i].makespanMs,
                              sizeof(double)),
                  0)
            << grid[i].label();
        ASSERT_EQ(s[i].sim.trace.size(), p[i].sim.trace.size());
        for (size_t t = 0; t < s[i].sim.trace.size(); ++t) {
            EXPECT_EQ(s[i].sim.trace[t].id, p[i].sim.trace[t].id);
            EXPECT_EQ(std::memcmp(&s[i].sim.trace[t].start,
                                  &p[i].sim.trace[t].start,
                                  sizeof(double)),
                      0);
            EXPECT_EQ(std::memcmp(&s[i].sim.trace[t].finish,
                                  &p[i].sim.trace[t].finish,
                                  sizeof(double)),
                      0);
        }
    }
}

TEST(SweepEngine, CostCacheCountsHitsPerSharedConfiguration)
{
    const auto grid = testGrid();
    std::set<std::string> unique_keys;
    for (const Scenario &s : grid)
        unique_keys.insert(s.costKey());
    ASSERT_EQ(unique_keys.size(), 4u);

    SweepEngine engine({/*numThreads=*/4});
    engine.run(grid);
    SweepStats stats = engine.stats();
    EXPECT_EQ(stats.costCacheMisses, unique_keys.size());
    EXPECT_EQ(stats.costCacheHits, grid.size() - unique_keys.size());

    // A second identical sweep is fully cached.
    engine.run(grid);
    stats = engine.stats();
    EXPECT_EQ(stats.costCacheMisses, unique_keys.size());
    EXPECT_EQ(stats.costCacheHits, 2 * grid.size() - unique_keys.size());

    engine.clearCostCache();
    engine.run(grid);
    stats = engine.stats();
    EXPECT_EQ(stats.costCacheMisses, 2 * unique_keys.size());
}

TEST(SweepEngine, SimCacheCountsHitsOnRepeatedScenarios)
{
    const auto grid = testGrid();
    SweepEngine engine({/*numThreads=*/4});

    // A cold sweep of all-distinct scenarios: every simulation misses.
    engine.run(grid);
    SweepStats stats = engine.stats();
    EXPECT_EQ(stats.simCacheMisses, grid.size());
    EXPECT_EQ(stats.simCacheHits, 0u);

    // The same grid again on the warm engine: every simulation hits.
    engine.run(grid);
    stats = engine.stats();
    EXPECT_EQ(stats.simCacheMisses, grid.size());
    EXPECT_EQ(stats.simCacheHits, grid.size());

    // A grid that repeats (model, testbed, schedule) combinations
    // within one run: the duplicates hit even concurrently.
    engine.clearSimCache();
    engine.clearCostCache();
    std::vector<Scenario> repeated = grid;
    repeated.insert(repeated.end(), grid.begin(), grid.end());
    engine.run(repeated);
    stats = engine.stats();
    EXPECT_EQ(stats.simCacheMisses, 2 * grid.size());
    EXPECT_EQ(stats.simCacheHits, 2 * grid.size());
}

TEST(SweepEngine, CachedSimResultsAreBitIdenticalToRecomputed)
{
    const auto grid = testGrid();
    SweepEngine cached({/*numThreads=*/2});
    SweepOptions no_cache_opts;
    no_cache_opts.numThreads = 2;
    no_cache_opts.enableSimCache = false;
    SweepEngine uncached(no_cache_opts);

    cached.run(grid);                      // warm the cache
    const auto warm = cached.run(grid);    // served from the cache
    const auto fresh = uncached.run(grid); // simulated every time

    EXPECT_EQ(uncached.stats().simCacheMisses, 0u);
    EXPECT_EQ(uncached.stats().simCacheHits, 0u);
    ASSERT_EQ(warm.size(), fresh.size());
    for (size_t i = 0; i < warm.size(); ++i) {
        EXPECT_EQ(std::memcmp(&warm[i].makespanMs, &fresh[i].makespanMs,
                              sizeof(double)),
                  0)
            << grid[i].label();
        ASSERT_EQ(warm[i].sim.trace.size(), fresh[i].sim.trace.size());
        for (size_t t = 0; t < warm[i].sim.trace.size(); ++t) {
            EXPECT_EQ(std::memcmp(&warm[i].sim.trace[t].start,
                                  &fresh[i].sim.trace[t].start,
                                  sizeof(double)),
                      0);
            EXPECT_EQ(std::memcmp(&warm[i].sim.trace[t].finish,
                                  &fresh[i].sim.trace[t].finish,
                                  sizeof(double)),
                      0);
        }
    }
}

TEST(SweepEngine, KeepGraphsBypassesTheSimCache)
{
    const auto grid = testGrid();
    SweepOptions opts;
    opts.numThreads = 2;
    opts.keepGraphs = true;
    SweepEngine engine(opts);
    engine.run(grid);
    engine.run(grid);
    const SweepStats stats = engine.stats();
    // Graphs must match the returned timings, so nothing is cached —
    // and the counters must not pretend otherwise.
    EXPECT_EQ(stats.simCacheMisses, 0u);
    EXPECT_EQ(stats.simCacheHits, 0u);
}

// ----------------------------------------------------------- traces

/**
 * Minimal recursive-descent JSON syntax checker — enough to prove the
 * exported trace is well-formed without a JSON dependency.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool valid()
    {
        skipWs();
        return value() && (skipWs(), pos_ == s_.size());
    }

  private:
    bool value()
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    size_t count = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(TraceExport, ChromeJsonIsWellFormedAndCoversEveryTask)
{
    Scenario s;
    s.model = "gpt2xl-moe";
    s.cluster = "testbedB";
    s.schedule = "FSMoE";
    s.numLayers = 2;

    SweepOptions opts;
    opts.numThreads = 1;
    opts.keepGraphs = true;
    SweepEngine engine(opts);
    const auto results = engine.run({s});
    ASSERT_EQ(results.size(), 1u);
    const ScenarioResult &r = results[0];
    ASSERT_GT(r.graph.size(), 0u);
    ASSERT_EQ(r.sim.trace.size(), r.graph.size());

    const std::string json = chromeTraceJson(r.graph, r.sim, s.label());
    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);

    // One complete ("X") event per simulated task, no more, no less.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), r.sim.trace.size());
    // Metadata rows name the process and every stream.
    EXPECT_EQ(countOccurrences(json, "\"thread_name\""),
              static_cast<size_t>(r.graph.numStreams()));
    EXPECT_EQ(countOccurrences(json, "\"process_name\""), 1u);
}

TEST(TraceExport, EventsMatchSimulatedTimeline)
{
    Scenario s;
    s.model = "gpt2xl-moe";
    s.cluster = "testbedA";
    s.schedule = "Tutel";
    s.numLayers = 1;

    SweepOptions opts;
    opts.numThreads = 1;
    opts.keepGraphs = true;
    SweepEngine engine(opts);
    const auto results = engine.run({s});
    const ScenarioResult &r = results[0];

    const auto events = sim::traceEvents(r.graph, r.sim);
    ASSERT_EQ(events.size(), r.sim.trace.size());
    double last_finish = 0.0;
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].id, r.sim.trace[i].id);
        EXPECT_DOUBLE_EQ(events[i].startMs, r.sim.trace[i].start);
        EXPECT_GE(events[i].durationMs, 0.0);
        last_finish = std::max(last_finish, events[i].startMs +
                                                events[i].durationMs);
    }
    EXPECT_DOUBLE_EQ(last_finish, r.sim.makespan);
}

} // namespace
} // namespace fsmoe::runtime
