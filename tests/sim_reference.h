/**
 * @file
 * The retained naive reference simulator.
 *
 * This is the pre-optimisation Simulator::run inner loop, verbatim in
 * behaviour: on every completion event it rescans all streams for
 * every link — O(events x links x streams) — picking, per free link,
 * the eligible stream head with the smallest (priority, readyTime,
 * issue id) key. The production simulator (src/sim/simulator.cc)
 * replaced the rescan with incrementally maintained per-link heaps and
 * must stay *bit-identical* to this loop: tests/sim_fuzz_test.cc
 * checks makespan, per-op times, and full traces on randomized DAGs,
 * and bench/bench_sim_hotpath.cc measures the speedup against it.
 *
 * Keep this file dumb and obviously correct; it is the oracle.
 */
#ifndef FSMOE_TESTS_SIM_REFERENCE_H
#define FSMOE_TESTS_SIM_REFERENCE_H

#include <algorithm>
#include <array>
#include <limits>
#include <queue>
#include <vector>

#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe::sim {

/** Naive-scan discrete-event execution of @p graph. */
inline SimResult
referenceRun(const TaskGraph &graph)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();

    struct TaskState
    {
        int pendingDeps = 0;
        double readyTime = 0.0;
        bool finished = false;
    };

    const auto &tasks = graph.tasks();
    const size_t n = tasks.size();
    SimResult result;
    result.trace.resize(n);
    if (n == 0)
        return result;

    std::vector<TaskState> state(n);
    std::vector<std::vector<TaskId>> dependents(n);
    for (const Task &t : tasks) {
        state[t.id].pendingDeps = static_cast<int>(graph.deps(t.id).size());
        for (TaskId d : graph.deps(t.id))
            dependents[d].push_back(t.id);
    }

    // Per-stream FIFO issue queues in addTask order.
    std::vector<std::vector<TaskId>> streams(graph.numStreams());
    for (const Task &t : tasks)
        streams[t.stream].push_back(t.id);
    std::vector<size_t> head(graph.numStreams(), 0);

    std::array<double, static_cast<size_t>(Link::NumLinks)> link_free{};
    link_free.fill(0.0);

    using Event = std::pair<double, TaskId>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

    size_t finished_count = 0;
    double now = 0.0;

    auto try_start = [&]() {
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (size_t li = 0; li < link_free.size(); ++li) {
                if (link_free[li] > now)
                    continue;
                // Eligible = head of its stream, deps done, wants link
                // li; pick the smallest (priority, readyTime, id).
                TaskId best = -1;
                double best_ready = kInf;
                int best_prio = std::numeric_limits<int>::max();
                for (int s = 0; s < graph.numStreams(); ++s) {
                    if (head[s] >= streams[s].size())
                        continue;
                    TaskId id = streams[s][head[s]];
                    const Task &t = tasks[id];
                    if (static_cast<size_t>(t.link) != li)
                        continue;
                    const TaskState &st = state[id];
                    if (st.pendingDeps > 0 || st.readyTime > now)
                        continue;
                    bool better =
                        t.priority < best_prio ||
                        (t.priority == best_prio &&
                         (st.readyTime < best_ready ||
                          (st.readyTime == best_ready &&
                           (best == -1 || id < best))));
                    if (better) {
                        best_prio = t.priority;
                        best_ready = st.readyTime;
                        best = id;
                    }
                }
                if (best < 0)
                    continue;
                const Task &t = tasks[best];
                double finish = now + t.duration;
                result.trace[best] = {best, now, finish};
                link_free[li] = finish;
                head[t.stream]++;
                events.emplace(finish, best);
                progressed = true;
            }
        }
    };

    try_start();
    while (finished_count < n) {
        if (events.empty())
            return result; // deadlocked input; caller asserts coverage
        auto [t_now, id] = events.top();
        events.pop();
        now = t_now;
        if (state[id].finished)
            continue;
        state[id].finished = true;
        finished_count++;
        result.opTime[static_cast<size_t>(tasks[id].op)] +=
            tasks[id].duration;
        result.makespan = std::max(result.makespan, t_now);
        for (TaskId dep : dependents[id]) {
            TaskState &ds = state[dep];
            ds.pendingDeps--;
            ds.readyTime = std::max(ds.readyTime, t_now);
        }
        try_start();
    }
    return result;
}

} // namespace fsmoe::sim

#endif // FSMOE_TESTS_SIM_REFERENCE_H
