/**
 * @file
 * Tests for the schedule auto-tuner: Pareto-dominance invariants on
 * hand-built cost sets, byte-determinism of the search (repeat runs
 * and serial == parallel), the cached-advisor hit path (zero new
 * simulations, byte-identical warm answers, persistence round-trip),
 * an oracle check that the tuner's pick matches an independent
 * exhaustive grid search, and the peak-memory metric.
 *
 * Tuner searches here use a small query (Testbed B, short sequences,
 * low rMax) so a full search stays fast; registrations are
 * process-wide, so plugins registered here use test-unique names.
 */
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/stats.h"
#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"
#include "runtime/tuner.h"
#include "sim/simulator.h"

namespace fsmoe::runtime {
namespace {

TuneQuery
smallQuery()
{
    TuneQuery q;
    q.model = "gpt2xl-moe";
    q.cluster = "testbedB";
    q.batch = 1;
    q.seqLen = 256;
    q.rMax = 4;
    return q;
}

TuneCandidate
cand(const char *spec, double makespan, double comm, double mem)
{
    TuneCandidate c;
    c.spec = spec;
    c.makespanMs = makespan;
    c.commBusyMs = comm;
    c.peakMemMB = mem;
    return c;
}

std::vector<std::string>
specsOf(const std::vector<TuneCandidate> &cs)
{
    std::vector<std::string> out;
    for (const TuneCandidate &c : cs)
        out.push_back(c.spec);
    return out;
}

// ------------------------------------------------- Pareto invariants

TEST(ParetoFrontier, SinglePointSurvives)
{
    const auto f = paretoFrontier({cand("a", 1, 1, 1)});
    EXPECT_EQ(specsOf(f), std::vector<std::string>{"a"});
}

TEST(ParetoFrontier, DominatedPointsAreRemoved)
{
    // "best" dominates everything: no worse anywhere, better somewhere.
    const auto f = paretoFrontier({
        cand("worse-everywhere", 3, 3, 3),
        cand("best", 1, 1, 1),
        cand("worse-on-one-axis", 1, 1, 2),
        cand("equal-two-axes", 2, 1, 1),
    });
    EXPECT_EQ(specsOf(f), std::vector<std::string>{"best"});
}

TEST(ParetoFrontier, TradeoffsAllSurviveSorted)
{
    // A three-way tradeoff: each point is best on one objective.
    const auto f = paretoFrontier({
        cand("low-mem", 3, 3, 1),
        cand("fast", 1, 3, 3),
        cand("low-comm", 3, 1, 3),
    });
    EXPECT_EQ(specsOf(f), (std::vector<std::string>{
                              "fast", "low-comm", "low-mem"}));
    // Sorted by makespan first, then comm.
    EXPECT_LE(f[0].makespanMs, f[1].makespanMs);
    EXPECT_LE(f[1].commBusyMs, f[2].commBusyMs);
}

TEST(ParetoFrontier, NoSurvivorDominatesAnother)
{
    // Random-ish fixed set; re-check the frontier definition directly.
    std::vector<TuneCandidate> pts;
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j)
            pts.push_back(cand(("p" + std::to_string(i * 5 + j)).c_str(),
                               i, j, (i * 3 + j * 7) % 5));
    const auto f = paretoFrontier(pts);
    ASSERT_FALSE(f.empty());
    const auto dominates = [](const TuneCandidate &a,
                              const TuneCandidate &b) {
        return a.makespanMs <= b.makespanMs &&
               a.commBusyMs <= b.commBusyMs &&
               a.peakMemMB <= b.peakMemMB &&
               (a.makespanMs < b.makespanMs ||
                a.commBusyMs < b.commBusyMs || a.peakMemMB < b.peakMemMB);
    };
    for (const TuneCandidate &a : f)
        for (const TuneCandidate &b : f)
            EXPECT_FALSE(dominates(a, b))
                << a.spec << " dominates " << b.spec;
    // And every eliminated point is dominated by some survivor.
    for (const TuneCandidate &p : pts) {
        const bool kept =
            std::any_of(f.begin(), f.end(), [&](const TuneCandidate &s) {
                return s.spec == p.spec;
            });
        if (kept)
            continue;
        EXPECT_TRUE(std::any_of(f.begin(), f.end(),
                                [&](const TuneCandidate &s) {
                                    return dominates(s, p);
                                }))
            << p.spec << " was dropped but nothing dominates it";
    }
}

TEST(ParetoFrontier, DuplicateSpecsCollapseKeepingFirst)
{
    const auto f = paretoFrontier({
        cand("dup", 1, 1, 1),
        cand("dup", 9, 9, 9),
        cand("other", 1, 1, 2),
    });
    ASSERT_EQ(f.size(), 1u) << "first 'dup' should dominate 'other'";
    EXPECT_EQ(f[0].spec, "dup");
    EXPECT_EQ(f[0].makespanMs, 1.0);
}

TEST(ParetoFrontier, EqualObjectivesBothSurvive)
{
    // Neither dominates the other (nothing strictly better).
    const auto f = paretoFrontier({
        cand("b", 1, 1, 1),
        cand("a", 1, 1, 1),
    });
    EXPECT_EQ(specsOf(f), (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------- peak-mem metric

TEST(PeakConcurrentComm, OverlapRaisesThePeak)
{
    core::PerfModelSet models;
    models.alltoall = {0.0, 1.0 / (1 << 20), 1.0}; // 1 ms per MB
    models.allgather = models.alltoall;

    // Two 1 MB transfers on different links: sequential in one graph,
    // dependency-free (overlapping) in the other.
    sim::TaskGraph overlap;
    overlap.addTask("a2a", sim::OpType::AlltoAll, sim::Link::InterNode, 0,
                    1.0, {});
    overlap.addTask("ag", sim::OpType::AllGather, sim::Link::IntraNode, 1,
                    1.0, {});
    sim::TaskGraph sequential;
    const auto first = sequential.addTask("a2a", sim::OpType::AlltoAll,
                                          sim::Link::InterNode, 0, 1.0, {});
    sequential.addTask("ag", sim::OpType::AllGather, sim::Link::IntraNode,
                       1, 1.0, {first});

    const double peak_overlap = peakConcurrentCommMB(
        overlap, sim::Simulator{}.run(overlap), models);
    const double peak_sequential = peakConcurrentCommMB(
        sequential, sim::Simulator{}.run(sequential), models);
    EXPECT_DOUBLE_EQ(peak_overlap, 2.0);
    EXPECT_DOUBLE_EQ(peak_sequential, 1.0);
}

TEST(PeakConcurrentComm, ComputeTasksContributeNothing)
{
    core::PerfModelSet models;
    models.gemm = {0.0, 1.0, 1.0};
    sim::TaskGraph g;
    g.addTask("experts", sim::OpType::Experts, sim::Link::Compute, 0, 5.0,
              {});
    EXPECT_DOUBLE_EQ(
        peakConcurrentCommMB(g, sim::Simulator{}.run(g), models), 0.0);
}

// ------------------------------------------------------- determinism

TEST(Tuner, RepeatSearchesAreByteIdentical)
{
    // Two fresh tuners (nothing shared) must serialize identically.
    Tuner first;
    Tuner second;
    const TuneAnswer a = first.tune(smallQuery());
    const TuneAnswer b = second.tune(smallQuery());
    EXPECT_FALSE(a.fromCache);
    EXPECT_FALSE(b.fromCache);
    EXPECT_EQ(Tuner::answerJson(a), Tuner::answerJson(b));
}

TEST(Tuner, SerialAndParallelSearchesAgree)
{
    TuneOptions serial;
    serial.numThreads = 1;
    TuneOptions parallel;
    parallel.numThreads = 4;
    Tuner st(serial);
    Tuner pt(parallel);
    EXPECT_EQ(Tuner::answerJson(st.tune(smallQuery())),
              Tuner::answerJson(pt.tune(smallQuery())));
}

// ------------------------------------------------- advisor cache path

TEST(Tuner, WarmQueryIsServedFromCacheWithZeroSimulations)
{
    Tuner tuner;
    const TuneAnswer cold = tuner.tune(smallQuery());
    ASSERT_FALSE(cold.fromCache);

    const uint64_t sims_before = stats::counter("sim.runs").value();
    const TuneAnswer warm = tuner.tune(smallQuery());
    const uint64_t sims_after = stats::counter("sim.runs").value();

    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(sims_after, sims_before)
        << "a warm advisor query must not simulate";
    EXPECT_EQ(Tuner::answerJson(warm), Tuner::answerJson(cold));
}

TEST(Tuner, CachePersistenceRoundTripsAndServesWarmQueries)
{
    const std::string path =
        testing::TempDir() + "/fsmoe_advisor_cache_test.json";
    std::string error;

    Tuner writer;
    const TuneAnswer cold = writer.tune(smallQuery());
    ASSERT_TRUE(writer.saveCache(path, &error)) << error;

    // A fresh tuner loading the file answers warm: no simulations.
    Tuner reader;
    ASSERT_TRUE(reader.loadCache(path, &error)) << error;
    const uint64_t sims_before = stats::counter("sim.runs").value();
    const TuneAnswer warm = reader.tune(smallQuery());
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(stats::counter("sim.runs").value(), sims_before);
    EXPECT_EQ(Tuner::answerJson(warm), Tuner::answerJson(cold));

    // Parse -> reserialize is byte-stable.
    ASSERT_TRUE(reader.saveCache(path + ".2", &error)) << error;
    std::ifstream f1(path, std::ios::binary);
    std::ifstream f2(path + ".2", std::ios::binary);
    const std::string bytes1((std::istreambuf_iterator<char>(f1)),
                             std::istreambuf_iterator<char>());
    const std::string bytes2((std::istreambuf_iterator<char>(f2)),
                             std::istreambuf_iterator<char>());
    EXPECT_FALSE(bytes1.empty());
    EXPECT_EQ(bytes1, bytes2);
    std::remove(path.c_str());
    std::remove((path + ".2").c_str());
}

TEST(Tuner, CacheLoadRejectsForeignFiles)
{
    const std::string path =
        testing::TempDir() + "/fsmoe_advisor_bogus_test.json";
    {
        std::ofstream out(path, std::ios::binary);
        out << "{\"schema\": \"something-else\", \"version\": 1}";
    }
    Tuner tuner;
    std::string error;
    EXPECT_FALSE(tuner.loadCache(path, &error));
    EXPECT_NE(error.find("fsmoe-advisor-cache"), std::string::npos)
        << error;
    EXPECT_FALSE(tuner.loadCache(path + ".missing", &error));
    std::remove(path.c_str());
}

// ------------------------------------------------------- oracle check

/**
 * A schedule whose makespan is a known convex function of its one
 * parameter: a single compute task of (1 + (k - 5)^2) microseconds.
 * Its optimum (k = 5) is tiny compared to every built-in schedule, so
 * the tuner's global answer must be exactly this spec — and it must
 * match an independent exhaustive search.
 */
class OracleSchedule : public core::Schedule
{
  public:
    explicit OracleSchedule(int k) : k_(k) {}
    sim::TaskGraph build(const core::ModelCost &) const override
    {
        sim::TaskGraph graph;
        const double us = 1.0 + (k_ - 5.0) * (k_ - 5.0);
        graph.addTask("oracle", sim::OpType::Other, sim::Link::Compute, 0,
                      us * 1e-3, {});
        return graph;
    }

  private:
    int k_;
};

TEST(Tuner, PickMatchesExhaustiveGridSearchOracle)
{
    core::ScheduleRegistry &reg = core::ScheduleRegistry::instance();
    core::ScheduleInfo info;
    info.name = "tuner-test-oracle";
    info.description = "convex 1-D test schedule";
    info.params = {{"k", core::ScheduleParamType::Int, "0",
                    "position on the convex curve", 0.0, 8.0}};
    ASSERT_TRUE(
        reg.registerSchedule(info, [](const core::ScheduleParams &p) {
            return std::make_unique<OracleSchedule>(
                static_cast<int>(p.getInt("k", 0)));
        }));

    // Independent exhaustive search over the declared grid.
    const TuneQuery query = smallQuery();
    const core::ModelCost cost =
        ScenarioRegistry::instance().makeCost(query.scenario());
    std::string oracle_best;
    double oracle_ms = 0.0;
    for (int k = 0; k <= 8; ++k) {
        const std::string spec =
            "tuner-test-oracle?k=" + std::to_string(k);
        const double ms =
            sim::Simulator{}.run(core::Schedule::create(spec)->build(cost))
                .makespan;
        if (oracle_best.empty() || ms < oracle_ms) {
            oracle_best = spec;
            oracle_ms = ms;
        }
    }
    EXPECT_EQ(oracle_best, "tuner-test-oracle?k=5");

    Tuner tuner;
    const TuneAnswer answer = tuner.tune(query);
    EXPECT_EQ(answer.best, oracle_best);
    EXPECT_DOUBLE_EQ(answer.bestMakespanMs, oracle_ms);
}

// --------------------------------------------------- answer structure

TEST(Tuner, FrontierContainsBestAndBareNamesAreAlwaysCandidates)
{
    Tuner tuner;
    const TuneAnswer answer = tuner.tune(smallQuery());
    ASSERT_FALSE(answer.frontier.empty());
    EXPECT_EQ(answer.best, answer.frontier.front().spec);
    EXPECT_EQ(answer.bestMakespanMs, answer.frontier.front().makespanMs);
    // The frontier is sorted and contains no dominated entry.
    for (size_t i = 1; i < answer.frontier.size(); ++i)
        EXPECT_LE(answer.frontier[i - 1].makespanMs,
                  answer.frontier[i].makespanMs);
    // Every registered schedule was probed at least via its bare name,
    // so the search can never answer worse than the best default.
    EXPECT_GE(answer.evaluated,
              core::ScheduleRegistry::instance().names().size());
}

} // namespace
} // namespace fsmoe::runtime
