/**
 * @file
 * Tests for the append-only checkpoint journal: round-trip recovery,
 * torn-tail truncation, corrupt-record handling, grid-mismatch
 * rejection, and the last-record-wins / only-Ok-counts-as-done resume
 * semantics. The torn-write fault site gets an end-to-end test via
 * fork: the child dies mid-append and the parent recovers.
 */
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fileio.h"
#include "runtime/fault.h"
#include "runtime/journal.h"
#include "runtime/result_store.h"
#include "runtime/scenario.h"

namespace fsmoe::runtime {
namespace {

namespace fs = std::filesystem;

std::string
scratchPath(const char *name)
{
    fs::path p = fs::path(testing::TempDir()) / name;
    fs::remove(p);
    return p.string();
}

std::vector<Scenario>
smallGrid()
{
    return ScenarioGrid()
        .models({"gpt2xl-moe"})
        .clusters({"testbedA"})
        .numLayers({1})
        .build();
}

/** A fabricated (not simulated) record for grid scenario @p index. */
SweepResult
recordFor(const std::vector<Scenario> &grid, size_t index,
          double makespan)
{
    const Scenario &s = grid[index];
    SweepResult r;
    r.model = s.model;
    r.cluster = s.cluster;
    r.schedule = s.schedule;
    r.batch = s.batch;
    r.seqLen = s.seqLen;
    r.numLayers = s.numLayers;
    r.numExperts = s.numExperts;
    r.rMax = s.rMax;
    r.makespanMs = makespan;
    return r;
}

std::string
readAll(const std::string &path)
{
    std::string text, error;
    EXPECT_TRUE(fileio::readTextFile(path, &text, &error)) << error;
    return text;
}

TEST(Journal, RoundTripRecoversEveryAppendedRecord)
{
    const auto grid = smallGrid();
    const std::string path = scratchPath("journal_roundtrip.txt");

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    EXPECT_TRUE(j.recovered().empty());
    for (size_t i = 0; i < grid.size(); ++i)
        ASSERT_TRUE(j.append(i, recordFor(grid, i, 10.0 + i), &error))
            << error;
    j.close();

    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    ASSERT_EQ(back.recovered().size(), grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        const auto it = back.recovered().find(i);
        ASSERT_NE(it, back.recovered().end()) << "missing index " << i;
        EXPECT_EQ(toJsonRecord(it->second),
                  toJsonRecord(recordFor(grid, i, 10.0 + i)));
    }
    std::remove(path.c_str());
}

TEST(Journal, RefusesToOverwriteAnExistingJournalWithoutResume)
{
    const auto grid = smallGrid();
    const std::string path = scratchPath("journal_exists.txt");

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    j.close();

    Journal again;
    EXPECT_FALSE(again.open(path, grid, /*resume=*/false, &error));
    EXPECT_NE(error.find("--resume"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(Journal, RejectsResumeAgainstADifferentGrid)
{
    const auto grid = smallGrid();
    const std::string path = scratchPath("journal_gridmismatch.txt");

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    ASSERT_TRUE(j.append(0, recordFor(grid, 0, 1.0), &error)) << error;
    j.close();

    const auto other = ScenarioGrid()
                           .models({"gpt2xl-moe"})
                           .clusters({"testbedB"})
                           .numLayers({1})
                           .build();
    ASSERT_NE(Journal::gridFingerprint(grid),
              Journal::gridFingerprint(other));
    Journal back;
    EXPECT_FALSE(back.open(path, other, /*resume=*/true, &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(Journal, TornTailIsDroppedAndTruncatedOnResume)
{
    const auto grid = smallGrid();
    const std::string path = scratchPath("journal_torn.txt");

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    ASSERT_TRUE(j.append(0, recordFor(grid, 0, 1.0), &error)) << error;
    ASSERT_TRUE(j.append(1, recordFor(grid, 1, 2.0), &error)) << error;
    j.close();

    // Simulate a crash mid-append: a final record missing its tail.
    const std::string intact = readAll(path);
    const std::string full_line =
        "2 0123456789abcdef {\"model\":\"gpt2xl-moe\",\"truncated";
    ASSERT_TRUE(fileio::atomicWriteFile(
        path, intact + full_line.substr(0, 30), &error))
        << error;

    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    EXPECT_EQ(back.recovered().size(), 2u);
    EXPECT_EQ(back.recovered().count(2), 0u);
    back.close();

    // Recovery must also have rewritten the file to the valid prefix,
    // so a second recovery sees a clean journal.
    EXPECT_EQ(readAll(path), intact);
    std::remove(path.c_str());
}

TEST(Journal, CorruptChecksumMarksTheTornTail)
{
    const auto grid = smallGrid();
    const std::string path = scratchPath("journal_corrupt.txt");

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    for (size_t i = 0; i < 3; ++i)
        ASSERT_TRUE(j.append(i, recordFor(grid, i, 1.0 + i), &error))
            << error;
    j.close();

    // Flip one hex digit of record 1's checksum: record 1 *and* the
    // still-valid record 2 behind it are the torn tail — a corrupt
    // middle means append order can no longer be trusted.
    std::string text = readAll(path);
    std::vector<std::string> lines;
    for (size_t pos = 0; pos < text.size();) {
        size_t nl = text.find('\n', pos);
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    ASSERT_EQ(lines.size(), 4u); // header + 3 records
    std::string &rec1 = lines[2];
    size_t sum_pos = rec1.find(' ') + 1;
    rec1[sum_pos] = rec1[sum_pos] == '0' ? '1' : '0';
    std::string rebuilt;
    for (const std::string &l : lines)
        rebuilt += l + "\n";
    ASSERT_TRUE(fileio::atomicWriteFile(path, rebuilt, &error)) << error;

    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    EXPECT_EQ(back.recovered().size(), 1u);
    EXPECT_EQ(back.recovered().count(0), 1u);
    std::remove(path.c_str());
}

TEST(Journal, LastRecordWinsForAnIndexAppendedTwice)
{
    const auto grid = smallGrid();
    const std::string path = scratchPath("journal_lastwins.txt");

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    SweepResult failed = recordFor(grid, 0, 0.0);
    failed.status = ResultStatus::Failed;
    failed.attempts = 1;
    failed.error = "transient";
    ASSERT_TRUE(j.append(0, failed, &error)) << error;
    ASSERT_TRUE(j.append(0, recordFor(grid, 0, 7.0), &error)) << error;
    j.close();

    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    ASSERT_EQ(back.recovered().size(), 1u);
    const SweepResult &r = back.recovered().at(0);
    EXPECT_EQ(r.status, ResultStatus::Ok);
    EXPECT_DOUBLE_EQ(r.makespanMs, 7.0);
    std::remove(path.c_str());
}

TEST(Journal, NonOkRecordsRoundTripWithStatusIntact)
{
    const auto grid = smallGrid();
    const std::string path = scratchPath("journal_status.txt");

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    SweepResult q = recordFor(grid, 1, 0.0);
    q.status = ResultStatus::Quarantined;
    q.attempts = 3;
    q.error = "injected eval fault (attempt 3)";
    ASSERT_TRUE(j.append(1, q, &error)) << error;
    j.close();

    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    ASSERT_EQ(back.recovered().count(1), 1u);
    const SweepResult &r = back.recovered().at(1);
    EXPECT_EQ(r.status, ResultStatus::Quarantined);
    EXPECT_EQ(r.attempts, 3);
    EXPECT_EQ(r.error, q.error);
    std::remove(path.c_str());
}

TEST(Journal, DuplicateRecordsFromAReassignedShardAreIdempotent)
{
    // Service failover replays a shard from its start: results the
    // dead worker already streamed are streamed (and journalled)
    // again. Evaluation is pure, so the duplicates are byte-identical
    // and recovery must keep exactly one record per index.
    const auto grid = smallGrid();
    ASSERT_GE(grid.size(), 3u);
    const std::string path = scratchPath("journal_dup_shard.txt");

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    // First assignment finishes indices 0 and 1, then the worker dies.
    ASSERT_TRUE(j.append(0, recordFor(grid, 0, 10.0), &error)) << error;
    ASSERT_TRUE(j.append(1, recordFor(grid, 1, 11.0), &error)) << error;
    // Reassigned shard replays 1 (identical bytes) and reaches 2.
    ASSERT_TRUE(j.append(1, recordFor(grid, 1, 11.0), &error)) << error;
    ASSERT_TRUE(j.append(2, recordFor(grid, 2, 12.0), &error)) << error;
    j.close();

    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    ASSERT_EQ(back.recovered().size(), 3u);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(toJsonRecord(back.recovered().at(i)),
                  toJsonRecord(recordFor(grid, i, 10.0 + i)));
    std::remove(path.c_str());
}

TEST(Journal, OutOfOrderShardAppendsMergeToCanonicalBytes)
{
    // Two shards stream results concurrently, so the journal's append
    // order interleaves arbitrarily. recovered() is keyed by grid
    // index, so rebuilding in index order must reproduce the exact
    // bytes of an unsharded in-order sweep.
    const auto grid = smallGrid();
    ASSERT_GE(grid.size(), 2u);
    const std::string path = scratchPath("journal_ooo_shard.txt");
    const size_t half = grid.size() / 2;

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    // Shard B (back half) lands first, then shard A (front half).
    for (size_t i = half; i < grid.size(); ++i)
        ASSERT_TRUE(j.append(i, recordFor(grid, i, 10.0 + i), &error))
            << error;
    for (size_t i = 0; i < half; ++i)
        ASSERT_TRUE(j.append(i, recordFor(grid, i, 10.0 + i), &error))
            << error;
    j.close();

    Journal back;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    ASSERT_EQ(back.recovered().size(), grid.size());
    std::vector<SweepResult> rebuilt;
    for (const auto &kv : back.recovered()) // std::map: index order
        rebuilt.push_back(kv.second);
    std::vector<SweepResult> in_order;
    for (size_t i = 0; i < grid.size(); ++i)
        in_order.push_back(recordFor(grid, i, 10.0 + i));

    const std::string got = scratchPath("journal_ooo_got.json");
    const std::string want = scratchPath("journal_ooo_want.json");
    ASSERT_TRUE(writeResultsJson(got, rebuilt));
    ASSERT_TRUE(writeResultsJson(want, in_order));
    EXPECT_EQ(readAll(got), readAll(want));
    std::remove(path.c_str());
    std::remove(got.c_str());
    std::remove(want.c_str());
}

TEST(Journal, RejectsResumeWithMatchingFingerprintButDifferentN)
{
    // The header carries both grid=<fingerprint> and n=<size>. A
    // journal whose fingerprint happens to match but whose n differs
    // is from a different sweep and must be rejected outright — not
    // partially recovered.
    const auto grid = smallGrid();
    const std::string path = scratchPath("journal_badn.txt");

    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(path, grid, /*resume=*/false, &error)) << error;
    ASSERT_TRUE(j.append(0, recordFor(grid, 0, 1.0), &error)) << error;
    j.close();

    // Tamper the header's n while leaving the fingerprint intact.
    std::string text = readAll(path);
    const std::string needle = " n=" + std::to_string(grid.size());
    const size_t pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, needle.size(),
                 " n=" + std::to_string(grid.size() + 1));
    ASSERT_TRUE(fileio::atomicWriteFile(path, text, &error)) << error;

    Journal back;
    EXPECT_FALSE(back.open(path, grid, /*resume=*/true, &error));
    EXPECT_NE(error.find("does not match"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(Journal, InjectedTornWriteIsRecoveredAfterProcessDeath)
{
    const auto grid = smallGrid();
    const std::string path = scratchPath("journal_torn_injected.txt");

    // The torn site kills the writing process by design, so exercise
    // it in a forked child and recover in the parent.
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        fault::FaultConfig cfg;
        std::string error;
        if (!fault::parseSpec("seed=1,torn=1", &cfg, &error))
            ::_exit(3);
        fault::configure(cfg);
        Journal j;
        if (!j.open(path, grid, /*resume=*/false, &error))
            ::_exit(4);
        j.append(0, recordFor(grid, 0, 5.0), &error); // must not return
        ::_exit(5);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137) << "child survived the torn "
                                           "write it was told to die in";

    Journal back;
    std::string error;
    ASSERT_TRUE(back.open(path, grid, /*resume=*/true, &error)) << error;
    EXPECT_TRUE(back.recovered().empty())
        << "a half-written record must not be recovered";
    std::remove(path.c_str());
}

} // namespace
} // namespace fsmoe::runtime
