/**
 * @file
 * Tests for the adaptive gradient partitioner (§5): byte conservation,
 * causality, window filling, step-2 improvement, and the Lina
 * fixed-chunk baseline's hit-or-miss behaviour.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "core/grad_partition.h"
#include "core/moe_config.h"
#include "core/schedules/schedule.h"
#include "sim/cluster.h"

namespace fsmoe::core {
namespace {

/** A small stack of identical generalized layers on Testbed B. */
std::vector<GeneralizedLayer>
makeLayers(int n, double grad_mb = 8.0, double dense_ms = 0.5)
{
    sim::ClusterSpec cluster = sim::testbedB();
    PerfModelSet models = PerfModelSet::fromCluster(cluster);
    ParallelConfig par;
    par.numMp = cluster.gpusPerNode;
    par.numEsp = cluster.gpusPerNode;
    par.numEp = cluster.numNodes;
    LayerShape shape;
    shape.embed = 2048;
    shape.hidden = 6144;
    shape.numExperts = cluster.numNodes;
    Workload w = deriveWorkload(shape, par);

    std::vector<GeneralizedLayer> layers;
    for (int i = 0; i < n; ++i) {
        GeneralizedLayer gl;
        gl.moe = makeProblem(models, w, Phase::Backward);
        gl.denseOlpMs = dense_ms;
        gl.gradBytes = grad_mb * (1 << 20);
        layers.push_back(gl);
    }
    return layers;
}

LinearModel
arModel()
{
    sim::ClusterSpec cluster = sim::testbedB();
    return {cluster.allreduce.alpha, cluster.allreduce.beta, 1.0};
}

TEST(GradPartition, ConservesBytes)
{
    auto layers = makeLayers(6);
    GradPartitionPlan plan = partitionGradients(layers, arModel());
    double total_in = 0.0, total_out = plan.exposedBytes;
    for (size_t i = 0; i < layers.size(); ++i) {
        total_in += layers[i].gradBytes;
        total_out += plan.denseBytes[i] + plan.moeBytes[i];
    }
    EXPECT_NEAR(total_out, total_in, 1.0);
}

TEST(GradPartition, FirstLayerLimitedToOwnGradient)
{
    // Backward's first layer can hide at most its own gradient (which
    // its pipeline produces chunk by chunk, Fig. 3d); nothing from
    // other layers exists yet.
    auto layers = makeLayers(5);
    GradPartitionPlan plan = partitionGradients(layers, arModel());
    EXPECT_LE(plan.denseBytes[0] + plan.moeBytes[0],
              layers[0].gradBytes + 1.0);
}

TEST(GradPartition, CausalityHoldsEverywhere)
{
    auto layers = makeLayers(7, 12.0);
    GradPartitionPlan plan = partitionGradients(layers, arModel());
    double produced = 0.0, assigned = 0.0;
    for (size_t i = 0; i < layers.size(); ++i) {
        produced += layers[i].gradBytes;
        assigned += plan.denseBytes[i] + plan.moeBytes[i];
        EXPECT_LE(assigned, produced + 1.0)
            << "layer " << i << " overlaps gradients not yet produced";
    }
}

TEST(GradPartition, SmallGradientsFullyOverlapped)
{
    auto layers = makeLayers(6, /*grad_mb=*/0.2, /*dense_ms=*/2.0);
    GradPartitionPlan plan = partitionGradients(layers, arModel());
    EXPECT_NEAR(plan.exposedBytes, 0.0, 1.0)
        << "tiny gradients should hide completely in dense windows";
}

TEST(GradPartition, HugeGradientsLeaveExposedTail)
{
    auto layers = makeLayers(3, /*grad_mb=*/400.0, /*dense_ms=*/0.1);
    GradPartitionPlan plan =
        partitionGradients(layers, arModel(), {}, false);
    EXPECT_GT(plan.exposedBytes, 0.0);
}

TEST(GradPartition, Step2NeverWorseThanStep1Alone)
{
    auto layers = makeLayers(6, 30.0, 0.3);
    solver::DeConfig de;
    de.maxGenerations = 60;
    GradPartitionPlan greedy =
        partitionGradients(layers, arModel(), de, false);
    GradPartitionPlan full = partitionGradients(layers, arModel(), de,
                                                true);
    EXPECT_LE(full.totalTimeMs, greedy.totalTimeMs * 1.001);
}

TEST(GradPartition, TGarReflectsAssignedBytes)
{
    auto layers = makeLayers(5, 20.0);
    LinearModel ar = arModel();
    GradPartitionPlan plan = partitionGradients(layers, ar);
    for (size_t i = 0; i < layers.size(); ++i) {
        if (plan.moeBytes[i] > 0.0) {
            EXPECT_NEAR(plan.tGar[i], ar.predict(plan.moeBytes[i]), 1e-9);
        } else {
            EXPECT_EQ(plan.tGar[i], 0.0);
        }
    }
}

TEST(GradPartition, SolutionsUseSolvedDegrees)
{
    auto layers = makeLayers(4);
    GradPartitionPlan plan = partitionGradients(layers, arModel());
    ASSERT_EQ(plan.solutions.size(), layers.size());
    for (const PipelineSolution &sol : plan.solutions) {
        EXPECT_GE(sol.r, 1);
        EXPECT_GT(sol.tMoe, 0.0);
    }
}

TEST(GradPartitionLina, FixedChunksAreHitOrMiss)
{
    // Windows smaller than one 30 MB chunk stay idle under Lina while
    // the adaptive partitioner fills them, so Lina's plan can never be
    // better and is typically worse.
    auto layers = makeLayers(6, 10.0, 0.4);
    LinearModel ar = arModel();
    GradPartitionPlan lina = partitionGradientsLina(layers, ar);
    GradPartitionPlan adaptive = partitionGradients(layers, ar);
    EXPECT_LE(adaptive.totalTimeMs, lina.totalTimeMs * 1.001);
}

TEST(GradPartitionLina, ConservesBytes)
{
    auto layers = makeLayers(5, 25.0);
    GradPartitionPlan plan = partitionGradientsLina(layers, arModel());
    double total_in = 0.0, total_out = plan.exposedBytes;
    for (size_t i = 0; i < layers.size(); ++i) {
        total_in += layers[i].gradBytes;
        total_out += plan.denseBytes[i] + plan.moeBytes[i];
    }
    EXPECT_NEAR(total_out, total_in, 1.0);
}

TEST(GradPartitionLina, OnlyWholeChunksScheduledInWindows)
{
    auto layers = makeLayers(6, 10.0, 0.4);
    const double chunk = 30.0 * (1 << 20);
    GradPartitionPlan plan =
        partitionGradientsLina(makeLayers(6, 10.0, 0.4), arModel(), chunk);
    for (size_t i = 0; i < layers.size(); ++i) {
        double b = plan.denseBytes[i] + plan.moeBytes[i];
        EXPECT_NEAR(b / chunk, std::round(b / chunk), 1e-6)
            << "layer " << i << " scheduled a partial chunk";
    }
}

} // namespace
} // namespace fsmoe::core
