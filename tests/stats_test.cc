/**
 * @file
 * Unit tests for the base/stats metrics registry — counter/gauge
 * semantics, histogram bucketing, exactness of concurrent updates,
 * snapshot determinism, reset behaviour, the scoped timer — and for
 * the levelled logging layer (FSMOE_LOG_LEVEL semantics and warning
 * deduplication) that rides on the same observability satellite.
 */
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.h"
#include "base/stats.h"

namespace fsmoe::stats {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddAndHighWater)
{
    Gauge g;
    g.set(3.0);
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    EXPECT_DOUBLE_EQ(g.maxValue(), 3.0);
    g.set(1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
    EXPECT_DOUBLE_EQ(g.maxValue(), 3.0); // high-water survives drops
    g.add(5.0);
    EXPECT_DOUBLE_EQ(g.value(), 6.0);
    EXPECT_DOUBLE_EQ(g.maxValue(), 6.0);
    g.updateMax(100.0);
    EXPECT_DOUBLE_EQ(g.value(), 6.0); // updateMax leaves the value alone
    EXPECT_DOUBLE_EQ(g.maxValue(), 100.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_DOUBLE_EQ(g.maxValue(), 0.0);
}

TEST(Histogram, BucketingLandsOnFirstBoundAtOrAboveValue)
{
    Histogram h({1.0, 10.0, 100.0});
    h.observe(0.5);   // <= 1    -> bucket 0
    h.observe(1.0);   // <= 1    -> bucket 0 (boundary belongs below)
    h.observe(1.5);   // <= 10   -> bucket 1
    h.observe(10.0);  // <= 10   -> bucket 1
    h.observe(99.9);  // <= 100  -> bucket 2
    h.observe(100.5); // overflow -> bucket 3
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.5);
    EXPECT_DOUBLE_EQ(h.maxValue(), 100.5);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 99.9 + 100.5);
    EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 6.0);
}

TEST(Histogram, EmptyAggregatesAreZero)
{
    Histogram h({1.0});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ResetKeepsBoundsAndEmptiesAggregates)
{
    Histogram h({1.0, 2.0});
    h.observe(0.5);
    h.observe(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
    ASSERT_EQ(h.bounds().size(), 2u);
    h.observe(1.5); // still usable after reset
    EXPECT_EQ(h.bucketCount(1), 1u);
}

TEST(Histogram, DefaultTimeBucketsAreStrictlyIncreasing)
{
    const std::vector<double> &b = defaultTimeBucketsMs();
    ASSERT_FALSE(b.empty());
    for (size_t i = 1; i < b.size(); ++i)
        EXPECT_LT(b[i - 1], b[i]);
}

TEST(Registry, FindOrCreateReturnsStableReferences)
{
    Registry reg;
    Counter &a = reg.counter("x.hits");
    Counter &b = reg.counter("x.hits");
    EXPECT_EQ(&a, &b);
    Counter &c = reg.counter("x.misses");
    EXPECT_NE(&a, &c);
    a.inc();
    EXPECT_EQ(reg.counter("x.hits").value(), 1u);
    Histogram &h1 = reg.histogram("x.ms", {1.0, 2.0});
    Histogram &h2 = reg.histogram("x.ms", {1.0, 2.0});
    EXPECT_EQ(&h1, &h2);
}

TEST(Registry, ConcurrentIncrementsSumExactly)
{
    Registry reg;
    Counter &c = reg.counter("contended.counter");
    Gauge &g = reg.gauge("contended.gauge");
    Histogram &h = reg.histogram("contended.ms", {0.5, 1.5, 2.5});
    constexpr int kThreads = 8;
    constexpr int kIters = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&]() {
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                g.add(1.0);
                h.observe(1.0);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kIters);
    EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(h.bucketCount(1), static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kIters);
    EXPECT_DOUBLE_EQ(h.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 1.0);
}

TEST(Registry, SnapshotIsDeterministicAcrossInstances)
{
    const auto populate = [](Registry &reg) {
        reg.counter("b.second").inc(2);
        reg.counter("a.first").inc(1);
        reg.gauge("c.depth").set(4.5);
        reg.histogram("d.ms", {1.0, 10.0}).observe(3.25);
    };
    Registry r1, r2;
    populate(r1);
    populate(r2);
    EXPECT_EQ(r1.snapshotJson(), r2.snapshotJson());

    const std::string snap = r1.snapshotJson();
    EXPECT_NE(snap.find("\"schema\":\"fsmoe-stats\""), std::string::npos);
    EXPECT_NE(snap.find("\"a.first\":1"), std::string::npos);
    EXPECT_NE(snap.find("\"b.second\":2"), std::string::npos);
    EXPECT_NE(snap.find("\"le\":\"inf\""), std::string::npos);
    // Lexicographic order: a.first before b.second.
    EXPECT_LT(snap.find("a.first"), snap.find("b.second"));
}

TEST(Registry, ResetZeroesButKeepsRegistrations)
{
    Registry reg;
    Counter &c = reg.counter("r.count");
    Histogram &h = reg.histogram("r.ms", {1.0});
    c.inc(7);
    h.observe(0.5);
    reg.reset();
    EXPECT_EQ(c.value(), 0u); // same reference, zeroed in place
    EXPECT_EQ(h.count(), 0u);
    c.inc();
    EXPECT_EQ(reg.counter("r.count").value(), 1u);
}

TEST(ScopedTimer, ObservesElapsedScope)
{
    Registry reg;
    Histogram &h = reg.histogram("timer.ms", {1000.0});
    {
        ScopedTimerMs timer(h);
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.minValue(), 0.0);
}

// ------------------------------------------------------------- logging

TEST(Logging, LevelGatesEnablement)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_FALSE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Verbose));
    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Verbose));
    setLogLevel(LogLevel::Verbose);
    EXPECT_TRUE(logEnabled(LogLevel::Verbose));
    setLogLevel(saved);
}

TEST(Logging, RepeatedWarningsAreDeduplicated)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    flushRepeatedWarnings(); // start from an empty dedup table
    const size_t before = suppressedWarningCount();
    ASSERT_EQ(before, 0u);
    for (int i = 0; i < 5; ++i)
        FSMOE_WARN("stats_test repeated warning");
    // One printed, four suppressed — identical site and text.
    EXPECT_EQ(suppressedWarningCount(), 4u);
    flushRepeatedWarnings();
    EXPECT_EQ(suppressedWarningCount(), 0u);
    setLogLevel(saved);
}

TEST(Logging, SilencedWarningsDoNotTouchTheDedupTable)
{
    const LogLevel saved = logLevel();
    flushRepeatedWarnings();
    setLogLevel(LogLevel::Silent);
    for (int i = 0; i < 3; ++i)
        FSMOE_WARN("stats_test silent warning");
    EXPECT_EQ(suppressedWarningCount(), 0u);
    setLogLevel(saved);
}

} // namespace
} // namespace fsmoe::stats
