/**
 * @file
 * Edge-case tests for the simulated-timeline extraction (sim/trace),
 * the Chrome trace exporter (runtime/trace_export), and the sweep's
 * own span tracer (runtime/self_trace): empty graphs, single-task
 * graphs, identical start-time ordering, and file round-trips.
 */
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "runtime/self_trace.h"
#include "runtime/trace_export.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"
#include "sim/trace.h"

namespace fsmoe {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

TEST(TraceEvents, EmptyGraphYieldsNoEvents)
{
    sim::TaskGraph g;
    sim::SimResult r = sim::Simulator{}.run(g);
    EXPECT_TRUE(sim::traceEvents(g, r).empty());
}

TEST(TraceEvents, SingleTaskCarriesFullIdentity)
{
    sim::TaskGraph g;
    g.addTask("only", sim::OpType::AlltoAll, sim::Link::InterNode, 2,
              3.5);
    sim::SimResult r = sim::Simulator{}.run(g);
    const auto events = sim::traceEvents(g, r);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].id, 0);
    EXPECT_EQ(events[0].name, "only");
    EXPECT_EQ(events[0].op, sim::OpType::AlltoAll);
    EXPECT_EQ(events[0].link, sim::Link::InterNode);
    EXPECT_EQ(events[0].stream, 2);
    EXPECT_DOUBLE_EQ(events[0].startMs, 0.0);
    EXPECT_DOUBLE_EQ(events[0].durationMs, 3.5);
}

TEST(TraceEvents, IdenticalStartTimesKeepTaskIdOrder)
{
    // Three tasks on distinct links all start at t=0: the extracted
    // order must be task-id order, not an incidental tie-break.
    sim::TaskGraph g;
    g.addTask("c", sim::OpType::Experts, sim::Link::Compute, 0, 2.0);
    g.addTask("n", sim::OpType::AlltoAll, sim::Link::InterNode, 1, 2.0);
    g.addTask("i", sim::OpType::AllGather, sim::Link::IntraNode, 2, 2.0);
    sim::SimResult r = sim::Simulator{}.run(g);
    const auto events = sim::traceEvents(g, r);
    ASSERT_EQ(events.size(), 3u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].id, static_cast<sim::TaskId>(i));
        EXPECT_DOUBLE_EQ(events[i].startMs, 0.0);
    }
    EXPECT_EQ(events[0].name, "c");
    EXPECT_EQ(events[1].name, "n");
    EXPECT_EQ(events[2].name, "i");
}

TEST(ChromeTrace, EmptyGraphIsStillAValidDocument)
{
    sim::TaskGraph g;
    sim::SimResult r = sim::Simulator{}.run(g);
    const std::string json = runtime::chromeTraceJson(g, r, "empty");
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"empty\""), std::string::npos);
    EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos); // no events
}

TEST(ChromeTrace, SingleTaskEmitsOneCompleteEvent)
{
    sim::TaskGraph g;
    g.addTask("solo", sim::OpType::Experts, sim::Link::Compute, 0, 1.5);
    sim::SimResult r = sim::Simulator{}.run(g);
    const std::string json = runtime::chromeTraceJson(g, r);
    // One X event, millisecond times scaled to microseconds.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_EQ(json.find("\"ph\":\"X\""), json.rfind("\"ph\":\"X\""));
    EXPECT_NE(json.find("\"name\":\"solo\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":1500.000"), std::string::npos);
    EXPECT_NE(json.find("\"link\":\"compute\""), std::string::npos);
}

TEST(ChromeTrace, DeterministicAndRoundTripsThroughAFile)
{
    sim::TaskGraph g;
    sim::TaskId a =
        g.addTask("a", sim::OpType::AlltoAll, sim::Link::InterNode, 0, 2.0);
    g.addTask("b", sim::OpType::Experts, sim::Link::Compute, 1, 1.0, {a});
    sim::SimResult r = sim::Simulator{}.run(g);
    const std::string json = runtime::chromeTraceJson(g, r, "p");
    EXPECT_EQ(json, runtime::chromeTraceJson(g, r, "p"));

    const std::string path = testing::TempDir() + "/fsmoe_trace_test.json";
    ASSERT_TRUE(runtime::writeChromeTrace(path, g, r, "p"));
    EXPECT_EQ(slurp(path), json);
}

TEST(ChromeTrace, UnwritablePathReportsFailure)
{
    sim::TaskGraph g;
    sim::SimResult r = sim::Simulator{}.run(g);
    EXPECT_FALSE(runtime::writeChromeTrace(
        "/nonexistent-dir-fsmoe/trace.json", g, r));
}

// ------------------------------------------------------- self tracing

TEST(SelfTrace, DisabledSpansRecordNothing)
{
    runtime::SelfTrace &tracer = runtime::SelfTrace::instance();
    tracer.disable();
    tracer.enable(); // clear any events from other tests
    tracer.disable();
    {
        runtime::SelfSpan span("ignored", "test");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(SelfTrace, EnabledSpansBecomeCompleteEvents)
{
    runtime::SelfTrace &tracer = runtime::SelfTrace::instance();
    tracer.enable();
    {
        runtime::SelfSpan outer("outer", "test");
        runtime::SelfSpan inner("inner", "test");
    }
    tracer.disable();
    EXPECT_EQ(tracer.eventCount(), 2u);
    const std::string json = tracer.chromeTraceJson("proc");
    EXPECT_NE(json.find("\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"proc\""), std::string::npos);
    EXPECT_NE(json.find("worker-0"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(SelfTrace, EnableClearsPreviousEvents)
{
    runtime::SelfTrace &tracer = runtime::SelfTrace::instance();
    tracer.enable();
    {
        runtime::SelfSpan span("first", "test");
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
    tracer.enable(); // restart: previous run's spans are gone
    EXPECT_EQ(tracer.eventCount(), 0u);
    tracer.disable();
}

TEST(SelfTrace, WriteProducesLoadableFile)
{
    runtime::SelfTrace &tracer = runtime::SelfTrace::instance();
    tracer.enable();
    {
        runtime::SelfSpan span("persisted", "test");
    }
    tracer.disable();
    const std::string path = testing::TempDir() + "/fsmoe_self_trace.json";
    ASSERT_TRUE(tracer.write(path));
    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"persisted\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

} // namespace
} // namespace fsmoe
