/**
 * @file
 * Tests for the crash-safe file IO helpers: atomic tmp+rename writes,
 * the writability probe, and whole-file reads. The key properties are
 * that a successful write is complete, a failed write leaves the
 * destination untouched, and neither path leaves temp files behind.
 */
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fileio.h"

namespace fsmoe::fileio {
namespace {

namespace fs = std::filesystem;

/** Fresh per-test scratch directory under the gtest temp root. */
fs::path
scratchDir(const char *name)
{
    fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Paths in @p dir containing ".tmp." — atomic-write leftovers. */
std::vector<std::string>
tmpLeftovers(const fs::path &dir)
{
    std::vector<std::string> out;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().filename().string().find(".tmp.") !=
            std::string::npos)
            out.push_back(entry.path().string());
    return out;
}

TEST(FileIo, AtomicWriteRoundTripsAndOverwrites)
{
    const fs::path dir = scratchDir("fileio_roundtrip");
    const std::string path = (dir / "out.json").string();

    std::string error;
    ASSERT_TRUE(atomicWriteFile(path, "first\n", &error)) << error;
    std::string text;
    ASSERT_TRUE(readTextFile(path, &text, &error)) << error;
    EXPECT_EQ(text, "first\n");

    // Overwrite must fully replace, not append or partially update.
    ASSERT_TRUE(atomicWriteFile(path, "second version\n", &error))
        << error;
    ASSERT_TRUE(readTextFile(path, &text, &error)) << error;
    EXPECT_EQ(text, "second version\n");

    EXPECT_TRUE(tmpLeftovers(dir).empty());
}

TEST(FileIo, AtomicWriteHandlesEmptyAndBinaryContent)
{
    const fs::path dir = scratchDir("fileio_content");
    const std::string path = (dir / "blob").string();

    std::string blob = "a\0b\r\n\xff tail";
    blob[1] = '\0'; // ensure an embedded NUL really is present
    std::string error;
    ASSERT_TRUE(atomicWriteFile(path, blob, &error)) << error;
    std::string text;
    ASSERT_TRUE(readTextFile(path, &text, &error)) << error;
    EXPECT_EQ(text, blob);

    ASSERT_TRUE(atomicWriteFile(path, "", &error)) << error;
    ASSERT_TRUE(readTextFile(path, &text, &error)) << error;
    EXPECT_EQ(text, "");
}

TEST(FileIo, FailedWriteLeavesDestinationUntouchedAndExplains)
{
    const std::string path = "/nonexistent-dir/sub/out.json";
    std::string error;
    EXPECT_FALSE(atomicWriteFile(path, "payload", &error));
    EXPECT_NE(error.find(path), std::string::npos) << error;
    EXPECT_FALSE(fs::exists(path));

    // Existing destination + unwritable write must keep the old bytes.
    const fs::path dir = scratchDir("fileio_keep");
    const std::string keep = (dir / "keep.txt").string();
    ASSERT_TRUE(atomicWriteFile(keep, "precious\n", &error)) << error;
    fs::permissions(dir, fs::perms::owner_read | fs::perms::owner_exec);
    std::string text;
    if (!atomicWriteFile(keep, "clobbered\n", &error)) {
        // (Skipped when running as root, where the chmod is advisory.)
        ASSERT_TRUE(readTextFile(keep, &text, &error)) << error;
        EXPECT_EQ(text, "precious\n");
    }
    fs::permissions(dir, fs::perms::owner_all);
}

TEST(FileIo, CheckWritableProbesWithoutCreatingTheTarget)
{
    const fs::path dir = scratchDir("fileio_probe");
    const std::string path = (dir / "future-output.json").string();

    std::string error;
    EXPECT_TRUE(checkWritable(path, &error)) << error;
    EXPECT_FALSE(fs::exists(path)); // probe must not create the target
    EXPECT_TRUE(tmpLeftovers(dir).empty());

    EXPECT_FALSE(checkWritable("/nonexistent-dir/out.json", &error));
    EXPECT_NE(error.find("/nonexistent-dir/out.json"), std::string::npos)
        << error;
}

TEST(FileIo, ReadTextFileReportsMissingFiles)
{
    std::string text = "sentinel";
    std::string error;
    EXPECT_FALSE(readTextFile("/nonexistent-dir/in.txt", &text, &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace fsmoe::fileio
