/**
 * @file
 * Tests for deterministic fault injection: spec parsing, the
 * disabled-is-free gate, and the core contract that injection
 * decisions are a pure function of (seed, site, key, attempt) —
 * identical across reconfigurations, sensitive to every input.
 */
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/fault.h"

namespace fsmoe::runtime::fault {
namespace {

/** RAII: leave injection disabled no matter how a test exits. */
struct FaultGuard
{
    FaultGuard() { reset(); }
    ~FaultGuard() { reset(); }
};

std::string
keyFor(int i)
{
    return "model/cluster/Sched/b" + std::to_string(i) + "/L1024";
}

TEST(Fault, ParseSpecAcceptsFullSpecInAnyOrder)
{
    FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseSpec(
        "kill-after=12,torn=0.2,timeout=0.05,crash=0.1,eval=0.3,seed=7",
        &cfg, &error))
        << error;
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(Site::EvalError)], 0.3);
    EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(Site::WorkerCrash)], 0.1);
    EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(Site::WorkerTimeout)],
                     0.05);
    EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(Site::TornJournalWrite)],
                     0.2);
    EXPECT_EQ(cfg.killAfterAppends, 12u);
    EXPECT_TRUE(cfg.anyEnabled());

    FaultConfig partial;
    ASSERT_TRUE(parseSpec("eval=1", &partial, &error)) << error;
    EXPECT_DOUBLE_EQ(partial.rate[static_cast<int>(Site::EvalError)],
                     1.0);
    EXPECT_EQ(partial.killAfterAppends, 0u);
}

TEST(Fault, ParseSpecRejectsMalformedInputAndLeavesOutUntouched)
{
    FaultConfig cfg;
    cfg.seed = 99;
    std::string error;
    const char *bad[] = {
        "bogus=1",      // unknown key
        "eval",         // missing '='
        "eval=1.5",     // rate out of range
        "eval=-0.1",    // rate out of range
        "eval=nope",    // not a number
        "seed=x",       // not a number
        "kill-after=x", // not a number
    };
    for (const char *spec : bad) {
        SCOPED_TRACE(spec);
        error.clear();
        EXPECT_FALSE(parseSpec(spec, &cfg, &error));
        EXPECT_FALSE(error.empty());
        EXPECT_EQ(cfg.seed, 99u) << "*out modified on failure";
    }
}

TEST(Fault, DisabledInjectsNothing)
{
    FaultGuard guard;
    EXPECT_FALSE(enabled());
    for (int i = 0; i < 32; ++i)
        EXPECT_FALSE(shouldInject(Site::EvalError, keyFor(i), 1));
    EXPECT_FALSE(shouldKillAfterAppend());
}

TEST(Fault, DecisionsAreDeterministicAcrossReconfiguration)
{
    FaultGuard guard;
    FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseSpec("seed=42,eval=0.5", &cfg, &error)) << error;

    const int n = 200;
    std::vector<bool> first;
    configure(cfg);
    for (int i = 0; i < n; ++i)
        first.push_back(shouldInject(Site::EvalError, keyFor(i), 1));

    reset();
    configure(cfg);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(shouldInject(Site::EvalError, keyFor(i), 1), first[i])
            << "decision " << i << " changed across reconfiguration";

    // A 0.5 rate over 200 keys must hit both outcomes (the chance of
    // not doing so is 2^-199 — a failure here means broken hashing).
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), true), n);
}

TEST(Fault, DecisionsAreSensitiveToSeedSiteKeyAndAttempt)
{
    FaultGuard guard;
    FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseSpec("seed=1,eval=0.5,crash=0.5", &cfg, &error))
        << error;
    configure(cfg);

    const int n = 200;
    int attempt_flips = 0, site_flips = 0;
    for (int i = 0; i < n; ++i) {
        bool a1 = shouldInject(Site::EvalError, keyFor(i), 1);
        if (shouldInject(Site::EvalError, keyFor(i), 2) != a1)
            ++attempt_flips;
        if (shouldInject(Site::WorkerCrash, keyFor(i), 1) != a1)
            ++site_flips;
    }
    EXPECT_GT(attempt_flips, 0) << "attempt is not part of the decision";
    EXPECT_GT(site_flips, 0) << "site is not part of the decision";

    std::vector<bool> seed1;
    for (int i = 0; i < n; ++i)
        seed1.push_back(shouldInject(Site::EvalError, keyFor(i), 1));
    cfg.seed = 2;
    configure(cfg);
    std::vector<bool> seed2;
    for (int i = 0; i < n; ++i)
        seed2.push_back(shouldInject(Site::EvalError, keyFor(i), 1));
    EXPECT_NE(seed1, seed2) << "seed is not part of the decision";
}

TEST(Fault, RateZeroNeverFiresAndRateOneAlwaysFires)
{
    FaultGuard guard;
    FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseSpec("seed=5,eval=1,crash=0", &cfg, &error)) << error;
    configure(cfg);
    for (int i = 0; i < 64; ++i) {
        EXPECT_TRUE(shouldInject(Site::EvalError, keyFor(i), i % 4 + 1));
        EXPECT_FALSE(
            shouldInject(Site::WorkerCrash, keyFor(i), i % 4 + 1));
    }
}

TEST(Fault, KillAfterFiresExactlyOnceAtTheConfiguredAppend)
{
    FaultGuard guard;
    FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseSpec("kill-after=3", &cfg, &error)) << error;
    configure(cfg);
    EXPECT_FALSE(shouldKillAfterAppend()); // append 1
    EXPECT_FALSE(shouldKillAfterAppend()); // append 2
    EXPECT_TRUE(shouldKillAfterAppend());  // append 3: fire
    EXPECT_FALSE(shouldKillAfterAppend()); // past the threshold

    // configure() restarts the append count.
    configure(cfg);
    EXPECT_FALSE(shouldKillAfterAppend());
    EXPECT_FALSE(shouldKillAfterAppend());
    EXPECT_TRUE(shouldKillAfterAppend());
}

TEST(Fault, ResetDisablesAndConfigReportsTheActivePlan)
{
    FaultGuard guard;
    FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseSpec("seed=9,torn=0.25", &cfg, &error)) << error;
    configure(cfg);
    EXPECT_TRUE(enabled());
    EXPECT_EQ(config().seed, 9u);
    EXPECT_DOUBLE_EQ(
        config().rate[static_cast<int>(Site::TornJournalWrite)], 0.25);

    reset();
    EXPECT_FALSE(enabled());
    EXPECT_FALSE(config().anyEnabled());
}

TEST(Fault, SiteNamesMatchSpecKeywords)
{
    EXPECT_STREQ(siteName(Site::EvalError), "eval");
    EXPECT_STREQ(siteName(Site::WorkerCrash), "crash");
    EXPECT_STREQ(siteName(Site::WorkerTimeout), "timeout");
    EXPECT_STREQ(siteName(Site::TornJournalWrite), "torn");
    EXPECT_STREQ(siteName(Site::TransportDrop), "drop");
    EXPECT_STREQ(siteName(Site::TransportDelay), "delay");
    EXPECT_STREQ(siteName(Site::TransportDisconnect), "disconnect");
    EXPECT_STREQ(siteName(Site::WorkerKill), "worker-kill");
}

TEST(Fault, ParseSpecAcceptsTheTransportSites)
{
    FaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseSpec(
        "seed=3,drop=0.5,delay=0.25,disconnect=0.125,worker-kill=0.0625",
        &cfg, &error))
        << error;
    EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(Site::TransportDrop)],
                     0.5);
    EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(Site::TransportDelay)],
                     0.25);
    EXPECT_DOUBLE_EQ(
        cfg.rate[static_cast<int>(Site::TransportDisconnect)], 0.125);
    EXPECT_DOUBLE_EQ(cfg.rate[static_cast<int>(Site::WorkerKill)],
                     0.0625);
    EXPECT_TRUE(cfg.anyEnabled());

    // Every site keyword must round-trip through the parser alone.
    for (int i = 0; i < static_cast<int>(Site::NumSites); ++i) {
        const Site site = static_cast<Site>(i);
        FaultConfig one;
        const std::string spec = std::string(siteName(site)) + "=1";
        ASSERT_TRUE(parseSpec(spec, &one, &error)) << spec << ": " << error;
        EXPECT_DOUBLE_EQ(one.rate[i], 1.0) << spec;
    }
}

} // namespace
} // namespace fsmoe::runtime::fault
