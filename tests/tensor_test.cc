/**
 * @file
 * Unit tests for the tensor substrate: Tensor, GEMM, elementwise ops,
 * activation forward/backward pairs, top-k, and the RNG.
 */
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace fsmoe {
namespace {

TEST(Tensor, ConstructsZeroFilled)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    EXPECT_EQ(t.dim(), 2);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.flat(i), 0.0f);
}

TEST(Tensor, ShapeAccessors)
{
    Tensor t({4, 5, 6});
    EXPECT_EQ(t.size(0), 4);
    EXPECT_EQ(t.size(2), 6);
    EXPECT_EQ(t.size(-1), 6);
    EXPECT_EQ(t.size(-3), 4);
    EXPECT_EQ(t.shapeString(), "[4, 5, 6]");
}

TEST(Tensor, ElementAccessRowMajor)
{
    Tensor t({2, 3});
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t.flat(5), 7.0f);
    Tensor u({2, 2, 2});
    u.at(1, 0, 1) = 3.0f;
    EXPECT_EQ(u.flat(5), 3.0f);
}

TEST(Tensor, ReshapePreservesDataAndInfersExtent)
{
    Tensor t({2, 6});
    std::iota(t.data(), t.data() + 12, 0.0f);
    Tensor r = t.reshape({3, -1});
    EXPECT_EQ(r.size(0), 3);
    EXPECT_EQ(r.size(1), 4);
    EXPECT_EQ(r.flat(11), 11.0f);
}

TEST(Tensor, SliceDim0CopiesRows)
{
    Tensor t({4, 2});
    std::iota(t.data(), t.data() + 8, 0.0f);
    Tensor s = t.sliceDim0(1, 3);
    EXPECT_EQ(s.size(0), 2);
    EXPECT_EQ(s.at(0, 0), 2.0f);
    EXPECT_EQ(s.at(1, 1), 5.0f);
}

TEST(Tensor, ElementwiseHelpers)
{
    Tensor a({2, 2}, {1, 2, 3, 4});
    Tensor b({2, 2}, {4, 3, 2, 1});
    EXPECT_EQ(add(a, b).flat(0), 5.0f);
    EXPECT_EQ(sub(a, b).flat(3), 3.0f);
    EXPECT_EQ(mul(a, b).flat(1), 6.0f);
    EXPECT_EQ(maxAbsDiff(a, b), 3.0f);
    EXPECT_TRUE(allClose(a, a));
    EXPECT_FALSE(allClose(a, b));
}

TEST(Tensor, FullAndScale)
{
    Tensor t = Tensor::full({3}, 2.0f);
    t.scale_(1.5f);
    EXPECT_EQ(t.flat(2), 3.0f);
}

TEST(Gemm, MatchesManualSmallCase)
{
    Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    EXPECT_EQ(c.at(0, 0), 58.0f);
    EXPECT_EQ(c.at(0, 1), 64.0f);
    EXPECT_EQ(c.at(1, 0), 139.0f);
    EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Gemm, TransposeVariantsAgree)
{
    Rng rng(7);
    Tensor a = rng.normalTensor({5, 4});
    Tensor b = rng.normalTensor({4, 6});
    Tensor ref = matmul(a, b);

    // A^T stored transposed.
    Tensor at({4, 5});
    for (int64_t i = 0; i < 5; ++i)
        for (int64_t j = 0; j < 4; ++j)
            at.at(j, i) = a.at(i, j);
    test::expectClose(matmul(at, b, Trans::Yes, Trans::No), ref, 1e-5f,
                      "A^T B");

    Tensor bt({6, 4});
    for (int64_t i = 0; i < 4; ++i)
        for (int64_t j = 0; j < 6; ++j)
            bt.at(j, i) = b.at(i, j);
    test::expectClose(matmul(a, bt, Trans::No, Trans::Yes), ref, 1e-5f,
                      "A B^T");
    test::expectClose(matmul(at, bt, Trans::Yes, Trans::Yes), ref, 1e-5f,
                      "A^T B^T");
}

TEST(Gemm, AlphaBetaAccumulate)
{
    Tensor a({1, 2}, {1, 2});
    Tensor b({2, 1}, {3, 4});
    Tensor c({1, 1}, {10});
    gemm(a, Trans::No, b, Trans::No, c, 2.0f, 1.0f);
    EXPECT_EQ(c.flat(0), 10.0f + 2.0f * 11.0f);
}

TEST(Gemm, LargeBlockedMatchesNaive)
{
    Rng rng(11);
    Tensor a = rng.normalTensor({70, 90});
    Tensor b = rng.normalTensor({90, 65});
    Tensor c = matmul(a, b);
    // Naive reference on a few probe entries.
    for (int64_t i : {0, 33, 69}) {
        for (int64_t j : {0, 31, 64}) {
            double acc = 0.0;
            for (int64_t k = 0; k < 90; ++k)
                acc += a.at(i, k) * b.at(k, j);
            EXPECT_NEAR(c.at(i, j), acc, 1e-3);
        }
    }
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(3);
    Tensor x = rng.normalTensor({6, 9});
    Tensor y = softmaxRows(x);
    for (int64_t r = 0; r < 6; ++r) {
        double sum = 0.0;
        for (int64_t c = 0; c < 9; ++c) {
            sum += y.at(r, c);
            EXPECT_GT(y.at(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxHandlesMaskedRows)
{
    Tensor x({1, 3});
    x.fill(-std::numeric_limits<float>::infinity());
    Tensor y = softmaxRows(x);
    for (int64_t c = 0; c < 3; ++c)
        EXPECT_EQ(y.flat(c), 0.0f);
}

TEST(Ops, SoftmaxBackwardMatchesFiniteDifference)
{
    Rng rng(5);
    Tensor x = rng.normalTensor({3, 5});
    Tensor dy = rng.normalTensor({3, 5});
    Tensor y = softmaxRows(x);
    Tensor dx = softmaxRowsBackward(y, dy);
    auto loss = [&]() {
        Tensor out = softmaxRows(x);
        double s = 0.0;
        for (int64_t i = 0; i < out.numel(); ++i)
            s += out.flat(i) * dy.flat(i);
        return s;
    };
    test::expectGradMatches(x, dx, loss, 1e-3, 1e-2);
}

TEST(Ops, TopkSelectsLargestDescending)
{
    Tensor x({2, 4}, {0.1f, 0.9f, 0.5f, 0.3f, 4.0f, 1.0f, 3.0f, 2.0f});
    TopK top = topkRows(x, 2);
    EXPECT_EQ(top.indices[0], 1);
    EXPECT_EQ(top.indices[1], 2);
    EXPECT_EQ(top.values.at(0, 0), 0.9f);
    EXPECT_EQ(top.indices[2], 0);
    EXPECT_EQ(top.indices[3], 2);
}

TEST(Ops, TopkDeterministicTieBreak)
{
    Tensor x({1, 4}, {1.0f, 1.0f, 1.0f, 1.0f});
    TopK top = topkRows(x, 2);
    EXPECT_EQ(top.indices[0], 0);
    EXPECT_EQ(top.indices[1], 1);
}

struct ActivationCase
{
    const char *name;
    Tensor (*fwd)(const Tensor &);
    Tensor (*bwd)(const Tensor &, const Tensor &);
};

class ActivationGradTest : public ::testing::TestWithParam<ActivationCase>
{
};

TEST_P(ActivationGradTest, BackwardMatchesFiniteDifference)
{
    const ActivationCase &ac = GetParam();
    Rng rng(13);
    Tensor x = rng.normalTensor({4, 7});
    Tensor dy = rng.normalTensor({4, 7});
    Tensor dx = ac.name == std::string("sigmoid")
                    ? ac.bwd(ac.fwd(x), dy) // sigmoid bwd takes y
                    : ac.bwd(x, dy);
    auto loss = [&]() {
        Tensor y = ac.fwd(x);
        double s = 0.0;
        for (int64_t i = 0; i < y.numel(); ++i)
            s += y.flat(i) * dy.flat(i);
        return s;
    };
    test::expectGradMatches(x, dx, loss, 1e-3, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Activations, ActivationGradTest,
    ::testing::Values(ActivationCase{"relu", relu, reluBackward},
                      ActivationCase{"silu", silu, siluBackward},
                      ActivationCase{"gelu", gelu, geluBackward},
                      ActivationCase{"sigmoid", sigmoid, sigmoidBackward}),
    [](const ::testing::TestParamInfo<ActivationCase> &info) {
        return info.param.name;
    });

TEST(Ops, SoftplusMatchesDefinition)
{
    Tensor x({1, 3}, {-2.0f, 0.0f, 30.0f});
    Tensor y = softplus(x);
    EXPECT_NEAR(y.flat(0), std::log1p(std::exp(-2.0)), 1e-6);
    EXPECT_NEAR(y.flat(1), std::log(2.0), 1e-6);
    EXPECT_NEAR(y.flat(2), 30.0, 1e-4);
}

TEST(Ops, L2NormalizeRowsUnitNorm)
{
    Rng rng(17);
    Tensor x = rng.normalTensor({5, 8});
    l2NormalizeRows(x);
    for (int64_t r = 0; r < 5; ++r) {
        double ss = 0.0;
        for (int64_t c = 0; c < 8; ++c)
            ss += x.at(r, c) * x.at(r, c);
        EXPECT_NEAR(ss, 1.0, 1e-5);
    }
}

TEST(Ops, CosineScoresInUnitRange)
{
    Rng rng(19);
    Tensor x = rng.normalTensor({6, 10});
    Tensor w = rng.normalTensor({4, 10});
    Tensor s = cosineScores(x, w);
    for (int64_t i = 0; i < s.numel(); ++i) {
        EXPECT_LE(s.flat(i), 1.0f + 1e-5f);
        EXPECT_GE(s.flat(i), -1.0f - 1e-5f);
    }
}

TEST(Ops, CosineScoresSelfIsOne)
{
    Rng rng(23);
    Tensor w = rng.normalTensor({3, 6});
    Tensor s = cosineScores(w, w);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_NEAR(s.at(i, i), 1.0f, 1e-5f);
}

TEST(Ops, SumDim0AndMean)
{
    Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor s = sumDim0(x);
    EXPECT_EQ(s.flat(0), 5.0f);
    EXPECT_EQ(s.flat(2), 9.0f);
    EXPECT_NEAR(mean(x), 3.5f, 1e-6f);
}

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(99), b(99);
    Tensor ta = a.normalTensor({4, 4});
    Tensor tb = b.normalTensor({4, 4});
    test::expectClose(ta, tb, 0.0f, "same-seed tensors");
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        float v = rng.uniform(2.0f, 3.0f);
        EXPECT_GE(v, 2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(Rng, NormalMomentsRoughlyCorrect)
{
    Rng rng(2);
    Tensor t = rng.normalTensor({10000}, 1.0f, 2.0f);
    double m = mean(t);
    EXPECT_NEAR(m, 1.0, 0.1);
    double var = 0.0;
    for (int64_t i = 0; i < t.numel(); ++i)
        var += (t.flat(i) - m) * (t.flat(i) - m);
    var /= t.numel();
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

} // namespace
} // namespace fsmoe
