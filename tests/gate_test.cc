/**
 * @file
 * Tests for the four routing functions: assignment structure,
 * determinism, replication, and exact backward passes validated
 * against finite differences of a synthetic loss.
 */
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/gate.h"
#include "test_util.h"

namespace fsmoe::core {
namespace {

constexpr int64_t kTokens = 12;
constexpr int64_t kEmbed = 32;
constexpr int kExperts = 4;
constexpr int kTop = 2;

class GateTest : public ::testing::TestWithParam<GateKind>
{
  protected:
    std::unique_ptr<GateBase>
    make(uint64_t seed = 7)
    {
        Rng rng(seed);
        return makeGate(GetParam(), kEmbed, kExperts, kTop, rng);
    }
};

TEST_P(GateTest, AssignmentsReferenceValidTokensAndExperts)
{
    auto gate = make();
    Rng rng(21);
    Tensor x = rng.normalTensor({kTokens, kEmbed});
    GateResult res = gate->forward(x);
    ASSERT_FALSE(res.assignments.empty());
    for (const Assignment &a : res.assignments) {
        EXPECT_GE(a.token, 0);
        EXPECT_LT(a.token, kTokens);
        EXPECT_GE(a.expert, 0);
        EXPECT_LT(a.expert, kExperts);
        EXPECT_TRUE(std::isfinite(a.weight));
    }
}

TEST_P(GateTest, TokenChoiceEmitsExactlyTopKPerToken)
{
    if (GetParam() == GateKind::ExpertChoice)
        GTEST_SKIP() << "expert-choice routes per expert";
    auto gate = make();
    Rng rng(22);
    Tensor x = rng.normalTensor({kTokens, kEmbed});
    GateResult res = gate->forward(x);
    ASSERT_EQ(res.assignments.size(),
              static_cast<size_t>(kTokens * kTop));
    for (int64_t t = 0; t < kTokens; ++t) {
        std::set<int> experts;
        for (int j = 0; j < kTop; ++j) {
            const Assignment &a = res.assignments[t * kTop + j];
            EXPECT_EQ(a.token, t);
            experts.insert(a.expert);
        }
        EXPECT_EQ(experts.size(), static_cast<size_t>(kTop))
            << "token routed twice to one expert";
    }
}

TEST_P(GateTest, ExpertChoiceEmitsCapacityPerExpert)
{
    if (GetParam() != GateKind::ExpertChoice)
        GTEST_SKIP();
    auto gate = make();
    Rng rng(23);
    Tensor x = rng.normalTensor({kTokens, kEmbed});
    GateResult res = gate->forward(x);
    const int64_t cap = kTokens * kTop / kExperts;
    ASSERT_EQ(res.assignments.size(), static_cast<size_t>(cap * kExperts));
    std::vector<int> per_expert(kExperts, 0);
    for (const Assignment &a : res.assignments)
        per_expert[a.expert]++;
    for (int c : per_expert)
        EXPECT_EQ(c, cap);
}

TEST_P(GateTest, SoftmaxWeightsSumToOne)
{
    if (GetParam() != GateKind::GShard && GetParam() != GateKind::XMoe)
        GTEST_SKIP() << "only softmax gates normalise per token";
    auto gate = make();
    Rng rng(24);
    Tensor x = rng.normalTensor({kTokens, kEmbed});
    GateResult res = gate->forward(x);
    for (int64_t t = 0; t < kTokens; ++t) {
        double sum = 0.0;
        for (int j = 0; j < kTop; ++j)
            sum += res.assignments[t * kTop + j].weight;
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST_P(GateTest, DeterministicAcrossReplicas)
{
    auto g1 = make(5);
    auto g2 = make(5);
    Rng rng(25);
    Tensor x = rng.normalTensor({kTokens, kEmbed});
    GateResult r1 = g1->forward(x);
    GateResult r2 = g2->forward(x);
    ASSERT_EQ(r1.assignments.size(), r2.assignments.size());
    for (size_t i = 0; i < r1.assignments.size(); ++i) {
        EXPECT_EQ(r1.assignments[i].token, r2.assignments[i].token);
        EXPECT_EQ(r1.assignments[i].expert, r2.assignments[i].expert);
        EXPECT_EQ(r1.assignments[i].weight, r2.assignments[i].weight);
    }
}

/**
 * Finite-difference check of the full gate backward: loss =
 * sum_i c_i * weight_i for fixed random coefficients c. Routing
 * decisions are discrete, so tiny perturbations keep the same top-k
 * set and the weight path stays differentiable.
 */
TEST_P(GateTest, InputGradientMatchesFiniteDifference)
{
    auto gate = make(9);
    Rng rng(26);
    Tensor x = rng.normalTensor({kTokens, kEmbed});
    GateResult res = gate->forward(x);
    std::vector<float> coeff(res.assignments.size());
    Rng crng(27);
    for (float &c : coeff)
        c = crng.normal();

    gate->zeroGrad();
    Tensor dx = gate->backward(coeff);

    auto loss = [&]() {
        GateResult r = gate->forward(x);
        double s = 0.0;
        for (size_t i = 0; i < r.assignments.size(); ++i)
            s += coeff[i] * r.assignments[i].weight;
        return s;
    };
    // Re-run the forward the analytic pass consumed before probing.
    test::expectGradMatches(x, dx, loss, 5e-3, 3e-2, 24);
}

TEST_P(GateTest, WeightGradientMatchesFiniteDifference)
{
    auto gate = make(11);
    Rng rng(28);
    Tensor x = rng.normalTensor({kTokens, kEmbed});
    GateResult res = gate->forward(x);
    std::vector<float> coeff(res.assignments.size());
    Rng crng(29);
    for (float &c : coeff)
        c = crng.normal();

    gate->zeroGrad();
    gate->forward(x);
    gate->backward(coeff);

    auto loss = [&]() {
        GateResult r = gate->forward(x);
        double s = 0.0;
        for (size_t i = 0; i < r.assignments.size(); ++i)
            s += coeff[i] * r.assignments[i].weight;
        return s;
    };
    // Routing is discrete: a weight perturbation can flip the top-k
    // selection, at which point the loss is genuinely non-smooth and
    // finite differences are meaningless. Probe only points where the
    // (token, expert) assignment set is perturbation-stable.
    auto signature = [&]() {
        GateResult r = gate->forward(x);
        std::vector<int64_t> sig;
        for (const core::Assignment &a : r.assignments)
            sig.push_back(a.token * 1000 + a.expert);
        return sig;
    };
    const std::vector<int64_t> base_sig = signature();
    auto params = gate->params();
    auto grads = gate->grads();
    ASSERT_EQ(params.size(), grads.size());
    const double eps = 1e-3;
    int probed = 0;
    for (size_t pi = 0; pi < params.size(); ++pi) {
        Tensor &w = *params[pi];
        const Tensor &g = *grads[pi];
        int64_t stride = std::max<int64_t>(1, w.numel() / 40);
        for (int64_t i = 0; i < w.numel(); i += stride) {
            float saved = w.flat(i);
            w.flat(i) = saved + static_cast<float>(eps);
            bool stable = signature() == base_sig;
            double up = loss();
            w.flat(i) = saved - static_cast<float>(eps);
            stable = stable && signature() == base_sig;
            double down = loss();
            w.flat(i) = saved;
            if (!stable)
                continue; // selection flipped: not differentiable here
            probed++;
            double num = (up - down) / (2.0 * eps);
            double ana = g.flat(i);
            double scale = std::max({1.0, std::fabs(num), std::fabs(ana)});
            EXPECT_NEAR(ana, num, 5e-2 * scale)
                << "param " << pi << " flat index " << i;
        }
    }
    EXPECT_GT(probed, 2) << "too few perturbation-stable probe points";
}

TEST_P(GateTest, ZeroGradClearsAccumulation)
{
    auto gate = make(13);
    Rng rng(30);
    Tensor x = rng.normalTensor({kTokens, kEmbed});
    GateResult res = gate->forward(x);
    std::vector<float> coeff(res.assignments.size(), 1.0f);
    gate->backward(coeff);
    bool any_nonzero = false;
    for (Tensor *g : gate->grads())
        for (int64_t i = 0; i < g->numel(); ++i)
            any_nonzero |= g->flat(i) != 0.0f;
    EXPECT_TRUE(any_nonzero);
    gate->zeroGrad();
    for (Tensor *g : gate->grads())
        for (int64_t i = 0; i < g->numel(); ++i)
            EXPECT_EQ(g->flat(i), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateTest,
    ::testing::Values(GateKind::GShard, GateKind::Sigmoid, GateKind::XMoe,
                      GateKind::ExpertChoice),
    [](const ::testing::TestParamInfo<GateKind> &info) {
        switch (info.param) {
          case GateKind::GShard: return "gshard";
          case GateKind::Sigmoid: return "sigmoid";
          case GateKind::XMoe: return "xmoe";
          case GateKind::ExpertChoice: return "expert_choice";
          default: return "unknown";
        }
    });

TEST(GateFactory, NamesMatchKinds)
{
    Rng rng(1);
    EXPECT_EQ(makeGate(GateKind::GShard, 8, 2, 1, rng)->name(), "gshard");
    EXPECT_EQ(makeGate(GateKind::Sigmoid, 8, 2, 1, rng)->name(),
              "sigmoid");
    EXPECT_EQ(makeGate(GateKind::XMoe, 8, 2, 1, rng)->name(), "x-moe");
    EXPECT_EQ(makeGate(GateKind::ExpertChoice, 8, 2, 1, rng)->name(),
              "expert-choice");
    EXPECT_STREQ(gateKindName(GateKind::XMoe), "x-moe");
}

} // namespace
} // namespace fsmoe::core
