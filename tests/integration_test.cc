/**
 * @file
 * Cross-module integration tests: the full FSMoE pipeline from online
 * profiling through degree solving, gradient partitioning, schedule
 * generation and simulation; plus the functional layer driven by the
 * same configurations the scheduler prices.
 */
#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/moe_layer.h"
#include "core/profiler.h"
#include "core/schedules/schedule.h"
#include "model/gpipe.h"
#include "model/models.h"
#include "test_util.h"

namespace fsmoe {
namespace {

/**
 * The paper's end-to-end flow: profile the cluster (noisy), fit
 * models, solve degrees, partition gradients, emit the FSMoE schedule
 * and simulate. Fitted-model scheduling must land within a few
 * percent of ground-truth-model scheduling.
 */
TEST(EndToEnd, ProfiledModelsMatchGroundTruthScheduling)
{
    sim::ClusterSpec cluster = sim::testbedB();
    cluster.measurementNoise = 0.01;
    core::Profiler profiler(cluster, 99, 5);
    core::PerfModelSet fitted = profiler.profileAll();
    core::PerfModelSet truth = core::PerfModelSet::fromCluster(cluster);

    model::ModelSpec spec = model::mixtral7B(cluster.numNodes, 1, 256, 7);
    core::ParallelConfig par = model::paperParallelism(cluster);

    core::ModelCost cost_fit, cost_truth;
    cost_fit.models = fitted;
    cost_truth.models = truth;
    for (int i = 0; i < spec.numLayers; ++i) {
        cost_fit.layers.push_back(
            core::makeLayerCost(fitted, spec.layer, par));
        cost_truth.layers.push_back(
            core::makeLayerCost(truth, spec.layer, par));
    }
    auto sched = core::Schedule::create("fsmoe");
    double t_fit = sched->iterationTimeMs(cost_fit);
    double t_truth = sched->iterationTimeMs(cost_truth);
    EXPECT_NEAR(t_fit, t_truth, 0.05 * t_truth);
}

/** Run every schedule over every model of Fig. 6 and check ordering. */
TEST(EndToEnd, Fig6OrderingHoldsOnAllModels)
{
    struct Case
    {
        model::ModelSpec spec;
        sim::ClusterSpec cluster;
    };
    sim::ClusterSpec a = sim::testbedA();
    sim::ClusterSpec b = sim::testbedB();
    std::vector<Case> cases = {
        {model::gpt2XlMoe(a.numNodes, 1, 1024, 6), a},
        {model::mixtral7B(a.numNodes, 1, 1024, 6), a},
        {model::gpt2XlMoe(b.numNodes, 1, 256, 6), b},
        {model::mixtral7B(b.numNodes, 1, 256, 7), b},
    };
    for (const Case &c : cases) {
        core::ModelCost cost = model::makeModelCost(
            c.spec, c.cluster, model::paperParallelism(c.cluster));
        double ds = core::Schedule::create("ds-moe")->iterationTimeMs(cost);
        double tutel = core::Schedule::create("tutel")
                           ->iterationTimeMs(cost);
        double fsmoe = core::Schedule::create("fsmoe")
                           ->iterationTimeMs(cost);
        EXPECT_LT(tutel, ds) << c.spec.name << " on " << c.cluster.name;
        EXPECT_LE(fsmoe, tutel * 1.001)
            << c.spec.name << " on " << c.cluster.name;
        EXPECT_GT(ds / fsmoe, 1.10)
            << "FSMoE speedup over DS-MoE implausibly small for "
            << c.spec.name;
    }
}

/**
 * Functional + scheduling coherence: the same LayerShape drives both
 * the numeric layer and the workload derivation; the layer must
 * execute and the workload must be positive and finite.
 */
TEST(EndToEnd, ShapeDrivesBothFunctionalAndScheduledPaths)
{
    core::LayerShape shape;
    shape.batch = 1;
    shape.seqLen = 32;
    shape.embed = 32;
    shape.hidden = 64;
    shape.numExperts = 4;
    shape.topK = 2;
    shape.capacityFactor = 0.0;

    // Functional path.
    core::MoeLayerOptions opt;
    opt.embed = shape.embed;
    opt.hidden = shape.hidden;
    opt.numExperts = static_cast<int>(shape.numExperts);
    opt.topK = shape.topK;
    opt.capacityFactor = shape.capacityFactor;
    opt.numEp = 2;
    opt.numEsp = 2;
    core::MoeLayer layer(opt);
    Rng rng(5);
    std::vector<Tensor> xs;
    for (int r = 0; r < layer.worldSize(); ++r)
        xs.push_back(rng.normalTensor({shape.tokens(), shape.embed}));
    auto ys = layer.forward(xs);
    EXPECT_EQ(ys.size(), 4u);

    // Scheduled path.
    core::ParallelConfig par;
    par.numMp = 2;
    par.numEsp = 2;
    par.numEp = 2;
    core::Workload w = core::deriveWorkload(shape, par);
    EXPECT_GT(w.a2aBytes, 0.0);
    EXPECT_GT(w.expertMacs, 0.0);
    core::PerfModelSet models =
        core::PerfModelSet::fromCluster(sim::testbedB());
    core::PipelineSolution sol = core::solvePipeline(
        core::makeProblem(models, w, core::Phase::Forward));
    EXPECT_GE(sol.r, 1);
}

TEST(EndToEnd, DispatchCostModelsAreOrderedSensibly)
{
    sim::ClusterSpec cluster = sim::testbedA();
    // Small messages: hierarchical staging helps by amortising the
    // inter-node startup across fewer, larger messages.
    double small = 64.0 * 1024;
    double direct_s =
        core::a2aCostMs(cluster, dist::A2aAlgo::NcclDirect, small);
    double h2d_s = core::a2aCostMs(cluster, dist::A2aAlgo::Hier2D, small);
    EXPECT_LT(h2d_s, direct_s);
    // Large messages: the extra intra-node pass costs bandwidth, so
    // direct wins — the crossover the A2A literature reports.
    double large = 256.0 * (1 << 20);
    double direct_l =
        core::a2aCostMs(cluster, dist::A2aAlgo::NcclDirect, large);
    double h2d_l = core::a2aCostMs(cluster, dist::A2aAlgo::Hier2D, large);
    EXPECT_GT(h2d_l, direct_l);
    // One GPU per node degenerates to direct.
    sim::ClusterSpec flat = cluster;
    flat.gpusPerNode = 1;
    EXPECT_DOUBLE_EQ(
        core::a2aCostMs(flat, dist::A2aAlgo::Hier1D, small),
        core::a2aCostMs(flat, dist::A2aAlgo::NcclDirect, small));
}

TEST(EndToEnd, GpipeAndFlatSchedulingAgreeOnRanking)
{
    sim::ClusterSpec cluster = sim::testbedA();
    model::ModelSpec spec = model::mixtral7B(3, 4, 512, 8);
    auto ds = core::Schedule::create("ds-moe");
    auto tutel = core::Schedule::create("tutel");
    auto fsmoe = core::Schedule::create("fsmoe");
    model::GpipeResult rds = model::gpipeIteration(*ds, spec, cluster, 2,
                                                   4);
    model::GpipeResult rt = model::gpipeIteration(*tutel, spec, cluster,
                                                  2, 4);
    model::GpipeResult rf = model::gpipeIteration(*fsmoe, spec, cluster,
                                                  2, 4);
    EXPECT_LT(rt.iterationMs, rds.iterationMs);
    EXPECT_LE(rf.iterationMs, rt.iterationMs * 1.001);
}

/**
 * Property sweep: across a random sample of Table-4-style shapes the
 * FSMoE schedule never loses to Tutel and never beats the obvious
 * lower bound (the slowest single resource).
 */
class ScheduleSweepTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ScheduleSweepTest, FsMoeBoundedAndWinning)
{
    Rng rng(1000 + GetParam());
    sim::ClusterSpec cluster =
        GetParam() % 2 ? sim::testbedA() : sim::testbedB();
    core::LayerShape shape;
    shape.batch = 1 << rng.integer(0, 2);
    shape.seqLen = 256 << rng.integer(0, 2);
    shape.embed = 1024 << rng.integer(0, 2);
    shape.hidden = shape.embed * rng.integer(2, 4);
    shape.numExperts = cluster.numNodes;
    shape.ffn = rng.integer(0, 1) ? core::FfnType::Mixtral
                                  : core::FfnType::Simple;

    core::ModelCost cost;
    cost.models = core::PerfModelSet::fromCluster(cluster);
    cost.layers.push_back(core::makeLayerCost(
        cost.models, shape, model::paperParallelism(cluster)));

    double tutel =
        core::Schedule::create("tutel")
            ->iterationTimeMs(cost);
    double fsmoe =
        core::Schedule::create("fsmoe")
            ->iterationTimeMs(cost);
    EXPECT_LE(fsmoe, tutel * 1.001);

    // Lower bound: total compute alone (both phases).
    const core::LayerCost &lc = cost.layers[0];
    double compute = lc.fwd.experts + lc.fwd.attention + lc.bwd.experts +
                     lc.bwd.attention;
    EXPECT_GE(fsmoe, compute);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, ScheduleSweepTest,
                         ::testing::Range(0, 12));

} // namespace
} // namespace fsmoe
