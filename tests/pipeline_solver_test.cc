/**
 * @file
 * Tests for Algorithm 1: predicate logic, case formulas, continuous
 * vs exhaustive agreement over a configuration sweep, agreement with
 * the discrete-event simulator, and the paper's observation that
 * forward and backward phases prefer different degrees.
 */
#include <gtest/gtest.h>

#include "core/moe_config.h"
#include "core/perf_model.h"
#include "core/pipeline_solver.h"
#include "core/schedules/schedule.h"
#include "sim/cluster.h"
#include "sim/simulator.h"

namespace fsmoe::core {
namespace {

PipelineProblem
problemFor(const sim::ClusterSpec &cluster, const LayerShape &shape,
           Phase phase, double t_gar = 0.0)
{
    ParallelConfig par;
    par.numMp = cluster.gpusPerNode;
    par.numEsp = cluster.gpusPerNode;
    par.numEp = cluster.numNodes;
    PerfModelSet models = PerfModelSet::fromCluster(cluster);
    return makeProblem(models, deriveWorkload(shape, par), phase, t_gar);
}

TEST(PipelineSolver, ChunkTimesFollowEq1)
{
    TaskModel m{0.5, 2.0, 10.0};
    EXPECT_DOUBLE_EQ(m.chunk(1), 20.5);
    EXPECT_DOUBLE_EQ(m.chunk(4), 5.5);
}

TEST(PipelineSolver, CasesPartitionTheSpace)
{
    // Whatever the inputs, exactly one case must hold at every r.
    sim::ClusterSpec a = sim::testbedA();
    for (double h_scale : {2, 3, 4}) {
        for (int64_t m : {1024, 2048, 4096}) {
            LayerShape s;
            s.embed = m;
            s.hidden = static_cast<int64_t>(m * h_scale);
            s.numExperts = a.numNodes;
            for (double gar : {0.0, 1.0, 10.0}) {
                PipelineProblem p =
                    problemFor(a, s, Phase::Backward, gar);
                for (int r = 1; r <= 16; ++r) {
                    int c = caseAt(p, r);
                    EXPECT_GE(c, 1);
                    EXPECT_LE(c, 4);
                }
            }
        }
    }
}

TEST(PipelineSolver, Case1FormulaMatchesEq2)
{
    PipelineProblem p;
    p.a2a = {0.3, 1e-3, 1000.0};
    p.ag = {0.1, 1e-4, 1000.0};
    p.rs = {0.1, 1e-4, 1000.0};
    p.exp = {0.05, 1e-5, 1000.0};
    p.tGar = 5.0;
    double r = 4.0;
    double expect = 2.0 * r * (0.3 + 1.0 / r) + 5.0;
    EXPECT_NEAR(caseTime(p, 1, r), expect, 1e-9);
}

TEST(PipelineSolver, CaseFormulasAreTheMaxEnvelope)
{
    // The active case's formula is the largest of the four — the case
    // analysis identifies the binding resource.
    sim::ClusterSpec b = sim::testbedB();
    LayerShape s;
    s.embed = 2048;
    s.hidden = 4096;
    s.numExperts = b.numNodes;
    for (double gar : {0.0, 2.0, 20.0}) {
        PipelineProblem p = problemFor(b, s, Phase::Backward, gar);
        for (int r = 1; r <= 12; ++r) {
            int c = caseAt(p, r);
            double t = caseTime(p, c, r);
            for (int other = 1; other <= 4; ++other) {
                EXPECT_GE(t + 1e-9, caseTime(p, other, r))
                    << "case " << c << " not max at r=" << r
                    << " (vs case " << other << ", gar=" << gar << ")";
            }
        }
    }
}

TEST(PipelineSolver, SolverMatchesExhaustiveOnSweep)
{
    // Sweep a slice of the paper's Table 4 grid on both testbeds and
    // require the Algorithm-1 solve to match brute force.
    int checked = 0, matched_time = 0;
    for (const sim::ClusterSpec &cluster :
         {sim::testbedA(), sim::testbedB()}) {
        for (int64_t batch : {1, 4}) {
            for (int64_t len : {512, 1024}) {
                for (int64_t m : {1024, 4096}) {
                    for (double hs : {2.0, 4.0}) {
                        LayerShape s;
                        s.batch = batch;
                        s.seqLen = len;
                        s.embed = m;
                        s.hidden = static_cast<int64_t>(m * hs);
                        s.numExperts = cluster.numNodes;
                        for (Phase ph :
                             {Phase::Forward, Phase::Backward}) {
                            PipelineProblem p =
                                problemFor(cluster, s, ph, 0.8);
                            PipelineSolution fast = solvePipeline(p);
                            PipelineSolution ref =
                                solvePipelineExhaustive(p);
                            checked++;
                            // Times must agree to within 2%; the
                            // degree itself may differ on flat optima.
                            if (fast.tMoe <= ref.tMoe * 1.02)
                                matched_time++;
                        }
                    }
                }
            }
        }
    }
    EXPECT_EQ(checked, matched_time)
        << "Algorithm 1 lost >2% vs brute force on some configs";
    EXPECT_EQ(checked, 2 * 2 * 2 * 2 * 2 * 2);
}

TEST(PipelineSolver, AnalyticTimeTracksSimulatedPipeline)
{
    // The case-formula makespan should approximate the DES makespan of
    // the corresponding task graph within a modest tolerance.
    sim::ClusterSpec cluster = sim::testbedB();
    PerfModelSet models = PerfModelSet::fromCluster(cluster);
    ParallelConfig par;
    par.numMp = cluster.gpusPerNode;
    par.numEsp = cluster.gpusPerNode;
    par.numEp = cluster.numNodes;

    LayerShape s;
    s.embed = 2048;
    s.hidden = 6144;
    s.numExperts = cluster.numNodes;
    Workload w = deriveWorkload(s, par);
    LayerCost lc = makeLayerCost(models, s, par);
    lc.fwd.routing = lc.fwd.order = lc.fwd.attention = 0.0;

    for (int r : {1, 2, 4, 8}) {
        PipelineProblem p = makeProblem(models, w, Phase::Forward);
        double analytic = analyticMoeTime(p, r);

        sim::TaskGraph g;
        detail::PipelineBuildOptions opts;
        detail::appendMoePhase(g, lc, models, Phase::Forward, r, opts, -1);
        double simulated = sim::Simulator{}.run(g).makespan;
        EXPECT_NEAR(simulated, analytic, 0.25 * analytic)
            << "r=" << r;
    }
}

TEST(PipelineSolver, LargerGarPushesTowardCase1)
{
    sim::ClusterSpec cluster = sim::testbedB();
    LayerShape s;
    s.embed = 1024;
    s.hidden = 2048;
    s.numExperts = cluster.numNodes;
    PipelineProblem p = problemFor(cluster, s, Phase::Backward, 0.0);
    PipelineSolution free = solvePipeline(p);
    p.tGar = 1000.0; // enormous gradient traffic
    PipelineSolution loaded = solvePipeline(p);
    EXPECT_EQ(loaded.caseId, 1);
    // The AllReduce dominates the loaded makespan; overlapping lets it
    // cost at most the free pipeline plus the full AllReduce (and the
    // solver may shrink r to cut AlltoAll startup under case 1).
    EXPECT_GE(loaded.tMoe, 1000.0);
    EXPECT_LE(loaded.tMoe, free.tMoe + 1000.0 + 1e-6);
}

TEST(PipelineSolver, OverlappableTimeIsPositiveAndBounded)
{
    sim::ClusterSpec cluster = sim::testbedA();
    LayerShape s;
    s.embed = 2048;
    s.hidden = 8192;
    s.numExperts = cluster.numNodes;
    PipelineProblem p = problemFor(cluster, s, Phase::Backward, 0.0);
    PipelineSolution sol = solvePipeline(p);
    EXPECT_GT(sol.tOlpMoe, 0.0);
    EXPECT_LE(sol.tOlpMoe, sol.tMoe + 1e-9);
}

TEST(PipelineSolver, ForwardAndBackwardDegreesOftenDiffer)
{
    // §2.3: 912 of 1458 configurations prefer different degrees per
    // phase. Require a healthy fraction on a coarse sub-grid.
    sim::ClusterSpec cluster = sim::testbedB();
    int total = 0, differ = 0;
    for (int64_t batch : {1, 2, 4}) {
        for (int64_t len : {256, 512, 1024}) {
            for (int64_t m : {1024, 2048, 4096}) {
                for (double hs : {2.0, 3.0, 4.0}) {
                    LayerShape s;
                    s.batch = batch;
                    s.seqLen = len;
                    s.embed = m;
                    s.hidden = static_cast<int64_t>(m * hs);
                    s.numExperts = cluster.numNodes;
                    PipelineProblem fwd =
                        problemFor(cluster, s, Phase::Forward);
                    PipelineProblem bwd =
                        problemFor(cluster, s, Phase::Backward, 1.0);
                    total++;
                    if (solvePipeline(fwd).r != solvePipeline(bwd).r)
                        differ++;
                }
            }
        }
    }
    EXPECT_GT(differ, total / 4)
        << differ << "/" << total << " configs with distinct degrees";
}

TEST(PipelineSolver, BackwardDoublesExpertWork)
{
    PerfModelSet models = PerfModelSet::fromCluster(sim::testbedA());
    LayerShape s;
    ParallelConfig par;
    Workload w = deriveWorkload(s, par);
    PipelineProblem f = makeProblem(models, w, Phase::Forward);
    PipelineProblem b = makeProblem(models, w, Phase::Backward);
    EXPECT_DOUBLE_EQ(b.exp.n, 2.0 * f.exp.n);
    EXPECT_DOUBLE_EQ(b.exp.alpha, 2.0 * f.exp.alpha);
    EXPECT_DOUBLE_EQ(b.a2a.n, f.a2a.n);
}

TEST(PipelineSolver, DegreeOneIsAlwaysFeasibleFallback)
{
    PipelineProblem p;
    p.a2a = {0.1, 1e-6, 100.0};
    p.ag = {0.1, 1e-6, 100.0};
    p.rs = {0.1, 1e-6, 100.0};
    p.exp = {0.1, 1e-6, 100.0};
    p.rMax = 1;
    PipelineSolution sol = solvePipeline(p);
    EXPECT_EQ(sol.r, 1);
    EXPECT_GT(sol.tMoe, 0.0);
}

} // namespace
} // namespace fsmoe::core
