/**
 * @file
 * Tests for the open schedule-plugin API: spec parsing and
 * canonicalization, alias/case/separator normalization, parameter
 * validation error paths, duplicate-registration rejection, parameter
 * effects on built graphs, and concurrent registry use.
 *
 * Registrations are process-wide, so every plugin this file registers
 * uses a test-unique name; tests must not assume the registry holds
 * *only* the built-ins.
 */
#include <atomic>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"
#include "model/models.h"
#include "sim/cluster.h"

namespace fsmoe::core {
namespace {

ModelCost
smallModel(int layers = 2)
{
    sim::ClusterSpec cluster = sim::testbedB();
    LayerShape shape;
    shape.batch = 2;
    shape.seqLen = 512;
    shape.embed = 2048;
    shape.hidden = 6144;
    shape.numExperts = cluster.numNodes;
    ParallelConfig par = model::paperParallelism(cluster);
    ModelCost cost;
    cost.models = PerfModelSet::fromCluster(cluster);
    for (int i = 0; i < layers; ++i)
        cost.layers.push_back(makeLayerCost(cost.models, shape, par));
    return cost;
}

/** A do-nothing schedule for registration-only tests. */
class NullSchedule : public Schedule
{
  public:
    sim::TaskGraph build(const ModelCost &) const override
    {
        sim::TaskGraph graph;
        graph.addTask("noop", sim::OpType::Other, sim::Link::Compute, 0,
                      1.0, {});
        return graph;
    }
};

ScheduleRegistry::Factory
nullFactory()
{
    return [](const ScheduleParams &) {
        return std::make_unique<NullSchedule>();
    };
}

// ------------------------------------------------------------ builtins

TEST(ScheduleRegistry, BuiltinsRegisteredInPaperOrder)
{
    const auto names = ScheduleRegistry::instance().names();
    ASSERT_GE(names.size(), 6u);
    const std::vector<std::string> paper = {
        "DS-MoE",       "Tutel",        "Tutel-Improved",
        "PipeMoE+Lina", "FSMoE-No-IIO", "FSMoE"};
    for (size_t i = 0; i < paper.size(); ++i)
        EXPECT_EQ(names[i], paper[i]);
}

TEST(ScheduleRegistry, NormalizationAcceptsAliasesCaseAndSeparators)
{
    ScheduleRegistry &reg = ScheduleRegistry::instance();
    // Canonical, alias, odd case, separators dropped or swapped.
    for (const char *name :
         {"FSMoE", "fsmoe", "fs-moe", "FS MOE", "DS-MoE", "dsmoe",
          "DeepSpeed", "sequential", "Tutel Improved", "tutelimproved",
          "TUTEL-IMPROVED", "PipeMoE+Lina", "pipemoe-lina", "LINA",
          "no-iio", "FSMoE_No_IIO", "pipemoe"})
        EXPECT_TRUE(reg.has(name)) << name;
    EXPECT_FALSE(reg.has("bogus"));
    EXPECT_FALSE(reg.has(""));

    // Aliases resolve to the same plugin as the canonical name.
    ScheduleInfo by_alias, by_name;
    ASSERT_TRUE(reg.info("lina", &by_alias));
    ASSERT_TRUE(reg.info("PipeMoE+Lina", &by_name));
    EXPECT_EQ(by_alias.name, by_name.name);
}

// ------------------------------------------------- spec parsing errors

TEST(ScheduleRegistry, UnknownScheduleReportsKnownNames)
{
    std::string error;
    EXPECT_EQ(ScheduleRegistry::instance().tryCreate("warp-speed", &error),
              nullptr);
    EXPECT_NE(error.find("unknown schedule 'warp-speed'"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("FSMoE"), std::string::npos) << error;
    EXPECT_NE(error.find("DS-MoE"), std::string::npos) << error;
}

TEST(ScheduleRegistry, MalformedSpecsAreRejected)
{
    ScheduleRegistry &reg = ScheduleRegistry::instance();
    std::string canonical, error;
    // Empty name, with and without params.
    EXPECT_FALSE(reg.canonicalize("", &canonical, &error));
    EXPECT_FALSE(reg.canonicalize("?degree=4", &canonical, &error));
    // Parameter segment without '=' or without a key.
    EXPECT_FALSE(reg.canonicalize("tutel?degree", &canonical, &error));
    EXPECT_NE(error.find("key=value"), std::string::npos) << error;
    EXPECT_FALSE(reg.canonicalize("tutel?=4", &canonical, &error));
    // Empty parameter list after '?'.
    EXPECT_FALSE(reg.canonicalize("tutel?", &canonical, &error));
    // Duplicate key.
    EXPECT_FALSE(
        reg.canonicalize("tutel?degree=2&degree=4", &canonical, &error));
    EXPECT_NE(error.find("duplicate parameter"), std::string::npos)
        << error;
}

TEST(ScheduleRegistry, UnknownAndInvalidParamsAreRejected)
{
    ScheduleRegistry &reg = ScheduleRegistry::instance();
    std::string error;
    // Unknown key, with the declared ones listed.
    EXPECT_EQ(reg.tryCreate("tutel?chunkMB=30", &error), nullptr);
    EXPECT_NE(error.find("no parameter 'chunkMB'"), std::string::npos)
        << error;
    EXPECT_NE(error.find("degree"), std::string::npos) << error;
    // Value that does not parse as the declared type.
    EXPECT_EQ(reg.tryCreate("tutel?degree=abc", &error), nullptr);
    EXPECT_NE(error.find("expected an integer"), std::string::npos)
        << error;
    EXPECT_EQ(reg.tryCreate("tutel?degree=4.5", &error), nullptr);
    EXPECT_EQ(reg.tryCreate("lina?chunkMB=big", &error), nullptr);
    EXPECT_NE(error.find("expected a number"), std::string::npos) << error;
    EXPECT_EQ(reg.tryCreate("fsmoe?step2=maybe", &error), nullptr);
    EXPECT_NE(error.find("expected true/false"), std::string::npos)
        << error;
    // Bound violations.
    EXPECT_EQ(reg.tryCreate("tutel?degree=-1", &error), nullptr);
    EXPECT_NE(error.find("must be >="), std::string::npos) << error;
    EXPECT_EQ(reg.tryCreate("lina?chunkMB=0", &error), nullptr);
    // Int values wider than 32 bits would silently wrap to a
    // different configuration than the spec claims; reject them —
    // both the in-int64-range case and strtoll saturation.
    EXPECT_EQ(reg.tryCreate("tutel?degree=4294967298", &error), nullptr);
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
    EXPECT_EQ(reg.tryCreate("tutel?degree=9223372036854775807999",
                            &error),
              nullptr);
    // Non-finite doubles sneak past a plain bound check (NaN compares
    // false against everything); they must be rejected.
    EXPECT_EQ(reg.tryCreate("lina?chunkMB=nan", &error), nullptr);
    EXPECT_NE(error.find("finite"), std::string::npos) << error;
    EXPECT_EQ(reg.tryCreate("lina?chunkMB=inf", &error), nullptr);
    EXPECT_EQ(reg.tryCreate("lina?chunkMB=-inf", &error), nullptr);
}

// ----------------------------------------------------- canonical specs

TEST(ScheduleRegistry, CanonicalizeNormalizesNameKeysAndValues)
{
    ScheduleRegistry &reg = ScheduleRegistry::instance();
    std::string canonical, error;

    ASSERT_TRUE(reg.canonicalize("fsmoe", &canonical, &error)) << error;
    EXPECT_EQ(canonical, "FSMoE");
    ASSERT_TRUE(reg.canonicalize("lina", &canonical, &error)) << error;
    EXPECT_EQ(canonical, "PipeMoE+Lina");

    // Case-folded name and key, whitespace, leading-zero value.
    ASSERT_TRUE(reg.canonicalize(" TUTEL ? DEGREE = 04 ", &canonical,
                                 &error))
        << error;
    EXPECT_EQ(canonical, "Tutel?degree=4");

    // Params re-serialize canonically and land in declared order
    // regardless of the order given.
    ASSERT_TRUE(reg.canonicalize("lina?degree=2&chunkmb=60.0", &canonical,
                                 &error))
        << error;
    EXPECT_EQ(canonical, "PipeMoE+Lina?chunkMB=60&degree=2");

    // Bool values normalize across spellings.
    ASSERT_TRUE(reg.canonicalize("fsmoe?step2=Yes", &canonical, &error))
        << error;
    EXPECT_EQ(canonical, "FSMoE?step2=true");
    ASSERT_TRUE(reg.canonicalize("fsmoe?step2=0", &canonical, &error))
        << error;
    EXPECT_EQ(canonical, "FSMoE?step2=false");

    // An explicitly-given default is preserved, keeping the spec
    // distinct from the bare name as a sweep key.
    ASSERT_TRUE(reg.canonicalize("tutel?degree=0", &canonical, &error))
        << error;
    EXPECT_EQ(canonical, "Tutel?degree=0");
}

TEST(ScheduleRegistry, CreateSetsCanonicalNameAndSpec)
{
    auto plain = Schedule::create("fsmoe");
    EXPECT_EQ(plain->name(), "FSMoE");
    EXPECT_EQ(plain->spec(), "FSMoE");

    auto tuned = Schedule::create("TUTEL?degree=4");
    EXPECT_EQ(tuned->name(), "Tutel");
    EXPECT_EQ(tuned->spec(), "Tutel?degree=4");
}

// ------------------------------------------------ duplicate registration

TEST(ScheduleRegistry, DuplicateAndInvalidRegistrationsAreRejected)
{
    ScheduleRegistry &reg = ScheduleRegistry::instance();

    // Colliding with a built-in canonical name, an alias of one, and a
    // spelling that normalizes to one.
    for (const char *name : {"FSMoE", "lina", "F-S-M-O-E"}) {
        ScheduleInfo info;
        info.name = name;
        EXPECT_FALSE(reg.registerSchedule(info, nullFactory())) << name;
    }
    // An alias colliding with a built-in also rejects the whole plugin.
    {
        ScheduleInfo info;
        info.name = "registry-test-collider";
        info.aliases = {"tutel"};
        EXPECT_FALSE(reg.registerSchedule(info, nullFactory()));
        EXPECT_FALSE(reg.has("registry-test-collider"));
    }
    // Empty name, null factory, malformed parameter declarations.
    {
        ScheduleInfo info;
        info.name = "  ";
        EXPECT_FALSE(reg.registerSchedule(info, nullFactory()));
    }
    {
        ScheduleInfo info;
        info.name = "registry-test-nullfactory";
        EXPECT_FALSE(reg.registerSchedule(info, nullptr));
    }
    {
        ScheduleInfo info;
        info.name = "registry-test-badparam";
        info.params = {{"", ScheduleParamType::Int, "0", "", 0.0}};
        EXPECT_FALSE(reg.registerSchedule(info, nullFactory()));
        info.params = {{"k", ScheduleParamType::Int, "zero", "", 0.0}};
        EXPECT_FALSE(reg.registerSchedule(info, nullFactory()));
        info.params = {{"k", ScheduleParamType::Int, "1", "", 0.0},
                       {"K", ScheduleParamType::Int, "1", "", 0.0}};
        EXPECT_FALSE(reg.registerSchedule(info, nullFactory()));
    }

    // A valid registration succeeds once, then collides with itself.
    ScheduleInfo info;
    info.name = "registry-test-dup";
    EXPECT_TRUE(reg.registerSchedule(info, nullFactory()));
    EXPECT_FALSE(reg.registerSchedule(info, nullFactory()));
    EXPECT_TRUE(reg.has("registry-test-dup"));
}

// ------------------------------------------------- parameters in action

/** Count tasks whose name starts with @p prefix. */
size_t
countTasks(const sim::TaskGraph &graph, const std::string &prefix)
{
    size_t n = 0;
    for (const sim::Task &t : graph.tasks())
        n += t.name().compare(0, prefix.size(), prefix) == 0 ? 1 : 0;
    return n;
}

TEST(ScheduleRegistry, TutelDegreeParamPinsThePipelineDegree)
{
    const ModelCost cost = smallModel(1);
    // One layer, forward + backward: r dispatch chunks ("d0".."d<r-1>")
    // per phase.
    for (int r : {2, 5}) {
        auto sched =
            Schedule::create("tutel?degree=" + std::to_string(r));
        sim::TaskGraph graph = sched->build(cost);
        EXPECT_EQ(countTasks(graph, "d"), 2u * r) << "degree " << r;
    }
}

TEST(ScheduleRegistry, LinaChunkParamControlsGradientBuckets)
{
    const ModelCost cost = smallModel(3);
    auto small = Schedule::create("lina?chunkMB=8&degree=2");
    auto large = Schedule::create("lina?chunkMB=64&degree=2");
    const size_t small_chunks = countTasks(small->build(cost), "gar");
    const size_t large_chunks = countTasks(large->build(cost), "gar");
    EXPECT_GT(small_chunks, large_chunks);
    EXPECT_GE(large_chunks, 1u);
}

TEST(ScheduleRegistry, ParamBagExposesTypedValuesToFactories)
{
    ScheduleRegistry &reg = ScheduleRegistry::instance();
    ScheduleInfo info;
    info.name = "registry-test-probe";
    info.params = {
        {"count", ScheduleParamType::Int, "1", "", 0.0},
        {"scale", ScheduleParamType::Double, "1.5", "", 0.0},
        {"flag", ScheduleParamType::Bool, "false", "", 0.0},
        {"tag", ScheduleParamType::String, "x", "", 0.0},
    };
    ScheduleParams seen;
    ASSERT_TRUE(reg.registerSchedule(
        info, [&seen](const ScheduleParams &p) {
            seen = p;
            return std::make_unique<NullSchedule>();
        }));

    auto sched = reg.create(
        "registry-test-probe?count=7&scale=2.25&flag=on&tag=hello");
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->spec(), "registry-test-probe?count=7&scale=2.25&"
                             "flag=true&tag=hello");
    EXPECT_TRUE(seen.has("count"));
    EXPECT_TRUE(seen.has("COUNT")) << "key lookup is normalized";
    EXPECT_EQ(seen.getInt("count", -1), 7);
    EXPECT_DOUBLE_EQ(seen.getDouble("scale", 0.0), 2.25);
    EXPECT_TRUE(seen.getBool("flag", false));
    EXPECT_EQ(seen.getString("tag", ""), "hello");
    // Absent keys fall back.
    EXPECT_FALSE(seen.has("missing"));
    EXPECT_EQ(seen.getInt("missing", 42), 42);

    // Defaults only: the factory sees an empty bag.
    sched = reg.create("registry-test-probe");
    EXPECT_FALSE(seen.has("count"));
    EXPECT_EQ(seen.getInt("count", 1), 1);
}

// ------------------------------------------------------- bounds (max)

TEST(ScheduleRegistry, UpperBoundsAreEnforcedWithTheParamName)
{
    ScheduleRegistry &reg = ScheduleRegistry::instance();
    std::string error;
    // degree declares max 16 (the demo rMax ceiling).
    EXPECT_EQ(reg.tryCreate("tutel?degree=17", &error), nullptr);
    EXPECT_NE(error.find("must be <= 16"), std::string::npos) << error;
    EXPECT_NE(error.find("'degree'"), std::string::npos) << error;
    EXPECT_NE(reg.tryCreate("tutel?degree=16", &error), nullptr) << error;
    // chunkMB declares max 1024.
    EXPECT_EQ(reg.tryCreate("lina?chunkMB=1025", &error), nullptr);
    EXPECT_NE(error.find("must be <= 1024"), std::string::npos) << error;
    EXPECT_NE(error.find("'chunkMB'"), std::string::npos) << error;

    // A default outside [min, max], or min > max, rejects registration.
    ScheduleInfo info;
    info.name = "registry-test-maxbound";
    info.params = {{"k", ScheduleParamType::Int, "9", "", 0.0, 8.0}};
    EXPECT_FALSE(reg.registerSchedule(info, nullFactory()));
    info.params = {{"k", ScheduleParamType::Int, "4", "", 8.0, 0.0}};
    EXPECT_FALSE(reg.registerSchedule(info, nullFactory()));
    info.params = {{"k", ScheduleParamType::Int, "4", "", 0.0, 8.0}};
    EXPECT_TRUE(reg.registerSchedule(info, nullFactory()));
}

// ------------------------------------------------- fuzz: canonical specs

/**
 * Property test over random parameter bags: any spec the registry
 * accepts must round-trip exactly (create -> canonical spec ->
 * re-parse -> identical spec and identical canonicalization), and any
 * out-of-bounds value must be rejected with the parameter's canonical
 * name in the message. Runs against a test plugin covering all four
 * param types plus every built-in schedule.
 */
TEST(ScheduleRegistry, FuzzRandomParamBagsRoundTripOrFailWithParamName)
{
    ScheduleRegistry &reg = ScheduleRegistry::instance();
    ScheduleInfo info;
    info.name = "registry-test-fuzz";
    info.params = {
        {"count", ScheduleParamType::Int, "3", "", 1.0, 64.0},
        {"scale", ScheduleParamType::Double, "1.5", "", 0.25, 8.0},
        {"flag", ScheduleParamType::Bool, "false", ""},
        {"tag", ScheduleParamType::String, "x", ""},
    };
    ASSERT_TRUE(reg.registerSchedule(info, nullFactory()));

    std::mt19937_64 rng(0xf5a0e7u);
    std::uniform_int_distribution<int> count_dist(-8, 80);
    std::uniform_real_distribution<double> scale_dist(-1.0, 10.0);
    std::uniform_int_distribution<int> coin(0, 1);

    int accepted = 0;
    int rejected = 0;
    for (int iter = 0; iter < 400; ++iter) {
        const int count = count_dist(rng);
        const double scale = scale_dist(rng);
        const bool flag = coin(rng) == 1;
        char scale_text[32];
        std::snprintf(scale_text, sizeof scale_text, "%.17g", scale);
        const std::string spec =
            "registry-test-fuzz?count=" + std::to_string(count) +
            "&scale=" + scale_text + "&flag=" + (flag ? "on" : "0") +
            "&tag=t" + std::to_string(iter % 7);
        const bool in_bounds = count >= 1 && count <= 64 &&
                               scale >= 0.25 && scale <= 8.0;

        std::string error;
        auto sched = reg.tryCreate(spec, &error);
        if (!in_bounds) {
            ++rejected;
            ASSERT_EQ(sched, nullptr) << spec;
            // The offending parameter is named canonically.
            const bool names_param =
                error.find(count < 1 || count > 64 ? "'count'"
                                                   : "'scale'") !=
                std::string::npos;
            EXPECT_TRUE(names_param) << spec << " -> " << error;
            continue;
        }
        ++accepted;
        ASSERT_NE(sched, nullptr) << spec << " -> " << error;

        // Round trip 1: the canonical spec re-parses to itself.
        const std::string canonical = sched->spec();
        std::string recanonical;
        ASSERT_TRUE(reg.canonicalize(canonical, &recanonical, &error))
            << canonical << " -> " << error;
        EXPECT_EQ(recanonical, canonical) << spec;

        // Round trip 2: re-creating from the canonical spec yields the
        // same schedule identity (name + spec), bit-exact doubles
        // included.
        auto again = reg.tryCreate(canonical, &error);
        ASSERT_NE(again, nullptr) << canonical << " -> " << error;
        EXPECT_EQ(again->spec(), canonical);
        EXPECT_EQ(again->name(), sched->name());
    }
    // The ranges above make both outcomes common; guard the generator.
    EXPECT_GT(accepted, 50);
    EXPECT_GT(rejected, 50);

    // The built-ins round-trip too, across their whole declared grid.
    for (const ScheduleInfo &builtin : reg.list()) {
        for (int variant = 0; variant < 8; ++variant) {
            std::string spec = builtin.name;
            char sep = '?';
            for (const ScheduleParamInfo &p : builtin.params) {
                if (p.type == ScheduleParamType::String ||
                    (p.type != ScheduleParamType::Bool && !p.bounded()))
                    continue;
                const double frac = variant / 7.0;
                std::string value;
                if (p.type == ScheduleParamType::Bool) {
                    value = variant % 2 == 0 ? "false" : "true";
                } else if (p.type == ScheduleParamType::Int) {
                    value = std::to_string(static_cast<int64_t>(
                        p.minValue + frac * (p.maxValue - p.minValue)));
                } else {
                    char buf[32];
                    std::snprintf(buf, sizeof buf, "%.17g",
                                  p.minValue +
                                      frac * (p.maxValue - p.minValue));
                    value = buf;
                }
                spec += sep;
                spec += p.key + "=" + value;
                sep = '&';
            }
            std::string canonical, recanonical, error;
            ASSERT_TRUE(reg.canonicalize(spec, &canonical, &error))
                << spec << " -> " << error;
            ASSERT_TRUE(reg.canonicalize(canonical, &recanonical, &error))
                << canonical << " -> " << error;
            EXPECT_EQ(recanonical, canonical) << spec;
        }
    }
}

// ----------------------------------------------------------- threading

TEST(ScheduleRegistry, ConcurrentLookupsAndRegistrationsAreSafe)
{
    ScheduleRegistry &reg = ScheduleRegistry::instance();
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;

    // Readers: create, canonicalize, and list concurrently.
    for (int t = 0; t < 6; ++t) {
        threads.emplace_back([&reg, &failures, t]() {
            for (int i = 0; i < 200; ++i) {
                std::string canonical, error;
                if (!reg.canonicalize("tutel?degree=" +
                                          std::to_string(i % 8),
                                      &canonical, &error))
                    ++failures;
                if (!reg.has("fsmoe"))
                    ++failures;
                auto sched = reg.tryCreate(
                    (t % 2) == 0 ? "lina?chunkMB=16" : "DS-MoE", &error);
                if (sched == nullptr || sched->name().empty())
                    ++failures;
                if (reg.names().size() < 6u)
                    ++failures;
            }
        });
    }
    // Writers: register fresh plugins while the readers run.
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&reg, &failures, t]() {
            for (int i = 0; i < 50; ++i) {
                ScheduleInfo info;
                info.name = "registry-test-concurrent-" +
                            std::to_string(t) + "-" + std::to_string(i);
                if (!reg.registerSchedule(info, nullFactory()))
                    ++failures;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_TRUE(reg.has("registry-test-concurrent-0-49"));
    EXPECT_TRUE(reg.has("registry-test-concurrent-1-0"));
}

// ------------------------------------------------------ out-of-tree use

TEST(ScheduleRegistry, RegistrarRegistersAndScheduleRunsEndToEnd)
{
    // The ScheduleRegistrar path out-of-tree plugins use (see
    // examples/schedule_explorer.cpp), driven explicitly here.
    ScheduleInfo info;
    info.name = "registry-test-registrar";
    info.description = "trivial custom schedule";
    const ScheduleRegistrar registrar(info, nullFactory());

    ASSERT_TRUE(ScheduleRegistry::instance().has("registry-test-registrar"));
    auto sched = Schedule::create("registry-test-registrar");
    EXPECT_EQ(sched->name(), "registry-test-registrar");
    EXPECT_GT(sched->iterationTimeMs(smallModel(1)), 0.0);
}

} // namespace
} // namespace fsmoe::core
