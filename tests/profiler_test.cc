/**
 * @file
 * Tests for online profiling (§3.2/§6.2): the least-squares fits must
 * recover the cluster's ground-truth coefficients, with the paper's
 * r^2 quality even under measurement noise.
 */
#include <gtest/gtest.h>

#include "core/profiler.h"
#include "sim/cluster.h"

namespace fsmoe::core {
namespace {

TEST(Profiler, ExactRecoveryWithoutNoise)
{
    sim::ClusterSpec cluster = sim::testbedA();
    Profiler profiler(cluster);
    ProfileResult a2a = profiler.profile(ProfileOp::AlltoAll);
    EXPECT_NEAR(a2a.model.alpha, cluster.alltoall.alpha, 1e-9);
    EXPECT_NEAR(a2a.model.beta, cluster.alltoall.beta, 1e-15);
    EXPECT_NEAR(a2a.model.r2, 1.0, 1e-12);

    ProfileResult gemm = profiler.profile(ProfileOp::Gemm);
    EXPECT_NEAR(gemm.model.alpha, cluster.gemm.alpha, 1e-9);
    EXPECT_NEAR(gemm.model.beta, cluster.gemm.beta, 1e-18);
}

TEST(Profiler, SweepSizesMatchPaperProtocol)
{
    Profiler profiler(sim::testbedB());
    ProfileResult comm = profiler.profile(ProfileOp::AllGather);
    ASSERT_EQ(comm.sizes.size(), 24u);
    EXPECT_DOUBLE_EQ(comm.sizes.front(), (1 << 18) * 4.0);
    EXPECT_DOUBLE_EQ(comm.sizes.back(), 24.0 * (1 << 18) * 4.0);
    ProfileResult gemm = profiler.profile(ProfileOp::Gemm);
    ASSERT_EQ(gemm.sizes.size(), 12u);
}

TEST(Profiler, NoisyMeasurementsStillFitWell)
{
    sim::ClusterSpec cluster = sim::testbedB();
    cluster.measurementNoise = 0.01; // 1% relative noise
    Profiler profiler(cluster, /*seed=*/7, /*runs=*/5);
    for (ProfileOp op : {ProfileOp::AlltoAll, ProfileOp::AllGather,
                         ProfileOp::ReduceScatter, ProfileOp::AllReduce}) {
        ProfileResult res = profiler.profile(op);
        EXPECT_GT(res.model.r2, 0.998)
            << "op " << static_cast<int>(op);
        EXPECT_GT(res.model.beta, 0.0);
    }
}

TEST(Profiler, ProfileAllBundlesFiveModels)
{
    sim::ClusterSpec cluster = sim::testbedA();
    Profiler profiler(cluster);
    PerfModelSet set = profiler.profileAll();
    EXPECT_NEAR(set.alltoall.beta, cluster.alltoall.beta, 1e-15);
    EXPECT_NEAR(set.allgather.beta, cluster.allgather.beta, 1e-15);
    EXPECT_NEAR(set.reducescatter.beta, cluster.reducescatter.beta, 1e-15);
    EXPECT_NEAR(set.allreduce.beta, cluster.allreduce.beta, 1e-15);
    EXPECT_NEAR(set.gemm.beta, cluster.gemm.beta, 1e-18);
}

TEST(Profiler, DeterministicGivenSeed)
{
    sim::ClusterSpec cluster = sim::testbedB();
    cluster.measurementNoise = 0.05;
    Profiler p1(cluster, 11), p2(cluster, 11);
    ProfileResult a = p1.profile(ProfileOp::AllReduce);
    ProfileResult b = p2.profile(ProfileOp::AllReduce);
    EXPECT_EQ(a.model.alpha, b.model.alpha);
    EXPECT_EQ(a.model.beta, b.model.beta);
}

TEST(LinearModel, InverseRoundTrips)
{
    LinearModel m{0.5, 2e-7, 1.0};
    double n = 1.5e6;
    EXPECT_NEAR(m.inverse(m.predict(n)), n, 1e-6);
    LinearModel flat{1.0, 0.0, 1.0};
    EXPECT_EQ(flat.inverse(5.0), 0.0);
}

} // namespace
} // namespace fsmoe::core
