/**
 * @file
 * Tests for the model zoo, workload derivation, phase times, and the
 * GPipe pipeline-parallel wrapper.
 */
#include <gtest/gtest.h>

#include "core/moe_config.h"
#include "core/perf_model.h"
#include "model/gpipe.h"
#include "model/models.h"
#include "sim/cluster.h"

namespace fsmoe::model {
namespace {

using core::Workload;

TEST(Workload, VolumesScaleAsDerived)
{
    core::LayerShape s;
    s.batch = 4;
    s.seqLen = 1024;
    s.embed = 1024;
    s.hidden = 4096;
    s.numExperts = 8;
    s.topK = 2;
    s.capacityFactor = 1.2;
    core::ParallelConfig par;
    par.numMp = 4;
    Workload w = core::deriveWorkload(s, par);

    const double tokens_per_gpu = 4.0 * 1024.0 / 4.0;
    const double routed = 2.0 * 1.2 * tokens_per_gpu;
    EXPECT_DOUBLE_EQ(w.a2aBytes, routed * 1024.0 * 4.0);
    EXPECT_DOUBLE_EQ(w.agBytes, w.a2aBytes);
    EXPECT_DOUBLE_EQ(w.expertMacs, routed * 2.0 * 1024.0 * 4096.0);
    EXPECT_EQ(w.expertGemms, 2);

    s.ffn = core::FfnType::Mixtral;
    Workload wm = core::deriveWorkload(s, par);
    EXPECT_EQ(wm.expertGemms, 3);
    EXPECT_DOUBLE_EQ(wm.expertMacs, 1.5 * w.expertMacs);
}

TEST(Workload, NoDropFactorActsAsUnity)
{
    core::LayerShape s;
    s.capacityFactor = -1.0; // "*"
    core::ParallelConfig par;
    Workload w = core::deriveWorkload(s, par);
    s.capacityFactor = 1.0;
    Workload w1 = core::deriveWorkload(s, par);
    EXPECT_DOUBLE_EQ(w.a2aBytes, w1.a2aBytes);
}

TEST(Workload, MpPartitionsTokensAndAttention)
{
    core::LayerShape s;
    core::ParallelConfig one, four;
    four.numMp = 4;
    Workload w1 = core::deriveWorkload(s, one);
    Workload w4 = core::deriveWorkload(s, four);
    EXPECT_DOUBLE_EQ(w4.a2aBytes * 4.0, w1.a2aBytes);
    EXPECT_DOUBLE_EQ(w4.attnMacs * 4.0, w1.attnMacs);
}

TEST(PhaseTimes, BackwardDoublesComputeKeepsComm)
{
    core::PerfModelSet models =
        core::PerfModelSet::fromCluster(sim::testbedA());
    core::LayerShape s;
    core::ParallelConfig par;
    Workload w = core::deriveWorkload(s, par);
    core::PhaseTimes f = core::forwardTimes(models, w);
    core::PhaseTimes b = core::backwardTimes(models, w);
    EXPECT_DOUBLE_EQ(f.a2a, b.a2a);
    EXPECT_DOUBLE_EQ(f.allgather, b.allgather);
    EXPECT_GT(b.experts, 1.8 * f.experts);
    EXPECT_GT(b.attention, 1.8 * f.attention);
    EXPECT_EQ(f.gradAllReduce, 0.0);
    EXPECT_GT(b.gradAllReduce, 0.0);
}

TEST(Models, SpecsMatchArchitectures)
{
    ModelSpec gpt = gpt2XlMoe(6);
    EXPECT_EQ(gpt.layer.embed, 1600);
    EXPECT_EQ(gpt.layer.ffn, core::FfnType::Simple);

    ModelSpec m7 = mixtral7B(8);
    EXPECT_EQ(m7.layer.embed, 4096);
    EXPECT_EQ(m7.layer.hidden, 14336);
    EXPECT_EQ(m7.layer.ffn, core::FfnType::Mixtral);

    ModelSpec m22 = mixtral22B(6);
    EXPECT_EQ(m22.layer.embed, 6144);
    EXPECT_EQ(m22.numLayers, 33);
}

TEST(Models, PaperParallelismRule)
{
    core::ParallelConfig a = paperParallelism(sim::testbedA());
    EXPECT_EQ(a.numMp, 8);
    EXPECT_EQ(a.numEsp, 8);
    EXPECT_EQ(a.numEp, 6);
    core::ParallelConfig b = paperParallelism(sim::testbedB());
    EXPECT_EQ(b.numMp, 4);
    EXPECT_EQ(b.numEp, 8);
    core::ParallelConfig pp = paperParallelism(sim::testbedA(), 2);
    EXPECT_EQ(pp.numEp, 3);
    EXPECT_EQ(pp.numPp, 2);
}

TEST(Models, MakeModelCostBuildsAllLayers)
{
    ModelSpec spec = mixtral7B(8, 1, 256, 7);
    core::ModelCost cost = makeModelCost(spec, sim::testbedB(),
                                         paperParallelism(sim::testbedB()));
    EXPECT_EQ(cost.layers.size(), 7u);
    EXPECT_GT(cost.layers[0].fwd.experts, 0.0);
    EXPECT_GT(cost.layers[0].bwd.gradAllReduce, 0.0);
}

TEST(Gpipe, MoreMicroBatchesAmortiseBubbles)
{
    auto sched = core::Schedule::create("fsmoe");
    ModelSpec spec = gpt2XlMoe(3, 8, 512, 8);
    sim::ClusterSpec cluster = sim::testbedA();
    GpipeResult m2 = gpipeIteration(*sched, spec, cluster, 2, 2);
    GpipeResult m8 = gpipeIteration(*sched, spec, cluster, 2, 8);
    // Per-token efficiency: fewer bubble slots per micro-batch.
    double eff2 = m2.iterationMs / 2.0;
    double eff8 = m8.iterationMs / 8.0;
    EXPECT_LT(eff8, eff2);
}

TEST(Gpipe, SingleStageMatchesPlainIteration)
{
    auto sched = core::Schedule::create("tutel");
    ModelSpec spec = gpt2XlMoe(6, 1, 512, 4);
    sim::ClusterSpec cluster = sim::testbedA();
    GpipeResult r = gpipeIteration(*sched, spec, cluster, 1, 1);
    core::ModelCost cost = makeModelCost(spec, cluster,
                                         paperParallelism(cluster));
    double plain = sched->iterationTimeMs(cost);
    EXPECT_NEAR(r.iterationMs, plain, plain * 0.01);
}

TEST(Gpipe, FsMoeStillBeatsSequentialUnderPp)
{
    ModelSpec spec = mixtral7B(3, 2, 512, 8);
    sim::ClusterSpec cluster = sim::testbedA();
    auto ds = core::Schedule::create("ds-moe");
    auto fs = core::Schedule::create("fsmoe");
    GpipeResult rds = gpipeIteration(*ds, spec, cluster, 2, 4);
    GpipeResult rfs = gpipeIteration(*fs, spec, cluster, 2, 4);
    EXPECT_LT(rfs.iterationMs, rds.iterationMs);
}

TEST(Models, DescribeMentionsKeyFields)
{
    core::LayerShape s;
    s.capacityFactor = -1.0;
    std::string d = core::describe(s);
    EXPECT_NE(d.find("f=*"), std::string::npos);
    EXPECT_NE(d.find("M=1024"), std::string::npos);
}

} // namespace
} // namespace fsmoe::model
