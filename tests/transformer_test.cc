/**
 * @file
 * Tests for the dense-side training modules: layer norm, multi-head
 * attention, the full transformer-MoE block, the optimizers, and the
 * load-balancing auxiliary loss.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "core/transformer.h"
#include "test_util.h"

namespace fsmoe::core {
namespace {

TEST(LayerNorm, NormalisesRows)
{
    Rng rng(1);
    Tensor x = rng.normalTensor({4, 16}, 3.0f, 2.0f);
    Tensor gamma = Tensor::full({16}, 1.0f);
    Tensor beta({16});
    LayerNormCache cache;
    Tensor y = layerNorm(x, gamma, beta, cache);
    for (int64_t r = 0; r < 4; ++r) {
        double sum = 0.0, ss = 0.0;
        for (int64_t c = 0; c < 16; ++c) {
            sum += y.at(r, c);
            ss += y.at(r, c) * y.at(r, c);
        }
        EXPECT_NEAR(sum / 16, 0.0, 1e-4);
        EXPECT_NEAR(ss / 16, 1.0, 1e-3);
    }
}

TEST(LayerNorm, BackwardMatchesFiniteDifference)
{
    Rng rng(2);
    Tensor x = rng.normalTensor({3, 8});
    Tensor gamma = rng.normalTensor({8}, 1.0f, 0.1f);
    Tensor beta = rng.normalTensor({8}, 0.0f, 0.1f);
    Tensor dy = rng.normalTensor({3, 8});

    LayerNormCache cache;
    layerNorm(x, gamma, beta, cache);
    Tensor d_gamma({8}), d_beta({8});
    Tensor dx = layerNormBackward(dy, gamma, cache, d_gamma, d_beta);

    auto loss = [&]() {
        LayerNormCache c;
        Tensor y = layerNorm(x, gamma, beta, c);
        double s = 0.0;
        for (int64_t i = 0; i < y.numel(); ++i)
            s += y.flat(i) * dy.flat(i);
        return s;
    };
    test::expectGradMatches(x, dx, loss, 1e-3, 2e-2);
    test::expectGradMatches(gamma, d_gamma, loss, 1e-3, 2e-2);
    test::expectGradMatches(beta, d_beta, loss, 1e-3, 2e-2);
}

TEST(Attention, OutputShapeAndDeterminism)
{
    AttentionOptions opt;
    opt.embed = 32;
    opt.numHeads = 4;
    opt.seqLen = 8;
    MultiHeadAttention attn(opt);
    Rng rng(3);
    Tensor x = rng.normalTensor({16, 32}); // B=2 sequences
    Tensor y1 = attn.forward(x);
    Tensor y2 = attn.forward(x);
    EXPECT_TRUE(y1.sameShape(x));
    test::expectClose(y1, y2, 0.0f, "attention determinism");
}

TEST(Attention, CausalMaskBlocksFutureTokens)
{
    AttentionOptions opt;
    opt.embed = 16;
    opt.numHeads = 2;
    opt.seqLen = 6;
    opt.causal = true;
    MultiHeadAttention attn(opt);
    Rng rng(4);
    Tensor x = rng.normalTensor({6, 16});
    Tensor y = attn.forward(x);
    // Changing a future token must not affect earlier outputs.
    Tensor x2 = x;
    for (int64_t c = 0; c < 16; ++c)
        x2.at(5, c) += 10.0f;
    Tensor y2 = attn.forward(x2);
    for (int64_t t = 0; t < 5; ++t)
        for (int64_t c = 0; c < 16; ++c)
            EXPECT_NEAR(y.at(t, c), y2.at(t, c), 1e-5f)
                << "future token leaked into position " << t;
}

TEST(Attention, NonCausalAttendsEverywhere)
{
    AttentionOptions opt;
    opt.embed = 16;
    opt.numHeads = 2;
    opt.seqLen = 4;
    opt.causal = false;
    MultiHeadAttention attn(opt);
    Rng rng(5);
    Tensor x = rng.normalTensor({4, 16});
    Tensor y = attn.forward(x);
    Tensor x2 = x;
    x2.at(3, 0) += 5.0f;
    Tensor y2 = attn.forward(x2);
    EXPECT_GT(maxAbsDiff(y, y2), 1e-4f)
        << "bidirectional attention must propagate future edits";
}

TEST(Attention, BackwardMatchesFiniteDifference)
{
    AttentionOptions opt;
    opt.embed = 12;
    opt.numHeads = 3;
    opt.seqLen = 5;
    MultiHeadAttention attn(opt);
    Rng rng(6);
    Tensor x = rng.normalTensor({10, 12}); // B=2
    Tensor dy = rng.normalTensor({10, 12});
    attn.zeroGrad();
    attn.forward(x);
    Tensor dx = attn.backward(dy);

    auto loss = [&]() {
        Tensor y = attn.forward(x);
        double s = 0.0;
        for (int64_t i = 0; i < y.numel(); ++i)
            s += y.flat(i) * dy.flat(i);
        return s;
    };
    test::expectGradMatches(x, dx, loss, 5e-3, 3e-2, 24);
    auto params = attn.params();
    auto grads = attn.grads();
    for (size_t pi = 0; pi < params.size(); ++pi)
        test::expectGradMatches(*params[pi], *grads[pi], loss, 5e-3, 3e-2,
                                16);
}

TEST(TransformerBlock, ForwardShapesAndResidualPath)
{
    TransformerBlockOptions opt;
    opt.moe.embed = 24;
    opt.moe.hidden = 48;
    opt.moe.numExperts = 4;
    opt.moe.numEp = 2;
    opt.moe.numEsp = 2;
    opt.moe.capacityFactor = 0.0;
    opt.numHeads = 4;
    opt.seqLen = 6;
    TransformerMoeBlock block(opt);
    Rng rng(7);
    std::vector<Tensor> xs;
    for (int r = 0; r < block.worldSize(); ++r)
        xs.push_back(rng.normalTensor({12, 24})); // B=2, L=6
    auto ys = block.forward(xs);
    ASSERT_EQ(ys.size(), 4u);
    for (const Tensor &y : ys)
        EXPECT_TRUE(y.sameShape(xs[0]));
}

TEST(TransformerBlock, BackwardMatchesFiniteDifference)
{
    TransformerBlockOptions opt;
    opt.moe.embed = 16;
    opt.moe.hidden = 24;
    opt.moe.numExperts = 2;
    opt.moe.numEp = 2;
    opt.moe.numEsp = 1;
    opt.moe.capacityFactor = 0.0;
    opt.numHeads = 2;
    opt.seqLen = 4;
    TransformerMoeBlock block(opt);
    Rng rng(8);
    std::vector<Tensor> xs, dys;
    for (int r = 0; r < block.worldSize(); ++r) {
        xs.push_back(rng.normalTensor({8, 16}));
        dys.push_back(rng.normalTensor({8, 16}));
    }
    block.zeroGrad();
    block.forward(xs);
    auto dxs = block.backward(dys);

    auto loss = [&]() {
        auto ys = block.forward(xs);
        double s = 0.0;
        for (size_t r = 0; r < ys.size(); ++r)
            for (int64_t i = 0; i < ys[r].numel(); ++i)
                s += ys[r].flat(i) * dys[r].flat(i);
        return s;
    };
    test::expectGradMatches(xs[0], dxs[0], loss, 1e-2, 4e-2, 16);
}

TEST(TransformerBlock, TrainsWithAdamAndAuxLoss)
{
    TransformerBlockOptions opt;
    opt.moe.embed = 16;
    opt.moe.hidden = 32;
    opt.moe.numExperts = 4;
    opt.moe.numEp = 2;
    opt.moe.numEsp = 1;
    opt.moe.capacityFactor = 0.0;
    opt.moe.auxLossScale = 0.01;
    opt.numHeads = 2;
    opt.seqLen = 8;
    TransformerMoeBlock block(opt);
    const int world = block.worldSize();

    AdamOptimizer adam(1e-2f);
    block.registerParams(adam);
    EXPECT_GT(adam.numParams(), 10u);

    Rng rng(9);
    std::vector<Tensor> xs, targets;
    for (int r = 0; r < world; ++r) {
        xs.push_back(rng.normalTensor({16, 16}));
        targets.push_back(rng.normalTensor({16, 16}, 0.0f, 0.5f));
    }

    double first = 0.0, last = 0.0;
    for (int step = 0; step < 40; ++step) {
        auto ys = block.forward(xs);
        double loss = 0.0;
        int64_t count = 0;
        std::vector<Tensor> grads(world);
        for (int r = 0; r < world; ++r) {
            grads[r] = sub(ys[r], targets[r]);
            for (int64_t i = 0; i < grads[r].numel(); ++i)
                loss += grads[r].flat(i) * grads[r].flat(i);
            count += grads[r].numel();
        }
        loss /= count;
        for (int r = 0; r < world; ++r)
            grads[r].scale_(2.0f / count);
        if (step == 0)
            first = loss;
        last = loss;
        adam.zeroGrad();
        block.zeroGrad();
        block.backward(grads);
        block.syncReplicatedGrads();
        adam.step();
    }
    EXPECT_LT(last, 0.6 * first)
        << "Adam training failed (first " << first << ", last " << last
        << ")";
    EXPECT_GE(block.lastAuxLoss(), 0.0);
}

TEST(Optimizer, SgdMatchesClosedForm)
{
    Tensor p({2}, {1.0f, 2.0f});
    Tensor g({2}, {0.5f, -1.0f});
    SgdOptimizer sgd(0.1f);
    sgd.add(&p, &g);
    sgd.step();
    EXPECT_NEAR(p.flat(0), 0.95f, 1e-6f);
    EXPECT_NEAR(p.flat(1), 2.1f, 1e-6f);
}

TEST(Optimizer, SgdMomentumAccumulates)
{
    Tensor p({1}, {0.0f});
    Tensor g({1}, {1.0f});
    SgdOptimizer sgd(1.0f, 0.9f);
    sgd.add(&p, &g);
    sgd.step(); // v=1, p=-1
    sgd.step(); // v=1.9, p=-2.9
    EXPECT_NEAR(p.flat(0), -2.9f, 1e-5f);
}

TEST(Optimizer, AdamFirstStepIsLrSized)
{
    Tensor p({1}, {1.0f});
    Tensor g({1}, {0.3f});
    AdamOptimizer adam(0.01f);
    adam.add(&p, &g);
    adam.step();
    // With bias correction, the first Adam step is ~lr * sign(g).
    EXPECT_NEAR(p.flat(0), 1.0f - 0.01f, 1e-4f);
}

TEST(Optimizer, ZeroGradClears)
{
    Tensor p({2}), g({2}, {1.0f, 2.0f});
    SgdOptimizer sgd(0.1f);
    sgd.add(&p, &g);
    sgd.zeroGrad();
    EXPECT_EQ(g.flat(0), 0.0f);
    EXPECT_EQ(g.flat(1), 0.0f);
}

TEST(AuxLoss, BalancedRoutingMinimisesLoss)
{
    // Uniform routing: every expert gets the same count and mass.
    GateResult balanced, skewed;
    const int e = 4;
    const int n = 8;
    for (int64_t t = 0; t < n; ++t) {
        balanced.assignments.push_back(
            {t, static_cast<int>(t % e), 0.5f});
        skewed.assignments.push_back({t, 0, 0.5f});
    }
    AuxLossResult lb = loadBalanceLoss(balanced, e, n);
    AuxLossResult ls = loadBalanceLoss(skewed, e, n);
    EXPECT_LT(lb.loss, ls.loss);
    // Skewed loss is E times the balanced one for one-hot routing.
    EXPECT_NEAR(ls.loss / lb.loss, e, 1e-6);
}

TEST(AuxLoss, GradientPushesAwayFromHotExperts)
{
    GateResult routing;
    // Expert 0 takes 3 tokens, expert 1 takes 1.
    routing.assignments = {
        {0, 0, 0.9f}, {1, 0, 0.8f}, {2, 0, 0.7f}, {3, 1, 0.6f}};
    AuxLossResult res = loadBalanceLoss(routing, 2, 4);
    // Hot expert's weights receive a larger positive gradient (they
    // get pushed down harder when descending the aux loss).
    EXPECT_GT(res.dWeights[0], res.dWeights[3]);
}

} // namespace
} // namespace fsmoe::core
