/**
 * @file
 * Regression tests for determinism hazards found by fsmoe_lint's
 * first pass over the tree: registry name listings and the repeated-
 * warning summary used to surface in std::unordered_map hash order,
 * which varies with insertion history and libstdc++ version. Both now
 * sort before exposing anything.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "base/logging.h"
#include "runtime/scenario.h"

namespace fsmoe {
namespace {

TEST(DeterminismRegression, RegistryNameListingsAreSorted)
{
    const runtime::ScenarioRegistry &reg =
        runtime::ScenarioRegistry::instance();
    std::vector<std::string> models = reg.modelNames();
    std::vector<std::string> clusters = reg.clusterNames();
    ASSERT_FALSE(models.empty());
    ASSERT_FALSE(clusters.empty());
    EXPECT_TRUE(std::is_sorted(models.begin(), models.end()));
    EXPECT_TRUE(std::is_sorted(clusters.begin(), clusters.end()));
    // Stability across calls, not just sortedness of one call.
    EXPECT_EQ(models, reg.modelNames());
    EXPECT_EQ(clusters, reg.clusterNames());
}

TEST(DeterminismRegression, RepeatedWarningSummaryIsSorted)
{
    // Two distinct warnings, each repeated, inserted in an order that
    // a hash table is free to invert. The flushed summary must come
    // out lexicographically sorted regardless.
    flushRepeatedWarnings(); // drain any prior state
    for (int i = 0; i < 3; ++i) {
        FSMOE_WARN("zzz regression warning");
        FSMOE_WARN("aaa regression warning");
    }
    testing::internal::CaptureStderr();
    flushRepeatedWarnings();
    const std::string out = testing::internal::GetCapturedStderr();
    const size_t pos_a = out.find("aaa regression warning");
    const size_t pos_z = out.find("zzz regression warning");
    ASSERT_NE(pos_a, std::string::npos) << out;
    ASSERT_NE(pos_z, std::string::npos) << out;
    EXPECT_LT(pos_a, pos_z) << "summary not sorted:\n" << out;
}

} // namespace
} // namespace fsmoe
