/**
 * @file
 * Tests for the sweep service layer: frame encoding/decoding and
 * reader poisoning (service/protocol.h), job spec parsing and
 * canonical serialisation (service/job.h), the crash-safe filesystem
 * job queue (service/job_queue.h), and an in-process end-to-end
 * SweepServer::runJob whose merged output must be byte-identical to a
 * plain single-process evaluation of the same grid.
 */
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fileio.h"
#include "runtime/journal.h"
#include "runtime/result_store.h"
#include "runtime/worker.h"
#include "service/job.h"
#include "service/job_queue.h"
#include "service/protocol.h"
#include "service/sweep_server.h"

namespace fsmoe::service {
namespace {

namespace fs = std::filesystem;

std::string
scratchDir(const char *name)
{
    fs::path p = fs::path(testing::TempDir()) / name;
    fs::remove_all(p);
    return p.string();
}

std::string
scratchPath(const char *name)
{
    fs::path p = fs::path(testing::TempDir()) / name;
    fs::remove(p);
    return p.string();
}

std::string
readAll(const std::string &path)
{
    std::string text, error;
    EXPECT_TRUE(fileio::readTextFile(path, &text, &error)) << error;
    return text;
}

// ---- protocol ------------------------------------------------------

TEST(ServiceProtocol, FramesRoundTripThroughTheReaderInOrder)
{
    const std::vector<Frame> sent = {
        {FrameType::Hello, "3"},
        {FrameType::Config, "50 2000\nfsmoe-job v1"},
        {FrameType::Assign, "7 2 3 10 11 12"},
        {FrameType::Result, "10 {\"model\":\"m\"}"},
        {FrameType::Shutdown, ""},
    };
    std::string wire;
    for (const Frame &f : sent)
        wire += encodeFrame(f);

    // Feed in deliberately awkward 3-byte chunks: partial length
    // prefixes and split bodies must all reassemble.
    FrameReader reader;
    std::vector<Frame> got;
    std::string error;
    for (size_t i = 0; i < wire.size(); i += 3) {
        reader.feed(wire.data() + i, std::min<size_t>(3, wire.size() - i));
        Frame f;
        while (reader.next(&f, &error))
            got.push_back(f);
        ASSERT_TRUE(error.empty()) << error;
    }
    ASSERT_EQ(got.size(), sent.size());
    for (size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(got[i].type, sent[i].type);
        EXPECT_EQ(got[i].body, sent[i].body);
    }
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(ServiceProtocol, IncompleteFrameStaysBufferedWithoutError)
{
    const std::string wire = encodeFrame({FrameType::Hello, "worker-1"});
    FrameReader reader;
    reader.feed(wire.data(), wire.size() - 1); // hold back one byte
    Frame f;
    std::string error;
    EXPECT_FALSE(reader.next(&f, &error));
    EXPECT_TRUE(error.empty()) << error;
    reader.feed(wire.data() + wire.size() - 1, 1);
    ASSERT_TRUE(reader.next(&f, &error)) << error;
    EXPECT_EQ(f.body, "worker-1");
}

TEST(ServiceProtocol, OversizedLengthPoisonsTheReaderPermanently)
{
    // A length prefix beyond kMaxFrameBytes means the stream framing
    // is garbage; everything after it is untrustworthy.
    std::string wire = "\xff\xff\xff\xff";
    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    Frame f;
    std::string error;
    EXPECT_FALSE(reader.next(&f, &error));
    EXPECT_FALSE(error.empty());

    // Even a subsequently-fed valid frame must not decode.
    const std::string good = encodeFrame({FrameType::Hello, "1"});
    reader.feed(good.data(), good.size());
    error.clear();
    EXPECT_FALSE(reader.next(&f, &error));
    EXPECT_FALSE(error.empty());
}

TEST(ServiceProtocol, UnknownTypeBytePoisonsTheReader)
{
    Frame bogus{static_cast<FrameType>('Z'), "payload"};
    const std::string wire = encodeFrame(bogus);
    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    Frame f;
    std::string error;
    EXPECT_FALSE(reader.next(&f, &error));
    EXPECT_NE(error.find("type"), std::string::npos) << error;
}

TEST(ServiceProtocol, ValidFrameTypeMatchesTheEnum)
{
    EXPECT_TRUE(validFrameType('H'));
    EXPECT_TRUE(validFrameType('S'));
    EXPECT_TRUE(validFrameType('R'));
    EXPECT_FALSE(validFrameType('Z'));
    EXPECT_FALSE(validFrameType('\0'));
}

// ---- job specs -----------------------------------------------------

TEST(ServiceJob, SerializeParseRoundTripsCanonically)
{
    JobSpec job;
    job.name = "demo_run-1";
    job.batches = {1, 2, 4};
    job.schedules = {"FSMoE", "Tutel"};
    job.outPath = "/tmp/out.json";

    const std::string text = serializeJobSpec(job);
    JobSpec back;
    std::string error;
    ASSERT_TRUE(parseJobSpec(text, &back, &error)) << error;
    EXPECT_EQ(back.name, job.name);
    EXPECT_EQ(back.batches, job.batches);
    EXPECT_EQ(back.schedules, job.schedules);
    EXPECT_EQ(back.outPath, job.outPath);
    // Canonical: a second serialise emits identical bytes.
    EXPECT_EQ(serializeJobSpec(back), text);
}

TEST(ServiceJob, SchedulesLineIsOptional)
{
    JobSpec back;
    std::string error;
    ASSERT_TRUE(parseJobSpec("fsmoe-job v1\nname a\nbatches 1\nout o\n",
                             &back, &error))
        << error;
    EXPECT_TRUE(back.schedules.empty());
    // Empty schedules = full demo grid, same as runtime::demoGrid.
    EXPECT_EQ(buildJobGrid(back).size(),
              runtime::demoGrid({1}, {}).size());
}

TEST(ServiceJob, MalformedSpecsAreRejectedWithLineErrors)
{
    const char *bad[] = {
        "fsmoe-job v2\nname a\nbatches 1\nout o\n",  // wrong version
        "name a\nbatches 1\nout o\n",                // missing header
        "fsmoe-job v1\nname a\nbatches 1\nout o\nfrobnicate yes\n",
        "fsmoe-job v1\nname a\nbatches 0\nout o\n",  // bad batch
        "fsmoe-job v1\nname a\nbatches x\nout o\n",  // non-integer
        "fsmoe-job v1\nbatches 1\nout o\n",          // missing name
        "fsmoe-job v1\nname a\nout o\n",             // missing batches
        "fsmoe-job v1\nname a\nbatches 1\n",         // missing out
        "fsmoe-job v1\nname bad/name\nbatches 1\nout o\n",
    };
    for (const char *text : bad) {
        SCOPED_TRACE(text);
        JobSpec out;
        std::string error;
        EXPECT_FALSE(parseJobSpec(text, &out, &error));
        EXPECT_FALSE(error.empty());
    }
}

TEST(ServiceJob, GridMatchesDemoGridForTheSameAxes)
{
    JobSpec job;
    job.name = "g";
    job.batches = {1, 2};
    job.outPath = "o";
    const auto got = buildJobGrid(job);
    const auto want = runtime::demoGrid({1, 2}, {});
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].label(), want[i].label());
}

// ---- job queue -----------------------------------------------------

JobSpec
queueJob(const char *name)
{
    JobSpec job;
    job.name = name;
    job.batches = {1};
    job.outPath = (fs::path(testing::TempDir()) / "unused.json").string();
    return job;
}

TEST(ServiceJobQueue, SubmitScanAndStateTransitionsPersist)
{
    const std::string dir = scratchDir("svcq_basic");
    JobQueue queue;
    std::string error;
    ASSERT_TRUE(queue.open(dir, &error)) << error;

    std::string id1, id2;
    ASSERT_TRUE(queue.submit(queueJob("alpha"), &id1, &error)) << error;
    ASSERT_TRUE(queue.submit(queueJob("beta"), &id2, &error)) << error;
    EXPECT_EQ(id1, "0001-alpha");
    EXPECT_EQ(id2, "0002-beta");

    std::vector<JobEntry> jobs = queue.scan(&error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].id, id1); // sorted = submission order
    EXPECT_EQ(jobs[0].state, "queued");
    EXPECT_EQ(jobs[1].id, id2);

    ASSERT_TRUE(queue.setState(id1, "active", &error)) << error;
    ASSERT_TRUE(queue.setState(id2, "failed worker pool exhausted",
                               &error))
        << error;
    jobs = queue.scan(&error);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].state, "active");
    EXPECT_EQ(jobs[1].state, "failed");
    EXPECT_EQ(jobs[1].error, "worker pool exhausted");

    // A fresh JobQueue over the same dir sees identical state: the
    // queue is the filesystem, not process memory.
    JobQueue other;
    ASSERT_TRUE(other.open(dir, &error)) << error;
    std::vector<JobEntry> again = other.scan(&error);
    ASSERT_EQ(again.size(), 2u);
    EXPECT_EQ(again[0].state, "active");
    fs::remove_all(dir);
}

TEST(ServiceJobQueue, SpecRoundTripsThroughTheQueue)
{
    const std::string dir = scratchDir("svcq_spec");
    JobQueue queue;
    std::string error;
    ASSERT_TRUE(queue.open(dir, &error)) << error;

    JobSpec job = queueJob("spec_rt");
    job.batches = {1, 2};
    job.schedules = {"FSMoE"};
    std::string id;
    ASSERT_TRUE(queue.submit(job, &id, &error)) << error;

    JobSpec back;
    ASSERT_TRUE(queue.loadSpec(id, &back, &error)) << error;
    EXPECT_EQ(serializeJobSpec(back), serializeJobSpec(job));
    fs::remove_all(dir);
}

TEST(ServiceJobQueue, ClaimWithoutStateIsInvisibleDebris)
{
    // A submitter killed between claiming an id and committing the
    // state file leaves a claim with no state — scan() must skip it
    // and the id must stay burned (the next submit picks a new one).
    const std::string dir = scratchDir("svcq_debris");
    JobQueue queue;
    std::string error;
    ASSERT_TRUE(queue.open(dir, &error)) << error;

    std::string id;
    ASSERT_TRUE(queue.submit(queueJob("real"), &id, &error)) << error;
    // Simulate the dead submitter's debris.
    ASSERT_TRUE(fileio::atomicWriteFile(
        dir + "/jobs/0002-ghost.claim", "", &error))
        << error;

    std::vector<JobEntry> jobs = queue.scan(&error);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].id, id);

    std::string id3;
    ASSERT_TRUE(queue.submit(queueJob("next"), &id3, &error)) << error;
    EXPECT_EQ(id3, "0003-next");
    fs::remove_all(dir);
}

// ---- end-to-end runJob ---------------------------------------------

TEST(ServiceSweepServer, RunJobOutputIsByteIdenticalToInProcessSweep)
{
    // The determinism contract (docs/SERVICE.md): the service's
    // merged output for a grid must equal a plain in-process
    // evaluation of the same grid, byte for byte.
    JobSpec job = queueJob("e2e");
    job.batches = {1};
    job.schedules = {"FSMoE", "Tutel"};
    job.outPath = scratchPath("svc_e2e_out.json");
    const std::string journal = scratchPath("svc_e2e_journal.txt");

    ServerOptions opts;
    opts.numWorkers = 2;
    opts.shardsPerWorker = 2;
    SweepServer server(opts);
    JobOutcome outcome;
    ASSERT_TRUE(server.runJob(job, journal, /*resume=*/false, &outcome))
        << outcome.error;
    EXPECT_TRUE(outcome.ok);
    EXPECT_FALSE(outcome.interrupted);
    EXPECT_EQ(outcome.quarantined, 0u);

    const auto grid = buildJobGrid(job);
    ASSERT_EQ(outcome.scenarios, grid.size());
    EXPECT_EQ(outcome.okResults, grid.size());

    std::vector<runtime::SweepResult> expect;
    for (const auto &s : grid)
        expect.push_back(runtime::evaluateScenario(s, /*attempt=*/1));
    const std::string want = scratchPath("svc_e2e_want.json");
    ASSERT_TRUE(runtime::writeResultsJson(want, expect));

    EXPECT_EQ(readAll(job.outPath), readAll(want));
    std::remove(job.outPath.c_str());
    std::remove(journal.c_str());
    std::remove(want.c_str());
}

TEST(ServiceSweepServer, RunJobResumesFromAPartialJournal)
{
    // Pre-journal a prefix of the grid, then let runJob resume: the
    // resumed count must be visible in the outcome and the output
    // still byte-identical to the uninterrupted run.
    JobSpec job = queueJob("resume");
    job.batches = {1};
    job.schedules = {"FSMoE"};
    job.outPath = scratchPath("svc_resume_out.json");
    const std::string journal = scratchPath("svc_resume_journal.txt");

    const auto grid = buildJobGrid(job);
    ASSERT_GE(grid.size(), 2u);
    {
        runtime::Journal j;
        std::string error;
        ASSERT_TRUE(j.open(journal, grid, /*resume=*/false, &error))
            << error;
        ASSERT_TRUE(j.append(0, runtime::evaluateScenario(grid[0], 1),
                             &error))
            << error;
    }

    ServerOptions opts;
    opts.numWorkers = 2;
    SweepServer server(opts);
    JobOutcome outcome;
    ASSERT_TRUE(server.runJob(job, journal, /*resume=*/true, &outcome))
        << outcome.error;
    EXPECT_EQ(outcome.resumed, 1u);
    EXPECT_EQ(outcome.okResults, grid.size());

    std::vector<runtime::SweepResult> expect;
    for (const auto &s : grid)
        expect.push_back(runtime::evaluateScenario(s, /*attempt=*/1));
    const std::string want = scratchPath("svc_resume_want.json");
    ASSERT_TRUE(runtime::writeResultsJson(want, expect));
    EXPECT_EQ(readAll(job.outPath), readAll(want));
    std::remove(job.outPath.c_str());
    std::remove(journal.c_str());
    std::remove(want.c_str());
}

} // namespace
} // namespace fsmoe::service
