/**
 * @file
 * Tests for the debug-mode runtime audits (base/audit.h): fingerprint
 * determinism, cache-key collision detection, TaskGraph structural
 * audits (failure paths via the raw-span entry point, since the
 * builder API cannot produce an invalid graph), and the simulator's
 * heap-pop audit counter. Runtime-audit expectations are gated on
 * audit::compiledIn() so the file passes in Release builds too.
 */
#include "base/audit.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/stats.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe {
namespace {

using sim::Link;
using sim::OpType;
using sim::Task;
using sim::TaskGraph;
using sim::TaskId;

TEST(Fingerprint, IsDeterministicAndOrderSensitive)
{
    auto digest = [](double a, double b) {
        return audit::Fingerprint().mix(a).mix(b).digest();
    };
    EXPECT_EQ(digest(1.5, 2.5), digest(1.5, 2.5));
    EXPECT_NE(digest(1.5, 2.5), digest(2.5, 1.5));
    EXPECT_NE(audit::Fingerprint().mix(std::string("ab")).digest(),
              audit::Fingerprint().mix(std::string("ba")).digest());
}

TEST(Fingerprint, DistinguishesDoubleBitPatterns)
{
    // +0.0 and -0.0 compare equal but are different bytes; the
    // byte-identity contract cares about bytes.
    EXPECT_NE(audit::Fingerprint().mix(0.0).digest(),
              audit::Fingerprint().mix(-0.0).digest());
    // Empty string vs nothing mixed must differ (length is mixed).
    EXPECT_NE(audit::Fingerprint().mix(std::string()).digest(),
              audit::Fingerprint().digest());
}

TEST(CacheKeyAudit, AcceptsConsistentRecomputes)
{
    audit::clearCacheKeyTable();
    audit::checkCacheKey("test.domain", "key-a", 111);
    audit::checkCacheKey("test.domain", "key-a", 111); // same: fine
    audit::checkCacheKey("test.domain", "key-b", 222);
    EXPECT_EQ(audit::cacheKeyTableSize(), 2u);
    // Same key under another domain is a distinct slot, not a clash.
    audit::checkCacheKey("other.domain", "key-a", 333);
    EXPECT_EQ(audit::cacheKeyTableSize(), 3u);
    audit::clearCacheKeyTable();
    EXPECT_EQ(audit::cacheKeyTableSize(), 0u);
}

TEST(CacheKeyAuditDeathTest, PanicsOnPayloadMismatch)
{
    audit::clearCacheKeyTable();
    audit::checkCacheKey("test.domain", "clash", 1);
    EXPECT_DEATH(audit::checkCacheKey("test.domain", "clash", 2),
                 "cache-key collision");
    audit::clearCacheKeyTable();
}

TEST(CacheKeyAudit, BumpsRegistryCounters)
{
    stats::Counter &checks = stats::counter("audit.cacheKey.checks");
    stats::Counter &recorded = stats::counter("audit.cacheKey.recorded");
    audit::clearCacheKeyTable();
    const uint64_t checks0 = checks.value();
    const uint64_t recorded0 = recorded.value();
    audit::checkCacheKey("test.counters", "k", 7);
    audit::checkCacheKey("test.counters", "k", 7);
    EXPECT_EQ(checks.value(), checks0 + 2);
    EXPECT_EQ(recorded.value(), recorded0 + 1);
    audit::clearCacheKeyTable();
}

/** A small valid two-stream graph. */
TaskGraph
makeValidGraph()
{
    TaskGraph g;
    TaskId a = g.addTask("a", OpType::Routing, Link::Compute, 0, 1.0);
    TaskId b = g.addTask("b", OpType::AlltoAll, Link::InterNode, 1, 2.0,
                         {a});
    g.addTask("c", OpType::Experts, Link::Compute, 0, 3.0, {a, b});
    return g;
}

TEST(TaskGraphAudit, AcceptsValidGraphAndCounts)
{
    stats::Counter &verified = stats::counter("audit.taskGraph.verified");
    const uint64_t before = verified.value();
    TaskGraph g = makeValidGraph();
    sim::auditTaskGraph(g); // must not panic
    EXPECT_EQ(verified.value(), before + 1);
}

TEST(TaskGraphAuditDeathTest, CatchesCorruptedStructures)
{
    TaskGraph g = makeValidGraph();
    // Copies of the real storage, corrupted one field at a time.
    std::vector<Task> tasks(g.tasks());
    std::vector<TaskId> pool(g.depPool());
    const int streams = g.numStreams();

    auto audit = [&](const std::vector<Task> &ts,
                     const std::vector<TaskId> &dp, int ns) {
        sim::auditTasksAndDeps(ts.data(), ts.size(), dp.data(), dp.size(),
                               ns);
    };

    {
        auto t = tasks;
        t[1].id = 7; // ids must stay dense and in order
        EXPECT_DEATH(audit(t, pool, streams), "ids must be dense");
    }
    {
        auto t = tasks;
        t[2].depCount = 100; // CSR span runs past the pool
        EXPECT_DEATH(audit(t, pool, streams), "exceeds pool size");
    }
    {
        auto p = pool;
        // Make task 1 depend on task 2: a forward edge, i.e. a cycle
        // against issue order.
        p[tasks[1].depBegin] = 2;
        EXPECT_DEATH(audit(tasks, p, streams), "not an earlier task");
    }
    {
        auto p = pool;
        p[tasks[1].depBegin] = -3; // dangling negative id
        EXPECT_DEATH(audit(tasks, p, streams), "not an earlier task");
    }
    {
        auto t = tasks;
        t[0].stream = streams + 5; // stream index out of range
        EXPECT_DEATH(audit(t, pool, streams), "outside");
    }
    {
        auto t = tasks;
        t[0].duration = -1.0; // negative service time
        EXPECT_DEATH(audit(t, pool, streams), "negative duration");
    }
}

TEST(SimulatorAudit, HeapPopChecksCountWhenCompiledIn)
{
    stats::Counter &pops = stats::counter("audit.heap.popChecks");
    const uint64_t before = pops.value();
    TaskGraph g = makeValidGraph();
    sim::SimResult r = sim::Simulator{}.run(g);
    EXPECT_GT(r.makespan, 0.0);
    if (audit::compiledIn() && audit::enabled()) {
        // Every task is popped from a ready heap exactly once.
        EXPECT_EQ(pops.value(), before + g.size());
    } else {
        EXPECT_EQ(pops.value(), before);
    }
}

TEST(SimulatorAudit, RuntimeSwitchDisablesChecks)
{
    if (!audit::compiledIn())
        GTEST_SKIP() << "audits compiled out in this build";
    stats::Counter &pops = stats::counter("audit.heap.popChecks");
    audit::setEnabled(false);
    const uint64_t before = pops.value();
    sim::Simulator{}.run(makeValidGraph());
    EXPECT_EQ(pops.value(), before);
    audit::setEnabled(true);
    sim::Simulator{}.run(makeValidGraph());
    EXPECT_EQ(pops.value(), before + makeValidGraph().size());
}

} // namespace
} // namespace fsmoe
