/**
 * @file
 * fsmoe_sweepd — the resilient sweep service daemon.
 *
 * Watches a filesystem job queue (service/job_queue.h) for sweep jobs
 * submitted by fsmoe_submit, runs each over a pool of heartbeat-
 * supervised worker processes (service/sweep_server.h), and writes
 * every job's merged result file. The daemon heals worker deaths,
 * stalls, and disconnects by reassigning shards, and survives its own
 * death: every streamed result is journalled (fsync'd) before it is
 * acknowledged, so a restarted daemon resumes in-flight jobs and the
 * final output is byte-identical to an uninterrupted run (see
 * docs/SERVICE.md for the full protocol and determinism contract).
 *
 * Options:
 *
 *   --queue DIR            job queue directory (required; created if
 *                          missing — same DIR as fsmoe_submit)
 *   --once                 drain the queue, then exit instead of
 *                          polling for new jobs (CI mode)
 *   --workers N            worker processes per job (default 3)
 *   --shards-per-worker N  shard granularity (default 4): pending
 *                          scenarios split into N*workers slices
 *   --heartbeat-ms N       idle-worker heartbeat interval (default 50)
 *   --heartbeat-timeout-ms N
 *                          watchdog: a busy worker silent this long is
 *                          killed and its shard reassigned (default
 *                          2000; measured on the monotonic clock)
 *   --max-shard-attempts N assignment attempts before a shard's
 *                          remainder is quarantined (default 3)
 *   --inject SPEC          deterministic fault injection
 *                          (runtime/fault.h), e.g.
 *                          "seed=7,worker-kill=0.2,kill-after=30";
 *                          kill-after kills the *daemon* after that
 *                          many journal appends
 *   --profile              print the service.* counter inventory on
 *                          exit (docs/OBSERVABILITY.md)
 *
 * Signals: SIGINT/SIGTERM drain gracefully — workers finish their
 * current scenario, streamed results are journalled, the in-flight
 * job stays "active" for the next daemon, and the exit code is
 * 128+signal. A second signal kills immediately (the journal still
 * protects every acknowledged result).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/interrupt.h"
#include "base/stats.h"
#include "runtime/fault.h"
#include "service/job_queue.h"
#include "service/sweep_server.h"

namespace {

using namespace fsmoe;

/**
 * The service.* counter inventory (docs/OBSERVABILITY.md): one line
 * per nonzero counter, printed by --profile at exit.
 */
void
printServiceCounters()
{
    static const char *const kNames[] = {
        "service.jobs.queued",
        "service.jobs.recovered",
        "service.jobs.done",
        "service.jobs.failed",
        "service.workers.spawned",
        "service.workers.restarted",
        "service.heartbeats.received",
        "service.heartbeats.missed",
        "service.shards.assigned",
        "service.shards.reassigned",
        "service.shards.quarantined",
        "service.results.streamed",
        "service.results.resumed",
        "service.scenario.evalErrors",
    };
    std::printf("service counters (this daemon):\n");
    for (const char *name : kNames) {
        const uint64_t v = stats::counter(name).value();
        if (v > 0)
            std::printf("  %-34s %llu\n", name,
                        static_cast<unsigned long long>(v));
    }
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --queue DIR [--once] [--workers N]\n"
                 "          [--shards-per-worker N] [--heartbeat-ms N]\n"
                 "          [--heartbeat-timeout-ms N]\n"
                 "          [--max-shard-attempts N] [--inject SPEC]\n"
                 "          [--profile]\n",
                 argv0);
    return 2;
}

int
positiveIntArg(const char *flag, const char *value)
{
    const int v = std::atoi(value);
    if (v < 1) {
        std::fprintf(stderr, "bad %s '%s'\n", flag, value);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *queue_dir = nullptr;
    const char *inject_spec = nullptr;
    bool once = false;
    bool profile = false;
    service::ServerOptions opts;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
            queue_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--once") == 0) {
            once = true;
        } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
            opts.numWorkers = positiveIntArg("--workers", argv[++i]);
        } else if (std::strcmp(argv[i], "--shards-per-worker") == 0 &&
                   i + 1 < argc) {
            opts.shardsPerWorker =
                positiveIntArg("--shards-per-worker", argv[++i]);
        } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0 &&
                   i + 1 < argc) {
            opts.heartbeatMs = positiveIntArg("--heartbeat-ms", argv[++i]);
        } else if (std::strcmp(argv[i], "--heartbeat-timeout-ms") == 0 &&
                   i + 1 < argc) {
            opts.heartbeatTimeoutMs =
                positiveIntArg("--heartbeat-timeout-ms", argv[++i]);
        } else if (std::strcmp(argv[i], "--max-shard-attempts") == 0 &&
                   i + 1 < argc) {
            opts.maxShardAttempts =
                positiveIntArg("--max-shard-attempts", argv[++i]);
        } else if (std::strcmp(argv[i], "--inject") == 0 && i + 1 < argc) {
            inject_spec = argv[++i];
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            profile = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (queue_dir == nullptr) {
        std::fprintf(stderr, "%s: --queue DIR is required\n", argv[0]);
        return usage(argv[0]);
    }
    if (inject_spec != nullptr) {
        runtime::fault::FaultConfig cfg;
        std::string error;
        if (!runtime::fault::parseSpec(inject_spec, &cfg, &error)) {
            std::fprintf(stderr, "bad --inject: %s\n", error.c_str());
            return 2;
        }
        runtime::fault::configure(cfg);
    }

    service::JobQueue queue;
    std::string error;
    if (!queue.open(queue_dir, &error)) {
        std::fprintf(stderr, "fsmoe_sweepd: %s\n", error.c_str());
        return 2;
    }

    interrupt::installStopHandlers();
    std::printf("fsmoe_sweepd: serving queue %s (%d workers%s)\n",
                queue_dir, opts.numWorkers, once ? ", once" : "");
    std::fflush(stdout);

    service::SweepServer server(opts);
    const int code = server.serve(queue, once);
    if (profile)
        printServiceCounters();
    return code;
}
