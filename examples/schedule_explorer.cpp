/**
 * @file
 * Visual tour of the schedules: for one configured MoE layer on
 * Testbed B, print the ASCII Gantt chart of every schedule's task
 * graph (the executable analogue of the paper's Fig. 3) plus the
 * per-operation busy-time breakdown and the chosen pipeline degrees.
 *
 * Glyph key in the charts: a=attention, r=routing, o=order, d=dispatch
 * AlltoAll, g=ESP-AllGather, e=experts, s=ESP-ReduceScatter, c=combine
 * AlltoAll, i=inverse order, G=Gradient-AllReduce.
 */
#include <cstdio>

#include "core/pipeline_solver.h"
#include "core/schedules/schedule.h"
#include "model/models.h"
#include "sim/simulator.h"

int
main()
{
    using namespace fsmoe;
    sim::ClusterSpec cluster = sim::testbedB();
    core::LayerShape shape;
    shape.batch = 2;
    shape.seqLen = 512;
    shape.embed = 2048;
    shape.hidden = 6144;
    shape.numExperts = cluster.numNodes;

    core::ParallelConfig par = model::paperParallelism(cluster);
    core::ModelCost cost;
    cost.models = core::PerfModelSet::fromCluster(cluster);
    cost.layers.push_back(core::makeLayerCost(cost.models, shape, par));

    std::printf("one configured MoE layer (%s) on %s\n",
                core::describe(shape).c_str(), cluster.name.c_str());

    core::Workload w = cost.layers[0].workload;
    auto fwd = core::solvePipeline(
        core::makeProblem(cost.models, w, core::Phase::Forward));
    auto bwd = core::solvePipeline(core::makeProblem(
        cost.models, w, core::Phase::Backward,
        cost.models.allreduce.predict(w.gradBytes)));
    std::printf("Algorithm 1 degrees: forward r=%d, backward r=%d\n\n",
                fwd.r, bwd.r);

    for (core::ScheduleKind kind : core::allScheduleKinds()) {
        auto sched = core::Schedule::create(kind);
        sim::TaskGraph graph;
        sim::SimResult res = sched->simulate(cost, &graph);
        std::printf("=== %-16s  iteration %8.2f ms ===\n", sched->name(),
                    res.makespan);
        std::printf("%s", sim::Simulator::gantt(graph, res, 96).c_str());
        std::printf("busy ms: a2a %.2f | gar %.2f | ag %.2f | rs %.2f | "
                    "experts %.2f | attention %.2f\n\n",
                    res.timeOf(sim::OpType::AlltoAll),
                    res.timeOf(sim::OpType::GradAllReduce),
                    res.timeOf(sim::OpType::AllGather),
                    res.timeOf(sim::OpType::ReduceScatter),
                    res.timeOf(sim::OpType::Experts),
                    res.timeOf(sim::OpType::Attention));
    }
    return 0;
}
