/**
 * @file
 * Tour of the open schedule-plugin API.
 *
 * 1. Registers a custom, out-of-tree schedule ("Eager") with the
 *    process-wide core::ScheduleRegistry — from this file, without
 *    touching library code — declaring a tunable `degree` parameter.
 *    Because this translation unit is linked directly into the
 *    executable, a file-scope ScheduleRegistrar self-registers it at
 *    static-initialization time.
 * 2. Prints the ASCII Gantt chart of every registered schedule's task
 *    graph for one configured MoE layer on Testbed B (the executable
 *    analogue of the paper's Fig. 3) — the custom schedule shows up
 *    exactly like the built-ins.
 * 3. Sweeps a parameterized schedule axis — the custom schedule and
 *    Tutel at several pipeline degrees against full FSMoE — through
 *    the scenario-sweep engine, demonstrating specs like
 *    "tutel?degree=4" as first-class sweep axes.
 *
 * Glyph key in the charts: a=attention, r=routing, o=order, d=dispatch
 * AlltoAll, g=ESP-AllGather, e=experts, s=ESP-ReduceScatter, c=combine
 * AlltoAll, i=inverse order, G=Gradient-AllReduce.
 */
#include <cstdio>
#include <memory>

#include "core/pipeline_solver.h"
#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"
#include "model/models.h"
#include "runtime/scenario.h"
#include "runtime/sweep_engine.h"
#include "sim/simulator.h"

namespace {

using namespace fsmoe;

/**
 * The custom plugin: a deliberately simple schedule the library does
 * not ship — a fixed-degree pipeline with intra-node collectives on
 * their own channel (like FSMoE) but no degree search, no gradient
 * partitioning, and every layer's Gradient-AllReduce exposed at the
 * end (like DS-MoE). Useful as a "how much does the solver actually
 * buy" reference point.
 */
class EagerSchedule : public core::Schedule
{
  public:
    explicit EagerSchedule(int degree) : degree_(degree) {}

    sim::TaskGraph
    build(const core::ModelCost &model) const override
    {
        using namespace core::detail;
        sim::TaskGraph graph;
        PipelineBuildOptions opts; // separate intra/inter channels
        sim::TaskId dep = -1;
        for (const core::LayerCost &lc : model.layers) {
            dep = appendAttention(graph, lc, core::Phase::Forward, opts,
                                  dep);
            dep = appendMoePhase(graph, lc, model.models,
                                 core::Phase::Forward, degree_, opts, dep);
        }
        for (auto it = model.layers.rbegin(); it != model.layers.rend();
             ++it) {
            dep = appendMoePhase(graph, *it, model.models,
                                 core::Phase::Backward, degree_, opts, dep);
            dep = appendAttention(graph, *it, core::Phase::Backward, opts,
                                  dep);
        }
        for (const core::LayerCost &lc : model.layers) {
            double t = model.models.allreduce.predict(lc.workload.gradBytes);
            dep = graph.addTask("gar", sim::OpType::GradAllReduce,
                                sim::Link::InterNode, kGradAllReduce, t,
                                {dep});
        }
        return graph;
    }

  private:
    int degree_;
};

core::ScheduleInfo
eagerInfo()
{
    core::ScheduleInfo info;
    info.name = "Eager";
    info.aliases = {"naive-overlap"};
    info.description = "example out-of-tree plugin: fixed-degree "
                       "pipeline, separate channels, exposed gradients";
    info.params = {{"degree", core::ScheduleParamType::Int, "4",
                    "fixed pipeline degree r", 1.0}};
    return info;
}

/// Self-registration at static-init time: this object file is linked
/// directly into the executable, so the registrar always runs.
const core::ScheduleRegistrar eager_registrar(
    eagerInfo(), [](const core::ScheduleParams &p) {
        return std::make_unique<EagerSchedule>(
            static_cast<int>(p.getInt("degree", 4)));
    });

} // namespace

int
main()
{
    sim::ClusterSpec cluster = sim::testbedB();
    core::LayerShape shape;
    shape.batch = 2;
    shape.seqLen = 512;
    shape.embed = 2048;
    shape.hidden = 6144;
    shape.numExperts = cluster.numNodes;

    core::ParallelConfig par = model::paperParallelism(cluster);
    core::ModelCost cost;
    cost.models = core::PerfModelSet::fromCluster(cluster);
    cost.layers.push_back(core::makeLayerCost(cost.models, shape, par));

    std::printf("one configured MoE layer (%s) on %s\n",
                core::describe(shape).c_str(), cluster.name.c_str());

    core::Workload w = cost.layers[0].workload;
    auto fwd = core::solvePipeline(
        core::makeProblem(cost.models, w, core::Phase::Forward));
    auto bwd = core::solvePipeline(core::makeProblem(
        cost.models, w, core::Phase::Backward,
        cost.models.allreduce.predict(w.gradBytes)));
    std::printf("Algorithm 1 degrees: forward r=%d, backward r=%d\n\n",
                fwd.r, bwd.r);

    // Every registered schedule — six built-ins plus the custom
    // "Eager" plugin this file registered.
    for (const std::string &name :
         core::ScheduleRegistry::instance().names()) {
        auto sched = core::Schedule::create(name);
        sim::TaskGraph graph;
        sim::SimResult res = sched->simulate(cost, &graph);
        std::printf("=== %-16s  iteration %8.2f ms ===\n",
                    sched->name().c_str(), res.makespan);
        std::printf("%s", sim::Simulator::gantt(graph, res, 96).c_str());
        std::printf("busy ms: a2a %.2f | gar %.2f | ag %.2f | rs %.2f | "
                    "experts %.2f | attention %.2f\n\n",
                    res.timeOf(sim::OpType::AlltoAll),
                    res.timeOf(sim::OpType::GradAllReduce),
                    res.timeOf(sim::OpType::AllGather),
                    res.timeOf(sim::OpType::ReduceScatter),
                    res.timeOf(sim::OpType::Experts),
                    res.timeOf(sim::OpType::Attention));
    }

    // Parameterized variants as a sweep axis: the custom plugin and
    // Tutel at pinned degrees against full FSMoE, on the sweep engine.
    auto grid = runtime::ScenarioGrid()
                    .models({"gpt2xl-moe"})
                    .clusters({"testbedB"})
                    .seqLens({256})
                    .numLayers({2})
                    .schedules({"fsmoe", "tutel", "tutel?degree=2",
                                "tutel?degree=4", "tutel?degree=8",
                                "eager?degree=2", "eager?degree=4",
                                "eager?degree=8"})
                    .build();
    runtime::SweepEngine engine({/*numThreads=*/2});
    auto results = engine.run(grid);
    std::printf("=== schedule-spec sweep: gpt2xl-moe (2 layers) on %s "
                "===\n",
                cluster.name.c_str());
    std::printf("  %-20s %12s\n", "spec", "iter [ms]");
    for (const auto &r : results)
        std::printf("  %-20s %12.2f\n", r.scenario.schedule.c_str(),
                    r.makespanMs);
    return 0;
}
