/**
 * @file
 * fsmoe_sweep — the parallel scenario-sweep driver.
 *
 * Evaluates a (model x cluster x batch) grid across a schedule-spec
 * axis on the sweep runtime's thread pool and prints, per
 * configuration, a makespan-ranked table of the schedules. The demo
 * grid covers every registered schedule plus a parameterized
 * tutel?degree={2,4,8} axis; --schedules replaces that axis with
 * arbitrary specs. Results can be persisted (JSON/CSV), diffed
 * against a stored baseline with a tolerance gate, and the grid can
 * be sharded across processes. Options:
 *
 *   --threads N      worker threads (default: hardware concurrency)
 *   --batches LIST   comma-separated per-GPU batch sizes (default: 1,2)
 *   --schedules LIST comma-separated schedule specs (names, aliases,
 *                    or parameterized variants like tutel?degree=4);
 *                    replaces the demo grid's schedule axis
 *   --list-schedules print every registered schedule (canonical name,
 *                    aliases, declared params, description) and exit
 *   --trace FILE     export the best-ranked scenario of the grid as
 *                    Chrome trace JSON (open in chrome://tracing)
 *   --out-json FILE  persist the sweep's results as JSON
 *   --out-csv FILE   persist the sweep's results as CSV
 *   --diff BASELINE  compare this sweep against a stored result file
 *                    (.json or .csv); exits 1 if any scenario's
 *                    makespan drifts beyond the tolerance or the
 *                    scenario sets differ
 *   --tolerance PCT  relative drift allowed by --diff, in percent
 *                    (default 0 = bit-exact)
 *   --shard K/N      run only the K-th of N contiguous grid slices;
 *                    persisted shard files merge (fsmoe_diff --merge)
 *                    into a byte-identical unsharded result
 *   --no-sim-cache   disable the (costKey, schedule) SimResult cache
 *   --profile        print a per-stage wall-time breakdown after the
 *                    sweep (cost derivation, graph build, solver,
 *                    simulate, caches) plus registry-backed cache hit
 *                    ratios and per-scenario simulate latency; see
 *                    docs/PERFORMANCE.md
 *   --explain WHICH  per-run analytics for one scenario of the grid:
 *                    link utilization and the critical path with the
 *                    reason each hop could start no earlier. WHICH is
 *                    a scenario label (as printed by --shard /
 *                    persisted keys) or "best" for the grid's fastest
 *   --link-util      include per-link busy-time columns in --out-json
 *                    / --out-csv rows (link_busy_ms object / extra
 *                    CSV columns; readers auto-detect either shape)
 *   --metrics-json F dump the process-wide stats registry snapshot
 *                    (base/stats) to F after the sweep
 *   --self-trace F   record the sweep's own execution (scenario and
 *                    stage spans on each worker thread) as Chrome
 *                    trace JSON into F; see docs/OBSERVABILITY.md
 *   --selftest       determinism + persistence self-checks: serial vs
 *                    4-thread bit-identity, JSON/CSV round-trip,
 *                    self-diff, shard partition coverage, and the
 *                    fault-injection/retry/quarantine contract; exits
 *                    non-zero on any mismatch
 *
 * Fault tolerance (docs/ROBUSTNESS.md) — any of these flags (or the
 * FSMOE_FAULT environment variable) switches to the robust runner,
 * which retries failing scenarios and quarantines persistent failures
 * instead of aborting; healthy results stay byte-identical to the
 * plain engine's:
 *
 *   --journal FILE   append each finished scenario to a checksummed
 *                    journal (fsync'd), so a killed sweep can resume
 *   --resume         with --journal: recover the journal, re-simulate
 *                    only what is missing; the final --out-json/--out-csv
 *                    is byte-identical to an uninterrupted run
 *   --isolate        fork each scenario attempt as a subprocess with a
 *                    watchdog, so a crash or hang loses only that
 *                    attempt (supervisor runs serially)
 *   --timeout-ms N   watchdog budget per isolated attempt (default
 *                    30000)
 *   --max-attempts N attempts before a scenario is quarantined
 *                    (default 3)
 *   --inject SPEC    deterministic fault injection, e.g.
 *                    "seed=7,eval=0.3,crash=0.1,timeout=0.05,torn=0.2,
 *                    kill-after=12" (see runtime/fault.h)
 *   --stop-after N   act as if SIGTERM arrived after N finished
 *                    scenarios — the deterministic, scheduler-
 *                    independent way to exercise the graceful-stop
 *                    path below
 *
 * Graceful stop: under the fault-tolerant runner SIGINT/SIGTERM do
 * not kill the sweep mid-write — the journal record in flight is
 * flushed, no new scenario starts, a resume hint is printed, and the
 * process exits with the conventional 128+signal code (130/143). No
 * partial --out-json/--out-csv is written; resume from the journal
 * to converge to the uninterrupted run's bytes. A second signal
 * falls through to the default disposition and kills immediately.
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "base/audit.h"
#include "base/fileio.h"
#include "base/interrupt.h"
#include "base/stats.h"
#include "core/schedules/schedule_registry.h"
#include "core/solver_cache.h"
#include "runtime/fault.h"
#include "runtime/journal.h"
#include "runtime/result_store.h"
#include "runtime/scenario.h"
#include "runtime/self_trace.h"
#include "runtime/sweep_engine.h"
#include "runtime/trace_export.h"
#include "runtime/worker.h"
#include "sim/run_report.h"

namespace {

using namespace fsmoe;

std::vector<int64_t>
parseBatches(const char *arg)
{
    std::vector<int64_t> out;
    for (const char *p = arg; *p != '\0';) {
        char *end = nullptr;
        long v = std::strtol(p, &end, 10);
        if (end == p || v <= 0) {
            std::fprintf(stderr, "bad --batches list '%s'\n", arg);
            std::exit(2);
        }
        out.push_back(v);
        p = *end == ',' ? end + 1 : end;
    }
    if (out.empty()) {
        std::fprintf(stderr, "--batches needs at least one value\n");
        std::exit(2);
    }
    return out;
}

/**
 * Split a comma-separated list of schedule specs; validity is checked
 * by ScenarioGrid::build() (fatal with the list of known schedules).
 */
std::vector<std::string>
parseSchedules(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    if (out.empty()) {
        std::fprintf(stderr, "--schedules needs at least one spec\n");
        std::exit(2);
    }
    return out;
}

/** --list-schedules: the registry, formatted for discovery. */
void
listSchedules()
{
    for (const core::ScheduleInfo &info :
         core::ScheduleRegistry::instance().list()) {
        std::printf("%s", info.name.c_str());
        if (!info.aliases.empty()) {
            std::printf("  (aliases:");
            for (const std::string &alias : info.aliases)
                std::printf(" %s", alias.c_str());
            std::printf(")");
        }
        std::printf("\n    %s\n", info.description.c_str());
        for (const core::ScheduleParamInfo &p : info.params) {
            std::printf("    %s=%s (%s)  %s\n", p.key.c_str(),
                        p.defaultValue.c_str(),
                        core::scheduleParamTypeName(p.type),
                        p.description.c_str());
        }
    }
}

void
printRanked(const std::vector<runtime::SweepResult> &records)
{
    // Group scenarios by configuration (= costKey) in first-seen order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<const runtime::SweepResult *>> groups;
    for (const auto &r : records) {
        const std::string key = r.toScenario().costKey();
        if (groups.find(key) == groups.end())
            order.push_back(key);
        groups[key].push_back(&r);
    }

    for (const std::string &key : order) {
        auto ranked = groups[key];
        // Healthy rows rank by makespan; quarantined rows sink to the
        // bottom (their makespan is a meaningless zero).
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto *x, const auto *y) {
                      const bool xok = x->status == runtime::ResultStatus::Ok;
                      const bool yok = y->status == runtime::ResultStatus::Ok;
                      if (xok != yok)
                          return xok;
                      return x->makespanMs < y->makespanMs;
                  });
        const auto &r0 = *ranked.front();
        std::printf("\n%s on %s, B=%lld, L=%lld\n", r0.model.c_str(),
                    r0.cluster.c_str(), static_cast<long long>(r0.batch),
                    static_cast<long long>(r0.seqLen));
        std::printf("  %-4s %-16s %12s %9s\n", "rank", "schedule",
                    "iter [ms]", "vs best");
        for (size_t i = 0; i < ranked.size(); ++i) {
            if (ranked[i]->status != runtime::ResultStatus::Ok) {
                std::printf("  %-4s %-16s %12s  (%s after %d attempts: "
                            "%s)\n",
                            "-", ranked[i]->schedule.c_str(), "-",
                            runtime::resultStatusName(ranked[i]->status),
                            ranked[i]->attempts, ranked[i]->error.c_str());
                continue;
            }
            std::printf("  %-4zu %-16s %12.2f %8.2fx\n", i + 1,
                        ranked[i]->schedule.c_str(), ranked[i]->makespanMs,
                        ranked[i]->makespanMs / ranked.front()->makespanMs);
        }
    }
}

/**
 * --profile: where did the sweep's time go? Stage times are summed
 * across workers (they can exceed wall time on multiple threads) and
 * count only cache-miss work. The solver line re-slices part of the
 * graph-build line: Algorithm-1 and DE-partition solves happen inside
 * Schedule::build, so cold-solve time is included in "graph build"
 * and broken out separately from the process-wide solver cache.
 */
void
printProfile(const runtime::SweepStats &stats)
{
    const core::SolverCacheStats solver = core::solverCacheStats();
    std::printf("\nper-stage profile (summed across workers):\n");
    std::printf("  %-28s %10.1f ms  (%zu cold, %zu cached)\n",
                "cost derivation", stats.costDeriveMs,
                stats.costCacheMisses, stats.costCacheHits);
    // No cold/cached annotation here: builds are counted by the sim
    // cache only when it is enabled (keepGraphs and --no-sim-cache
    // build every scenario without moving those counters, which the
    // main stats line already reports).
    std::printf("  %-28s %10.1f ms\n", "graph build + in-build sims",
                stats.graphBuildMs);
    std::printf("  %-28s %10.1f ms  (%llu cold, %llu cached; "
                "process-wide)\n",
                "  of which solver solves", solver.solveMs,
                static_cast<unsigned long long>(solver.pipelineMisses +
                                                solver.partitionMisses),
                static_cast<unsigned long long>(solver.pipelineHits +
                                                solver.partitionHits));
    std::printf("  %-28s %10.1f ms\n", "simulate (final graphs)",
                stats.simulateMs);
    std::printf("  %-28s %10.1f ms\n", "sweep wall time",
                stats.lastSweepWallMs);

    // Registry-backed view: ratios and per-scenario latency come from
    // the process-wide stats registry, so repeated sweeps in one
    // process accumulate (unlike the per-engine stats above).
    const auto pct = [](uint64_t hits, uint64_t misses) {
        const uint64_t total = hits + misses;
        return total > 0 ? 100.0 * static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
    };
    const uint64_t cost_h = stats::counter("sweep.costCache.hits").value();
    const uint64_t cost_m = stats::counter("sweep.costCache.misses").value();
    const uint64_t sim_h = stats::counter("sweep.simCache.hits").value();
    const uint64_t sim_m = stats::counter("sweep.simCache.misses").value();
    const uint64_t sol_h = stats::counter("solver.pipeline.hits").value() +
                           stats::counter("solver.partition.hits").value();
    const uint64_t sol_m =
        stats::counter("solver.pipeline.misses").value() +
        stats::counter("solver.partition.misses").value();
    std::printf("cache hit ratios (process-wide):\n");
    std::printf("  %-28s %5.1f%%  (%llu of %llu)\n", "cost cache",
                pct(cost_h, cost_m),
                static_cast<unsigned long long>(cost_h),
                static_cast<unsigned long long>(cost_h + cost_m));
    std::printf("  %-28s %5.1f%%  (%llu of %llu)\n", "sim cache",
                pct(sim_h, sim_m), static_cast<unsigned long long>(sim_h),
                static_cast<unsigned long long>(sim_h + sim_m));
    std::printf("  %-28s %5.1f%%  (%llu of %llu)\n", "solver caches",
                pct(sol_h, sol_m), static_cast<unsigned long long>(sol_h),
                static_cast<unsigned long long>(sol_h + sol_m));
    const stats::Histogram &sim_ms = stats::histogram("sweep.simulate.ms");
    if (sim_ms.count() > 0)
        std::printf("per-scenario simulate: mean %.3f ms, max %.3f ms "
                    "(%llu cold simulations)\n",
                    sim_ms.mean(), sim_ms.maxValue(),
                    static_cast<unsigned long long>(sim_ms.count()));
}

/**
 * The robust.* counter inventory (docs/OBSERVABILITY.md): printed by
 * --profile and --selftest whenever the fault-tolerant runner did any
 * work this process.
 */
void
printRobustCounters()
{
    static const char *const kNames[] = {
        "robust.scenario.ok",
        "robust.scenario.resumed",
        "robust.scenario.failedAttempts",
        "robust.scenario.quarantined",
        "robust.retry.count",
        "robust.worker.forks",
        "robust.worker.crashes",
        "robust.worker.timeouts",
        "robust.journal.appends",
        "robust.journal.recovered",
        "robust.journal.tornRecords",
        "robust.fault.injected.eval",
        "robust.fault.injected.crash",
        "robust.fault.injected.timeout",
        "robust.fault.injected.torn",
        "robust.fault.injected.killAfter",
    };
    bool any = false;
    for (const char *name : kNames)
        any = any || stats::counter(name).value() > 0;
    if (!any)
        return;
    std::printf("robustness counters (process-wide):\n");
    for (const char *name : kNames) {
        const uint64_t v = stats::counter(name).value();
        if (v > 0)
            std::printf("  %-34s %llu\n", name,
                        static_cast<unsigned long long>(v));
    }
}

/** memcmp-level equality of two sweeps' timing results. */
bool
identicalResults(const std::vector<runtime::ScenarioResult> &a,
                 const std::vector<runtime::ScenarioResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].makespanMs, &b[i].makespanMs,
                        sizeof(double)) != 0)
            return false;
        if (a[i].sim.trace.size() != b[i].sim.trace.size())
            return false;
        for (size_t t = 0; t < a[i].sim.trace.size(); ++t) {
            const auto &x = a[i].sim.trace[t];
            const auto &y = b[i].sim.trace[t];
            if (x.id != y.id ||
                std::memcmp(&x.start, &y.start, sizeof(double)) != 0 ||
                std::memcmp(&x.finish, &y.finish, sizeof(double)) != 0)
                return false;
        }
    }
    return true;
}

/** memcmp-level equality of two persisted result sets. */
bool
identicalSweepResults(const std::vector<runtime::SweepResult> &a,
                      const std::vector<runtime::SweepResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].key() != b[i].key() ||
            std::memcmp(&a[i].makespanMs, &b[i].makespanMs,
                        sizeof(double)) != 0 ||
            std::memcmp(a[i].opTimeMs.data(), b[i].opTimeMs.data(),
                        sizeof(double) * a[i].opTimeMs.size()) != 0)
            return false;
    }
    return true;
}

/** Persistence self-checks: round-trip, self-diff, shard coverage. */
bool
persistenceSelftest(const std::vector<runtime::Scenario> &grid,
                    const std::vector<runtime::ScenarioResult> &results)
{
    const auto records = runtime::toSweepResults(results);
    bool ok = true;

    std::vector<runtime::SweepResult> reread;
    std::string error = "re-read results differ";
    if (!runtime::parseJson(runtime::toJson(records), &reread, &error) ||
        !identicalSweepResults(records, reread)) {
        std::printf("  JSON round-trip FAILED: %s\n", error.c_str());
        ok = false;
    }
    error = "re-read results differ";
    if (!runtime::parseCsv(runtime::toCsv(records), &reread, &error) ||
        !identicalSweepResults(records, reread)) {
        std::printf("  CSV round-trip FAILED: %s\n", error.c_str());
        ok = false;
    }

    const auto self = runtime::diffResults(records, records);
    if (!self.passes(0.0)) {
        std::printf("  self-diff FAILED:\n%s",
                    runtime::formatDiff(self, 0.0).c_str());
        ok = false;
    }

    // Shard 1/3..3/3 must partition the grid: disjoint, in order,
    // union == full grid.
    std::vector<runtime::Scenario> merged;
    for (int k = 1; k <= 3; ++k) {
        auto part = runtime::shardScenarios(grid, {k, 3});
        merged.insert(merged.end(), part.begin(), part.end());
    }
    bool shards_ok = merged.size() == grid.size();
    for (size_t i = 0; shards_ok && i < grid.size(); ++i)
        shards_ok = merged[i].label() == grid[i].label();
    if (!shards_ok) {
        std::printf("  shard partition FAILED\n");
        ok = false;
    }
    std::printf("  persistence round-trip + self-diff + shards: %s\n",
                ok ? "ok" : "FAILED");
    return ok;
}

/**
 * Audit-mode pass (base/audit.h): when the binary carries the
 * debug-mode audits, prove they actually ran during the sweeps above
 * by reporting the audit.* counters from the stats registry — a
 * selftest that "passes" with audits silently compiled out would be
 * meaningless, so Release builds say so explicitly instead.
 */
bool
auditSelftest()
{
    if (!fsmoe::audit::compiledIn()) {
        std::printf("  audits: compiled out in this build "
                    "(rebuild with -DFSMOE_AUDIT=ON or Debug)\n");
        return true;
    }
    const uint64_t graphs =
        fsmoe::stats::counter("audit.taskGraph.verified").value();
    const uint64_t pops =
        fsmoe::stats::counter("audit.heap.popChecks").value();
    const uint64_t checks =
        fsmoe::stats::counter("audit.cacheKey.checks").value();
    const uint64_t recorded =
        fsmoe::stats::counter("audit.cacheKey.recorded").value();
    std::printf("  audits: %llu graphs verified, %llu heap pops "
                "checked, %llu cache-key checks (%llu keys recorded)\n",
                static_cast<unsigned long long>(graphs),
                static_cast<unsigned long long>(pops),
                static_cast<unsigned long long>(checks),
                static_cast<unsigned long long>(recorded));
    const bool live = graphs > 0 && pops > 0 && checks > 0 &&
                      recorded > 0 && checks >= recorded;
    if (!live)
        std::printf("  audit pass FAILED: audits are compiled in but "
                    "some counter stayed zero\n");
    return live;
}

/**
 * Fault-tolerance pass: deterministic injection, retry, quarantine,
 * and the surviving-bytes contract — a fault-injected robust run's Ok
 * records must be byte-identical to a clean run's, and the same seed
 * must fail the same scenarios every time.
 */
bool
robustnessSelftest(const std::vector<runtime::Scenario> &grid)
{
    namespace fault = runtime::fault;
    // A small deterministic slice keeps the pass fast; tight backoff
    // keeps retries cheap.
    std::vector<runtime::Scenario> small(
        grid.begin(),
        grid.begin() +
            static_cast<long>(std::min<size_t>(grid.size(), 8)));
    runtime::RobustOptions opts;
    opts.numThreads = 2;
    opts.maxAttempts = 3;
    opts.backoffBaseMs = 1;
    opts.backoffMaxMs = 2;

    fault::reset(); // also shields this pass from FSMOE_FAULT
    const auto clean = runtime::runRobust(small, opts);
    bool ok = true;
    for (const auto &r : clean) {
        if (r.status != runtime::ResultStatus::Ok) {
            std::printf("  clean robust run FAILED: %s -> %s\n",
                        r.key().c_str(),
                        runtime::resultStatusName(r.status));
            ok = false;
        }
    }

    fault::FaultConfig cfg;
    std::string error;
    if (!fault::parseSpec("seed=42,eval=0.4", &cfg, &error)) {
        std::printf("  fault spec parse FAILED: %s\n", error.c_str());
        return false;
    }
    fault::configure(cfg);
    const auto faulty1 = runtime::runRobust(small, opts);
    const auto faulty2 = runtime::runRobust(small, opts);
    fault::reset();

    size_t survivors = 0, quarantined = 0;
    for (size_t i = 0; i < small.size(); ++i) {
        if (runtime::toJsonRecord(faulty1[i]) !=
            runtime::toJsonRecord(faulty2[i])) {
            std::printf("  injected runs diverge at %s — fault "
                        "injection is not deterministic\n",
                        faulty1[i].key().c_str());
            ok = false;
        }
        if (faulty1[i].status == runtime::ResultStatus::Ok) {
            ++survivors;
            if (runtime::toJsonRecord(faulty1[i]) !=
                runtime::toJsonRecord(clean[i])) {
                std::printf("  surviving result differs from clean run "
                            "at %s\n",
                            faulty1[i].key().c_str());
                ok = false;
            }
        } else {
            ++quarantined;
        }
    }

    // Grid-independent retry/quarantine check: a scenario whose every
    // attempt fails must come back quarantined with the full attempt
    // count, never abort the run.
    if (!fault::parseSpec("seed=1,eval=1", &cfg, &error)) {
        std::printf("  fault spec parse FAILED: %s\n", error.c_str());
        return false;
    }
    fault::configure(cfg);
    const auto doomed =
        runtime::runRobust({small.front()}, opts);
    fault::reset();
    if (doomed.size() != 1 ||
        doomed[0].status != runtime::ResultStatus::Quarantined ||
        doomed[0].attempts != opts.maxAttempts || doomed[0].error.empty()) {
        std::printf("  quarantine contract FAILED (status %s, "
                    "%d attempts)\n",
                    doomed.empty()
                        ? "?"
                        : runtime::resultStatusName(doomed[0].status),
                    doomed.empty() ? 0 : doomed[0].attempts);
        ok = false;
    }

    std::printf("  fault injection: %zu of %zu survived, %zu "
                "quarantined; deterministic + surviving bytes clean: "
                "%s\n",
                survivors, small.size(), quarantined, ok ? "ok" : "FAILED");
    printRobustCounters();
    return ok;
}

int
selftest(const std::vector<runtime::Scenario> &grid)
{
    std::printf("selftest: %zu scenarios, serial vs 4 threads\n",
                grid.size());
    runtime::SweepEngine serial({/*numThreads=*/1});
    auto serial_results = serial.run(grid);
    const double serial_ms = serial.stats().lastSweepWallMs;

    runtime::SweepEngine parallel({/*numThreads=*/4});
    auto parallel_results = parallel.run(grid);
    const double parallel_ms = parallel.stats().lastSweepWallMs;

    // A second sweep on the warm engine: every ModelCost and every
    // SimResult is served from the caches, which is the repeated-sweep
    // case the caches are for.
    auto warm_results = parallel.run(grid);
    const double warm_ms = parallel.stats().lastSweepWallMs;
    const runtime::SweepStats warm_stats = parallel.stats();

    const bool same = identicalResults(serial_results, parallel_results) &&
                      identicalResults(serial_results, warm_results);
    std::printf("  1 thread        : %9.1f ms\n", serial_ms);
    std::printf("  4 threads (cold): %9.1f ms  (%.2fx)\n", parallel_ms,
                serial_ms / parallel_ms);
    std::printf("  4 threads (warm): %9.1f ms  (%.2fx, %zu sim-cache "
                "hits)\n",
                warm_ms, serial_ms / warm_ms, warm_stats.simCacheHits);
    std::printf("  results bit-identical: %s\n", same ? "yes" : "NO");
    const bool cached = warm_stats.simCacheHits == grid.size();
    if (!cached)
        std::printf("  sim cache FAILED: %zu hits, expected %zu\n",
                    warm_stats.simCacheHits, grid.size());

    const bool persist_ok = persistenceSelftest(grid, serial_results);

    const bool robust_ok = robustnessSelftest(grid);

    const bool audit_ok = auditSelftest();

    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 2)
        std::printf("  note: this host exposes %u CPU(s); thread-level "
                    "speedup needs more cores\n",
                    hw);
    return same && cached && persist_ok && robust_ok && audit_ok ? 0 : 1;
}

/** Atomically write @p text to @p path; stderr + false on failure. */
bool
dumpTextFile(const char *path, const std::string &text)
{
    std::string error;
    if (!fileio::atomicWriteFile(path, text, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return false;
    }
    return true;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--batches LIST] [--trace FILE]\n"
                 "          [--schedules LIST] [--list-schedules]\n"
                 "          [--out-json FILE] [--out-csv FILE]\n"
                 "          [--diff BASELINE] [--tolerance PCT]\n"
                 "          [--shard K/N] [--no-sim-cache] [--profile]\n"
                 "          [--explain LABEL|best] [--link-util]\n"
                 "          [--metrics-json FILE] [--self-trace FILE]\n"
                 "          [--journal FILE] [--resume] [--isolate]\n"
                 "          [--timeout-ms N] [--max-attempts N]\n"
                 "          [--inject SPEC] [--stop-after N]\n"
                 "          [--selftest]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    int threads = 0;
    std::vector<int64_t> batches = {1, 2};
    std::vector<std::string> schedules; // empty = demo-grid default
    const char *trace_path = nullptr;
    const char *out_json = nullptr;
    const char *out_csv = nullptr;
    const char *diff_baseline = nullptr;
    double tolerance_pct = 0.0;
    runtime::ShardSpec shard;
    bool sim_cache = true;
    bool run_selftest = false;
    bool profile = false;
    bool link_util = false;
    const char *explain = nullptr;
    const char *metrics_json = nullptr;
    const char *self_trace = nullptr;
    const char *journal_path = nullptr;
    const char *inject_spec = nullptr;
    bool resume = false;
    bool isolate = false;
    int max_attempts = 3;
    int timeout_ms = 30000;
    int stop_after = 0;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
            batches = parseBatches(argv[++i]);
        } else if (std::strcmp(argv[i], "--schedules") == 0 &&
                   i + 1 < argc) {
            schedules = parseSchedules(argv[++i]);
        } else if (std::strcmp(argv[i], "--list-schedules") == 0) {
            listSchedules();
            return 0;
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--out-json") == 0 && i + 1 < argc) {
            out_json = argv[++i];
        } else if (std::strcmp(argv[i], "--out-csv") == 0 && i + 1 < argc) {
            out_csv = argv[++i];
        } else if (std::strcmp(argv[i], "--diff") == 0 && i + 1 < argc) {
            diff_baseline = argv[++i];
        } else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            tolerance_pct = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || tolerance_pct < 0.0) {
                std::fprintf(stderr, "bad --tolerance '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
            std::string shard_error;
            if (!runtime::parseShardSpec(argv[++i], &shard, &shard_error)) {
                std::fprintf(stderr, "%s\n", shard_error.c_str());
                return 2;
            }
        } else if (std::strcmp(argv[i], "--no-sim-cache") == 0) {
            sim_cache = false;
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            profile = true;
        } else if (std::strcmp(argv[i], "--explain") == 0 && i + 1 < argc) {
            explain = argv[++i];
        } else if (std::strcmp(argv[i], "--link-util") == 0) {
            link_util = true;
        } else if (std::strcmp(argv[i], "--metrics-json") == 0 &&
                   i + 1 < argc) {
            metrics_json = argv[++i];
        } else if (std::strcmp(argv[i], "--self-trace") == 0 &&
                   i + 1 < argc) {
            self_trace = argv[++i];
        } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
            journal_path = argv[++i];
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            resume = true;
        } else if (std::strcmp(argv[i], "--isolate") == 0) {
            isolate = true;
        } else if (std::strcmp(argv[i], "--inject") == 0 && i + 1 < argc) {
            inject_spec = argv[++i];
        } else if (std::strcmp(argv[i], "--max-attempts") == 0 &&
                   i + 1 < argc) {
            max_attempts = std::atoi(argv[++i]);
            if (max_attempts < 1) {
                std::fprintf(stderr, "bad --max-attempts '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--timeout-ms") == 0 &&
                   i + 1 < argc) {
            timeout_ms = std::atoi(argv[++i]);
            if (timeout_ms < 1) {
                std::fprintf(stderr, "bad --timeout-ms '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--stop-after") == 0 &&
                   i + 1 < argc) {
            stop_after = std::atoi(argv[++i]);
            if (stop_after < 1) {
                std::fprintf(stderr, "bad --stop-after '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--selftest") == 0) {
            run_selftest = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (resume && journal_path == nullptr) {
        std::fprintf(stderr, "--resume needs --journal FILE\n");
        return 2;
    }
    if (inject_spec != nullptr) {
        runtime::fault::FaultConfig fault_cfg;
        std::string fault_error;
        if (!runtime::fault::parseSpec(inject_spec, &fault_cfg,
                                       &fault_error)) {
            std::fprintf(stderr, "bad --inject: %s\n", fault_error.c_str());
            return 2;
        }
        runtime::fault::configure(fault_cfg);
    }
    // Refuse unwritable output destinations up front: a sweep is
    // expensive, and discovering at the end that --out-json points
    // into a missing directory silently loses everything.
    for (const char *out_path :
         {out_json, out_csv, metrics_json, self_trace, trace_path,
          journal_path}) {
        std::string werr;
        if (out_path != nullptr &&
            !fileio::checkWritable(out_path, &werr)) {
            std::fprintf(stderr, "fsmoe_sweep: %s\n", werr.c_str());
            return 2;
        }
    }

    std::vector<runtime::Scenario> grid =
        runtime::demoGrid(batches, schedules);
    if (run_selftest) {
        if (trace_path != nullptr || explain != nullptr ||
            self_trace != nullptr || metrics_json != nullptr)
            std::fprintf(stderr, "warning: --trace/--explain/--self-trace/"
                                 "--metrics-json are ignored with "
                                 "--selftest\n");
        return selftest(grid);
    }
    if (shard.count > 1) {
        const size_t full = grid.size();
        grid = runtime::shardScenarios(grid, shard);
        std::printf("shard %d/%d: %zu of %zu scenarios\n", shard.index,
                    shard.count, grid.size(), full);
    }

    if (threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 0 ? static_cast<int>(hw) : 1;
    }

    // Any fault-tolerance flag (or FSMOE_FAULT in the environment)
    // routes through the robust runner; the plain engine path below
    // stays exactly as it always was, byte-gated baselines included.
    const bool robust = journal_path != nullptr || resume || isolate ||
                        inject_spec != nullptr || stop_after > 0 ||
                        runtime::fault::configureFromEnv();

    if (self_trace != nullptr)
        runtime::SelfTrace::instance().enable();

    std::vector<runtime::SweepResult> records;
    if (robust) {
        if (trace_path != nullptr || explain != nullptr) {
            std::fprintf(stderr,
                         "--trace/--explain need retained task graphs and "
                         "are not supported with the fault-tolerant runner "
                         "(--journal/--resume/--isolate/--inject)\n");
            return 2;
        }
        runtime::RobustOptions ropts;
        ropts.numThreads = threads;
        ropts.isolate = isolate;
        ropts.maxAttempts = max_attempts;
        ropts.timeoutMs = timeout_ms;
        ropts.stopAfterResults = stop_after;
        runtime::Journal journal;
        runtime::Journal *journal_ptr = nullptr;
        if (journal_path != nullptr) {
            std::string journal_error;
            if (!journal.open(journal_path, grid, resume, &journal_error)) {
                std::fprintf(stderr, "fsmoe_sweep: %s\n",
                             journal_error.c_str());
                return 2;
            }
            journal_ptr = &journal;
        }
        interrupt::installStopHandlers();
        records = runtime::runRobust(grid, ropts, journal_ptr);

        if (interrupt::stopRequested()) {
            // Graceful stop: every finished scenario's journal record
            // is already flushed (the handler only sets a flag, so no
            // append was torn); unstarted scenarios came back as
            // default records. Writing a partial --out-json would
            // poison downstream cmp gates, so print the resume hint
            // and exit with the conventional 128+signal code instead.
            size_t n_finished = 0;
            for (const auto &r : records)
                if (!r.schedule.empty())
                    ++n_finished;
            std::printf("\ninterrupted (signal %d) after %zu of %zu "
                        "scenarios\n",
                        interrupt::stopSignal(), n_finished,
                        records.size());
            if (journal_path != nullptr)
                std::printf("finished records are safe in %s — resume "
                            "with: --journal %s --resume\n",
                            journal_path, journal_path);
            else
                std::printf("no journal was kept; rerun with --journal "
                            "FILE to make interrupted sweeps "
                            "resumable\n");
            return interrupt::stopExitCode();
        }
        printRanked(records);
        size_t n_ok = 0;
        for (const auto &r : records)
            if (r.status == runtime::ResultStatus::Ok)
                ++n_ok;
        std::printf("\n%zu scenarios (robust%s runner): %zu ok, %zu "
                    "quarantined, %llu resumed from journal\n",
                    records.size(), isolate ? ", isolated" : "", n_ok,
                    records.size() - n_ok,
                    static_cast<unsigned long long>(
                        stats::counter("robust.scenario.resumed").value()));
        if (profile)
            printRobustCounters();
    } else {
        runtime::SweepOptions opts;
        opts.numThreads = threads;
        // --explain needs the retained graph of its scenario, same as
        // the trace exporter.
        opts.keepGraphs = trace_path != nullptr || explain != nullptr;
        opts.enableSimCache = sim_cache;
        runtime::SweepEngine engine(opts);
        auto results = engine.run(grid);
        records = runtime::toSweepResults(results);

        printRanked(records);

        const runtime::SweepStats stats = engine.stats();
        std::printf("\n%zu scenarios on %d threads in %.1f ms; cost "
                    "cache: %zu misses, %zu hits; sim cache: %zu misses, "
                    "%zu hits\n",
                    stats.scenariosRun, threads, stats.lastSweepWallMs,
                    stats.costCacheMisses, stats.costCacheHits,
                    stats.simCacheMisses, stats.simCacheHits);
        if (profile)
            printProfile(stats);

        if (explain != nullptr && !results.empty()) {
            const runtime::ScenarioResult *target = nullptr;
            if (std::strcmp(explain, "best") == 0) {
                target = &results.front();
                for (const auto &r : results)
                    if (r.makespanMs < target->makespanMs)
                        target = &r;
            } else {
                for (const auto &r : results) {
                    if (r.scenario.label() == explain) {
                        target = &r;
                        break;
                    }
                }
                if (target == nullptr) {
                    std::fprintf(stderr,
                                 "--explain: no scenario labelled '%s' in "
                                 "this grid (labels look like '%s'; or use "
                                 "'best')\n",
                                 explain,
                                 results.front().scenario.label().c_str());
                    return 2;
                }
            }
            const sim::RunReport report =
                sim::analyzeRun(target->graph, target->sim);
            std::printf("\nexplain %s:\n%s",
                        target->scenario.label().c_str(),
                        sim::formatRunReport(target->graph, report).c_str());
        }

        if (trace_path != nullptr) {
            const runtime::ScenarioResult *best = &results.front();
            for (const auto &r : results)
                if (r.makespanMs < best->makespanMs)
                    best = &r;
            if (runtime::writeChromeTrace(trace_path, best->graph,
                                          best->sim,
                                          best->scenario.label()))
                std::printf("wrote chrome://tracing JSON for %s to %s\n",
                            best->scenario.label().c_str(), trace_path);
            else
                return 1;
        }
    }

    if (out_json != nullptr) {
        if (!runtime::writeResultsJson(out_json, records, link_util))
            return 2;
        std::printf("wrote %zu results to %s\n", records.size(), out_json);
    }
    if (out_csv != nullptr) {
        if (!runtime::writeResultsCsv(out_csv, records, link_util))
            return 2;
        std::printf("wrote %zu results to %s\n", records.size(), out_csv);
    }

    if (self_trace != nullptr) {
        runtime::SelfTrace &tracer = runtime::SelfTrace::instance();
        tracer.disable();
        if (!tracer.write(self_trace))
            return 1;
        std::printf("wrote %zu self-trace spans to %s\n",
                    tracer.eventCount(), self_trace);
    }
    if (metrics_json != nullptr) {
        if (!dumpTextFile(metrics_json,
                          stats::Registry::instance().snapshotJson()))
            return 1;
        std::printf("wrote stats snapshot to %s\n", metrics_json);
    }

    if (diff_baseline != nullptr) {
        std::vector<runtime::SweepResult> baseline;
        std::string error;
        if (!runtime::readResults(diff_baseline, &baseline, &error)) {
            std::fprintf(stderr, "cannot read baseline %s: %s\n",
                         diff_baseline, error.c_str());
            return 2;
        }
        const double tol = tolerance_pct / 100.0;
        const auto report = runtime::diffResults(baseline, records);
        std::printf("\ndiff vs %s:\n%s", diff_baseline,
                    runtime::formatDiff(report, tol).c_str());
        if (!report.passes(tol))
            return 1;
    }
    return 0;
}
