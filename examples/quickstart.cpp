/**
 * @file
 * Quickstart: build an MoE layer, run a distributed forward/backward
 * across 4 in-process ranks (2-way expert parallelism x 2-way
 * expert-sharding parallelism), and ask the scheduler for the optimal
 * pipeline degrees of the same layer on the paper's Testbed B.
 *
 * This mirrors the paper's Listing 2: an MoeLayer is constructed from
 * pluggable gate/order/dispatch/expert components and then used like
 * a regular layer.
 */
#include <cstdio>

#include "core/moe_layer.h"
#include "core/pipeline_solver.h"
#include "model/models.h"
#include "sim/cluster.h"
#include "tensor/rng.h"

int
main()
{
    using namespace fsmoe;

    // --- 1. A functional MoE layer over 4 ranks. --------------------
    core::MoeLayerOptions opt;
    opt.embed = 64;
    opt.hidden = 128;
    opt.numExperts = 4;
    opt.topK = 2;
    opt.gate = core::GateKind::GShard;
    opt.order = core::OrderKind::TutelSparse;
    opt.numEp = 2;  // experts split across 2 "nodes"
    opt.numEsp = 2; // each expert sharded across 2 GPUs of a node
    core::MoeLayer layer(opt);

    Rng rng(1);
    std::vector<Tensor> xs;
    for (int r = 0; r < layer.worldSize(); ++r)
        xs.push_back(rng.normalTensor({16, opt.embed}));

    auto ys = layer.forward(xs);
    std::printf("forward: %d ranks, input %s -> output %s\n",
                layer.worldSize(), xs[0].shapeString().c_str(),
                ys[0].shapeString().c_str());

    std::vector<Tensor> grads;
    for (int r = 0; r < layer.worldSize(); ++r)
        grads.push_back(rng.normalTensor({16, opt.embed}));
    auto dxs = layer.backward(grads);
    layer.syncReplicatedGrads();
    layer.sgdStep(0.01f);
    std::printf("backward + SGD step done; dX shape %s, dropped tokens "
                "on rank 0: %lld\n",
                dxs[0].shapeString().c_str(),
                static_cast<long long>(layer.dropped(0)));

    // --- 2. The scheduler side: optimal pipeline degrees. -----------
    sim::ClusterSpec cluster = sim::testbedB();
    core::PerfModelSet models = core::PerfModelSet::fromCluster(cluster);
    core::LayerShape shape;
    shape.embed = 2048;
    shape.hidden = 6144;
    shape.numExperts = cluster.numNodes;
    core::ParallelConfig par = model::paperParallelism(cluster);
    core::Workload w = core::deriveWorkload(shape, par);

    core::PipelineSolution fwd = core::solvePipeline(
        core::makeProblem(models, w, core::Phase::Forward));
    core::PipelineSolution bwd = core::solvePipeline(
        core::makeProblem(models, w, core::Phase::Backward, 1.0));
    std::printf("\nAlgorithm 1 on %s:\n", cluster.name.c_str());
    std::printf("  forward : r = %d (case %d), predicted %.2f ms\n",
                fwd.r, fwd.caseId, fwd.tMoe);
    std::printf("  backward: r = %d (case %d), predicted %.2f ms, "
                "overlappable %.2f ms\n",
                bwd.r, bwd.caseId, bwd.tMoe, bwd.tOlpMoe);
    return 0;
}
