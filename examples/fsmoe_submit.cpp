/**
 * @file
 * fsmoe_submit — submit sweep jobs to a fsmoe_sweepd queue.
 *
 * Builds a plain-text job spec (service/job.h) and enqueues it
 * crash-safely in the daemon's queue directory (service/job_queue.h):
 * the spec lands via atomic rename, and the job only becomes visible
 * to the daemon when its state file commits, so a submitter killed at
 * any instant never leaves a half-submitted job.
 *
 * Options:
 *
 *   --queue DIR       queue directory shared with fsmoe_sweepd
 *                     (required; created if missing)
 *   --name NAME       job identifier ([A-Za-z0-9_-]; required unless
 *                     --spec)
 *   --out FILE        merged result destination (required unless
 *                     --spec)
 *   --batches LIST    comma-separated batch sizes (default 1,2)
 *   --schedules LIST  comma-separated schedule specs (default: every
 *                     registered schedule — the demo grid)
 *   --spec FILE       submit an existing job-spec file instead of
 *                     building one from the flags above
 *   --wait            poll the job's state until it reaches "done"
 *                     (exit 0) or "failed" (exit 1, message printed)
 *   --list            print every job in the queue with its state and
 *                     exit
 *
 * The job id ("0001-NAME") is printed on success — it names the
 * job's spec/state/journal files under DIR/jobs/.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "base/fileio.h"
#include "service/job.h"
#include "service/job_queue.h"

namespace {

using namespace fsmoe;

std::vector<int64_t>
parseBatches(const char *arg)
{
    std::vector<int64_t> out;
    for (const char *p = arg; *p != '\0';) {
        char *end = nullptr;
        long v = std::strtol(p, &end, 10);
        if (end == p || v <= 0) {
            std::fprintf(stderr, "bad --batches list '%s'\n", arg);
            std::exit(2);
        }
        out.push_back(v);
        p = *end == ',' ? end + 1 : end;
    }
    if (out.empty()) {
        std::fprintf(stderr, "--batches needs at least one value\n");
        std::exit(2);
    }
    return out;
}

std::vector<std::string>
parseSchedules(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    if (out.empty()) {
        std::fprintf(stderr, "--schedules needs at least one spec\n");
        std::exit(2);
    }
    return out;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --queue DIR --name NAME --out FILE\n"
                 "          [--batches LIST] [--schedules LIST] [--wait]\n"
                 "       %s --queue DIR --spec FILE [--wait]\n"
                 "       %s --queue DIR --list\n",
                 argv0, argv0, argv0);
    return 2;
}

/** --wait: poll until the job leaves the queued/active states. */
int
waitForJob(service::JobQueue &queue, const std::string &jobId)
{
    for (;;) {
        std::string state;
        for (const service::JobEntry &e : queue.scan(nullptr)) {
            if (e.id == jobId) {
                if (e.state == "done") {
                    std::printf("job %s: done\n", jobId.c_str());
                    return 0;
                }
                if (e.state == "failed") {
                    std::fprintf(stderr, "job %s: failed: %s\n",
                                 jobId.c_str(), e.error.c_str());
                    return 1;
                }
                state = e.state;
            }
        }
        if (state.empty()) {
            std::fprintf(stderr, "job %s: vanished from the queue\n",
                         jobId.c_str());
            return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const char *queue_dir = nullptr;
    const char *spec_file = nullptr;
    const char *name = nullptr;
    const char *out_path = nullptr;
    std::vector<int64_t> batches = {1, 2};
    std::vector<std::string> schedules;
    bool wait = false;
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
            queue_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) {
            spec_file = argv[++i];
        } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
            name = argv[++i];
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
            batches = parseBatches(argv[++i]);
        } else if (std::strcmp(argv[i], "--schedules") == 0 &&
                   i + 1 < argc) {
            schedules = parseSchedules(argv[++i]);
        } else if (std::strcmp(argv[i], "--wait") == 0) {
            wait = true;
        } else if (std::strcmp(argv[i], "--list") == 0) {
            list = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (queue_dir == nullptr) {
        std::fprintf(stderr, "%s: --queue DIR is required\n", argv[0]);
        return usage(argv[0]);
    }

    service::JobQueue queue;
    std::string error;
    if (!queue.open(queue_dir, &error)) {
        std::fprintf(stderr, "fsmoe_submit: %s\n", error.c_str());
        return 2;
    }

    if (list) {
        for (const service::JobEntry &e : queue.scan(&error)) {
            std::printf("%-24s %s%s%s\n", e.id.c_str(), e.state.c_str(),
                        e.error.empty() ? "" : ": ", e.error.c_str());
        }
        if (!error.empty()) {
            std::fprintf(stderr, "fsmoe_submit: %s\n", error.c_str());
            return 2;
        }
        return 0;
    }

    service::JobSpec job;
    if (spec_file != nullptr) {
        std::string text;
        if (!fileio::readTextFile(spec_file, &text, &error) ||
            !service::parseJobSpec(text, &job, &error)) {
            std::fprintf(stderr, "fsmoe_submit: %s\n", error.c_str());
            return 2;
        }
    } else {
        if (name == nullptr || out_path == nullptr) {
            std::fprintf(stderr,
                         "%s: --name and --out are required (or --spec)\n",
                         argv[0]);
            return usage(argv[0]);
        }
        job.name = name;
        job.batches = batches;
        job.schedules = schedules;
        job.outPath = out_path;
        // Round-trip through the parser so flag-built jobs obey the
        // exact constraints a hand-written spec file would.
        if (!service::parseJobSpec(service::serializeJobSpec(job), &job,
                                   &error)) {
            std::fprintf(stderr, "fsmoe_submit: %s\n", error.c_str());
            return 2;
        }
    }

    std::string jobId;
    if (!queue.submit(job, &jobId, &error)) {
        std::fprintf(stderr, "fsmoe_submit: %s\n", error.c_str());
        return 2;
    }
    std::printf("submitted %s (queue %s)\n", jobId.c_str(), queue_dir);
    std::fflush(stdout);
    return wait ? waitForJob(queue, jobId) : 0;
}
