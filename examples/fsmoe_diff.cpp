/**
 * @file
 * fsmoe_diff — compare and merge persisted sweep result files.
 *
 * Diff mode compares two result files (JSON or CSV, dispatched on the
 * ".csv" extension) scenario-by-scenario and gates on drift:
 *
 *   fsmoe_diff BASELINE CURRENT [--tolerance PCT]
 *
 * exits 0 when the scenario sets match and every makespan is within
 * the relative tolerance (default 0 = bit-exact), 1 on any drift or
 * set mismatch, 2 on usage or IO errors. Merge mode concatenates
 * shard files (as produced by `fsmoe_sweep --shard K/N --out-json`)
 * in argument order, rejecting duplicate scenarios:
 *
 *   fsmoe_diff --merge OUT SHARD1 SHARD2 [...]
 *
 * Because shards are contiguous grid slices, merging them in K order
 * writes a file byte-identical to the unsharded sweep's.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/result_store.h"

namespace {

using namespace fsmoe;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s BASELINE CURRENT [--tolerance PCT]\n"
                 "       %s --merge OUT SHARD1 SHARD2 [...]\n",
                 argv0, argv0);
    return 2;
}

bool
readOrComplain(const std::string &path,
               std::vector<runtime::SweepResult> *out)
{
    std::string error;
    if (!runtime::readResults(path, out, &error)) {
        std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    return true;
}

int
mergeMain(int argc, char **argv)
{
    // argv: fsmoe_diff --merge OUT IN1 [IN2 ...]
    if (argc < 4)
        return usage(argv[0]);
    const std::string out_path = argv[2];
    std::vector<std::vector<runtime::SweepResult>> shards;
    for (int i = 3; i < argc; ++i) {
        shards.emplace_back();
        if (!readOrComplain(argv[i], &shards.back()))
            return 2;
    }
    std::vector<runtime::SweepResult> merged;
    std::string error;
    if (!runtime::mergeResults(shards, &merged, &error)) {
        std::fprintf(stderr, "merge failed: %s\n", error.c_str());
        return 1;
    }
    const bool csv = out_path.size() >= 4 &&
                     out_path.compare(out_path.size() - 4, 4, ".csv") == 0;
    const bool ok = csv ? runtime::writeResultsCsv(out_path, merged)
                        : runtime::writeResultsJson(out_path, merged);
    if (!ok)
        return 2;
    std::printf("merged %zu shards (%zu results) into %s\n",
                shards.size(), merged.size(), out_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--merge") == 0)
        return mergeMain(argc, argv);

    const char *baseline_path = nullptr;
    const char *current_path = nullptr;
    double tolerance_pct = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            char *end = nullptr;
            tolerance_pct = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || tolerance_pct < 0.0) {
                std::fprintf(stderr, "bad --tolerance '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            return usage(argv[0]); // unknown flag, not a file path
        } else if (baseline_path == nullptr) {
            baseline_path = argv[i];
        } else if (current_path == nullptr) {
            current_path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (baseline_path == nullptr || current_path == nullptr)
        return usage(argv[0]);

    std::vector<runtime::SweepResult> baseline, current;
    if (!readOrComplain(baseline_path, &baseline) ||
        !readOrComplain(current_path, &current))
        return 2;

    const double tol = tolerance_pct / 100.0;
    const auto report = runtime::diffResults(baseline, current);
    std::printf("%s (%zu results) vs %s (%zu results):\n%s",
                baseline_path, baseline.size(), current_path,
                current.size(), runtime::formatDiff(report, tol).c_str());
    return report.passes(tol) ? 0 : 1;
}
