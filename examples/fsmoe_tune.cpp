/**
 * @file
 * fsmoe_tune — the schedule advisor CLI.
 *
 * Answers "which schedule (and parameters) should I run?" for one
 * (model, cluster, batch) configuration by searching every registered
 * schedule's declared parameter space through the cached sweep engine
 * (see docs/TUNING.md). Prints the best canonical spec and the
 * (makespan, comm busy, peak comm memory) Pareto frontier; optionally
 * persists the answer JSON and an advisor cache so repeated queries
 * are lookups, not searches.
 *
 * Everything printed and written is deterministic — byte-identical
 * across runs, thread counts, and Debug/Release builds — which is
 * what lets CI `cmp` the artifacts (--selftest re-asks the query and
 * fails unless the warm answer matches byte-for-byte with zero new
 * simulations).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/fileio.h"
#include "base/json.h"
#include "base/stats.h"
#include "runtime/tuner.h"

using namespace fsmoe;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Recommend a schedule for one workload configuration.\n"
        "\n"
        "  --model NAME       model preset (default gpt2xl-moe)\n"
        "  --cluster NAME     cluster preset (default testbedA)\n"
        "  --batch N          samples per GPU (default 1)\n"
        "  --seq-len N        tokens per sample (default 1024)\n"
        "  --layers N         generalized layers; 0 = preset default\n"
        "  --experts N        experts; 0 = one per node\n"
        "  --rmax N           max pipeline degree (default 16)\n"
        "  --threads N        engine worker threads; 0 = hardware\n"
        "  --advisor-cache F  load cached answers from F before the\n"
        "                     query and save all answers back after\n"
        "  --out-json F       write the answer JSON to F\n"
        "  --selftest         re-ask the query warm and fail unless it\n"
        "                     is answered from cache, byte-identically,\n"
        "                     with zero new simulations\n"
        "  --quiet            suppress the frontier table\n"
        "  --help             this text\n",
        argv0);
}

bool
parseI64(const char *text, int64_t *out)
{
    char *end = nullptr;
    *out = std::strtoll(text, &end, 10);
    return end != text && *end == '\0';
}

bool
parseI32(const char *text, int *out)
{
    int64_t v;
    if (!parseI64(text, &v) || v < -2147483647 - 1 || v > 2147483647)
        return false;
    *out = static_cast<int>(v);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    runtime::TuneQuery query;
    query.model = "gpt2xl-moe";
    query.cluster = "testbedA";
    runtime::TuneOptions options;
    std::string cache_path;
    std::string out_json;
    bool selftest = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const auto isFlag = [&](const char *name) {
            return std::strcmp(argv[i], name) == 0;
        };
        const auto flagValue = [&](const char *name) -> const char * {
            return isFlag(name) && i + 1 < argc ? argv[++i] : nullptr;
        };
        bool ok = true;
        if (isFlag("--help") || isFlag("-h")) {
            usage(argv[0]);
            return 0;
        } else if (const char *v = flagValue("--model")) {
            query.model = v;
        } else if (const char *v = flagValue("--cluster")) {
            query.cluster = v;
        } else if (const char *v = flagValue("--batch")) {
            ok = parseI64(v, &query.batch) && query.batch > 0;
        } else if (const char *v = flagValue("--seq-len")) {
            ok = parseI64(v, &query.seqLen) && query.seqLen > 0;
        } else if (const char *v = flagValue("--layers")) {
            ok = parseI32(v, &query.numLayers) && query.numLayers >= 0;
        } else if (const char *v = flagValue("--experts")) {
            ok = parseI32(v, &query.numExperts) && query.numExperts >= 0;
        } else if (const char *v = flagValue("--rmax")) {
            ok = parseI32(v, &query.rMax) && query.rMax >= 1;
        } else if (const char *v = flagValue("--threads")) {
            ok = parseI32(v, &options.numThreads) &&
                 options.numThreads >= 0;
        } else if (const char *v = flagValue("--advisor-cache")) {
            cache_path = v;
        } else if (const char *v = flagValue("--out-json")) {
            out_json = v;
        } else if (isFlag("--selftest")) {
            selftest = true;
        } else if (isFlag("--quiet")) {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown or incomplete option '%s'\n",
                         argv[i]);
            usage(argv[0]);
            return 2;
        }
        if (!ok) {
            std::fprintf(stderr, "bad value for '%s'\n", argv[i - 1]);
            return 2;
        }
    }

    // Refuse unwritable destinations before searching: discovering a
    // bad --out-json path only after the search silently loses the
    // answer.
    for (const std::string *out_path : {&out_json, &cache_path}) {
        std::string werr;
        if (!out_path->empty() &&
            !fileio::checkWritable(*out_path, &werr)) {
            std::fprintf(stderr, "fsmoe_tune: %s\n", werr.c_str());
            return 2;
        }
    }

    runtime::Tuner tuner(options);
    if (!cache_path.empty()) {
        std::string error;
        if (!tuner.loadCache(cache_path, &error))
            // A missing cache is the normal cold start; report and go.
            std::fprintf(stderr, "advisor cache not loaded: %s\n",
                         error.c_str());
    }

    const runtime::TuneAnswer answer = tuner.tune(query);

    std::printf("query    %s\n", answer.queryKey.c_str());
    std::printf("answer   %s  (%s)\n", answer.best.c_str(),
                answer.fromCache ? "cached" : "searched");
    std::printf("makespan %s ms over %zu evaluated specs\n",
                json::fmtDouble(answer.bestMakespanMs).c_str(),
                answer.evaluated);
    if (!quiet) {
        std::printf("\n%-32s %14s %14s %12s\n", "pareto frontier",
                    "makespan ms", "comm busy ms", "peak MB");
        for (const runtime::TuneCandidate &c : answer.frontier)
            std::printf("%-32s %14s %14s %12s\n", c.spec.c_str(),
                        json::fmtDouble(c.makespanMs).c_str(),
                        json::fmtDouble(c.commBusyMs).c_str(),
                        json::fmtDouble(c.peakMemMB).c_str());
    }

    if (selftest) {
        const uint64_t sim_runs = stats::counter("sim.runs").value();
        const runtime::TuneAnswer warm = tuner.tune(query);
        const uint64_t sim_runs_after = stats::counter("sim.runs").value();
        if (!warm.fromCache || sim_runs_after != sim_runs) {
            std::fprintf(stderr,
                         "selftest FAILED: warm query was not served "
                         "from cache (sim.runs %llu -> %llu)\n",
                         static_cast<unsigned long long>(sim_runs),
                         static_cast<unsigned long long>(sim_runs_after));
            return 1;
        }
        if (runtime::Tuner::answerJson(warm) !=
            runtime::Tuner::answerJson(answer)) {
            std::fprintf(stderr, "selftest FAILED: warm answer differs "
                                 "from the cold answer\n");
            return 1;
        }
        std::printf("\nselftest ok: warm query answered from cache, "
                    "byte-identical, zero new simulations\n");
    }

    if (!out_json.empty()) {
        std::string error;
        if (!fileio::atomicWriteFile(
                out_json, runtime::Tuner::answerJson(answer), &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
    }
    if (!cache_path.empty()) {
        std::string error;
        if (!tuner.saveCache(cache_path, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
    }
    return 0;
}
