/**
 * @file
 * Extensibility demo (the paper's Listing 1): plug a user-defined
 * routing function and a non-invasive hook pair into the framework
 * without touching library code.
 *
 * The custom gate routes deterministically by token hash (a
 * load-balanced "hash routing" baseline); the custom callback
 * implements communication compression around dispatch — quantising
 * the dispatch buffer to half precision and back — via the
 * BeforeDispatch/AfterDispatch hooks, exactly the use case §3.1
 * describes.
 */
#include <cmath>
#include <cstdio>

#include "core/moe_layer.h"
#include "tensor/rng.h"

namespace {

using namespace fsmoe;

/** Parameter-free hash router: expert = token index mod E. */
class HashGate : public core::GateBase
{
  public:
    HashGate(int num_experts, int top_k)
        : numExperts_(num_experts), topK_(top_k)
    {
    }

    std::string name() const override { return "hash"; }

    core::GateResult
    forward(const Tensor &x) override
    {
        tokens_ = x.size(0);
        embed_ = x.size(1);
        core::GateResult result;
        for (int64_t t = 0; t < tokens_; ++t) {
            for (int j = 0; j < topK_; ++j) {
                int expert = static_cast<int>((t + j) % numExperts_);
                result.assignments.push_back(
                    {t, expert, 1.0f / topK_});
            }
        }
        return result;
    }

    Tensor
    backward(const std::vector<float> &) override
    {
        // Routing is input-independent: no gradient flows through it.
        return Tensor({tokens_, embed_});
    }

    std::vector<Tensor *> params() override { return {}; }
    std::vector<Tensor *> grads() override { return {}; }

  private:
    int numExperts_;
    int topK_;
    int64_t tokens_ = 0;
    int64_t embed_ = 0;
};

/** Round a float to the nearest representable half-precision value. */
float
toHalfPrecision(float v)
{
    // Keep 10 mantissa bits by scaling to the binade.
    if (v == 0.0f || !std::isfinite(v))
        return v;
    int exp;
    float mant = std::frexp(v, &exp);
    float scaled = std::ldexp(mant, 11);
    return std::ldexp(std::nearbyint(scaled), exp - 11);
}

/** Compression hooks: quantise before dispatch, mark after. */
class CompressionCallback : public core::CallbackBase
{
  public:
    void
    beforeDispatch(core::HookContext &ctx) override
    {
        for (int64_t i = 0; i < ctx.payload->numel(); ++i)
            ctx.payload->flat(i) = toHalfPrecision(ctx.payload->flat(i));
        compressedBytes += ctx.payload->numel() * 2;
    }

    void
    afterDispatch(core::HookContext &ctx) override
    {
        (void)ctx; // fp16 -> fp32 upcast is value-preserving
        decompressions++;
    }

    long long compressedBytes = 0;
    int decompressions = 0;
};

} // namespace

int
main()
{
    using namespace fsmoe;
    core::MoeLayerOptions opt;
    opt.embed = 32;
    opt.hidden = 64;
    opt.numExperts = 4;
    opt.topK = 2;
    opt.numEp = 2;
    opt.numEsp = 1;
    core::MoeLayer layer(opt);

    // Swap in the custom gate per rank would require construction-time
    // injection; instead demonstrate the gate standalone plus the
    // hooks inside the stock layer.
    HashGate hash(opt.numExperts, opt.topK);
    Rng rng(3);
    Tensor x = rng.normalTensor({8, opt.embed});
    core::GateResult routed = hash.forward(x);
    std::printf("custom '%s' gate routed %zu assignments; expert of "
                "token 0: %d and %d\n",
                hash.name().c_str(), routed.assignments.size(),
                routed.assignments[0].expert, routed.assignments[1].expert);

    auto compression = std::make_shared<CompressionCallback>();
    layer.addCallback(compression);
    std::vector<Tensor> xs;
    for (int r = 0; r < layer.worldSize(); ++r)
        xs.push_back(rng.normalTensor({8, opt.embed}));
    auto ys = layer.forward(xs);
    std::printf("compression hooks fired: %d decompressions, %lld bytes "
                "on the wire (fp16)\n",
                compression->decompressions, compression->compressedBytes);
    std::printf("output shape per rank: %s\n",
                ys[0].shapeString().c_str());
    return 0;
}
