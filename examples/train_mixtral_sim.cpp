/**
 * @file
 * End-to-end scenario: train a scaled-down Mixtral-style MoE layer
 * (SwiGLU experts, GShard routing) distributed over 8 in-process ranks
 * on a synthetic regression task, then project the training-iteration
 * time of the full-size Mixtral-7B on the paper's Testbed A under
 * every schedule the paper compares.
 */
#include <cstdio>

#include "core/moe_layer.h"
#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"
#include "model/models.h"
#include "tensor/rng.h"

int
main()
{
    using namespace fsmoe;

    // --- Functional training at laptop scale. -----------------------
    core::MoeLayerOptions opt;
    opt.embed = 48;
    opt.hidden = 96;
    opt.numExperts = 8;
    opt.topK = 2;
    opt.ffn = core::FfnType::Mixtral;
    opt.gate = core::GateKind::GShard;
    opt.numEp = 4;  // 4 nodes
    opt.numEsp = 2; // 2-way expert sharding
    core::MoeLayer layer(opt);
    const int world = layer.worldSize();

    Rng rng(11);
    std::vector<Tensor> xs, targets;
    for (int r = 0; r < world; ++r) {
        xs.push_back(rng.normalTensor({32, opt.embed}));
        // Target: a fixed random linear map of the input.
        targets.push_back(rng.normalTensor({32, opt.embed}, 0.0f, 0.5f));
    }

    std::printf("training a %d-expert Mixtral-style MoE layer on %d "
                "ranks (EP=%d, ESP=%d)\n",
                opt.numExperts, world, opt.numEp, opt.numEsp);
    for (int step = 0; step <= 30; ++step) {
        auto ys = layer.forward(xs);
        double loss = 0.0;
        int64_t count = 0;
        std::vector<Tensor> grads(world);
        for (int r = 0; r < world; ++r) {
            grads[r] = sub(ys[r], targets[r]);
            for (int64_t i = 0; i < grads[r].numel(); ++i)
                loss += grads[r].flat(i) * grads[r].flat(i);
            count += grads[r].numel();
        }
        for (int r = 0; r < world; ++r)
            grads[r].scale_(2.0f / count);
        if (step % 10 == 0)
            std::printf("  step %2d: mse %.5f\n", step, loss / count);
        layer.zeroGrad();
        layer.backward(grads);
        layer.syncReplicatedGrads();
        layer.sgdStep(40.0f);
    }

    // --- Scheduling projection at paper scale. -----------------------
    sim::ClusterSpec cluster = sim::testbedA();
    model::ModelSpec spec = model::mixtral7B(cluster.numNodes, 1, 1024, 32);
    core::ModelCost cost = model::makeModelCost(
        spec, cluster, model::paperParallelism(cluster));
    std::printf("\nprojected %s iteration time on %s:\n",
                spec.name.c_str(), cluster.name.c_str());
    for (const std::string &name :
         core::ScheduleRegistry::instance().names()) {
        auto sched = core::Schedule::create(name);
        std::printf("  %-16s %9.1f ms\n", sched->name().c_str(),
                    sched->iterationTimeMs(cost));
    }
    return 0;
}
