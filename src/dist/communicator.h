/**
 * @file
 * In-process distributed runtime: rank groups, the DP/EP/ESP rank
 * layout of paper Fig. 2, and a Communicator that executes collective
 * operations over per-rank tensor buffers held in one address space.
 *
 * Every collective takes the *world-indexed* buffer vector plus the
 * group of global ranks that participate; ranks outside the group are
 * left untouched, so hybrid layouts simply run one collective per
 * group (e.g. one AlltoAll per EP group).
 *
 * AlltoAll supports the three algorithms the paper's dispatch module
 * discusses (NCCL direct, 1DH, 2DH). The hierarchical variants stage
 * the exchange through intra-node and inter-node passes; they are pure
 * data movement and therefore bit-identical to the direct algorithm —
 * a property dist_test asserts over a grid of node counts.
 */
#ifndef FSMOE_DIST_COMMUNICATOR_H
#define FSMOE_DIST_COMMUNICATOR_H

#include <vector>

#include "tensor/tensor.h"

namespace fsmoe::dist {

/** An ordered set of global ranks participating in a collective. */
using Group = std::vector<int>;

/** AlltoAll algorithm (see core/dispatch.h for the cost models). */
enum class A2aAlgo
{
    NcclDirect, ///< Single-stage pairwise exchange.
    Hier1D,     ///< Hetu-style: intra-node aggregation, then inter-node.
    Hier2D,     ///< Tutel/DeepSpeed-style: the same stages, inter first.
};

/**
 * Maps between global ranks and (EP, ESP) coordinates. Ranks of one
 * node (one ESP group) are contiguous: rank = ep * numEsp + esp, so
 * espGroup(ep) models the NVLink-connected GPUs of node `ep` and
 * epGroup(esp) the inter-node ring of GPUs with local index `esp`.
 */
class ParallelLayout
{
  public:
    ParallelLayout(int num_ep, int num_esp);

    int worldSize() const { return num_ep_ * num_esp_; }
    int numEp() const { return num_ep_; }
    int numEsp() const { return num_esp_; }

    int rankOf(int ep, int esp) const { return ep * num_esp_ + esp; }
    int epOf(int rank) const { return rank / num_esp_; }
    int espOf(int rank) const { return rank % num_esp_; }

    /** Ranks {esp, numEsp+esp, ...}: one GPU per node, fixed slot. */
    Group epGroup(int esp) const;
    /** The contiguous ranks of node @p ep. */
    Group espGroup(int ep) const;
    /** Every rank, in order. */
    Group worldGroup() const;

  private:
    int num_ep_ = 1;
    int num_esp_ = 1;
};

/**
 * Executes collectives over per-rank buffers. Stateless apart from the
 * world size; all methods validate that group ranks are in range and
 * that participating buffers agree in shape.
 */
class Communicator
{
  public:
    explicit Communicator(int world_size);

    int worldSize() const { return world_size_; }

    /**
     * AlltoAll over @p group: with G = group.size(), each member's
     * buffer is split into G equal row-chunks and chunk d of member s
     * becomes chunk s of member d.
     *
     * @param algo           Exchange algorithm; hierarchical variants
     *                       produce bit-identical results to direct.
     * @param ranks_per_node Node width used by the hierarchical
     *                       algorithms (consecutive group members form
     *                       a node); 1 degenerates to direct.
     */
    void allToAll(std::vector<Tensor> &bufs, const Group &group,
                  A2aAlgo algo = A2aAlgo::NcclDirect,
                  int ranks_per_node = 1) const;

    /** Concatenate members' buffers along dim 0, result on every member. */
    void allGather(std::vector<Tensor> &bufs, const Group &group) const;

    /** Elementwise-sum members' buffers, then split the sum into G row
     *  chunks; member i keeps chunk i. */
    void reduceScatter(std::vector<Tensor> &bufs, const Group &group) const;

    /** Elementwise-sum members' buffers, result on every member. */
    void allReduce(std::vector<Tensor> &bufs, const Group &group) const;

    /** Copy the buffer of global rank @p root to every group member. */
    void broadcast(std::vector<Tensor> &bufs, const Group &group,
                   int root) const;

  private:
    void checkGroup(const std::vector<Tensor> &bufs, const Group &group,
                    const char *what) const;

    int world_size_ = 1;
};

} // namespace fsmoe::dist

#endif // FSMOE_DIST_COMMUNICATOR_H
