#include "dist/communicator.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "base/logging.h"

namespace fsmoe::dist {

ParallelLayout::ParallelLayout(int num_ep, int num_esp)
    : num_ep_(num_ep), num_esp_(num_esp)
{
    FSMOE_CHECK_ARG(num_ep >= 1 && num_esp >= 1,
                    "parallel group sizes must be >= 1, got EP=", num_ep,
                    " ESP=", num_esp);
}

Group
ParallelLayout::epGroup(int esp) const
{
    FSMOE_CHECK_ARG(esp >= 0 && esp < num_esp_, "esp index out of range");
    Group g;
    g.reserve(num_ep_);
    for (int ep = 0; ep < num_ep_; ++ep)
        g.push_back(rankOf(ep, esp));
    return g;
}

Group
ParallelLayout::espGroup(int ep) const
{
    FSMOE_CHECK_ARG(ep >= 0 && ep < num_ep_, "ep index out of range");
    Group g;
    g.reserve(num_esp_);
    for (int esp = 0; esp < num_esp_; ++esp)
        g.push_back(rankOf(ep, esp));
    return g;
}

Group
ParallelLayout::worldGroup() const
{
    Group g;
    g.reserve(worldSize());
    for (int r = 0; r < worldSize(); ++r)
        g.push_back(r);
    return g;
}

Communicator::Communicator(int world_size) : world_size_(world_size)
{
    FSMOE_CHECK_ARG(world_size >= 1, "world size must be >= 1");
}

void
Communicator::checkGroup(const std::vector<Tensor> &bufs, const Group &group,
                         const char *what) const
{
    FSMOE_CHECK_ARG(!group.empty(), what, ": empty group");
    FSMOE_CHECK_ARG(bufs.size() >= static_cast<size_t>(world_size_), what,
                    ": need one buffer per rank");
    for (size_t i = 0; i < group.size(); ++i) {
        const int r = group[i];
        FSMOE_CHECK_ARG(r >= 0 && r < world_size_, what, ": rank ", r,
                        " outside world of ", world_size_);
        FSMOE_CHECK_ARG(bufs[r].sameShape(bufs[group[0]]), what,
                        ": group buffers must agree in shape");
        for (size_t j = 0; j < i; ++j)
            FSMOE_CHECK_ARG(group[j] != r, what, ": rank ", r,
                            " appears twice in the group");
    }
}

namespace {

/**
 * One staged exchange pass: for every group member d and every chunk
 * slot c, the new buffer's rows [c*cr, (c+1)*cr) are copied from chunk
 * src(d, c).second of member src(d, c).first (indices are positions
 * within the group). All three AlltoAll algorithms are compositions of
 * such passes, which makes them pure data movement — bit-identical by
 * construction.
 */
void
exchangePass(std::vector<Tensor> &bufs, const Group &group,
             const std::function<std::pair<int, int>(int, int)> &src)
{
    const int g = static_cast<int>(group.size());
    const int64_t rows = bufs[group[0]].size(0);
    FSMOE_CHECK_ARG(rows % g == 0, "AlltoAll rows (", rows,
                    ") must divide by group size (", g, ")");
    const int64_t cr = rows / g;                       // rows per chunk
    const int64_t rw = bufs[group[0]].numel() / rows;  // row width

    std::vector<Tensor> out(g);
    for (int d = 0; d < g; ++d) {
        out[d] = Tensor(bufs[group[d]].shape());
        for (int c = 0; c < g; ++c) {
            auto [sm, sc] = src(d, c);
            const Tensor &from = bufs[group[sm]];
            std::copy(from.data() + sc * cr * rw,
                      from.data() + (sc + 1) * cr * rw,
                      out[d].data() + c * cr * rw);
        }
    }
    for (int d = 0; d < g; ++d)
        bufs[group[d]] = std::move(out[d]);
}

} // namespace

void
Communicator::allToAll(std::vector<Tensor> &bufs, const Group &group,
                       A2aAlgo algo, int ranks_per_node) const
{
    checkGroup(bufs, group, "AlltoAll");
    const int g = static_cast<int>(group.size());
    const int rpn = ranks_per_node;

    if (algo == A2aAlgo::NcclDirect || rpn <= 1 || g % rpn != 0 ||
        g == rpn) {
        // Direct pairwise exchange: out[d].chunk(s) = in[s].chunk(d).
        exchangePass(bufs, group,
                     [](int d, int c) { return std::make_pair(c, d); });
        return;
    }

    // Hierarchical staging. Group member (m, i) = index m*rpn + i,
    // where m is the node and i the local slot. The intra-node pass
    // exchanges chunks between slots of one node; the inter-node pass
    // exchanges node-aggregated messages between equal slots of all
    // nodes. Composing the two in either order yields the direct
    // permutation; the order is what distinguishes 1DH from 2DH.
    auto intra = [rpn](int d, int c) {
        const int m = d / rpn, i = d % rpn;
        const int mm = c / rpn, j = c % rpn;
        return std::make_pair(m * rpn + j, mm * rpn + i);
    };
    auto inter = [rpn](int d, int c) {
        const int m = d / rpn, i = d % rpn;
        const int mm = c / rpn, j = c % rpn;
        return std::make_pair(mm * rpn + i, m * rpn + j);
    };
    if (algo == A2aAlgo::Hier1D) {
        exchangePass(bufs, group, intra);
        exchangePass(bufs, group, inter);
    } else {
        exchangePass(bufs, group, inter);
        exchangePass(bufs, group, intra);
    }
}

void
Communicator::allGather(std::vector<Tensor> &bufs, const Group &group) const
{
    checkGroup(bufs, group, "AllGather");
    const int g = static_cast<int>(group.size());
    const int64_t rows = bufs[group[0]].size(0);
    const int64_t rw = bufs[group[0]].numel() / rows;

    std::vector<int64_t> shape = bufs[group[0]].shape();
    shape[0] = rows * g;
    Tensor gathered(shape);
    for (int s = 0; s < g; ++s) {
        std::copy(bufs[group[s]].data(),
                  bufs[group[s]].data() + rows * rw,
                  gathered.data() + s * rows * rw);
    }
    for (int s = 0; s < g; ++s)
        bufs[group[s]] = gathered;
}

void
Communicator::reduceScatter(std::vector<Tensor> &bufs,
                            const Group &group) const
{
    checkGroup(bufs, group, "ReduceScatter");
    const int g = static_cast<int>(group.size());
    const int64_t rows = bufs[group[0]].size(0);
    FSMOE_CHECK_ARG(rows % g == 0, "ReduceScatter rows (", rows,
                    ") must divide by group size (", g, ")");
    const int64_t cr = rows / g;
    const int64_t rw = bufs[group[0]].numel() / rows;

    Tensor sum = bufs[group[0]];
    for (int s = 1; s < g; ++s)
        sum.add_(bufs[group[s]]);

    std::vector<int64_t> shape = sum.shape();
    shape[0] = cr;
    for (int s = 0; s < g; ++s) {
        Tensor chunk(shape);
        std::copy(sum.data() + s * cr * rw, sum.data() + (s + 1) * cr * rw,
                  chunk.data());
        bufs[group[s]] = std::move(chunk);
    }
}

void
Communicator::allReduce(std::vector<Tensor> &bufs, const Group &group) const
{
    checkGroup(bufs, group, "AllReduce");
    Tensor sum = bufs[group[0]];
    for (size_t s = 1; s < group.size(); ++s)
        sum.add_(bufs[group[s]]);
    for (int r : group)
        bufs[r] = sum;
}

void
Communicator::broadcast(std::vector<Tensor> &bufs, const Group &group,
                        int root) const
{
    checkGroup(bufs, group, "Broadcast");
    FSMOE_CHECK_ARG(std::find(group.begin(), group.end(), root) !=
                        group.end(),
                    "broadcast root ", root, " not in group");
    for (int r : group)
        bufs[r] = bufs[root];
}

} // namespace fsmoe::dist
