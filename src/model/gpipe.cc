#include "model/gpipe.h"

#include <algorithm>

#include "base/logging.h"

namespace fsmoe::model {

GpipeResult
gpipeIteration(const core::Schedule &schedule, const ModelSpec &spec,
               const sim::ClusterSpec &cluster, int num_stages,
               int micro_batches)
{
    FSMOE_CHECK_ARG(num_stages >= 1, "need at least one stage");
    FSMOE_CHECK_ARG(micro_batches >= 1, "need at least one micro-batch");

    // One stage holds an even slice of the layers and sees one
    // micro-batch at a time. Under pipeline parallelism, each stage
    // only spans the nodes assigned to it.
    ModelSpec stage = spec;
    stage.numLayers = std::max(1, spec.numLayers / num_stages);
    stage.layer.batch =
        std::max<int64_t>(1, spec.layer.batch / micro_batches);

    core::ParallelConfig par = paperParallelism(cluster, num_stages);
    core::ModelCost cost = makeModelCost(stage, cluster, par);

    // Split the stage simulation into its forward and backward halves
    // by simulating forward-only (a model with zero backward would
    // distort schedule choices), so instead take the full iteration
    // and apportion it by the layers' analytic forward/backward mass.
    double full = schedule.iterationTimeMs(cost);
    double fwd_mass = 0.0, bwd_mass = 0.0;
    for (const core::LayerCost &lc : cost.layers) {
        fwd_mass += lc.fwd.a2a * 2 + lc.fwd.allgather + lc.fwd.reducescatter +
                    lc.fwd.experts + lc.fwd.attention;
        bwd_mass += lc.bwd.a2a * 2 + lc.bwd.allgather + lc.bwd.reducescatter +
                    lc.bwd.experts + lc.bwd.attention +
                    lc.bwd.gradAllReduce;
    }
    double fwd_share = fwd_mass / std::max(1e-9, fwd_mass + bwd_mass);

    GpipeResult result;
    result.numStages = num_stages;
    result.microBatches = micro_batches;
    result.stageFwdMs = full * fwd_share;
    result.stageBwdMs = full * (1.0 - fwd_share);
    const double slots = micro_batches + num_stages - 1;
    result.iterationMs = slots * (result.stageFwdMs + result.stageBwdMs);
    return result;
}

} // namespace fsmoe::model
