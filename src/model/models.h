/**
 * @file
 * Real-world model configurations used in the paper's evaluation
 * (§6.4): an MoE model based on GPT-2 XL [38], Mixtral-7B and
 * Mixtral-22B [20], plus builders that turn a model + testbed +
 * parallelism into the ModelCost a schedule consumes.
 */
#ifndef FSMOE_MODEL_MODELS_H
#define FSMOE_MODEL_MODELS_H

#include <string>
#include <vector>

#include "core/moe_config.h"
#include "core/schedules/schedule.h"
#include "sim/cluster.h"

namespace fsmoe::model {

/** A named transformer-MoE model. */
struct ModelSpec
{
    std::string name;
    core::LayerShape layer; ///< Shape of each MoE transformer layer.
    int numLayers = 1;      ///< Generalized (attention+MoE) layers.
};

/**
 * GPT2-XL-based MoE (M=1600, H=4M, 25 heads). @p num_experts follows
 * the paper's rule E = number of nodes.
 */
ModelSpec gpt2XlMoe(int num_experts, int64_t batch = 1,
                    int64_t seq_len = 1024, int num_layers = 24);

/** Mixtral-7B: M=4096, H=14336, 32 heads, SwiGLU experts, E=8. */
ModelSpec mixtral7B(int num_experts, int64_t batch = 1,
                    int64_t seq_len = 1024, int num_layers = 32);

/** Mixtral-22B-style: M=6144, H=16384, 48 heads, 33 layers. */
ModelSpec mixtral22B(int num_experts, int64_t batch = 1,
                     int64_t seq_len = 1024, int num_layers = 33);

/**
 * The paper's parallelism rule for a testbed: N_MP = N_ESP = GPUs per
 * node, N_EP = number of nodes (§6.1/§6.4).
 */
core::ParallelConfig paperParallelism(const sim::ClusterSpec &cluster,
                                      int num_pp = 1);

/**
 * Assemble the ModelCost for @p spec on @p cluster: derives every
 * layer's workload and prices it with the cluster's ground-truth
 * performance models.
 */
core::ModelCost makeModelCost(const ModelSpec &spec,
                              const sim::ClusterSpec &cluster,
                              const core::ParallelConfig &par,
                              int r_max = 16);

} // namespace fsmoe::model

#endif // FSMOE_MODEL_MODELS_H
