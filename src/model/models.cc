#include "core/dispatch.h"
#include "model/models.h"

#include "base/logging.h"

namespace fsmoe::model {

ModelSpec
gpt2XlMoe(int num_experts, int64_t batch, int64_t seq_len, int num_layers)
{
    ModelSpec spec;
    spec.name = "GPT2-XL-MoE";
    spec.layer.batch = batch;
    spec.layer.seqLen = seq_len;
    spec.layer.embed = 1600;
    spec.layer.hidden = 6400;
    spec.layer.numExperts = num_experts;
    spec.layer.topK = 2;
    spec.layer.capacityFactor = 1.2;
    spec.layer.numHeads = 25;
    spec.layer.ffn = core::FfnType::Simple;
    spec.numLayers = num_layers;
    return spec;
}

ModelSpec
mixtral7B(int num_experts, int64_t batch, int64_t seq_len, int num_layers)
{
    ModelSpec spec;
    spec.name = "Mixtral-7B";
    spec.layer.batch = batch;
    spec.layer.seqLen = seq_len;
    spec.layer.embed = 4096;
    spec.layer.hidden = 14336;
    spec.layer.numExperts = num_experts;
    spec.layer.topK = 2;
    spec.layer.capacityFactor = 1.2;
    spec.layer.numHeads = 32;
    spec.layer.ffn = core::FfnType::Mixtral;
    spec.numLayers = num_layers;
    return spec;
}

ModelSpec
mixtral22B(int num_experts, int64_t batch, int64_t seq_len, int num_layers)
{
    ModelSpec spec;
    spec.name = "Mixtral-22B";
    spec.layer.batch = batch;
    spec.layer.seqLen = seq_len;
    spec.layer.embed = 6144;
    spec.layer.hidden = 16384;
    spec.layer.numExperts = num_experts;
    spec.layer.topK = 2;
    spec.layer.capacityFactor = 1.2;
    spec.layer.numHeads = 48;
    spec.layer.ffn = core::FfnType::Mixtral;
    spec.numLayers = num_layers;
    return spec;
}

core::ParallelConfig
paperParallelism(const sim::ClusterSpec &cluster, int num_pp)
{
    FSMOE_CHECK_ARG(num_pp >= 1, "pipeline stages must be positive");
    core::ParallelConfig par;
    par.numMp = cluster.gpusPerNode;
    par.numEsp = cluster.gpusPerNode;
    par.numEp = std::max(1, cluster.numNodes / num_pp);
    par.numDp = par.numEp;
    par.numPp = num_pp;
    return par;
}

core::ModelCost
makeModelCost(const ModelSpec &spec, const sim::ClusterSpec &cluster,
              const core::ParallelConfig &par, int r_max)
{
    core::ModelCost cost;
    cost.models = core::PerfModelSet::fromCluster(cluster);
    cost.rMax = r_max;
    cost.layers.reserve(spec.numLayers);
    for (int i = 0; i < spec.numLayers; ++i)
        cost.layers.push_back(
            core::makeLayerCost(cost.models, spec.layer, par));
    // DeepSpeed-MoE's 2DH AlltoAll overhead at this workload's actual
    // message size (extra intra-node staging pass; see dispatch.h).
    if (!cost.layers.empty()) {
        double bytes = cost.layers[0].workload.a2aBytes;
        double direct =
            core::a2aCostMs(cluster, dist::A2aAlgo::NcclDirect, bytes);
        double staged =
            core::a2aCostMs(cluster, dist::A2aAlgo::Hier2D, bytes);
        if (direct > 0.0)
            cost.dsA2aOverhead = std::max(1.0, staged / direct);
    }
    return cost;
}

} // namespace fsmoe::model
