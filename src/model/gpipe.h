/**
 * @file
 * GPipe-style pipeline parallelism (paper Fig. 8 setting, [15]).
 *
 * With N_PP stages and m micro-batches, GPipe runs all forward
 * micro-batches through the stage pipeline, then all backward ones;
 * with balanced stages the iteration occupies (m + s - 1) forward
 * slots and (m + s - 1) backward slots of the per-micro-batch stage
 * time. Each stage slot's cost comes from simulating the stage's
 * layer slice under the chosen MoE schedule, so schedules that
 * accelerate a stage shorten every slot.
 */
#ifndef FSMOE_MODEL_GPIPE_H
#define FSMOE_MODEL_GPIPE_H

#include "core/schedules/schedule.h"
#include "model/models.h"

namespace fsmoe::model {

/** Result of a GPipe iteration estimate. */
struct GpipeResult
{
    double iterationMs = 0.0; ///< Full iteration time.
    double stageFwdMs = 0.0;  ///< Per-micro-batch forward slot.
    double stageBwdMs = 0.0;  ///< Per-micro-batch backward slot.
    int numStages = 1;
    int microBatches = 1;
};

/**
 * Estimate one training iteration of @p spec under pipeline
 * parallelism.
 *
 * @param schedule      The MoE schedule applied inside each stage.
 * @param spec          The model; its layers are split evenly across
 *                      stages, and the batch across micro-batches.
 * @param cluster       Simulated testbed.
 * @param num_stages    N_PP.
 * @param micro_batches GPipe micro-batch count m.
 */
GpipeResult gpipeIteration(const core::Schedule &schedule,
                           const ModelSpec &spec,
                           const sim::ClusterSpec &cluster, int num_stages,
                           int micro_batches);

} // namespace fsmoe::model

#endif // FSMOE_MODEL_GPIPE_H
