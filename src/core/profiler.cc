#include "core/profiler.h"

#include <random>

#include "base/logging.h"
#include "solver/least_squares.h"

namespace fsmoe::core {

Profiler::Profiler(const sim::ClusterSpec &spec, uint64_t seed, int runs)
    : spec_(spec), seed_(seed), runs_(runs)
{
    FSMOE_CHECK_ARG(runs >= 1, "profiler needs at least one run per point");
}

double
Profiler::measureOnce(const sim::CostCoeffs &truth, double n,
                      uint64_t sample_index) const
{
    double t = truth(n);
    if (spec_.measurementNoise > 0.0) {
        // Deterministic per-sample noise stream.
        std::mt19937_64 rng(seed_ ^ (sample_index * 0x9e3779b97f4a7c15ULL));
        std::normal_distribution<double> noise(0.0, spec_.measurementNoise);
        t *= 1.0 + noise(rng);
        if (t < 0.0)
            t = 0.0;
    }
    return t;
}

ProfileResult
Profiler::profile(ProfileOp op) const
{
    const sim::CostCoeffs *truth = nullptr;
    std::vector<double> volumes;
    if (op == ProfileOp::Gemm) {
        truth = &spec_.gemm;
        // 2^19 .. 12*2^19 work units in 2^19 steps (paper §6.2). The
        // paper's GEMM axis reaches ~3e10; scale the element counts to
        // that magnitude by treating each step as 2^19 * 4096 MACs.
        for (int i = 1; i <= 12; ++i)
            volumes.push_back(static_cast<double>(i) * (1 << 19) * 4096.0);
    } else {
        switch (op) {
          case ProfileOp::AlltoAll: truth = &spec_.alltoall; break;
          case ProfileOp::AllGather: truth = &spec_.allgather; break;
          case ProfileOp::ReduceScatter: truth = &spec_.reducescatter; break;
          case ProfileOp::AllReduce: truth = &spec_.allreduce; break;
          default: FSMOE_PANIC("unhandled profile op");
        }
        // 2^18 .. 24*2^18 float elements in 2^18 steps, 4 bytes each.
        for (int i = 1; i <= 24; ++i)
            volumes.push_back(static_cast<double>(i) * (1 << 18) * 4.0);
    }

    ProfileResult result;
    result.op = op;
    result.sizes = volumes;
    result.measured.reserve(volumes.size());
    uint64_t sample = static_cast<uint64_t>(op) * 1000003ULL;
    for (double n : volumes) {
        double sum = 0.0;
        for (int r = 0; r < runs_; ++r)
            sum += measureOnce(*truth, n, sample++);
        result.measured.push_back(sum / runs_);
    }

    auto fit = solver::fitLine(result.sizes, result.measured);
    result.model = {fit.intercept, fit.slope, fit.r2};
    return result;
}

PerfModelSet
Profiler::profileAll() const
{
    PerfModelSet set;
    set.alltoall = profile(ProfileOp::AlltoAll).model;
    set.allgather = profile(ProfileOp::AllGather).model;
    set.reducescatter = profile(ProfileOp::ReduceScatter).model;
    set.allreduce = profile(ProfileOp::AllReduce).model;
    set.gemm = profile(ProfileOp::Gemm).model;
    return set;
}

} // namespace fsmoe::core
