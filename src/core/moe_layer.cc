#include "core/moe_layer.h"

#include <cmath>

#include "base/logging.h"

namespace fsmoe::core {

MoeLayer::MoeLayer(const MoeLayerOptions &options)
    : options_(options), layout_(options.numEp, options.numEsp),
      comm_(layout_.worldSize()), order_(options.order)
{
    FSMOE_CHECK_ARG(options.numExperts % options.numEp == 0,
                    "E = ", options.numExperts,
                    " must be divisible by numEp = ", options.numEp);
    FSMOE_CHECK_ARG(options.hidden % options.numEsp == 0,
                    "H = ", options.hidden,
                    " must be divisible by numEsp = ", options.numEsp);
    const int world = layout_.worldSize();
    const int e_loc = options.numExperts / options.numEp;

    // Replicated gates: identical weights on every rank by seeding
    // each construction identically.
    gates_.reserve(world);
    for (int r = 0; r < world; ++r) {
        Rng gate_rng(options.seed);
        gates_.push_back(makeGate(options.gate, options.embed,
                                  options.numExperts, options.topK,
                                  gate_rng));
    }

    // Experts: global expert e is generated from seed+e so any layout
    // (including the single-rank reference) builds the same weights,
    // then sharded across the rank's ESP position.
    experts_.resize(world);
    for (int r = 0; r < world; ++r) {
        const int ep = layout_.epOf(r);
        const int esp = layout_.espOf(r);
        experts_[r].reserve(e_loc);
        for (int j = 0; j < e_loc; ++j) {
            const int global = ep * e_loc + j;
            Rng expert_rng(options.seed + 1000 + global);
            auto full = makeExpert(options.ffn, options.embed,
                                   options.hidden, expert_rng);
            experts_[r].push_back(full->shard(esp, options.numEsp));
        }
    }
    maps_.resize(world);
    expertOut_.resize(world);
}

void
MoeLayer::addCallback(std::shared_ptr<CallbackBase> callback)
{
    FSMOE_CHECK_ARG(callback != nullptr, "null callback");
    callbacks_.push_back(std::move(callback));
}

void
MoeLayer::runHooks(HookPoint point, std::vector<Tensor> &payloads)
{
    for (auto &cb : callbacks_) {
        for (int r = 0; r < layout_.worldSize(); ++r) {
            HookContext ctx{point, r, &payloads[r]};
            switch (point) {
              case HookPoint::BeforeMoeStart: cb->beforeMoeStart(ctx); break;
              case HookPoint::BeforeDispatch: cb->beforeDispatch(ctx); break;
              case HookPoint::AfterDispatch: cb->afterDispatch(ctx); break;
              case HookPoint::BeforeCombine: cb->beforeCombine(ctx); break;
              case HookPoint::AfterCombine: cb->afterCombine(ctx); break;
              case HookPoint::BeforeMoeEnd: cb->beforeMoeEnd(ctx); break;
            }
        }
    }
}

int64_t
MoeLayer::capacity(int64_t tokens_per_rank) const
{
    if (options_.capacityFactor <= 0.0)
        return tokens_per_rank; // no-drop: an expert can take any token
                                // at most once per top-k selection
    double t = options_.capacityFactor * options_.topK *
               static_cast<double>(tokens_per_rank) / options_.numExperts;
    return std::max<int64_t>(1, static_cast<int64_t>(std::ceil(t)));
}

int64_t
MoeLayer::dropped(int rank) const
{
    return maps_.at(rank).droppedCount();
}

ExpertBase &
MoeLayer::expertShard(int rank, int j)
{
    return *experts_.at(rank).at(j);
}

std::vector<Tensor>
MoeLayer::forward(const std::vector<Tensor> &xs)
{
    const int world = layout_.worldSize();
    FSMOE_CHECK_ARG(static_cast<int>(xs.size()) == world,
                    "need one input tensor per rank");
    const int64_t n = xs[0].size(0);
    for (const Tensor &x : xs) {
        FSMOE_CHECK_ARG(x.dim() == 2 && x.size(0) == n &&
                            x.size(1) == options_.embed,
                        "rank inputs must all be (n, M)");
    }
    lastTokens_ = n;
    const int64_t cap = capacity(n);
    const int e_loc = options_.numExperts / options_.numEp;

    std::vector<Tensor> bufs = xs;
    runHooks(HookPoint::BeforeMoeStart, bufs);

    // Gate + order on every rank, with the optional load-balancing
    // auxiliary loss computed from the routing decision.
    aux_.assign(world, AuxLossResult{});
    lastAuxLoss_ = 0.0;
    for (int r = 0; r < world; ++r) {
        GateResult routing = gates_[r]->forward(bufs[r]);
        if (options_.auxLossScale > 0.0) {
            aux_[r] = loadBalanceLoss(routing, options_.numExperts, n,
                                      options_.auxLossScale);
            lastAuxLoss_ += aux_[r].loss;
        }
        bufs[r] = order_.forward(bufs[r], routing, options_.numExperts,
                                 cap, maps_[r]);
    }

    runHooks(HookPoint::BeforeDispatch, bufs);
    // AlltoAll dispatch across each EP group.
    for (int esp = 0; esp < options_.numEsp; ++esp)
        comm_.allToAll(bufs, layout_.epGroup(esp), options_.a2a);
    runHooks(HookPoint::AfterDispatch, bufs);

    // ESP-AllGather within each node so every shard sees all tokens.
    for (int ep = 0; ep < options_.numEp; ++ep)
        comm_.allGather(bufs, layout_.espGroup(ep));

    // Sharded expert computation. The gathered buffer on each rank is
    // (numEsp, numEp, e_loc, T, M) flattened along dim 0.
    for (int r = 0; r < world; ++r) {
        const int64_t m = options_.embed;
        const int64_t rows_in = cap * layout_.numEsp() * layout_.numEp();
        Tensor out(bufs[r].shape());
        for (int j = 0; j < e_loc; ++j) {
            Tensor xin({rows_in, m});
            int64_t dst = 0;
            for (int s = 0; s < layout_.numEsp(); ++s) {
                for (int p = 0; p < layout_.numEp(); ++p) {
                    int64_t block = ((static_cast<int64_t>(s) *
                                          layout_.numEp() + p) * e_loc + j) *
                                    cap;
                    std::copy(bufs[r].data() + block * m,
                              bufs[r].data() + (block + cap) * m,
                              xin.data() + dst * m);
                    dst += cap;
                }
            }
            Tensor y = experts_[r][j]->forward(xin);
            int64_t src = 0;
            for (int s = 0; s < layout_.numEsp(); ++s) {
                for (int p = 0; p < layout_.numEp(); ++p) {
                    int64_t block = ((static_cast<int64_t>(s) *
                                          layout_.numEp() + p) * e_loc + j) *
                                    cap;
                    std::copy(y.data() + src * m,
                              y.data() + (src + cap) * m,
                              out.data() + block * m);
                    src += cap;
                }
            }
        }
        bufs[r] = std::move(out);
    }

    // ESP-ReduceScatter sums shard partials and splits tokens back.
    for (int ep = 0; ep < options_.numEp; ++ep)
        comm_.reduceScatter(bufs, layout_.espGroup(ep));

    runHooks(HookPoint::BeforeCombine, bufs);
    // AlltoAll combine returns tokens to their source ranks.
    for (int esp = 0; esp < options_.numEsp; ++esp)
        comm_.allToAll(bufs, layout_.epGroup(esp), options_.a2a);
    runHooks(HookPoint::AfterCombine, bufs);

    // I-order: weighted combine back to token space.
    std::vector<Tensor> outs(world);
    for (int r = 0; r < world; ++r) {
        expertOut_[r] = bufs[r].reshape(
            {options_.numExperts, cap, options_.embed});
        outs[r] = order_.combine(expertOut_[r], maps_[r]);
    }
    runHooks(HookPoint::BeforeMoeEnd, outs);
    return outs;
}

std::vector<Tensor>
MoeLayer::backward(const std::vector<Tensor> &d_out)
{
    const int world = layout_.worldSize();
    FSMOE_CHECK_ARG(static_cast<int>(d_out.size()) == world,
                    "need one gradient tensor per rank");
    FSMOE_CHECK_ARG(lastTokens_ > 0, "backward before forward");
    const int64_t cap = capacity(lastTokens_);
    const int e_loc = options_.numExperts / options_.numEp;
    const int64_t m = options_.embed;

    // I-order backward: gradients w.r.t. expert outputs and gate
    // combine weights.
    std::vector<Tensor> bufs(world);
    std::vector<std::vector<float>> d_weights(world);
    for (int r = 0; r < world; ++r) {
        Tensor d_expert_out;
        order_.combineBackward(d_out[r], expertOut_[r], maps_[r],
                               d_expert_out, d_weights[r]);
        bufs[r] = std::move(d_expert_out);
    }

    // Adjoint of the combine AlltoAll is an AlltoAll.
    for (int esp = 0; esp < options_.numEsp; ++esp)
        comm_.allToAll(bufs, layout_.epGroup(esp), options_.a2a);

    // Adjoint of ESP-ReduceScatter is ESP-AllGather.
    for (int ep = 0; ep < options_.numEp; ++ep)
        comm_.allGather(bufs, layout_.espGroup(ep));

    // Expert backward on the gathered gradient rows.
    const int64_t rows_in = cap * layout_.numEsp() * layout_.numEp();
    for (int r = 0; r < world; ++r) {
        Tensor d_gathered(bufs[r].shape());
        for (int j = 0; j < e_loc; ++j) {
            Tensor dy({rows_in, m});
            int64_t dst = 0;
            for (int s = 0; s < layout_.numEsp(); ++s) {
                for (int p = 0; p < layout_.numEp(); ++p) {
                    int64_t block = ((static_cast<int64_t>(s) *
                                          layout_.numEp() + p) * e_loc + j) *
                                    cap;
                    std::copy(bufs[r].data() + block * m,
                              bufs[r].data() + (block + cap) * m,
                              dy.data() + dst * m);
                    dst += cap;
                }
            }
            Tensor dxin = experts_[r][j]->backward(dy);
            int64_t src = 0;
            for (int s = 0; s < layout_.numEsp(); ++s) {
                for (int p = 0; p < layout_.numEp(); ++p) {
                    int64_t block = ((static_cast<int64_t>(s) *
                                          layout_.numEp() + p) * e_loc + j) *
                                    cap;
                    std::copy(dxin.data() + src * m,
                              dxin.data() + (src + cap) * m,
                              d_gathered.data() + block * m);
                    src += cap;
                }
            }
        }
        bufs[r] = std::move(d_gathered);
    }

    // Adjoint of ESP-AllGather is ESP-ReduceScatter.
    for (int ep = 0; ep < options_.numEp; ++ep)
        comm_.reduceScatter(bufs, layout_.espGroup(ep));

    // Adjoint of the dispatch AlltoAll is an AlltoAll.
    for (int esp = 0; esp < options_.numEsp; ++esp)
        comm_.allToAll(bufs, layout_.epGroup(esp), options_.a2a);

    // Order backward (token gather) plus the gate's routing gradient,
    // with the auxiliary-loss gradient folded into the combine-weight
    // gradients.
    std::vector<Tensor> dxs(world);
    for (int r = 0; r < world; ++r) {
        Tensor d_disp = bufs[r].reshape({options_.numExperts, cap, m});
        dxs[r] = order_.backward(d_disp, maps_[r]);
        if (!aux_[r].dWeights.empty()) {
            FSMOE_ASSERT(aux_[r].dWeights.size() == d_weights[r].size(),
                         "aux gradient misaligned with assignments");
            for (size_t i = 0; i < d_weights[r].size(); ++i)
                d_weights[r][i] += aux_[r].dWeights[i];
        }
        dxs[r].add_(gates_[r]->backward(d_weights[r]));
    }
    return dxs;
}

void
MoeLayer::zeroGrad()
{
    for (auto &g : gates_)
        g->zeroGrad();
    for (auto &rank_experts : experts_)
        for (auto &e : rank_experts)
            e->zeroGrad();
}

void
MoeLayer::syncReplicatedGrads()
{
    const int world = layout_.worldSize();
    if (world == 1)
        return;
    const size_t num_params = gates_[0]->grads().size();
    dist::Group everyone = layout_.worldGroup();
    for (size_t pi = 0; pi < num_params; ++pi) {
        std::vector<Tensor> bufs(world);
        for (int r = 0; r < world; ++r)
            bufs[r] = *gates_[r]->grads()[pi];
        comm_.allReduce(bufs, everyone);
        for (int r = 0; r < world; ++r) {
            bufs[r].scale_(1.0f / world);
            *gates_[r]->grads()[pi] = bufs[r];
        }
    }
}

void
MoeLayer::sgdStep(float lr)
{
    auto update = [lr](std::vector<Tensor *> params,
                       std::vector<Tensor *> grads) {
        for (size_t i = 0; i < params.size(); ++i) {
            Tensor *p = params[i];
            const Tensor *g = grads[i];
            for (int64_t j = 0; j < p->numel(); ++j)
                p->flat(j) -= lr * g->flat(j);
        }
    };
    for (auto &g : gates_)
        update(g->params(), g->grads());
    for (auto &rank_experts : experts_)
        for (auto &e : rank_experts)
            update(e->params(), e->grads());
}

} // namespace fsmoe::core
