/**
 * @file
 * Dispatch/Combine — the collective-communication sub-module (§3.1).
 *
 * Functionally, token dispatch is an AlltoAll over the EP group, which
 * dist::Communicator performs with any of the three supported
 * algorithms (NCCL direct, 1DH, 2DH); this header adds the *cost*
 * models the scheduler uses to price each algorithm on a cluster:
 *
 *  - NCCL direct: every rank exchanges P-1 messages of n/P bytes over
 *    the inter-node fabric; t = alpha + beta*n.
 *  - 1DH-A2A (Hetu): an intra-node aggregation stage first, so the
 *    inter-node stage sends fewer, larger messages: lower effective
 *    startup, plus the intra-node stage's cost.
 *  - 2DH-A2A (Tutel/DeepSpeed): the same two stages in the opposite
 *    order, aligning message strides; same asymptotic behaviour with
 *    slightly different staging.
 */
#ifndef FSMOE_CORE_DISPATCH_H
#define FSMOE_CORE_DISPATCH_H

#include "dist/communicator.h"
#include "sim/cluster.h"

namespace fsmoe::core {

/** Printable AlltoAll algorithm name. */
const char *a2aAlgoName(dist::A2aAlgo algo);

/**
 * Predicted time (ms) of one AlltoAll of @p bytes per GPU on
 * @p cluster using @p algo.
 *
 * The hierarchical variants pay an extra intra-node pass of the full
 * buffer but amortise the inter-node startup over ranks_per_node
 * larger messages (the 2.12x message-count reduction NCCL's blog and
 * Tutel report); with one GPU per node they degenerate to direct.
 */
double a2aCostMs(const sim::ClusterSpec &cluster, dist::A2aAlgo algo,
                 double bytes);

} // namespace fsmoe::core

#endif // FSMOE_CORE_DISPATCH_H
