#include "core/dispatch.h"

#include "base/logging.h"

namespace fsmoe::core {

const char *
a2aAlgoName(dist::A2aAlgo algo)
{
    switch (algo) {
      case dist::A2aAlgo::NcclDirect: return "nccl-a2a";
      case dist::A2aAlgo::Hier1D: return "1dh-a2a";
      case dist::A2aAlgo::Hier2D: return "2dh-a2a";
      default: return "?";
    }
}

double
a2aCostMs(const sim::ClusterSpec &cluster, dist::A2aAlgo algo, double bytes)
{
    FSMOE_CHECK_ARG(bytes >= 0.0, "negative message size");
    const double direct = cluster.alltoall(bytes);
    if (algo == dist::A2aAlgo::NcclDirect || cluster.gpusPerNode <= 1)
        return direct;

    // Hierarchical variants: one intra-node staging pass over the full
    // buffer, then an inter-node exchange whose startup is amortised
    // over ranks_per_node-fold larger messages. The per-byte interval
    // of the inter-node stage is unchanged (the same bytes cross the
    // same NICs); only the latency term shrinks.
    const double g = static_cast<double>(cluster.gpusPerNode);
    const double intra = cluster.allgather.alpha +
                         cluster.allgather.beta * bytes;
    const double inter = cluster.alltoall.alpha / g +
                         cluster.alltoall.beta * bytes;
    // 2DH's stride-aligned staging avoids one local transpose pass
    // relative to 1DH, modelled as half the intra startup.
    const double staging = algo == dist::A2aAlgo::Hier2D
                               ? intra - 0.5 * cluster.allgather.alpha
                               : intra;
    return staging + inter;
}

} // namespace fsmoe::core
