#include "core/order.h"

#include <algorithm>

#include "base/logging.h"
#include "tensor/gemm.h"

namespace fsmoe::core {

int64_t
OrderMap::droppedCount() const
{
    int64_t dropped = 0;
    for (int64_t s : assignmentSlot)
        if (s < 0)
            dropped++;
    return dropped;
}

Tensor
Order::forward(const Tensor &x, const GateResult &routing,
               int64_t num_experts, int64_t capacity, OrderMap &map) const
{
    FSMOE_CHECK_ARG(x.dim() == 2, "order expects (n, M) tokens");
    FSMOE_CHECK_ARG(num_experts >= 1 && capacity >= 1,
                    "order needs positive E and T");
    const int64_t n = x.size(0);
    const int64_t m = x.size(1);

    map.numExperts = num_experts;
    map.capacity = capacity;
    map.numTokens = n;
    map.slotToken.assign(num_experts * capacity, -1);
    map.slotWeight.assign(num_experts * capacity, 0.0f);
    map.assignmentSlot.assign(routing.assignments.size(), -1);

    // First-come-first-served slot grant, as in GShard's cumsum-based
    // position assignment.
    std::vector<int64_t> fill(num_experts, 0);
    for (size_t i = 0; i < routing.assignments.size(); ++i) {
        const Assignment &a = routing.assignments[i];
        FSMOE_CHECK_ARG(a.expert >= 0 && a.expert < num_experts,
                        "assignment to unknown expert ", a.expert);
        FSMOE_CHECK_ARG(a.token >= 0 && a.token < n,
                        "assignment of unknown token ", a.token);
        if (fill[a.expert] >= capacity)
            continue; // dropped by capacity factor
        int64_t slot = a.expert * capacity + fill[a.expert]++;
        map.assignmentSlot[i] = slot;
        map.slotToken[slot] = a.token;
        map.slotWeight[slot] = a.weight;
    }

    Tensor out({num_experts, capacity, m});
    if (kind_ == OrderKind::TutelSparse) {
        // SIMT-style scatter: one row copy per occupied slot.
        for (int64_t s = 0; s < num_experts * capacity; ++s) {
            int64_t t = map.slotToken[s];
            if (t < 0)
                continue;
            std::copy(x.data() + t * m, x.data() + (t + 1) * m,
                      out.data() + s * m);
        }
    } else {
        // GShard einsum: dispatched = mask^T * x with a dense one-hot
        // mask of shape (n, E*T).
        Tensor mask({n, num_experts * capacity});
        for (int64_t s = 0; s < num_experts * capacity; ++s) {
            int64_t t = map.slotToken[s];
            if (t >= 0)
                mask.at(t, s) = 1.0f;
        }
        Tensor flat({num_experts * capacity, m});
        gemm(mask, Trans::Yes, x, Trans::No, flat);
        out = flat.reshape({num_experts, capacity, m});
    }
    return out;
}

Tensor
Order::backward(const Tensor &d_dispatched, const OrderMap &map) const
{
    FSMOE_CHECK_ARG(d_dispatched.dim() == 3,
                    "order backward expects (E, T, M)");
    const int64_t m = d_dispatched.size(2);
    Tensor dx({map.numTokens, m});
    for (int64_t s = 0; s < map.numExperts * map.capacity; ++s) {
        int64_t t = map.slotToken[s];
        if (t < 0)
            continue;
        const float *src = d_dispatched.data() + s * m;
        float *dst = dx.data() + t * m;
        for (int64_t c = 0; c < m; ++c)
            dst[c] += src[c];
    }
    return dx;
}

Tensor
Order::combine(const Tensor &expert_out, const OrderMap &map) const
{
    FSMOE_CHECK_ARG(expert_out.dim() == 3, "combine expects (E, T, M)");
    const int64_t m = expert_out.size(2);
    Tensor out({map.numTokens, m});
    for (int64_t s = 0; s < map.numExperts * map.capacity; ++s) {
        int64_t t = map.slotToken[s];
        if (t < 0)
            continue;
        const float w = map.slotWeight[s];
        const float *src = expert_out.data() + s * m;
        float *dst = out.data() + t * m;
        for (int64_t c = 0; c < m; ++c)
            dst[c] += w * src[c];
    }
    return out;
}

void
Order::combineBackward(const Tensor &d_out, const Tensor &expert_out,
                       const OrderMap &map, Tensor &d_expert_out,
                       std::vector<float> &d_weights) const
{
    FSMOE_CHECK_ARG(d_out.dim() == 2 && d_out.size(0) == map.numTokens,
                    "combine backward expects (n, M) gradient");
    const int64_t m = d_out.size(1);
    d_expert_out = Tensor(expert_out.shape());
    d_weights.assign(map.assignmentSlot.size(), 0.0f);

    // Per-slot weight gradients, then scatter to assignment order.
    std::vector<float> slot_dw(map.numExperts * map.capacity, 0.0f);
    for (int64_t s = 0; s < map.numExperts * map.capacity; ++s) {
        int64_t t = map.slotToken[s];
        if (t < 0)
            continue;
        const float w = map.slotWeight[s];
        const float *g = d_out.data() + t * m;
        const float *y = expert_out.data() + s * m;
        float *dy = d_expert_out.data() + s * m;
        float dw = 0.0f;
        for (int64_t c = 0; c < m; ++c) {
            dy[c] = w * g[c];
            dw += g[c] * y[c];
        }
        slot_dw[s] = dw;
    }
    for (size_t i = 0; i < map.assignmentSlot.size(); ++i) {
        int64_t s = map.assignmentSlot[i];
        if (s >= 0)
            d_weights[i] = slot_dw[s];
    }
}

} // namespace fsmoe::core
