/**
 * @file
 * Adaptive gradient partitioning for Gradient-AllReduce (paper §5).
 *
 * Gradient-AllReduce is inter-node traffic and therefore cannot simply
 * ride under an MoE layer whose inter-node link is busy with AlltoAll.
 * The partitioner slices the model's gradient bytes and assigns them to
 * the places in backpropagation where the inter-node link has slack:
 *
 *  - Step 1 (greedy, Eqs. 3-4): every generalized layer (an MoE layer
 *    plus the dense ops before the next one) exposes an overlappable
 *    window — dense compute time outside the MoE pipeline plus the
 *    pipeline-internal slack t_olp,moe of §5.2. Pending gradients from
 *    already-executed layers fill these windows first.
 *
 *  - Step 2 (differential evolution, Eq. 5): gradients that no window
 *    absorbed are assigned as extra t_gar inputs to the per-layer
 *    pipeline solver, which may re-optimise the degree r to swallow
 *    them cheaply; DE searches the assignment minimising the summed
 *    layer times plus the exposed tail.
 *
 * Layers are indexed in *backward execution order*: index 0 is the
 * last model layer, which backpropagation reaches first. Gradients
 * produced by layer j can only overlap layers executed after it
 * (indices > j) — the causality constraint of Eq. 5.
 */
#ifndef FSMOE_CORE_GRAD_PARTITION_H
#define FSMOE_CORE_GRAD_PARTITION_H

#include <vector>

#include "core/perf_model.h"
#include "core/pipeline_solver.h"
#include "solver/differential_evolution.h"

namespace fsmoe::core {

/** One generalized layer (paper §5.2) in backward execution order. */
struct GeneralizedLayer
{
    /// Backward-phase pipeline problem with tGar = 0.
    PipelineProblem moe;
    /// Dense backward compute time outside the MoE pipeline that the
    /// inter-node link can freely overlap (attention etc.), ms.
    double denseOlpMs = 0.0;
    /// Gradient bytes this layer contributes when its backward ends.
    double gradBytes = 0.0;
};

/** Result of the two-step partitioning. */
struct GradPartitionPlan
{
    /// Bytes whose AllReduce is overlapped with dense compute, per layer.
    std::vector<double> denseBytes;
    /// Bytes ridden inside the MoE pipeline (window fill + step 2).
    std::vector<double> moeBytes;
    /// Resulting t_gar handed to the pipeline solver, per layer.
    std::vector<double> tGar;
    /// Per-layer pipeline solutions at the final t_gar values.
    std::vector<PipelineSolution> solutions;
    /// Gradient bytes left un-overlapped, AllReduced after backward.
    double exposedBytes = 0.0;
    /// Predicted total backward time: sum of layer MoE times, dense
    /// times, and the exposed AllReduce tail, ms.
    double totalTimeMs = 0.0;
    /// Generations executed by the step-2 optimiser (0 if skipped).
    int deGenerations = 0;
};

/**
 * Run both partitioning steps.
 *
 * @param layers    Generalized layers in backward execution order.
 * @param allreduce Fitted AllReduce model (paper §5.1).
 * @param de        Differential-evolution configuration for step 2.
 * @param enableStep2  Disable to get the greedy-only plan (ablation).
 * @param mergedChannel  Model intra-node collectives as sharing the
 *                  inter-node channel (the No-IIO ablation), which
 *                  shrinks the overlappable windows accordingly.
 */
GradPartitionPlan
partitionGradients(const std::vector<GeneralizedLayer> &layers,
                   const LinearModel &allreduce,
                   const solver::DeConfig &de = {}, bool enable_step2 = true,
                   bool merged_channel = false);

/**
 * Baseline from Lina [24]: partition gradients into fixed-size chunks
 * (30 MB in the paper) and overlap them with dense compute and expert
 * computation only, without adapting to per-layer slack.
 */
GradPartitionPlan
partitionGradientsLina(const std::vector<GeneralizedLayer> &layers,
                       const LinearModel &allreduce,
                       double chunk_bytes = 30.0 * (1 << 20));

} // namespace fsmoe::core

#endif // FSMOE_CORE_GRAD_PARTITION_H
