#include "core/attention.h"

#include <cmath>

#include "base/logging.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace fsmoe::core {

namespace {

constexpr float kInitStd = 0.02f;
constexpr float kMaskValue = -1e30f;

} // namespace

MultiHeadAttention::MultiHeadAttention(const AttentionOptions &options)
    : options_(options)
{
    FSMOE_CHECK_ARG(options.embed % options.numHeads == 0,
                    "embed ", options.embed, " must divide by ",
                    options.numHeads, " heads");
    FSMOE_CHECK_ARG(options.seqLen >= 1, "sequence length must be >= 1");
    headDim_ = options.embed / options.numHeads;
    Rng rng(options.seed);
    wqkv_ = rng.normalTensor({options.embed, 3 * options.embed}, 0.0f,
                             kInitStd);
    wout_ = rng.normalTensor({options.embed, options.embed}, 0.0f,
                             kInitStd);
    dWqkv_ = Tensor({options.embed, 3 * options.embed});
    dWout_ = Tensor({options.embed, options.embed});
}

void
MultiHeadAttention::zeroGrad()
{
    dWqkv_.fill(0.0f);
    dWout_.fill(0.0f);
}

Tensor
MultiHeadAttention::forward(const Tensor &x)
{
    const int64_t m = options_.embed;
    const int64_t l = options_.seqLen;
    const int h = options_.numHeads;
    const int64_t dh = headDim_;
    FSMOE_CHECK_ARG(x.dim() == 2 && x.size(1) == m &&
                        x.size(0) % l == 0,
                    "attention input must be (B*L, M) with L=", l);
    batch_ = x.size(0) / l;
    x_ = x;
    qkv_ = matmul(x, wqkv_); // (B*L, 3M)

    probs_ = Tensor({batch_ * h, l, l});
    context_ = Tensor({batch_ * l, m});
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    Tensor q({l, dh}), k({l, dh}), v({l, dh});
    for (int64_t b = 0; b < batch_; ++b) {
        for (int hi = 0; hi < h; ++hi) {
            // Gather this head's Q/K/V rows.
            for (int64_t t = 0; t < l; ++t) {
                const float *row = qkv_.data() + (b * l + t) * 3 * m;
                std::copy(row + hi * dh, row + (hi + 1) * dh,
                          q.data() + t * dh);
                std::copy(row + m + hi * dh, row + m + (hi + 1) * dh,
                          k.data() + t * dh);
                std::copy(row + 2 * m + hi * dh,
                          row + 2 * m + (hi + 1) * dh, v.data() + t * dh);
            }
            Tensor scores = matmul(q, k, Trans::No, Trans::Yes);
            scores.scale_(scale);
            if (options_.causal) {
                for (int64_t i = 0; i < l; ++i)
                    for (int64_t j = i + 1; j < l; ++j)
                        scores.at(i, j) = kMaskValue;
            }
            Tensor p = softmaxRows(scores);
            std::copy(p.data(), p.data() + l * l,
                      probs_.data() + (b * h + hi) * l * l);
            Tensor ctx = matmul(p, v); // (L, dh)
            for (int64_t t = 0; t < l; ++t) {
                std::copy(ctx.data() + t * dh, ctx.data() + (t + 1) * dh,
                          context_.data() + (b * l + t) * m + hi * dh);
            }
        }
    }
    return matmul(context_, wout_);
}

Tensor
MultiHeadAttention::backward(const Tensor &dy)
{
    const int64_t m = options_.embed;
    const int64_t l = options_.seqLen;
    const int h = options_.numHeads;
    const int64_t dh = headDim_;
    FSMOE_CHECK_ARG(dy.sameShape(x_), "attention backward shape mismatch");

    gemm(context_, Trans::Yes, dy, Trans::No, dWout_, 1.0f, 1.0f);
    Tensor d_context = matmul(dy, wout_, Trans::No, Trans::Yes);

    Tensor d_qkv({batch_ * l, 3 * m});
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    Tensor q({l, dh}), k({l, dh}), v({l, dh}), dctx({l, dh});
    for (int64_t b = 0; b < batch_; ++b) {
        for (int hi = 0; hi < h; ++hi) {
            for (int64_t t = 0; t < l; ++t) {
                const float *row = qkv_.data() + (b * l + t) * 3 * m;
                std::copy(row + hi * dh, row + (hi + 1) * dh,
                          q.data() + t * dh);
                std::copy(row + m + hi * dh, row + m + (hi + 1) * dh,
                          k.data() + t * dh);
                std::copy(row + 2 * m + hi * dh,
                          row + 2 * m + (hi + 1) * dh, v.data() + t * dh);
                const float *drow = d_context.data() + (b * l + t) * m;
                std::copy(drow + hi * dh, drow + (hi + 1) * dh,
                          dctx.data() + t * dh);
            }
            Tensor p({l, l});
            std::copy(probs_.data() + (b * h + hi) * l * l,
                      probs_.data() + (b * h + hi + 1) * l * l, p.data());

            Tensor d_p = matmul(dctx, v, Trans::No, Trans::Yes);
            Tensor d_v = matmul(p, dctx, Trans::Yes, Trans::No);
            Tensor d_scores = softmaxRowsBackward(p, d_p);
            d_scores.scale_(scale);
            // Masked positions have p == 0 and receive a gradient of
            // p*(g - dot) == 0 from the softmax backward, so no
            // explicit re-masking is needed.
            Tensor d_q = matmul(d_scores, k);
            Tensor d_k = matmul(d_scores, q, Trans::Yes, Trans::No);
            for (int64_t t = 0; t < l; ++t) {
                float *row = d_qkv.data() + (b * l + t) * 3 * m;
                std::copy(d_q.data() + t * dh, d_q.data() + (t + 1) * dh,
                          row + hi * dh);
                std::copy(d_k.data() + t * dh, d_k.data() + (t + 1) * dh,
                          row + m + hi * dh);
                std::copy(d_v.data() + t * dh, d_v.data() + (t + 1) * dh,
                          row + 2 * m + hi * dh);
            }
        }
    }
    gemm(x_, Trans::Yes, d_qkv, Trans::No, dWqkv_, 1.0f, 1.0f);
    return matmul(d_qkv, wqkv_, Trans::No, Trans::Yes);
}

} // namespace fsmoe::core
