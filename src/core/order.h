/**
 * @file
 * Ordering and inverse-ordering — the Order/I-Order sub-modules (§3.1).
 *
 * The ordering function transforms token-major activations (n, M) into
 * the expert-major dispatch layout (E, T, M), where T is the per-expert
 * capacity; assignments beyond an expert's capacity are dropped (the
 * capacity-factor f of Table 4). The inverse ordering combines expert
 * outputs back into token space, scaling each contribution by its
 * gate weight.
 *
 * Two construction kernels are provided, mirroring the paper:
 *  - GShard ordering: builds a dense one-hot dispatch mask and applies
 *    it with matrix multiplication (einsum style);
 *  - Tutel ordering: SIMT-style sparse scatter/gather by index.
 * Both produce identical layouts; the tests assert it.
 */
#ifndef FSMOE_CORE_ORDER_H
#define FSMOE_CORE_ORDER_H

#include <cstdint>
#include <vector>

#include "core/gate.h"
#include "tensor/tensor.h"

namespace fsmoe::core {

/** Ordering kernel selector. */
enum class OrderKind
{
    GShardEinsum, ///< Dense one-hot mask + GEMM.
    TutelSparse   ///< Direct index scatter.
};

/**
 * Slot bookkeeping produced by the forward ordering and consumed by
 * the combine and both backward passes.
 */
struct OrderMap
{
    int64_t numExperts = 0;
    int64_t capacity = 0; ///< T: slots per expert.
    int64_t numTokens = 0;
    /// Per (expert*T + slot): source token index, -1 for padding.
    std::vector<int64_t> slotToken;
    /// Per (expert*T + slot): the assignment's combine weight.
    std::vector<float> slotWeight;
    /// Per input assignment: its slot (expert*T + s), -1 if dropped.
    std::vector<int64_t> assignmentSlot;

    /** Number of assignments dropped by capacity. */
    int64_t droppedCount() const;
};

/** The Order/I-Order operator pair. */
class Order
{
  public:
    explicit Order(OrderKind kind) : kind_(kind) {}

    OrderKind orderKind() const { return kind_; }

    /**
     * Build the (E, T, M) dispatch tensor.
     *
     * @param x         Tokens (n, M).
     * @param routing   Gate output.
     * @param num_experts  E.
     * @param capacity  T; slots are granted first-come-first-served in
     *                  assignment order, matching GShard.
     * @param map       Receives the slot bookkeeping.
     */
    Tensor forward(const Tensor &x, const GateResult &routing,
                   int64_t num_experts, int64_t capacity,
                   OrderMap &map) const;

    /**
     * Backward of forward: gather the dispatch-layout gradient back to
     * token space (n, M). Dropped assignments contribute nothing.
     */
    Tensor backward(const Tensor &d_dispatched, const OrderMap &map) const;

    /**
     * I-Order: combine expert outputs (E, T, M) into tokens (n, M),
     * scaling each slot by its gate weight. Tokens with no surviving
     * assignment produce zeros.
     */
    Tensor combine(const Tensor &expert_out, const OrderMap &map) const;

    /**
     * Backward of combine.
     *
     * @param d_out        Gradient w.r.t. the combined tokens (n, M).
     * @param expert_out   The forward combine's input (E, T, M).
     * @param map          Slot bookkeeping.
     * @param d_expert_out Receives the gradient w.r.t. expert outputs.
     * @param d_weights    Receives the gradient w.r.t. each original
     *                     assignment's combine weight (aligned with
     *                     GateResult::assignments; dropped get zero).
     */
    void combineBackward(const Tensor &d_out, const Tensor &expert_out,
                         const OrderMap &map, Tensor &d_expert_out,
                         std::vector<float> &d_weights) const;

  private:
    OrderKind kind_;
};

} // namespace fsmoe::core

#endif // FSMOE_CORE_ORDER_H
