#include "core/gate.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace fsmoe::core {

const char *
gateKindName(GateKind kind)
{
    switch (kind) {
      case GateKind::GShard: return "gshard";
      case GateKind::Sigmoid: return "sigmoid";
      case GateKind::XMoe: return "x-moe";
      case GateKind::ExpertChoice: return "expert-choice";
      default: return "?";
    }
}

void
GateBase::zeroGrad()
{
    for (Tensor *g : grads())
        g->fill(0.0f);
}

namespace {

constexpr float kInitStd = 0.02f;

float
sigmoidScalar(float v)
{
    if (v >= 0.0f)
        return 1.0f / (1.0f + std::exp(-v));
    float e = std::exp(v);
    return e / (1.0f + e);
}

/**
 * GShard noisy top-k gate [22]: H(I) = I*Wg + N(0,1)*softplus(I*Wnoise),
 * G = Softmax(KeepTopK(H, k)). Softmax over a top-k-masked vector
 * equals a softmax restricted to the selected entries, which is how
 * both directions are computed here. Noise is disabled by default so
 * runs are reproducible; enable it with setNoisy(true).
 */
class GShardGate : public GateBase
{
  public:
    GShardGate(int64_t embed, int num_experts, int top_k, Rng &rng)
        : topK_(top_k), rng_(&rng),
          wg_(rng.normalTensor({embed, num_experts}, 0.0f, kInitStd)),
          wnoise_(rng.normalTensor({embed, num_experts}, 0.0f, kInitStd)),
          dWg_({embed, num_experts}), dWnoise_({embed, num_experts})
    {
    }

    std::string name() const override { return "gshard"; }

    void setNoisy(bool noisy) { noisy_ = noisy; }

    GateResult
    forward(const Tensor &x) override
    {
        x_ = x;
        logits_ = matmul(x, wg_);
        if (noisy_) {
            u_ = matmul(x, wnoise_);
            noise_ = rng_->normalTensor(logits_.shape());
            Tensor sp = softplus(u_);
            for (int64_t i = 0; i < logits_.numel(); ++i)
                logits_.flat(i) += noise_.flat(i) * sp.flat(i);
        }
        TopK top = topkRows(logits_, topK_);
        topIdx_ = top.indices;
        probs_ = softmaxRows(top.values);

        const int64_t n = x.size(0);
        GateResult result;
        result.assignments.reserve(n * topK_);
        for (int64_t t = 0; t < n; ++t) {
            for (int j = 0; j < topK_; ++j) {
                result.assignments.push_back(
                    {t, static_cast<int>(topIdx_[t * topK_ + j]),
                     probs_.at(t, j)});
            }
        }
        return result;
    }

    Tensor
    backward(const std::vector<float> &d_weights) override
    {
        const int64_t n = x_.size(0);
        FSMOE_CHECK_ARG(static_cast<int64_t>(d_weights.size()) ==
                            n * topK_,
                        "gradient count mismatch in gate backward");
        Tensor d_probs({n, topK_});
        for (int64_t i = 0; i < n * topK_; ++i)
            d_probs.flat(i) = d_weights[i];
        Tensor d_vals = softmaxRowsBackward(probs_, d_probs);

        Tensor d_logits({n, wg_.size(1)});
        for (int64_t t = 0; t < n; ++t)
            for (int j = 0; j < topK_; ++j)
                d_logits.at(t, topIdx_[t * topK_ + j]) = d_vals.at(t, j);

        gemm(x_, Trans::Yes, d_logits, Trans::No, dWg_, 1.0f, 1.0f);
        Tensor dx = matmul(d_logits, wg_, Trans::No, Trans::Yes);
        if (noisy_) {
            Tensor du = d_logits;
            for (int64_t i = 0; i < du.numel(); ++i)
                du.flat(i) *= noise_.flat(i) * sigmoidScalar(u_.flat(i));
            gemm(x_, Trans::Yes, du, Trans::No, dWnoise_, 1.0f, 1.0f);
            dx.add_(matmul(du, wnoise_, Trans::No, Trans::Yes));
        }
        return dx;
    }

    std::vector<Tensor *> params() override { return {&wg_, &wnoise_}; }
    std::vector<Tensor *> grads() override { return {&dWg_, &dWnoise_}; }

  private:
    int topK_;
    bool noisy_ = false;
    Rng *rng_;
    Tensor wg_, wnoise_, dWg_, dWnoise_;
    // Forward caches.
    Tensor x_, logits_, u_, noise_, probs_;
    std::vector<int64_t> topIdx_;
};

/**
 * Sigmoid gate (BASE [23], StableMoE [8]): scores s = I*Wg, top-k by
 * score, combine weight sigma(s).
 */
class SigmoidGate : public GateBase
{
  public:
    SigmoidGate(int64_t embed, int num_experts, int top_k, Rng &rng)
        : topK_(top_k),
          wg_(rng.normalTensor({embed, num_experts}, 0.0f, kInitStd)),
          dWg_({embed, num_experts})
    {
    }

    std::string name() const override { return "sigmoid"; }

    GateResult
    forward(const Tensor &x) override
    {
        x_ = x;
        scores_ = matmul(x, wg_);
        TopK top = topkRows(scores_, topK_);
        topIdx_ = top.indices;
        selected_ = top.values;

        const int64_t n = x.size(0);
        GateResult result;
        result.assignments.reserve(n * topK_);
        for (int64_t t = 0; t < n; ++t) {
            for (int j = 0; j < topK_; ++j) {
                result.assignments.push_back(
                    {t, static_cast<int>(topIdx_[t * topK_ + j]),
                     sigmoidScalar(selected_.at(t, j))});
            }
        }
        return result;
    }

    Tensor
    backward(const std::vector<float> &d_weights) override
    {
        const int64_t n = x_.size(0);
        FSMOE_CHECK_ARG(static_cast<int64_t>(d_weights.size()) ==
                            n * topK_,
                        "gradient count mismatch in gate backward");
        Tensor d_scores({n, wg_.size(1)});
        for (int64_t t = 0; t < n; ++t) {
            for (int j = 0; j < topK_; ++j) {
                float sg = sigmoidScalar(selected_.at(t, j));
                d_scores.at(t, topIdx_[t * topK_ + j]) =
                    d_weights[t * topK_ + j] * sg * (1.0f - sg);
            }
        }
        gemm(x_, Trans::Yes, d_scores, Trans::No, dWg_, 1.0f, 1.0f);
        return matmul(d_scores, wg_, Trans::No, Trans::Yes);
    }

    std::vector<Tensor *> params() override { return {&wg_}; }
    std::vector<Tensor *> grads() override { return {&dWg_}; }

  private:
    int topK_;
    Tensor wg_, dWg_;
    Tensor x_, scores_, selected_;
    std::vector<int64_t> topIdx_;
};

/**
 * X-MoE gate [6]: a low-rank projection z = I*Wproj decouples tokens
 * from the expert embeddings Wg; scores are cosine similarities
 * s = cos(z, Wg) sharpened by a fixed temperature, then routed with
 * top-k softmax like GShard.
 */
class XMoeGate : public GateBase
{
  public:
    XMoeGate(int64_t embed, int num_experts, int top_k, Rng &rng)
        : topK_(top_k),
          projDim_(std::max<int64_t>(8, embed / 32)),
          wproj_(rng.normalTensor({embed, projDim_}, 0.0f, kInitStd)),
          wg_(rng.normalTensor({static_cast<int64_t>(num_experts),
                                projDim_},
                               0.0f, 1.0f)),
          dWproj_({embed, projDim_}),
          dWg_({static_cast<int64_t>(num_experts), projDim_})
    {
    }

    std::string name() const override { return "x-moe"; }

    GateResult
    forward(const Tensor &x) override
    {
        x_ = x;
        z_ = matmul(x, wproj_);
        cos_ = cosineScores(z_, wg_);
        Tensor logits = cos_;
        logits.scale_(1.0f / kTemperature);
        TopK top = topkRows(logits, topK_);
        topIdx_ = top.indices;
        probs_ = softmaxRows(top.values);

        const int64_t n = x.size(0);
        GateResult result;
        result.assignments.reserve(n * topK_);
        for (int64_t t = 0; t < n; ++t) {
            for (int j = 0; j < topK_; ++j) {
                result.assignments.push_back(
                    {t, static_cast<int>(topIdx_[t * topK_ + j]),
                     probs_.at(t, j)});
            }
        }
        return result;
    }

    Tensor
    backward(const std::vector<float> &d_weights) override
    {
        const int64_t n = x_.size(0);
        const int64_t d = projDim_;
        FSMOE_CHECK_ARG(static_cast<int64_t>(d_weights.size()) ==
                            n * topK_,
                        "gradient count mismatch in gate backward");
        Tensor d_probs({n, topK_});
        for (int64_t i = 0; i < n * topK_; ++i)
            d_probs.flat(i) = d_weights[i];
        Tensor d_vals = softmaxRowsBackward(probs_, d_probs);

        Tensor dz({n, d});
        for (int64_t t = 0; t < n; ++t) {
            const float *zr = z_.data() + t * d;
            float zn = 0.0f;
            for (int64_t c = 0; c < d; ++c)
                zn += zr[c] * zr[c];
            zn = std::sqrt(std::max(zn, 1e-24f));
            for (int j = 0; j < topK_; ++j) {
                int e = static_cast<int>(topIdx_[t * topK_ + j]);
                float ds = d_vals.at(t, j) / kTemperature;
                if (ds == 0.0f)
                    continue;
                const float *wr = wg_.data() + e * d;
                float wn = 0.0f;
                for (int64_t c = 0; c < d; ++c)
                    wn += wr[c] * wr[c];
                wn = std::sqrt(std::max(wn, 1e-24f));
                float cos = cos_.at(t, e);
                float *dzr = dz.data() + t * d;
                float *dwr = dWg_.data() + e * d;
                for (int64_t c = 0; c < d; ++c) {
                    float zh = zr[c] / zn;
                    float wh = wr[c] / wn;
                    dzr[c] += ds * (wh - cos * zh) / zn;
                    dwr[c] += ds * (zh - cos * wh) / wn;
                }
            }
        }
        gemm(x_, Trans::Yes, dz, Trans::No, dWproj_, 1.0f, 1.0f);
        return matmul(dz, wproj_, Trans::No, Trans::Yes);
    }

    std::vector<Tensor *> params() override { return {&wproj_, &wg_}; }
    std::vector<Tensor *> grads() override { return {&dWproj_, &dWg_}; }

  private:
    static constexpr float kTemperature = 0.3f;
    int topK_;
    int64_t projDim_;
    Tensor wproj_, wg_, dWproj_, dWg_;
    Tensor x_, z_, cos_, probs_;
    std::vector<int64_t> topIdx_;
};

/**
 * Expert-choice gate [51]: G = Softmax over experts of I*Wg, then each
 * expert independently selects its top-C tokens, C = n*k/E. Tokens may
 * be picked by several experts or by none.
 */
class ExpertChoiceGate : public GateBase
{
  public:
    ExpertChoiceGate(int64_t embed, int num_experts, int top_k, Rng &rng)
        : numExperts_(num_experts), topK_(top_k),
          wg_(rng.normalTensor({embed, num_experts}, 0.0f, kInitStd)),
          dWg_({embed, num_experts})
    {
    }

    std::string name() const override { return "expert-choice"; }

    GateResult
    forward(const Tensor &x) override
    {
        x_ = x;
        const int64_t n = x.size(0);
        probs_ = softmaxRows(matmul(x, wg_));
        const int64_t cap = std::max<int64_t>(
            1, n * topK_ / numExperts_);

        // Transpose scores so top-k runs per expert over tokens.
        Tensor scores_t({static_cast<int64_t>(numExperts_), n});
        for (int64_t t = 0; t < n; ++t)
            for (int e = 0; e < numExperts_; ++e)
                scores_t.at(e, t) = probs_.at(t, e);
        TopK top = topkRows(scores_t, static_cast<int>(cap));

        GateResult result;
        result.assignments.reserve(numExperts_ * cap);
        selection_.clear();
        for (int e = 0; e < numExperts_; ++e) {
            for (int64_t j = 0; j < cap; ++j) {
                int64_t t = top.indices[e * cap + j];
                result.assignments.push_back(
                    {t, e, probs_.at(t, e)});
                selection_.push_back({t, e});
            }
        }
        return result;
    }

    Tensor
    backward(const std::vector<float> &d_weights) override
    {
        const int64_t n = x_.size(0);
        FSMOE_CHECK_ARG(d_weights.size() == selection_.size(),
                        "gradient count mismatch in gate backward");
        Tensor d_probs({n, static_cast<int64_t>(numExperts_)});
        for (size_t i = 0; i < selection_.size(); ++i)
            d_probs.at(selection_[i].first, selection_[i].second) +=
                d_weights[i];
        Tensor d_logits = softmaxRowsBackward(probs_, d_probs);
        gemm(x_, Trans::Yes, d_logits, Trans::No, dWg_, 1.0f, 1.0f);
        return matmul(d_logits, wg_, Trans::No, Trans::Yes);
    }

    std::vector<Tensor *> params() override { return {&wg_}; }
    std::vector<Tensor *> grads() override { return {&dWg_}; }

  private:
    int numExperts_;
    int topK_;
    Tensor wg_, dWg_;
    Tensor x_, probs_;
    std::vector<std::pair<int64_t, int>> selection_;
};

} // namespace

AuxLossResult
loadBalanceLoss(const GateResult &routing, int num_experts,
                int64_t num_tokens, double scale)
{
    FSMOE_CHECK_ARG(num_experts >= 1 && num_tokens >= 1,
                    "degenerate aux-loss inputs");
    const double n_assign =
        static_cast<double>(routing.assignments.size());
    std::vector<double> count(num_experts, 0.0), mass(num_experts, 0.0);
    for (const Assignment &a : routing.assignments) {
        count[a.expert] += 1.0;
        mass[a.expert] += a.weight;
    }
    AuxLossResult result;
    result.dWeights.assign(routing.assignments.size(), 0.0f);
    // f_e = count_e / total assignments, P_e = mass_e / tokens.
    for (int e = 0; e < num_experts; ++e) {
        double f = count[e] / std::max(n_assign, 1.0);
        double p = mass[e] / static_cast<double>(num_tokens);
        result.loss += scale * num_experts * f * p;
    }
    for (size_t i = 0; i < routing.assignments.size(); ++i) {
        int e = routing.assignments[i].expert;
        double f = count[e] / std::max(n_assign, 1.0);
        result.dWeights[i] = static_cast<float>(
            scale * num_experts * f / static_cast<double>(num_tokens));
    }
    return result;
}

std::unique_ptr<GateBase>
makeGate(GateKind kind, int64_t embed, int num_experts, int top_k, Rng &rng)
{
    FSMOE_CHECK_ARG(top_k >= 1 && top_k <= num_experts,
                    "top-k must lie in [1, E]");
    switch (kind) {
      case GateKind::GShard:
        return std::make_unique<GShardGate>(embed, num_experts, top_k, rng);
      case GateKind::Sigmoid:
        return std::make_unique<SigmoidGate>(embed, num_experts, top_k,
                                             rng);
      case GateKind::XMoe:
        return std::make_unique<XMoeGate>(embed, num_experts, top_k, rng);
      case GateKind::ExpertChoice:
        return std::make_unique<ExpertChoiceGate>(embed, num_experts, top_k,
                                                  rng);
      default:
        FSMOE_PANIC("unknown gate kind");
    }
}

} // namespace fsmoe::core
