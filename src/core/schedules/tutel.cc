/**
 * @file
 * Tutel with PipeMoE's adaptive pipelining (paper Fig. 3b), plus the
 * strengthened Tutel-Improved baseline that overlaps Gradient-AllReduce
 * with the dense (non-MoE) parts of backpropagation.
 *
 * Modelled limitations of these systems, per the paper:
 *  - one communication channel: intra-node collectives serialise with
 *    inter-node ones (mergeCommLinks);
 *  - a single pipeline degree shared by forward and backward, chosen
 *    adaptively (PipeMoE) by minimising the simulated iteration time;
 *  - plain Tutel leaves Gradient-AllReduce unoverlapped at the end.
 */
#include "core/schedules/schedule.h"

#include <limits>

namespace fsmoe::core {

namespace {

using namespace detail;

class TutelSchedule : public Schedule
{
  public:
    explicit TutelSchedule(bool improved) : improved_(improved) {}

    ScheduleKind kind() const override
    {
        return improved_ ? ScheduleKind::TutelImproved
                         : ScheduleKind::Tutel;
    }

    sim::TaskGraph
    build(const ModelCost &model) const override
    {
        int best_r = 1;
        double best_t = std::numeric_limits<double>::infinity();
        sim::Simulator simulator;
        for (int r = 1; r <= model.rMax; ++r) {
            sim::TaskGraph g = buildWithDegree(model, r);
            double t = simulator.run(g).makespan;
            if (t < best_t) {
                best_t = t;
                best_r = r;
            }
        }
        return buildWithDegree(model, best_r);
    }

  private:
    sim::TaskGraph
    buildWithDegree(const ModelCost &model, int r) const
    {
        sim::TaskGraph graph;
        PipelineBuildOptions opts;
        opts.mergeCommLinks = true;

        sim::TaskId dep = -1;
        for (const LayerCost &lc : model.layers) {
            dep = appendAttention(graph, lc, Phase::Forward, opts, dep);
            dep = appendMoePhase(graph, lc, model.models, Phase::Forward,
                                 r, opts, dep);
        }
        std::vector<sim::TaskId> gar_tasks;
        for (auto it = model.layers.rbegin(); it != model.layers.rend();
             ++it) {
            dep = appendMoePhase(graph, *it, model.models, Phase::Backward,
                                 r, opts, dep);
            dep = appendAttention(graph, *it, Phase::Backward, opts, dep);
            if (improved_) {
                // The layer's gradients are ready; AllReduce them as
                // background (low-priority) traffic, streamed in a few
                // chunks of one collective (startup paid once) so they
                // fill channel gaps during the remaining dense work
                // without stalling AlltoAll.
                constexpr int kSlices = 4;
                const double slice_bytes =
                    it->workload.gradBytes / kSlices;
                for (int c = 0; c < kSlices; ++c) {
                    double t = model.models.allreduce.beta * slice_bytes +
                               (c == 0 ? model.models.allreduce.alpha
                                       : 0.0);
                    gar_tasks.push_back(graph.addTask(
                        "gar", sim::OpType::GradAllReduce,
                        sim::Link::InterNode, kGradAllReduce, t, {dep},
                        /*priority=*/1));
                }
            }
        }
        if (!improved_) {
            for (const LayerCost &lc : model.layers) {
                double t =
                    model.models.allreduce.predict(lc.workload.gradBytes);
                dep = graph.addTask("gar", sim::OpType::GradAllReduce,
                                    sim::Link::InterNode, kGradAllReduce, t,
                                    {dep});
            }
            return graph;
        }
        gar_tasks.push_back(dep);
        graph.addTask("barrier", sim::OpType::Other, sim::Link::Compute,
                      kCompute, 0.0, std::move(gar_tasks));
        return graph;
    }

    bool improved_;
};

} // namespace

namespace detail {

std::unique_ptr<Schedule>
makeTutelSchedule(bool improved)
{
    return std::make_unique<TutelSchedule>(improved);
}

} // namespace detail

} // namespace fsmoe::core
