/**
 * @file
 * Tutel with PipeMoE's adaptive pipelining (paper Fig. 3b), plus the
 * strengthened Tutel-Improved baseline that overlaps Gradient-AllReduce
 * with the dense (non-MoE) parts of backpropagation.
 *
 * Modelled limitations of these systems, per the paper:
 *  - one communication channel: intra-node collectives serialise with
 *    inter-node ones (mergeCommLinks);
 *  - a single pipeline degree shared by forward and backward, chosen
 *    adaptively (PipeMoE) by minimising the simulated iteration time;
 *  - plain Tutel leaves Gradient-AllReduce unoverlapped at the end.
 */
#include <limits>

#include "core/schedules/builtins.h"
#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"

namespace fsmoe::core {

namespace {

using namespace detail;

class TutelSchedule : public Schedule
{
  public:
    /**
     * @param improved Overlap Gradient-AllReduce with dense backward.
     * @param degree   Fixed pipeline degree; 0 searches 1..rMax for
     *                 the simulated-makespan minimiser (PipeMoE).
     */
    TutelSchedule(bool improved, int degree)
        : improved_(improved), degree_(degree)
    {
    }

    sim::TaskGraph
    build(const ModelCost &model) const override
    {
        if (degree_ > 0)
            return buildWithDegree(model, degree_);
        int best_r = 1;
        double best_t = std::numeric_limits<double>::infinity();
        sim::Simulator simulator;
        for (int r = 1; r <= model.rMax; ++r) {
            sim::TaskGraph g = buildWithDegree(model, r);
            double t = simulator.run(g).makespan;
            if (t < best_t) {
                best_t = t;
                best_r = r;
            }
        }
        return buildWithDegree(model, best_r);
    }

  private:
    sim::TaskGraph
    buildWithDegree(const ModelCost &model, int r) const
    {
        sim::TaskGraph graph;
        reserveIteration(graph, model.layers.size(), r);
        PipelineBuildOptions opts;
        opts.mergeCommLinks = true;

        sim::TaskId dep = -1;
        for (const LayerCost &lc : model.layers) {
            dep = appendAttention(graph, lc, Phase::Forward, opts, dep);
            dep = appendMoePhase(graph, lc, model.models, Phase::Forward,
                                 r, opts, dep);
        }
        std::vector<sim::TaskId> gar_tasks;
        gar_tasks.reserve(4 * model.layers.size() + 1);
        for (auto it = model.layers.rbegin(); it != model.layers.rend();
             ++it) {
            dep = appendMoePhase(graph, *it, model.models, Phase::Backward,
                                 r, opts, dep);
            dep = appendAttention(graph, *it, Phase::Backward, opts, dep);
            if (improved_) {
                // The layer's gradients are ready; AllReduce them as
                // background (low-priority) traffic, streamed in a few
                // chunks of one collective (startup paid once) so they
                // fill channel gaps during the remaining dense work
                // without stalling AlltoAll.
                constexpr int kSlices = 4;
                const double slice_bytes =
                    it->workload.gradBytes / kSlices;
                for (int c = 0; c < kSlices; ++c) {
                    double t = model.models.allreduce.beta * slice_bytes +
                               (c == 0 ? model.models.allreduce.alpha
                                       : 0.0);
                    gar_tasks.push_back(graph.addTask(
                        "gar", sim::OpType::GradAllReduce,
                        sim::Link::InterNode, kGradAllReduce, t, {dep},
                        /*priority=*/1));
                }
            }
        }
        if (!improved_) {
            for (const LayerCost &lc : model.layers) {
                double t =
                    model.models.allreduce.predict(lc.workload.gradBytes);
                dep = graph.addTask("gar", sim::OpType::GradAllReduce,
                                    sim::Link::InterNode, kGradAllReduce, t,
                                    {dep});
            }
            return graph;
        }
        gar_tasks.push_back(dep);
        graph.addTask("barrier", sim::OpType::Other, sim::Link::Compute,
                      kCompute, 0.0, std::move(gar_tasks));
        return graph;
    }

    bool improved_;
    int degree_;
};

ScheduleParamInfo
degreeParam()
{
    return {"degree", ScheduleParamType::Int, "0",
            "fixed pipeline degree r; 0 searches 1..rMax adaptively",
            0.0, 16.0};
}

} // namespace

namespace detail {

void
registerTutelSchedules(ScheduleRegistry &registry)
{
    ScheduleInfo tutel;
    tutel.name = "Tutel";
    tutel.aliases = {"pipemoe"};
    tutel.description =
        "Tutel with PipeMoE's adaptive pipelining (Fig. 3b): one "
        "comm channel, shared fwd/bwd degree, unoverlapped "
        "Gradient-AllReduce";
    tutel.params = {degreeParam()};
    registry.registerSchedule(tutel, [](const ScheduleParams &p) {
        return std::make_unique<TutelSchedule>(
            false, static_cast<int>(p.getInt("degree", 0)));
    });

    ScheduleInfo improved;
    improved.name = "Tutel-Improved";
    improved.description =
        "Tutel plus Gradient-AllReduce overlapped with the dense "
        "(non-MoE) backward parts — the paper's strengthened baseline";
    improved.params = {degreeParam()};
    registry.registerSchedule(improved, [](const ScheduleParams &p) {
        return std::make_unique<TutelSchedule>(
            true, static_cast<int>(p.getInt("degree", 0)));
    });
}

} // namespace detail

} // namespace fsmoe::core
