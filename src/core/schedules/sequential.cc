/**
 * @file
 * DeepSpeed-MoE's default schedule (paper Fig. 3a): every operation of
 * every layer executes back-to-back on one queue, and the gradient
 * AllReduces run unoverlapped after the backward pass.
 */
#include "core/schedules/schedule.h"

namespace fsmoe::core {

namespace {

class DsMoeSchedule : public Schedule
{
  public:
    ScheduleKind kind() const override
    {
        return ScheduleKind::DsMoeSequential;
    }

    sim::TaskGraph
    build(const ModelCost &model) const override
    {
        using namespace detail;
        // Apply DeepSpeed-MoE's implementation overheads: staged 2DH
        // AlltoAll and unfused gate/order kernels.
        ModelCost priced = model;
        for (LayerCost &lc : priced.layers) {
            lc.fwd.a2a *= model.dsA2aOverhead;
            lc.bwd.a2a *= model.dsA2aOverhead;
            lc.fwd.routing *= model.dsKernelOverhead;
            lc.bwd.routing *= model.dsKernelOverhead;
            lc.fwd.order *= model.dsKernelOverhead;
            lc.bwd.order *= model.dsKernelOverhead;
            // PhaseTimes drive the durations through the workload's
            // volumes inside appendMoePhase, so scale those too.
            lc.workload.a2aBytes *= model.dsA2aOverhead;
            lc.workload.routingMacs *= model.dsKernelOverhead;
            lc.workload.orderBytes *= model.dsKernelOverhead;
        }

        sim::TaskGraph graph;
        PipelineBuildOptions opts;
        opts.sequential = true;
        opts.mergeCommLinks = true;

        sim::TaskId dep = -1;
        for (const LayerCost &lc : priced.layers) {
            dep = appendAttention(graph, lc, Phase::Forward, opts, dep);
            dep = appendMoePhase(graph, lc, model.models, Phase::Forward,
                                 1, opts, dep);
        }
        for (auto it = priced.layers.rbegin(); it != priced.layers.rend();
             ++it) {
            dep = appendMoePhase(graph, *it, model.models, Phase::Backward,
                                 1, opts, dep);
            dep = appendAttention(graph, *it, Phase::Backward, opts, dep);
        }
        // Unoverlapped gradient synchronisation, one AllReduce per layer.
        for (const LayerCost &lc : priced.layers) {
            double t = model.models.allreduce.predict(lc.workload.gradBytes);
            dep = graph.addTask("gar", sim::OpType::GradAllReduce,
                                sim::Link::InterNode, kCompute, t, {dep});
        }
        return graph;
    }
};

} // namespace

namespace detail {

std::unique_ptr<Schedule>
makeDsMoeSchedule()
{
    return std::make_unique<DsMoeSchedule>();
}

} // namespace detail

} // namespace fsmoe::core
