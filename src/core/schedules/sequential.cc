/**
 * @file
 * DeepSpeed-MoE's default schedule (paper Fig. 3a): every operation of
 * every layer executes back-to-back on one queue, and the gradient
 * AllReduces run unoverlapped after the backward pass.
 */
#include "core/schedules/builtins.h"
#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"

namespace fsmoe::core {

namespace {

class DsMoeSchedule : public Schedule
{
  public:
    /**
     * @param a2a_overhead    Override for ModelCost::dsA2aOverhead;
     *                        0 keeps the model's value.
     * @param kernel_overhead Ditto for dsKernelOverhead.
     */
    DsMoeSchedule(double a2a_overhead, double kernel_overhead)
        : a2aOverhead_(a2a_overhead), kernelOverhead_(kernel_overhead)
    {
    }

    sim::TaskGraph
    build(const ModelCost &model) const override
    {
        using namespace detail;
        // Apply DeepSpeed-MoE's implementation overheads: staged 2DH
        // AlltoAll and unfused gate/order kernels.
        const double a2a_ovh =
            a2aOverhead_ > 0.0 ? a2aOverhead_ : model.dsA2aOverhead;
        const double kern_ovh =
            kernelOverhead_ > 0.0 ? kernelOverhead_ : model.dsKernelOverhead;
        ModelCost priced = model;
        for (LayerCost &lc : priced.layers) {
            lc.fwd.a2a *= a2a_ovh;
            lc.bwd.a2a *= a2a_ovh;
            lc.fwd.routing *= kern_ovh;
            lc.bwd.routing *= kern_ovh;
            lc.fwd.order *= kern_ovh;
            lc.bwd.order *= kern_ovh;
            // PhaseTimes drive the durations through the workload's
            // volumes inside appendMoePhase, so scale those too.
            lc.workload.a2aBytes *= a2a_ovh;
            lc.workload.routingMacs *= kern_ovh;
            lc.workload.orderBytes *= kern_ovh;
        }

        sim::TaskGraph graph;
        reserveIteration(graph, priced.layers.size(), 1);
        PipelineBuildOptions opts;
        opts.sequential = true;
        opts.mergeCommLinks = true;

        sim::TaskId dep = -1;
        for (const LayerCost &lc : priced.layers) {
            dep = appendAttention(graph, lc, Phase::Forward, opts, dep);
            dep = appendMoePhase(graph, lc, model.models, Phase::Forward,
                                 1, opts, dep);
        }
        for (auto it = priced.layers.rbegin(); it != priced.layers.rend();
             ++it) {
            dep = appendMoePhase(graph, *it, model.models, Phase::Backward,
                                 1, opts, dep);
            dep = appendAttention(graph, *it, Phase::Backward, opts, dep);
        }
        // Unoverlapped gradient synchronisation, one AllReduce per layer.
        for (const LayerCost &lc : priced.layers) {
            double t = model.models.allreduce.predict(lc.workload.gradBytes);
            dep = graph.addTask("gar", sim::OpType::GradAllReduce,
                                sim::Link::InterNode, kCompute, t, {dep});
        }
        return graph;
    }

  private:
    double a2aOverhead_;
    double kernelOverhead_;
};

} // namespace

namespace detail {

void
registerSequentialSchedules(ScheduleRegistry &registry)
{
    ScheduleInfo info;
    info.name = "DS-MoE";
    info.aliases = {"dsmoe", "deepspeed", "sequential"};
    info.description =
        "DeepSpeed-MoE's default execution (Fig. 3a): every task "
        "back-to-back on one stream, Gradient-AllReduce unoverlapped";
    info.params = {
        {"a2aOverhead", ScheduleParamType::Double, "0",
         "override for the modelled 2DH AlltoAll overhead factor; "
         "0 uses ModelCost::dsA2aOverhead",
         0.0, std::numeric_limits<double>::max(), false},
        {"kernelOverhead", ScheduleParamType::Double, "0",
         "override for the modelled unfused-kernel overhead factor; "
         "0 uses ModelCost::dsKernelOverhead",
         0.0, std::numeric_limits<double>::max(), false},
    };
    registry.registerSchedule(info, [](const ScheduleParams &p) {
        return std::make_unique<DsMoeSchedule>(
            p.getDouble("a2aOverhead", 0.0),
            p.getDouble("kernelOverhead", 0.0));
    });
}

} // namespace detail

} // namespace fsmoe::core
