/**
 * @file
 * PipeMoE + Lina baseline: PipeMoE's pipelining with Lina's gradient
 * handling — gradients are partitioned into fixed-size chunks (30 MB
 * in the paper) and their AllReduces overlap expert computation and
 * dense parts of backpropagation. The fixed chunk size is what makes
 * the scheme hit-or-miss across configurations (paper §6.4): a slack
 * window smaller than one chunk's AllReduce stays unused, while an
 * oversized chunk collides with AlltoAll on the shared channel.
 */
#include <cmath>
#include <limits>

#include "core/schedules/builtins.h"
#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"

namespace fsmoe::core {

namespace {

using namespace detail;

class LinaSchedule : public Schedule
{
  public:
    /**
     * @param chunk_bytes Lina's fixed gradient bucket size (paper:
     *                    30 MB).
     * @param degree      Fixed pipeline degree; 0 searches 1..rMax.
     */
    LinaSchedule(double chunk_bytes, int degree)
        : chunk_bytes_(chunk_bytes), degree_(degree)
    {
    }

    sim::TaskGraph
    build(const ModelCost &model) const override
    {
        if (degree_ > 0)
            return buildWithDegree(model, degree_);
        int best_r = 1;
        double best_t = std::numeric_limits<double>::infinity();
        sim::Simulator simulator;
        for (int r = 1; r <= model.rMax; ++r) {
            sim::TaskGraph g = buildWithDegree(model, r);
            double t = simulator.run(g).makespan;
            if (t < best_t) {
                best_t = t;
                best_r = r;
            }
        }
        return buildWithDegree(model, best_r);
    }

  private:
    sim::TaskGraph
    buildWithDegree(const ModelCost &model, int r) const
    {
        sim::TaskGraph graph;
        reserveIteration(graph, model.layers.size(), r);
        PipelineBuildOptions opts;
        opts.mergeCommLinks = true;

        sim::TaskId dep = -1;
        for (const LayerCost &lc : model.layers) {
            dep = appendAttention(graph, lc, Phase::Forward, opts, dep);
            dep = appendMoePhase(graph, lc, model.models, Phase::Forward,
                                 r, opts, dep);
        }
        std::vector<sim::TaskId> barrier_deps;
        barrier_deps.reserve(2 * model.layers.size() + 2);
        // Lina accumulates gradients into fixed-size buckets across
        // layers and flushes an AllReduce only when a bucket fills; a
        // partial bucket waits until backpropagation ends. Readiness
        // arbitration then lets full buckets ride whatever channel
        // slack exists in the remaining layers.
        double pending = 0.0;
        for (auto it = model.layers.rbegin(); it != model.layers.rend();
             ++it) {
            dep = appendMoePhase(graph, *it, model.models, Phase::Backward,
                                 r, opts, dep);
            dep = appendAttention(graph, *it, Phase::Backward, opts, dep);
            pending += it->workload.gradBytes;
            while (pending >= chunk_bytes_) {
                double t = model.models.allreduce.predict(chunk_bytes_);
                barrier_deps.push_back(graph.addTask(
                    "gar", sim::OpType::GradAllReduce, sim::Link::InterNode,
                    kGradAllReduce, t, {dep}, /*priority=*/1));
                pending -= chunk_bytes_;
            }
        }
        if (pending > 0.0) {
            double t = model.models.allreduce.predict(pending);
            barrier_deps.push_back(graph.addTask(
                "gar", sim::OpType::GradAllReduce, sim::Link::InterNode,
                kGradAllReduce, t, {dep}, /*priority=*/1));
        }
        barrier_deps.push_back(dep);
        graph.addTask("barrier", sim::OpType::Other, sim::Link::Compute,
                      kCompute, 0.0, std::move(barrier_deps));
        return graph;
    }

    double chunk_bytes_;
    int degree_;
};

} // namespace

namespace detail {

void
registerLinaSchedules(ScheduleRegistry &registry)
{
    ScheduleInfo info;
    info.name = "PipeMoE+Lina";
    info.aliases = {"lina"};
    info.description =
        "PipeMoE's pipelining plus Lina's fixed-size gradient "
        "chunking overlapped with expert compute and dense backward";
    info.params = {
        {"chunkMB", ScheduleParamType::Double, "30",
         "fixed gradient bucket size in MB (the paper's Lina uses 30)",
         1.0 / 1024.0, 1024.0},
        {"degree", ScheduleParamType::Int, "0",
         "fixed pipeline degree r; 0 searches 1..rMax adaptively", 0.0,
         16.0},
    };
    registry.registerSchedule(info, [](const ScheduleParams &p) {
        const double chunk_bytes =
            p.getDouble("chunkMB", 30.0) * (1 << 20);
        return std::make_unique<LinaSchedule>(
            chunk_bytes, static_cast<int>(p.getInt("degree", 0)));
    });
}

} // namespace detail

} // namespace fsmoe::core
