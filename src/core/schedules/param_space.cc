#include "core/schedules/param_space.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "base/logging.h"

namespace fsmoe::core {

namespace {

/** Case-insensitive test for the pipeline-degree key. */
bool
isDegreeKey(const std::string &key)
{
    if (key.size() != 6)
        return false;
    const char *want = "degree";
    for (size_t i = 0; i < 6; ++i)
        if (std::tolower(static_cast<unsigned char>(key[i])) != want[i])
            return false;
    return true;
}

/** Bit-exact canonical text of a Double axis value (matches the
 * registry's canonicalValue serialization). */
std::string
doubleText(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

bool
ParamSpace::continuous() const
{
    for (const ParamAxis &a : axes)
        if (a.continuous())
            return true;
    return false;
}

size_t
ParamSpace::gridSize() const
{
    size_t n = 1;
    for (const ParamAxis &a : axes)
        if (!a.continuous())
            n *= a.gridValues.size();
    return n;
}

ParamSpace
deriveParamSpace(const ScheduleInfo &info, int degree_cap,
                 size_t max_grid_per_axis)
{
    ParamSpace space;
    space.schedule = info.name;
    for (const ScheduleParamInfo &p : info.params) {
        if (!p.tunable || p.type == ScheduleParamType::String)
            continue;
        if (p.type != ScheduleParamType::Bool && !p.bounded())
            continue;
        ParamAxis axis;
        axis.key = p.key;
        axis.type = p.type;
        switch (p.type) {
          case ScheduleParamType::Bool:
            axis.lo = 0.0;
            axis.hi = 1.0;
            axis.gridValues = {"false", "true"};
            break;
          case ScheduleParamType::Int: {
            int64_t lo = static_cast<int64_t>(std::ceil(p.minValue));
            int64_t hi = static_cast<int64_t>(std::floor(p.maxValue));
            if (isDegreeKey(p.key))
                hi = std::min<int64_t>(hi, degree_cap);
            if (hi < lo)
                continue; // clamp emptied the interval
            axis.lo = static_cast<double>(lo);
            axis.hi = static_cast<double>(hi);
            const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
            if (span <= max_grid_per_axis)
                for (int64_t v = lo; v <= hi; ++v)
                    axis.gridValues.push_back(std::to_string(v));
            break;
          }
          case ScheduleParamType::Double:
            axis.lo = p.minValue;
            axis.hi = p.maxValue;
            if (isDegreeKey(p.key))
                axis.hi = std::min<double>(axis.hi, degree_cap);
            if (axis.hi < axis.lo)
                continue;
            break;
          case ScheduleParamType::String:
            continue; // unreachable (filtered above)
        }
        space.axes.push_back(std::move(axis));
    }
    return space;
}

std::vector<std::string>
enumerateGridSpecs(const ParamSpace &space, size_t max_specs)
{
    std::vector<std::string> specs;
    if (space.axes.empty()) {
        if (max_specs > 0)
            specs.push_back(space.schedule);
        return specs;
    }
    for (const ParamAxis &a : space.axes)
        FSMOE_CHECK_ARG(!a.continuous(), "enumerateGridSpecs: axis '",
                        a.key, "' of schedule '", space.schedule,
                        "' is continuous");
    // Odometer over the axes, first axis slowest.
    std::vector<size_t> idx(space.axes.size(), 0);
    while (specs.size() < max_specs) {
        std::string spec = space.schedule;
        for (size_t i = 0; i < space.axes.size(); ++i) {
            spec += i == 0 ? '?' : '&';
            spec += space.axes[i].key;
            spec += '=';
            spec += space.axes[i].gridValues[idx[i]];
        }
        specs.push_back(std::move(spec));
        size_t i = space.axes.size();
        while (i > 0) {
            --i;
            if (++idx[i] < space.axes[i].gridValues.size())
                break;
            idx[i] = 0;
            if (i == 0)
                return specs; // odometer wrapped: enumeration complete
        }
    }
    return specs;
}

std::string
specFromPoint(const ParamSpace &space, const std::vector<double> &x)
{
    FSMOE_CHECK_ARG(x.size() == space.axes.size(),
                    "specFromPoint: point has ", x.size(),
                    " coordinates for ", space.axes.size(), " axes");
    std::string spec = space.schedule;
    for (size_t i = 0; i < space.axes.size(); ++i) {
        const ParamAxis &a = space.axes[i];
        const double v = std::min(a.hi, std::max(a.lo, x[i]));
        spec += i == 0 ? '?' : '&';
        spec += a.key;
        spec += '=';
        switch (a.type) {
          case ScheduleParamType::Int:
            spec += std::to_string(static_cast<int64_t>(std::llround(v)));
            break;
          case ScheduleParamType::Bool:
            spec += v >= 0.5 ? "true" : "false";
            break;
          default:
            spec += doubleText(v);
            break;
        }
    }
    return spec;
}

} // namespace fsmoe::core
