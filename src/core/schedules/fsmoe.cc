/**
 * @file
 * The FSMoE schedule (paper Fig. 3d) and its No-IIO ablation.
 *
 * FSMoE: per-layer pipeline degrees solved independently for forward
 * and backward (Algorithm 1), intra-node collectives overlapped with
 * inter-node ones on separate channels, and Gradient-AllReduce traffic
 * placed by the adaptive partitioner (§5) — window-filling bytes ride
 * inside each layer's pipeline right after the last dispatch chunk,
 * dense-window bytes overlap the layer's dense backward work, and any
 * remainder runs as an exposed tail.
 *
 * FSMoE-No-IIO is identical except intra-node collectives share the
 * inter-node channel (no inter/intra overlap), isolating the benefit
 * of contribution 2.
 */
#include "core/schedules/builtins.h"
#include "core/schedules/schedule.h"
#include "core/schedules/schedule_registry.h"
#include "core/solver_cache.h"

namespace fsmoe::core {

namespace {

using namespace detail;

class FsMoeSchedule : public Schedule
{
  public:
    /**
     * @param iio   Overlap intra- and inter-node collectives on
     *              separate channels (false models the No-IIO
     *              ablation).
     * @param step2 Enable the gradient partitioner's step-2 refinement
     *              (disable to ablate adaptive repartitioning).
     */
    FsMoeSchedule(bool iio, bool step2) : iio_(iio), step2_(step2) {}

    sim::TaskGraph
    build(const ModelCost &model) const override
    {
        sim::TaskGraph graph;
        reserveIteration(graph, model.layers.size(), model.rMax);
        PipelineBuildOptions opts;
        opts.mergeCommLinks = !iio_;

        // Forward: each layer gets its own Algorithm-1 degree, served
        // from the solver cache — within one model every layer poses
        // the identical problem, so only the first layer solves cold.
        // The No-IIO ablation serialises intra- and inter-node
        // collectives on one channel, so its degrees come from the
        // merged-channel makespan model instead.
        sim::TaskId dep = -1;
        for (const LayerCost &lc : model.layers) {
            PipelineProblem prob = makeProblem(model.models, lc.workload,
                                               Phase::Forward, 0.0,
                                               model.rMax);
            int r = iio_ ? cachedSolvePipeline(prob).r
                         : cachedSolvePipelineMerged(prob).r;
            dep = appendAttention(graph, lc, Phase::Forward, opts, dep);
            dep = appendMoePhase(graph, lc, model.models, Phase::Forward,
                                 r, opts, dep);
        }

        // Backward: degrees and Gradient-AllReduce placement from the
        // adaptive partitioner. Plan index 0 is the layer backward
        // reaches first (the last model layer).
        solver::DeConfig de;
        de.populationSize = 24;
        de.maxGenerations = 80;
        GradPartitionPlan plan = cachedPartitionGradients(
            makeGeneralizedLayers(model), model.models.allreduce, de,
            /*enable_step2=*/step2_, /*merged_channel=*/!iio_);

        std::vector<sim::TaskId> barrier_deps;
        barrier_deps.reserve(2 * model.layers.size() + 2);
        size_t plan_idx = 0;
        for (auto it = model.layers.rbegin(); it != model.layers.rend();
             ++it, ++plan_idx) {
            int r = plan.solutions[plan_idx].r;
            sim::TaskId gar = -1;
            dep = appendMoePhase(graph, *it, model.models, Phase::Backward,
                                 r, opts, dep, plan.tGar[plan_idx], &gar);
            if (gar >= 0)
                barrier_deps.push_back(gar);
            // Dense-window bytes overlap this layer's dense backward as
            // background traffic (the partitioner sized them to fit).
            if (plan.denseBytes[plan_idx] > 0.0) {
                double t = model.models.allreduce.predict(
                    plan.denseBytes[plan_idx]);
                barrier_deps.push_back(graph.addTask(
                    "gar", sim::OpType::GradAllReduce, sim::Link::InterNode,
                    kGradAllReduce, t, {dep}, /*priority=*/1));
            }
            dep = appendAttention(graph, *it, Phase::Backward, opts, dep);
        }
        if (plan.exposedBytes > 0.0) {
            double t = model.models.allreduce.predict(plan.exposedBytes);
            barrier_deps.push_back(
                graph.addTask("gar", sim::OpType::GradAllReduce,
                              sim::Link::InterNode, kGradAllReduce, t,
                              {dep}));
        }
        barrier_deps.push_back(dep);
        graph.addTask("barrier", sim::OpType::Other, sim::Link::Compute,
                      kCompute, 0.0, std::move(barrier_deps));
        return graph;
    }

  private:
    bool iio_;
    bool step2_;
};

ScheduleParamInfo
step2Param()
{
    return {"step2", ScheduleParamType::Bool, "true",
            "enable the gradient partitioner's step-2 refinement",
            0.0};
}

} // namespace

namespace detail {

void
registerFsMoeSchedules(ScheduleRegistry &registry)
{
    ScheduleInfo no_iio;
    no_iio.name = "FSMoE-No-IIO";
    no_iio.aliases = {"no-iio"};
    no_iio.description =
        "FSMoE's adaptive degrees and gradient partitioning but "
        "intra/inter-node collectives serialised on one channel "
        "(the paper's ablation)";
    no_iio.params = {step2Param()};
    registry.registerSchedule(no_iio, [](const ScheduleParams &p) {
        return std::make_unique<FsMoeSchedule>(false,
                                               p.getBool("step2", true));
    });

    ScheduleInfo fsmoe;
    fsmoe.name = "FSMoE";
    fsmoe.description =
        "the full system (Fig. 3d): three streams, intra/inter "
        "overlap, per-phase degrees, adaptive gradient partitioning";
    fsmoe.params = {step2Param()};
    registry.registerSchedule(fsmoe, [](const ScheduleParams &p) {
        return std::make_unique<FsMoeSchedule>(true,
                                               p.getBool("step2", true));
    });
}

} // namespace detail

} // namespace fsmoe::core
