/**
 * @file
 * Internal registration hooks for the built-in schedule plugins.
 *
 * Each built-in schedule file defines its hook and registers its
 * plugins (ScheduleInfo + factory) there, so a schedule's metadata
 * lives next to its implementation. The registry constructor calls the
 * hooks in the paper's figure order, which both fixes the default
 * ordering of schedule axes and — because the calls reference a symbol
 * in every plugin file — keeps those translation units from being
 * dropped when the core library is linked as a static archive.
 *
 * Not installed as public API: out-of-tree plugins use
 * ScheduleRegistry::registerSchedule() / ScheduleRegistrar instead.
 */
#ifndef FSMOE_CORE_SCHEDULES_BUILTINS_H
#define FSMOE_CORE_SCHEDULES_BUILTINS_H

namespace fsmoe::core {

class ScheduleRegistry;

namespace detail {

void registerSequentialSchedules(ScheduleRegistry &registry);
void registerTutelSchedules(ScheduleRegistry &registry);
void registerLinaSchedules(ScheduleRegistry &registry);
void registerFsMoeSchedules(ScheduleRegistry &registry);

} // namespace detail

} // namespace fsmoe::core

#endif // FSMOE_CORE_SCHEDULES_BUILTINS_H
