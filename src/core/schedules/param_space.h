/**
 * @file
 * Search-space derivation for schedule parameters.
 *
 * PR 3 made every schedule's tunables machine-readable: a
 * ScheduleInfo declares each parameter's type, default, bounds, and
 * (since the tuner landed) whether an optimiser may search over it.
 * This header turns that declaration into something a search loop can
 * consume — a ParamSpace of axes, each either *enumerable* (a small
 * grid of canonical value texts) or *continuous* (a [lo, hi] interval
 * for the differential-evolution fallback) — plus the two mappings a
 * search needs: grid enumeration to spec strings, and box-point to
 * spec string.
 *
 * Only parameters that are tunable AND carry finite bounds become
 * axes; everything else stays at its default (the bare schedule name
 * covers that configuration). Axes keyed "degree" are additionally
 * clamped to the query's rMax, since a pipeline degree beyond it is
 * never legal.
 *
 * Determinism: derivation and enumeration depend only on the declared
 * metadata and the arguments — no hashing, no randomness — so the
 * same registry yields the same candidate specs in the same order in
 * every process. All functions are pure; everything here is
 * thread-safe by construction.
 */
#ifndef FSMOE_CORE_SCHEDULES_PARAM_SPACE_H
#define FSMOE_CORE_SCHEDULES_PARAM_SPACE_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/schedules/schedule_registry.h"

namespace fsmoe::core {

/** One searchable axis derived from a declared schedule parameter. */
struct ParamAxis
{
    std::string key; ///< Canonical parameter spelling, e.g. "degree".
    ScheduleParamType type = ScheduleParamType::Int;
    double lo = 0.0; ///< Inclusive lower bound (Bool: 0).
    double hi = 0.0; ///< Inclusive upper bound (Bool: 1).
    /// Canonical value texts to enumerate; empty marks the axis
    /// continuous (searched by DE over [lo, hi] instead).
    std::vector<std::string> gridValues;

    bool continuous() const { return gridValues.empty(); }
};

/** A schedule's derived search space (axes in declared order). */
struct ParamSpace
{
    std::string schedule; ///< Canonical schedule name.
    std::vector<ParamAxis> axes;

    /** Whether any axis needs the continuous (DE) search. */
    bool continuous() const;

    /**
     * Number of specs a full grid enumeration would produce (product
     * of axis grid sizes; 1 for an empty space). Continuous axes
     * count as 1 — call continuous() first to pick the search mode.
     */
    size_t gridSize() const;
};

/**
 * Derive @p info's search space. Parameters are skipped (left at
 * their defaults) unless tunable with finite bounds; String params
 * are never searchable. Int axes spanning at most
 * @p max_grid_per_axis values enumerate every integer; wider Int
 * axes and all Double axes are continuous. Bool axes enumerate
 * {false, true}. Axes keyed "degree" (any case) have their upper
 * bound clamped to @p degree_cap.
 */
ParamSpace deriveParamSpace(const ScheduleInfo &info, int degree_cap,
                            size_t max_grid_per_axis = 32);

/**
 * Cartesian-product enumeration of a fully-enumerable space into
 * canonical spec strings ("Tutel?degree=4"), first axis slowest, grid
 * values in derivation order. An empty space yields just the bare
 * schedule name. Returns at most @p max_specs entries (the caller
 * should have checked gridSize(); the cap is a safety stop, and
 * truncation keeps a deterministic prefix). Continuous axes are a
 * programming error (fatal).
 */
std::vector<std::string> enumerateGridSpecs(const ParamSpace &space,
                                            size_t max_specs);

/**
 * Map a point of the space's box — one coordinate per axis, in axis
 * order — to a canonical spec string. Coordinates are clamped into
 * [lo, hi]; Int axes round to nearest, Bool axes threshold at 0.5,
 * Double axes keep the exact IEEE value (serialized bit-exactly).
 * This is the DE-candidate decoder: nearby points may decode to the
 * same spec, which is fine — the sweep cache absorbs duplicates.
 */
std::string specFromPoint(const ParamSpace &space,
                          const std::vector<double> &x);

} // namespace fsmoe::core

#endif // FSMOE_CORE_SCHEDULES_PARAM_SPACE_H
