#include "core/schedules/schedule_registry.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/logging.h"
#include "core/schedules/builtins.h"
#include "core/schedules/schedule.h"

namespace fsmoe::core {

namespace {

/** Lowercase and drop separators, so "PipeMoE+Lina" == "pipemoe-lina"
 *  == "pipemoelina". Used for schedule names and parameter keys. */
std::string
normalizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

bool
parseIntValue(const std::string &text, int64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    *out = std::strtoll(text.c_str(), &end, 10);
    // ERANGE: strtoll saturated; the value is not what was written.
    return end == text.c_str() + text.size() && errno != ERANGE;
}

bool
parseDoubleValue(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
}

bool
parseBoolValue(const std::string &text, bool *out)
{
    const std::string t = normalizeName(text);
    if (t == "true" || t == "1" || t == "yes" || t == "on") {
        *out = true;
        return true;
    }
    if (t == "false" || t == "0" || t == "no" || t == "off") {
        *out = false;
        return true;
    }
    return false;
}

/**
 * Parse @p raw per @p param and re-serialize it canonically
 * ("04" -> "4", "Yes" -> "true", "60.0" -> "60"), so equal values
 * always produce equal spec strings. Returns false on a value that
 * does not parse as the declared type or violates the bound.
 */
bool
canonicalValue(const ScheduleParamInfo &param, const std::string &raw,
               std::string *out, std::string *why)
{
    switch (param.type) {
      case ScheduleParamType::Int: {
        int64_t v;
        if (!parseIntValue(raw, &v)) {
            *why = "expected an integer";
            return false;
        }
        // Factories consume Int params as 32-bit ints; a wider value
        // would silently wrap into a different configuration than the
        // canonical spec claims, so reject it here.
        constexpr int64_t kIntMax = 2147483647;
        if (v < -kIntMax - 1 || v > kIntMax) {
            *why = "out of range (must fit a 32-bit int)";
            return false;
        }
        if (static_cast<double>(v) < param.minValue) {
            *why = "must be >= " + std::to_string(
                       static_cast<int64_t>(param.minValue));
            return false;
        }
        if (static_cast<double>(v) > param.maxValue) {
            *why = "must be <= " + std::to_string(
                       static_cast<int64_t>(param.maxValue));
            return false;
        }
        *out = std::to_string(v);
        return true;
      }
      case ScheduleParamType::Double: {
        double v;
        if (!parseDoubleValue(raw, &v)) {
            *why = "expected a number";
            return false;
        }
        // NaN compares false against any bound, and an infinite knob
        // is never a meaningful configuration: require finiteness
        // before the bound check.
        if (!std::isfinite(v)) {
            *why = "expected a finite number";
            return false;
        }
        if (v < param.minValue) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%g", param.minValue);
            *why = std::string("must be >= ") + buf;
            return false;
        }
        if (v > param.maxValue) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%g", param.maxValue);
            *why = std::string("must be <= ") + buf;
            return false;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        *out = buf;
        return true;
      }
      case ScheduleParamType::Bool: {
        bool v;
        if (!parseBoolValue(raw, &v)) {
            *why = "expected true/false";
            return false;
        }
        *out = v ? "true" : "false";
        return true;
      }
      case ScheduleParamType::String:
        if (raw.empty()) {
            *why = "expected a non-empty string";
            return false;
        }
        *out = raw;
        return true;
    }
    *why = "unknown parameter type";
    return false;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names)
        out += (out.empty() ? "" : ", ") + n;
    return out;
}

} // namespace

const char *
scheduleParamTypeName(ScheduleParamType type)
{
    switch (type) {
      case ScheduleParamType::Int: return "int";
      case ScheduleParamType::Double: return "double";
      case ScheduleParamType::Bool: return "bool";
      case ScheduleParamType::String: return "string";
    }
    return "?";
}

// ------------------------------------------------------ ScheduleParams

const std::string *
ScheduleParams::findValue(const std::string &key) const
{
    const std::string norm = normalizeName(key);
    for (const auto &kv : values_)
        if (kv.first == norm)
            return &kv.second;
    return nullptr;
}

bool
ScheduleParams::has(const std::string &key) const
{
    return findValue(key) != nullptr;
}

int64_t
ScheduleParams::getInt(const std::string &key, int64_t fallback) const
{
    const std::string *v = findValue(key);
    if (v == nullptr)
        return fallback;
    int64_t out = 0;
    FSMOE_ASSERT(parseIntValue(*v, &out), "validated int param '", key,
                 "' no longer parses: '", *v, "'");
    return out;
}

double
ScheduleParams::getDouble(const std::string &key, double fallback) const
{
    const std::string *v = findValue(key);
    if (v == nullptr)
        return fallback;
    double out = 0.0;
    FSMOE_ASSERT(parseDoubleValue(*v, &out), "validated double param '",
                 key, "' no longer parses: '", *v, "'");
    return out;
}

bool
ScheduleParams::getBool(const std::string &key, bool fallback) const
{
    const std::string *v = findValue(key);
    if (v == nullptr)
        return fallback;
    bool out = false;
    FSMOE_ASSERT(parseBoolValue(*v, &out), "validated bool param '", key,
                 "' no longer parses: '", *v, "'");
    return out;
}

std::string
ScheduleParams::getString(const std::string &key,
                          const std::string &fallback) const
{
    const std::string *v = findValue(key);
    return v != nullptr ? *v : fallback;
}

// -------------------------------------------------------- ScheduleSpec

bool
ScheduleSpec::parse(const std::string &text, ScheduleSpec *out,
                    std::string *error)
{
    out->name.clear();
    out->params.clear();
    const std::string spec = trim(text);
    const size_t qmark = spec.find('?');
    out->name = trim(spec.substr(0, qmark));
    if (out->name.empty()) {
        if (error)
            *error = "empty schedule name in spec '" + text + "'";
        return false;
    }
    if (qmark == std::string::npos)
        return true;

    const std::string tail = spec.substr(qmark + 1);
    size_t start = 0;
    // Split on '&'; every segment must be a non-empty key=value.
    for (;;) {
        const size_t amp = tail.find('&', start);
        const std::string segment = trim(
            tail.substr(start, amp == std::string::npos ? std::string::npos
                                                        : amp - start));
        const size_t eq = segment.find('=');
        const std::string key =
            trim(eq == std::string::npos ? segment : segment.substr(0, eq));
        if (key.empty() || eq == std::string::npos) {
            if (error)
                *error = "malformed parameter '" + segment + "' in spec '" +
                         text + "' (want key=value)";
            return false;
        }
        out->params.emplace_back(key, trim(segment.substr(eq + 1)));
        if (amp == std::string::npos)
            break;
        start = amp + 1;
    }
    return true;
}

// ---------------------------------------------------- ScheduleRegistry

ScheduleRegistry &
ScheduleRegistry::instance()
{
    static ScheduleRegistry registry;
    return registry;
}

ScheduleRegistry::ScheduleRegistry()
{
    // Paper figure order; also the default schedule axis order of
    // runtime::ScenarioGrid.
    detail::registerSequentialSchedules(*this);
    detail::registerTutelSchedules(*this);
    detail::registerLinaSchedules(*this);
    detail::registerFsMoeSchedules(*this);
}

bool
ScheduleRegistry::registerSchedule(ScheduleInfo info, Factory factory)
{
    if (factory == nullptr) {
        FSMOE_WARN("schedule '", info.name, "': null factory");
        return false;
    }
    if (normalizeName(info.name).empty()) {
        FSMOE_WARN("schedule registration with an empty name");
        return false;
    }
    // Validate the declared params before touching the registry.
    std::vector<std::string> param_keys;
    for (const ScheduleParamInfo &p : info.params) {
        const std::string norm = normalizeName(p.key);
        if (norm.empty()) {
            FSMOE_WARN("schedule '", info.name,
                       "': declared parameter with an empty key");
            return false;
        }
        for (const std::string &seen : param_keys) {
            if (seen == norm) {
                FSMOE_WARN("schedule '", info.name,
                           "': duplicate declared parameter '", p.key, "'");
                return false;
            }
        }
        param_keys.push_back(norm);
        if (p.minValue > p.maxValue) {
            FSMOE_WARN("schedule '", info.name, "': parameter '", p.key,
                       "' declares minValue > maxValue");
            return false;
        }
        if (!p.defaultValue.empty()) {
            std::string canon, why;
            if (!canonicalValue(p, p.defaultValue, &canon, &why)) {
                FSMOE_WARN("schedule '", info.name, "': default '",
                           p.defaultValue, "' for parameter '", p.key,
                           "' ", why);
                return false;
            }
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    // Collect the normalized keys this plugin claims; an alias that
    // normalizes to the same key as the name (e.g. "dsmoe" for
    // "DS-MoE") is redundant, not an error, so deduplicate.
    std::vector<std::string> keys = {normalizeName(info.name)};
    for (const std::string &alias : info.aliases) {
        const std::string norm = normalizeName(alias);
        if (norm.empty()) {
            FSMOE_WARN("schedule '", info.name, "': empty alias");
            return false;
        }
        bool duplicate = false;
        for (const std::string &seen : keys)
            duplicate = duplicate || seen == norm;
        if (!duplicate)
            keys.push_back(norm);
    }
    for (const std::string &key : keys) {
        auto it = index_.find(key);
        if (it != index_.end()) {
            FSMOE_WARN("schedule '", info.name, "' collides with '",
                       entries_[it->second].info.name, "' on name '", key,
                       "'");
            return false;
        }
    }
    const size_t idx = entries_.size();
    entries_.push_back({std::move(info), std::move(factory)});
    for (const std::string &key : keys)
        index_.emplace(key, idx);
    return true;
}

bool
ScheduleRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return index_.count(normalizeName(name)) > 0;
}

std::vector<ScheduleInfo>
ScheduleRegistry::list() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ScheduleInfo> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.info);
    return out;
}

std::vector<std::string>
ScheduleRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.info.name);
    return out;
}

bool
ScheduleRegistry::info(const std::string &name, ScheduleInfo *info) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(normalizeName(name));
    if (it == index_.end())
        return false;
    if (info)
        *info = entries_[it->second].info;
    return true;
}

bool
ScheduleRegistry::validate(const ScheduleSpec &spec, Entry *entry,
                           ScheduleParams *params, std::string *canonical,
                           std::string *error) const
{
    // Copy the entry out under the lock (entries_ may reallocate as
    // other threads register), then validate outside it so factories
    // and parameter checks never hold the registry mutex.
    Entry snapshot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = index_.find(normalizeName(spec.name));
        if (it == index_.end()) {
            if (error) {
                std::vector<std::string> known;
                known.reserve(entries_.size());
                for (const Entry &e : entries_)
                    known.push_back(e.info.name);
                *error = "unknown schedule '" + spec.name +
                         "'; known: " + joinNames(known);
            }
            return false;
        }
        snapshot = entries_[it->second];
    }
    const ScheduleInfo &info = snapshot.info;

    // Validate every given parameter against the declaration, keeping
    // canonical values keyed by normalized key.
    std::vector<std::pair<std::string, std::string>> given; // norm -> canon
    for (const auto &kv : spec.params) {
        const std::string norm = normalizeName(kv.first);
        const ScheduleParamInfo *decl = nullptr;
        for (const ScheduleParamInfo &p : info.params) {
            if (normalizeName(p.key) == norm) {
                decl = &p;
                break;
            }
        }
        if (decl == nullptr) {
            if (error) {
                std::vector<std::string> declared;
                for (const ScheduleParamInfo &p : info.params)
                    declared.push_back(p.key);
                *error = "schedule '" + info.name + "' has no parameter '" +
                         kv.first + "'" +
                         (declared.empty()
                              ? std::string(" (it declares none)")
                              : "; declared: " + joinNames(declared));
            }
            return false;
        }
        for (const auto &seen : given) {
            if (seen.first == norm) {
                if (error)
                    *error = "duplicate parameter '" + decl->key +
                             "' in spec";
                return false;
            }
        }
        std::string canon, why;
        if (!canonicalValue(*decl, kv.second, &canon, &why)) {
            if (error)
                *error = "bad value '" + kv.second + "' for parameter '" +
                         decl->key + "' of schedule '" + info.name + "': " +
                         why;
            return false;
        }
        given.emplace_back(norm, std::move(canon));
    }

    // Canonical spec: canonical name, then the given params in
    // declared order with canonical key spelling and values.
    if (canonical) {
        *canonical = info.name;
        bool first = true;
        for (const ScheduleParamInfo &p : info.params) {
            const std::string norm = normalizeName(p.key);
            for (const auto &kv : given) {
                if (kv.first == norm) {
                    *canonical += (first ? "?" : "&") + p.key + "=" +
                                  kv.second;
                    first = false;
                    break;
                }
            }
        }
    }
    if (params)
        params->values_ = std::move(given);
    if (entry)
        *entry = std::move(snapshot);
    return true;
}

std::unique_ptr<Schedule>
ScheduleRegistry::tryCreate(const std::string &spec_text,
                            std::string *error) const
{
    ScheduleSpec spec;
    if (!ScheduleSpec::parse(spec_text, &spec, error))
        return nullptr;
    Entry entry;
    ScheduleParams params;
    std::string canonical;
    if (!validate(spec, &entry, &params, &canonical, error))
        return nullptr;
    std::unique_ptr<Schedule> schedule = entry.factory(params);
    if (schedule == nullptr) {
        if (error)
            *error = "factory for schedule '" + entry.info.name +
                     "' returned null";
        return nullptr;
    }
    schedule->name_ = entry.info.name;
    schedule->spec_ = std::move(canonical);
    return schedule;
}

std::unique_ptr<Schedule>
ScheduleRegistry::create(const std::string &spec) const
{
    std::string error;
    std::unique_ptr<Schedule> schedule = tryCreate(spec, &error);
    if (schedule == nullptr)
        FSMOE_FATAL(error);
    return schedule;
}

bool
ScheduleRegistry::canonicalize(const std::string &spec_text,
                               std::string *out, std::string *error) const
{
    ScheduleSpec spec;
    if (!ScheduleSpec::parse(spec_text, &spec, error))
        return false;
    return validate(spec, nullptr, nullptr, out, error);
}

ScheduleRegistrar::ScheduleRegistrar(ScheduleInfo info,
                                     ScheduleRegistry::Factory factory)
{
    ScheduleRegistry::instance().registerSchedule(std::move(info),
                                                 std::move(factory));
}

// Lives here rather than schedule.cc so the one-stop factory and the
// registry stay in one translation unit.
std::unique_ptr<Schedule>
Schedule::create(const std::string &spec)
{
    return ScheduleRegistry::instance().create(spec);
}

} // namespace fsmoe::core
