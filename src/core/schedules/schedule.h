/**
 * @file
 * Schedule generators: from per-layer costs to simulator task graphs.
 *
 * The built-in schedule plugins reproduce the systems the paper
 * evaluates (registry names in quotes):
 *
 *  - "DS-MoE": DeepSpeed-MoE's default execution (Fig. 3a) —
 *    every task runs back-to-back on one stream, Gradient-AllReduce
 *    after the whole backward pass.
 *  - "Tutel": Tutel with PipeMoE's adaptive pipelining of AlltoAll and
 *    expert computation (Fig. 3b), one communication channel (no
 *    intra/inter overlap), a single pipeline degree shared by forward
 *    and backward, Gradient-AllReduce unoverlapped.
 *  - "Tutel-Improved": Tutel plus Gradient-AllReduce overlapped with
 *    the non-MoE dense parts (the paper's strengthened baseline).
 *  - "PipeMoE+Lina": PipeMoE plus Lina's fixed-size (default 30 MB)
 *    gradient chunking overlapped with expert computation and dense
 *    parts.
 *  - "FSMoE-No-IIO": FSMoE's adaptive per-phase degrees and gradient
 *    partitioning, but inter- and intra-node communication still
 *    serialised on one channel (the paper's ablation).
 *  - "FSMoE": the full system (Fig. 3d): three streams, intra/inter
 *    overlap, per-phase degrees, adaptive gradient partitioning.
 *
 * The set is open: schedules are plugins registered with the
 * string-keyed ScheduleRegistry (schedule_registry.h) and selected by
 * spec strings with optional declared parameters ("tutel?degree=4",
 * "lina?chunkMB=60"). A schedule builds a sim::TaskGraph for one
 * training iteration (forward + backward over all generalized
 * layers); the discrete-event simulator turns it into an iteration
 * time.
 */
#ifndef FSMOE_CORE_SCHEDULES_SCHEDULE_H
#define FSMOE_CORE_SCHEDULES_SCHEDULE_H

#include <memory>
#include <string>
#include <vector>

#include "core/grad_partition.h"
#include "core/moe_config.h"
#include "core/perf_model.h"
#include "core/pipeline_solver.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe::core {

/** Costs of one generalized layer (attention + MoE). */
struct LayerCost
{
    Workload workload;
    PhaseTimes fwd;
    PhaseTimes bwd;
};

/** A whole model iteration: layers in forward order plus the models. */
struct ModelCost
{
    PerfModelSet models;
    std::vector<LayerCost> layers;
    int rMax = 16; ///< Largest pipeline degree any schedule may pick.

    /// DeepSpeed-MoE implementation overheads relative to the tuned
    /// systems, applied only by the DS-MoE baseline schedule:
    /// dsA2aOverhead models its 2DH staged AlltoAll, which pays an
    /// extra intra-node pass per message (see core/dispatch.h) — a
    /// net loss at the large message sizes these workloads produce;
    /// dsKernelOverhead models its unfused gating/ordering kernels
    /// (paper Table 6 measures 1.33-1.42x per-gate gaps).
    double dsA2aOverhead = 1.9;
    double dsKernelOverhead = 2.0;
};

/** Derive a LayerCost from a configured shape and parallelism. */
LayerCost makeLayerCost(const PerfModelSet &models, const LayerShape &shape,
                        const ParallelConfig &par);

class ScheduleRegistry;

/**
 * Abstract schedule: builds one iteration's task graph.
 *
 * Concrete schedules are plugins resolved through the string-keyed
 * ScheduleRegistry (see schedule_registry.h): each ships a
 * ScheduleInfo (canonical name, aliases, declared tunable params) and
 * a factory, and instances are created from *spec strings* such as
 * "fsmoe", "tutel?degree=4", or "lina?chunkMB=60". The closed
 * ScheduleKind enum this replaces is gone — discovering the available
 * schedules is a registry query (`ScheduleRegistry::instance().list()`
 * or `fsmoe_sweep --list-schedules`), and adding one never touches
 * core headers.
 */
class Schedule
{
  public:
    virtual ~Schedule() = default;

    /**
     * Build a schedule from a spec string via the process-wide
     * registry; fatal on unknown names or invalid parameters, listing
     * what is accepted. Equivalent to
     * `ScheduleRegistry::instance().create(spec)`.
     */
    static std::unique_ptr<Schedule> create(const std::string &spec);

    /** Canonical schedule name, e.g. "Tutel" (set by the registry). */
    const std::string &name() const { return name_; }

    /**
     * Canonical spec this instance was created from, e.g.
     * "Tutel?degree=4"; equals name() when no parameters were given.
     * Empty for instances constructed without the registry.
     */
    const std::string &spec() const { return spec_; }

    /** Build the full-iteration (forward + backward) task graph. */
    virtual sim::TaskGraph build(const ModelCost &model) const = 0;

    /** Convenience: build, simulate, and return the makespan in ms. */
    double iterationTimeMs(const ModelCost &model) const;

    /** Build + simulate, returning the full result for inspection. */
    sim::SimResult simulate(const ModelCost &model,
                            sim::TaskGraph *graph_out = nullptr) const;

  private:
    friend class ScheduleRegistry;
    std::string name_;
    std::string spec_;
};

namespace detail {

/** Stream layout shared by all schedule builders. */
enum Stream : int
{
    kCompute = 0,
    kDispatch = 1,
    kAllGather = 2,
    kReduceScatter = 3,
    kCombine = 4,
    kGradAllReduce = 5,
    kNumStreams
};

/**
 * Printable name of a builder-layout stream index; nullptr for
 * indices outside the layout (trace exporters fall back to a generic
 * label).
 */
const char *streamName(int stream);

/** Options controlling how the MoE pipeline is emitted. */
struct PipelineBuildOptions
{
    /// Serialise intra-node collectives on the inter-node channel
    /// (models systems without intra/inter overlap).
    bool mergeCommLinks = false;
    /// Place every task on the compute stream (fully sequential).
    bool sequential = false;
};

/**
 * Append one MoE layer phase (routing/order, pipelined dispatch ->
 * allgather -> experts -> reducescatter -> combine, inverse order) to
 * @p graph.
 *
 * @param graph       Graph under construction.
 * @param lc          The layer's costs.
 * @param models      Performance models for chunk durations.
 * @param phase       Forward or Backward (doubles expert compute).
 * @param r           Pipeline degree (>= 1).
 * @param opts        Stream/link emission options.
 * @param dep         Task that must finish before the layer starts
 *                    (-1 for none).
 * @param gar_ms      If > 0, insert a Gradient-AllReduce task of this
 *                    duration on the inter-node channel right after
 *                    the last dispatch chunk (Fig. 3d placement).
 * @param gar_out     Receives the AllReduce task id (-1 if none); the
 *                    caller must make the iteration barrier wait on it.
 * @return Id of the layer's final task (the inverse-order transform).
 */
sim::TaskId appendMoePhase(sim::TaskGraph &graph, const LayerCost &lc,
                           const PerfModelSet &models, Phase phase, int r,
                           const PipelineBuildOptions &opts, sim::TaskId dep,
                           double gar_ms = 0.0,
                           sim::TaskId *gar_out = nullptr);

/** Append the layer's attention (dense) task and return its id. */
sim::TaskId appendAttention(sim::TaskGraph &graph, const LayerCost &lc,
                            Phase phase, const PipelineBuildOptions &opts,
                            sim::TaskId dep);

/**
 * Reserve @p graph's task vector and dependency pool for one full
 * iteration (forward + backward) of @p num_layers layers at pipeline
 * degrees up to @p r_max. Call once per build, before appending —
 * over-estimating is fine, repeated exact-fit reserves are not (they
 * degrade vector growth to quadratic copying).
 */
void reserveIteration(sim::TaskGraph &graph, size_t num_layers, int r_max);

/** Build backward-order generalized layers for the grad partitioner. */
std::vector<GeneralizedLayer> makeGeneralizedLayers(const ModelCost &model);

} // namespace detail

} // namespace fsmoe::core

#endif // FSMOE_CORE_SCHEDULES_SCHEDULE_H
