/**
 * @file
 * The open schedule-plugin API: a string-keyed registry of schedule
 * factories with declared, validated tunable parameters.
 *
 * Every schedule — the six built-ins under src/core/schedules/ and any
 * out-of-tree plugin — registers a ScheduleInfo (canonical name,
 * aliases, description, declared params) together with a factory that
 * builds an instance from a validated parameter bag. Users then select
 * schedules by *spec string*:
 *
 *     "fsmoe"                      bare name (or any alias, any case,
 *                                  separators ignored)
 *     "tutel?degree=4"             one tunable pinned
 *     "lina?chunkMB=60&degree=2"   several, '&'-separated
 *
 * Specs are parsed and validated against the declared parameters at
 * create/canonicalize time — unknown schedules, unknown parameter
 * keys, malformed values, and out-of-range values are all reported as
 * errors, never silently ignored — so parameterized variants can be
 * first-class sweep axes with stable, diffable persisted keys.
 *
 * Registration:
 *  - Built-ins register from their own .cc via the registration hooks
 *    in schedules/builtins.h, called once when the registry is first
 *    used (a static archive drops unreferenced translation units, so
 *    pure static-initializer self-registration would be lost at link
 *    time for library code; the hook call is the reference that keeps
 *    each plugin file alive).
 *  - Out-of-tree plugins compiled into the executable can self-register
 *    at static-initialization time with a file-scope ScheduleRegistrar
 *    (object files handed directly to the linker are always kept), or
 *    call ScheduleRegistry::instance().registerSchedule() explicitly
 *    from main(). examples/schedule_explorer.cpp demonstrates both the
 *    registrar and sweeping the custom schedule against the built-ins.
 *
 * Thread-safety: ScheduleRegistry is fully thread-safe — every method
 * takes the internal lock, and factories run outside it, so a factory
 * may itself consult the registry. ScheduleInfo, ScheduleParams, and
 * ScheduleSpec are plain value types.
 */
#ifndef FSMOE_CORE_SCHEDULES_SCHEDULE_REGISTRY_H
#define FSMOE_CORE_SCHEDULES_SCHEDULE_REGISTRY_H

#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fsmoe::core {

class Schedule;

/**
 * Value type of a declared schedule parameter. Int values are
 * validated to fit a 32-bit int (factories consume them as `int`
 * knobs); Double values must be finite.
 */
enum class ScheduleParamType
{
    Int,
    Double,
    Bool,
    String
};

/** Printable name of a parameter type ("int", "double", ...). */
const char *scheduleParamTypeName(ScheduleParamType type);

/** One declared tunable of a schedule. */
struct ScheduleParamInfo
{
    std::string key;         ///< Canonical spelling, e.g. "chunkMB".
    ScheduleParamType type = ScheduleParamType::Int;
    std::string defaultValue; ///< Printable default, for discovery.
    std::string description;
    /// Numeric lower bound (inclusive); ignored for Bool/String.
    double minValue = std::numeric_limits<double>::lowest();
    /// Numeric upper bound (inclusive); ignored for Bool/String.
    double maxValue = std::numeric_limits<double>::max();
    /**
     * Whether an auto-tuner may search over this parameter. Tunable
     * numeric params must declare finite min/max bounds (that pair is
     * the search interval); modeling overrides and debug knobs should
     * set this false so the tuner leaves them at their defaults.
     */
    bool tunable = true;

    /// Whether both numeric bounds are finite (a searchable interval).
    bool bounded() const
    {
        return minValue > std::numeric_limits<double>::lowest() &&
               maxValue < std::numeric_limits<double>::max();
    }
};

/** A schedule plugin's metadata. */
struct ScheduleInfo
{
    std::string name;                 ///< Canonical name, e.g. "Tutel".
    std::vector<std::string> aliases; ///< Extra accepted names.
    std::string description;         ///< One line for --list-schedules.
    std::vector<ScheduleParamInfo> params; ///< Declared tunables.
};

/**
 * The validated parameter bag handed to a schedule factory: only
 * declared keys, every value already checked against its declared type
 * and bound. Key lookup uses the same normalization as schedule names
 * (case-insensitive, separators ignored).
 */
class ScheduleParams
{
  public:
    bool has(const std::string &key) const;

    /** Typed getters; @p fallback is returned for absent keys. */
    int64_t getInt(const std::string &key, int64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

  private:
    friend class ScheduleRegistry;
    /// (normalized key, canonical value text), declared order.
    std::vector<std::pair<std::string, std::string>> values_;

    const std::string *findValue(const std::string &key) const;
};

/**
 * A parsed (but not yet validated) spec string: "name?k=v&k2=v2"
 * split into its name and raw key=value pairs.
 */
struct ScheduleSpec
{
    std::string name;
    /// (key, value) pairs in written order, whitespace-trimmed.
    std::vector<std::pair<std::string, std::string>> params;

    /**
     * Split @p text into name and parameters. Fails (with a message in
     * *error) on an empty name, an empty parameter list after '?', or
     * a parameter missing its '=' or key.
     */
    static bool parse(const std::string &text, ScheduleSpec *out,
                      std::string *error);
};

class ScheduleRegistry
{
  public:
    /** Builds a schedule instance from a validated parameter bag. */
    using Factory =
        std::function<std::unique_ptr<Schedule>(const ScheduleParams &)>;

    /** The process-wide registry, with the built-ins pre-registered. */
    static ScheduleRegistry &instance();

    /**
     * Register a plugin. Fails (returns false and warns) when the
     * canonical name or any alias collides with an already-registered
     * name, when the name is empty, when the factory is null, or when
     * a declared parameter is malformed (empty key, duplicate key, or
     * a default that does not parse as its declared type). A failed
     * registration leaves the registry unchanged.
     */
    bool registerSchedule(ScheduleInfo info, Factory factory);

    /** Whether @p name (canonical or alias, any spelling) is known. */
    bool has(const std::string &name) const;

    /** Every plugin's metadata, in registration order. */
    std::vector<ScheduleInfo> list() const;

    /** Canonical names only, in registration order. */
    std::vector<std::string> names() const;

    /**
     * Look up one plugin's metadata by name or alias.
     * @return true and fills *info on a match.
     */
    bool info(const std::string &name, ScheduleInfo *info) const;

    /**
     * Parse @p spec, validate it, and build the schedule. On success
     * the instance's name() is the canonical schedule name and its
     * spec() the canonical spec string. On failure returns nullptr and
     * describes the problem in *error (unknown schedule names include
     * the list of known ones).
     */
    std::unique_ptr<Schedule> tryCreate(const std::string &spec,
                                        std::string *error) const;

    /** tryCreate that is fatal on any error (CLI-driver convenience). */
    std::unique_ptr<Schedule> create(const std::string &spec) const;

    /**
     * Normalize @p spec to its canonical form — canonical name
     * spelling, declared-order parameters with canonical key spelling
     * and re-serialized values — without building the schedule:
     * "TUTEL?degree=04" -> "Tutel?degree=4". Explicitly-given
     * parameters are preserved even when they equal the default, so a
     * sweep axis {"tutel", "tutel?degree=0"} keeps two distinct keys.
     * Returns false and sets *error on any validation failure.
     */
    bool canonicalize(const std::string &spec, std::string *out,
                      std::string *error) const;

  private:
    ScheduleRegistry();

    struct Entry
    {
        ScheduleInfo info;
        Factory factory;
    };

    bool validate(const ScheduleSpec &spec, Entry *entry,
                  ScheduleParams *params, std::string *canonical,
                  std::string *error) const;

    mutable std::mutex mu_;
    std::vector<Entry> entries_;
    /// normalized name/alias -> index into entries_.
    std::unordered_map<std::string, size_t> index_;
};

/**
 * Static-initialization self-registration for plugins whose object
 * files are linked directly into the executable:
 *
 *     static core::ScheduleRegistrar reg(myInfo(), myFactory);
 *
 * (For code that lands in a static library, register from an
 * explicitly-called hook instead — see the file comment.)
 */
class ScheduleRegistrar
{
  public:
    ScheduleRegistrar(ScheduleInfo info, ScheduleRegistry::Factory factory);
};

} // namespace fsmoe::core

#endif // FSMOE_CORE_SCHEDULES_SCHEDULE_REGISTRY_H
