#include "core/schedules/schedule.h"

#include <algorithm>

#include "base/logging.h"

namespace fsmoe::core {

LayerCost
makeLayerCost(const PerfModelSet &models, const LayerShape &shape,
              const ParallelConfig &par)
{
    LayerCost lc;
    lc.workload = deriveWorkload(shape, par);
    lc.fwd = forwardTimes(models, lc.workload);
    lc.bwd = backwardTimes(models, lc.workload);
    return lc;
}

double
Schedule::iterationTimeMs(const ModelCost &model) const
{
    return simulate(model).makespan;
}

sim::SimResult
Schedule::simulate(const ModelCost &model, sim::TaskGraph *graph_out) const
{
    sim::TaskGraph graph = build(model);
    sim::Simulator simulator;
    sim::SimResult result = simulator.run(graph);
    if (graph_out)
        *graph_out = std::move(graph);
    return result;
}

namespace detail {

const char *
streamName(int stream)
{
    switch (stream) {
      case kCompute: return "compute";
      case kDispatch: return "dispatch";
      case kAllGather: return "allgather";
      case kReduceScatter: return "reducescatter";
      case kCombine: return "combine";
      case kGradAllReduce: return "grad-allreduce";
      default: return nullptr;
    }
}

namespace {

sim::Link
commLink(bool merged)
{
    return merged ? sim::Link::InterNode : sim::Link::IntraNode;
}

} // namespace

void
reserveIteration(sim::TaskGraph &graph, size_t num_layers, int r_max)
{
    const size_t r = static_cast<size_t>(std::max(1, r_max));
    // Per layer per phase: attention, routing, order, iorder, up to
    // 5r pipeline chunks, and an in-pipeline Gradient-AllReduce; plus
    // slack for per-layer gradient tasks (Lina buckets, Tutel slices,
    // exposed tails) and the end-of-iteration barrier.
    const size_t per_phase = 5 + 5 * r;
    graph.reserve(num_layers * 2 * per_phase + 8 * num_layers + 2,
                  num_layers * 2 * (6 * r + 8) + 8 * num_layers + 8);
}

sim::TaskId
appendAttention(sim::TaskGraph &graph, const LayerCost &lc, Phase phase,
                const PipelineBuildOptions &opts, sim::TaskId dep)
{
    (void)opts;
    const PhaseTimes &t = phase == Phase::Forward ? lc.fwd : lc.bwd;
    std::vector<sim::TaskId> deps;
    if (dep >= 0)
        deps.push_back(dep);
    return graph.addTask("attention", sim::OpType::Attention,
                         sim::Link::Compute, kCompute, t.attention,
                         std::move(deps));
}

sim::TaskId
appendMoePhase(sim::TaskGraph &graph, const LayerCost &lc,
               const PerfModelSet &models, Phase phase, int r,
               const PipelineBuildOptions &opts, sim::TaskId dep,
               double gar_ms, sim::TaskId *gar_out)
{
    FSMOE_CHECK_ARG(r >= 1, "pipeline degree must be >= 1");
    const PhaseTimes &t = phase == Phase::Forward ? lc.fwd : lc.bwd;
    const PipelineProblem prob =
        makeProblem(models, lc.workload, phase, 0.0, r);

    const double t_a2a = prob.a2a.chunk(r);
    const double t_ag = prob.ag.chunk(r);
    const double t_rs = prob.rs.chunk(r);
    const double t_exp = prob.exp.chunk(r);

    const int s_comp = kCompute;
    const int s_disp = opts.sequential ? kCompute : kDispatch;
    const int s_ag = opts.sequential ? kCompute : kAllGather;
    const int s_rs = opts.sequential ? kCompute : kReduceScatter;
    const int s_comb = opts.sequential ? kCompute : kCombine;
    // Gradient-AllReduce gets its own queue; the Fig. 3d placement
    // (after the last dispatch chunk) is enforced by its dependency,
    // and a separate queue keeps later layers' dispatches from
    // queueing behind it.
    const int s_gar = opts.sequential ? kCompute : kGradAllReduce;

    const sim::Link l_inter = sim::Link::InterNode;
    const sim::Link l_intra = commLink(opts.mergeCommLinks);

    std::vector<sim::TaskId> start_deps;
    if (dep >= 0)
        start_deps.push_back(dep);

    sim::TaskId routing = graph.addTask("routing", sim::OpType::Routing,
                                        sim::Link::Compute, s_comp,
                                        t.routing, start_deps);
    sim::TaskId order = graph.addTask("order", sim::OpType::Order,
                                      sim::Link::Compute, s_comp, t.order,
                                      {routing});

    // Pipelined body: dispatch_i -> allgather_i -> experts_i ->
    // reducescatter_i -> combine_i, all chunks independent of each
    // other except through the shared links and streams. Labels are
    // lazy {base, chunk} pairs, so none of this formats or allocates
    // strings on the sweep hot path.
    std::vector<sim::TaskId> dispatch(r), combine(r);
    for (int i = 0; i < r; ++i) {
        dispatch[i] = graph.addTask({"d", i}, sim::OpType::AlltoAll,
                                    l_inter, s_disp, t_a2a, {order});
    }
    sim::TaskId gar = -1;
    if (gar_ms > 0.0) {
        // Background priority: the partitioner sized this AllReduce to
        // fit the pipeline's slack, and yielding the channel to
        // AlltoAll chunks keeps it from stretching the pipeline when
        // the estimate is tight.
        gar = graph.addTask("gar", sim::OpType::GradAllReduce, l_inter,
                            s_gar, gar_ms, {dispatch[r - 1]},
                            /*priority=*/1);
    }
    if (gar_out)
        *gar_out = gar;
    for (int i = 0; i < r; ++i) {
        sim::TaskId ag = graph.addTask({"g", i}, sim::OpType::AllGather,
                                       l_intra, s_ag, t_ag, {dispatch[i]});
        sim::TaskId exp = graph.addTask({"e", i}, sim::OpType::Experts,
                                        sim::Link::Compute, s_comp, t_exp,
                                        {ag});
        sim::TaskId rs = graph.addTask({"s", i}, sim::OpType::ReduceScatter,
                                       l_intra, s_rs, t_rs, {exp});
        combine[i] = graph.addTask({"c", i}, sim::OpType::AlltoAll, l_inter,
                                   s_comb, t_a2a, {rs});
    }

    // The inverse order waits for every combined chunk; the gradient
    // AllReduce does not gate it (only the end-of-iteration barrier
    // waits for AllReduces, so they may spill into later dense work).
    std::vector<sim::TaskId> tail_deps = {combine.back()};
    for (int i = 0; i + 1 < r; ++i)
        tail_deps.push_back(combine[i]);
    return graph.addTask("iorder", sim::OpType::Order, sim::Link::Compute,
                         s_comp, t.order, std::move(tail_deps));
}

std::vector<GeneralizedLayer>
makeGeneralizedLayers(const ModelCost &model)
{
    std::vector<GeneralizedLayer> layers;
    layers.reserve(model.layers.size());
    // Backward executes model layers last-to-first.
    for (auto it = model.layers.rbegin(); it != model.layers.rend(); ++it) {
        GeneralizedLayer gl;
        gl.moe = makeProblem(model.models, it->workload, Phase::Backward,
                             0.0, model.rMax);
        gl.denseOlpMs = it->bwd.attention + it->bwd.routing +
                        2.0 * it->bwd.order;
        gl.gradBytes = it->workload.gradBytes;
        layers.push_back(gl);
    }
    return layers;
}

} // namespace detail

} // namespace fsmoe::core
