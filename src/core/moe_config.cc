#include "core/moe_config.h"

#include <algorithm>
#include <sstream>

#include "base/logging.h"

namespace fsmoe::core {

int
ffnGemmCount(FfnType t)
{
    return t == FfnType::Mixtral ? 3 : 2;
}

Workload
deriveWorkload(const LayerShape &shape, const ParallelConfig &par)
{
    FSMOE_CHECK_ARG(shape.batch >= 1 && shape.seqLen >= 1 &&
                        shape.embed >= 1 && shape.hidden >= 1,
                    "degenerate layer shape");
    FSMOE_CHECK_ARG(shape.topK >= 1 && shape.topK <= shape.numExperts,
                    "top-k must lie in [1, E]");
    FSMOE_CHECK_ARG(par.numMp >= 1 && par.numEsp >= 1 && par.numEp >= 1,
                    "parallel group sizes must be positive");

    const double s = static_cast<double>(shape.tokens()) / par.numMp;
    // f = "*" (no drops) behaves like the expected balanced load k*S/E
    // per expert, i.e. an effective factor of 1.
    const double f = shape.capacityFactor > 0.0 ? shape.capacityFactor : 1.0;
    const double m = static_cast<double>(shape.embed);
    const double h = static_cast<double>(shape.hidden);
    const double l = static_cast<double>(shape.seqLen);
    const double routed = shape.topK * f * s; // token-expert pairs per GPU

    Workload w;
    w.a2aBytes = routed * m * Workload::kElemBytes;
    w.agBytes = w.a2aBytes;
    w.rsBytes = w.a2aBytes;
    w.expertGemms = ffnGemmCount(shape.ffn);
    w.expertMacs = routed * w.expertGemms * m * h;
    w.attnMacs = static_cast<double>(shape.tokens()) *
                 (4.0 * m * m + 2.0 * l * m) / par.numMp;
    w.routingMacs = s * m * static_cast<double>(shape.numExperts);
    w.orderBytes = routed * m * Workload::kElemBytes;
    w.gradBytes =
        (4.0 * m * m / par.numMp + m * shape.numExperts) *
        Workload::kElemBytes;
    return w;
}

std::string
describe(const LayerShape &shape)
{
    std::ostringstream oss;
    oss << "B=" << shape.batch << " L=" << shape.seqLen << " M="
        << shape.embed << " H=" << shape.hidden << " E=" << shape.numExperts
        << " k=" << shape.topK << " f=";
    if (shape.capacityFactor > 0.0)
        oss << shape.capacityFactor;
    else
        oss << "*";
    oss << " heads=" << shape.numHeads << " ffn="
        << (shape.ffn == FfnType::Mixtral ? "mixtral" : "simple");
    return oss.str();
}

} // namespace fsmoe::core
