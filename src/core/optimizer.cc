#include "core/optimizer.h"

#include <cmath>

namespace fsmoe::core {

void
SgdOptimizer::onAdd(const Tensor &param)
{
    if (momentum_ > 0.0f)
        velocity_.push_back(Tensor(param.shape()));
}

void
SgdOptimizer::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        Tensor *p = params_[i];
        const Tensor *g = grads_[i];
        if (momentum_ > 0.0f) {
            Tensor &vel = velocity_[i];
            for (int64_t j = 0; j < p->numel(); ++j) {
                vel.flat(j) = momentum_ * vel.flat(j) + g->flat(j);
                p->flat(j) -= lr_ * vel.flat(j);
            }
        } else {
            for (int64_t j = 0; j < p->numel(); ++j)
                p->flat(j) -= lr_ * g->flat(j);
        }
    }
}

void
AdamOptimizer::onAdd(const Tensor &param)
{
    m_.push_back(Tensor(param.shape()));
    v_.push_back(Tensor(param.shape()));
}

void
AdamOptimizer::step()
{
    t_++;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
        Tensor *p = params_[i];
        const Tensor *g = grads_[i];
        Tensor &m = m_[i];
        Tensor &v = v_[i];
        for (int64_t j = 0; j < p->numel(); ++j) {
            const float gj = g->flat(j);
            m.flat(j) = beta1_ * m.flat(j) + (1.0f - beta1_) * gj;
            v.flat(j) = beta2_ * v.flat(j) + (1.0f - beta2_) * gj * gj;
            const float mh = m.flat(j) / bc1;
            const float vh = v.flat(j) / bc2;
            p->flat(j) -= lr_ * mh / (std::sqrt(vh) + eps_);
        }
    }
}

} // namespace fsmoe::core
