/**
 * @file
 * Online profiler: microbenchmarks tasks and fits performance models.
 *
 * Paper §3.2/§6.2: before training, FSMoE measures each task type over
 * a sweep of input sizes (communication: 2^18..24*2^18 float elements;
 * GEMM: 2^19..12*2^19 work units), averages five runs per point, and
 * fits t = alpha + beta*n by least squares. Here the "hardware" being
 * measured is a simulated cluster, optionally with multiplicative
 * measurement noise, so the tests can verify that fitting recovers the
 * ground-truth coefficients and that r^2 matches the paper's >0.998.
 */
#ifndef FSMOE_CORE_PROFILER_H
#define FSMOE_CORE_PROFILER_H

#include <cstdint>
#include <vector>

#include "core/perf_model.h"
#include "sim/cluster.h"

namespace fsmoe::core {

/** Task classes the profiler can microbenchmark. */
enum class ProfileOp
{
    AlltoAll,
    AllGather,
    ReduceScatter,
    AllReduce,
    Gemm
};

/** One profiled sweep plus its fitted model. */
struct ProfileResult
{
    ProfileOp op;
    LinearModel model;            ///< Least-squares fit with r^2.
    std::vector<double> sizes;    ///< Volumes (bytes or MACs).
    std::vector<double> measured; ///< Mean measured ms per volume.
};

/**
 * Profiles a (simulated) cluster. Deterministic given the seed.
 */
class Profiler
{
  public:
    /**
     * @param spec  Cluster whose ground-truth models act as hardware.
     * @param seed  Seed for measurement noise.
     * @param runs  Runs averaged per sample point (paper uses 5).
     */
    explicit Profiler(const sim::ClusterSpec &spec, uint64_t seed = 42,
                      int runs = 5);

    /** Microbenchmark one task class over the paper's size sweep. */
    ProfileResult profile(ProfileOp op) const;

    /** Profile all five task classes and bundle the fits. */
    PerfModelSet profileAll() const;

  private:
    /** One noisy "measurement" of ground truth at volume @p n. */
    double measureOnce(const sim::CostCoeffs &truth, double n,
                       uint64_t sample_index) const;

    const sim::ClusterSpec spec_;
    uint64_t seed_;
    int runs_;
};

} // namespace fsmoe::core

#endif // FSMOE_CORE_PROFILER_H
