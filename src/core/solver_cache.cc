#include "core/solver_cache.h"

#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "base/audit.h"
#include "base/stats.h"

namespace fsmoe::core {

namespace {

/**
 * Registry mirrors of the local SolverCacheStats counters, so
 * `--metrics-json` snapshots see the solver tier next to the sweep
 * caches. clearSolverCaches() resets the local struct only — the
 * registry stays cumulative until Registry::reset().
 */
struct SolverRegStats
{
    stats::Counter &pipelineHits = stats::counter("solver.pipeline.hits");
    stats::Counter &pipelineMisses =
        stats::counter("solver.pipeline.misses");
    stats::Counter &partitionHits = stats::counter("solver.partition.hits");
    stats::Counter &partitionMisses =
        stats::counter("solver.partition.misses");
    stats::Histogram &solveMs = stats::histogram("solver.solve.ms");

    static SolverRegStats &instance()
    {
        static SolverRegStats s;
        return s;
    }
};

/// Entry-count ceiling per cache; a full cache is dropped wholesale.
/// Keys are distinct solver inputs, so ordinary sweeps stay far below
/// this — the cap only guards pathological never-repeating workloads
/// from unbounded growth.
constexpr size_t kMaxEntries = 1 << 18;

void
appendBits(std::string &key, double v)
{
    char raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    key.append(raw, sizeof raw);
}

void
appendBits(std::string &key, int64_t v)
{
    char raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    key.append(raw, sizeof raw);
}

void
appendTaskModel(std::string &key, const TaskModel &m)
{
    appendBits(key, m.alpha);
    appendBits(key, m.beta);
    appendBits(key, m.n);
}

void
appendProblem(std::string &key, const PipelineProblem &p)
{
    appendTaskModel(key, p.a2a);
    appendTaskModel(key, p.ag);
    appendTaskModel(key, p.rs);
    appendTaskModel(key, p.exp);
    appendBits(key, p.tGar);
    appendBits(key, static_cast<int64_t>(p.rMax));
}

struct Timer
{
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();

    double elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }
};

std::mutex mu;
// Thread-safety: both caches and the stats struct are guarded by mu;
// values are immutable once stored (shared_ptr<const T>).
std::unordered_map<std::string, std::shared_ptr<const PipelineSolution>>
    pipeline_cache;
std::unordered_map<std::string, std::shared_ptr<const GradPartitionPlan>>
    partition_cache;
// Guarded by mu.
SolverCacheStats stats;

#if FSMOE_AUDIT_ENABLED

/**
 * Payload fingerprints for the cache-key collision audit: with
 * bit-pattern keys, two byte-different solutions under one key would
 * mean the key misses an input the solver reads.
 */
uint64_t
fingerprintSolution(const PipelineSolution &s)
{
    audit::Fingerprint fp;
    fp.mix(s.rContinuous).mix(s.r).mix(s.tMoe).mix(s.caseId);
    fp.mix(s.tOlpMoe);
    return fp.digest();
}

uint64_t
fingerprintPlan(const GradPartitionPlan &p)
{
    audit::Fingerprint fp;
    for (const std::vector<double> *v :
         {&p.denseBytes, &p.moeBytes, &p.tGar}) {
        fp.mix(static_cast<uint64_t>(v->size()));
        for (double d : *v)
            fp.mix(d);
    }
    fp.mix(static_cast<uint64_t>(p.solutions.size()));
    for (const PipelineSolution &s : p.solutions)
        fp.mix(fingerprintSolution(s));
    fp.mix(p.exposedBytes).mix(p.totalTimeMs).mix(p.deGenerations);
    return fp.digest();
}

#endif // FSMOE_AUDIT_ENABLED

/**
 * Names a fingerprint functor only when audits are compiled in; in
 * Release the functions above do not exist and the placeholder is
 * never invoked (FSMOE_AUDIT bodies compile to nothing).
 */
#if FSMOE_AUDIT_ENABLED
#define FSMOE_SOLVER_FP(fn) (fn)
#else
#define FSMOE_SOLVER_FP(fn) 0
#endif

/**
 * Shared lookup/compute/store protocol. Values are held by shared_ptr
 * so a hit only copies a pointer under the lock — the (potentially
 * multi-vector) value itself is copied for the caller outside the
 * critical section, and stays valid even if the cache is cleared
 * concurrently. The solve also runs outside the lock; concurrent cold
 * misses on one key may duplicate work but always store identical
 * values.
 */
template <typename Map, typename Solve, typename Fingerprint>
auto
memoized(Map &cache, const char *audit_domain, const std::string &key,
         uint64_t SolverCacheStats::*hit, uint64_t SolverCacheStats::*miss,
         stats::Counter &reg_hit, stats::Counter &reg_miss, Solve &&solve,
         Fingerprint &&fingerprint)
{
    (void)audit_domain;
    (void)fingerprint;
    typename Map::mapped_type entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(key);
        if (it != cache.end()) {
            stats.*hit += 1;
            entry = it->second;
        } else {
            stats.*miss += 1;
        }
    }
    if (entry != nullptr) {
        reg_hit.inc();
        return *entry;
    }
    reg_miss.inc();
    Timer timer;
    auto value = std::make_shared<
        typename Map::mapped_type::element_type>(solve());
    const double ms = timer.elapsedMs();
    SolverRegStats::instance().solveMs.observe(ms);
    // Cold solves register their payload fingerprint; a later compute
    // of the same bit-pattern key must produce identical bytes.
    FSMOE_AUDIT(audit::checkCacheKey(audit_domain, key,
                                     fingerprint(*value)));
    {
        std::lock_guard<std::mutex> lock(mu);
        stats.solveMs += ms;
        if (cache.size() >= kMaxEntries)
            cache.clear();
        cache.emplace(key, value);
    }
    return *value;
}

} // namespace

PipelineSolution
cachedSolvePipeline(const PipelineProblem &p)
{
    std::string key(1, 'S');
    appendProblem(key, p);
    SolverRegStats &reg = SolverRegStats::instance();
    return memoized(pipeline_cache, "solver.pipeline", key,
                    &SolverCacheStats::pipelineHits,
                    &SolverCacheStats::pipelineMisses, reg.pipelineHits,
                    reg.pipelineMisses, [&] { return solvePipeline(p); },
                    FSMOE_SOLVER_FP(fingerprintSolution));
}

PipelineSolution
cachedSolvePipelineMerged(const PipelineProblem &p)
{
    std::string key(1, 'M');
    appendProblem(key, p);
    SolverRegStats &reg = SolverRegStats::instance();
    return memoized(pipeline_cache, "solver.pipeline", key,
                    &SolverCacheStats::pipelineHits,
                    &SolverCacheStats::pipelineMisses, reg.pipelineHits,
                    reg.pipelineMisses,
                    [&] { return solvePipelineMerged(p); },
                    FSMOE_SOLVER_FP(fingerprintSolution));
}

GradPartitionPlan
cachedPartitionGradients(const std::vector<GeneralizedLayer> &layers,
                         const LinearModel &allreduce,
                         const solver::DeConfig &de, bool enable_step2,
                         bool merged_channel)
{
    std::string key(1, 'P');
    key.reserve(2 + layers.size() * 16 * sizeof(double));
    appendBits(key, static_cast<int64_t>(layers.size()));
    for (const GeneralizedLayer &gl : layers) {
        appendProblem(key, gl.moe);
        appendBits(key, gl.denseOlpMs);
        appendBits(key, gl.gradBytes);
    }
    appendBits(key, allreduce.alpha);
    appendBits(key, allreduce.beta);
    appendBits(key, static_cast<int64_t>(de.populationSize));
    appendBits(key, static_cast<int64_t>(de.maxGenerations));
    appendBits(key, de.weight);
    appendBits(key, de.crossover);
    appendBits(key, static_cast<int64_t>(de.seed));
    appendBits(key, de.tolerance);
    key.push_back(enable_step2 ? '1' : '0');
    key.push_back(merged_channel ? '1' : '0');
    SolverRegStats &reg = SolverRegStats::instance();
    return memoized(partition_cache, "solver.partition", key,
                    &SolverCacheStats::partitionHits,
                    &SolverCacheStats::partitionMisses, reg.partitionHits,
                    reg.partitionMisses,
                    [&] {
                        return partitionGradients(layers, allreduce, de,
                                                  enable_step2,
                                                  merged_channel);
                    },
                    FSMOE_SOLVER_FP(fingerprintPlan));
}

SolverCacheStats
solverCacheStats()
{
    std::lock_guard<std::mutex> lock(mu);
    return stats;
}

void
clearSolverCaches()
{
    std::lock_guard<std::mutex> lock(mu);
    pipeline_cache.clear();
    partition_cache.clear();
    stats = SolverCacheStats{};
}

} // namespace fsmoe::core
