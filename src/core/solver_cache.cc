#include "core/solver_cache.h"

#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "base/stats.h"

namespace fsmoe::core {

namespace {

/**
 * Registry mirrors of the local SolverCacheStats counters, so
 * `--metrics-json` snapshots see the solver tier next to the sweep
 * caches. clearSolverCaches() resets the local struct only — the
 * registry stays cumulative until Registry::reset().
 */
struct SolverRegStats
{
    stats::Counter &pipelineHits = stats::counter("solver.pipeline.hits");
    stats::Counter &pipelineMisses =
        stats::counter("solver.pipeline.misses");
    stats::Counter &partitionHits = stats::counter("solver.partition.hits");
    stats::Counter &partitionMisses =
        stats::counter("solver.partition.misses");
    stats::Histogram &solveMs = stats::histogram("solver.solve.ms");

    static SolverRegStats &instance()
    {
        static SolverRegStats s;
        return s;
    }
};

/// Entry-count ceiling per cache; a full cache is dropped wholesale.
/// Keys are distinct solver inputs, so ordinary sweeps stay far below
/// this — the cap only guards pathological never-repeating workloads
/// from unbounded growth.
constexpr size_t kMaxEntries = 1 << 18;

void
appendBits(std::string &key, double v)
{
    char raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    key.append(raw, sizeof raw);
}

void
appendBits(std::string &key, int64_t v)
{
    char raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    key.append(raw, sizeof raw);
}

void
appendTaskModel(std::string &key, const TaskModel &m)
{
    appendBits(key, m.alpha);
    appendBits(key, m.beta);
    appendBits(key, m.n);
}

void
appendProblem(std::string &key, const PipelineProblem &p)
{
    appendTaskModel(key, p.a2a);
    appendTaskModel(key, p.ag);
    appendTaskModel(key, p.rs);
    appendTaskModel(key, p.exp);
    appendBits(key, p.tGar);
    appendBits(key, static_cast<int64_t>(p.rMax));
}

struct Timer
{
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();

    double elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }
};

std::mutex mu;
std::unordered_map<std::string, std::shared_ptr<const PipelineSolution>>
    pipeline_cache;
std::unordered_map<std::string, std::shared_ptr<const GradPartitionPlan>>
    partition_cache;
SolverCacheStats stats;

/**
 * Shared lookup/compute/store protocol. Values are held by shared_ptr
 * so a hit only copies a pointer under the lock — the (potentially
 * multi-vector) value itself is copied for the caller outside the
 * critical section, and stays valid even if the cache is cleared
 * concurrently. The solve also runs outside the lock; concurrent cold
 * misses on one key may duplicate work but always store identical
 * values.
 */
template <typename Map, typename Solve>
auto
memoized(Map &cache, const std::string &key, uint64_t SolverCacheStats::*hit,
         uint64_t SolverCacheStats::*miss, stats::Counter &reg_hit,
         stats::Counter &reg_miss, Solve &&solve)
{
    typename Map::mapped_type entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(key);
        if (it != cache.end()) {
            stats.*hit += 1;
            entry = it->second;
        } else {
            stats.*miss += 1;
        }
    }
    if (entry != nullptr) {
        reg_hit.inc();
        return *entry;
    }
    reg_miss.inc();
    Timer timer;
    auto value = std::make_shared<
        typename Map::mapped_type::element_type>(solve());
    const double ms = timer.elapsedMs();
    SolverRegStats::instance().solveMs.observe(ms);
    {
        std::lock_guard<std::mutex> lock(mu);
        stats.solveMs += ms;
        if (cache.size() >= kMaxEntries)
            cache.clear();
        cache.emplace(key, value);
    }
    return *value;
}

} // namespace

PipelineSolution
cachedSolvePipeline(const PipelineProblem &p)
{
    std::string key(1, 'S');
    appendProblem(key, p);
    SolverRegStats &reg = SolverRegStats::instance();
    return memoized(pipeline_cache, key, &SolverCacheStats::pipelineHits,
                    &SolverCacheStats::pipelineMisses, reg.pipelineHits,
                    reg.pipelineMisses, [&] { return solvePipeline(p); });
}

PipelineSolution
cachedSolvePipelineMerged(const PipelineProblem &p)
{
    std::string key(1, 'M');
    appendProblem(key, p);
    SolverRegStats &reg = SolverRegStats::instance();
    return memoized(pipeline_cache, key, &SolverCacheStats::pipelineHits,
                    &SolverCacheStats::pipelineMisses, reg.pipelineHits,
                    reg.pipelineMisses,
                    [&] { return solvePipelineMerged(p); });
}

GradPartitionPlan
cachedPartitionGradients(const std::vector<GeneralizedLayer> &layers,
                         const LinearModel &allreduce,
                         const solver::DeConfig &de, bool enable_step2,
                         bool merged_channel)
{
    std::string key(1, 'P');
    key.reserve(2 + layers.size() * 16 * sizeof(double));
    appendBits(key, static_cast<int64_t>(layers.size()));
    for (const GeneralizedLayer &gl : layers) {
        appendProblem(key, gl.moe);
        appendBits(key, gl.denseOlpMs);
        appendBits(key, gl.gradBytes);
    }
    appendBits(key, allreduce.alpha);
    appendBits(key, allreduce.beta);
    appendBits(key, static_cast<int64_t>(de.populationSize));
    appendBits(key, static_cast<int64_t>(de.maxGenerations));
    appendBits(key, de.weight);
    appendBits(key, de.crossover);
    appendBits(key, static_cast<int64_t>(de.seed));
    appendBits(key, de.tolerance);
    key.push_back(enable_step2 ? '1' : '0');
    key.push_back(merged_channel ? '1' : '0');
    SolverRegStats &reg = SolverRegStats::instance();
    return memoized(partition_cache, key, &SolverCacheStats::partitionHits,
                    &SolverCacheStats::partitionMisses, reg.partitionHits,
                    reg.partitionMisses, [&] {
                        return partitionGradients(layers, allreduce, de,
                                                  enable_step2,
                                                  merged_channel);
                    });
}

SolverCacheStats
solverCacheStats()
{
    std::lock_guard<std::mutex> lock(mu);
    return stats;
}

void
clearSolverCaches()
{
    std::lock_guard<std::mutex> lock(mu);
    pipeline_cache.clear();
    partition_cache.clear();
    stats = SolverCacheStats{};
}

} // namespace fsmoe::core
