/**
 * @file
 * Layer shapes, parallelism configuration, and workload volumes.
 *
 * This header turns a configured MoE transformer layer (paper Table 4
 * notation: B, L, M, H, E, k, f, heads, ffn type) plus a parallelism
 * layout (N_DP, N_MP, N_EP, N_ESP, N_PP) into the per-GPU communication
 * volumes (bytes) and computation workloads (multiply-accumulates) that
 * feed the performance models of §4.1.
 */
#ifndef FSMOE_CORE_MOE_CONFIG_H
#define FSMOE_CORE_MOE_CONFIG_H

#include <cstdint>
#include <string>

namespace fsmoe::core {

/** Expert feed-forward architecture (paper Table 4 "ffn-type"). */
enum class FfnType
{
    Simple,  ///< Two dense layers (M,H),(H,M) — the GPT-2 style expert.
    Mixtral  ///< SwiGLU: three matrices (M,H),(M,H),(H,M).
};

/** Number of GEMMs in one expert forward pass. */
int ffnGemmCount(FfnType t);

/** Shape of one configured attention + MoE transformer layer. */
struct LayerShape
{
    int64_t batch = 4;        ///< B: samples per GPU.
    int64_t seqLen = 1024;    ///< L: tokens per sample.
    int64_t embed = 1024;     ///< M: token embedding size.
    int64_t hidden = 4096;    ///< H: expert hidden size.
    int64_t numExperts = 8;   ///< E: total experts.
    int topK = 2;             ///< k: experts chosen per token.
    double capacityFactor = 1.2; ///< f; <= 0 means "*" (no token drops).
    int numHeads = 16;        ///< Attention heads.
    FfnType ffn = FfnType::Simple;

    /** Tokens entering the layer per DP replica (B*L). */
    int64_t tokens() const { return batch * seqLen; }
};

/** Hybrid-parallelism group sizes (paper Table 1). */
struct ParallelConfig
{
    int numDp = 1;  ///< Workers per DP group.
    int numMp = 1;  ///< Workers per MP group (= GPUs per node here).
    int numEp = 1;  ///< Workers per EP group (= nodes here).
    int numEsp = 1; ///< Workers per ESP group (= numMp in the paper's
                    ///< common scenario, §4).
    int numPp = 1;  ///< Pipeline-parallel stages.

    int totalGpus() const { return numEp * numEsp * numPp; }
};

/**
 * Per-GPU task volumes for one MoE transformer layer, in the units the
 * performance models consume: bytes for communication, MACs for
 * computation.
 */
struct Workload
{
    double a2aBytes = 0.0;     ///< n_a2a: AlltoAll dispatch (== combine).
    double agBytes = 0.0;      ///< n_ag: ESP-AllGather.
    double rsBytes = 0.0;      ///< n_rs: ESP-ReduceScatter.
    double expertMacs = 0.0;   ///< n_exp: expert FFN multiply-accumulates.
    int expertGemms = 2;       ///< GEMM launches per expert chunk (scales
                               ///< the alpha term, paper §4.1).
    double attnMacs = 0.0;     ///< Attention compute per GPU.
    double routingMacs = 0.0;  ///< Gating compute per GPU.
    double orderBytes = 0.0;   ///< (I-)Order data movement per GPU.
    double gradBytes = 0.0;    ///< n_grad: dense gradient bytes this
                               ///< layer contributes to Gradient-AllReduce.

    /// Bytes per tensor element (fp32 everywhere, as in the testbeds).
    static constexpr double kElemBytes = 4.0;
};

/**
 * Derive per-GPU volumes from shape and parallelism.
 *
 * Derivations (token count per GPU S = B*L/N_MP after the MP
 * ReduceScatter; capacity T = k*f*S/E per expert):
 *  - a2aBytes   = k*f*S*M*4: the full (E,T,M) dispatch layout.
 *  - agBytes    = rsBytes = a2aBytes: the same activations make one
 *    intra-node round trip for expert sharding.
 *  - expertMacs = k*f*S * g * M * H where g = GEMMs per expert; the
 *    ESP sharding gathers N_ESP x tokens but shards H by N_ESP, so the
 *    per-GPU MAC count is invariant.
 *  - attnMacs   = B*L*(4*M*M + 2*L*M)/N_MP (QKV+output projections plus
 *    score/value matmuls, head-partitioned).
 *  - routingMacs= S*M*E (gate projection).
 *  - gradBytes  = dense parameter bytes per GPU: attention 4*M*M/N_MP
 *    plus gate M*E (expert weights are unique per EP rank and need no
 *    DP AllReduce in this layout).
 */
Workload deriveWorkload(const LayerShape &shape, const ParallelConfig &par);

/** Human-readable one-line description of a shape. */
std::string describe(const LayerShape &shape);

} // namespace fsmoe::core

#endif // FSMOE_CORE_MOE_CONFIG_H
