#include "core/pipeline_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.h"
#include "solver/minimize.h"

namespace fsmoe::core {

PipelineProblem
makeProblem(const PerfModelSet &models, const Workload &w, Phase phase,
            double t_gar, int r_max)
{
    const double bwd = phase == Phase::Backward ? 2.0 : 1.0;
    PipelineProblem p;
    p.a2a = {models.alltoall.alpha, models.alltoall.beta, w.a2aBytes};
    p.ag = {models.allgather.alpha, models.allgather.beta, w.agBytes};
    p.rs = {models.reducescatter.alpha, models.reducescatter.beta,
            w.rsBytes};
    // Expert startup scales with GEMM launches; backward doubles both
    // the launch count and the MAC volume (input + weight gradients).
    p.exp = {models.gemm.alpha * w.expertGemms * bwd, models.gemm.beta,
             w.expertMacs * bwd};
    p.tGar = phase == Phase::Backward ? t_gar : 0.0;
    p.rMax = r_max;
    return p;
}

CasePredicates
evalPredicates(const PipelineProblem &p, double r)
{
    const double a2a = p.a2a.chunk(r);
    const double ag = p.ag.chunk(r);
    const double rs = p.rs.chunk(r);
    const double exp = p.exp.chunk(r);
    const double gar = p.tGar;

    CasePredicates q;
    q.q1 = a2a > ag;
    q.q2 = r * exp > 2.0 * (r - 1.0) * a2a;
    q.q3 = r * exp > (r - 1.0) * (ag + rs);
    q.q4 = gar > ag + rs;
    q.q5 = gar > r * exp - 2.0 * (r - 1.0) * a2a + ag + rs;
    q.q6 = gar > r * ag + r * rs - 2.0 * (r - 1.0) * a2a;
    q.q7 = gar > ag + rs + r * exp - 2.0 * (r - 1.0) * a2a;
    return q;
}

int
caseAt(const PipelineProblem &p, double r)
{
    const CasePredicates q = evalPredicates(p, r);
    if (q.q1) {
        if (q.q2)
            return q.q5 ? 1 : 2;
        return q.q4 ? 1 : 3;
    }
    if (q.q3)
        return q.q7 ? 1 : 2;
    return q.q6 ? 1 : 4;
}

double
caseTime(const PipelineProblem &p, int case_id, double r)
{
    const double a2a = p.a2a.chunk(r);
    const double ag = p.ag.chunk(r);
    const double rs = p.rs.chunk(r);
    const double exp = p.exp.chunk(r);
    switch (case_id) {
      case 1: // inter-node communication dominates (Eq. 2)
        return 2.0 * r * a2a + p.tGar;
      case 2: // expert computation dominates
        return 2.0 * a2a + ag + rs + r * exp;
      case 3: // AlltoAll dominates, gar and experts small
        return 2.0 * r * a2a + ag + rs;
      case 4: // intra-node communication dominates
        return 2.0 * a2a + r * (ag + rs);
      default:
        FSMOE_PANIC("invalid case id ", case_id);
    }
}

double
analyticMoeTime(const PipelineProblem &p, double r)
{
    return caseTime(p, caseAt(p, r), r);
}

double
overlappableMoeTime(const PipelineProblem &p, double r)
{
    PipelineProblem q = p;
    q.tGar = 0.0;
    const double a2a = q.a2a.chunk(r);
    const double ag = q.ag.chunk(r);
    const double rs = q.rs.chunk(r);
    const double exp = q.exp.chunk(r);
    switch (caseAt(q, r)) {
      case 2:
        return r * exp + ag + rs - 2.0 * (r - 1.0) * a2a;
      case 3:
        return ag + rs;
      case 4:
        return r * (ag + rs) - 2.0 * (r - 1.0) * a2a;
      default:
        // Case 1 with t_gar = 0 can only occur in degenerate corners
        // (see §5.2); the inter-node link then has no slack beyond the
        // first/last chunk boundaries.
        return ag + rs;
    }
}

namespace {

/** Continuous constrained minimisation of one case objective. */
std::optional<solver::Minimum>
solveCase(const PipelineProblem &p, int case_id)
{
    auto objective = [&](double r) { return caseTime(p, case_id, r); };
    auto feasible = [&](double r) { return caseAt(p, r) == case_id; };
    return solver::minimizeConstrained(objective, feasible, 1.0,
                                       static_cast<double>(p.rMax));
}

} // namespace

PipelineSolution
solvePipeline(const PipelineProblem &p)
{
    FSMOE_CHECK_ARG(p.rMax >= 1, "rMax must be at least 1");

    // Lines 1-6 of Algorithm 1: per-case constrained solves.
    double best_cont_r = 1.0;
    double best_cont_t = std::numeric_limits<double>::infinity();
    for (int c = 1; c <= 4; ++c) {
        auto m = solveCase(p, c);
        if (m && m->value < best_cont_t) {
            best_cont_t = m->value;
            best_cont_r = m->x;
        }
    }
    if (!std::isfinite(best_cont_t)) {
        // No case feasible anywhere on the grid (cannot happen: the
        // cases partition the space) — fall back to r = 1.
        best_cont_r = 1.0;
        best_cont_t = analyticMoeTime(p, 1.0);
    }

    // Integer refinement: a pipeline degree is a chunk count. Probe
    // the neighbourhood of the continuous optimum plus the boundary.
    PipelineSolution sol;
    sol.rContinuous = best_cont_r;
    double best_t = std::numeric_limits<double>::infinity();
    int lo = std::max(1, static_cast<int>(std::floor(best_cont_r)) - 2);
    int hi = std::min(p.rMax, static_cast<int>(std::ceil(best_cont_r)) + 2);
    auto consider = [&](int r) {
        double t = analyticMoeTime(p, r);
        if (t < best_t) {
            best_t = t;
            sol.r = r;
        }
    };
    consider(1);
    for (int r = lo; r <= hi; ++r)
        consider(r);
    sol.tMoe = best_t;
    sol.caseId = caseAt(p, sol.r);
    sol.tOlpMoe = overlappableMoeTime(p, sol.r);
    return sol;
}

double
mergedMoeTime(const PipelineProblem &p, double r)
{
    const double a2a = p.a2a.chunk(r);
    const double ag = p.ag.chunk(r);
    const double rs = p.rs.chunk(r);
    const double exp = p.exp.chunk(r);
    const double channel =
        r * (2.0 * a2a + ag + rs) + p.tGar;
    const double compute = 2.0 * a2a + ag + rs + r * exp;
    return std::max(channel, compute);
}

PipelineSolution
solvePipelineMerged(const PipelineProblem &p)
{
    FSMOE_CHECK_ARG(p.rMax >= 1, "rMax must be at least 1");
    PipelineSolution sol;
    double best_t = std::numeric_limits<double>::infinity();
    for (int r = 1; r <= p.rMax; ++r) {
        double t = mergedMoeTime(p, r);
        if (t < best_t) {
            best_t = t;
            sol.r = r;
        }
    }
    sol.rContinuous = sol.r;
    sol.tMoe = best_t;
    sol.caseId = caseAt(p, sol.r);
    // Channel slack usable by Gradient-AllReduce without extending the
    // merged-channel makespan.
    PipelineProblem q = p;
    q.tGar = 0.0;
    sol.tOlpMoe = std::max(
        0.0, mergedMoeTime(q, sol.r) -
                 (sol.r * (2.0 * q.a2a.chunk(sol.r) + q.ag.chunk(sol.r) +
                           q.rs.chunk(sol.r))));
    return sol;
}

PipelineSolution
solvePipelineExhaustive(const PipelineProblem &p)
{
    FSMOE_CHECK_ARG(p.rMax >= 1, "rMax must be at least 1");
    PipelineSolution sol;
    double best_t = std::numeric_limits<double>::infinity();
    for (int r = 1; r <= p.rMax; ++r) {
        double t = analyticMoeTime(p, r);
        if (t < best_t) {
            best_t = t;
            sol.r = r;
        }
    }
    sol.rContinuous = sol.r;
    sol.tMoe = best_t;
    sol.caseId = caseAt(p, sol.r);
    sol.tOlpMoe = overlappableMoeTime(p, sol.r);
    return sol;
}

} // namespace fsmoe::core
