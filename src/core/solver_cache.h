/**
 * @file
 * Process-wide memoization of the schedule solvers.
 *
 * The FSMoE schedule runs Algorithm 1 (solvePipeline /
 * solvePipelineMerged) once per layer per build and the gradient
 * partitioner's differential-evolution search (partitionGradients)
 * once per build. Within one model every layer poses the identical
 * PipelineProblem, and across a sweep many scenarios share problems
 * outright (warm re-runs, overlapping grids, schedule variants of one
 * configuration), so the solves are memoized here, keyed by the *bit
 * patterns* of every input field. Bit-exact keys mean a cache hit
 * returns the identical solution the solver would have produced —
 * results never depend on cache state, only wall time does.
 *
 * Thread-safety: all functions are safe to call concurrently (one
 * internal mutex per cache). Two threads racing on the same cold key
 * may both compute; both results are identical and either is stored —
 * a deliberate simplification over the sweep engine's in-flight-future
 * protocol, since solver results (unlike its counters) cannot differ.
 *
 * Statistics feed `fsmoe_sweep --profile`'s per-stage breakdown; see
 * docs/PERFORMANCE.md.
 */
#ifndef FSMOE_CORE_SOLVER_CACHE_H
#define FSMOE_CORE_SOLVER_CACHE_H

#include <cstdint>
#include <vector>

#include "core/grad_partition.h"
#include "core/pipeline_solver.h"

namespace fsmoe::core {

/** Cumulative cache counters (process lifetime, all threads). */
struct SolverCacheStats
{
    uint64_t pipelineHits = 0;   ///< solvePipeline(+Merged) cache hits.
    uint64_t pipelineMisses = 0; ///< Cold Algorithm-1 solves.
    uint64_t partitionHits = 0;  ///< partitionGradients cache hits.
    uint64_t partitionMisses = 0; ///< Cold DE partition solves.
    double solveMs = 0.0;        ///< Wall time spent in cold solves.
};

/** Memoized solvePipeline (Algorithm 1, separate channels). */
PipelineSolution cachedSolvePipeline(const PipelineProblem &p);

/** Memoized solvePipelineMerged (single-channel ablation model). */
PipelineSolution cachedSolvePipelineMerged(const PipelineProblem &p);

/** Memoized partitionGradients (greedy + DE step 2). */
GradPartitionPlan
cachedPartitionGradients(const std::vector<GeneralizedLayer> &layers,
                         const LinearModel &allreduce,
                         const solver::DeConfig &de, bool enable_step2,
                         bool merged_channel);

/** Snapshot of the cumulative counters. */
SolverCacheStats solverCacheStats();

/**
 * Drop every memoized solution and zero the counters (benchmarks use
 * this to measure genuinely cold solves).
 */
void clearSolverCaches();

} // namespace fsmoe::core

#endif // FSMOE_CORE_SOLVER_CACHE_H
