/**
 * @file
 * Linear performance models for communication and computation tasks.
 *
 * Paper §4.1 Eq. 1: the per-chunk time of a task whose total volume n
 * is split into r chunks is t_{*,r} = alpha + (n/r) * beta. A
 * PerfModelSet bundles the five models FSMoE needs (AlltoAll,
 * AllGather, ReduceScatter, AllReduce, GEMM) and prices whole-task and
 * per-chunk durations for a Workload.
 */
#ifndef FSMOE_CORE_PERF_MODEL_H
#define FSMOE_CORE_PERF_MODEL_H

#include "core/moe_config.h"
#include "sim/cluster.h"

namespace fsmoe::core {

/** One fitted linear model t(n) = alpha + beta * n. */
struct LinearModel
{
    double alpha = 0.0; ///< Startup time, ms.
    double beta = 0.0;  ///< ms per byte (comm) or per MAC (compute).
    double r2 = 1.0;    ///< Fit quality (1 for ground-truth models).

    /** Whole-task time at volume @p n. */
    double predict(double n) const { return alpha + beta * n; }

    /** Per-chunk time when volume @p n is split into @p r chunks. */
    double chunkTime(double n, double r) const
    {
        return alpha + beta * (n / r);
    }

    /** Inverse: the volume that takes time @p t (paper §5.1 g_inv). */
    double inverse(double t) const
    {
        return beta > 0.0 ? (t - alpha) / beta : 0.0;
    }
};

/** The five models used by the scheduler. */
struct PerfModelSet
{
    LinearModel alltoall;
    LinearModel allgather;
    LinearModel reducescatter;
    LinearModel allreduce;
    LinearModel gemm;

    /** Adopt a cluster's ground-truth coefficients directly. */
    static PerfModelSet fromCluster(const sim::ClusterSpec &spec);
};

/**
 * Durations of every task class of one MoE layer, forward phase, at
 * pipeline degree 1 (whole-task times). Backward-phase adjustments
 * (2x expert compute, §4.4) are applied by backwardTimes().
 */
struct PhaseTimes
{
    double a2a = 0.0;       ///< One AlltoAll (dispatch == combine).
    double allgather = 0.0; ///< ESP-AllGather.
    double reducescatter = 0.0; ///< ESP-ReduceScatter.
    double experts = 0.0;   ///< Expert FFN compute.
    double routing = 0.0;   ///< Gating.
    double order = 0.0;     ///< (I-)Ordering.
    double attention = 0.0; ///< Attention / dense compute.
    double gradAllReduce = 0.0; ///< Gradient-AllReduce (backward only).
};

/** Forward-phase task durations for @p w under @p models. */
PhaseTimes forwardTimes(const PerfModelSet &models, const Workload &w);

/**
 * Backward-phase durations: expert/attention compute doubles (weight
 * and input gradients, §4.4), communications repeat at equal volume,
 * and Gradient-AllReduce covers the layer's dense gradient bytes.
 */
PhaseTimes backwardTimes(const PerfModelSet &models, const Workload &w);

} // namespace fsmoe::core

#endif // FSMOE_CORE_PERF_MODEL_H
