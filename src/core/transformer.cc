#include "core/transformer.h"

#include "base/logging.h"

namespace fsmoe::core {

TransformerMoeBlock::TransformerMoeBlock(
    const TransformerBlockOptions &options)
    : options_(options), moe_(std::make_unique<MoeLayer>(options.moe)),
      comm_(options.moe.numEp * options.moe.numEsp)
{
    const int world = moe_->worldSize();
    const int64_t m = options.moe.embed;
    attn_.reserve(world);
    for (int r = 0; r < world; ++r) {
        AttentionOptions ao;
        ao.embed = m;
        ao.numHeads = options.numHeads;
        ao.seqLen = options.seqLen;
        ao.causal = options.causal;
        ao.seed = options.moe.seed + 7; // identical across ranks
        attn_.push_back(std::make_unique<MultiHeadAttention>(ao));
        ln1Gamma_.push_back(Tensor::full({m}, 1.0f));
        ln1Beta_.push_back(Tensor({m}));
        ln2Gamma_.push_back(Tensor::full({m}, 1.0f));
        ln2Beta_.push_back(Tensor({m}));
        dLn1Gamma_.push_back(Tensor({m}));
        dLn1Beta_.push_back(Tensor({m}));
        dLn2Gamma_.push_back(Tensor({m}));
        dLn2Beta_.push_back(Tensor({m}));
    }
    ln1Cache_.resize(world);
    ln2Cache_.resize(world);
}

std::vector<Tensor>
TransformerMoeBlock::forward(const std::vector<Tensor> &xs)
{
    const int world = moe_->worldSize();
    FSMOE_CHECK_ARG(static_cast<int>(xs.size()) == world,
                    "need one input per rank");
    xs_ = xs;
    hs_.resize(world);
    std::vector<Tensor> moe_in(world);
    for (int r = 0; r < world; ++r) {
        Tensor normed = layerNorm(xs[r], ln1Gamma_[r], ln1Beta_[r],
                                  ln1Cache_[r]);
        Tensor attn_out = attn_[r]->forward(normed);
        hs_[r] = add(xs[r], attn_out);
        moe_in[r] = layerNorm(hs_[r], ln2Gamma_[r], ln2Beta_[r],
                              ln2Cache_[r]);
    }
    std::vector<Tensor> moe_out = moe_->forward(moe_in);
    std::vector<Tensor> ys(world);
    for (int r = 0; r < world; ++r)
        ys[r] = add(hs_[r], moe_out[r]);
    return ys;
}

std::vector<Tensor>
TransformerMoeBlock::backward(const std::vector<Tensor> &d_out)
{
    const int world = moe_->worldSize();
    FSMOE_CHECK_ARG(static_cast<int>(d_out.size()) == world,
                    "need one gradient per rank");
    // y = h + MoE(LN2(h)); first the MoE branch (cross-rank), then
    // fold its input gradient through LN2 and the residual.
    std::vector<Tensor> d_moe_in = moe_->backward(d_out);
    std::vector<Tensor> dxs(world);
    for (int r = 0; r < world; ++r) {
        Tensor d_h = layerNormBackward(d_moe_in[r], ln2Gamma_[r],
                                       ln2Cache_[r], dLn2Gamma_[r],
                                       dLn2Beta_[r]);
        d_h.add_(d_out[r]);
        // h = x + Attention(LN1(x)).
        Tensor d_norm = attn_[r]->backward(d_h);
        Tensor dx = layerNormBackward(d_norm, ln1Gamma_[r], ln1Cache_[r],
                                      dLn1Gamma_[r], dLn1Beta_[r]);
        dx.add_(d_h);
        dxs[r] = std::move(dx);
    }
    return dxs;
}

void
TransformerMoeBlock::registerParams(OptimizerBase &opt)
{
    const int world = moe_->worldSize();
    for (int r = 0; r < world; ++r) {
        opt.addAll(attn_[r]->params(), attn_[r]->grads());
        opt.add(&ln1Gamma_[r], &dLn1Gamma_[r]);
        opt.add(&ln1Beta_[r], &dLn1Beta_[r]);
        opt.add(&ln2Gamma_[r], &dLn2Gamma_[r]);
        opt.add(&ln2Beta_[r], &dLn2Beta_[r]);
        opt.addAll(moe_->gate(r).params(), moe_->gate(r).grads());
        const int e_loc = options_.moe.numExperts / options_.moe.numEp;
        for (int j = 0; j < e_loc; ++j) {
            ExpertBase &expert = moe_->expertShard(r, j);
            opt.addAll(expert.params(), expert.grads());
        }
    }
}

void
TransformerMoeBlock::zeroGrad()
{
    const int world = moe_->worldSize();
    moe_->zeroGrad();
    for (int r = 0; r < world; ++r) {
        attn_[r]->zeroGrad();
        dLn1Gamma_[r].fill(0.0f);
        dLn1Beta_[r].fill(0.0f);
        dLn2Gamma_[r].fill(0.0f);
        dLn2Beta_[r].fill(0.0f);
    }
}

void
TransformerMoeBlock::syncReplicatedGrads()
{
    const int world = moe_->worldSize();
    if (world == 1)
        return;
    moe_->syncReplicatedGrads();
    dist::Group everyone;
    for (int r = 0; r < world; ++r)
        everyone.push_back(r);

    auto sync = [&](auto accessor) {
        std::vector<Tensor> bufs(world);
        for (int r = 0; r < world; ++r)
            bufs[r] = *accessor(r);
        comm_.allReduce(bufs, everyone);
        for (int r = 0; r < world; ++r) {
            bufs[r].scale_(1.0f / world);
            *accessor(r) = bufs[r];
        }
    };
    const size_t attn_params = attn_[0]->grads().size();
    for (size_t pi = 0; pi < attn_params; ++pi)
        sync([&](int r) { return attn_[r]->grads()[pi]; });
    sync([&](int r) { return &dLn1Gamma_[r]; });
    sync([&](int r) { return &dLn1Beta_[r]; });
    sync([&](int r) { return &dLn2Gamma_[r]; });
    sync([&](int r) { return &dLn2Beta_[r]; });
}

} // namespace fsmoe::core
