/**
 * @file
 * The modular MoE layer (paper §3): Gate + Order/I-Order + Dispatch/
 * Combine + Expert, composed over the DP+MP+EP+ESP layout of Fig. 2,
 * with non-invasive hooks at the six points of §3.1.
 *
 * The layer orchestrates all P = numEp * numEsp ranks inside one
 * process (see dist::Communicator): forward runs gate -> order ->
 * AlltoAll dispatch -> ESP-AllGather -> sharded experts ->
 * ESP-ReduceScatter -> AlltoAll combine -> I-order on every rank, and
 * backward replays the exact adjoint chain, so distributed and
 * single-rank executions are numerically identical (a property the
 * test suite asserts token-by-token).
 */
#ifndef FSMOE_CORE_MOE_LAYER_H
#define FSMOE_CORE_MOE_LAYER_H

#include <memory>
#include <vector>

#include "core/expert.h"
#include "core/gate.h"
#include "core/order.h"
#include "dist/communicator.h"
#include "tensor/tensor.h"

namespace fsmoe::core {

/** Where a hook fires (paper §3.1 "Hooks"). */
enum class HookPoint
{
    BeforeMoeStart,
    BeforeDispatch,
    AfterDispatch,
    BeforeCombine,
    AfterCombine,
    BeforeMoeEnd
};

/** Context handed to callbacks; payload is mutable in place. */
struct HookContext
{
    HookPoint point;
    int rank = 0;
    /// The rank's buffer at this point: tokens (n, M) at start/end,
    /// the dispatch layout (E, T, M) around dispatch/combine.
    Tensor *payload = nullptr;
};

/**
 * Non-invasive extension interface (the paper's CallbackBase,
 * Listing 1). Override only the hooks you need; e.g. a communication
 * compressor would compress in beforeDispatch and decompress in
 * afterDispatch.
 */
class CallbackBase
{
  public:
    virtual ~CallbackBase() = default;
    virtual void beforeMoeStart(HookContext &) {}
    virtual void beforeDispatch(HookContext &) {}
    virtual void afterDispatch(HookContext &) {}
    virtual void beforeCombine(HookContext &) {}
    virtual void afterCombine(HookContext &) {}
    virtual void beforeMoeEnd(HookContext &) {}
};

/** Everything needed to build a MoeLayer. */
struct MoeLayerOptions
{
    int64_t embed = 64;       ///< M.
    int64_t hidden = 128;     ///< H (full, pre-sharding).
    int numExperts = 4;       ///< E; must divide by numEp.
    int topK = 2;             ///< k.
    double capacityFactor = 1.2; ///< f; <= 0 disables token dropping.
    FfnType ffn = FfnType::Simple;
    GateKind gate = GateKind::GShard;
    OrderKind order = OrderKind::TutelSparse;
    dist::A2aAlgo a2a = dist::A2aAlgo::NcclDirect;
    int numEp = 1;  ///< EP group size (ranks holding distinct experts).
    int numEsp = 1; ///< ESP group size (shards per expert).
    uint64_t seed = 1234; ///< Weight initialisation seed. Two layers
                          ///< built with equal seed/shape have equal
                          ///< weights regardless of parallel layout.
    double auxLossScale = 0.0; ///< >0 adds the GShard load-balancing
                               ///< loss; its gradient is folded into
                               ///< the gate backward automatically.
};

/**
 * The distributed MoE layer. Buffers are vectors indexed by global
 * rank; each rank's input is its (tokensPerRank, M) slice.
 */
class MoeLayer
{
  public:
    explicit MoeLayer(const MoeLayerOptions &options);

    const MoeLayerOptions &options() const { return options_; }
    int worldSize() const { return layout_.worldSize(); }

    /** Register a hook callback (shared across ranks). */
    void addCallback(std::shared_ptr<CallbackBase> callback);

    /**
     * Forward pass on all ranks.
     *
     * @param xs  Per-rank token tensors, all of one shape (n, M).
     * @return    Per-rank outputs of the same shape.
     */
    std::vector<Tensor> forward(const std::vector<Tensor> &xs);

    /**
     * Backward pass; must follow a forward.
     *
     * @param d_out  Per-rank gradients w.r.t. the forward outputs.
     * @return       Per-rank gradients w.r.t. the forward inputs.
     */
    std::vector<Tensor> backward(const std::vector<Tensor> &d_out);

    /** Zero every parameter gradient on every rank. */
    void zeroGrad();

    /**
     * Average the replicated gate gradients across ranks (the MoE
     * analogue of Gradient-AllReduce; expert shards are unique per
     * rank and need no synchronisation in this layout).
     */
    void syncReplicatedGrads();

    /** Plain SGD update on all parameters of all ranks. */
    void sgdStep(float lr);

    /** Per-expert slot capacity T for @p tokens_per_rank inputs. */
    int64_t capacity(int64_t tokens_per_rank) const;

    /** Assignments dropped on @p rank in the last forward. */
    int64_t dropped(int rank) const;

    /** The gate instance of @p rank (e.g. to enable GShard noise). */
    GateBase &gate(int rank) { return *gates_.at(rank); }

    /** Shard of local expert @p j held by @p rank. */
    ExpertBase &expertShard(int rank, int j);

    /** Load-balancing loss summed across ranks in the last forward
     *  (0 unless auxLossScale > 0). */
    double lastAuxLoss() const { return lastAuxLoss_; }

  private:
    void runHooks(HookPoint point, std::vector<Tensor> &payloads);

    MoeLayerOptions options_;
    dist::ParallelLayout layout_;
    dist::Communicator comm_;
    Order order_;
    std::vector<std::unique_ptr<GateBase>> gates_;      // per rank
    /// experts_[rank][j]: shard of global expert epOf(rank)*Eloc + j.
    std::vector<std::vector<std::unique_ptr<ExpertBase>>> experts_;
    std::vector<std::shared_ptr<CallbackBase>> callbacks_;

    // Forward caches (per rank).
    std::vector<OrderMap> maps_;
    std::vector<Tensor> expertOut_; ///< Combined (E, T, M) per rank.
    std::vector<AuxLossResult> aux_; ///< Per-rank aux-loss gradients.
    double lastAuxLoss_ = 0.0;
    int64_t lastTokens_ = 0;
};

} // namespace fsmoe::core

#endif // FSMOE_CORE_MOE_LAYER_H
