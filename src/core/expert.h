/**
 * @file
 * Expert networks — the Expert sub-module of §3.1.
 *
 * Two variants mirror the paper's pre-implemented experts: the GPT-2
 * style two-layer feed-forward network [3] and the Mixtral SwiGLU
 * network [20]. Experts are bias-free (as in Mixtral), which also
 * keeps capacity padding exactly neutral: a zero row stays zero
 * through the network, so padded slots never leak into combines.
 *
 * Each expert supports column-sharding of its hidden dimension for
 * expert-sharding parallelism: shard(s, n) returns the s-th of n
 * shards, and summing the shards' outputs reproduces the full expert
 * (ESP-ReduceScatter does that sum in MoeLayer).
 */
#ifndef FSMOE_CORE_EXPERT_H
#define FSMOE_CORE_EXPERT_H

#include <memory>
#include <string>
#include <vector>

#include "core/moe_config.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fsmoe::core {

/**
 * Abstract expert: a token-wise (t, M) -> (t, M) network with manual
 * backward. Subclass to plug custom experts into MoeLayer (the
 * paper's ExpertBase in Listing 1).
 */
class ExpertBase
{
  public:
    virtual ~ExpertBase() = default;

    virtual std::string name() const = 0;

    /** Forward; caches activations for backward. */
    virtual Tensor forward(const Tensor &x) = 0;

    /**
     * Backward: accumulate weight gradients and return the gradient
     * w.r.t. the last forward's input.
     */
    virtual Tensor backward(const Tensor &dy) = 0;

    /** Trainable parameters. */
    virtual std::vector<Tensor *> params() = 0;

    /** Gradients aligned with params(). */
    virtual std::vector<Tensor *> grads() = 0;

    /**
     * Hidden-dimension shard s of n: an expert whose output is this
     * expert's partial contribution; the n shards' outputs sum to the
     * full output.
     */
    virtual std::unique_ptr<ExpertBase> shard(int s, int n) const = 0;

    /** Reset all parameter gradients to zero. */
    void zeroGrad();
};

/** Construct a fresh randomly-initialised expert. */
std::unique_ptr<ExpertBase> makeExpert(FfnType type, int64_t embed,
                                       int64_t hidden, Rng &rng);

} // namespace fsmoe::core

#endif // FSMOE_CORE_EXPERT_H
