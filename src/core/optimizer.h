/**
 * @file
 * Optimizers for the functional training path: plain SGD with optional
 * momentum, and Adam. Both operate on (param, grad) tensor pairs
 * collected from gates, experts, attention and layer norms, so a
 * whole transformer-MoE block trains with one optimizer instance.
 */
#ifndef FSMOE_CORE_OPTIMIZER_H
#define FSMOE_CORE_OPTIMIZER_H

#include <memory>
#include <vector>

#include "base/logging.h"
#include "tensor/tensor.h"

namespace fsmoe::core {

/** Abstract optimizer over registered parameter/gradient pairs. */
class OptimizerBase
{
  public:
    virtual ~OptimizerBase() = default;

    /** Register a parameter and its gradient buffer. */
    void
    add(Tensor *param, Tensor *grad)
    {
        FSMOE_CHECK_ARG(param && grad && param->sameShape(*grad),
                        "optimizer parameter/gradient mismatch");
        params_.push_back(param);
        grads_.push_back(grad);
        onAdd(*param);
    }

    /** Register parallel vectors of params and grads. */
    void
    addAll(std::vector<Tensor *> params, std::vector<Tensor *> grads)
    {
        FSMOE_CHECK_ARG(params.size() == grads.size(),
                        "optimizer parameter/gradient count mismatch");
        for (size_t i = 0; i < params.size(); ++i)
            add(params[i], grads[i]);
    }

    /** Apply one update step using the current gradients. */
    virtual void step() = 0;

    /** Zero every registered gradient. */
    void
    zeroGrad()
    {
        for (Tensor *g : grads_)
            g->fill(0.0f);
    }

    size_t numParams() const { return params_.size(); }

  protected:
    virtual void onAdd(const Tensor &) {}

    std::vector<Tensor *> params_;
    std::vector<Tensor *> grads_;
};

/** SGD with optional momentum. */
class SgdOptimizer : public OptimizerBase
{
  public:
    explicit SgdOptimizer(float lr, float momentum = 0.0f)
        : lr_(lr), momentum_(momentum)
    {
    }

    void step() override;

  protected:
    void onAdd(const Tensor &param) override;

  private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;
};

/** Adam (Kingma & Ba) with bias correction. */
class AdamOptimizer : public OptimizerBase
{
  public:
    explicit AdamOptimizer(float lr, float beta1 = 0.9f,
                           float beta2 = 0.999f, float eps = 1e-8f)
        : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
    {
    }

    void step() override;

  protected:
    void onAdd(const Tensor &param) override;

  private:
    float lr_, beta1_, beta2_, eps_;
    int64_t t_ = 0;
    std::vector<Tensor> m_, v_;
};

} // namespace fsmoe::core

#endif // FSMOE_CORE_OPTIMIZER_H
