/**
 * @file
 * Multi-head self-attention — the dense sibling of the MoE layer in
 * every transformer block the paper evaluates (Table 2's "Attention"
 * column). Implemented functionally with an exact manual backward so
 * the full transformer block (attention + MoE) can train end-to-end
 * on the CPU substrate.
 *
 * The implementation is deliberately un-sharded (each rank runs full
 * attention over its own tokens); the *cost* of Megatron-style MP
 * sharding is captured by the scheduler's Workload::attnMacs model,
 * while the numerics here are layout-independent.
 */
#ifndef FSMOE_CORE_ATTENTION_H
#define FSMOE_CORE_ATTENTION_H

#include <memory>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fsmoe::core {

/** Configuration of one attention layer. */
struct AttentionOptions
{
    int64_t embed = 64;   ///< M, must divide by numHeads.
    int numHeads = 4;     ///< Attention heads.
    int64_t seqLen = 16;  ///< L, the sequence length per sample.
    bool causal = true;   ///< Apply a causal (autoregressive) mask.
    uint64_t seed = 99;   ///< Weight initialisation seed.
};

/**
 * Multi-head scaled-dot-product self-attention with combined QKV
 * projection, matching the GPT-2 block structure.
 */
class MultiHeadAttention
{
  public:
    explicit MultiHeadAttention(const AttentionOptions &options);

    const AttentionOptions &options() const { return options_; }

    /**
     * Forward over a batch of sequences.
     *
     * @param x  Tokens of shape (B*L, M), sequence-major: row
     *           b*L + t is token t of sample b.
     * @return   Attention output of the same shape.
     */
    Tensor forward(const Tensor &x);

    /** Backward; accumulates weight gradients, returns dX. */
    Tensor backward(const Tensor &dy);

    std::vector<Tensor *> params() { return {&wqkv_, &wout_}; }
    std::vector<Tensor *> grads() { return {&dWqkv_, &dWout_}; }

    /** Reset parameter gradients. */
    void zeroGrad();

  private:
    AttentionOptions options_;
    int64_t headDim_;
    Tensor wqkv_;  ///< (M, 3M) combined projection.
    Tensor wout_;  ///< (M, M) output projection.
    Tensor dWqkv_, dWout_;

    // Forward caches.
    Tensor x_, qkv_, probs_, context_;
    int64_t batch_ = 0;
};

} // namespace fsmoe::core

#endif // FSMOE_CORE_ATTENTION_H
