#include "core/grad_partition.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace fsmoe::core {

namespace {

/** AllReduce time for a byte count, zero for an empty slice. */
double
garTime(const LinearModel &ar, double bytes)
{
    return bytes > 0.0 ? ar.predict(bytes) : 0.0;
}

/** Bytes whose AllReduce fits inside a window of @p ms milliseconds. */
double
garCapacity(const LinearModel &ar, double ms)
{
    return std::max(0.0, ar.inverse(ms));
}

/** Fill a plan's solutions, times and total from its byte assignment. */
void
finalizePlan(GradPartitionPlan &plan,
             const std::vector<GeneralizedLayer> &layers,
             const LinearModel &ar, bool merged)
{
    const size_t n = layers.size();
    plan.tGar.assign(n, 0.0);
    plan.solutions.resize(n);
    plan.totalTimeMs = 0.0;
    for (size_t i = 0; i < n; ++i) {
        PipelineProblem prob = layers[i].moe;
        plan.tGar[i] = garTime(ar, plan.moeBytes[i]);
        prob.tGar = plan.tGar[i];
        plan.solutions[i] = merged ? solvePipelineMerged(prob)
                                   : solvePipeline(prob);
        plan.totalTimeMs += plan.solutions[i].tMoe + layers[i].denseOlpMs;
    }
    plan.totalTimeMs += garTime(ar, plan.exposedBytes);
}

} // namespace

GradPartitionPlan
partitionGradients(const std::vector<GeneralizedLayer> &layers,
                   const LinearModel &allreduce, const solver::DeConfig &de,
                   bool enable_step2, bool merged_channel)
{
    const size_t n = layers.size();
    FSMOE_CHECK_ARG(n >= 1, "need at least one generalized layer");

    GradPartitionPlan plan;
    plan.denseBytes.assign(n, 0.0);
    plan.moeBytes.assign(n, 0.0);

    // ---- Step 1 (Eqs. 3-4): greedy window filling. ----------------
    // Walk layers in backward execution order. A layer's gradient
    // becomes available as its backward runs (expert weight gradients
    // are produced chunk by chunk inside the pipeline), so — exactly
    // as Fig. 3d draws it — a layer can hide its *own* gradient as
    // well as anything pending from already-executed layers. Dense
    // windows fill first (they are free), then the pipeline slack.
    double pending = 0.0;
    // Unassigned bytes available at each layer, for step 2's bounds.
    std::vector<double> produced_prefix(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        pending += layers[i].gradBytes;
        if (pending > 0.0) {
            double dense_cap = garCapacity(allreduce, layers[i].denseOlpMs);
            double take = std::min(pending, dense_cap);
            plan.denseBytes[i] = take;
            pending -= take;
        }
        if (pending > 0.0) {
            PipelineSolution free_sol =
                merged_channel ? solvePipelineMerged(layers[i].moe)
                               : solvePipeline(layers[i].moe);
            double moe_cap = garCapacity(allreduce, free_sol.tOlpMoe);
            double take = std::min(pending, moe_cap);
            plan.moeBytes[i] = take;
            pending -= take;
        }
        produced_prefix[i] = pending; // bytes still unassigned after i
    }
    plan.exposedBytes = pending;

    if (!enable_step2 || pending <= 0.0) {
        finalizePlan(plan, layers, allreduce, merged_channel);
        return plan;
    }

    // ---- Step 2 (Eq. 5): optimise the remaining assignment. -------
    // Variables: extra bytes x_i ridden in layer i's pipeline on top of
    // the step-1 fill. Causality: bytes assigned to layers 0..i cannot
    // exceed the bytes left unassigned when layer i runs; violations
    // and over-assignment are penalised.
    const double remaining = pending;
    std::vector<double> lo(n, 0.0), hi(n, remaining);
    auto objective = [&](const std::vector<double> &x) {
        double total = 0.0;
        double assigned = 0.0;
        double violation = 0.0;
        double cum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            cum += x[i];
            double avail = produced_prefix[i];
            if (cum > avail)
                violation += cum - avail;
        }
        assigned = cum;
        if (assigned > remaining)
            violation += assigned - remaining;
        for (size_t i = 0; i < n; ++i) {
            PipelineProblem prob = layers[i].moe;
            prob.tGar = garTime(allreduce, plan.moeBytes[i] + x[i]);
            // The exhaustive integer solves are exact and cheap
            // enough for the inner loop of differential evolution.
            total += merged_channel ? solvePipelineMerged(prob).tMoe
                                    : solvePipelineExhaustive(prob).tMoe;
        }
        double tail = std::max(0.0, remaining - assigned);
        total += garTime(allreduce, tail);
        // Penalty scale: one full AllReduce of the violation, squared
        // growth to push DE firmly inside the feasible region.
        if (violation > 0.0) {
            total += garTime(allreduce, violation) * 10.0 +
                     allreduce.beta * violation;
        }
        return total;
    };

    solver::DeResult best = solver::differentialEvolution(objective, lo, hi,
                                                          de);
    plan.deGenerations = best.generations;

    // Clip the DE solution to the feasible polytope before adopting it.
    double cum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double avail = produced_prefix[i];
        double x = std::max(0.0, best.x[i]);
        x = std::min(x, std::max(0.0, avail - cum));
        cum += x;
        plan.moeBytes[i] += x;
    }
    plan.exposedBytes = std::max(0.0, remaining - cum);
    finalizePlan(plan, layers, allreduce, merged_channel);
    return plan;
}

GradPartitionPlan
partitionGradientsLina(const std::vector<GeneralizedLayer> &layers,
                       const LinearModel &allreduce, double chunk_bytes)
{
    const size_t n = layers.size();
    FSMOE_CHECK_ARG(n >= 1, "need at least one generalized layer");
    FSMOE_CHECK_ARG(chunk_bytes > 0.0, "chunk size must be positive");

    GradPartitionPlan plan;
    plan.denseBytes.assign(n, 0.0);
    plan.moeBytes.assign(n, 0.0);

    // Lina slices gradients into fixed chunks and overlaps them with
    // expert computation and dense parts, not with the intra-node
    // collectives; a chunk is scheduled only if it fits entirely, so a
    // window smaller than one chunk's AllReduce stays idle — the
    // "hit or miss" behaviour the paper observes (§6.4).
    const double chunk_ms = allreduce.predict(chunk_bytes);
    double pending = 0.0;
    for (size_t i = 0; i < n; ++i) {
        // Dense window: whole chunks only.
        double window = layers[i].denseOlpMs;
        while (pending >= chunk_bytes && window >= chunk_ms) {
            plan.denseBytes[i] += chunk_bytes;
            pending -= chunk_bytes;
            window -= chunk_ms;
        }
        // Expert-computation window inside the MoE layer: Lina overlaps
        // gradient chunks with expert compute only (not the pipeline's
        // communication slack).
        PipelineSolution sol = solvePipeline(layers[i].moe);
        double exp_window =
            layers[i].moe.exp.chunk(sol.r) * sol.r;
        while (pending >= chunk_bytes && exp_window >= chunk_ms) {
            plan.moeBytes[i] += chunk_bytes;
            pending -= chunk_bytes;
            exp_window -= chunk_ms;
        }
        pending += layers[i].gradBytes;
    }
    plan.exposedBytes = pending;
    finalizePlan(plan, layers, allreduce, /*merged=*/true);
    return plan;
}

} // namespace fsmoe::core
