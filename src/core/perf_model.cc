#include "core/perf_model.h"

namespace fsmoe::core {

PerfModelSet
PerfModelSet::fromCluster(const sim::ClusterSpec &spec)
{
    PerfModelSet set;
    set.alltoall = {spec.alltoall.alpha, spec.alltoall.beta, 1.0};
    set.allgather = {spec.allgather.alpha, spec.allgather.beta, 1.0};
    set.reducescatter = {spec.reducescatter.alpha, spec.reducescatter.beta,
                         1.0};
    set.allreduce = {spec.allreduce.alpha, spec.allreduce.beta, 1.0};
    set.gemm = {spec.gemm.alpha, spec.gemm.beta, 1.0};
    return set;
}

namespace {

PhaseTimes
phaseTimes(const PerfModelSet &models, const Workload &w,
           double compute_scale, double grad_bytes)
{
    PhaseTimes t;
    t.a2a = models.alltoall.predict(w.a2aBytes);
    t.allgather = models.allgather.predict(w.agBytes);
    t.reducescatter = models.reducescatter.predict(w.rsBytes);
    // Expert startup scales with the number of GEMM launches (§4.1).
    t.experts = models.gemm.alpha * w.expertGemms +
                models.gemm.beta * w.expertMacs * compute_scale;
    t.routing = models.gemm.predict(w.routingMacs * compute_scale);
    // Ordering is a layout pass over the dispatch buffer in device
    // memory; HBM copy bandwidth is roughly 15x the NVLink collective
    // rate, which reproduces Table 2's sub-1.5% order share.
    t.order = models.allgather.beta * w.orderBytes / 15.0;
    t.attention = models.gemm.predict(w.attnMacs * compute_scale);
    t.gradAllReduce =
        grad_bytes > 0.0 ? models.allreduce.predict(grad_bytes) : 0.0;
    return t;
}

} // namespace

PhaseTimes
forwardTimes(const PerfModelSet &models, const Workload &w)
{
    return phaseTimes(models, w, 1.0, 0.0);
}

PhaseTimes
backwardTimes(const PerfModelSet &models, const Workload &w)
{
    return phaseTimes(models, w, 2.0, w.gradBytes);
}

} // namespace fsmoe::core
