#include "core/expert.h"

#include "base/logging.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace fsmoe::core {

void
ExpertBase::zeroGrad()
{
    for (Tensor *g : grads())
        g->fill(0.0f);
}

namespace {

constexpr float kInitStd = 0.02f;

/** Copy a column block [c0, c1) of a (rows, cols) matrix. */
Tensor
sliceCols(const Tensor &w, int64_t c0, int64_t c1)
{
    const int64_t rows = w.size(0);
    const int64_t cols = w.size(1);
    FSMOE_CHECK_ARG(c0 >= 0 && c0 < c1 && c1 <= cols, "bad column slice");
    Tensor out({rows, c1 - c0});
    for (int64_t r = 0; r < rows; ++r) {
        std::copy(w.data() + r * cols + c0, w.data() + r * cols + c1,
                  out.data() + r * (c1 - c0));
    }
    return out;
}

/**
 * GPT-2 style expert: y = act(x W1) W2 with GELU activation.
 */
class SimpleFfnExpert : public ExpertBase
{
  public:
    SimpleFfnExpert(Tensor w1, Tensor w2)
        : w1_(std::move(w1)), w2_(std::move(w2)), dW1_(w1_.shape()),
          dW2_(w2_.shape())
    {
    }

    SimpleFfnExpert(int64_t embed, int64_t hidden, Rng &rng)
        : SimpleFfnExpert(rng.normalTensor({embed, hidden}, 0.0f, kInitStd),
                          rng.normalTensor({hidden, embed}, 0.0f, kInitStd))
    {
    }

    std::string name() const override { return "simple-ffn"; }

    Tensor
    forward(const Tensor &x) override
    {
        x_ = x;
        pre_ = matmul(x, w1_);
        act_ = gelu(pre_);
        return matmul(act_, w2_);
    }

    Tensor
    backward(const Tensor &dy) override
    {
        gemm(act_, Trans::Yes, dy, Trans::No, dW2_, 1.0f, 1.0f);
        Tensor d_act = matmul(dy, w2_, Trans::No, Trans::Yes);
        Tensor d_pre = geluBackward(pre_, d_act);
        gemm(x_, Trans::Yes, d_pre, Trans::No, dW1_, 1.0f, 1.0f);
        return matmul(d_pre, w1_, Trans::No, Trans::Yes);
    }

    std::vector<Tensor *> params() override { return {&w1_, &w2_}; }
    std::vector<Tensor *> grads() override { return {&dW1_, &dW2_}; }

    std::unique_ptr<ExpertBase>
    shard(int s, int n) const override
    {
        const int64_t h = w1_.size(1);
        FSMOE_CHECK_ARG(n >= 1 && s >= 0 && s < n && h % n == 0,
                        "cannot shard hidden dim ", h, " into ", n);
        const int64_t hs = h / n;
        Tensor w1 = sliceCols(w1_, s * hs, (s + 1) * hs);
        Tensor w2 = w2_.sliceDim0(s * hs, (s + 1) * hs);
        return std::make_unique<SimpleFfnExpert>(std::move(w1),
                                                 std::move(w2));
    }

  private:
    Tensor w1_, w2_, dW1_, dW2_;
    Tensor x_, pre_, act_;
};

/**
 * Mixtral expert [20]: y = (silu(x W1) * (x W3)) W2.
 */
class MixtralExpert : public ExpertBase
{
  public:
    MixtralExpert(Tensor w1, Tensor w3, Tensor w2)
        : w1_(std::move(w1)), w3_(std::move(w3)), w2_(std::move(w2)),
          dW1_(w1_.shape()), dW3_(w3_.shape()), dW2_(w2_.shape())
    {
    }

    MixtralExpert(int64_t embed, int64_t hidden, Rng &rng)
        : MixtralExpert(rng.normalTensor({embed, hidden}, 0.0f, kInitStd),
                        rng.normalTensor({embed, hidden}, 0.0f, kInitStd),
                        rng.normalTensor({hidden, embed}, 0.0f, kInitStd))
    {
    }

    std::string name() const override { return "mixtral-ffn"; }

    Tensor
    forward(const Tensor &x) override
    {
        x_ = x;
        gatePre_ = matmul(x, w1_);
        gateAct_ = silu(gatePre_);
        up_ = matmul(x, w3_);
        hidden_ = mul(gateAct_, up_);
        return matmul(hidden_, w2_);
    }

    Tensor
    backward(const Tensor &dy) override
    {
        gemm(hidden_, Trans::Yes, dy, Trans::No, dW2_, 1.0f, 1.0f);
        Tensor d_hidden = matmul(dy, w2_, Trans::No, Trans::Yes);
        Tensor d_gate_act = mul(d_hidden, up_);
        Tensor d_up = mul(d_hidden, gateAct_);
        Tensor d_gate_pre = siluBackward(gatePre_, d_gate_act);
        gemm(x_, Trans::Yes, d_gate_pre, Trans::No, dW1_, 1.0f, 1.0f);
        gemm(x_, Trans::Yes, d_up, Trans::No, dW3_, 1.0f, 1.0f);
        Tensor dx = matmul(d_gate_pre, w1_, Trans::No, Trans::Yes);
        dx.add_(matmul(d_up, w3_, Trans::No, Trans::Yes));
        return dx;
    }

    std::vector<Tensor *> params() override { return {&w1_, &w3_, &w2_}; }
    std::vector<Tensor *> grads() override { return {&dW1_, &dW3_, &dW2_}; }

    std::unique_ptr<ExpertBase>
    shard(int s, int n) const override
    {
        const int64_t h = w1_.size(1);
        FSMOE_CHECK_ARG(n >= 1 && s >= 0 && s < n && h % n == 0,
                        "cannot shard hidden dim ", h, " into ", n);
        const int64_t hs = h / n;
        return std::make_unique<MixtralExpert>(
            sliceCols(w1_, s * hs, (s + 1) * hs),
            sliceCols(w3_, s * hs, (s + 1) * hs),
            w2_.sliceDim0(s * hs, (s + 1) * hs));
    }

  private:
    Tensor w1_, w3_, w2_, dW1_, dW3_, dW2_;
    Tensor x_, gatePre_, gateAct_, up_, hidden_;
};

} // namespace

std::unique_ptr<ExpertBase>
makeExpert(FfnType type, int64_t embed, int64_t hidden, Rng &rng)
{
    if (type == FfnType::Mixtral)
        return std::make_unique<MixtralExpert>(embed, hidden, rng);
    return std::make_unique<SimpleFfnExpert>(embed, hidden, rng);
}

} // namespace fsmoe::core
