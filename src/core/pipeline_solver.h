/**
 * @file
 * Adaptive pipeline-degree optimisation (paper §4, Algorithm 1).
 *
 * Splitting the MoE layer's input into r chunks pipelines four task
 * types: AlltoAll dispatch/combine (inter-node), ESP-AllGather and
 * ESP-ReduceScatter (intra-node), and expert computation. The paper
 * classifies which resource dominates into four cases via predicates
 * Q1..Q7, derives a closed-form makespan t1..t4 per case, and solves
 * each case's constrained minimisation, returning the best (r, t).
 *
 * The Gradient-AllReduce time t_gar rides the inter-node link inside
 * the MoE pipeline (Fig. 3d): it is zero in the forward phase and
 * supplied by the gradient partitioner (§5) in the backward phase.
 */
#ifndef FSMOE_CORE_PIPELINE_SOLVER_H
#define FSMOE_CORE_PIPELINE_SOLVER_H

#include "core/moe_config.h"
#include "core/perf_model.h"

namespace fsmoe::core {

/** One task's linear model plus its total volume. */
struct TaskModel
{
    double alpha = 0.0; ///< Startup, ms.
    double beta = 0.0;  ///< ms per unit volume.
    double n = 0.0;     ///< Total volume (bytes or MACs).

    /** Per-chunk time at pipeline degree r (Eq. 1). */
    double chunk(double r) const { return alpha + beta * n / r; }
};

/** Inputs of Algorithm 1 for one MoE layer and one phase. */
struct PipelineProblem
{
    TaskModel a2a; ///< AlltoAll (dispatch; combine is symmetric).
    TaskModel ag;  ///< ESP-AllGather.
    TaskModel rs;  ///< ESP-ReduceScatter.
    TaskModel exp; ///< Expert computation.
    double tGar = 0.0; ///< Gradient-AllReduce time to hide (ms).
    int rMax = 64;     ///< Largest pipeline degree considered.
};

/** Which phase of training a problem describes. */
enum class Phase { Forward, Backward };

/**
 * Build a PipelineProblem from fitted models and a workload.
 * Backward doubles the expert GEMM launches and MAC volume (§4.4);
 * @p t_gar is only meaningful for the backward phase.
 */
PipelineProblem makeProblem(const PerfModelSet &models, const Workload &w,
                            Phase phase, double t_gar = 0.0, int r_max = 64);

/** Output of the solver. */
struct PipelineSolution
{
    double rContinuous = 1.0; ///< Optimum of the paper's continuous solve.
    int r = 1;                ///< Integer pipeline degree actually used.
    double tMoe = 0.0;        ///< Predicted MoE-layer time at r (ms).
    int caseId = 0;           ///< Which of the four cases held at r (1-4).
    double tOlpMoe = 0.0;     ///< Overlappable time inside the pipeline
                              ///< (§5.2), evaluated at r with t_gar = 0.
};

/** The paper's seven predicates evaluated at pipeline degree @p r. */
struct CasePredicates
{
    bool q1, q2, q3, q4, q5, q6, q7;
};
CasePredicates evalPredicates(const PipelineProblem &p, double r);

/** Case id (1..4) that holds at degree @p r; exactly one always does. */
int caseAt(const PipelineProblem &p, double r);

/** Case formula t1..t4 evaluated at @p r (no case check). */
double caseTime(const PipelineProblem &p, int case_id, double r);

/**
 * The paper's analytic MoE-layer makespan at degree @p r: the formula
 * of whichever case holds at r.
 */
double analyticMoeTime(const PipelineProblem &p, double r);

/**
 * Overlappable time t_olp,moe at degree @p r (paper §5.2): how much
 * Gradient-AllReduce can hide inside the pipeline without extending
 * it. Evaluates the problem with t_gar forced to zero.
 */
double overlappableMoeTime(const PipelineProblem &p, double r);

/**
 * Algorithm 1: solve the four constrained case minimisations
 * (continuous r via grid-refined golden section, standing in for the
 * paper's SLSQP), then refine to the best feasible integer degree in
 * [1, rMax] using the analytic makespan.
 */
PipelineSolution solvePipeline(const PipelineProblem &p);

/**
 * Brute-force reference: evaluate analyticMoeTime at every integer r
 * in [1, rMax] and return the argmin. Used to validate solvePipeline.
 */
PipelineSolution solvePipelineExhaustive(const PipelineProblem &p);

/**
 * Analytic makespan when intra-node collectives ride the inter-node
 * channel (the FSMoE-No-IIO ablation and the Tutel baselines): the
 * channel serialises dispatch, AllGather, ReduceScatter, combine and
 * Gradient-AllReduce, so the makespan is the larger of the channel's
 * busy time and the compute-bound pipeline path.
 */
double mergedMoeTime(const PipelineProblem &p, double r);

/** Integer argmin of mergedMoeTime over [1, rMax]. */
PipelineSolution solvePipelineMerged(const PipelineProblem &p);

} // namespace fsmoe::core

#endif // FSMOE_CORE_PIPELINE_SOLVER_H
