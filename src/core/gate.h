/**
 * @file
 * Gating (routing) functions — the Gate sub-module of §3.1.
 *
 * A gate maps a batch of tokens (n, M) to a set of token->expert
 * assignments with combine weights. Both token-choice routing (GShard,
 * Sigmoid/BASE, X-MoE) and expert-choice routing (EC) fit this shape:
 * token-choice emits k assignments per token, expert-choice emits
 * capacity-many assignments per expert.
 *
 * Every gate implements an exact manual backward pass: given the loss
 * gradient w.r.t. each assignment's combine weight, it accumulates
 * parameter gradients and returns the gradient w.r.t. the input
 * tokens. The tests validate all four against finite differences.
 */
#ifndef FSMOE_CORE_GATE_H
#define FSMOE_CORE_GATE_H

#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fsmoe::core {

/** One routed token->expert pair. */
struct Assignment
{
    int64_t token = 0; ///< Row index into the gate input.
    int expert = 0;    ///< Global expert index.
    float weight = 0.0f; ///< Combine scale applied to the expert output.
};

/** Output of a gate forward pass. */
struct GateResult
{
    std::vector<Assignment> assignments;
};

/** Available gate implementations (paper §3.1 and Table 6). */
enum class GateKind
{
    GShard,      ///< Noisy top-k softmax gate [22].
    Sigmoid,     ///< BASE/StableMoE sigmoid gate [23, 8].
    XMoe,        ///< X-MoE low-rank cosine gate [6].
    ExpertChoice ///< Expert-choice routing [51].
};

/** Printable gate name. */
const char *gateKindName(GateKind kind);

/**
 * Abstract gate. Subclass and override forward/backward to plug a
 * custom routing function into MoeLayer (paper Listing 1).
 */
class GateBase
{
  public:
    virtual ~GateBase() = default;

    virtual std::string name() const = 0;

    /**
     * Route a batch of tokens.
     *
     * @param x  Input tokens, shape (n, M). The gate caches whatever
     *           it needs for the subsequent backward call.
     */
    virtual GateResult forward(const Tensor &x) = 0;

    /**
     * Backpropagate through the routing decision.
     *
     * @param d_weights  Gradient w.r.t. each assignment's combine
     *                   weight, aligned with the last forward's
     *                   GateResult::assignments (zero for dropped
     *                   assignments).
     * @return Gradient w.r.t. the input tokens, shape (n, M).
     */
    virtual Tensor backward(const std::vector<float> &d_weights) = 0;

    /** Trainable parameters (for updates and gradient sync). */
    virtual std::vector<Tensor *> params() = 0;

    /** Gradients aligned with params(). */
    virtual std::vector<Tensor *> grads() = 0;

    /** Reset all parameter gradients to zero. */
    void zeroGrad();
};

/** Load-balancing auxiliary loss (GShard/Switch style). */
struct AuxLossResult
{
    double loss = 0.0;
    /// Gradient w.r.t. each assignment's combine weight, aligned with
    /// GateResult::assignments; feed to GateBase::backward.
    std::vector<float> dWeights;
};

/**
 * Compute the auxiliary load-balancing loss L = E * sum_e f_e * P_e,
 * where f_e is the fraction of assignments routed to expert e and P_e
 * the mean routed probability mass of expert e. Minimised when the
 * router spreads tokens uniformly; its gradient flows through the
 * combine weights, so it composes with GateBase::backward.
 *
 * @param routing     A gate's forward output.
 * @param num_experts E.
 * @param num_tokens  n (tokens routed in this batch).
 * @param scale       Loss multiplier (the alpha of GShard Eq. 4).
 */
AuxLossResult loadBalanceLoss(const GateResult &routing, int num_experts,
                              int64_t num_tokens, double scale = 1.0);

/**
 * Construct one of the built-in gates.
 *
 * @param kind         Which routing function.
 * @param embed        Token embedding size M.
 * @param num_experts  Total expert count E.
 * @param top_k        Experts per token (token-choice) or the k of the
 *                     expert-choice capacity C = n*k/E.
 * @param rng          Source for parameter init (and GShard noise).
 */
std::unique_ptr<GateBase> makeGate(GateKind kind, int64_t embed,
                                   int num_experts, int top_k, Rng &rng);

} // namespace fsmoe::core

#endif // FSMOE_CORE_GATE_H
