/**
 * @file
 * A complete transformer-MoE block: the structure the paper's Fig. 1
 * sketches and Table 2 measures — pre-norm attention with a residual
 * connection, followed by a pre-norm MoE layer with a residual
 * connection — running functionally across all ranks with exact
 * manual backward.
 *
 *   h = x + Attention(LN1(x))
 *   y = h + MoE(LN2(h))
 *
 * Attention and layer norms are replicated per rank (their MP-sharded
 * cost lives in the scheduler's Workload model); the MoE layer runs
 * the real EP x ESP distributed algorithm.
 */
#ifndef FSMOE_CORE_TRANSFORMER_H
#define FSMOE_CORE_TRANSFORMER_H

#include <memory>
#include <vector>

#include "core/attention.h"
#include "core/moe_layer.h"
#include "core/optimizer.h"
#include "tensor/ops.h"

namespace fsmoe::core {

/** Configuration of a transformer-MoE block. */
struct TransformerBlockOptions
{
    MoeLayerOptions moe; ///< MoE sub-layer (defines embed, world, and
                         ///< the auxiliary-loss scale).
    int numHeads = 4;    ///< Attention heads.
    int64_t seqLen = 16; ///< Sequence length per sample.
    bool causal = true;  ///< Autoregressive masking.
};

/** One pre-norm transformer block with an MoE feed-forward. */
class TransformerMoeBlock
{
  public:
    explicit TransformerMoeBlock(const TransformerBlockOptions &options);

    int worldSize() const { return moe_->worldSize(); }
    MoeLayer &moe() { return *moe_; }

    /** Forward on all ranks; inputs are (B*L, M) per rank. */
    std::vector<Tensor> forward(const std::vector<Tensor> &xs);

    /** Backward on all ranks (aux-loss gradients handled by MoeLayer). */
    std::vector<Tensor> backward(const std::vector<Tensor> &d_out);

    /** Auxiliary loss accumulated across ranks in the last forward. */
    double lastAuxLoss() const { return moe_->lastAuxLoss(); }

    /** Register every parameter of every rank with an optimizer. */
    void registerParams(OptimizerBase &opt);

    /** Zero all gradients (blocks and MoE). */
    void zeroGrad();

    /** Average replicated gradients (gate, attention, norms). */
    void syncReplicatedGrads();

  private:
    TransformerBlockOptions options_;
    std::unique_ptr<MoeLayer> moe_;
    // Per-rank replicated modules.
    std::vector<std::unique_ptr<MultiHeadAttention>> attn_;
    std::vector<Tensor> ln1Gamma_, ln1Beta_, ln2Gamma_, ln2Beta_;
    std::vector<Tensor> dLn1Gamma_, dLn1Beta_, dLn2Gamma_, dLn2Beta_;
    // Forward caches per rank.
    std::vector<LayerNormCache> ln1Cache_, ln2Cache_;
    std::vector<Tensor> xs_, hs_;
    dist::Communicator comm_;
};

} // namespace fsmoe::core

#endif // FSMOE_CORE_TRANSFORMER_H
