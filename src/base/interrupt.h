/**
 * @file
 * Cooperative stop flag for graceful SIGINT/SIGTERM handling.
 *
 * A long-running sweep or the sweep daemon must not die mid-journal-
 * append when the user presses Ctrl-C: the record in flight should be
 * flushed, the resume hint printed, and the process should exit with a
 * conventional 128+signal code. POSIX signal handlers can do almost
 * nothing safely, so the handler here only stores the signal number
 * into an atomic; every long-running loop (runRobust's scenario loop,
 * SweepServer's poll loop, fsmoe_sweepd's queue loop) polls
 * stopRequested() at its natural checkpoint boundaries and winds down
 * cleanly — finished work is already durable, unfinished work is
 * simply never started.
 *
 * requestStop() lets tests and deterministic CLI knobs (fsmoe_sweep
 * --stop-after N) trigger the exact same drain path without racing a
 * real signal against the scheduler.
 *
 * Thread-safety: all functions are async-signal-safe atomics; any
 * thread (or a signal handler) may call any of them concurrently.
 */
#ifndef FSMOE_BASE_INTERRUPT_H
#define FSMOE_BASE_INTERRUPT_H

namespace fsmoe::interrupt {

/**
 * Install SIGINT + SIGTERM handlers that record the signal for
 * stopRequested(). Idempotent. The second delivery of a handled
 * signal restores the default disposition first, so a double Ctrl-C
 * still kills a wedged process.
 */
void installStopHandlers();

/** True once a stop signal arrived or requestStop() was called. */
bool stopRequested();

/** The signal that requested the stop (0 when none). */
int stopSignal();

/** Conventional exit code for the stop (128 + signal; 0 when none). */
int stopExitCode();

/** Programmatic stop — same effect as receiving @p signal. */
void requestStop(int signal);

/** Forget any recorded stop (tests; also re-arms the handlers). */
void clearStop();

} // namespace fsmoe::interrupt

#endif // FSMOE_BASE_INTERRUPT_H
