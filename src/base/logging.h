/**
 * @file
 * Error-reporting and assertion helpers shared by every FSMoE module.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in FSMoE itself), fatal() is for user errors such as
 * invalid configurations. Both print a location-tagged message; panic()
 * aborts so a debugger or core dump can capture the state, fatal() exits
 * with a non-zero status.
 */
#ifndef FSMOE_BASE_LOGGING_H
#define FSMOE_BASE_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace fsmoe {

namespace detail {

/** Format a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

} // namespace detail

} // namespace fsmoe

/** Abort with a message; use for conditions that indicate an FSMoE bug. */
#define FSMOE_PANIC(...) \
    ::fsmoe::detail::panicImpl(__FILE__, __LINE__, \
                               ::fsmoe::detail::concat(__VA_ARGS__))

/** Exit with a message; use for invalid user input or configuration. */
#define FSMOE_FATAL(...) \
    ::fsmoe::detail::fatalImpl(__FILE__, __LINE__, \
                               ::fsmoe::detail::concat(__VA_ARGS__))

/** Print a warning without stopping execution. */
#define FSMOE_WARN(...) \
    ::fsmoe::detail::warnImpl(__FILE__, __LINE__, \
                              ::fsmoe::detail::concat(__VA_ARGS__))

/** Internal invariant check, active in all build types. */
#define FSMOE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            FSMOE_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

/** Validate user-supplied arguments; failure is a usage error, not a bug. */
#define FSMOE_CHECK_ARG(cond, ...) \
    do { \
        if (!(cond)) { \
            FSMOE_FATAL("invalid argument: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // FSMOE_BASE_LOGGING_H
