/**
 * @file
 * Error-reporting and assertion helpers shared by every FSMoE module.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in FSMoE itself), fatal() is for user errors such as
 * invalid configurations. Both print a location-tagged message; panic()
 * aborts so a debugger or core dump can capture the state, fatal() exits
 * with a non-zero status.
 *
 * Non-terminating output is levelled: FSMOE_WARN prints at LogLevel::
 * Warn and above, FSMOE_VERBOSE at LogLevel::Verbose only. The level
 * defaults to Warn and is taken from the FSMOE_LOG_LEVEL environment
 * variable ("silent", "error", "warn", "verbose"; case-insensitive) at
 * first use, overridable programmatically with setLogLevel(). panic()
 * and fatal() always print — a terminating error can never be
 * silenced.
 *
 * Repeated identical warnings (same site, same text) are deduplicated:
 * the first occurrence prints, later ones only bump a suppression
 * counter, and a "repeated N times" summary is flushed at process exit
 * (or on demand with flushRepeatedWarnings()). A sweep that trips the
 * same configuration warning for thousands of scenarios emits one
 * line, not thousands.
 *
 * Thread-safety: every function here may be called concurrently; the
 * warning dedup table and the level are internally synchronised.
 */
#ifndef FSMOE_BASE_LOGGING_H
#define FSMOE_BASE_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace fsmoe {

/** Verbosity of the non-terminating log macros, least verbose first. */
enum class LogLevel
{
    Silent = 0,  ///< Nothing below panic/fatal prints.
    Error = 1,   ///< Reserved tier between Silent and Warn.
    Warn = 2,    ///< FSMOE_WARN prints (the default).
    Verbose = 3, ///< FSMOE_VERBOSE prints too.
};

/**
 * The current level. First call resolves FSMOE_LOG_LEVEL from the
 * environment (unknown values keep the Warn default and warn once).
 */
LogLevel logLevel();

/** Override the level for this process (wins over the environment). */
void setLogLevel(LogLevel level);

/** Would a message at @p level print right now? */
bool logEnabled(LogLevel level);

/** Warnings swallowed by the dedup table so far (not by the level). */
size_t suppressedWarningCount();

/**
 * Print the "repeated N times" summary for every deduplicated warning
 * and clear the table. Registered atexit on first suppression, so
 * explicit calls are only needed by tests and long-lived servers.
 */
void flushRepeatedWarnings();

namespace detail {

/** Format a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void verboseImpl(const char *file, int line, const std::string &msg);

} // namespace detail

} // namespace fsmoe

/** Abort with a message; use for conditions that indicate an FSMoE bug. */
#define FSMOE_PANIC(...) \
    ::fsmoe::detail::panicImpl(__FILE__, __LINE__, \
                               ::fsmoe::detail::concat(__VA_ARGS__))

/** Exit with a message; use for invalid user input or configuration. */
#define FSMOE_FATAL(...) \
    ::fsmoe::detail::fatalImpl(__FILE__, __LINE__, \
                               ::fsmoe::detail::concat(__VA_ARGS__))

/**
 * Print a warning without stopping execution. Prints at
 * LogLevel::Warn+; identical repeats are deduplicated (see above).
 */
#define FSMOE_WARN(...) \
    ::fsmoe::detail::warnImpl(__FILE__, __LINE__, \
                              ::fsmoe::detail::concat(__VA_ARGS__))

/**
 * Diagnostic chatter, compiled in but silent unless
 * FSMOE_LOG_LEVEL=verbose (or setLogLevel(LogLevel::Verbose)). The
 * argument pack is only formatted when the level is enabled.
 */
#define FSMOE_VERBOSE(...) \
    do { \
        if (::fsmoe::logEnabled(::fsmoe::LogLevel::Verbose)) { \
            ::fsmoe::detail::verboseImpl( \
                __FILE__, __LINE__, \
                ::fsmoe::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Internal invariant check, active in all build types. */
#define FSMOE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            FSMOE_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

/** Validate user-supplied arguments; failure is a usage error, not a bug. */
#define FSMOE_CHECK_ARG(cond, ...) \
    do { \
        if (!(cond)) { \
            FSMOE_FATAL("invalid argument: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // FSMOE_BASE_LOGGING_H
