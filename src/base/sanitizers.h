/**
 * @file
 * Sanitizer feature detection and opt-out annotations.
 *
 * The build system exposes the sanitizer matrix as
 * `-DFSMOE_SANITIZE=address|undefined|thread` (see the root
 * CMakeLists.txt and docs/CORRECTNESS.md); this header gives code a
 * portable way to (a) detect which sanitizer the current translation
 * unit is compiled under and (b) exempt an individual function from
 * instrumentation.
 *
 * Exemption policy: FSMOE_NO_SANITIZE_* is a last resort for audited
 * false positives only — e.g. a deliberate benign race in a
 * statistics-only counter, or a hand-vectorised loop ASan's redzones
 * would misread. Every use must carry a comment explaining why the
 * finding is false, and the preferred fix is always to repair the
 * code (or add a suppression entry under tools/sanitizers/ when the
 * report originates in a system library). The tree currently needs no
 * exemptions; keeping the macros here ensures future ones are
 * greppable under one name instead of ad-hoc attribute spellings.
 */
#ifndef FSMOE_BASE_SANITIZERS_H
#define FSMOE_BASE_SANITIZERS_H

// ---- Detection -----------------------------------------------------
// GCC defines __SANITIZE_ADDRESS__ / __SANITIZE_THREAD__; clang uses
// __has_feature. UBSan has no reliable predefine on either compiler,
// so the build system passes FSMOE_UBSAN_BUILD=1 alongside
// -fsanitize=undefined.

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FSMOE_ASAN_ENABLED 1
#endif
#if __has_feature(thread_sanitizer)
#define FSMOE_TSAN_ENABLED 1
#endif
#endif

#if !defined(FSMOE_ASAN_ENABLED) && defined(__SANITIZE_ADDRESS__)
#define FSMOE_ASAN_ENABLED 1
#endif
#if !defined(FSMOE_TSAN_ENABLED) && defined(__SANITIZE_THREAD__)
#define FSMOE_TSAN_ENABLED 1
#endif

#ifndef FSMOE_ASAN_ENABLED
#define FSMOE_ASAN_ENABLED 0
#endif
#ifndef FSMOE_TSAN_ENABLED
#define FSMOE_TSAN_ENABLED 0
#endif

#if defined(FSMOE_UBSAN_BUILD) && FSMOE_UBSAN_BUILD
#define FSMOE_UBSAN_ENABLED 1
#else
#define FSMOE_UBSAN_ENABLED 0
#endif

/** Any sanitizer at all (audits and tests may loosen timing limits). */
#define FSMOE_SANITIZERS_ENABLED \
    (FSMOE_ASAN_ENABLED || FSMOE_TSAN_ENABLED || FSMOE_UBSAN_ENABLED)

// ---- Function annotations ------------------------------------------
// Spelled per-sanitizer so an exemption is as narrow as possible;
// there is deliberately no "disable everything" macro.

#if defined(__clang__) || defined(__GNUC__)
#define FSMOE_NO_SANITIZE(check) __attribute__((no_sanitize(check)))
#else
#define FSMOE_NO_SANITIZE(check)
#endif

/** Exempt a function from AddressSanitizer instrumentation. */
#define FSMOE_NO_SANITIZE_ADDRESS FSMOE_NO_SANITIZE("address")
/** Exempt a function from ThreadSanitizer instrumentation. */
#define FSMOE_NO_SANITIZE_THREAD FSMOE_NO_SANITIZE("thread")
/** Exempt a function from UndefinedBehaviorSanitizer checks. */
#define FSMOE_NO_SANITIZE_UNDEFINED FSMOE_NO_SANITIZE("undefined")

#endif // FSMOE_BASE_SANITIZERS_H
