#include "base/interrupt.h"

#include <atomic>

#include <signal.h>

namespace fsmoe::interrupt {

namespace {

// thread-safe: atomic — written from signal handlers, read from
// worker loops; relaxed ordering suffices for a monotonic flag.
std::atomic<int> g_stopSignal{0};

extern "C" void
stopHandler(int sig)
{
    g_stopSignal.store(sig, std::memory_order_relaxed);
    // A second delivery means the graceful path is stuck; fall back to
    // the default (terminating) disposition so the next one kills us.
    struct sigaction dfl;
    dfl.sa_handler = SIG_DFL;
    sigemptyset(&dfl.sa_mask);
    dfl.sa_flags = 0;
    ::sigaction(sig, &dfl, nullptr);
}

} // namespace

void
installStopHandlers()
{
    struct sigaction sa;
    sa.sa_handler = stopHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: poll/read must wake up to drain
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
stopRequested()
{
    return g_stopSignal.load(std::memory_order_relaxed) != 0;
}

int
stopSignal()
{
    return g_stopSignal.load(std::memory_order_relaxed);
}

int
stopExitCode()
{
    const int sig = stopSignal();
    return sig == 0 ? 0 : 128 + sig;
}

void
requestStop(int signal)
{
    g_stopSignal.store(signal, std::memory_order_relaxed);
}

void
clearStop()
{
    g_stopSignal.store(0, std::memory_order_relaxed);
}

} // namespace fsmoe::interrupt
