#include "base/stats.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "base/logging.h"

namespace fsmoe::stats {

namespace {

/** fetch_add for atomic<double> (no native RMW before C++20). */
void
atomicAdd(std::atomic<double> &a, double delta)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + delta,
                                    std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (cur > v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/** 17 significant digits: re-parses to the identical bit pattern. */
std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

// -------------------------------------------------------------- Gauge

void
Gauge::set(double v)
{
    v_.store(v, std::memory_order_relaxed);
    atomicMax(max_, v);
}

void
Gauge::add(double delta)
{
    atomicAdd(v_, delta);
    atomicMax(max_, v_.load(std::memory_order_relaxed));
}

void
Gauge::updateMax(double v)
{
    atomicMax(max_, v);
}

void
Gauge::reset()
{
    v_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    FSMOE_CHECK_ARG(!bounds_.empty(), "histogram needs at least one bucket "
                                      "bound");
    for (size_t i = 1; i < bounds_.size(); ++i)
        FSMOE_CHECK_ARG(bounds_[i - 1] < bounds_[i],
                        "histogram bucket bounds must be strictly "
                        "increasing");
    // Extrema start at the identity elements so observe() needs no
    // first-observation special case; minValue()/maxValue() report 0
    // while count() == 0.
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    // First bound with v <= bound; past-the-end is the +inf overflow.
    const size_t i = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
    atomicMin(min_, v);
    atomicMax(max_, v);
}

double
Histogram::minValue() const
{
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double
Histogram::maxValue() const
{
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

uint64_t
Histogram::bucketCount(size_t i) const
{
    FSMOE_CHECK_ARG(i < buckets_.size(), "bucket index out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

const std::vector<double> &
defaultTimeBucketsMs()
{
    static const std::vector<double> buckets = {
        0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
        1000.0, 3000.0, 10000.0};
    return buckets;
}

// ----------------------------------------------------------- Registry

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    FSMOE_CHECK_ARG(!name.empty(), "metric name must not be empty");
    std::lock_guard<std::mutex> lock(mu_);
    FSMOE_ASSERT(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric '", name, "' already registered as another kind");
    auto &slot = counters_[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    FSMOE_CHECK_ARG(!name.empty(), "metric name must not be empty");
    std::lock_guard<std::mutex> lock(mu_);
    FSMOE_ASSERT(counters_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric '", name, "' already registered as another kind");
    auto &slot = gauges_[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name,
                    const std::vector<double> &bounds)
{
    FSMOE_CHECK_ARG(!name.empty(), "metric name must not be empty");
    std::lock_guard<std::mutex> lock(mu_);
    FSMOE_ASSERT(counters_.count(name) == 0 && gauges_.count(name) == 0,
                 "metric '", name, "' already registered as another kind");
    auto &slot = histograms_[name];
    if (slot == nullptr)
        slot = std::make_unique<Histogram>(bounds);
    else
        FSMOE_ASSERT(slot->bounds() == bounds, "histogram '", name,
                     "' re-registered with different bucket bounds");
    return *slot;
}

std::string
Registry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream oss;
    oss << "{\"schema\":\"fsmoe-stats\",\"version\":1,\n\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        oss << (first ? "\n" : ",\n") << '"' << jsonEscape(name)
            << "\":" << c->value();
        first = false;
    }
    oss << (first ? "" : "\n") << "},\n\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        oss << (first ? "\n" : ",\n") << '"' << jsonEscape(name)
            << "\":{\"value\":" << fmtDouble(g->value())
            << ",\"max\":" << fmtDouble(g->maxValue()) << '}';
        first = false;
    }
    oss << (first ? "" : "\n") << "},\n\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        oss << (first ? "\n" : ",\n") << '"' << jsonEscape(name)
            << "\":{\"count\":" << h->count()
            << ",\"sum\":" << fmtDouble(h->sum())
            << ",\"min\":" << fmtDouble(h->minValue())
            << ",\"max\":" << fmtDouble(h->maxValue()) << ",\"buckets\":[";
        for (size_t i = 0; i < h->bounds().size(); ++i) {
            oss << (i == 0 ? "" : ",") << "{\"le\":"
                << fmtDouble(h->bounds()[i])
                << ",\"count\":" << h->bucketCount(i) << '}';
        }
        oss << ",{\"le\":\"inf\",\"count\":"
            << h->bucketCount(h->bounds().size()) << "}]}";
        first = false;
    }
    oss << (first ? "" : "\n") << "}}\n";
    return oss.str();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}

Histogram &
histogram(const std::string &name, const std::vector<double> &bounds)
{
    return Registry::instance().histogram(name, bounds);
}

} // namespace fsmoe::stats
