/**
 * @file
 * Debug-mode runtime audits: deep invariant checks that are on by
 * default in Debug builds and compiled out of Release builds.
 *
 * The dynamic complement of the static tooling (fsmoe_lint, the
 * sanitizer matrix — see docs/CORRECTNESS.md): where FSMOE_ASSERT
 * guards cheap local conditions in every build type, an *audit* is an
 * O(n)-ish structural validation that would be too expensive on the
 * Release hot path — full TaskGraph CSR/acyclicity verification after
 * every build, simulator ready-heap invariants on every pop,
 * cache-key collision detection (same key, different payload) across
 * the sim/solver/advisor caches.
 *
 * Gating is two-level:
 *   - compile time: FSMOE_AUDIT_ENABLED is 1 in Debug (!NDEBUG) and 0
 *     in Release, overridable either way with the CMake option
 *     -DFSMOE_AUDIT=ON|OFF (which defines FSMOE_FORCE_AUDIT=1|0).
 *     When 0, FSMOE_AUDIT(...) compiles to nothing — Release
 *     BENCH_sim.json numbers are untouched by this layer.
 *   - run time: audit::enabled() (default on when compiled in) lets a
 *     process opt out, e.g. to time a Debug build, and lets
 *     `fsmoe_sweep --selftest` assert the audit pass really ran.
 *
 * Every executed check bumps a counter in the base/stats registry
 * ("audit.*"), so a test or selftest can prove audits were live
 * instead of silently compiled out. An audit failure is a bug by
 * definition and panics (aborts) — audits never degrade to warnings.
 *
 * Thread-safety: all functions here may be called concurrently; the
 * collision table is internally synchronised, counters are atomics.
 */
#ifndef FSMOE_BASE_AUDIT_H
#define FSMOE_BASE_AUDIT_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#if defined(FSMOE_FORCE_AUDIT)
#define FSMOE_AUDIT_ENABLED FSMOE_FORCE_AUDIT
#elif !defined(NDEBUG)
#define FSMOE_AUDIT_ENABLED 1
#else
#define FSMOE_AUDIT_ENABLED 0
#endif

/**
 * Execute @p stmt only when audits are compiled in *and* runtime
 * enabled. Usage: FSMOE_AUDIT(auditTaskGraph(graph));
 */
#if FSMOE_AUDIT_ENABLED
#define FSMOE_AUDIT(stmt) \
    do { \
        if (::fsmoe::audit::enabled()) { \
            stmt; \
        } \
    } while (0)
#else
#define FSMOE_AUDIT(stmt) \
    do { \
    } while (0)
#endif

namespace fsmoe::audit {

/** True when FSMOE_AUDIT bodies exist in this binary at all. */
constexpr bool
compiledIn()
{
    return FSMOE_AUDIT_ENABLED != 0;
}

/** Runtime switch (meaningful only when compiledIn()). Default on. */
bool enabled();
void setEnabled(bool on);

/**
 * Order-sensitive 64-bit FNV-1a content fingerprint, used to compare
 * cache payloads cheaply. Not cryptographic — it detects the
 * determinism bugs audits hunt (two byte-different payloads under one
 * key), not adversaries. Doubles are mixed by bit pattern, so two
 * payloads fingerprint equal iff they are bit-identical field by
 * field, matching the repo's byte-identity contract.
 */
class Fingerprint
{
  public:
    Fingerprint &mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xffu;
            h_ *= 0x100000001b3ull;
        }
        return *this;
    }
    Fingerprint &mix(int64_t v) { return mix(static_cast<uint64_t>(v)); }
    Fingerprint &mix(int v) { return mix(static_cast<uint64_t>(
        static_cast<int64_t>(v))); }
    Fingerprint &mix(bool v) { return mix(static_cast<uint64_t>(v)); }
    Fingerprint &mix(double v)
    {
        uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        return mix(bits);
    }
    Fingerprint &mix(const std::string &s)
    {
        mix(static_cast<uint64_t>(s.size()));
        for (char c : s) {
            h_ ^= static_cast<unsigned char>(c);
            h_ *= 0x100000001b3ull;
        }
        return *this;
    }

    uint64_t digest() const { return h_; }

  private:
    uint64_t h_ = 0xcbf29ce484222325ull; // FNV-1a offset basis.
};

/**
 * Cache-key collision detector. Call at every point a cache *payload*
 * is produced for a key (cold computes, recomputes after a clear,
 * racing duplicate computes): the first call records the payload
 * fingerprint for (domain, key), later calls verify it. A mismatch
 * means the key under-identifies its inputs — two different payloads
 * share one cache slot — which silently breaks the byte-identity
 * contract whenever the "wrong" entry is served; that is a panic.
 *
 * The table is process-wide and bounded (oldest-insertion entries are
 * evicted past a fixed cap); domains in use: "sweep.cost",
 * "sweep.sim", "solver.pipeline", "solver.partition", "tuner.answer".
 *
 * Counts into audit.cacheKey.checks / audit.cacheKey.recorded.
 */
void checkCacheKey(const char *domain, const std::string &key,
                   uint64_t payload_fingerprint);

/** Entries currently held by the collision table (tests/selftest). */
size_t cacheKeyTableSize();

/** Drop every recorded (domain, key) fingerprint. */
void clearCacheKeyTable();

/**
 * Names of the registry counters audits bump; `fsmoe_sweep --selftest`
 * prints these after its audit pass.
 *
 *   audit.taskGraph.verified   graphs structurally validated
 *   audit.heap.popChecks       simulator heap pops validated
 *   audit.cacheKey.checks      payload fingerprints checked
 *   audit.cacheKey.recorded    first-seen keys recorded
 */

} // namespace fsmoe::audit

#endif // FSMOE_BASE_AUDIT_H
