#include "base/audit.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "base/logging.h"
#include "base/stats.h"

namespace fsmoe::audit {

namespace {

std::atomic<bool> g_enabled{true};

/// Cap on remembered (domain, key) fingerprints; past it the oldest
/// insertions are evicted FIFO. Collisions between an evicted key and
/// a later payload go unnoticed, which is acceptable: the table is a
/// debug net, not a correctness dependency, and ordinary Debug runs
/// (demo grid, tests, selftest) stay far below the cap.
constexpr size_t kMaxEntries = 1 << 20;

struct KeyTable
{
    std::mutex mu;
    std::unordered_map<std::string, uint64_t> map;
    std::deque<std::string> order; ///< Insertion order, for eviction.

    static KeyTable &instance()
    {
        static KeyTable t;
        return t;
    }
};

struct AuditStats
{
    stats::Counter &keyChecks = stats::counter("audit.cacheKey.checks");
    stats::Counter &keyRecorded = stats::counter("audit.cacheKey.recorded");

    static AuditStats &instance()
    {
        static AuditStats s;
        return s;
    }
};

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

void
checkCacheKey(const char *domain, const std::string &key,
              uint64_t payload_fingerprint)
{
    std::string full(domain);
    full.push_back('\0');
    full.append(key);

    AuditStats &as = AuditStats::instance();
    KeyTable &t = KeyTable::instance();
    std::lock_guard<std::mutex> lock(t.mu);
    as.keyChecks.inc();
    auto it = t.map.find(full);
    if (it == t.map.end()) {
        if (t.map.size() >= kMaxEntries) {
            t.map.erase(t.order.front());
            t.order.pop_front();
        }
        t.map.emplace(full, payload_fingerprint);
        t.order.push_back(std::move(full));
        as.keyRecorded.inc();
        return;
    }
    if (it->second != payload_fingerprint) {
        FSMOE_PANIC("cache-key collision in domain '", domain,
                    "': payload fingerprint ", payload_fingerprint,
                    " != previously recorded ", it->second,
                    " for key \"", key,
                    "\" — the key under-identifies the cached inputs");
    }
}

size_t
cacheKeyTableSize()
{
    KeyTable &t = KeyTable::instance();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.map.size();
}

void
clearCacheKeyTable()
{
    KeyTable &t = KeyTable::instance();
    std::lock_guard<std::mutex> lock(t.mu);
    t.map.clear();
    t.order.clear();
}

} // namespace fsmoe::audit
