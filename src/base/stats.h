/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket histograms, in the spirit of gem5's stats package.
 *
 * Every subsystem that wants to be observable registers metrics under
 * hierarchical dotted names ("sweep.simCache.hits",
 * "threadpool.task.ms") and updates them on its hot path; a consumer —
 * `fsmoe_sweep --metrics-json`, the richer `--profile`, CI — takes one
 * JSON snapshot at the end. Registration is a locked map lookup, but
 * call sites cache the returned reference (metrics are never
 * destroyed or moved), so steady-state updates are a single relaxed
 * atomic operation.
 *
 * Thread-safety: every method on every class here may be called
 * concurrently. Counter::inc, Gauge updates, and Histogram::observe
 * are lock-free atomics; concurrent increments never lose updates
 * (stats_test asserts exact sums under contention). snapshotJson()
 * reads the atomics individually — it is a coherent-per-metric, not
 * globally consistent, cut, which is what a monitoring snapshot
 * needs.
 *
 * Determinism: snapshotJson() iterates metrics in lexicographic name
 * order and formats doubles with 17 significant digits, so two
 * processes that performed the same updates emit byte-identical
 * snapshots. Wall-clock-derived values (timer histograms) naturally
 * differ run to run; counts do not.
 *
 * Lifetime: metrics live until process exit. reset() zeroes every
 * value but never removes a registration, so cached references stay
 * valid forever.
 */
#ifndef FSMOE_BASE_STATS_H
#define FSMOE_BASE_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fsmoe::stats {

/** Monotonic event count. */
class Counter
{
  public:
    void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/**
 * A point-in-time double value with a recorded high-water mark
 * (e.g. current queue depth / deepest queue ever seen, or an
 * accumulated quantity like per-link busy milliseconds).
 */
class Gauge
{
  public:
    void set(double v);
    void add(double delta);
    /** Raise the high-water mark without changing the value. */
    void updateMax(double v);
    double value() const { return v_.load(std::memory_order_relaxed); }
    double maxValue() const { return max_.load(std::memory_order_relaxed); }
    void reset();

  private:
    std::atomic<double> v_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * Fixed-bucket histogram: cumulative-style upper bounds fixed at
 * registration (strictly increasing), plus an implicit +inf overflow
 * bucket, with count/sum/min/max running aggregates. A value v lands
 * in the first bucket with v <= bound.
 */
class Histogram
{
  public:
    /** @p bounds must be non-empty and strictly increasing. */
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    /** Smallest observed value; 0 when count() == 0. */
    double minValue() const;
    /** Largest observed value; 0 when count() == 0. */
    double maxValue() const;
    double mean() const;

    const std::vector<double> &bounds() const { return bounds_; }
    /** Count in bucket @p i; i == bounds().size() is the overflow. */
    uint64_t bucketCount(size_t i) const;

    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> buckets_; ///< bounds + overflow.
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * Default latency buckets in milliseconds (10us .. 10s, roughly
 * 1-3-10 per decade) — what every timer histogram in the tree uses
 * unless it has a reason not to.
 */
const std::vector<double> &defaultTimeBucketsMs();

/**
 * The name-indexed metric store. Use the process-wide instance();
 * separate Registry objects exist only so tests can run in
 * isolation.
 */
class Registry
{
  public:
    /** The process-wide registry. */
    static Registry &instance();

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Find-or-create the metric named @p name. Names are dotted
     * hierarchical paths; registering one name as two different
     * metric kinds is a bug (panics). References stay valid for the
     * registry's lifetime — cache them on hot paths.
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /// @p bounds applies on first registration only (later callers
    /// get the existing histogram; mismatched bounds panic).
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &bounds =
                             defaultTimeBucketsMs());

    /**
     * Deterministic JSON document of every registered metric:
     * {"schema":"fsmoe-stats","version":1,
     *  "counters":{name:value,...},
     *  "gauges":{name:{"value":v,"max":m},...},
     *  "histograms":{name:{"count":n,"sum":s,"min":m,"max":M,
     *                      "buckets":[{"le":b,"count":c},...,
     *                                 {"le":"inf","count":c}]},...}}
     * Names are sorted; see docs/OBSERVABILITY.md for the schema.
     */
    std::string snapshotJson() const;

    /** Zero every value; registrations (and references) survive. */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Shorthands for Registry::instance() lookups. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name,
                     const std::vector<double> &bounds =
                         defaultTimeBucketsMs());

/**
 * RAII timer: observes the scope's elapsed wall time, in
 * milliseconds, into a histogram at destruction.
 */
class ScopedTimerMs
{
  public:
    explicit ScopedTimerMs(Histogram &h)
        : h_(h), t0_(std::chrono::steady_clock::now())
    {
    }
    ~ScopedTimerMs()
    {
        h_.observe(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0_)
                       .count());
    }
    ScopedTimerMs(const ScopedTimerMs &) = delete;
    ScopedTimerMs &operator=(const ScopedTimerMs &) = delete;

  private:
    Histogram &h_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace fsmoe::stats

#endif // FSMOE_BASE_STATS_H
