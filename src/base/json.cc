#include "base/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace fsmoe::json {

namespace {

bool
parseDoubleText(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
}

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    bool parse(Value *out, std::string *error)
    {
        skipWs();
        if (!value(out))
            return fail(error);
        skipWs();
        if (pos_ != s_.size())
            return fail(error, "trailing characters");
        return true;
    }

  private:
    bool fail(std::string *error, const char *what = "malformed JSON")
    {
        if (error) {
            std::ostringstream oss;
            oss << what << " at byte " << pos_;
            *error = oss.str();
        }
        return false;
    }

    bool value(Value *out)
    {
        // Recursion guard: reject pathological nesting instead of
        // overflowing the stack on attacker-shaped input.
        if (depth_ >= 64)
            return false;
        ++depth_;
        const bool ok = valueInner(out);
        --depth_;
        return ok;
    }

    bool valueInner(Value *out)
    {
        skipWs();
        switch (peek()) {
          case '{': return object(out);
          case '[': return array(out);
          case '"':
            out->kind = Value::Kind::String;
            return string(&out->string);
          case 't': return literal("true", out, true);
          case 'f': return literal("false", out, false);
          case 'n':
            out->kind = Value::Kind::Null;
            return word("null");
          default: return number(out);
        }
    }

    bool object(Value *out)
    {
        out->kind = Value::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string name;
            if (!string(&name))
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            Value member;
            if (!value(&member))
                return false;
            out->object.emplace_back(std::move(name), std::move(member));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array(Value *out)
    {
        out->kind = Value::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            Value element;
            if (!value(&element))
                return false;
            out->array.push_back(std::move(element));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string(std::string *out)
    {
        if (peek() != '"')
            return false;
        ++pos_;
        out->clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= s_.size())
                return false;
            char esc = s_[pos_++];
            switch (esc) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // Our writers only emit \u00xx control escapes;
                // reject anything wider rather than mis-decode it.
                if (code > 0xff)
                    return false;
                *out += static_cast<char>(code);
                break;
              }
              default: return false;
            }
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number(Value *out)
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return false;
        out->kind = Value::Kind::Number;
        return parseDoubleText(s_.substr(start, pos_ - start),
                               &out->number);
    }

    bool literal(const char *text, Value *out, bool value)
    {
        out->kind = Value::Kind::Bool;
        out->boolean = value;
        return word(text);
    }

    bool word(const char *text)
    {
        size_t n = std::strlen(text);
        if (s_.compare(pos_, n, text) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
parse(const std::string &text, Value *out, std::string *error)
{
    return Parser(text).parse(out, error);
}

bool
asString(const Value *v, std::string *out)
{
    if (v == nullptr || v->kind != Value::Kind::String)
        return false;
    *out = v->string;
    return true;
}

bool
asNumber(const Value *v, double *out)
{
    if (v == nullptr || v->kind != Value::Kind::Number)
        return false;
    *out = v->number;
    return true;
}

bool
asInt(const Value *v, int64_t *out)
{
    double d;
    if (!asNumber(v, &d))
        return false;
    *out = static_cast<int64_t>(d);
    return true;
}

bool
asBool(const Value *v, bool *out)
{
    if (v == nullptr || v->kind != Value::Kind::Bool)
        return false;
    *out = v->boolean;
    return true;
}

std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace fsmoe::json
