/**
 * @file
 * Crash-safe file IO shared by every persistence surface.
 *
 * The repo's artifacts — sweep result files, the tuner's advisor
 * cache, metrics snapshots, traces — are all gates somewhere: CI
 * `cmp`s them, a resumed sweep merges against them. A direct
 * `ofstream` to the final path can leave a *torn* file when the
 * process dies mid-write (SIGKILL, OOM, disk full), and a torn
 * artifact silently poisons every later consumer. atomicWriteFile()
 * closes that hole: the bytes land in a sibling temp file first,
 * are flushed to disk, and only then rename(2)d over the final path —
 * POSIX guarantees the rename is atomic, so a reader observes either
 * the complete old file or the complete new file, never a prefix.
 *
 * fsmoe_lint's `nonatomic-write` rule flags `std::ofstream`/`fopen`
 * writes in src/ so new code reaches for this helper instead (the
 * helper's own temp-file write and runtime/journal.cc's append-only
 * log are the audited exceptions).
 *
 * Thread-safety: all functions are pure functions of their arguments
 * plus the filesystem; concurrent atomicWriteFile calls on the same
 * path serialise at the rename (last writer wins with a complete
 * file). Determinism: no timestamps or randomness; the temp name is
 * derived from the target path and the pid.
 */
#ifndef FSMOE_BASE_FILEIO_H
#define FSMOE_BASE_FILEIO_H

#include <string>

namespace fsmoe::fileio {

/**
 * Atomically replace @p path's contents with @p text: write to
 * "<path>.tmp.<pid>", flush + fsync, then rename over @p path. On any
 * failure the temp file is removed, @p path is left untouched, and
 * *error (when non-null) describes the failing step. Returns true on
 * success.
 */
bool atomicWriteFile(const std::string &path, const std::string &text,
                     std::string *error = nullptr);

/**
 * Probe that @p path can be created: atomically writes and removes an
 * empty "<path>.tmp.<pid>" sibling. Lets a CLI reject an unwritable
 * --out-json/--journal destination *before* burning a long sweep,
 * instead of silently losing the output at the end. *error explains
 * the failure (typically a missing directory or permissions).
 */
bool checkWritable(const std::string &path, std::string *error = nullptr);

/**
 * Read @p path's entire contents into *text. Returns false (and sets
 * *error when non-null) when the file cannot be opened or read.
 */
bool readTextFile(const std::string &path, std::string *text,
                  std::string *error = nullptr);

} // namespace fsmoe::fileio

#endif // FSMOE_BASE_FILEIO_H
