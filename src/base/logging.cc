#include "base/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace fsmoe {

namespace {

/**
 * Dedup table state. Keyed by the exact printed form (site + text) so
 * two call sites with the same text stay distinct. Guards itself; the
 * level lives in a separate atomic so logEnabled() stays lock-free.
 */
struct WarnState
{
    std::mutex mu;
    std::unordered_map<std::string, size_t> counts;
    size_t suppressed = 0;
    bool atexit_registered = false;
};

WarnState &
warnState()
{
    static WarnState state;
    return state;
}

LogLevel
parseLevel(const char *text, bool *ok)
{
    std::string s;
    for (const char *p = text; *p != '\0'; ++p)
        s += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    *ok = true;
    if (s == "silent" || s == "none" || s == "0")
        return LogLevel::Silent;
    if (s == "error" || s == "1")
        return LogLevel::Error;
    if (s == "warn" || s == "warning" || s == "2")
        return LogLevel::Warn;
    if (s == "verbose" || s == "debug" || s == "3")
        return LogLevel::Verbose;
    *ok = false;
    return LogLevel::Warn;
}

std::atomic<int> &
levelStore()
{
    static std::atomic<int> level = [] {
        LogLevel l = LogLevel::Warn;
        if (const char *env = std::getenv("FSMOE_LOG_LEVEL")) {
            bool ok = false;
            l = parseLevel(env, &ok);
            if (!ok)
                std::fprintf(stderr,
                             "warn: unknown FSMOE_LOG_LEVEL '%s' "
                             "(want silent|error|warn|verbose); "
                             "keeping 'warn'\n",
                             env);
        }
        return static_cast<int>(l);
    }();
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(levelStore().load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    levelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <=
           levelStore().load(std::memory_order_relaxed);
}

size_t
suppressedWarningCount()
{
    WarnState &state = warnState();
    std::lock_guard<std::mutex> lock(state.mu);
    return state.suppressed;
}

void
flushRepeatedWarnings()
{
    WarnState &state = warnState();
    std::vector<std::pair<std::string, size_t>> repeats;
    {
        std::lock_guard<std::mutex> lock(state.mu);
        for (const auto &[msg, count] : state.counts)
            if (count > 1)
                repeats.emplace_back(msg, count - 1);
        state.counts.clear();
        state.suppressed = 0;
    }
    // The dedup table is unordered; sort so the summary prints in a
    // stable order instead of hash order.
    std::sort(repeats.begin(), repeats.end());
    for (const auto &[msg, times] : repeats)
        std::fprintf(stderr, "%s (repeated %zu more time%s)\n", msg.c_str(),
                     times, times == 1 ? "" : "s");
}

namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (!logEnabled(LogLevel::Warn))
        return;
    char formatted[1024];
    std::snprintf(formatted, sizeof formatted, "warn: %s (%s:%d)",
                  msg.c_str(), file, line);
    WarnState &state = warnState();
    bool print_now = false;
    {
        std::lock_guard<std::mutex> lock(state.mu);
        size_t &count = state.counts[formatted];
        ++count;
        if (count == 1) {
            print_now = true;
        } else {
            ++state.suppressed;
            if (!state.atexit_registered) {
                state.atexit_registered = true;
                std::atexit(flushRepeatedWarnings);
            }
        }
    }
    if (print_now)
        std::fprintf(stderr, "%s\n", formatted);
}

void
verboseImpl(const char *file, int line, const std::string &msg)
{
    if (!logEnabled(LogLevel::Verbose))
        return;
    std::fprintf(stderr, "verbose: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace detail
} // namespace fsmoe
