/**
 * @file
 * Minimal JSON support shared by every persistence surface: a value
 * model with a recursive-descent parser, plus the two formatting
 * helpers that make serialised artifacts deterministic and bit-exact.
 *
 * Extracted from runtime/result_store.cc so the sweep result store,
 * the tuner's advisor cache, and any future persisted schema parse and
 * print identically. The parser is deliberately small: it accepts
 * exactly the JSON our writers emit (objects, arrays, strings with
 * \u00xx control escapes, IEEE numbers, bool, null) plus arbitrary
 * whitespace, preserves object member order, and guards recursion
 * depth so attacker-shaped nesting cannot overflow the stack.
 *
 * Determinism contract: fmtDouble prints 17 significant digits, which
 * IEEE-754 binary64 guarantees to re-parse to the identical bit
 * pattern, so a parse -> re-serialise round trip reproduces the
 * original bytes. Thread-safety: everything here is a pure function of
 * its arguments.
 */
#ifndef FSMOE_BASE_JSON_H
#define FSMOE_BASE_JSON_H

#include <string>
#include <utility>
#include <vector>

namespace fsmoe::json {

/** One parsed JSON value; a tagged union over the seven JSON kinds. */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /// Members in document order; duplicate names are kept as written.
    std::vector<std::pair<std::string, Value>> object;

    /** First member named @p name, or nullptr (non-objects: nullptr). */
    const Value *find(const char *name) const
    {
        for (const auto &kv : object)
            if (kv.first == name)
                return &kv.second;
        return nullptr;
    }
};

/**
 * Parse @p text into *out. On failure returns false and, when @p error
 * is non-null, describes the problem with a byte offset.
 */
bool parse(const std::string &text, Value *out, std::string *error);

// ------------------------------------------------- typed member access

/** *out = v's string; false unless @p v is a String. */
bool asString(const Value *v, std::string *out);

/** *out = v's number; false unless @p v is a Number. */
bool asNumber(const Value *v, double *out);

/** asNumber truncated toward zero into an int64. */
bool asInt(const Value *v, int64_t *out);

/** *out = v's boolean; false unless @p v is a Bool. */
bool asBool(const Value *v, bool *out);

// --------------------------------------------------------- formatting

/**
 * Shortest printf form that re-parses to the identical bit pattern:
 * "%.17g". 17 significant digits are sufficient (and necessary in the
 * worst case) for IEEE-754 binary64.
 */
std::string fmtDouble(double v);

/** Escape @p s for embedding inside a JSON string literal. */
std::string escape(const std::string &s);

} // namespace fsmoe::json

#endif // FSMOE_BASE_JSON_H
