#include "base/fileio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "base/stats.h"

namespace fsmoe::fileio {

namespace {

std::string
tmpPathFor(const std::string &path)
{
    return path + ".tmp." + std::to_string(::getpid());
}

void
setError(std::string *error, const std::string &what,
         const std::string &path)
{
    if (error != nullptr)
        *error = what + " '" + path + "': " + std::strerror(errno);
}

} // namespace

bool
atomicWriteFile(const std::string &path, const std::string &text,
                std::string *error)
{
    const std::string tmp = tmpPathFor(path);
    // allowlisted nonatomic-write: this IS the tmp half of tmp+rename.
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        setError(error, "cannot create temp file", tmp);
        stats::counter("fileio.atomicWrite.failed").inc();
        return false;
    }
    const bool wrote =
        std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
        std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    if (std::fclose(f) != 0 || !wrote) {
        setError(error, "short write to temp file", tmp);
        std::remove(tmp.c_str());
        stats::counter("fileio.atomicWrite.failed").inc();
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "cannot rename temp file over", path);
        std::remove(tmp.c_str());
        stats::counter("fileio.atomicWrite.failed").inc();
        return false;
    }
    stats::counter("fileio.atomicWrite.count").inc();
    return true;
}

bool
checkWritable(const std::string &path, std::string *error)
{
    const std::string tmp = tmpPathFor(path);
    // allowlisted nonatomic-write: probe file, removed before return.
    std::FILE *f = std::fopen(tmp.c_str(), "ab");
    if (f == nullptr) {
        setError(error, "cannot write", path);
        return false;
    }
    std::fclose(f);
    std::remove(tmp.c_str());
    return true;
}

bool
readTextFile(const std::string &path, std::string *text, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    if (in.bad()) {
        if (error != nullptr)
            *error = "read error on '" + path + "'";
        return false;
    }
    *text = oss.str();
    return true;
}

} // namespace fsmoe::fileio
