/**
 * @file
 * One-dimensional minimisation used by the pipeline-degree solver.
 *
 * The paper solves each case objective f1..f4 with SLSQP (§4.3). Every
 * objective has the hyperbolic form A*r + B/r + C, which is convex on
 * r > 0, so we provide (a) the closed-form unconstrained minimiser,
 * (b) golden-section search for general convex objectives, and (c) a
 * feasibility-aware solve that combines a coarse grid scan with local
 * golden-section refinement — robust for the paper's disjunctive
 * Q-predicate constraint regions, which need not be intervals.
 */
#ifndef FSMOE_SOLVER_MINIMIZE_H
#define FSMOE_SOLVER_MINIMIZE_H

#include <functional>
#include <optional>

namespace fsmoe::solver {

/** Outcome of a 1-D minimisation. */
struct Minimum
{
    double x = 0.0; ///< Argmin.
    double value = 0.0; ///< Objective at the argmin.
};

/**
 * Closed-form minimiser of f(r) = a*r + b/r + c over r >= lo.
 * With a,b >= 0 the unconstrained argmin is sqrt(b/a); degenerate
 * coefficients fall back to the boundary.
 */
Minimum minimizeHyperbolic(double a, double b, double c, double lo = 1.0);

/**
 * Golden-section search for a unimodal objective on [lo, hi].
 *
 * @param f    Objective.
 * @param lo   Left bound.
 * @param hi   Right bound.
 * @param tol  Termination width.
 */
Minimum goldenSection(const std::function<double(double)> &f, double lo,
                      double hi, double tol = 1e-6);

/**
 * Minimise @p f over [lo, hi] subject to @p feasible(x) being true,
 * where the feasible set may be a union of intervals (the paper's
 * Q-predicate case regions). Scans a uniform grid of @p samples
 * points, keeps feasible candidates, and refines the best one locally
 * with golden-section (clamped to the feasible neighbourhood).
 *
 * @return Nothing when no grid point is feasible.
 */
std::optional<Minimum>
minimizeConstrained(const std::function<double(double)> &f,
                    const std::function<bool(double)> &feasible, double lo,
                    double hi, int samples = 512);

} // namespace fsmoe::solver

#endif // FSMOE_SOLVER_MINIMIZE_H
