#include "solver/differential_evolution.h"

#include <algorithm>
#include <limits>
#include <random>

#include "base/logging.h"

namespace fsmoe::solver {

DeResult
differentialEvolution(
    const std::function<double(const std::vector<double> &)> &objective,
    const std::vector<double> &lo, const std::vector<double> &hi,
    const DeConfig &config)
{
    const size_t d = lo.size();
    FSMOE_CHECK_ARG(hi.size() == d, "DE bound length mismatch");
    FSMOE_CHECK_ARG(d >= 1, "DE needs at least one dimension");
    for (size_t i = 0; i < d; ++i)
        FSMOE_CHECK_ARG(lo[i] <= hi[i], "DE bound ", i, " inverted");
    const int np = std::max(config.populationSize, 4);

    std::mt19937_64 rng(config.seed);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    auto clamp = [&](std::vector<double> &x) {
        for (size_t i = 0; i < d; ++i)
            x[i] = std::clamp(x[i], lo[i], hi[i]);
    };

    std::vector<std::vector<double>> pop(np, std::vector<double>(d));
    std::vector<double> fitness(np);
    for (int m = 0; m < np; ++m) {
        for (size_t i = 0; i < d; ++i)
            pop[m][i] = lo[i] + unit(rng) * (hi[i] - lo[i]);
        fitness[m] = objective(pop[m]);
    }

    auto best_it = std::min_element(fitness.begin(), fitness.end());
    int best = static_cast<int>(best_it - fitness.begin());

    DeResult result{pop[best], fitness[best], 0};
    std::vector<double> trial(d);
    std::uniform_int_distribution<int> pick(0, np - 1);
    std::uniform_int_distribution<size_t> pick_dim(0, d - 1);

    int stagnant = 0;
    for (int gen = 0; gen < config.maxGenerations; ++gen) {
        double gen_best_before = result.value;
        for (int m = 0; m < np; ++m) {
            int a, b, c;
            do { a = pick(rng); } while (a == m);
            do { b = pick(rng); } while (b == m || b == a);
            do { c = pick(rng); } while (c == m || c == a || c == b);
            size_t forced = pick_dim(rng);
            for (size_t i = 0; i < d; ++i) {
                bool cross = unit(rng) < config.crossover || i == forced;
                trial[i] = cross
                    ? pop[a][i] + config.weight * (pop[b][i] - pop[c][i])
                    : pop[m][i];
            }
            clamp(trial);
            double fv = objective(trial);
            if (fv <= fitness[m]) {
                pop[m] = trial;
                fitness[m] = fv;
                if (fv < result.value) {
                    result.value = fv;
                    result.x = trial;
                }
            }
        }
        result.generations = gen + 1;
        // Converged once the best member has not improved for a while;
        // DE routinely stalls for a few generations before a jump, so
        // a single flat generation must not stop the search.
        if (gen_best_before - result.value < config.tolerance) {
            if (++stagnant >= 30)
                break;
        } else {
            stagnant = 0;
        }
    }
    return result;
}

} // namespace fsmoe::solver
