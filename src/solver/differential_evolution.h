/**
 * @file
 * Differential evolution (rand/1/bin) global optimiser.
 *
 * Paper §5.3 assigns the gradient bytes that remain after Step 1 to MoE
 * layers by solving Eq. 5 with differential evolution, noting the solve
 * runs once before training so wall-clock cost is not critical. This is
 * a standard DE with box constraints and an optional penalty hook for
 * the coupled upper-bound constraints of Eq. 5.
 */
#ifndef FSMOE_SOLVER_DIFFERENTIAL_EVOLUTION_H
#define FSMOE_SOLVER_DIFFERENTIAL_EVOLUTION_H

#include <cstdint>
#include <functional>
#include <vector>

namespace fsmoe::solver {

/** Tuning knobs for differential evolution. */
struct DeConfig
{
    int populationSize = 32;   ///< Members per generation (>= 4).
    int maxGenerations = 200;  ///< Generation budget.
    double weight = 0.7;       ///< Differential weight F.
    double crossover = 0.9;    ///< Crossover probability CR.
    uint64_t seed = 0x0d5eedULL; ///< RNG seed for reproducibility.
    double tolerance = 1e-9;   ///< Stop when best improves less than this
                               ///< over a full generation sweep.
};

/** Result of a DE run. */
struct DeResult
{
    std::vector<double> x; ///< Best member found.
    double value = 0.0;    ///< Objective at the best member.
    int generations = 0;   ///< Generations actually executed.
};

/**
 * Minimise @p objective over the box [lo_i, hi_i]^d.
 *
 * The objective may implement coupled constraints by returning a
 * penalised value; candidates are always clamped into the box first.
 */
DeResult differentialEvolution(
    const std::function<double(const std::vector<double> &)> &objective,
    const std::vector<double> &lo, const std::vector<double> &hi,
    const DeConfig &config = {});

} // namespace fsmoe::solver

#endif // FSMOE_SOLVER_DIFFERENTIAL_EVOLUTION_H
