#include "solver/minimize.h"

#include <cmath>
#include <limits>

#include "base/logging.h"

namespace fsmoe::solver {

Minimum
minimizeHyperbolic(double a, double b, double c, double lo)
{
    FSMOE_CHECK_ARG(lo > 0.0, "minimizeHyperbolic requires lo > 0");
    auto eval = [&](double r) { return a * r + b / r + c; };
    double x = lo;
    if (a > 0.0 && b > 0.0) {
        x = std::max(lo, std::sqrt(b / a));
    } else if (a > 0.0) {
        x = lo; // increasing: boundary optimum
    } else if (b > 0.0) {
        // Decreasing in r: unbounded improvement; report a large r so the
        // caller's integer clamp takes over.
        x = std::numeric_limits<double>::max();
        return {x, c};
    }
    return {x, eval(x)};
}

Minimum
goldenSection(const std::function<double(double)> &f, double lo, double hi,
              double tol)
{
    FSMOE_CHECK_ARG(lo <= hi, "goldenSection requires lo <= hi");
    constexpr double kInvPhi = 0.6180339887498949;
    double a = lo, b = hi;
    double c = b - kInvPhi * (b - a);
    double d = a + kInvPhi * (b - a);
    double fc = f(c), fd = f(d);
    while (b - a > tol) {
        if (fc < fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - kInvPhi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + kInvPhi * (b - a);
            fd = f(d);
        }
    }
    double x = 0.5 * (a + b);
    return {x, f(x)};
}

std::optional<Minimum>
minimizeConstrained(const std::function<double(double)> &f,
                    const std::function<bool(double)> &feasible, double lo,
                    double hi, int samples)
{
    FSMOE_CHECK_ARG(samples >= 2, "minimizeConstrained needs >= 2 samples");
    FSMOE_CHECK_ARG(lo <= hi, "minimizeConstrained requires lo <= hi");

    if (hi - lo < 1e-12) {
        // Degenerate interval: a single candidate point.
        if (!feasible(lo))
            return std::nullopt;
        return Minimum{lo, f(lo)};
    }
    const double step = (hi - lo) / (samples - 1);
    double best_x = 0.0;
    double best_v = std::numeric_limits<double>::infinity();
    bool found = false;
    for (int i = 0; i < samples; ++i) {
        double x = lo + step * i;
        if (!feasible(x))
            continue;
        double v = f(x);
        if (v < best_v) {
            best_v = v;
            best_x = x;
            found = true;
        }
    }
    if (!found)
        return std::nullopt;

    // Refine within the contiguous feasible neighbourhood of the best
    // grid point so the local solve cannot leave the feasible region.
    double left = best_x, right = best_x;
    while (left - step >= lo && feasible(left - step))
        left -= step;
    while (right + step <= hi && feasible(right + step))
        right += step;
    Minimum refined = goldenSection(f, left, right);
    if (feasible(refined.x) && refined.value < best_v)
        return refined;
    return Minimum{best_x, best_v};
}

} // namespace fsmoe::solver
