/**
 * @file
 * Ordinary least-squares line fitting.
 *
 * The paper's online profiler (§3.2, §6.2) fits linear performance
 * models t = alpha + beta * n to microbenchmark samples with the least
 * squares method; this is that fit, plus the r^2 goodness measure the
 * paper reports in Fig. 5.
 */
#ifndef FSMOE_SOLVER_LEAST_SQUARES_H
#define FSMOE_SOLVER_LEAST_SQUARES_H

#include <cstddef>
#include <vector>

namespace fsmoe::solver {

/** Result of fitting y = intercept + slope * x. */
struct LineFit
{
    double intercept = 0.0; ///< alpha: startup time.
    double slope = 0.0;     ///< beta: time per byte / per unit work.
    double r2 = 0.0;        ///< Coefficient of determination.
};

/**
 * Fit y = a + b*x by ordinary least squares.
 *
 * @param xs  Sample abscissae (e.g. message sizes in bytes).
 * @param ys  Sample ordinates (e.g. measured milliseconds).
 * @return    Fitted line and r^2. Requires at least two distinct xs.
 */
LineFit fitLine(const std::vector<double> &xs, const std::vector<double> &ys);

} // namespace fsmoe::solver

#endif // FSMOE_SOLVER_LEAST_SQUARES_H
