#include "solver/least_squares.h"

#include <cmath>

#include "base/logging.h"

namespace fsmoe::solver {

LineFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    FSMOE_CHECK_ARG(xs.size() == ys.size(), "fitLine length mismatch");
    FSMOE_CHECK_ARG(xs.size() >= 2, "fitLine needs at least two samples");
    const double n = static_cast<double>(xs.size());

    double sx = 0.0, sy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / n;
    const double my = sy / n;

    double sxx = 0.0, sxy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        sxy += (xs[i] - mx) * (ys[i] - my);
    }
    FSMOE_CHECK_ARG(sxx > 0.0, "fitLine requires at least two distinct xs");

    LineFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;

    double ss_res = 0.0, ss_tot = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        double pred = fit.intercept + fit.slope * xs[i];
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - my) * (ys[i] - my);
    }
    fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

} // namespace fsmoe::solver
