#include "runtime/journal.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "base/fileio.h"
#include "base/logging.h"
#include "base/stats.h"
#include "runtime/fault.h"

namespace fsmoe::runtime {

namespace {

uint64_t
fnv1a(const std::string &text)
{
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
headerLine(uint64_t grid_fp, size_t grid_size)
{
    std::ostringstream oss;
    oss << "fsmoe-journal v1 grid=" << hex16(grid_fp) << " n=" << grid_size;
    return oss.str();
}

bool
fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    std::fclose(f);
    return true;
}

/**
 * Parse "<index> <16-hex checksum> <payload>"; checksum-verify and
 * JSON-parse the payload. Any failure means this line — and
 * everything after it — is the torn tail.
 */
bool
parseRecordLine(const std::string &line, size_t grid_size, size_t *index,
                SweepResult *result)
{
    const size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos)
        return false;
    const size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos || sp2 - sp1 - 1 != 16)
        return false;
    char *end = nullptr;
    const std::string idx_text = line.substr(0, sp1);
    const unsigned long long idx = std::strtoull(idx_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || idx_text.empty() ||
        idx >= grid_size)
        return false;
    const unsigned long long sum =
        std::strtoull(line.substr(sp1 + 1, 16).c_str(), &end, 16);
    if (end == nullptr || *end != '\0')
        return false;
    const std::string payload = line.substr(sp2 + 1);
    if (fnv1a(payload) != sum)
        return false;
    std::string error;
    if (!parseJsonRecord(payload, result, &error))
        return false;
    *index = idx;
    return true;
}

} // namespace

Journal::~Journal()
{
    close();
}

uint64_t
Journal::gridFingerprint(const std::vector<Scenario> &grid)
{
    uint64_t h = 14695981039346656037ULL;
    for (const Scenario &s : grid) {
        const std::string label = s.label();
        for (unsigned char c : label) {
            h ^= c;
            h *= 1099511628211ULL;
        }
        h ^= '\n';
        h *= 1099511628211ULL;
    }
    return h;
}

bool
Journal::open(const std::string &path, const std::vector<Scenario> &grid,
              bool resume, std::string *error)
{
    std::lock_guard<std::mutex> lock(mu_);
    FSMOE_ASSERT(file_ == nullptr, "journal already open");
    const uint64_t grid_fp = gridFingerprint(grid);
    const std::string header = headerLine(grid_fp, grid.size());
    recovered_.clear();
    gridSize_ = grid.size();
    path_ = path;

    const bool exists = fileExists(path);
    if (!resume && exists) {
        if (error != nullptr)
            *error = "journal '" + path +
                     "' already exists; pass --resume to continue it or "
                     "remove it to start over";
        return false;
    }

    if (resume && exists) {
        std::string text;
        if (!fileio::readTextFile(path, &text, error))
            return false;
        std::istringstream in(text);
        std::string line;
        if (!std::getline(in, line) || line != header) {
            if (error != nullptr)
                *error = "journal '" + path +
                         "' does not match this sweep (expected header \"" +
                         header + "\")";
            return false;
        }
        // Valid prefix survives; the first bad line starts the torn
        // tail and ends recovery.
        std::string keep = header + "\n";
        size_t dropped = 0;
        while (std::getline(in, line)) {
            size_t index = 0;
            SweepResult r;
            if (!parseRecordLine(line, gridSize_, &index, &r)) {
                ++dropped;
                // Count the rest of the file as dropped too.
                while (std::getline(in, line))
                    ++dropped;
                break;
            }
            recovered_[index] = std::move(r); // last record wins
            keep += line + "\n";
        }
        if (dropped > 0) {
            // Rewrite the valid prefix atomically so the next crash
            // cannot compound a torn tail with another torn tail.
            if (!fileio::atomicWriteFile(path, keep, error))
                return false;
            stats::counter("robust.journal.tornRecords").inc(dropped);
            FSMOE_WARN("journal '", path, "': dropped ", dropped,
                       " torn/corrupt record(s); they will be re-run");
        }
        stats::counter("robust.journal.recovered").inc(recovered_.size());
    } else {
        // Fresh journal: land the header atomically before appending.
        if (!fileio::atomicWriteFile(path, header + "\n", error))
            return false;
    }

    // allowlisted nonatomic-write: the journal is an append-only log;
    // each record is fsync'd and checksummed, torn tails are truncated
    // on recovery (see file comment).
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
        if (error != nullptr)
            *error = "cannot append to journal '" + path +
                     "': " + std::strerror(errno);
        return false;
    }
    return true;
}

bool
Journal::append(size_t index, const SweepResult &r, std::string *error)
{
    std::lock_guard<std::mutex> lock(mu_);
    FSMOE_ASSERT(file_ != nullptr, "journal not open");
    FSMOE_ASSERT(index < gridSize_, "journal index out of range");
    const std::string payload = toJsonRecord(r);
    const std::string line =
        std::to_string(index) + " " + hex16(fnv1a(payload)) + " " + payload +
        "\n";

    if (fault::shouldInject(fault::Site::TornJournalWrite, r.key(), 0)) {
        // A torn write only exists because the process died mid-append;
        // manufacture exactly that: half the record, then gone.
        std::fwrite(line.data(), 1, line.size() / 2, file_);
        std::fflush(file_);
        ::fsync(::fileno(file_));
        ::_exit(137);
    }

    const bool ok =
        std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
        std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
    if (!ok) {
        if (error != nullptr)
            *error = "short write to journal '" + path_ +
                     "': " + std::strerror(errno);
        return false;
    }
    stats::counter("robust.journal.appends").inc();

    if (fault::shouldKillAfterAppend())
        ::_exit(137); // the record above is durable; nothing after is

    return true;
}

void
Journal::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

} // namespace fsmoe::runtime
