/**
 * @file
 * Scenario specifications for the sweep runtime.
 *
 * A Scenario names everything needed to price one training iteration:
 * a model preset, a cluster preset, a schedule, and the workload knobs
 * (batch, sequence length, layer/expert counts). Presets are resolved
 * through a ScenarioRegistry so new models and testbeds can be plugged
 * in without touching the engine, and ScenarioGrid enumerates
 * cartesian-product sweeps in a deterministic order.
 *
 * Thread-safety: ScenarioRegistry is fully thread-safe (every method
 * takes its internal lock; builders run outside the lock, so they may
 * themselves call back into the registry). Scenario and ScenarioGrid
 * are plain value types with no internal synchronisation — share them
 * across threads only as read-only data.
 *
 * Determinism: ScenarioGrid::build() depends only on the configured
 * axes (nested-loop order, no hashing), so the same grid builds the
 * same scenario list in the same order in every process, which is
 * what makes persisted sweep results diffable across machines and
 * shardScenarios() slices stable.
 */
#ifndef FSMOE_RUNTIME_SCENARIO_H
#define FSMOE_RUNTIME_SCENARIO_H

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schedules/schedule.h"
#include "model/models.h"
#include "sim/cluster.h"

namespace fsmoe::runtime {

/** One (model, cluster, schedule, knobs) evaluation point. */
struct Scenario
{
    std::string model;   ///< Model preset name (see ScenarioRegistry).
    std::string cluster; ///< Cluster preset name.
    /// Schedule spec resolved through core::ScheduleRegistry — a
    /// canonical name, alias, or parameterized variant such as
    /// "Tutel?degree=4". Use the canonical spelling (what
    /// ScheduleRegistry::canonicalize returns; ScenarioGrid::build
    /// canonicalizes for you) so labels, cache keys, and persisted
    /// result keys stay stable.
    std::string schedule = "FSMoE";
    int64_t batch = 1;    ///< B: samples per GPU.
    int64_t seqLen = 1024; ///< L: tokens per sample.
    int numLayers = 0;    ///< Generalized layers; 0 = preset default.
    int numExperts = 0;   ///< E; 0 = one expert per node (paper rule).
    int rMax = 16;        ///< Largest pipeline degree schedules may use.

    /** Human-readable id, e.g. "mixtral-7b/testbedA/FSMoE/b1/L1024". */
    std::string label() const;

    /**
     * Key identifying the ModelCost this scenario needs: every field
     * except the schedule, so all schedules of one configuration share
     * a single cached cost evaluation.
     */
    std::string costKey() const;
};

/**
 * Name-indexed builders for model and cluster presets. The built-in
 * presets are the paper's: models "gpt2xl-moe", "mixtral-7b",
 * "mixtral-22b"; clusters "testbedA", "testbedB". Thread-safe.
 */
class ScenarioRegistry
{
  public:
    /// Builds a ModelSpec; @p num_layers <= 0 selects the preset default.
    using ModelBuilder = std::function<model::ModelSpec(
        int num_experts, int64_t batch, int64_t seq_len, int num_layers)>;
    using ClusterBuilder = std::function<sim::ClusterSpec()>;

    /** The process-wide registry, with built-ins pre-registered. */
    static ScenarioRegistry &instance();

    void registerModel(const std::string &name, ModelBuilder builder);
    void registerCluster(const std::string &name, ClusterBuilder builder);

    bool hasModel(const std::string &name) const;
    bool hasCluster(const std::string &name) const;
    std::vector<std::string> modelNames() const;
    std::vector<std::string> clusterNames() const;

    /** Instantiate the cluster preset @p name (fatal if unknown). */
    sim::ClusterSpec makeCluster(const std::string &name) const;

    /**
     * Resolve @p scenario to a ModelSpec on @p cluster, applying the
     * paper's defaults (E = cluster nodes when numExperts == 0).
     */
    model::ModelSpec makeModel(const Scenario &scenario,
                               const sim::ClusterSpec &cluster) const;

    /** Price @p scenario: cluster -> ModelSpec -> ModelCost. */
    core::ModelCost makeCost(const Scenario &scenario) const;

  private:
    ScenarioRegistry();

    mutable std::mutex mu_;
    std::unordered_map<std::string, ModelBuilder> models_;
    std::unordered_map<std::string, ClusterBuilder> clusters_;
};

/**
 * Cartesian-product sweep builder. Every axis defaults to one sensible
 * value; the schedule axis defaults to every registered schedule, in
 * registration (paper-figure) order. Schedule specs may be
 * parameterized variants ("tutel?degree=4"), making tuning knobs
 * first-class sweep axes; build() canonicalizes each spec through
 * core::ScheduleRegistry (fatal on unknown schedules or invalid
 * parameters) and emits scenarios in nested-loop order (model,
 * cluster, batch, seqLen, layers, schedule), which fixes the result
 * order of a sweep.
 */
class ScenarioGrid
{
  public:
    ScenarioGrid &models(std::vector<std::string> v);
    ScenarioGrid &clusters(std::vector<std::string> v);
    /// Schedule spec strings; empty (the default) = every registered
    /// schedule's canonical name.
    ScenarioGrid &schedules(std::vector<std::string> v);
    ScenarioGrid &batches(std::vector<int64_t> v);
    ScenarioGrid &seqLens(std::vector<int64_t> v);
    ScenarioGrid &numLayers(std::vector<int> v);
    ScenarioGrid &rMax(int r);

    std::vector<Scenario> build() const;

  private:
    std::vector<std::string> models_ = {"gpt2xl-moe"};
    std::vector<std::string> clusters_ = {"testbedA"};
    std::vector<std::string> schedules_; // empty = all registered
    std::vector<int64_t> batches_ = {1};
    std::vector<int64_t> seq_lens_ = {1024};
    std::vector<int> num_layers_ = {0};
    int r_max_ = 16;
};

/**
 * The demo grid shared by fsmoe_sweep and the blessed cross-PR
 * baseline (bench/baselines/demo_grid.json): both paper testbeds, two
 * models, every registered schedule — plus, when @p schedules is
 * empty, a parameterized tutel?degree={2,4,8} sub-grid on Testbed A so
 * schedule variants are exercised as sweep axes. Keeping the
 * definition here means the CI baseline diff and the in-tree
 * regression test (tests/demo_grid_baseline_test.cc) can never drift
 * from what the CLI sweeps.
 */
std::vector<Scenario>
demoGrid(const std::vector<int64_t> &batches = {1, 2},
         const std::vector<std::string> &schedules = {});

/**
 * One process's share of a sweep: shard @p index of @p count
 * (1-based, "K/N" on the CLI).
 */
struct ShardSpec
{
    int index = 1; ///< Which shard this process runs, in [1, count].
    int count = 1; ///< Total number of shards.
};

/**
 * Parse "K/N" (e.g. "2/4") into a ShardSpec. Returns false unless
 * both are integers with 1 <= K <= N that fit a 32-bit int — K > N,
 * N == 0, and overflowing values are all rejected, never collapsed
 * into an empty or wrong shard. On failure *error (when non-null)
 * explains which constraint was violated.
 */
bool parseShardSpec(const std::string &text, ShardSpec *spec,
                    std::string *error = nullptr);

/**
 * The contiguous slice of @p scenarios belonging to @p shard:
 * [size*(K-1)/N, size*K/N). Deterministic, order-preserving, and a
 * partition — for a fixed input and N, the K slices are pairwise
 * disjoint and concatenating them in K order reproduces the input
 * exactly, which is what lets persisted shard results be merged into
 * a byte-identical unsharded sweep (see result_store.h). Fatal if
 * the spec is out of range.
 */
std::vector<Scenario> shardScenarios(const std::vector<Scenario> &scenarios,
                                     const ShardSpec &shard);

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_SCENARIO_H
