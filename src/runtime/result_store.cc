#include "runtime/result_store.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "base/fileio.h"
#include "base/json.h"
#include "base/logging.h"
#include "sim/trace.h"

namespace fsmoe::runtime {

namespace {

constexpr size_t kNumOps = static_cast<size_t>(sim::OpType::NumOpTypes);
constexpr size_t kNumLinks = static_cast<size_t>(sim::Link::NumLinks);

const char *
opName(size_t i)
{
    return sim::opTypeName(static_cast<sim::OpType>(i));
}

const char *
linkName(size_t i)
{
    return sim::linkName(static_cast<sim::Link>(i));
}

// 17-significant-digit printing and string escaping live in base/json
// so every persisted schema (sweep results, the tuner's advisor cache)
// stays bit-exact the same way.
using json::fmtDouble;
const auto jsonEscape = json::escape;

bool
parseDouble(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
}

bool
parseInt64(const std::string &text, int64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoll(text.c_str(), &end, 10);
    return end == text.c_str() + text.size();
}

// JSON-in goes through base/json (json::parse and the typed member
// accessors); aliases keep the reader code below reading naturally.
const auto jsonString = json::asString;
const auto jsonNumber = json::asNumber;
const auto jsonInt = json::asInt;

// ------------------------------------------------------------- CSV

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/**
 * Split one CSV record (no trailing newline) into fields, honouring
 * quoted fields with doubled-quote escapes.
 */
bool
splitCsvRecord(const std::string &line, std::vector<std::string> *fields)
{
    fields->clear();
    std::string cur;
    bool quoted = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cur += c;
            }
        } else if (c == '"' && cur.empty()) {
            quoted = true;
        } else if (c == ',') {
            fields->push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (quoted)
        return false; // unterminated quote
    fields->push_back(cur);
    return true;
}

/**
 * Split CSV text into records, honouring quotes: a newline inside a
 * quoted field belongs to the field, not the record separator. CRLF
 * record endings are normalised. Returns false on an unterminated
 * quote at end of input.
 */
bool
splitCsvRecords(const std::string &text, std::vector<std::string> *records)
{
    records->clear();
    std::string cur;
    bool quoted = false;
    for (char c : text) {
        if (c == '"') {
            // A doubled escape toggles twice; net state stays correct.
            quoted = !quoted;
            cur += c;
        } else if (c == '\n' && !quoted) {
            if (!cur.empty() && cur.back() == '\r')
                cur.pop_back();
            records->push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (quoted)
        return false;
    if (!cur.empty())
        records->push_back(cur);
    return true;
}

std::vector<std::string>
csvHeader(bool with_links, bool with_status)
{
    std::vector<std::string> cols = {
        "model",      "cluster",     "schedule",
        "batch",      "seq_len",     "num_layers",
        "num_experts", "r_max",      "makespan_ms",
    };
    for (size_t i = 0; i < kNumOps; ++i)
        cols.push_back(std::string("op_") + opName(i) + "_ms");
    if (with_links) {
        for (size_t i = 0; i < kNumLinks; ++i)
            cols.push_back(std::string("link_") + linkName(i) + "_busy_ms");
    }
    if (with_status) {
        cols.push_back("status");
        cols.push_back("attempts");
        cols.push_back("error");
    }
    return cols;
}

/// Does this set need the status columns / fields at all?
bool
anyNonOk(const std::vector<SweepResult> &results)
{
    for (const SweepResult &r : results)
        if (r.status != ResultStatus::Ok)
            return true;
    return false;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::string error;
    if (!fileio::atomicWriteFile(path, text, &error)) {
        FSMOE_WARN(error);
        return false;
    }
    return true;
}

/// Serialise one record as a JSON object (no surrounding whitespace).
void
appendRecordJson(std::ostringstream &oss, const SweepResult &r,
                 bool include_link_stats)
{
    oss << "{\"model\":\"" << jsonEscape(r.model) << "\","
        << "\"cluster\":\"" << jsonEscape(r.cluster) << "\","
        << "\"schedule\":\"" << jsonEscape(r.schedule) << "\","
        << "\"batch\":" << r.batch << ","
        << "\"seq_len\":" << r.seqLen << ","
        << "\"num_layers\":" << r.numLayers << ","
        << "\"num_experts\":" << r.numExperts << ","
        << "\"r_max\":" << r.rMax << ","
        << "\"makespan_ms\":" << fmtDouble(r.makespanMs) << ","
        << "\"op_time_ms\":{";
    for (size_t op = 0; op < kNumOps; ++op) {
        oss << (op == 0 ? "" : ",") << '"' << opName(op)
            << "\":" << fmtDouble(r.opTimeMs[op]);
    }
    oss << '}';
    if (include_link_stats) {
        oss << ",\"link_busy_ms\":{";
        for (size_t li = 0; li < kNumLinks; ++li) {
            oss << (li == 0 ? "" : ",") << '"' << linkName(li)
                << "\":" << fmtDouble(r.linkBusyMs[li]);
        }
        oss << '}';
    }
    if (r.status != ResultStatus::Ok) {
        oss << ",\"status\":\"" << resultStatusName(r.status) << "\","
            << "\"attempts\":" << r.attempts << ","
            << "\"error\":\"" << jsonEscape(r.error) << "\"";
    }
    oss << '}';
}

/// Parse one JSON result object into *out (inverse of the above).
bool
parseRecordJson(const json::Value &entry, SweepResult *out,
                std::string *error, size_t index)
{
    const auto bad = [&](const char *field) {
        if (error) {
            std::ostringstream oss;
            oss << "result " << index << ": missing or mistyped \""
                << field << '"';
            *error = oss.str();
        }
        return false;
    };
    if (entry.kind != json::Value::Kind::Object) {
        if (error)
            *error = "results entry is not an object";
        return false;
    }
    SweepResult r;
    if (!jsonString(entry.find("model"), &r.model))
        return bad("model");
    if (!jsonString(entry.find("cluster"), &r.cluster))
        return bad("cluster");
    if (!jsonString(entry.find("schedule"), &r.schedule))
        return bad("schedule");
    int64_t n = 0;
    if (!jsonInt(entry.find("batch"), &r.batch))
        return bad("batch");
    if (!jsonInt(entry.find("seq_len"), &r.seqLen))
        return bad("seq_len");
    if (!jsonInt(entry.find("num_layers"), &n))
        return bad("num_layers");
    r.numLayers = static_cast<int>(n);
    if (!jsonInt(entry.find("num_experts"), &n))
        return bad("num_experts");
    r.numExperts = static_cast<int>(n);
    if (!jsonInt(entry.find("r_max"), &n))
        return bad("r_max");
    r.rMax = static_cast<int>(n);
    if (!jsonNumber(entry.find("makespan_ms"), &r.makespanMs))
        return bad("makespan_ms");
    const json::Value *ops = entry.find("op_time_ms");
    if (ops == nullptr || ops->kind != json::Value::Kind::Object)
        return bad("op_time_ms");
    for (size_t op = 0; op < kNumOps; ++op) {
        if (!jsonNumber(ops->find(opName(op)), &r.opTimeMs[op]))
            return bad(opName(op));
    }
    // Optional link breakdown (written with include_link_stats);
    // absent in older files, which parse identically to before.
    const json::Value *links = entry.find("link_busy_ms");
    if (links != nullptr) {
        if (links->kind != json::Value::Kind::Object)
            return bad("link_busy_ms");
        for (size_t li = 0; li < kNumLinks; ++li) {
            if (!jsonNumber(links->find(linkName(li)), &r.linkBusyMs[li]))
                return bad(linkName(li));
        }
        r.hasLinkStats = true;
    }
    // Optional fault-tolerance outcome; absent means Ok.
    const json::Value *status = entry.find("status");
    if (status != nullptr) {
        std::string name;
        if (!jsonString(status, &name) ||
            !parseResultStatus(name, &r.status))
            return bad("status");
        if (!jsonInt(entry.find("attempts"), &n))
            return bad("attempts");
        r.attempts = static_cast<int>(n);
        if (!jsonString(entry.find("error"), &r.error))
            return bad("error");
    }
    *out = std::move(r);
    return true;
}

} // namespace

// ---------------------------------------------------------- records

const char *
resultStatusName(ResultStatus status)
{
    switch (status) {
    case ResultStatus::Ok:
        return "ok";
    case ResultStatus::Failed:
        return "failed";
    case ResultStatus::Quarantined:
        return "quarantined";
    default:
        return "?";
    }
}

bool
parseResultStatus(const std::string &name, ResultStatus *out)
{
    if (name == "ok")
        *out = ResultStatus::Ok;
    else if (name == "failed")
        *out = ResultStatus::Failed;
    else if (name == "quarantined")
        *out = ResultStatus::Quarantined;
    else
        return false;
    return true;
}

std::string
SweepResult::key() const
{
    // Mirrors Scenario::label() so persisted keys match live labels.
    std::ostringstream oss;
    oss << model << '/' << cluster << '/' << schedule << "/b" << batch
        << "/L" << seqLen;
    if (numLayers > 0)
        oss << "/l" << numLayers;
    if (numExperts > 0)
        oss << "/e" << numExperts;
    if (rMax != 16)
        oss << "/r" << rMax;
    return oss.str();
}

Scenario
SweepResult::toScenario() const
{
    Scenario s;
    s.model = model;
    s.cluster = cluster;
    s.schedule = schedule;
    s.batch = batch;
    s.seqLen = seqLen;
    s.numLayers = numLayers;
    s.numExperts = numExperts;
    s.rMax = rMax;
    return s;
}

SweepResult
SweepResult::fromScenarioResult(const ScenarioResult &r)
{
    SweepResult out;
    out.model = r.scenario.model;
    out.cluster = r.scenario.cluster;
    out.schedule = r.scenario.schedule;
    out.batch = r.scenario.batch;
    out.seqLen = r.scenario.seqLen;
    out.numLayers = r.scenario.numLayers;
    out.numExperts = r.scenario.numExperts;
    out.rMax = r.scenario.rMax;
    out.makespanMs = r.makespanMs;
    for (size_t i = 0; i < kNumOps; ++i)
        out.opTimeMs[i] = r.sim.opTime[i];
    for (size_t i = 0; i < kNumLinks; ++i)
        out.linkBusyMs[i] = r.sim.linkBusyMs[i];
    out.hasLinkStats = true;
    return out;
}

std::vector<SweepResult>
toSweepResults(const std::vector<ScenarioResult> &results)
{
    std::vector<SweepResult> out;
    out.reserve(results.size());
    for (const ScenarioResult &r : results)
        out.push_back(SweepResult::fromScenarioResult(r));
    return out;
}

// ------------------------------------------------------------ writers

std::string
toJson(const std::vector<SweepResult> &results, bool include_link_stats)
{
    std::ostringstream oss;
    oss << "{\"schema\":\"fsmoe-sweep-results\",\"version\":1,"
           "\"results\":[";
    for (size_t i = 0; i < results.size(); ++i) {
        oss << (i == 0 ? "\n" : ",\n");
        appendRecordJson(oss, results[i], include_link_stats);
    }
    oss << "\n]}\n";
    return oss.str();
}

std::string
toJsonRecord(const SweepResult &r)
{
    std::ostringstream oss;
    appendRecordJson(oss, r, r.hasLinkStats);
    return oss.str();
}

bool
parseJsonRecord(const std::string &text, SweepResult *out,
                std::string *error)
{
    json::Value root;
    if (!json::parse(text, &root, error))
        return false;
    return parseRecordJson(root, out, error, 0);
}

std::string
toCsv(const std::vector<SweepResult> &results, bool include_link_stats)
{
    std::ostringstream oss;
    // The status columns appear iff any record needs them — a
    // deterministic function of the result set, so an all-Ok sweep
    // emits the classic header bytes.
    const bool with_status = anyNonOk(results);
    const std::vector<std::string> header =
        csvHeader(include_link_stats, with_status);
    for (size_t i = 0; i < header.size(); ++i)
        oss << (i == 0 ? "" : ",") << header[i];
    oss << '\n';
    for (const SweepResult &r : results) {
        oss << csvEscape(r.model) << ',' << csvEscape(r.cluster) << ','
            << csvEscape(r.schedule) << ',' << r.batch << ',' << r.seqLen
            << ',' << r.numLayers << ',' << r.numExperts << ',' << r.rMax
            << ',' << fmtDouble(r.makespanMs);
        for (size_t op = 0; op < kNumOps; ++op)
            oss << ',' << fmtDouble(r.opTimeMs[op]);
        if (include_link_stats) {
            for (size_t li = 0; li < kNumLinks; ++li)
                oss << ',' << fmtDouble(r.linkBusyMs[li]);
        }
        if (with_status) {
            oss << ',' << resultStatusName(r.status) << ',' << r.attempts
                << ',' << csvEscape(r.error);
        }
        oss << '\n';
    }
    return oss.str();
}

// ------------------------------------------------------------ readers

bool
parseJson(const std::string &text, std::vector<SweepResult> *out,
          std::string *error)
{
    json::Value root;
    if (!json::parse(text, &root, error))
        return false;
    if (root.kind != json::Value::Kind::Object) {
        if (error)
            *error = "top level is not an object";
        return false;
    }
    std::string schema;
    if (!jsonString(root.find("schema"), &schema) ||
        schema != "fsmoe-sweep-results") {
        if (error)
            *error = "missing or unknown \"schema\"";
        return false;
    }
    const json::Value *results = root.find("results");
    if (results == nullptr || results->kind != json::Value::Kind::Array) {
        if (error)
            *error = "missing \"results\" array";
        return false;
    }

    out->clear();
    out->reserve(results->array.size());
    for (size_t i = 0; i < results->array.size(); ++i) {
        SweepResult r;
        if (!parseRecordJson(results->array[i], &r, error, i))
            return false;
        out->push_back(std::move(r));
    }
    return true;
}

bool
parseCsv(const std::string &text, std::vector<SweepResult> *out,
         std::string *error)
{
    std::vector<std::string> records;
    if (!splitCsvRecords(text, &records)) {
        if (error)
            *error = "CSV: unterminated quote";
        return false;
    }
    if (records.empty()) {
        if (error)
            *error = "empty CSV";
        return false;
    }
    // The header row decides which writer shape this file has: the
    // classic columns, optionally plus the link columns, optionally
    // plus the status columns.
    std::vector<std::string> fields;
    bool with_links = false;
    bool with_status = false;
    if (!splitCsvRecord(records[0], &fields)) {
        if (error)
            *error = "CSV header does not match the sweep-result schema";
        return false;
    }
    bool known = false;
    for (bool links : {false, true}) {
        for (bool status : {false, true}) {
            if (fields == csvHeader(links, status)) {
                with_links = links;
                with_status = status;
                known = true;
            }
        }
    }
    if (!known) {
        if (error)
            *error = "CSV header does not match the sweep-result schema";
        return false;
    }

    out->clear();
    const size_t ncols = fields.size(); // == csvHeader(with_links).size()
    for (size_t lineno = 2; lineno <= records.size(); ++lineno) {
        const std::string &line = records[lineno - 1];
        if (line.empty())
            continue;
        const auto bad = [&](const char *what) {
            if (error) {
                std::ostringstream oss;
                oss << "CSV record " << lineno << ": " << what;
                *error = oss.str();
            }
            return false;
        };
        if (!splitCsvRecord(line, &fields))
            return bad("unterminated quote");
        if (fields.size() != ncols)
            return bad("wrong field count");
        SweepResult r;
        r.model = fields[0];
        r.cluster = fields[1];
        r.schedule = fields[2];
        int64_t n = 0;
        if (!parseInt64(fields[3], &r.batch))
            return bad("bad batch");
        if (!parseInt64(fields[4], &r.seqLen))
            return bad("bad seq_len");
        if (!parseInt64(fields[5], &n))
            return bad("bad num_layers");
        r.numLayers = static_cast<int>(n);
        if (!parseInt64(fields[6], &n))
            return bad("bad num_experts");
        r.numExperts = static_cast<int>(n);
        if (!parseInt64(fields[7], &n))
            return bad("bad r_max");
        r.rMax = static_cast<int>(n);
        if (!parseDouble(fields[8], &r.makespanMs))
            return bad("bad makespan_ms");
        for (size_t op = 0; op < kNumOps; ++op) {
            if (!parseDouble(fields[9 + op], &r.opTimeMs[op]))
                return bad("bad op time");
        }
        if (with_links) {
            for (size_t li = 0; li < kNumLinks; ++li) {
                if (!parseDouble(fields[9 + kNumOps + li],
                                 &r.linkBusyMs[li]))
                    return bad("bad link time");
            }
            r.hasLinkStats = true;
        }
        if (with_status) {
            const size_t base = 9 + kNumOps + (with_links ? kNumLinks : 0);
            if (!parseResultStatus(fields[base], &r.status))
                return bad("bad status");
            if (!parseInt64(fields[base + 1], &n))
                return bad("bad attempts");
            r.attempts = static_cast<int>(n);
            r.error = fields[base + 2];
        }
        out->push_back(std::move(r));
    }
    return true;
}

bool
writeResultsJson(const std::string &path,
                 const std::vector<SweepResult> &results,
                 bool include_link_stats)
{
    return writeTextFile(path, toJson(results, include_link_stats));
}

bool
writeResultsCsv(const std::string &path,
                const std::vector<SweepResult> &results,
                bool include_link_stats)
{
    return writeTextFile(path, toCsv(results, include_link_stats));
}

bool
readResults(const std::string &path, std::vector<SweepResult> *out,
            std::string *error)
{
    std::string text;
    if (!fileio::readTextFile(path, &text, error))
        return false;
    const bool csv =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    return csv ? parseCsv(text, out, error) : parseJson(text, out, error);
}

// ------------------------------------------------------------- diffing

std::vector<const DiffEntry *>
DiffReport::exceeding(double tolerance_frac) const
{
    std::vector<const DiffEntry *> out;
    for (const DiffEntry &e : matched) {
        // A non-finite makespan on either side is never comparable: a
        // NaN would otherwise slip through every tolerance (NaN > tol
        // is false) and an inf pair would "match" itself. Both mean
        // the producing run was broken, so they always fail the gate.
        if (!std::isfinite(e.baselineMs) || !std::isfinite(e.currentMs)) {
            out.push_back(&e);
            continue;
        }
        const double rel = e.relDelta();
        if (rel > tolerance_frac || rel < -tolerance_frac)
            out.push_back(&e);
    }
    return out;
}

bool
DiffReport::passes(double tolerance_frac) const
{
    return onlyBaseline.empty() && onlyCurrent.empty() &&
           duplicateKeys.empty() && exceeding(tolerance_frac).empty();
}

DiffReport
diffResults(const std::vector<SweepResult> &baseline,
            const std::vector<SweepResult> &current)
{
    DiffReport report;
    std::unordered_map<std::string, const SweepResult *> current_by_key;
    std::unordered_set<std::string> seen;
    for (const SweepResult &r : current) {
        if (!current_by_key.emplace(r.key(), &r).second)
            report.duplicateKeys.push_back(r.key());
    }
    std::unordered_set<std::string> matched_keys;
    for (const SweepResult &b : baseline) {
        const std::string key = b.key();
        if (!seen.insert(key).second) {
            report.duplicateKeys.push_back(key);
            continue;
        }
        auto it = current_by_key.find(key);
        if (it == current_by_key.end()) {
            report.onlyBaseline.push_back(key);
            continue;
        }
        matched_keys.insert(key);
        DiffEntry entry;
        entry.key = key;
        entry.baselineMs = b.makespanMs;
        entry.currentMs = it->second->makespanMs;
        report.matched.push_back(std::move(entry));
    }
    for (const SweepResult &c : current) {
        if (matched_keys.count(c.key()) == 0 &&
            current_by_key.at(c.key()) == &c)
            report.onlyCurrent.push_back(c.key());
    }
    return report;
}

std::string
formatDiff(const DiffReport &report, double tolerance_frac)
{
    std::ostringstream oss;
    const auto over = report.exceeding(tolerance_frac);
    for (const DiffEntry *e : over) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%+.4f ms (%+.3f%%)", e->deltaMs(),
                      e->relDelta() * 100.0);
        oss << "  DRIFT " << e->key << ": " << fmtDouble(e->baselineMs)
            << " -> " << fmtDouble(e->currentMs) << "  " << buf << '\n';
    }
    for (const std::string &key : report.onlyBaseline)
        oss << "  MISSING (in baseline only): " << key << '\n';
    for (const std::string &key : report.onlyCurrent)
        oss << "  EXTRA (in current only): " << key << '\n';
    for (const std::string &key : report.duplicateKeys)
        oss << "  DUPLICATE key: " << key << '\n';

    char tol[32];
    std::snprintf(tol, sizeof tol, "%.4g%%", tolerance_frac * 100.0);
    if (report.passes(tolerance_frac)) {
        oss << "PASS: " << report.matched.size()
            << " scenarios within tolerance " << tol << '\n';
    } else {
        oss << "FAIL: " << over.size() << " of " << report.matched.size()
            << " scenarios drifted beyond " << tol << "; "
            << report.onlyBaseline.size() << " missing, "
            << report.onlyCurrent.size() << " extra, "
            << report.duplicateKeys.size() << " duplicate\n";
    }
    return oss.str();
}

// ------------------------------------------------------------- merging

bool
mergeResults(const std::vector<std::vector<SweepResult>> &shards,
             std::vector<SweepResult> *out, std::string *error)
{
    out->clear();
    size_t total = 0;
    for (const auto &shard : shards)
        total += shard.size();
    out->reserve(total);
    std::unordered_set<std::string> seen;
    seen.reserve(total);
    for (const auto &shard : shards) {
        for (const SweepResult &r : shard) {
            if (!seen.insert(r.key()).second) {
                if (error)
                    *error = "duplicate scenario across shards: " + r.key();
                out->clear();
                return false;
            }
            out->push_back(r);
        }
    }
    return true;
}

} // namespace fsmoe::runtime
