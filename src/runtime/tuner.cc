#include "runtime/tuner.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "base/audit.h"
#include "base/fileio.h"
#include "base/json.h"
#include "base/logging.h"
#include "core/schedules/param_space.h"
#include "core/schedules/schedule_registry.h"

namespace fsmoe::runtime {

namespace {

/** Tie-stable "is a better (makespan, spec) pair" ordering. */
bool
betterProbe(double ms_a, const std::string &spec_a, double ms_b,
            const std::string &spec_b)
{
    if (ms_a != ms_b)
        return ms_a < ms_b;
    return spec_a < spec_b;
}

bool
candidateLess(const TuneCandidate &a, const TuneCandidate &b)
{
    if (a.makespanMs != b.makespanMs)
        return a.makespanMs < b.makespanMs;
    if (a.commBusyMs != b.commBusyMs)
        return a.commBusyMs < b.commBusyMs;
    if (a.peakMemMB != b.peakMemMB)
        return a.peakMemMB < b.peakMemMB;
    return a.spec < b.spec;
}

/** a dominates b: no worse everywhere, strictly better somewhere. */
bool
dominates(const TuneCandidate &a, const TuneCandidate &b)
{
    if (a.makespanMs > b.makespanMs || a.commBusyMs > b.commBusyMs ||
        a.peakMemMB > b.peakMemMB)
        return false;
    return a.makespanMs < b.makespanMs || a.commBusyMs < b.commBusyMs ||
           a.peakMemMB < b.peakMemMB;
}

/** One answer as a JSON object at @p indent spaces (no trailing \n). */
std::string
entryJson(const TuneAnswer &a, int indent)
{
    const std::string pad(indent, ' ');
    const std::string in(indent + 2, ' ');
    std::ostringstream oss;
    oss << pad << "{\n";
    oss << in << "\"query\": \"" << json::escape(a.queryKey) << "\",\n";
    oss << in << "\"best\": \"" << json::escape(a.best) << "\",\n";
    oss << in << "\"bestMakespanMs\": " << json::fmtDouble(a.bestMakespanMs)
        << ",\n";
    oss << in << "\"evaluated\": " << a.evaluated << ",\n";
    oss << in << "\"frontier\": [";
    for (size_t i = 0; i < a.frontier.size(); ++i) {
        const TuneCandidate &c = a.frontier[i];
        oss << (i == 0 ? "\n" : ",\n") << in << "  {\"spec\": \""
            << json::escape(c.spec) << "\", \"makespanMs\": "
            << json::fmtDouble(c.makespanMs) << ", \"commBusyMs\": "
            << json::fmtDouble(c.commBusyMs) << ", \"peakMemMB\": "
            << json::fmtDouble(c.peakMemMB) << "}";
    }
    if (!a.frontier.empty())
        oss << "\n" << in;
    oss << "]\n" << pad << "}";
    return oss.str();
}

#if FSMOE_AUDIT_ENABLED
/**
 * Payload fingerprint for the advisor-cache collision audit: the
 * canonical serialized entry (which deliberately excludes the
 * transient fromCache flag). A fresh search and a loaded cache file
 * must agree byte-for-byte on any key they share.
 */
uint64_t
fingerprintAnswer(const TuneAnswer &a)
{
    return audit::Fingerprint().mix(entryJson(a, 0)).digest();
}
#endif

/** Inverse of entryJson; false (with *error) on a malformed entry. */
bool
parseEntry(const json::Value &v, TuneAnswer *out, std::string *error)
{
    if (v.kind != json::Value::Kind::Object) {
        *error = "cache entry is not an object";
        return false;
    }
    double evaluated = 0.0;
    if (!json::asString(v.find("query"), &out->queryKey) ||
        !json::asString(v.find("best"), &out->best) ||
        !json::asNumber(v.find("bestMakespanMs"), &out->bestMakespanMs) ||
        !json::asNumber(v.find("evaluated"), &evaluated)) {
        *error = "cache entry is missing query/best/bestMakespanMs/"
                 "evaluated";
        return false;
    }
    out->evaluated = static_cast<size_t>(evaluated);
    const json::Value *frontier = v.find("frontier");
    if (frontier == nullptr ||
        frontier->kind != json::Value::Kind::Array) {
        *error = "cache entry is missing its frontier array";
        return false;
    }
    for (const json::Value &fv : frontier->array) {
        TuneCandidate c;
        if (!json::asString(fv.find("spec"), &c.spec) ||
            !json::asNumber(fv.find("makespanMs"), &c.makespanMs) ||
            !json::asNumber(fv.find("commBusyMs"), &c.commBusyMs) ||
            !json::asNumber(fv.find("peakMemMB"), &c.peakMemMB)) {
            *error = "malformed frontier entry";
            return false;
        }
        out->frontier.push_back(std::move(c));
    }
    return true;
}

} // namespace

Scenario
TuneQuery::scenario() const
{
    Scenario s;
    s.model = model;
    s.cluster = cluster;
    s.batch = batch;
    s.seqLen = seqLen;
    s.numLayers = numLayers;
    s.numExperts = numExperts;
    s.rMax = rMax;
    return s;
}

std::vector<TuneCandidate>
paretoFrontier(std::vector<TuneCandidate> candidates)
{
    std::vector<TuneCandidate> uniq;
    std::unordered_set<std::string> seen;
    for (TuneCandidate &c : candidates)
        if (seen.insert(c.spec).second)
            uniq.push_back(std::move(c));

    std::vector<TuneCandidate> frontier;
    for (size_t i = 0; i < uniq.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < uniq.size() && !dominated; ++j)
            dominated = j != i && dominates(uniq[j], uniq[i]);
        if (!dominated)
            frontier.push_back(uniq[i]);
    }
    std::sort(frontier.begin(), frontier.end(), candidateLess);
    return frontier;
}

double
peakConcurrentCommMB(const sim::TaskGraph &graph, const sim::SimResult &sim,
                     const core::PerfModelSet &models)
{
    // (time, phase, id, signed bytes); phase 0 = finish, 1 = start, so
    // sorting processes finishes first at equal timestamps and
    // back-to-back chunks never double-count.
    struct Event
    {
        double time;
        int phase;
        sim::TaskId id;
        double bytes;
    };
    std::vector<Event> events;
    events.reserve(sim.trace.size());
    for (const sim::TaskTrace &tr : sim.trace) {
        const sim::Task &task = graph.task(tr.id);
        if (task.link == sim::Link::Compute)
            continue;
        const core::LinearModel *m = nullptr;
        switch (task.op) {
          case sim::OpType::AlltoAll: m = &models.alltoall; break;
          case sim::OpType::AllGather: m = &models.allgather; break;
          case sim::OpType::ReduceScatter:
            m = &models.reducescatter;
            break;
          case sim::OpType::GradAllReduce: m = &models.allreduce; break;
          default: break; // layout/compute ops carry no comm payload
        }
        if (m == nullptr)
            continue;
        const double bytes = std::max(0.0, m->inverse(task.duration));
        if (bytes <= 0.0)
            continue;
        events.push_back({tr.start, 1, tr.id, bytes});
        events.push_back({tr.finish, 0, tr.id, -bytes});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  if (a.phase != b.phase)
                      return a.phase < b.phase;
                  return a.id < b.id;
              });
    double inflight = 0.0;
    double peak = 0.0;
    for (const Event &e : events) {
        inflight += e.bytes;
        peak = std::max(peak, inflight);
    }
    return peak / (1024.0 * 1024.0);
}

namespace {

SweepOptions
engineOptions(const TuneOptions &options)
{
    SweepOptions sweep;
    sweep.numThreads = options.numThreads;
    return sweep;
}

} // namespace

Tuner::Tuner(TuneOptions options)
    : options_(options), engine_(engineOptions(options_))
{
}

std::string
Tuner::queryKey(const TuneQuery &query) const
{
    // The scenario cost key names the configuration; the search
    // settings are appended so a tuner with a different budget never
    // serves (or pollutes) another configuration's answer.
    std::ostringstream oss;
    oss << query.scenario().costKey() << "|grid="
        << options_.maxGridPerAxis << ',' << options_.maxGridSpecs
        << "|top=" << options_.frontierCandidates << "|de="
        << options_.de.populationSize << 'x'
        << options_.de.maxGenerations << ",w="
        << json::fmtDouble(options_.de.weight) << ",cr="
        << json::fmtDouble(options_.de.crossover) << ",s="
        << options_.de.seed << ",tol="
        << json::fmtDouble(options_.de.tolerance);
    return oss.str();
}

TuneAnswer
Tuner::tune(const TuneQuery &query)
{
    const std::string key = queryKey(query);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        TuneAnswer answer = it->second;
        answer.fromCache = true;
        return answer;
    }
    TuneAnswer answer = search(query);
    answer.queryKey = key;
    FSMOE_AUDIT(
        audit::checkCacheKey("tuner.answer", key, fingerprintAnswer(answer)));
    cache_.emplace(key, answer);
    return answer;
}

TuneAnswer
Tuner::search(const TuneQuery &query)
{
    const core::ScheduleRegistry &registry =
        core::ScheduleRegistry::instance();
    const Scenario base = query.scenario();

    // Every distinct spec this search simulates (grid candidates and
    // DE probes alike), kept sorted so `evaluated` and candidate
    // handling are independent of discovery order.
    std::set<std::string> probedSpecs;

    const auto canonical = [&registry](const std::string &spec) {
        std::string canon, error;
        if (!registry.canonicalize(spec, &canon, &error))
            FSMOE_PANIC("tuner produced an invalid spec '", spec,
                        "': ", error);
        return canon;
    };
    const auto probe = [&](const std::string &spec) {
        Scenario s = base;
        s.schedule = spec;
        probedSpecs.insert(spec);
        return engine_.run({s})[0].makespanMs;
    };

    // --- Candidate generation: per schedule, bare name + its derived
    // search space (small grids exhaustively, continuous spaces via
    // differential evolution seeded deterministically).
    std::vector<std::pair<std::string, std::string>> candidates;
    std::unordered_set<std::string> seen;
    const auto addCandidate = [&](const std::string &schedule,
                                  const std::string &spec) {
        if (seen.insert(spec).second)
            candidates.emplace_back(schedule, spec);
    };

    for (const core::ScheduleInfo &info : registry.list()) {
        addCandidate(info.name, info.name);
        core::ParamSpace space = core::deriveParamSpace(
            info, query.rMax, options_.maxGridPerAxis);
        if (space.axes.empty())
            continue;
        if (!space.continuous() &&
            space.gridSize() <= options_.maxGridSpecs) {
            for (const std::string &spec :
                 core::enumerateGridSpecs(space, options_.maxGridSpecs))
                addCandidate(info.name, canonical(spec));
            continue;
        }
        // DE over the box; probes run one scenario at a time (so the
        // sequence is identical on every thread count) and revisited
        // specs hit the engine's SimResult cache.
        std::vector<double> lo, hi;
        for (const core::ParamAxis &axis : space.axes) {
            lo.push_back(axis.lo);
            hi.push_back(axis.hi);
        }
        const auto objective = [&](const std::vector<double> &x) {
            return probe(canonical(core::specFromPoint(space, x)));
        };
        const solver::DeResult de =
            solver::differentialEvolution(objective, lo, hi, options_.de);
        addCandidate(info.name, canonical(core::specFromPoint(space, de.x)));
    }

    // --- Probe pass: every candidate, cached, in parallel.
    std::vector<Scenario> scenarios;
    scenarios.reserve(candidates.size());
    for (const auto &c : candidates) {
        Scenario s = base;
        s.schedule = c.second;
        scenarios.push_back(std::move(s));
        probedSpecs.insert(c.second);
    }
    const std::vector<ScenarioResult> probes = engine_.run(scenarios);

    // --- Select the metric-pass set: each schedule's best candidate
    // plus the global top-N by makespan.
    std::unordered_map<std::string, size_t> bestOfSchedule;
    for (size_t i = 0; i < candidates.size(); ++i) {
        auto it = bestOfSchedule.find(candidates[i].first);
        if (it == bestOfSchedule.end() ||
            betterProbe(probes[i].makespanMs, candidates[i].second,
                        probes[it->second].makespanMs,
                        candidates[it->second].second))
            bestOfSchedule[candidates[i].first] = i;
    }
    std::vector<size_t> order(candidates.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return betterProbe(probes[a].makespanMs, candidates[a].second,
                           probes[b].makespanMs, candidates[b].second);
    });
    std::set<std::string> metricSpecs;
    for (const auto &kv : bestOfSchedule)
        metricSpecs.insert(candidates[kv.second].second);
    for (size_t i = 0;
         i < order.size() && i < options_.frontierCandidates; ++i)
        metricSpecs.insert(candidates[order[i]].second);

    // --- Metric pass: re-run the short list with graphs retained and
    // compute the comm/memory objectives from each trace.
    std::vector<Scenario> metricScenarios;
    for (const std::string &spec : metricSpecs) {
        Scenario s = base;
        s.schedule = spec;
        metricScenarios.push_back(std::move(s));
    }
    const std::vector<ScenarioResult> metrics =
        engine_.run(metricScenarios, /*keep_graphs=*/true);
    const core::ModelCost cost =
        ScenarioRegistry::instance().makeCost(base);

    std::vector<TuneCandidate> evaluated;
    evaluated.reserve(metrics.size());
    for (const ScenarioResult &r : metrics) {
        TuneCandidate c;
        c.spec = r.scenario.schedule;
        c.makespanMs = r.makespanMs;
        c.commBusyMs = r.sim.busyOf(sim::Link::InterNode) +
                       r.sim.busyOf(sim::Link::IntraNode);
        c.peakMemMB = peakConcurrentCommMB(r.graph, r.sim, cost.models);
        evaluated.push_back(std::move(c));
    }

    TuneAnswer answer;
    answer.frontier = paretoFrontier(std::move(evaluated));
    FSMOE_ASSERT(!answer.frontier.empty(),
                 "tuner search produced no candidates");
    // The frontier is sorted by makespan first, and the global
    // minimum-makespan candidate is always in the metric set, so the
    // frontier head *is* the answer (ties resolved toward lower comm,
    // then memory, then spec — stable on every run).
    answer.best = answer.frontier.front().spec;
    answer.bestMakespanMs = answer.frontier.front().makespanMs;
    answer.evaluated = probedSpecs.size();
    return answer;
}

bool
Tuner::loadCache(const std::string &path, std::string *error)
{
    std::string text;
    if (!fileio::readTextFile(path, &text, error))
        return false;
    json::Value root;
    std::string parse_error;
    if (!json::parse(text, &root, &parse_error)) {
        if (error)
            *error = "'" + path + "': " + parse_error;
        return false;
    }
    std::string schema;
    int64_t version = 0;
    if (!json::asString(root.find("schema"), &schema) ||
        schema != "fsmoe-advisor-cache" ||
        !json::asInt(root.find("version"), &version) || version != 1) {
        if (error)
            *error = "'" + path + "' is not a v1 fsmoe-advisor-cache";
        return false;
    }
    const json::Value *entries = root.find("entries");
    if (entries == nullptr ||
        entries->kind != json::Value::Kind::Array) {
        if (error)
            *error = "'" + path + "' has no entries array";
        return false;
    }
    std::vector<TuneAnswer> parsed;
    for (const json::Value &v : entries->array) {
        TuneAnswer a;
        std::string entry_error;
        if (!parseEntry(v, &a, &entry_error)) {
            if (error)
                *error = "'" + path + "': " + entry_error;
            return false;
        }
        parsed.push_back(std::move(a));
    }
    for (TuneAnswer &a : parsed) {
        // A loaded entry must agree with any answer this process
        // already computed (or later computes) for the same key.
        FSMOE_AUDIT(audit::checkCacheKey("tuner.answer", a.queryKey,
                                         fingerprintAnswer(a)));
        cache_.emplace(a.queryKey, std::move(a)); // in-memory wins
    }
    return true;
}

bool
Tuner::saveCache(const std::string &path, std::string *error) const
{
    std::ostringstream oss;
    oss << "{\n  \"schema\": \"fsmoe-advisor-cache\",\n"
        << "  \"version\": 1,\n  \"entries\": [";
    bool first = true;
    for (const auto &kv : cache_) {
        oss << (first ? "\n" : ",\n") << entryJson(kv.second, 4);
        first = false;
    }
    if (!cache_.empty())
        oss << "\n  ";
    oss << "]\n}\n";
    return fileio::atomicWriteFile(path, oss.str(), error);
}

std::string
Tuner::answerJson(const TuneAnswer &answer)
{
    std::ostringstream oss;
    oss << "{\n  \"schema\": \"fsmoe-tune-answer\",\n"
        << "  \"version\": 1,\n";
    // Splice the shared entry body in: drop its opening "{\n".
    const std::string body = entryJson(answer, 0);
    oss << body.substr(2) << "\n";
    return oss.str();
}

} // namespace fsmoe::runtime
