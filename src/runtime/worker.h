/**
 * @file
 * Fault-tolerant sweep execution: retries, quarantine, and
 * crash-isolated workers.
 *
 * runRobust() is the resilient counterpart of SweepEngine::run(): it
 * evaluates a scenario grid to completion even when individual
 * scenarios fail, crash their worker, or hang. Failed scenarios are
 * retried with a bounded deterministic backoff; a scenario that fails
 * maxAttempts times is *quarantined* — recorded with
 * ResultStatus::Quarantined and the last error instead of aborting
 * the sweep. Healthy scenarios produce bytes identical to the plain
 * engine's (same pure evaluation path), which is what lets a
 * fault-injected sweep's surviving results merge byte-identical to a
 * clean run.
 *
 * Two execution modes:
 *
 *   in-process (default) — scenarios run on a ThreadPool like the
 *     plain engine, each wrapped in the retry loop. A crashing
 *     scenario (real or injected) takes the whole process down; with
 *     a journal that is exactly the mid-sweep-kill case --resume
 *     recovers from. Watchdog timeouts are not enforceable here.
 *
 *   isolate (--isolate) — the supervisor stays single-threaded (fork
 *     from a threaded process is a deadlock lottery) and forks one
 *     child per attempt. The child evaluates its scenario and reports
 *     "ok <json>" or "err <msg>" over a pipe; the supervisor enforces
 *     a per-scenario watchdog timeout (SIGKILL on expiry), classifies
 *     crashes/timeouts/errors, and applies the same
 *     retry-then-quarantine policy. A crashing or hung scenario loses
 *     only its own in-flight work.
 *
 * Determinism: evaluation is pure, retries change no result bytes
 * (only the non-serialised attempts count for Ok records), backoff
 * delays are a fixed function of the attempt number, and results are
 * returned in grid order. robust.* counters land in the stats
 * registry (docs/OBSERVABILITY.md).
 */
#ifndef FSMOE_RUNTIME_WORKER_H
#define FSMOE_RUNTIME_WORKER_H

#include <string>
#include <vector>

#include "runtime/journal.h"
#include "runtime/result_store.h"
#include "runtime/scenario.h"

namespace fsmoe::runtime {

/** Policy knobs for runRobust(). */
struct RobustOptions
{
    /// Worker threads for in-process mode; 0 picks the hardware
    /// concurrency. Ignored under isolate (the supervisor is serial).
    int numThreads = 0;
    /// Fork one subprocess per scenario attempt.
    bool isolate = false;
    /// Give up on a scenario after this many failed attempts.
    int maxAttempts = 3;
    /// Watchdog: kill an isolated worker after this long (isolate
    /// mode only; in-process evaluation cannot be preempted).
    int timeoutMs = 30000;
    /// Deterministic exponential backoff between attempts:
    /// min(backoffBaseMs << (attempt-1), backoffMaxMs).
    int backoffBaseMs = 10;
    int backoffMaxMs = 1000;
    /// Testing hook for the graceful-stop path: after this many
    /// scenarios finish, act as if SIGTERM arrived (see
    /// base/interrupt.h). 0 disables. Unlike a real signal this is
    /// scheduler-independent, so CI can exercise Ctrl-C semantics
    /// deterministically.
    int stopAfterResults = 0;
};

/** The delay before retrying after @p attempt (1-based) failures. */
int retryBackoffMs(const RobustOptions &opts, int attempt);

/**
 * Evaluate @p s in this process — the same pure cost → schedule →
 * simulate path as SweepEngine, so the record's bytes match the
 * engine's exactly. Throws std::runtime_error on failure (including
 * the injected `eval` fault site, which keys on (scenario key,
 * @p attempt) so a retry can succeed).
 */
SweepResult evaluateScenario(const Scenario &s, int attempt);

/**
 * Identity-only record for a scenario that never produced a result —
 * what quarantine (here and in service/sweep_server) persists so the
 * sweep completes with the failure explicit instead of lost.
 */
SweepResult failureRecord(const Scenario &s, ResultStatus status,
                          int attempts, const std::string &error);

/**
 * Evaluate @p grid to completion under @p opts, honouring
 * fault-injection sites (runtime/fault.h). Results come back in grid
 * order, one per scenario: Ok records carry the simulation outcome,
 * Quarantined records carry the attempt count and last error.
 *
 * With @p journal (open, same grid) every finished scenario is
 * appended as it completes, and entries recovered by the journal are
 * honoured: Ok entries are not re-simulated; Failed/Quarantined
 * entries are re-attempted fresh.
 *
 * Graceful stop: when base/interrupt's stop flag is raised (SIGINT/
 * SIGTERM via installStopHandlers, or opts.stopAfterResults) no new
 * scenario is started; scenarios already finished keep their journal
 * records (the append in flight completes — the handler only sets a
 * flag), and unstarted ones come back as default records with an
 * empty schedule. Callers should treat the sweep as partial when
 * interrupt::stopRequested() and resume it from the journal.
 */
std::vector<SweepResult> runRobust(const std::vector<Scenario> &grid,
                                   const RobustOptions &opts,
                                   Journal *journal = nullptr);

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_WORKER_H
