#include "runtime/fault.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "base/logging.h"
#include "base/stats.h"

namespace fsmoe::runtime::fault {

namespace {

// Configuration state. `g_enabled` is the lock-free fast-path gate:
// configure() publishes the config under the mutex *before* setting it
// (release), and queries load it (acquire) before touching g_config.
std::mutex g_mutex;
FaultConfig g_config;      // guarded by g_mutex
std::atomic<bool> g_enabled{false};
bool g_envChecked = false; // guarded by g_mutex
std::atomic<uint64_t> g_appends{0};

// FNV-1a over the decision inputs, mirroring base/audit.h's
// fingerprint scheme. Splitmix-style finalizer on top so low bits are
// well mixed before the [0,1) projection.
uint64_t
fnv1a(uint64_t h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

double
decisionUniform(uint64_t seed, Site site, const std::string &key,
                int attempt)
{
    uint64_t h = 14695981039346656037ULL;
    h = fnv1a(h, &seed, sizeof seed);
    const auto s = static_cast<uint64_t>(site);
    h = fnv1a(h, &s, sizeof s);
    h = fnv1a(h, key.data(), key.size());
    const auto a = static_cast<uint64_t>(attempt);
    h = fnv1a(h, &a, sizeof a);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    // Top 53 bits -> uniform double in [0, 1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
parseRate(const std::string &value, double *out)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0)
        return false;
    *out = v;
    return true;
}

} // namespace

const char *
siteName(Site site)
{
    switch (site) {
    case Site::EvalError:
        return "eval";
    case Site::WorkerCrash:
        return "crash";
    case Site::WorkerTimeout:
        return "timeout";
    case Site::TornJournalWrite:
        return "torn";
    case Site::TransportDrop:
        return "drop";
    case Site::TransportDelay:
        return "delay";
    case Site::TransportDisconnect:
        return "disconnect";
    case Site::WorkerKill:
        return "worker-kill";
    default:
        return "?";
    }
}

bool
FaultConfig::anyEnabled() const
{
    if (killAfterAppends > 0)
        return true;
    for (double r : rate)
        if (r > 0.0)
            return true;
    return false;
}

bool
parseSpec(const std::string &spec, FaultConfig *out, std::string *error)
{
    FaultConfig cfg;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos) {
            if (error != nullptr)
                *error = "fault spec item '" + item + "' has no '='";
            return false;
        }
        const std::string k = item.substr(0, eq);
        const std::string v = item.substr(eq + 1);
        if (k == "seed" || k == "kill-after") {
            char *end = nullptr;
            const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || v.empty()) {
                if (error != nullptr)
                    *error = "fault spec '" + k + "' wants an integer, got '" +
                             v + "'";
                return false;
            }
            (k == "seed" ? cfg.seed : cfg.killAfterAppends) = n;
            continue;
        }
        bool matched = false;
        for (int i = 0; i < static_cast<int>(Site::NumSites); ++i) {
            if (k == siteName(static_cast<Site>(i))) {
                if (!parseRate(v, &cfg.rate[i])) {
                    if (error != nullptr)
                        *error = "fault rate '" + k + "=" + v +
                                 "' is not in [0, 1]";
                    return false;
                }
                matched = true;
                break;
            }
        }
        if (!matched) {
            if (error != nullptr)
                *error = "unknown fault spec key '" + k +
                         "' (want seed, eval, crash, timeout, torn, "
                         "drop, delay, disconnect, worker-kill, "
                         "kill-after)";
            return false;
        }
    }
    *out = cfg;
    return true;
}

void
configure(const FaultConfig &config)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_config = config;
    g_appends.store(0, std::memory_order_relaxed);
    g_envChecked = true; // explicit config wins over the env
    g_enabled.store(config.anyEnabled(), std::memory_order_release);
}

bool
configureFromEnv()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_envChecked) {
        g_envChecked = true;
        const char *spec = std::getenv("FSMOE_FAULT");
        if (spec != nullptr && spec[0] != '\0') {
            std::string error;
            FaultConfig cfg;
            if (!parseSpec(spec, &cfg, &error))
                FSMOE_FATAL("bad FSMOE_FAULT: ", error);
            g_config = cfg;
            g_appends.store(0, std::memory_order_relaxed);
            g_enabled.store(cfg.anyEnabled(), std::memory_order_release);
        }
    }
    return g_enabled.load(std::memory_order_acquire);
}

void
reset()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_config = FaultConfig{};
    g_appends.store(0, std::memory_order_relaxed);
    g_envChecked = true; // do not resurrect the env config
    g_enabled.store(false, std::memory_order_release);
}

FaultConfig
config()
{
    if (!g_enabled.load(std::memory_order_acquire))
        return FaultConfig{};
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_config;
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_acquire);
}

bool
shouldInject(Site site, const std::string &key, int attempt)
{
    if (!g_enabled.load(std::memory_order_acquire))
        return false;
    uint64_t seed;
    double rate;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        seed = g_config.seed;
        rate = g_config.rate[static_cast<int>(site)];
    }
    if (rate <= 0.0)
        return false;
    if (decisionUniform(seed, site, key, attempt) >= rate)
        return false;
    stats::counter(std::string("robust.fault.injected.") + siteName(site))
        .inc();
    return true;
}

bool
shouldKillAfterAppend()
{
    if (!g_enabled.load(std::memory_order_acquire))
        return false;
    uint64_t killAfter;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        killAfter = g_config.killAfterAppends;
    }
    if (killAfter == 0)
        return false;
    const uint64_t n = g_appends.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n != killAfter)
        return false;
    stats::counter("robust.fault.injected.killAfter").inc();
    return true;
}

} // namespace fsmoe::runtime::fault
