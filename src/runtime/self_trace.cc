#include "runtime/self_trace.h"

#include <cstdio>
#include <sstream>

#include "base/fileio.h"
#include "base/logging.h"

namespace fsmoe::runtime {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

SelfTrace &
SelfTrace::instance()
{
    static SelfTrace trace;
    return trace;
}

void
SelfTrace::enable()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_relaxed);
}

void
SelfTrace::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

double
SelfTrace::nowUs() const
{
    if (epoch_ == std::chrono::steady_clock::time_point{})
        return 0.0;
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
SelfTrace::record(std::string name, const char *cat, double ts_us,
                  double dur_us)
{
    // Threads are numbered in first-record order, for the process
    // lifetime — one timeline row per OS thread in the exported trace.
    static thread_local int t_tid = -1;
    std::lock_guard<std::mutex> lock(mu_);
    if (t_tid < 0)
        t_tid = next_tid_++;
    events_.push_back({std::move(name), cat, t_tid, ts_us, dur_us});
}

size_t
SelfTrace::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::string
SelfTrace::chromeTraceJson(const std::string &process_name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(3);
    oss << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    oss << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
           "\"args\":{\"name\":\""
        << jsonEscape(process_name) << "\"}}";
    for (int tid = 0; tid < next_tid_; ++tid) {
        oss << ",{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker-"
            << tid << "\"}}";
    }
    for (const Event &ev : events_) {
        oss << ",{\"ph\":\"X\",\"pid\":0,\"tid\":" << ev.tid
            << ",\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
            << ev.cat << "\",\"ts\":" << ev.tsUs << ",\"dur\":" << ev.durUs
            << "}";
    }
    oss << "]}";
    return oss.str();
}

bool
SelfTrace::write(const std::string &path,
                 const std::string &process_name) const
{
    const std::string json = chromeTraceJson(process_name);
    std::string error;
    if (!fileio::atomicWriteFile(path, json, &error)) {
        FSMOE_WARN("self-trace: ", error);
        return false;
    }
    return true;
}

SelfSpan::SelfSpan(std::string name, const char *cat)
    : name_(std::move(name)), cat_(cat)
{
    SelfTrace &trace = SelfTrace::instance();
    if (trace.enabled())
        start_us_ = trace.nowUs();
}

SelfSpan::~SelfSpan()
{
    if (start_us_ < 0.0)
        return;
    SelfTrace &trace = SelfTrace::instance();
    if (!trace.enabled())
        return; // disabled mid-span; drop it
    trace.record(std::move(name_), cat_, start_us_,
                 trace.nowUs() - start_us_);
}

} // namespace fsmoe::runtime
