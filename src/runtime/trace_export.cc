#include "runtime/trace_export.h"

#include <cstdio>
#include <sstream>

#include "base/fileio.h"
#include "base/logging.h"
#include "core/schedules/schedule.h"
#include "sim/trace.h"

namespace fsmoe::runtime {

namespace {

/** Minimal JSON string escaping (labels are plain ASCII in practice). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
chromeTraceJson(const sim::TaskGraph &graph, const sim::SimResult &result,
                const std::string &process_name)
{
    const std::vector<sim::TraceEvent> events =
        sim::traceEvents(graph, result);

    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(3); // microsecond timestamps to nanosecond precision
    oss << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

    oss << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
           "\"args\":{\"name\":\""
        << jsonEscape(process_name) << "\"}}";
    for (int s = 0; s < graph.numStreams(); ++s) {
        const char *label = core::detail::streamName(s);
        std::string name = label != nullptr
                               ? std::string(label)
                               : "stream-" + std::to_string(s);
        oss << ",{\"ph\":\"M\",\"pid\":0,\"tid\":" << s
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name
            << "\"}}";
    }

    for (const sim::TraceEvent &ev : events) {
        oss << ",{\"ph\":\"X\",\"pid\":0,\"tid\":" << ev.stream
            << ",\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
            << sim::opTypeName(ev.op) << "\",\"ts\":" << ev.startMs * 1000.0
            << ",\"dur\":" << ev.durationMs * 1000.0
            << ",\"args\":{\"task\":" << ev.id << ",\"link\":\""
            << sim::linkName(ev.link) << "\"}}";
    }
    oss << "]}";
    return oss.str();
}

bool
writeChromeTrace(const std::string &path, const sim::TaskGraph &graph,
                 const sim::SimResult &result,
                 const std::string &process_name)
{
    const std::string json = chromeTraceJson(graph, result, process_name);
    std::string error;
    if (!fileio::atomicWriteFile(path, json, &error)) {
        FSMOE_WARN("trace export: ", error);
        return false;
    }
    return true;
}

} // namespace fsmoe::runtime
