/**
 * @file
 * Persistent sweep results: a durable, diffable record of what a
 * scenario sweep measured, so evaluation artifacts survive the process
 * and regressions stay visible across commits and machines.
 *
 * A SweepResult is the flat, serialisable projection of one
 * ScenarioResult: the scenario's identity fields, its makespan, and
 * the per-op-class busy-time breakdown. Results round-trip through
 * JSON and CSV **bit-exactly** — doubles are printed with 17
 * significant digits, which IEEE-754 binary64 guarantees to re-parse
 * to the identical bit pattern — so a re-read file can be compared
 * with memcmp-level strictness and a merged set of shard files is
 * byte-identical to the unsharded file.
 *
 * Thread-safety: everything here is either a free function of its
 * arguments or a plain value type; all functions are safe to call
 * concurrently on distinct data. Determinism: writers emit no
 * timestamps, hostnames, or map-ordered content — serialising the
 * same results twice yields the same bytes.
 */
#ifndef FSMOE_RUNTIME_RESULT_STORE_H
#define FSMOE_RUNTIME_RESULT_STORE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/sweep_engine.h"
#include "sim/task_graph.h"

namespace fsmoe::runtime {

/**
 * Terminal state of one scenario under the fault-tolerant runner
 * (runtime/worker). Plain SweepEngine runs only ever produce Ok;
 * non-Ok records exist so a sweep that hit a poisoned scenario
 * *completes* — with the failure recorded explicitly — instead of
 * aborting and losing every healthy result.
 */
enum class ResultStatus
{
    Ok = 0,          ///< Simulated successfully.
    Failed = 1,      ///< Last attempt failed; retry budget not exhausted
                     ///< (only seen in journals mid-run, never final).
    Quarantined = 2, ///< Failed maxAttempts times; gave up.
};

/** Stable wire name ("ok", "failed", "quarantined"). */
const char *resultStatusName(ResultStatus status);

/** Inverse of resultStatusName; false on unknown names. */
bool parseResultStatus(const std::string &name, ResultStatus *out);

/** One persisted scenario outcome (one JSON object / CSV row). */
struct SweepResult
{
    // Scenario identity — mirrors runtime::Scenario; the schedule is
    // its canonical spec string (name plus any explicit parameters,
    // e.g. "Tutel?degree=4"), so parameterized variants persist as
    // distinct, diffable rows.
    std::string model;
    std::string cluster;
    std::string schedule;
    int64_t batch = 1;
    int64_t seqLen = 1024;
    int numLayers = 0;
    int numExperts = 0;
    int rMax = 16;

    // Outcome.
    double makespanMs = 0.0;
    /// Busy milliseconds per op class, indexed by sim::OpType.
    std::array<double, static_cast<size_t>(sim::OpType::NumOpTypes)>
        opTimeMs{};
    /// Busy milliseconds per physical link, indexed by sim::Link —
    /// per-link utilization is linkBusyMs / makespanMs. Serialised
    /// only when the writer is asked for link stats (see toJson /
    /// toCsv), so default output stays byte-identical to pre-link-stat
    /// files.
    std::array<double, static_cast<size_t>(sim::Link::NumLinks)>
        linkBusyMs{};
    /// True when linkBusyMs carries data (set by fromScenarioResult
    /// and by readers of files that contain the link columns).
    bool hasLinkStats = false;

    // Fault-tolerance outcome (runtime/worker). Serialised only for
    // non-Ok records — an all-Ok result set emits byte-identical
    // output to a pre-status writer, which keeps every blessed
    // baseline valid. For non-Ok records makespanMs/opTimeMs are zero.
    ResultStatus status = ResultStatus::Ok;
    /// Evaluation attempts consumed (0 for plain-engine records).
    int attempts = 0;
    /// Last failure message for non-Ok records ("" when Ok).
    std::string error;

    /**
     * Stable scenario key used to join result sets in diffResults():
     * identical to Scenario::label() for the scenario that produced
     * this record (e.g. "mixtral-7b/testbedA/FSMoE/b1/L1024").
     */
    std::string key() const;

    /**
     * Reconstruct the Scenario this record describes (identity fields
     * only) — what a resumed sweep re-simulates for non-Ok records.
     */
    Scenario toScenario() const;

    /** Flatten an engine result into its persistent record. */
    static SweepResult fromScenarioResult(const ScenarioResult &r);
};

/** Convert a whole sweep, preserving order. */
std::vector<SweepResult>
toSweepResults(const std::vector<ScenarioResult> &results);

// ---------------------------------------------------------------------
// Serialisation. toJson/toCsv are pure and deterministic; the write*
// helpers wrap them with file IO and warn-and-return-false on failure.
// Readers accept exactly what the writers emit (plus arbitrary
// whitespace in JSON and unknown object fields, which are ignored for
// forward compatibility); on malformed input they return false and
// describe the problem in *error.
//
// include_link_stats opts rows into the per-link busy-time columns
// ("link_busy_ms" JSON object / link_*_busy_ms CSV columns, fsmoe_sweep
// --link-util). Default off: the emitted bytes then match pre-link-stat
// writers exactly, which is what keeps the blessed demo-grid baseline
// byte-identical. Readers auto-detect either shape.
//
// Status follows the same optional-field discipline: JSON rows carry
// "status"/"attempts"/"error" members only when non-Ok, and the CSV
// writer appends the status,attempts,error columns iff the result set
// contains at least one non-Ok record. All-Ok output is byte-for-byte
// what a pre-status writer produced; readers auto-detect all four
// header shapes (links × status).
// ---------------------------------------------------------------------

std::string toJson(const std::vector<SweepResult> &results,
                   bool include_link_stats = false);
std::string toCsv(const std::vector<SweepResult> &results,
                  bool include_link_stats = false);

/**
 * One result as a single-line JSON object — the journal's per-record
 * payload (runtime/journal). Link stats are included iff the record
 * carries them and status fields iff the record is non-Ok, so the
 * line is a deterministic function of the record alone.
 */
std::string toJsonRecord(const SweepResult &r);

/** Inverse of toJsonRecord (also accepts multi-line objects). */
bool parseJsonRecord(const std::string &text, SweepResult *out,
                     std::string *error);

bool parseJson(const std::string &text, std::vector<SweepResult> *out,
               std::string *error);
bool parseCsv(const std::string &text, std::vector<SweepResult> *out,
              std::string *error);

bool writeResultsJson(const std::string &path,
                      const std::vector<SweepResult> &results,
                      bool include_link_stats = false);
bool writeResultsCsv(const std::string &path,
                     const std::vector<SweepResult> &results,
                     bool include_link_stats = false);

/**
 * Read a result file, dispatching on its extension: ".csv" parses as
 * CSV, anything else as JSON.
 */
bool readResults(const std::string &path, std::vector<SweepResult> *out,
                 std::string *error);

// ---------------------------------------------------------------------
// Regression diffing.
// ---------------------------------------------------------------------

/** Per-scenario comparison of a baseline and a current makespan. */
struct DiffEntry
{
    std::string key;
    double baselineMs = 0.0;
    double currentMs = 0.0;

    double deltaMs() const { return currentMs - baselineMs; }
    /// Relative drift; 0 for an exact match (incl. baseline 0 == 0).
    double relDelta() const
    {
        if (currentMs == baselineMs)
            return 0.0;
        return baselineMs != 0.0 ? (currentMs - baselineMs) / baselineMs
                                 : 1.0;
    }
};

/**
 * Join of two result sets by scenario key. Matched entries keep the
 * baseline's order; unmatched keys land in onlyBaseline/onlyCurrent
 * (also in input order). Duplicate keys within one set are flagged so
 * a corrupted merge cannot silently pass a diff.
 */
struct DiffReport
{
    std::vector<DiffEntry> matched;
    std::vector<std::string> onlyBaseline; ///< In baseline, not current.
    std::vector<std::string> onlyCurrent;  ///< In current, not baseline.
    std::vector<std::string> duplicateKeys;

    /**
     * Entries whose |relDelta()| exceeds @p tolerance_frac. An entry
     * with a non-finite makespan (NaN or inf) on either side is always
     * included: such values mean the producing run was broken, and NaN
     * in particular would otherwise pass every tolerance silently.
     */
    std::vector<const DiffEntry *> exceeding(double tolerance_frac) const;

    /**
     * The gate: true iff the scenario sets are identical (no missing,
     * no extra, no duplicate keys) and every matched makespan drifted
     * by at most @p tolerance_frac relative to the baseline. Faster
     * results beyond tolerance also fail — any drift means the
     * baseline no longer describes the code and must be regenerated
     * deliberately.
     */
    bool passes(double tolerance_frac) const;
};

DiffReport diffResults(const std::vector<SweepResult> &baseline,
                       const std::vector<SweepResult> &current);

/**
 * Human-readable report: per-scenario deltas over tolerance, missing
 * and extra scenarios, and a PASS/FAIL summary line.
 */
std::string formatDiff(const DiffReport &report, double tolerance_frac);

// ---------------------------------------------------------------------
// Shard merging.
// ---------------------------------------------------------------------

/**
 * Concatenate shard result sets in the given order, verifying that no
 * scenario key appears twice. Because shardScenarios() slices the
 * grid into contiguous index ranges, merging the shards of one grid
 * in shard order reproduces the unsharded sweep exactly — including
 * its serialised bytes. Returns false (and sets *error) on duplicate
 * keys.
 */
bool mergeResults(const std::vector<std::vector<SweepResult>> &shards,
                  std::vector<SweepResult> *out, std::string *error);

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_RESULT_STORE_H
