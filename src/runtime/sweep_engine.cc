#include "runtime/sweep_engine.h"

#include <chrono>
#include <utility>

#include "base/audit.h"
#include "base/logging.h"
#include "base/stats.h"
#include "runtime/self_trace.h"

namespace fsmoe::runtime {

namespace {

/**
 * Registry handles for the engine's telemetry, resolved once. The
 * same counters back every SweepEngine in the process (the registry
 * is process-wide); the per-engine SweepStats struct remains the
 * per-lifetime view.
 */
struct EngineStats
{
    stats::Counter &scenarios = stats::counter("sweep.scenarios.completed");
    stats::Counter &costHits = stats::counter("sweep.costCache.hits");
    stats::Counter &costMisses = stats::counter("sweep.costCache.misses");
    stats::Counter &simHits = stats::counter("sweep.simCache.hits");
    stats::Counter &simMisses = stats::counter("sweep.simCache.misses");
    stats::Histogram &costDeriveMs = stats::histogram("sweep.costDerive.ms");
    stats::Histogram &graphBuildMs = stats::histogram("sweep.graphBuild.ms");
    stats::Histogram &simulateMs = stats::histogram("sweep.simulate.ms");
    stats::Histogram &sweepWallMs = stats::histogram("sweep.wall.ms");

    static EngineStats &instance()
    {
        static EngineStats s;
        return s;
    }
};

#if FSMOE_AUDIT_ENABLED

/**
 * Field-by-field payload fingerprints for the cache-key collision
 * audit (base/audit.h): two payloads fingerprint equal iff every field
 * is bit-identical, matching the byte-identity contract the caches
 * must preserve.
 */
void
mixModel(audit::Fingerprint *fp, const core::LinearModel &m)
{
    fp->mix(m.alpha).mix(m.beta).mix(m.r2);
}

uint64_t
fingerprintCost(const core::ModelCost &c)
{
    audit::Fingerprint fp;
    mixModel(&fp, c.models.alltoall);
    mixModel(&fp, c.models.allgather);
    mixModel(&fp, c.models.reducescatter);
    mixModel(&fp, c.models.allreduce);
    mixModel(&fp, c.models.gemm);
    fp.mix(static_cast<uint64_t>(c.layers.size()));
    for (const core::LayerCost &l : c.layers) {
        const core::Workload &w = l.workload;
        fp.mix(w.a2aBytes).mix(w.agBytes).mix(w.rsBytes);
        fp.mix(w.expertMacs).mix(w.expertGemms).mix(w.attnMacs);
        fp.mix(w.routingMacs).mix(w.orderBytes).mix(w.gradBytes);
        for (const core::PhaseTimes *p : {&l.fwd, &l.bwd}) {
            fp.mix(p->a2a).mix(p->allgather).mix(p->reducescatter);
            fp.mix(p->experts).mix(p->routing).mix(p->order);
            fp.mix(p->attention).mix(p->gradAllReduce);
        }
    }
    fp.mix(c.rMax).mix(c.dsA2aOverhead).mix(c.dsKernelOverhead);
    return fp.digest();
}

uint64_t
fingerprintSim(const sim::SimResult &r)
{
    audit::Fingerprint fp;
    fp.mix(r.makespan);
    fp.mix(static_cast<uint64_t>(r.trace.size()));
    for (const sim::TaskTrace &t : r.trace)
        fp.mix(t.id).mix(t.start).mix(t.finish);
    for (double v : r.opTime)
        fp.mix(v);
    for (double v : r.linkBusyMs)
        fp.mix(v);
    return fp.digest();
}

#endif // FSMOE_AUDIT_ENABLED

} // namespace

SweepEngine::SweepEngine(SweepOptions options) : options_(options) {}

SweepStats
SweepEngine::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
SweepEngine::clearCostCache()
{
    std::lock_guard<std::mutex> lock(mu_);
    cost_cache_.clear();
}

void
SweepEngine::clearSimCache()
{
    std::lock_guard<std::mutex> lock(mu_);
    sim_cache_.clear();
}

std::shared_ptr<const core::ModelCost>
SweepEngine::costFor(const Scenario &s)
{
    const std::string key = s.costKey();
    std::promise<std::shared_ptr<const core::ModelCost>> promise;
    std::shared_future<std::shared_ptr<const core::ModelCost>> hit;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cost_cache_.find(key);
        if (it != cost_cache_.end()) {
            ++stats_.costCacheHits;
            hit = it->second;
        } else {
            ++stats_.costCacheMisses;
            cost_cache_.emplace(key, promise.get_future().share());
        }
    }
    EngineStats &es = EngineStats::instance();
    if (hit.valid()) {
        es.costHits.inc();
        return hit.get(); // may wait on the in-flight computing worker
    }
    es.costMisses.inc();
    try {
        const auto c0 = std::chrono::steady_clock::now();
        auto cost = [&] {
            SelfSpan span("costDerive", "stage");
            return std::make_shared<const core::ModelCost>(
                ScenarioRegistry::instance().makeCost(s));
        }();
        const auto c1 = std::chrono::steady_clock::now();
        const double derive_ms =
            std::chrono::duration<double, std::milli>(c1 - c0).count();
        es.costDeriveMs.observe(derive_ms);
        {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.costDeriveMs += derive_ms;
        }
        // Every cold compute registers its payload fingerprint: a
        // second compute of the same key with different bytes means
        // costKey() under-identifies the scenario — panic, not cache.
        FSMOE_AUDIT(audit::checkCacheKey("sweep.cost", key,
                                         fingerprintCost(*cost)));
        promise.set_value(cost);
        return cost;
    } catch (...) {
        // Propagate to in-flight waiters but drop the entry, so a
        // fixed preset (re-registered builder) can succeed later
        // instead of replaying a stale failure forever.
        promise.set_exception(std::current_exception());
        {
            std::lock_guard<std::mutex> lock(mu_);
            cost_cache_.erase(key);
        }
        throw;
    }
}

std::shared_ptr<const sim::SimResult>
SweepEngine::simFor(const Scenario &s,
                    const std::shared_ptr<const core::ModelCost> &cost)
{
    // costKey() never contains the schedule, so appending the spec
    // yields a unique (configuration, schedule-variant) key;
    // parameterized variants of one schedule cache separately.
    const std::string key = s.costKey() + '|' + s.schedule;
    std::promise<std::shared_ptr<const sim::SimResult>> promise;
    std::shared_future<std::shared_ptr<const sim::SimResult>> hit;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sim_cache_.find(key);
        if (it != sim_cache_.end()) {
            ++stats_.simCacheHits;
            hit = it->second;
        } else {
            ++stats_.simCacheMisses;
            sim_cache_.emplace(key, promise.get_future().share());
        }
    }
    EngineStats &es = EngineStats::instance();
    if (hit.valid()) {
        es.simHits.inc();
        return hit.get(); // may wait on the in-flight computing worker
    }
    es.simMisses.inc();
    try {
        auto result = std::make_shared<const sim::SimResult>(
            timedSimulate(s, *cost));
        FSMOE_AUDIT(audit::checkCacheKey("sweep.sim", key,
                                         fingerprintSim(*result)));
        promise.set_value(result);
        return result;
    } catch (...) {
        promise.set_exception(std::current_exception());
        {
            std::lock_guard<std::mutex> lock(mu_);
            sim_cache_.erase(key);
        }
        throw;
    }
}

sim::SimResult
SweepEngine::timedSimulate(const Scenario &s, const core::ModelCost &cost,
                           sim::TaskGraph *graph_out)
{
    const auto t0 = std::chrono::steady_clock::now();
    sim::TaskGraph graph;
    {
        SelfSpan span("graphBuild", "stage");
        auto schedule = core::Schedule::create(s.schedule);
        graph = schedule->build(cost);
    }
    const auto t1 = std::chrono::steady_clock::now();
    sim::SimResult result;
    {
        SelfSpan span("simulate", "stage");
        result = sim::Simulator{}.run(graph);
    }
    const auto t2 = std::chrono::steady_clock::now();
    const double build_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double simulate_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    EngineStats &es = EngineStats::instance();
    es.graphBuildMs.observe(build_ms);
    es.simulateMs.observe(simulate_ms);
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.graphBuildMs += build_ms;
        stats_.simulateMs += simulate_ms;
    }
    if (graph_out != nullptr)
        *graph_out = std::move(graph);
    return result;
}

std::vector<ScenarioResult>
SweepEngine::run(const std::vector<Scenario> &scenarios, bool keep_graphs)
{
    // run() is documented non-concurrent, so a scoped swap of the
    // option is safe and keeps one code path.
    const bool saved = options_.keepGraphs;
    options_.keepGraphs = keep_graphs;
    auto results = run(scenarios);
    options_.keepGraphs = saved;
    return results;
}

std::vector<ScenarioResult>
SweepEngine::run(const std::vector<Scenario> &scenarios)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ScenarioResult> results(scenarios.size());

    {
        ThreadPool pool(options_.numThreads, options_.queueCapacity);
        std::vector<std::future<void>> done;
        done.reserve(scenarios.size());
        for (size_t i = 0; i < scenarios.size(); ++i) {
            done.push_back(pool.submit([this, &scenarios, &results, i]() {
                const Scenario &s = scenarios[i];
                SelfSpan span(s.label(), "scenario");
                auto cost = costFor(s);
                ScenarioResult &out = results[i];
                out.scenario = s;
                if (options_.keepGraphs) {
                    // Graphs are not cached; simulate directly so the
                    // retained graph matches the returned timings.
                    out.sim = timedSimulate(s, *cost, &out.graph);
                } else if (options_.enableSimCache) {
                    out.sim = *simFor(s, cost);
                } else {
                    out.sim = timedSimulate(s, *cost);
                }
                out.makespanMs = out.sim.makespan;
                EngineStats::instance().scenarios.inc();
            }));
        }
        for (auto &f : done)
            f.get(); // rethrows worker exceptions
    }

    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    EngineStats::instance().sweepWallMs.observe(wall_ms);
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.scenariosRun += scenarios.size();
        stats_.lastSweepWallMs = wall_ms;
    }
    return results;
}

} // namespace fsmoe::runtime
