/**
 * @file
 * Chrome trace_event exporter: turns a simulated schedule into a JSON
 * document loadable in chrome://tracing (or Perfetto's legacy-trace
 * importer), one timeline row per stream. Times are emitted in
 * microseconds as the format requires; displayTimeUnit keeps the UI in
 * milliseconds to match the simulator's native unit.
 *
 * Thread-safety: both functions are pure functions of their arguments
 * (writeChromeTrace additionally touches only its target file) and
 * may be called concurrently on distinct data.
 *
 * Determinism: the emitted JSON depends only on (graph, result,
 * process_name) — events are ordered by the simulator's deterministic
 * trace order and numbers are formatted with fixed precision, so the
 * same simulation always exports the same bytes.
 */
#ifndef FSMOE_RUNTIME_TRACE_EXPORT_H
#define FSMOE_RUNTIME_TRACE_EXPORT_H

#include <string>

#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe::runtime {

/**
 * Render @p result (produced from @p graph) as a complete Chrome
 * trace JSON object. Each task becomes one complete ("ph":"X") event
 * with its op class as the category and its link in args; streams are
 * named after the schedule-builder layout (compute, dispatch, ...).
 *
 * @param process_name Label for the single emitted process, e.g. the
 *                     scenario label.
 */
std::string chromeTraceJson(const sim::TaskGraph &graph,
                            const sim::SimResult &result,
                            const std::string &process_name = "fsmoe");

/**
 * Write chromeTraceJson() to @p path. Returns false (with a warning)
 * if the file cannot be opened.
 */
bool writeChromeTrace(const std::string &path, const sim::TaskGraph &graph,
                      const sim::SimResult &result,
                      const std::string &process_name = "fsmoe");

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_TRACE_EXPORT_H
