/**
 * @file
 * Deterministic fault injection for the sweep runtime.
 *
 * Every recovery path in the fault-tolerance layer — scenario retry,
 * worker-crash supervision, watchdog timeouts, journal torn-tail
 * truncation — is dead code unless something exercises it. This module
 * injects those failures *deterministically*: the decision to fail is
 * a pure hash of (seed, site, scenario key, attempt), so a given
 * configuration fails the exact same scenarios on every run, every
 * machine, and every thread count. That keeps the repo's byte-identity
 * contract intact even for chaos tests: CI can inject crashes into a
 * sweep, resume it, and `cmp` the merged output against the clean run.
 *
 * Sites:
 *   EvalError        scenario evaluation throws (a poisoned config, a
 *                    solver blow-up) — exercises retry + quarantine
 *   WorkerCrash      the evaluating process dies (SIGKILL/OOM-style).
 *                    In an isolated child: the child _exit()s. In a
 *                    non-isolated journaled sweep: the *whole process*
 *                    exits, simulating a mid-sweep kill for
 *                    --resume testing
 *   WorkerTimeout    the evaluating child hangs until the supervisor's
 *                    watchdog kills it (isolate mode only)
 *   TornJournalWrite a journal append writes only a prefix of the
 *                    record and the process exits — exactly the torn
 *                    tail recovery must truncate
 *
 * Transport sites (the sweep service, src/service/) — each proves one
 * failover path of the daemon's worker protocol (docs/SERVICE.md):
 *
 *   TransportDrop       a heartbeat frame is silently not sent —
 *                       exercises the supervisor's tolerance for lost
 *                       frames (results still arrive; one missed beat
 *                       must not kill a healthy worker)
 *   TransportDelay      the worker stalls past the heartbeat deadline
 *                       before its next frame — exercises the
 *                       monotonic-clock watchdog + shard reassignment
 *   TransportDisconnect the worker closes its socket mid-shard and
 *                       exits — exercises EOF detection + reassignment
 *                       of the shard's unfinished remainder
 *   WorkerKill          the service worker process dies (SIGKILL-
 *                       style _exit) before evaluating a scenario —
 *                       exercises death detection, respawn, and
 *                       reassignment
 *
 * Plus `kill-after=K`: the process exits after the K-th successful
 * journal append — a precise, scheduler-independent way to kill a
 * sweep (or the daemon itself) mid-run.
 *
 * Configuration comes from `fsmoe_sweep --inject SPEC` or the
 * FSMOE_FAULT environment variable (same spec syntax, read lazily at
 * first query):
 *
 *   seed=7,eval=0.3,crash=0.1,timeout=0.05,torn=0.2,kill-after=12
 *
 * where each site name maps to an injection probability in [0, 1].
 *
 * Cost when disabled: shouldInject() is one relaxed atomic load —
 * injection support is compiled into every build (Release included)
 * but free until configured.
 *
 * Thread-safety: configure()/reset() synchronise with concurrent
 * queries via the enabled flag's release/acquire ordering; queries are
 * lock-free. Counters land in the stats registry under
 * robust.fault.* (see docs/ROBUSTNESS.md).
 */
#ifndef FSMOE_RUNTIME_FAULT_H
#define FSMOE_RUNTIME_FAULT_H

#include <cstdint>
#include <string>

namespace fsmoe::runtime::fault {

/** Injection sites, in spec-keyword order. */
enum class Site
{
    EvalError = 0,
    WorkerCrash = 1,
    WorkerTimeout = 2,
    TornJournalWrite = 3,
    TransportDrop = 4,
    TransportDelay = 5,
    TransportDisconnect = 6,
    WorkerKill = 7,
    NumSites = 8,
};

/**
 * Spec keyword for @p site ("eval", "crash", "timeout", "torn",
 * "drop", "delay", "disconnect", "worker-kill").
 */
const char *siteName(Site site);

/** One process's injection plan. */
struct FaultConfig
{
    uint64_t seed = 0;
    /// Injection probability per Site, indexed by Site value.
    double rate[static_cast<int>(Site::NumSites)] = {};
    /// Exit the process after this many successful journal appends;
    /// 0 disables.
    uint64_t killAfterAppends = 0;

    /** True when any site can ever fire. */
    bool anyEnabled() const;
};

/**
 * Parse an injection spec ("seed=7,eval=0.3,torn=0.1,kill-after=4",
 * keys in any order, all optional). Returns false and sets *error on
 * unknown keys or out-of-range values; *out is untouched on failure.
 */
bool parseSpec(const std::string &spec, FaultConfig *out,
               std::string *error);

/** Install @p config process-wide (replaces any previous config). */
void configure(const FaultConfig &config);

/**
 * Configure from the FSMOE_FAULT environment variable if it is set
 * and configure() has not already been called. Returns true when a
 * config (env or earlier explicit) is active afterwards. A malformed
 * env spec is fatal — silently ignoring it would un-test the exact
 * paths the caller asked to test.
 */
bool configureFromEnv();

/** Disable all injection (tests; also forgets configureFromEnv). */
void reset();

/** The active config (zeroes when disabled). */
FaultConfig config();

/** True when a config with any nonzero site/kill rate is installed. */
bool enabled();

/**
 * The deterministic decision: should @p site fire for (@p key,
 * @p attempt)? Pure function of the active config's seed and the
 * arguments — identical across runs, hosts, and thread counts. Bumps
 * robust.fault.injected.<site> when it returns true. Always false
 * when disabled (one relaxed atomic load).
 */
bool shouldInject(Site site, const std::string &key, int attempt);

/**
 * Journal-append hook for kill-after: returns true when the process
 * should exit now (the caller performs the exit so it can flush
 * first). Counts appends internally; false when disabled.
 */
bool shouldKillAfterAppend();

} // namespace fsmoe::runtime::fault

#endif // FSMOE_RUNTIME_FAULT_H
