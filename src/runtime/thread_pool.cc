#include "runtime/thread_pool.h"

#include <algorithm>

#include "base/logging.h"

namespace fsmoe::runtime {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : capacity_(std::max<size_t>(1, queue_capacity))
{
    if (num_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw > 0 ? static_cast<int>(hw) : 1;
    }
    workers_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

size_t
ThreadPool::submitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return submitted_;
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this]() {
        return stopping_ || queue_.size() < capacity_;
    });
    FSMOE_CHECK_ARG(!stopping_, "submit() on a stopped ThreadPool");
    queue_.push_back(std::move(job));
    ++submitted_;
    lock.unlock();
    not_empty_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            not_empty_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        not_full_.notify_one();
        job(); // packaged_task captures exceptions into the future
    }
}

} // namespace fsmoe::runtime
