#include "runtime/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "base/logging.h"
#include "base/stats.h"

namespace fsmoe::runtime {

namespace {

/** Registry handles for the pool's telemetry, resolved once. */
struct PoolStats
{
    stats::Counter &submitted =
        stats::counter("threadpool.tasks.submitted");
    stats::Counter &executed = stats::counter("threadpool.tasks.executed");
    stats::Gauge &queueDepth = stats::gauge("threadpool.queueDepth");
    stats::Histogram &taskMs = stats::histogram("threadpool.task.ms");

    static PoolStats &instance()
    {
        static PoolStats s;
        return s;
    }
};

} // namespace

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : capacity_(std::max<size_t>(1, queue_capacity))
{
    if (num_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw > 0 ? static_cast<int>(hw) : 1;
    }
    workers_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

size_t
ThreadPool::submitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return submitted_;
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this]() {
        return stopping_ || queue_.size() < capacity_;
    });
    FSMOE_CHECK_ARG(!stopping_, "submit() on a stopped ThreadPool");
    queue_.push_back(std::move(job));
    ++submitted_;
    const size_t depth = queue_.size();
    lock.unlock();
    PoolStats &ps = PoolStats::instance();
    ps.submitted.inc();
    // Point-in-time depth plus its high-water mark; the max is what
    // "was the queue ever the bottleneck" questions read.
    ps.queueDepth.set(static_cast<double>(depth));
    not_empty_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            not_empty_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        not_full_.notify_one();
        PoolStats &ps = PoolStats::instance();
        const auto t0 = std::chrono::steady_clock::now();
        job(); // packaged_task captures exceptions into the future
        ps.taskMs.observe(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
        ps.executed.inc();
    }
}

} // namespace fsmoe::runtime
