/**
 * @file
 * A fixed-size thread pool with a bounded work queue and futures-based
 * submission, the execution substrate of the scenario-sweep runtime.
 *
 * The queue bound provides backpressure: submit() blocks once
 * queueCapacity tasks are waiting, so a producer enumerating a huge
 * scenario grid cannot outrun the workers and exhaust memory. Tasks
 * are executed in FIFO order; results and exceptions propagate through
 * the returned std::future.
 *
 * Thread-safety: submit() and submitted() may be called concurrently
 * from any number of producer threads; tasks themselves run on the
 * pool's workers and must do their own synchronisation for shared
 * state. The destructor must not run concurrently with submit(), and
 * a task must not submit() to its own pool once destruction has begun
 * (it would race the drain).
 *
 * Determinism: tasks *start* in submission order, but with more than
 * one worker their completion order — and any cross-task timing — is
 * scheduler-dependent. Deterministic users (the SweepEngine) get
 * reproducibility by giving each task an independent slot to write
 * to, never by relying on execution order.
 *
 * Telemetry: every pool reports into the base/stats registry —
 * threadpool.tasks.{submitted,executed} counters, a
 * threadpool.queueDepth gauge (current + high-water), and a
 * threadpool.task.ms per-task latency histogram (see
 * docs/OBSERVABILITY.md).
 */
#ifndef FSMOE_RUNTIME_THREAD_POOL_H
#define FSMOE_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fsmoe::runtime {

class ThreadPool
{
  public:
    /**
     * Start @p num_threads workers.
     *
     * @param num_threads    Worker count; 0 picks the hardware
     *                       concurrency (at least 1).
     * @param queue_capacity Maximum number of queued-but-unstarted
     *                       tasks before submit() blocks.
     */
    explicit ThreadPool(int num_threads, size_t queue_capacity = 128);

    /** Drains the queue, waits for running tasks, joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const { return static_cast<int>(workers_.size()); }
    size_t queueCapacity() const { return capacity_; }

    /** Tasks accepted so far (monotonic). */
    size_t submitted() const;

    /**
     * Enqueue @p fn for execution; blocks while the queue is full.
     * The future carries fn's return value or exception.
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        enqueue([task]() { (*task)(); });
        return result;
    }

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    size_t capacity_ = 128;
    size_t submitted_ = 0;
    bool stopping_ = false;
};

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_THREAD_POOL_H
