/**
 * @file
 * The scenario-sweep engine: fans Scenario evaluations across a
 * ThreadPool, memoizing both stages of an evaluation —
 *
 *   1. ModelCost derivation, keyed by Scenario::costKey() (every
 *      field except the schedule), so all schedule variants of one
 *      configuration price the workload once; and
 *   2. full SimResults, keyed by (costKey, schedule spec), so repeated
 *      sweeps — warm re-runs, overlapping grids, regression
 *      baselines — skip graph construction and simulation entirely.
 *
 * Determinism contract: the simulator itself is single-threaded and
 * deterministic, and the engine parallelises only *across* scenarios —
 * each scenario's graph is built and simulated by exactly one worker,
 * and results land in input order. A sweep on N threads is therefore
 * byte-identical to the same sweep on 1 thread, cached results are
 * byte-identical to recomputed ones (runtime_test asserts both), and
 * cache hit/miss counts depend only on the scenario list, never on
 * thread timing (see costFor()).
 *
 * Thread-safety: run() must not be called concurrently from multiple
 * threads on one engine (results are keyed by input index); stats(),
 * clearCostCache() and clearSimCache() may be called from any thread
 * at any time. Both caches persist across run() calls until cleared.
 */
#ifndef FSMOE_RUNTIME_SWEEP_ENGINE_H
#define FSMOE_RUNTIME_SWEEP_ENGINE_H

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/scenario.h"
#include "runtime/thread_pool.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe::runtime {

/** Engine configuration. */
struct SweepOptions
{
    /// Worker threads; 0 picks the hardware concurrency.
    int numThreads = 0;
    /// Bounded work-queue depth (backpressure for huge grids).
    size_t queueCapacity = 256;
    /// Also retain each scenario's TaskGraph (needed for Chrome-trace
    /// export; costs memory proportional to grid size). Graphs are
    /// never cached, so this bypasses the SimResult cache: every
    /// scenario simulates, and sim hit/miss counters do not move.
    bool keepGraphs = false;
    /// Memoize SimResults by (costKey, schedule). Disable to force
    /// re-simulation (e.g. when benchmarking the simulator itself).
    bool enableSimCache = true;
};

/** Outcome of one scenario. */
struct ScenarioResult
{
    Scenario scenario;
    double makespanMs = 0.0;
    sim::SimResult sim;   ///< Full per-task timing.
    sim::TaskGraph graph; ///< Populated only with keepGraphs.
};

/** Counters of one engine lifetime (caches persist across run calls). */
struct SweepStats
{
    size_t scenariosRun = 0;
    size_t costCacheHits = 0;
    size_t costCacheMisses = 0;
    size_t simCacheHits = 0;
    size_t simCacheMisses = 0;
    double lastSweepWallMs = 0.0;

    // Per-stage wall time, summed across workers (so on N threads the
    // stages can add up to ~N x lastSweepWallMs). Only cache-miss work
    // is counted — a cache hit contributes nothing. Graph build
    // includes everything a Schedule::build does: solver calls and
    // in-schedule degree-search simulations (see core::solverCacheStats
    // for the solver share). Feeds `fsmoe_sweep --profile`.
    double costDeriveMs = 0.0; ///< Cold ModelCost derivations.
    double graphBuildMs = 0.0; ///< Schedule create + build.
    double simulateMs = 0.0;   ///< Simulator::run on built graphs.
};

class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions options = {});

    /**
     * Evaluate every scenario and return results in input order.
     * Reentrant with respect to both caches; not safe to call
     * concurrently from multiple threads.
     */
    std::vector<ScenarioResult> run(const std::vector<Scenario> &scenarios);

    /**
     * run() with SweepOptions::keepGraphs overridden for this call
     * only. Lets one engine interleave cached probe sweeps
     * (keep_graphs = false, SimResult cache active) with graph-bearing
     * metric passes (keep_graphs = true) without rebuilding its caches
     * — the tuner's frontier pass relies on this.
     */
    std::vector<ScenarioResult> run(const std::vector<Scenario> &scenarios,
                                    bool keep_graphs);

    const SweepOptions &options() const { return options_; }
    SweepStats stats() const;

    /** Drop every memoized ModelCost. */
    void clearCostCache();

    /** Drop every memoized SimResult. */
    void clearSimCache();

  private:
    /**
     * Memoized ModelCost lookup. The first caller of a key inserts an
     * in-flight future and computes (a miss); every later caller —
     * including concurrent ones — waits on that future (a hit), so hit
     * counts depend only on the scenario list, never on thread timing.
     */
    std::shared_ptr<const core::ModelCost> costFor(const Scenario &s);

    /**
     * Memoized simulation keyed by (costKey, schedule), same
     * in-flight-future protocol as costFor(). @p cost must be the
     * scenario's own ModelCost (used on a miss).
     */
    std::shared_ptr<const sim::SimResult>
    simFor(const Scenario &s, const std::shared_ptr<const core::ModelCost> &cost);

    /**
     * Build @p s's schedule graph and simulate it, charging the two
     * stages to SweepStats::graphBuildMs / simulateMs. With
     * @p graph_out the built graph is retained (the keepGraphs path).
     */
    sim::SimResult timedSimulate(const Scenario &s,
                                 const core::ModelCost &cost,
                                 sim::TaskGraph *graph_out = nullptr);

    SweepOptions options_;
    mutable std::mutex mu_;
    std::unordered_map<std::string,
                       std::shared_future<
                           std::shared_ptr<const core::ModelCost>>>
        cost_cache_;
    std::unordered_map<std::string,
                       std::shared_future<
                           std::shared_ptr<const sim::SimResult>>>
        sim_cache_;
    SweepStats stats_;
};

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_SWEEP_ENGINE_H
