/**
 * @file
 * The scenario-sweep engine: fans Scenario evaluations across a
 * ThreadPool, memoizing ModelCost derivations so schedules that share
 * a (model, cluster, knobs) configuration price the workload once.
 *
 * Determinism contract: the simulator itself is single-threaded and
 * deterministic, and the engine parallelises only *across* scenarios —
 * each scenario's graph is built and simulated by exactly one worker,
 * and results land in input order. A sweep on N threads is therefore
 * byte-identical to the same sweep on 1 thread (runtime_test asserts
 * this).
 */
#ifndef FSMOE_RUNTIME_SWEEP_ENGINE_H
#define FSMOE_RUNTIME_SWEEP_ENGINE_H

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/scenario.h"
#include "runtime/thread_pool.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe::runtime {

/** Engine configuration. */
struct SweepOptions
{
    /// Worker threads; 0 picks the hardware concurrency.
    int numThreads = 0;
    /// Bounded work-queue depth (backpressure for huge grids).
    size_t queueCapacity = 256;
    /// Also retain each scenario's TaskGraph (needed for Chrome-trace
    /// export; costs memory proportional to grid size).
    bool keepGraphs = false;
};

/** Outcome of one scenario. */
struct ScenarioResult
{
    Scenario scenario;
    double makespanMs = 0.0;
    sim::SimResult sim;   ///< Full per-task timing.
    sim::TaskGraph graph; ///< Populated only with keepGraphs.
};

/** Counters of one engine lifetime (cache persists across run calls). */
struct SweepStats
{
    size_t scenariosRun = 0;
    size_t costCacheHits = 0;
    size_t costCacheMisses = 0;
    double lastSweepWallMs = 0.0;
};

class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions options = {});

    /**
     * Evaluate every scenario and return results in input order.
     * Reentrant with respect to the cost cache; not safe to call
     * concurrently from multiple threads.
     */
    std::vector<ScenarioResult> run(const std::vector<Scenario> &scenarios);

    const SweepOptions &options() const { return options_; }
    SweepStats stats() const;

    /** Drop every memoized ModelCost. */
    void clearCostCache();

  private:
    /**
     * Memoized ModelCost lookup. The first caller of a key inserts an
     * in-flight future and computes (a miss); every later caller —
     * including concurrent ones — waits on that future (a hit), so hit
     * counts depend only on the scenario list, never on thread timing.
     */
    std::shared_ptr<const core::ModelCost> costFor(const Scenario &s);

    SweepOptions options_;
    mutable std::mutex mu_;
    std::unordered_map<std::string,
                       std::shared_future<
                           std::shared_ptr<const core::ModelCost>>>
        cost_cache_;
    SweepStats stats_;
};

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_SWEEP_ENGINE_H
