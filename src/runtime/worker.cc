#include "runtime/worker.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/interrupt.h"
#include "base/logging.h"
#include "base/stats.h"
#include "core/schedules/schedule.h"
#include "runtime/fault.h"
#include "runtime/thread_pool.h"
#include "sim/simulator.h"

namespace fsmoe::runtime {

namespace {

void
backoffBeforeRetry(const RobustOptions &opts, int failed_attempts)
{
    stats::counter("robust.retry.count").inc();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(retryBackoffMs(opts, failed_attempts)));
}

// --------------------------------------------------------- in-process

SweepResult
attemptInProcess(const Scenario &s, const RobustOptions &opts)
{
    const std::string label = s.label();
    std::string last_error;
    for (int attempt = 1; attempt <= opts.maxAttempts; ++attempt) {
        if (attempt > 1)
            backoffBeforeRetry(opts, attempt - 1);
        if (fault::shouldInject(fault::Site::WorkerCrash, label, attempt)) {
            // No isolation boundary: a worker crash IS a process
            // crash — exactly the mid-sweep kill --resume recovers.
            ::_exit(137);
        }
        try {
            SweepResult r = evaluateScenario(s, attempt);
            stats::counter("robust.scenario.ok").inc();
            return r;
        } catch (const std::exception &e) {
            last_error = e.what();
            stats::counter("robust.scenario.failedAttempts").inc();
            FSMOE_WARN("scenario ", label, " attempt ", attempt, "/",
                       opts.maxAttempts, " failed: ", last_error);
        }
    }
    stats::counter("robust.scenario.quarantined").inc();
    return failureRecord(s, ResultStatus::Quarantined, opts.maxAttempts,
                         last_error);
}

// ------------------------------------------------------------ isolate

bool
writeAll(int fd, const std::string &text)
{
    size_t off = 0;
    while (off < text.size()) {
        const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

[[noreturn]] void
childMain(int fd, const Scenario &s, int attempt)
{
    const std::string label = s.label();
    if (fault::shouldInject(fault::Site::WorkerCrash, label, attempt))
        ::_exit(137); // isolated: only this scenario's attempt dies
    if (fault::shouldInject(fault::Site::WorkerTimeout, label, attempt)) {
        for (;;) // hang until the supervisor's watchdog SIGKILLs us
            ::pause();
    }
    std::string msg;
    try {
        msg = "ok " + toJsonRecord(evaluateScenario(s, attempt)) + "\n";
    } catch (const std::exception &e) {
        msg = std::string("err ") + e.what() + "\n";
    }
    writeAll(fd, msg);
    ::_exit(0);
}

/**
 * Drain @p fd until EOF or @p deadline. Returns false on watchdog
 * expiry (output collected so far is kept).
 */
bool
readUntilDeadline(int fd, std::chrono::steady_clock::time_point deadline,
                  std::string *out)
{
    char buf[4096];
    for (;;) {
        const auto now = std::chrono::steady_clock::now();
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count();
        if (left <= 0)
            return false;
        struct pollfd pfd = {fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, static_cast<int>(left));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return true; // treat as EOF; exit status will classify
        }
        if (pr == 0)
            return false; // timed out
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return true;
        }
        if (n == 0)
            return true; // EOF: child finished writing
        out->append(buf, static_cast<size_t>(n));
    }
}

/**
 * One forked attempt. Returns true with *result on success; false
 * with *error describing the crash/timeout/eval failure.
 */
bool
attemptForked(const Scenario &s, const RobustOptions &opts, int attempt,
              SweepResult *result, std::string *error)
{
    int fds[2];
    if (::pipe(fds) != 0) {
        *error = std::string("pipe failed: ") + std::strerror(errno);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        *error = std::string("fork failed: ") + std::strerror(errno);
        return false;
    }
    if (pid == 0) {
        ::close(fds[0]);
        childMain(fds[1], s, attempt);
    }
    ::close(fds[1]);
    stats::counter("robust.worker.forks").inc();

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(opts.timeoutMs);
    std::string reply;
    const bool finished = readUntilDeadline(fds[0], deadline, &reply);
    ::close(fds[0]);
    if (!finished) {
        ::kill(pid, SIGKILL);
        stats::counter("robust.worker.timeouts").inc();
    }
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (!finished) {
        *error = "worker timed out after " + std::to_string(opts.timeoutMs) +
                 " ms (killed)";
        return false;
    }

    if (reply.rfind("ok ", 0) == 0 && !reply.empty() &&
        reply.back() == '\n') {
        std::string parse_error;
        if (parseJsonRecord(reply.substr(3, reply.size() - 4), result,
                            &parse_error)) {
            result->attempts = attempt;
            return true;
        }
        *error = "worker reply unparsable: " + parse_error;
        return false;
    }
    if (reply.rfind("err ", 0) == 0) {
        *error = reply.substr(4);
        if (!error->empty() && error->back() == '\n')
            error->pop_back();
        return false;
    }
    stats::counter("robust.worker.crashes").inc();
    std::ostringstream oss;
    if (WIFSIGNALED(status))
        oss << "worker killed by signal " << WTERMSIG(status);
    else
        oss << "worker exited with status "
            << (WIFEXITED(status) ? WEXITSTATUS(status) : status)
            << " before reporting a result";
    *error = oss.str();
    return false;
}

SweepResult
attemptIsolated(const Scenario &s, const RobustOptions &opts)
{
    std::string last_error;
    for (int attempt = 1; attempt <= opts.maxAttempts; ++attempt) {
        if (attempt > 1)
            backoffBeforeRetry(opts, attempt - 1);
        SweepResult r;
        if (attemptForked(s, opts, attempt, &r, &last_error)) {
            stats::counter("robust.scenario.ok").inc();
            return r;
        }
        stats::counter("robust.scenario.failedAttempts").inc();
        FSMOE_WARN("scenario ", s.label(), " attempt ", attempt, "/",
                   opts.maxAttempts, " failed: ", last_error);
    }
    stats::counter("robust.scenario.quarantined").inc();
    return failureRecord(s, ResultStatus::Quarantined, opts.maxAttempts,
                         last_error);
}

} // namespace

SweepResult
failureRecord(const Scenario &s, ResultStatus status, int attempts,
              const std::string &error)
{
    SweepResult r;
    r.model = s.model;
    r.cluster = s.cluster;
    r.schedule = s.schedule;
    r.batch = s.batch;
    r.seqLen = s.seqLen;
    r.numLayers = s.numLayers;
    r.numExperts = s.numExperts;
    r.rMax = s.rMax;
    r.status = status;
    r.attempts = attempts;
    r.error = error;
    return r;
}

int
retryBackoffMs(const RobustOptions &opts, int attempt)
{
    long ms = opts.backoffBaseMs;
    for (int i = 1; i < attempt && ms < opts.backoffMaxMs; ++i)
        ms *= 2;
    if (ms > opts.backoffMaxMs)
        ms = opts.backoffMaxMs;
    return static_cast<int>(ms);
}

SweepResult
evaluateScenario(const Scenario &s, int attempt)
{
    if (fault::shouldInject(fault::Site::EvalError, s.label(), attempt)) {
        throw std::runtime_error("injected eval fault (attempt " +
                                 std::to_string(attempt) + ")");
    }
    // The same pure pipeline as SweepEngine::timedSimulate, so a
    // robust run's bytes match the plain engine's exactly.
    ScenarioResult r;
    r.scenario = s;
    const core::ModelCost cost = ScenarioRegistry::instance().makeCost(s);
    auto schedule = core::Schedule::create(s.schedule);
    sim::TaskGraph graph = schedule->build(cost);
    r.sim = sim::Simulator{}.run(graph);
    r.makespanMs = r.sim.makespan;
    SweepResult out = SweepResult::fromScenarioResult(r);
    out.attempts = attempt;
    return out;
}

std::vector<SweepResult>
runRobust(const std::vector<Scenario> &grid, const RobustOptions &opts,
          Journal *journal)
{
    fault::configureFromEnv();
    std::vector<SweepResult> results(grid.size());
    std::vector<char> done(grid.size(), 0);
    if (journal != nullptr) {
        for (const auto &entry : journal->recovered()) {
            // Only Ok entries count as finished; failed/quarantined
            // ones get a fresh retry budget (a resume without fault
            // injection then converges to the clean run's bytes).
            if (entry.first < grid.size() &&
                entry.second.status == ResultStatus::Ok) {
                results[entry.first] = entry.second;
                done[entry.first] = 1;
                stats::counter("robust.scenario.resumed").inc();
            }
        }
    }

    // The journal append below finishes even when a stop signal has
    // already been recorded — the handler only sets a flag — so a
    // Ctrl-C never tears the record in flight; it only prevents new
    // scenarios from starting.
    std::atomic<int> finished{0};
    const auto finish = [&](size_t i, SweepResult r) {
        if (journal != nullptr) {
            std::string error;
            if (!journal->append(i, r, &error))
                FSMOE_WARN(error);
        }
        results[i] = std::move(r);
        const int n = finished.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opts.stopAfterResults > 0 && n >= opts.stopAfterResults)
            interrupt::requestStop(SIGTERM);
    };

    if (opts.isolate) {
        // The supervisor must stay single-threaded: forking from a
        // threaded process can deadlock the child on locks held by
        // other threads at fork time.
        for (size_t i = 0; i < grid.size(); ++i) {
            if (interrupt::stopRequested())
                break;
            if (done[i] == 0)
                finish(i, attemptIsolated(grid[i], opts));
        }
    } else {
        ThreadPool pool(opts.numThreads);
        std::vector<std::future<void>> pending;
        pending.reserve(grid.size());
        for (size_t i = 0; i < grid.size(); ++i) {
            if (done[i] != 0)
                continue;
            pending.push_back(pool.submit([&, i]() {
                if (interrupt::stopRequested())
                    return; // graceful stop: never start new work
                finish(i, attemptInProcess(grid[i], opts));
            }));
        }
        for (auto &f : pending)
            f.get();
    }
    return results;
}

} // namespace fsmoe::runtime
