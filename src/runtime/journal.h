/**
 * @file
 * Append-only checkpoint journal for fault-tolerant sweeps.
 *
 * A journaled sweep (`fsmoe_sweep --journal FILE`) appends one record
 * per finished scenario, fsync'd, so a SIGKILL at any instant loses at
 * most the in-flight scenario. `--resume` replays the journal and
 * re-simulates only what is missing; because every scenario's result
 * is a pure function of its Scenario, the resumed sweep's final
 * `--out-json/--out-csv` is byte-identical to an uninterrupted run.
 *
 * On-disk format (plain text, one record per line):
 *
 *   fsmoe-journal v1 grid=<16-hex> n=<gridSize>
 *   <index> <16-hex payload checksum> <one-line JSON SweepResult>
 *   ...
 *
 * `grid` is an FNV-1a fingerprint over the grid's scenario labels in
 * order, so a journal can never be resumed against a different sweep
 * — a mismatch is a hard error, not silent corruption. Each record's
 * checksum covers its JSON payload; a record that fails the checksum,
 * fails to parse, or is out of range marks the *torn tail*: the valid
 * prefix is kept (rewritten atomically via tmp+rename) and everything
 * from the first bad record on is dropped and re-simulated. This is
 * exactly the shape a crash mid-append leaves behind — fault
 * injection's `torn` site (runtime/fault.h) manufactures it on demand.
 *
 * Recovery semantics on resume: only records whose status is Ok count
 * as done. Failed/quarantined records are re-attempted — so a sweep
 * quarantined under fault injection, resumed with injection off,
 * converges to the clean run's bytes. For an index appended more than
 * once, the last record wins.
 *
 * Thread-safety: append() is internally locked, so concurrent workers
 * of one process may share a Journal. One journal file belongs to one
 * process at a time (the supervisor; isolated workers report results
 * over a pipe and never touch the file).
 */
#ifndef FSMOE_RUNTIME_JOURNAL_H
#define FSMOE_RUNTIME_JOURNAL_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/result_store.h"
#include "runtime/scenario.h"

namespace fsmoe::runtime {

class Journal
{
  public:
    Journal() = default;
    ~Journal();
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** FNV-1a over the grid's labels in order — the header's grid=. */
    static uint64_t gridFingerprint(const std::vector<Scenario> &grid);

    /**
     * Open @p path for a sweep over @p grid. With @p resume and an
     * existing file: validate the header against the grid, load every
     * valid record (see class comment for torn-tail recovery), and
     * continue appending. Without @p resume the file must not already
     * exist — overwriting a journal by accident would destroy the very
     * state it exists to protect. Returns false with *error on
     * mismatch, corruption before any valid record, or IO failure.
     */
    bool open(const std::string &path, const std::vector<Scenario> &grid,
              bool resume, std::string *error);

    /**
     * Records recovered by open(#resume), keyed by grid index; later
     * appends are not reflected. Only Ok entries should be treated as
     * done (see class comment).
     */
    const std::map<size_t, SweepResult> &recovered() const
    {
        return recovered_;
    }

    /**
     * Append one finished scenario, flushed and fsync'd before
     * returning. Honours the `torn` and `kill-after` fault-injection
     * sites, each of which terminates the process by design.
     */
    bool append(size_t index, const SweepResult &r, std::string *error);

    /** Close the underlying file (idempotent; also run by ~Journal). */
    void close();

    const std::string &path() const { return path_; }

  private:
    std::mutex mu_;
    std::string path_;
    std::FILE *file_ = nullptr;
    size_t gridSize_ = 0;
    std::map<size_t, SweepResult> recovered_;
};

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_JOURNAL_H
