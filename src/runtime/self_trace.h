/**
 * @file
 * Host-side span tracing: Chrome trace_event records of the sweep
 * runtime's *own* execution, so a slow sweep can be profiled in
 * Perfetto / chrome://tracing right next to the simulated timelines
 * that runtime/trace_export emits for the *simulated* tasks.
 *
 * The collector is process-wide and disabled by default: a SelfSpan
 * constructed while tracing is off costs one relaxed atomic load and
 * records nothing. When enabled (fsmoe_sweep --self-trace out.json),
 * each SelfSpan's scope becomes one complete ("ph":"X") event on the
 * recording thread's own timeline row — the sweep engine opens a
 * scenario span per worker-thread evaluation with stage sub-spans
 * (cost derivation, graph build, simulate) nested inside it.
 *
 * Thread-safety: enable/disable/record/json may be called from any
 * thread; events append under an internal mutex (span construction
 * and destruction, not the traced work, pay that cost). Threads are
 * numbered in first-record order and named "worker-N" in the trace.
 *
 * Determinism: none intended — spans measure wall time of a real
 * execution, which is the point. Everything that feeds results or
 * baselines is unaffected by tracing being on or off.
 */
#ifndef FSMOE_RUNTIME_SELF_TRACE_H
#define FSMOE_RUNTIME_SELF_TRACE_H

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

namespace fsmoe::runtime {

/** The process-wide span collector. */
class SelfTrace
{
  public:
    static SelfTrace &instance();

    /** Start collecting; clears previous events, restarts the clock. */
    void enable();

    /** Stop collecting (events are kept until the next enable()). */
    void disable();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Append one complete event. @p ts_us / @p dur_us are
     * microseconds on the clock started by enable(); @p cat must
     * point to static storage.
     */
    void record(std::string name, const char *cat, double ts_us,
                double dur_us);

    /** Microseconds since enable(); 0 when never enabled. */
    double nowUs() const;

    size_t eventCount() const;

    /** Render the collected spans as Chrome trace JSON. */
    std::string chromeTraceJson(
        const std::string &process_name = "fsmoe_sweep") const;

    /** Write chromeTraceJson() to @p path (warns + false on failure). */
    bool write(const std::string &path,
               const std::string &process_name = "fsmoe_sweep") const;

  private:
    struct Event
    {
        std::string name;
        const char *cat;
        int tid;
        double tsUs;
        double durUs;
    };

    SelfTrace() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::vector<Event> events_;
    std::chrono::steady_clock::time_point epoch_{};
    int next_tid_ = 0;
};

/**
 * RAII span: records [construction, destruction) of the current scope
 * into SelfTrace::instance() — a no-op (one atomic load, no
 * formatting, no allocation beyond the moved-in name) when tracing is
 * disabled at construction.
 */
class SelfSpan
{
  public:
    explicit SelfSpan(std::string name, const char *cat = "sweep");
    ~SelfSpan();
    SelfSpan(const SelfSpan &) = delete;
    SelfSpan &operator=(const SelfSpan &) = delete;

  private:
    std::string name_;
    const char *cat_;
    double start_us_ = -1.0; ///< < 0: tracing was off, record nothing.
};

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_SELF_TRACE_H
