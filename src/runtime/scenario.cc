#include "runtime/scenario.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "base/logging.h"
#include "core/schedules/schedule_registry.h"

namespace fsmoe::runtime {

std::string
Scenario::label() const
{
    std::ostringstream oss;
    oss << model << '/' << cluster << '/' << schedule << "/b" << batch
        << "/L" << seqLen;
    if (numLayers > 0)
        oss << "/l" << numLayers;
    if (numExperts > 0)
        oss << "/e" << numExperts;
    if (rMax != 16)
        oss << "/r" << rMax;
    return oss.str();
}

std::string
Scenario::costKey() const
{
    std::ostringstream oss;
    oss << model << '|' << cluster << '|' << batch << '|' << seqLen << '|'
        << numLayers << '|' << numExperts << '|' << rMax;
    return oss.str();
}

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry;
    return registry;
}

ScenarioRegistry::ScenarioRegistry()
{
    models_["gpt2xl-moe"] = [](int e, int64_t b, int64_t l, int layers) {
        return model::gpt2XlMoe(e, b, l, layers > 0 ? layers : 24);
    };
    models_["mixtral-7b"] = [](int e, int64_t b, int64_t l, int layers) {
        return model::mixtral7B(e, b, l, layers > 0 ? layers : 32);
    };
    models_["mixtral-22b"] = [](int e, int64_t b, int64_t l, int layers) {
        return model::mixtral22B(e, b, l, layers > 0 ? layers : 33);
    };
    clusters_["testbedA"] = []() { return sim::testbedA(); };
    clusters_["testbedB"] = []() { return sim::testbedB(); };
}

void
ScenarioRegistry::registerModel(const std::string &name,
                                ModelBuilder builder)
{
    FSMOE_CHECK_ARG(builder != nullptr, "null model builder for ", name);
    std::lock_guard<std::mutex> lock(mu_);
    models_[name] = std::move(builder);
}

void
ScenarioRegistry::registerCluster(const std::string &name,
                                  ClusterBuilder builder)
{
    FSMOE_CHECK_ARG(builder != nullptr, "null cluster builder for ", name);
    std::lock_guard<std::mutex> lock(mu_);
    clusters_[name] = std::move(builder);
}

bool
ScenarioRegistry::hasModel(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return models_.count(name) > 0;
}

bool
ScenarioRegistry::hasCluster(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return clusters_.count(name) > 0;
}

std::vector<std::string>
ScenarioRegistry::modelNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const auto &kv : models_)
        names.push_back(kv.first);
    // The registry map is unordered; without this sort the list would
    // come back in hash order, which varies with insertion history.
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<std::string>
ScenarioRegistry::clusterNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(clusters_.size());
    for (const auto &kv : clusters_)
        names.push_back(kv.first);
    // See modelNames(): sorted so callers never observe hash order.
    std::sort(names.begin(), names.end());
    return names;
}

sim::ClusterSpec
ScenarioRegistry::makeCluster(const std::string &name) const
{
    ClusterBuilder builder;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = clusters_.find(name);
        FSMOE_CHECK_ARG(it != clusters_.end(), "unknown cluster preset '",
                        name, "'");
        builder = it->second;
    }
    return builder();
}

model::ModelSpec
ScenarioRegistry::makeModel(const Scenario &scenario,
                            const sim::ClusterSpec &cluster) const
{
    ModelBuilder builder;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = models_.find(scenario.model);
        FSMOE_CHECK_ARG(it != models_.end(), "unknown model preset '",
                        scenario.model, "'");
        builder = it->second;
    }
    const int experts = scenario.numExperts > 0 ? scenario.numExperts
                                                : cluster.numNodes;
    return builder(experts, scenario.batch, scenario.seqLen,
                   scenario.numLayers);
}

core::ModelCost
ScenarioRegistry::makeCost(const Scenario &scenario) const
{
    sim::ClusterSpec cluster = makeCluster(scenario.cluster);
    model::ModelSpec spec = makeModel(scenario, cluster);
    return model::makeModelCost(spec, cluster,
                                model::paperParallelism(cluster),
                                scenario.rMax);
}

ScenarioGrid &
ScenarioGrid::models(std::vector<std::string> v)
{
    models_ = std::move(v);
    return *this;
}

ScenarioGrid &
ScenarioGrid::clusters(std::vector<std::string> v)
{
    clusters_ = std::move(v);
    return *this;
}

ScenarioGrid &
ScenarioGrid::schedules(std::vector<std::string> v)
{
    schedules_ = std::move(v);
    return *this;
}

ScenarioGrid &
ScenarioGrid::batches(std::vector<int64_t> v)
{
    batches_ = std::move(v);
    return *this;
}

ScenarioGrid &
ScenarioGrid::seqLens(std::vector<int64_t> v)
{
    seq_lens_ = std::move(v);
    return *this;
}

ScenarioGrid &
ScenarioGrid::numLayers(std::vector<int> v)
{
    num_layers_ = std::move(v);
    return *this;
}

ScenarioGrid &
ScenarioGrid::rMax(int r)
{
    FSMOE_CHECK_ARG(r >= 1, "rMax must be >= 1");
    r_max_ = r;
    return *this;
}

std::vector<Scenario>
ScenarioGrid::build() const
{
    // Canonicalize the schedule axis up front: unknown schedules and
    // invalid parameters fail here, once, instead of mid-sweep, and
    // every emitted scenario carries the canonical spec so labels and
    // persisted keys are stable regardless of the caller's spelling.
    std::vector<std::string> specs;
    if (schedules_.empty()) {
        specs = core::ScheduleRegistry::instance().names();
    } else {
        specs.reserve(schedules_.size());
        for (const std::string &spec : schedules_) {
            std::string canonical, error;
            if (!core::ScheduleRegistry::instance().canonicalize(
                    spec, &canonical, &error))
                FSMOE_FATAL("bad schedule axis: ", error);
            specs.push_back(std::move(canonical));
        }
    }
    std::vector<Scenario> out;
    out.reserve(models_.size() * clusters_.size() * batches_.size() *
                seq_lens_.size() * num_layers_.size() * specs.size());
    for (const std::string &m : models_) {
        for (const std::string &c : clusters_) {
            for (int64_t b : batches_) {
                for (int64_t l : seq_lens_) {
                    for (int layers : num_layers_) {
                        for (const std::string &spec : specs) {
                            Scenario s;
                            s.model = m;
                            s.cluster = c;
                            s.schedule = spec;
                            s.batch = b;
                            s.seqLen = l;
                            s.numLayers = layers;
                            s.rMax = r_max_;
                            out.push_back(std::move(s));
                        }
                    }
                }
            }
        }
    }
    return out;
}

bool
parseShardSpec(const std::string &text, ShardSpec *spec,
               std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = "bad shard spec '" + text + "': " + why;
        return false;
    };
    const size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        return fail("expected K/N, e.g. 2/4");
    errno = 0;
    char *end = nullptr;
    const long k = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + slash)
        return fail("shard index K is not an integer");
    const bool k_overflow = errno == ERANGE;
    errno = 0;
    const long n = std::strtol(text.c_str() + slash + 1, &end, 10);
    if (end != text.c_str() + text.size())
        return fail("shard count N is not an integer");
    // strtol saturates out-of-range input at LONG_MIN/LONG_MAX, and a
    // long may also hold values that would silently wrap when cast to
    // the int fields below — reject both explicitly.
    constexpr long kIntMax = std::numeric_limits<int>::max();
    if (k_overflow || errno == ERANGE || k > kIntMax || n > kIntMax)
        return fail("value out of range (must fit a 32-bit int)");
    if (n < 1)
        return fail("shard count N must be >= 1");
    if (k < 1 || k > n)
        return fail("shard index K must be in [1, N]");
    spec->index = static_cast<int>(k);
    spec->count = static_cast<int>(n);
    return true;
}

std::vector<Scenario>
demoGrid(const std::vector<int64_t> &batches,
         const std::vector<std::string> &schedules)
{
    // Sequence lengths follow the paper's per-testbed settings
    // (L = 1024 on Testbed A, 256 on B), so build one sub-grid per
    // cluster and concatenate.
    auto a = ScenarioGrid()
                 .models({"gpt2xl-moe", "mixtral-7b"})
                 .clusters({"testbedA"})
                 .seqLens({1024})
                 .batches(batches)
                 .schedules(schedules)
                 .build();
    auto b = ScenarioGrid()
                 .models({"gpt2xl-moe", "mixtral-7b"})
                 .clusters({"testbedB"})
                 .seqLens({256})
                 .batches(batches)
                 .schedules(schedules)
                 .build();
    a.insert(a.end(), b.begin(), b.end());
    if (schedules.empty()) {
        auto degrees = ScenarioGrid()
                           .models({"gpt2xl-moe"})
                           .clusters({"testbedA"})
                           .seqLens({1024})
                           .batches(batches)
                           .schedules({"tutel?degree=2", "tutel?degree=4",
                                       "tutel?degree=8"})
                           .build();
        a.insert(a.end(), degrees.begin(), degrees.end());
    }
    return a;
}

std::vector<Scenario>
shardScenarios(const std::vector<Scenario> &scenarios,
               const ShardSpec &shard)
{
    FSMOE_CHECK_ARG(shard.count >= 1 && shard.index >= 1 &&
                        shard.index <= shard.count,
                    "shard ", shard.index, "/", shard.count,
                    " out of range");
    const size_t size = scenarios.size();
    const size_t n = static_cast<size_t>(shard.count);
    const size_t k = static_cast<size_t>(shard.index);
    const size_t begin = size * (k - 1) / n;
    const size_t end = size * k / n;
    return std::vector<Scenario>(scenarios.begin() + begin,
                                 scenarios.begin() + end);
}

} // namespace fsmoe::runtime
