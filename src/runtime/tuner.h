/**
 * @file
 * The schedule auto-tuner: "what should I run?" answered by search.
 *
 * The paper's core claim is that simulation is cheap and accurate
 * enough to *choose* schedules; this module is the product form of
 * that claim. Given a (model, cluster, batch) query, the tuner
 * enumerates every registered schedule, derives each one's search
 * space from its declared parameters (core/schedules/param_space.h),
 * probes candidates through a SweepEngine — so both memo tiers and
 * the thread pool are reused across candidates and across queries —
 * and answers with the best canonical spec plus a Pareto frontier
 * over three objectives:
 *
 *   makespanMs  simulated iteration time (the primary objective);
 *   commBusyMs  total busy time on the two communication links —
 *               the schedule's bandwidth footprint;
 *   peakMemMB   peak concurrent in-flight communication volume,
 *               recovered from the trace by inverting the linear comm
 *               models (buffer pressure of overlap: a schedule that
 *               overlaps everything holds more bytes live at once).
 *
 * Small spaces are searched exhaustively (grid); spaces with a
 * continuous axis fall back to the solver's differential evolution,
 * probing through the same cached engine. Every schedule's bare
 * canonical name is always a candidate, so the tuner's answer is
 * never worse than the best default configuration.
 *
 * Advisor caching: answers are memoized by a key derived from the
 * query and the tuner configuration, and can be persisted as a JSON
 * cache file (load/save), so a repeated query is a lookup — zero
 * simulations, verifiable via the "sim.runs" stats counter. The
 * persisted form round-trips byte-identically (base/json.h fmtDouble).
 *
 * Determinism contract: fixed DE seed, sequential DE probes, and the
 * engine's parallel-equals-serial guarantee make tune() byte-stable:
 * the same query on any thread count, in Debug or Release, produces
 * an identical answer (tuner_test and CI assert this).
 *
 * Thread-safety: a Tuner is single-threaded (parallelism lives inside
 * its engine); do not share one across threads without external
 * locking.
 */
#ifndef FSMOE_RUNTIME_TUNER_H
#define FSMOE_RUNTIME_TUNER_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/perf_model.h"
#include "runtime/sweep_engine.h"
#include "sim/simulator.h"
#include "sim/task_graph.h"
#include "solver/differential_evolution.h"

namespace fsmoe::runtime {

/** The question: one workload configuration, schedule left open. */
struct TuneQuery
{
    std::string model;   ///< Model preset name (ScenarioRegistry).
    std::string cluster; ///< Cluster preset name.
    int64_t batch = 1;
    int64_t seqLen = 1024;
    int numLayers = 0;  ///< 0 = preset default.
    int numExperts = 0; ///< 0 = one expert per node (paper rule).
    int rMax = 16;      ///< Largest pipeline degree schedules may use.

    /** The Scenario this query describes, schedule unset. */
    Scenario scenario() const;
};

/** Tuner configuration (all defaults are deterministic). */
struct TuneOptions
{
    int numThreads = 0; ///< Engine worker threads; 0 = hardware.
    /// Int axes spanning more values than this become continuous.
    size_t maxGridPerAxis = 32;
    /// Largest full grid enumerated per schedule; larger spaces (and
    /// any space with a continuous axis) use differential evolution.
    size_t maxGridSpecs = 512;
    /// Global top-N candidates (by makespan) carried into the metric
    /// pass that computes comm/memory objectives and the frontier;
    /// each schedule's best candidate is always included as well.
    size_t frontierCandidates = 16;
    /// DE budget for continuous spaces. Every probe goes through the
    /// engine's SimResult cache, so revisited specs are free.
    solver::DeConfig de{16, 24, 0.7, 0.9, 0xf500e7ULL, 1e-9};
};

/** One evaluated configuration with its three objectives. */
struct TuneCandidate
{
    std::string spec; ///< Canonical schedule spec.
    double makespanMs = 0.0;
    double commBusyMs = 0.0;
    double peakMemMB = 0.0;
};

/** The advisor's answer to one query. */
struct TuneAnswer
{
    std::string queryKey; ///< Advisor-cache key (see Tuner::queryKey).
    std::string best;     ///< Canonical spec with the least makespan.
    double bestMakespanMs = 0.0;
    size_t evaluated = 0; ///< Distinct specs probed by the search.
    /// Pareto-optimal candidates of the metric pass, sorted by
    /// (makespanMs, commBusyMs, peakMemMB, spec). Contains best.
    std::vector<TuneCandidate> frontier;
    /// True when this answer came from the advisor cache (not
    /// persisted — a property of the lookup, not the answer).
    bool fromCache = false;
};

/**
 * Pareto frontier of @p candidates, minimizing all three objectives:
 * a candidate survives unless some other candidate is no worse on
 * every objective and strictly better on at least one. Duplicate
 * specs are collapsed first (keeping the first occurrence). The
 * result is sorted by (makespanMs, commBusyMs, peakMemMB, spec).
 */
std::vector<TuneCandidate>
paretoFrontier(std::vector<TuneCandidate> candidates);

/**
 * Peak concurrent in-flight communication volume of a simulated
 * graph, in MB. Each communication task's byte volume is recovered
 * by inverting the matching linear comm model at the task's duration
 * (clamped at 0 — a duration below the model's startup latency
 * carries no measurable volume); a sweep over the trace then finds
 * the maximum volume simultaneously in flight. Finishes are
 * processed before starts at equal timestamps (back-to-back chunks
 * do not double-count). Compute tasks contribute nothing.
 */
double peakConcurrentCommMB(const sim::TaskGraph &graph,
                            const sim::SimResult &sim,
                            const core::PerfModelSet &models);

class Tuner
{
  public:
    explicit Tuner(TuneOptions options = {});

    /**
     * Answer @p query: from the advisor cache when present (zero
     * simulations), by search otherwise (the answer is then cached).
     */
    TuneAnswer tune(const TuneQuery &query);

    /**
     * Advisor-cache key of @p query under this tuner's configuration:
     * the scenario cost key plus the search settings, so a tuner with
     * a different budget never serves another configuration's answer.
     */
    std::string queryKey(const TuneQuery &query) const;

    /**
     * Merge entries from a persisted advisor-cache JSON file.
     * Returns false (leaving the cache unchanged) when the file is
     * missing, unparseable, or has the wrong schema; *error explains.
     * Entries whose key collides with an in-memory answer are kept
     * from memory.
     */
    bool loadCache(const std::string &path, std::string *error);

    /**
     * Persist every cached answer as deterministic JSON (entries in
     * key order, doubles bit-exact). Returns false on I/O failure.
     */
    bool saveCache(const std::string &path, std::string *error) const;

    /** Number of cached answers. */
    size_t cacheSize() const { return cache_.size(); }

    /**
     * Deterministic JSON of one answer (the fsmoe_tune --out-json
     * payload). Excludes fromCache, so a warm answer serializes
     * byte-identically to the cold answer it repeats.
     */
    static std::string answerJson(const TuneAnswer &answer);

    /** The underlying engine (its caches persist across queries). */
    SweepEngine &engine() { return engine_; }

  private:
    TuneAnswer search(const TuneQuery &query);

    TuneOptions options_;
    SweepEngine engine_;
    /// key -> answer; ordered so saveCache is deterministic.
    std::map<std::string, TuneAnswer> cache_;
};

} // namespace fsmoe::runtime

#endif // FSMOE_RUNTIME_TUNER_H
