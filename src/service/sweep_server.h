/**
 * @file
 * SweepServer — the resilient sweep service supervisor.
 *
 * The server turns one submitted JobSpec into a finished merged result
 * file by fanning the job's scenario grid out to a pool of forked
 * worker processes over AF_UNIX socketpairs (service/protocol.h) and
 * healing every failure mode a worker can exhibit:
 *
 *   worker dies (SIGKILL, crash, injected worker-kill)
 *     -> death is observed via socket EOF + waitpid; the shard's
 *        unfinished remainder is reassigned and a fresh worker is
 *        forked into the slot
 *   worker stalls (hang, injected delay)
 *     -> a per-worker heartbeat watchdog on std::chrono::steady_clock
 *        (wall-clock time is banned in deadline arithmetic — see
 *        fsmoe_lint's wallclock-deadline rule) SIGKILLs the worker
 *        past heartbeatTimeoutMs and reassigns its shard
 *   worker disconnects (socket close, injected disconnect)
 *     -> same reassignment path as death
 *   scenario evaluation fails (throw, injected eval fault)
 *     -> the worker reports EvalError and continues; the failed index
 *        rides the shard's next assignment attempt
 *   the daemon itself dies (SIGKILL, injected kill-after)
 *     -> every streamed result was already journalled (fsync'd);
 *        workers die with it via PR_SET_PDEATHSIG; a restarted daemon
 *        resumes the job from the journal
 *
 * Reassignment is bounded: a shard reassigned maxShardAttempts times
 * has its remaining scenarios quarantined (runtime::failureRecord),
 * mirroring runRobust's retry-then-quarantine policy, with the same
 * deterministic exponential backoff between attempts.
 *
 * Determinism contract (docs/SERVICE.md): scenario evaluation is pure
 * and results are keyed by grid index, so the merged output written to
 * the job's `out` path is byte-identical to a single-process
 * `fsmoe_sweep` over the same grid — regardless of worker count,
 * shard size, injected faults, or how many times the job was resumed.
 *
 * Thread-safety: the supervisor is strictly single-threaded (fork
 * from a threaded process is a deadlock lottery); all concurrency is
 * between processes. Progress counters land in the stats registry
 * under service.* (docs/OBSERVABILITY.md).
 */
#ifndef FSMOE_SERVICE_SWEEP_SERVER_H
#define FSMOE_SERVICE_SWEEP_SERVER_H

#include <cstddef>
#include <string>

#include "service/job.h"
#include "service/job_queue.h"

namespace fsmoe::service {

/** Supervisor policy knobs. */
struct ServerOptions
{
    /// Worker processes to keep alive while a job runs.
    int numWorkers = 3;
    /// Shards per worker: the grid's pending indices are split into
    /// numWorkers * shardsPerWorker contiguous slices, so losing a
    /// worker forfeits at most 1/shardsPerWorker of its fair share.
    int shardsPerWorker = 4;
    /// Interval at which an idle worker volunteers a heartbeat; busy
    /// workers beat once per scenario.
    int heartbeatMs = 50;
    /// Watchdog: a busy worker silent for this long (steady clock) is
    /// SIGKILLed and its shard reassigned.
    int heartbeatTimeoutMs = 2000;
    /// Assignment attempts before a shard's remainder is quarantined.
    int maxShardAttempts = 3;
    /// Deterministic exponential backoff before a reassignment:
    /// min(backoffBaseMs << (attempt-1), backoffMaxMs).
    int backoffBaseMs = 10;
    int backoffMaxMs = 1000;
    /// Worker respawns tolerated per job before the job fails — a
    /// backstop against a fault config that kills every fork.
    int maxWorkerRestarts = 200;
    /// Queue poll interval for serve() when the queue is empty.
    int queuePollMs = 200;
};

/** What one runJob() call accomplished. */
struct JobOutcome
{
    bool ok = false;          ///< Merged output written; job complete.
    bool interrupted = false; ///< Graceful stop drained the job early.
    std::string error;        ///< Failure description when !ok.
    size_t scenarios = 0;     ///< Grid size.
    size_t okResults = 0;     ///< Scenarios with status Ok.
    size_t quarantined = 0;   ///< Scenarios given up on.
    size_t resumed = 0;       ///< Scenarios recovered from the journal.
};

class SweepServer
{
  public:
    explicit SweepServer(const ServerOptions &opts) : opts_(opts) {}

    /**
     * Run @p job to completion: build its grid, recover @p journalPath
     * when @p resume, fan pending scenarios out to workers, heal
     * failures, and atomically write the merged result to job.outPath.
     * On graceful stop (base/interrupt) the job is drained — streamed
     * results are journalled, no merged output is written — and
     * outcome.interrupted is set so the caller can leave the job
     * resumable. Returns outcome.ok.
     */
    bool runJob(const JobSpec &job, const std::string &journalPath,
                bool resume, JobOutcome *outcome);

    /**
     * Daemon loop: repeatedly scan @p queue, run "queued" jobs in
     * submission order (and first re-run "active" jobs — a previous
     * daemon died holding them — resuming from their journals), and
     * record "done"/"failed <error>" states. With @p once the loop
     * ends after one pass over a non-growing queue instead of
     * polling. Returns the process exit code: 0, or 128+signal after
     * a graceful stop (interrupted jobs stay "active" for the next
     * daemon).
     */
    int serve(JobQueue &queue, bool once);

  private:
    ServerOptions opts_;
};

} // namespace fsmoe::service

#endif // FSMOE_SERVICE_SWEEP_SERVER_H
