#include "service/job.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace fsmoe::service {

namespace {

constexpr const char *kHeader = "fsmoe-job v1";

bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
            c != '-')
            return false;
    }
    return true;
}

std::vector<std::string>
splitWords(const std::string &line)
{
    std::vector<std::string> words;
    std::istringstream iss(line);
    std::string w;
    while (iss >> w)
        words.push_back(w);
    return words;
}

bool
parseInt64(const std::string &text, int64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v <= 0)
        return false;
    *out = v;
    return true;
}

} // namespace

bool
parseJobSpec(const std::string &text, JobSpec *out, std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = "job spec: " + msg;
        return false;
    };

    JobSpec job;
    std::istringstream iss(text);
    std::string line;
    bool sawHeader = false;
    bool sawSchedules = false;
    int lineno = 0;
    while (std::getline(iss, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!sawHeader) {
            if (line != kHeader)
                return fail("line 1 must be '" + std::string(kHeader) +
                            "', got '" + line + "'");
            sawHeader = true;
            continue;
        }
        const std::vector<std::string> words = splitWords(line);
        if (words.empty())
            continue;
        const std::string &key = words[0];
        if (key == "name") {
            if (words.size() != 2 || !validName(words[1]))
                return fail("line " + std::to_string(lineno) +
                            ": 'name' wants one [A-Za-z0-9_-] identifier");
            job.name = words[1];
        } else if (key == "batches") {
            job.batches.clear();
            for (size_t i = 1; i < words.size(); ++i) {
                int64_t b = 0;
                if (!parseInt64(words[i], &b))
                    return fail("line " + std::to_string(lineno) +
                                ": bad batch '" + words[i] +
                                "' (want a positive integer)");
                job.batches.push_back(b);
            }
            if (job.batches.empty())
                return fail("line " + std::to_string(lineno) +
                            ": 'batches' wants at least one value");
        } else if (key == "schedules") {
            // "schedules" with no values is the explicit spelling of
            // the default (all registered schedules).
            sawSchedules = true;
            job.schedules.assign(words.begin() + 1, words.end());
        } else if (key == "out") {
            if (words.size() != 2)
                return fail("line " + std::to_string(lineno) +
                            ": 'out' wants exactly one path (no spaces)");
            job.outPath = words[1];
        } else {
            return fail("line " + std::to_string(lineno) +
                        ": unknown key '" + key +
                        "' (want name, batches, schedules, out)");
        }
    }
    if (!sawHeader)
        return fail("empty document (line 1 must be '" +
                    std::string(kHeader) + "')");
    if (job.name.empty())
        return fail("missing mandatory key 'name'");
    if (job.batches.empty())
        return fail("missing mandatory key 'batches'");
    if (job.outPath.empty())
        return fail("missing mandatory key 'out'");
    (void)sawSchedules;
    *out = job;
    return true;
}

std::string
serializeJobSpec(const JobSpec &job)
{
    std::ostringstream oss;
    oss << kHeader << "\n";
    oss << "name " << job.name << "\n";
    oss << "batches";
    for (int64_t b : job.batches)
        oss << " " << b;
    oss << "\n";
    if (!job.schedules.empty()) {
        oss << "schedules";
        for (const std::string &s : job.schedules)
            oss << " " << s;
        oss << "\n";
    }
    oss << "out " << job.outPath << "\n";
    return oss.str();
}

std::vector<runtime::Scenario>
buildJobGrid(const JobSpec &job)
{
    return runtime::demoGrid(job.batches, job.schedules);
}

} // namespace fsmoe::service
