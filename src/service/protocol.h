/**
 * @file
 * Length-prefixed framing for the sweep service's worker and control
 * connections (docs/SERVICE.md).
 *
 * Every message on a service socket is one frame:
 *
 *   uint32 LE payload length  (type byte + body, < kMaxFrameBytes)
 *   1 type byte               (FrameType, a printable character)
 *   body bytes                (plain text; space-separated fields)
 *
 * The format is transport-agnostic — the daemon uses AF_UNIX
 * socketpairs to its forked workers today, but nothing here assumes
 * more than a reliable byte stream, so the same framing works over
 * TCP for cross-host workers later.
 *
 * Frames (direction, body):
 *   Hello      worker -> server   "<workerId>" — ready for work
 *   Config     server -> worker   "<heartbeatMs> <heartbeatTimeoutMs>"
 *   Assign     server -> worker   "<shardId> <attempt> <n> <idx>..."
 *   Heartbeat  worker -> server   "<workerId>" — liveness proof
 *   Result     worker -> server   "<gridIndex> <one-line JSON record>"
 *   EvalError  worker -> server   "<gridIndex> <message>"
 *   ShardDone  worker -> server   "<shardId>"
 *   Shutdown   server -> worker   "" — graceful drain request
 *
 * Determinism: framing adds no timestamps or randomness; a frame's
 * bytes are a pure function of its type and body.
 *
 * Thread-safety: FrameReader is a plain value type (one per
 * connection, single owner). sendFrame/readIntoReader are pure
 * functions of their arguments plus the fd.
 */
#ifndef FSMOE_SERVICE_PROTOCOL_H
#define FSMOE_SERVICE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace fsmoe::service {

/** Upper bound on one frame's payload; larger is a protocol error. */
constexpr size_t kMaxFrameBytes = 1u << 20;

/** Frame kinds; values are the printable on-wire type bytes. */
enum class FrameType : char
{
    Hello = 'H',
    Config = 'C',
    Assign = 'A',
    Heartbeat = 'B',
    Result = 'R',
    EvalError = 'E',
    ShardDone = 'D',
    Shutdown = 'S',
};

/** True when @p t is one of the FrameType values above. */
bool validFrameType(char t);

/** One protocol message. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::string body;
};

/** Serialise @p f to its on-wire bytes (length prefix included). */
std::string encodeFrame(const Frame &f);

/**
 * Blocking write of @p f to @p fd (retrying short writes / EINTR).
 * Returns false on any write error — for a worker socket that means
 * the peer is gone and the connection should be torn down.
 */
bool sendFrame(int fd, const Frame &f);

/**
 * Incremental frame decoder: feed() raw bytes as they arrive, then
 * next() pops complete frames in order. Partial frames stay buffered
 * until their remaining bytes arrive, so short reads never corrupt
 * the stream.
 */
class FrameReader
{
  public:
    /** Append @p n raw bytes from the stream. */
    void feed(const char *data, size_t n);

    /**
     * Pop the next complete frame into *out. Returns false when no
     * complete frame is buffered; a malformed stream (oversized
     * length, unknown type byte) sets *error and poisons the reader —
     * every later next() fails too, because framing can no longer be
     * trusted.
     */
    bool next(Frame *out, std::string *error);

    /** Bytes buffered but not yet consumed (tests / diagnostics). */
    size_t pendingBytes() const { return buf_.size(); }

  private:
    std::string buf_;
    bool poisoned_ = false;
    std::string poison_error_;
};

/**
 * Read whatever is available on @p fd into @p reader (one read(2)
 * call, retrying EINTR). Returns the byte count, 0 on EOF, -1 on
 * error.
 */
long readIntoReader(int fd, FrameReader *reader);

} // namespace fsmoe::service

#endif // FSMOE_SERVICE_PROTOCOL_H
