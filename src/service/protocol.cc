#include "service/protocol.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace fsmoe::service {

namespace {

bool
writeAll(int fd, const char *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        const ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(w);
    }
    return true;
}

} // namespace

bool
validFrameType(char t)
{
    switch (static_cast<FrameType>(t)) {
    case FrameType::Hello:
    case FrameType::Config:
    case FrameType::Assign:
    case FrameType::Heartbeat:
    case FrameType::Result:
    case FrameType::EvalError:
    case FrameType::ShardDone:
    case FrameType::Shutdown:
        return true;
    default:
        return false;
    }
}

std::string
encodeFrame(const Frame &f)
{
    const uint32_t len = static_cast<uint32_t>(f.body.size() + 1);
    std::string out;
    out.reserve(4 + len);
    // Length is serialised byte-by-byte so the wire format is
    // little-endian on every host, not just x86.
    out.push_back(static_cast<char>(len & 0xff));
    out.push_back(static_cast<char>((len >> 8) & 0xff));
    out.push_back(static_cast<char>((len >> 16) & 0xff));
    out.push_back(static_cast<char>((len >> 24) & 0xff));
    out.push_back(static_cast<char>(f.type));
    out += f.body;
    return out;
}

bool
sendFrame(int fd, const Frame &f)
{
    const std::string wire = encodeFrame(f);
    return writeAll(fd, wire.data(), wire.size());
}

void
FrameReader::feed(const char *data, size_t n)
{
    buf_.append(data, n);
}

bool
FrameReader::next(Frame *out, std::string *error)
{
    if (poisoned_) {
        if (error != nullptr)
            *error = poison_error_;
        return false;
    }
    if (buf_.size() < 4)
        return false;
    const auto b = [&](size_t i) {
        return static_cast<uint32_t>(static_cast<unsigned char>(buf_[i]));
    };
    const uint32_t len = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
    if (len == 0 || len > kMaxFrameBytes) {
        poisoned_ = true;
        poison_error_ =
            "protocol error: frame length " + std::to_string(len) +
            " outside (0, " + std::to_string(kMaxFrameBytes) + "]";
        if (error != nullptr)
            *error = poison_error_;
        return false;
    }
    if (buf_.size() < 4 + static_cast<size_t>(len))
        return false;
    const char type = buf_[4];
    if (!validFrameType(type)) {
        poisoned_ = true;
        poison_error_ = std::string("protocol error: unknown frame type '") +
                        type + "'";
        if (error != nullptr)
            *error = poison_error_;
        return false;
    }
    out->type = static_cast<FrameType>(type);
    out->body.assign(buf_, 5, len - 1);
    buf_.erase(0, 4 + static_cast<size_t>(len));
    return true;
}

long
readIntoReader(int fd, FrameReader *reader)
{
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n > 0)
            reader->feed(buf, static_cast<size_t>(n));
        return static_cast<long>(n);
    }
}

} // namespace fsmoe::service
