/**
 * @file
 * Plain-text sweep job specs for the service layer.
 *
 * A job names a sweep over the shared demo grid family (see
 * runtime/scenario.h demoGrid): which batch sizes, which schedule
 * specs, and where the merged result file must land. Jobs travel as
 * small plain-text documents so they can be written by hand, diffed
 * in CI, and submitted by `fsmoe_submit` with nothing but a
 * filesystem:
 *
 *   fsmoe-job v1
 *   name demo
 *   batches 1 2
 *   schedules FSMoE Tutel
 *   out /path/to/result.json
 *
 * `name` is an identifier ([A-Za-z0-9_-]); `batches` is a non-empty
 * integer list; `schedules` is optional (absent = every registered
 * schedule — the blessed demo grid); `out` is the mandatory merged
 * result destination. Unknown keys are errors, not warnings: a typo'd
 * key silently changing the sweep would poison the byte-identity
 * contract downstream.
 *
 * Determinism: serialize() emits keys in a fixed order, so
 * parse(serialize(j)) == j and job files are diffable.
 *
 * Thread-safety: plain value types and pure functions.
 */
#ifndef FSMOE_SERVICE_JOB_H
#define FSMOE_SERVICE_JOB_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scenario.h"

namespace fsmoe::service {

/** One submitted sweep job. */
struct JobSpec
{
    std::string name;             ///< Job identifier ([A-Za-z0-9_-]).
    std::vector<int64_t> batches; ///< Batch axis; must be non-empty.
    /// Schedule specs; empty = every registered schedule (the demo
    /// grid default, which is what the blessed baseline sweeps).
    std::vector<std::string> schedules;
    std::string outPath; ///< Merged result destination (JSON).
};

/**
 * Parse a plain-text job document. Returns false with *error naming
 * the offending line on bad version lines, unknown keys, malformed
 * integers, or missing mandatory fields; *out is untouched on
 * failure.
 */
bool parseJobSpec(const std::string &text, JobSpec *out,
                  std::string *error);

/** Serialise @p job in canonical key order (round-trips via parse). */
std::string serializeJobSpec(const JobSpec &job);

/**
 * The scenario grid @p job sweeps: demoGrid(batches, schedules).
 * Deterministic — every process that builds a job's grid gets the
 * same scenarios in the same order, which is what lets daemon,
 * workers, and the resume path agree on grid indices.
 */
std::vector<runtime::Scenario> buildJobGrid(const JobSpec &job);

} // namespace fsmoe::service

#endif // FSMOE_SERVICE_JOB_H
