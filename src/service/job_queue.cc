#include "service/job_queue.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/fileio.h"

namespace fsmoe::service {

namespace {

bool
ensureDir(const std::string &path, std::string *error)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    if (error != nullptr)
        *error = "cannot create directory '" + path +
                 "': " + std::strerror(errno);
    return false;
}

std::string
formatId(unsigned seq, const std::string &name)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%04u", seq);
    return std::string(buf) + "-" + name;
}

/** The numeric prefix of "<seq>-<name>", or 0 when malformed. */
unsigned
idSequence(const std::string &id)
{
    const size_t dash = id.find('-');
    if (dash == std::string::npos)
        return 0;
    unsigned seq = 0;
    for (size_t i = 0; i < dash; ++i) {
        const char c = id[i];
        if (c < '0' || c > '9')
            return 0;
        seq = seq * 10 + static_cast<unsigned>(c - '0');
    }
    return seq;
}

} // namespace

std::string
JobQueue::jobsDir() const
{
    return dir_ + "/jobs";
}

std::string
JobQueue::specPath(const std::string &jobId) const
{
    return jobsDir() + "/" + jobId + ".spec";
}

std::string
JobQueue::statePath(const std::string &jobId) const
{
    return jobsDir() + "/" + jobId + ".state";
}

std::string
JobQueue::journalPath(const std::string &jobId) const
{
    return jobsDir() + "/" + jobId + ".journal";
}

bool
JobQueue::open(const std::string &dir, std::string *error)
{
    dir_ = dir;
    return ensureDir(dir_, error) && ensureDir(jobsDir(), error);
}

bool
JobQueue::submit(const JobSpec &job, std::string *jobId, std::string *error)
{
    // Find the next free sequence number, then race for it with
    // O_EXCL — the claim file is the cross-process reservation, so
    // two concurrent submitters can never share an id. Claims are
    // counted even when their state never committed (a submitter died
    // mid-submit): the dead claim's sequence number stays burned, so
    // committed ids keep sorting in submission order.
    unsigned seq = 1;
    if (DIR *d = ::opendir(jobsDir().c_str())) {
        for (struct dirent *e = ::readdir(d); e != nullptr;
             e = ::readdir(d)) {
            const std::string name = e->d_name;
            const std::string suffix = ".claim";
            if (name.size() > suffix.size() &&
                name.compare(name.size() - suffix.size(), suffix.size(),
                             suffix) == 0)
                seq = std::max(
                    seq,
                    idSequence(name.substr(0, name.size() - suffix.size())) +
                        1);
        }
        ::closedir(d);
    }
    for (int tries = 0; tries < 10000; ++tries, ++seq) {
        const std::string id = formatId(seq, job.name);
        const std::string claim = jobsDir() + "/" + id + ".claim";
        const int fd =
            ::open(claim.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0666);
        if (fd < 0) {
            if (errno == EEXIST)
                continue; // someone else holds this id; try the next
            if (error != nullptr)
                *error = "cannot claim job id '" + id +
                         "': " + std::strerror(errno);
            return false;
        }
        ::close(fd);
        if (!fileio::atomicWriteFile(specPath(id), serializeJobSpec(job),
                                     error))
            return false;
        // State lands last: its atomic rename is the commit point
        // that makes the job visible to the daemon.
        if (!fileio::atomicWriteFile(statePath(id), "queued\n", error))
            return false;
        if (jobId != nullptr)
            *jobId = id;
        return true;
    }
    if (error != nullptr)
        *error = "cannot claim a job id (queue directory full?)";
    return false;
}

std::vector<JobEntry>
JobQueue::scan(std::string *error) const
{
    std::vector<JobEntry> entries;
    DIR *d = ::opendir(jobsDir().c_str());
    if (d == nullptr) {
        if (error != nullptr)
            *error = "cannot open queue directory '" + jobsDir() +
                     "': " + std::strerror(errno);
        return entries;
    }
    for (struct dirent *e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
        const std::string name = e->d_name;
        const std::string suffix = ".state";
        if (name.size() <= suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        JobEntry entry;
        entry.id = name.substr(0, name.size() - suffix.size());
        std::string text;
        if (!fileio::readTextFile(statePath(entry.id), &text, nullptr))
            continue; // raced with a concurrent rewrite; next scan sees it
        while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
            text.pop_back();
        const size_t space = text.find(' ');
        entry.state = text.substr(0, space);
        if (space != std::string::npos)
            entry.error = text.substr(space + 1);
        entries.push_back(std::move(entry));
    }
    ::closedir(d);
    std::sort(entries.begin(), entries.end(),
              [](const JobEntry &a, const JobEntry &b) { return a.id < b.id; });
    return entries;
}

bool
JobQueue::loadSpec(const std::string &jobId, JobSpec *job,
                   std::string *error) const
{
    std::string text;
    if (!fileio::readTextFile(specPath(jobId), &text, error))
        return false;
    return parseJobSpec(text, job, error);
}

bool
JobQueue::setState(const std::string &jobId, const std::string &state,
                   std::string *error)
{
    return fileio::atomicWriteFile(statePath(jobId), state + "\n", error);
}

} // namespace fsmoe::service
