/**
 * @file
 * Crash-safe persistent job queue for the sweep service.
 *
 * The queue is a directory, not a database: every job is three files
 * under `<dir>/jobs/`, each written atomically (base/fileio), so the
 * queue survives a SIGKILL of daemon or client at any instant with no
 * recovery scan beyond "read what's there":
 *
 *   <id>.claim    empty; O_EXCL-created to reserve the id (the one
 *                 deliberately non-atomic write in the layer — an
 *                 empty file has no torn state to observe)
 *   <id>.spec     the plain-text JobSpec (atomic rename)
 *   <id>.state    one line: "queued" | "active" | "done" |
 *                 "failed <message>" (atomic rename)
 *   <id>.journal  the sweep's append-only result journal
 *                 (runtime/journal.h), created by the daemon
 *
 * Ids are `<seq>-<name>` with a zero-padded sequence number, so
 * lexicographic order is submission order and `ls` shows the queue.
 *
 * Submission protocol (fsmoe_submit): claim an id, atomically write
 * the spec, then atomically write state "queued". The daemon only
 * picks up jobs whose state file exists and reads "queued" — a client
 * killed mid-submit leaves a claim with no state, which is inert
 * debris, never a half-submitted job.
 *
 * Crash recovery (fsmoe_sweepd startup): jobs found in state "active"
 * were in flight when a previous daemon died; they are re-run with
 * `resume` set, replaying `<id>.journal` so finished scenarios are
 * not re-simulated and the merged output still lands byte-identical.
 *
 * Thread-safety: JobQueue is used by one thread at a time per
 * process; cross-process safety comes from O_EXCL claims and atomic
 * renames, not locks.
 */
#ifndef FSMOE_SERVICE_JOB_QUEUE_H
#define FSMOE_SERVICE_JOB_QUEUE_H

#include <string>
#include <vector>

#include "service/job.h"

namespace fsmoe::service {

/** One queue entry as seen by a scan. */
struct JobEntry
{
    std::string id;    ///< "<seq>-<name>".
    std::string state; ///< First word of the state file.
    std::string error; ///< Remainder of a "failed" state line.
};

class JobQueue
{
  public:
    /**
     * Bind to @p dir, creating it (and its jobs/ subdirectory) when
     * missing. Returns false with *error when the directories cannot
     * be created or are not writable.
     */
    bool open(const std::string &dir, std::string *error);

    /**
     * Persist @p job as a new queue entry in state "queued". On
     * success *jobId names the entry. Safe against concurrent
     * submitters (O_EXCL claim) and against the submitter dying at
     * any point (see file comment).
     */
    bool submit(const JobSpec &job, std::string *jobId, std::string *error);

    /**
     * Every job in the queue, sorted by id (= submission order).
     * Claims without a state file are skipped — they are either
     * mid-submission or dead submitters' debris.
     */
    std::vector<JobEntry> scan(std::string *error) const;

    /** Load the spec of @p jobId. */
    bool loadSpec(const std::string &jobId, JobSpec *job,
                  std::string *error) const;

    /**
     * Atomically set @p jobId's state line ("active", "done",
     * "failed <message>", ...).
     */
    bool setState(const std::string &jobId, const std::string &state,
                  std::string *error);

    /** Paths of a job's files (valid whether or not they exist). */
    std::string specPath(const std::string &jobId) const;
    std::string statePath(const std::string &jobId) const;
    std::string journalPath(const std::string &jobId) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string jobsDir() const;

    std::string dir_;
};

} // namespace fsmoe::service

#endif // FSMOE_SERVICE_JOB_QUEUE_H
