#include "service/sweep_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/interrupt.h"
#include "base/logging.h"
#include "base/stats.h"
#include "runtime/fault.h"
#include "runtime/journal.h"
#include "runtime/result_store.h"
#include "runtime/worker.h"
#include "service/protocol.h"

namespace fsmoe::service {

namespace {

namespace fault = runtime::fault;
using runtime::Scenario;
using runtime::SweepResult;
using Clock = std::chrono::steady_clock;

// ===================================================== worker (child)

/** Child-process state built up from the Config frame. */
struct WorkerContext
{
    int fd = -1;
    std::string name;
    int heartbeatMs = 50;
    int heartbeatTimeoutMs = 2000;
    std::vector<Scenario> grid;
};

/** In a worker a failed send means the supervisor is gone: just die. */
void
sendOrDie(int fd, FrameType type, const std::string &body)
{
    if (!sendFrame(fd, Frame{type, body}))
        ::_exit(1);
}

/**
 * Drain buffered + immediately-readable frames between scenarios so a
 * Shutdown issued mid-shard stops the worker at the next scenario
 * boundary. Returns true when a Shutdown was seen.
 */
bool
shutdownPending(int fd, FrameReader *reader)
{
    for (;;) {
        Frame f;
        std::string error;
        while (reader->next(&f, &error)) {
            if (f.type == FrameType::Shutdown)
                return true;
        }
        if (!error.empty())
            ::_exit(1); // framing broke; the stream is unusable
        struct pollfd pfd = {fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 0);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            ::_exit(1);
        }
        if (pr == 0)
            return false;
        if (readIntoReader(fd, reader) <= 0)
            ::_exit(0); // EOF: supervisor died; PDEATHSIG races this
    }
}

void
handleConfig(WorkerContext *ctx, const std::string &body)
{
    const size_t nl = body.find('\n');
    if (nl == std::string::npos)
        ::_exit(1);
    std::istringstream head(body.substr(0, nl));
    if (!(head >> ctx->heartbeatMs >> ctx->heartbeatTimeoutMs))
        ::_exit(1);
    JobSpec job;
    std::string error;
    if (!parseJobSpec(body.substr(nl + 1), &job, &error))
        ::_exit(1);
    // The grid is rebuilt, not shipped: buildJobGrid is deterministic,
    // so supervisor and every worker agree on what each index means.
    ctx->grid = buildJobGrid(job);
}

/**
 * Evaluate one Assign frame's scenarios, streaming a Result (or
 * EvalError) per index. @p shutdown is set when a Shutdown arrived
 * mid-shard (the shard is left unfinished; the supervisor is draining
 * and will not reassign it).
 */
void
runAssignedShard(WorkerContext &ctx, const std::string &body,
                 FrameReader *reader, bool *shutdown)
{
    std::istringstream iss(body);
    int shardId = -1;
    int attempt = 1;
    size_t n = 0;
    if (!(iss >> shardId >> attempt >> n))
        ::_exit(1);
    std::vector<size_t> indices(n);
    for (size_t i = 0; i < n; ++i)
        if (!(iss >> indices[i]))
            ::_exit(1);

    for (size_t idx : indices) {
        if (shutdownPending(ctx.fd, reader)) {
            *shutdown = true;
            return;
        }
        if (idx >= ctx.grid.size())
            ::_exit(1); // supervisor and worker disagree on the grid
        const std::string label = ctx.grid[idx].label();

        // Injection sites, each proving one supervisor failover path
        // (runtime/fault.h). Keyed on (label, shard attempt) so a
        // reassigned shard makes fresh — but still deterministic —
        // decisions.
        if (fault::shouldInject(fault::Site::WorkerKill, label, attempt))
            ::_exit(137); // SIGKILL-style: no goodbye on the socket
        if (fault::shouldInject(fault::Site::TransportDisconnect, label,
                                attempt)) {
            ::close(ctx.fd); // EOF reaches the supervisor mid-shard
            ::_exit(1);
        }
        if (fault::shouldInject(fault::Site::TransportDelay, label,
                                attempt)) {
            // Stall past the watchdog deadline; the supervisor should
            // SIGKILL us mid-sleep and reassign the shard.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2 * ctx.heartbeatTimeoutMs));
        }
        if (!fault::shouldInject(fault::Site::TransportDrop, label, attempt))
            sendOrDie(ctx.fd, FrameType::Heartbeat, ctx.name);

        try {
            const SweepResult r =
                runtime::evaluateScenario(ctx.grid[idx], attempt);
            sendOrDie(ctx.fd, FrameType::Result,
                      std::to_string(idx) + " " + runtime::toJsonRecord(r));
        } catch (const std::exception &e) {
            sendOrDie(ctx.fd, FrameType::EvalError,
                      std::to_string(idx) + " " + e.what());
        }
    }
    sendOrDie(ctx.fd, FrameType::ShardDone, std::to_string(shardId));
}

[[noreturn]] void
workerMain(int fd, int workerId)
{
    // Die with the supervisor: a daemon SIGKILL must not leak workers.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1)
        ::_exit(1); // supervisor died before the prctl landed
    interrupt::clearStop(); // a stop meant for the daemon, not us

    WorkerContext ctx;
    ctx.fd = fd;
    ctx.name = "w" + std::to_string(workerId);
    sendOrDie(fd, FrameType::Hello, ctx.name);

    FrameReader reader;
    for (;;) {
        struct pollfd pfd = {fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, ctx.heartbeatMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            ::_exit(1);
        }
        if (pr == 0) {
            // Idle: volunteer a beat so the supervisor can tell an
            // idle worker from a dead one.
            sendOrDie(fd, FrameType::Heartbeat, ctx.name);
            continue;
        }
        if (readIntoReader(fd, &reader) <= 0)
            ::_exit(0); // supervisor closed the pair: clean exit
        for (;;) {
            Frame f;
            std::string error;
            if (!reader.next(&f, &error)) {
                if (!error.empty())
                    ::_exit(1);
                break;
            }
            bool shutdown = false;
            switch (f.type) {
            case FrameType::Config:
                handleConfig(&ctx, f.body);
                break;
            case FrameType::Assign:
                if (ctx.grid.empty())
                    ::_exit(1); // Assign before Config is a bug
                runAssignedShard(ctx, f.body, &reader, &shutdown);
                break;
            case FrameType::Shutdown:
                shutdown = true;
                break;
            default:
                break; // supervisor-bound frame types: ignore
            }
            if (shutdown)
                ::_exit(0);
        }
    }
}

// ================================================= supervisor (parent)

struct WorkerSlot
{
    pid_t pid = -1;
    int fd = -1;
    int workerId = -1;
    FrameReader reader;
    bool alive = false;
    bool ready = false; ///< Hello received; eligible for assignment.
    int shard = -1;     ///< Active shard id, -1 when idle.
    Clock::time_point lastBeat;
};

enum class ShardState
{
    Pending,
    Active,
    Done,
};

struct Shard
{
    std::vector<size_t> remaining; ///< Grid indices not yet finished.
    int attempts = 0;              ///< Assignment attempts started.
    ShardState state = ShardState::Pending;
    Clock::time_point notBefore; ///< Backoff gate for reassignment.
};

/**
 * One job's supervision state. Strictly single-threaded: fork() from
 * a threaded process can deadlock the child on locks some other
 * thread held at fork time, so all concurrency here is between
 * processes, never threads.
 */
class JobRun
{
  public:
    JobRun(const ServerOptions &opts, const JobSpec &job)
        : opts_(opts), job_(job)
    {
    }

    bool run(const std::string &journalPath, bool resume,
             JobOutcome *outcome);

  private:
    void buildShards();
    void spawnWorker(WorkerSlot &slot);
    void respawnWorkers();
    void assignShards();
    void checkWatchdogs();
    void reapWorkers();
    void pollSockets(int timeoutMs);
    void processFrames(WorkerSlot &slot);
    void handleFrame(WorkerSlot &slot, const Frame &f);
    void appendResult(size_t idx, const SweepResult &r);
    void workerGone(WorkerSlot &slot, const char *why);
    void killWorker(WorkerSlot &slot, const char *why);
    void finishOrReassign(int shardId);
    void quarantineShard(int shardId);
    void shutdownWorkers(bool graceful);
    bool allShardsDone() const;

    const ServerOptions &opts_;
    const JobSpec &job_;
    std::vector<Scenario> grid_;
    std::vector<SweepResult> results_;
    std::vector<char> done_;
    std::map<size_t, std::string> lastError_;
    runtime::Journal journal_;
    std::vector<Shard> shards_;
    std::vector<WorkerSlot> workers_;
    int spawned_ = 0;
    int restarts_ = 0;
    size_t resumed_ = 0;
    std::string failed_; ///< Non-empty aborts the job with this error.
};

void
JobRun::buildShards()
{
    std::vector<size_t> pending;
    for (size_t i = 0; i < grid_.size(); ++i)
        if (done_[i] == 0)
            pending.push_back(i);
    if (pending.empty())
        return;
    // Contiguous slices, the same arithmetic as shardScenarios(): a
    // lost worker forfeits at most one slice, and slice boundaries are
    // deterministic for a given (grid, worker count).
    size_t count = static_cast<size_t>(opts_.numWorkers) *
                   static_cast<size_t>(opts_.shardsPerWorker);
    count = std::max<size_t>(1, std::min(count, pending.size()));
    shards_.resize(count);
    for (size_t k = 0; k < count; ++k) {
        const size_t lo = pending.size() * k / count;
        const size_t hi = pending.size() * (k + 1) / count;
        shards_[k].remaining.assign(pending.begin() + static_cast<long>(lo),
                                    pending.begin() + static_cast<long>(hi));
    }
}

void
JobRun::spawnWorker(WorkerSlot &slot)
{
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        failed_ = std::string("socketpair failed: ") + std::strerror(errno);
        return;
    }
    const int workerId = ++spawned_;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        failed_ = std::string("fork failed: ") + std::strerror(errno);
        return;
    }
    if (pid == 0) {
        ::close(sv[0]);
        // Siblings' supervisor-side sockets leak into this child via
        // fork; close them so a sibling's EOF is not held open here.
        for (const WorkerSlot &other : workers_)
            if (other.alive && other.fd >= 0)
                ::close(other.fd);
        workerMain(sv[1], workerId);
    }
    ::close(sv[1]);
    slot.pid = pid;
    slot.fd = sv[0];
    slot.workerId = workerId;
    slot.reader = FrameReader{};
    slot.alive = true;
    slot.ready = false;
    slot.shard = -1;
    slot.lastBeat = Clock::now();
    stats::counter("service.workers.spawned").inc();
}

void
JobRun::respawnWorkers()
{
    for (WorkerSlot &slot : workers_) {
        if (slot.alive || !failed_.empty())
            continue;
        if (restarts_ >= opts_.maxWorkerRestarts) {
            failed_ = "worker restart budget exhausted (" +
                      std::to_string(opts_.maxWorkerRestarts) +
                      " restarts)";
            return;
        }
        spawnWorker(slot);
        if (slot.alive && slot.workerId > opts_.numWorkers) {
            ++restarts_;
            stats::counter("service.workers.restarted").inc();
        }
    }
}

void
JobRun::assignShards()
{
    const auto now = Clock::now();
    for (WorkerSlot &slot : workers_) {
        if (!slot.alive || !slot.ready || slot.shard >= 0)
            continue;
        int pick = -1;
        for (size_t s = 0; s < shards_.size(); ++s) {
            if (shards_[s].state == ShardState::Pending &&
                shards_[s].notBefore <= now) {
                pick = static_cast<int>(s);
                break;
            }
        }
        if (pick < 0)
            return;
        Shard &sh = shards_[static_cast<size_t>(pick)];
        sh.attempts += 1;
        sh.state = ShardState::Active;
        std::ostringstream body;
        body << pick << " " << sh.attempts << " " << sh.remaining.size();
        for (size_t idx : sh.remaining)
            body << " " << idx;
        slot.shard = pick;
        if (!sendFrame(slot.fd, Frame{FrameType::Assign, body.str()})) {
            // The worker died between frames; the attempt never ran,
            // so hand it back without burning retry budget.
            sh.attempts -= 1;
            killWorker(slot, "assign write failed");
            continue;
        }
        stats::counter("service.shards.assigned").inc();
    }
}

void
JobRun::appendResult(size_t idx, const SweepResult &r)
{
    // The append is fsync'd (and honours the torn / kill-after
    // injection sites — the latter is how CI kills the daemon itself
    // mid-sweep); only then does the in-memory state advance, so a
    // daemon death never loses an acknowledged result.
    std::string error;
    if (!journal_.append(idx, r, &error))
        FSMOE_WARN(error);
    results_[idx] = r;
    done_[idx] = 1;
}

void
JobRun::handleFrame(WorkerSlot &slot, const Frame &f)
{
    slot.lastBeat = Clock::now();
    switch (f.type) {
    case FrameType::Hello: {
        slot.ready = true;
        const std::string config =
            std::to_string(opts_.heartbeatMs) + " " +
            std::to_string(opts_.heartbeatTimeoutMs) + "\n" +
            serializeJobSpec(job_);
        if (!sendFrame(slot.fd, Frame{FrameType::Config, config}))
            killWorker(slot, "config write failed");
        break;
    }
    case FrameType::Heartbeat:
        stats::counter("service.heartbeats.received").inc();
        break;
    case FrameType::Result: {
        const size_t space = f.body.find(' ');
        if (space == std::string::npos) {
            killWorker(slot, "malformed Result frame");
            break;
        }
        const size_t idx = std::strtoull(f.body.c_str(), nullptr, 10);
        SweepResult r;
        std::string error;
        if (idx >= grid_.size() ||
            !runtime::parseJsonRecord(f.body.substr(space + 1), &r,
                                      &error)) {
            killWorker(slot, "unparsable Result frame");
            break;
        }
        // A shard that was reassigned while its original worker's last
        // frames were in flight can deliver an index twice; evaluation
        // is pure, so the bytes match and the first one wins.
        if (done_[idx] == 0) {
            appendResult(idx, r);
            stats::counter("service.results.streamed").inc();
        }
        if (slot.shard >= 0) {
            auto &rem = shards_[static_cast<size_t>(slot.shard)].remaining;
            const auto it = std::find(rem.begin(), rem.end(), idx);
            if (it != rem.end())
                rem.erase(it);
        }
        break;
    }
    case FrameType::EvalError: {
        const size_t space = f.body.find(' ');
        const size_t idx = std::strtoull(f.body.c_str(), nullptr, 10);
        if (space != std::string::npos && idx < grid_.size())
            lastError_[idx] = f.body.substr(space + 1);
        stats::counter("service.scenario.evalErrors").inc();
        break;
    }
    case FrameType::ShardDone: {
        const int shardId = slot.shard;
        slot.shard = -1;
        if (shardId >= 0)
            finishOrReassign(shardId);
        break;
    }
    default:
        break; // worker-bound frame types: ignore
    }
}

void
JobRun::finishOrReassign(int shardId)
{
    Shard &sh = shards_[static_cast<size_t>(shardId)];
    if (sh.remaining.empty()) {
        sh.state = ShardState::Done;
        return;
    }
    if (sh.attempts >= opts_.maxShardAttempts) {
        quarantineShard(shardId);
        return;
    }
    runtime::RobustOptions backoff;
    backoff.backoffBaseMs = opts_.backoffBaseMs;
    backoff.backoffMaxMs = opts_.backoffMaxMs;
    sh.state = ShardState::Pending;
    sh.notBefore = Clock::now() + std::chrono::milliseconds(
                                      retryBackoffMs(backoff, sh.attempts));
    stats::counter("service.shards.reassigned").inc();
    FSMOE_VERBOSE("shard ", shardId, " reassigned (attempt ", sh.attempts,
                  ", ", sh.remaining.size(), " scenarios left)");
}

void
JobRun::quarantineShard(int shardId)
{
    Shard &sh = shards_[static_cast<size_t>(shardId)];
    for (size_t idx : sh.remaining) {
        const auto it = lastError_.find(idx);
        const std::string msg =
            it != lastError_.end()
                ? it->second
                : "shard abandoned after " +
                      std::to_string(opts_.maxShardAttempts) +
                      " assignment attempts";
        appendResult(idx, runtime::failureRecord(
                              grid_[idx], runtime::ResultStatus::Quarantined,
                              sh.attempts, msg));
    }
    FSMOE_WARN("shard ", shardId, " quarantined after ", sh.attempts,
               " attempts (", sh.remaining.size(), " scenarios)");
    sh.remaining.clear();
    sh.state = ShardState::Done;
    stats::counter("service.shards.quarantined").inc();
}

void
JobRun::workerGone(WorkerSlot &slot, const char *why)
{
    // Mark the slot dead *first*: the salvage below re-enters
    // handleFrame, whose failure paths call killWorker, and only the
    // alive flag keeps that from recursing back here.
    slot.alive = false;
    slot.ready = false;
    // Salvage frames the worker streamed before dying — results that
    // already reached our buffer are real and must not be re-run.
    // Framing errors just end the salvage; the worker is gone anyway.
    for (;;) {
        Frame f;
        std::string error;
        if (!slot.reader.next(&f, &error))
            break;
        handleFrame(slot, f);
    }
    if (slot.fd >= 0)
        ::close(slot.fd);
    slot.fd = -1;
    const int shardId = slot.shard;
    slot.shard = -1;
    if (shardId >= 0) {
        FSMOE_VERBOSE("worker w", slot.workerId, " lost (", why,
                      ") holding shard ", shardId);
        finishOrReassign(shardId);
    }
}

void
JobRun::killWorker(WorkerSlot &slot, const char *why)
{
    if (!slot.alive)
        return;
    ::kill(slot.pid, SIGKILL);
    int status = 0;
    while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
    }
    workerGone(slot, why);
}

void
JobRun::checkWatchdogs()
{
    const auto now = Clock::now();
    for (WorkerSlot &slot : workers_) {
        if (!slot.alive || slot.shard < 0)
            continue;
        if (now - slot.lastBeat >
            std::chrono::milliseconds(opts_.heartbeatTimeoutMs)) {
            stats::counter("service.heartbeats.missed").inc();
            FSMOE_WARN("worker w", slot.workerId, " missed its heartbeat "
                       "deadline (", opts_.heartbeatTimeoutMs,
                       " ms); killing and reassigning shard ", slot.shard);
            killWorker(slot, "heartbeat timeout");
        }
    }
}

void
JobRun::reapWorkers()
{
    for (WorkerSlot &slot : workers_) {
        if (!slot.alive)
            continue;
        int status = 0;
        const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
        if (r == slot.pid)
            workerGone(slot, "exited");
    }
}

void
JobRun::processFrames(WorkerSlot &slot)
{
    for (;;) {
        Frame f;
        std::string error;
        if (!slot.reader.next(&f, &error)) {
            if (!error.empty() && slot.alive) {
                FSMOE_WARN("worker w", slot.workerId, ": ", error);
                killWorker(slot, "protocol error");
            }
            return;
        }
        handleFrame(slot, f);
        if (!slot.alive)
            return; // handleFrame tore the worker down
    }
}

void
JobRun::pollSockets(int timeoutMs)
{
    std::vector<struct pollfd> pfds;
    std::vector<size_t> slotOf;
    for (size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].alive)
            continue;
        pfds.push_back({workers_[i].fd, POLLIN, 0});
        slotOf.push_back(i);
    }
    if (pfds.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(timeoutMs));
        return;
    }
    const int pr = ::poll(pfds.data(), pfds.size(), timeoutMs);
    if (pr <= 0)
        return; // timeout, or EINTR (the stop flag is checked upstream)
    for (size_t k = 0; k < pfds.size(); ++k) {
        if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
            continue;
        WorkerSlot &slot = workers_[slotOf[k]];
        if (!slot.alive)
            continue; // torn down while handling an earlier fd
        const long n = readIntoReader(slot.fd, &slot.reader);
        if (n > 0) {
            processFrames(slot);
        } else {
            // EOF or read error: the worker closed its end (injected
            // disconnect) or died. Make death official, then salvage.
            killWorker(slot, n == 0 ? "socket EOF" : "socket read error");
        }
    }
}

void
JobRun::shutdownWorkers(bool graceful)
{
    if (graceful) {
        for (WorkerSlot &slot : workers_)
            if (slot.alive)
                (void)sendFrame(slot.fd, Frame{FrameType::Shutdown, ""});
        // Give workers one heartbeat-timeout to finish their current
        // scenario and exit, salvaging results they stream meanwhile.
        const auto deadline =
            Clock::now() +
            std::chrono::milliseconds(opts_.heartbeatTimeoutMs);
        while (Clock::now() < deadline) {
            bool any = false;
            for (WorkerSlot &slot : workers_)
                any = any || slot.alive;
            if (!any)
                break;
            reapWorkers();
            pollSockets(20);
        }
    }
    for (WorkerSlot &slot : workers_)
        killWorker(slot, "shutdown");
}

bool
JobRun::allShardsDone() const
{
    for (const Shard &sh : shards_)
        if (sh.state != ShardState::Done)
            return false;
    return true;
}

bool
JobRun::run(const std::string &journalPath, bool resume,
            JobOutcome *outcome)
{
    *outcome = JobOutcome{};
    grid_ = buildJobGrid(job_);
    outcome->scenarios = grid_.size();
    results_.resize(grid_.size());
    done_.assign(grid_.size(), 0);

    std::string error;
    if (!journal_.open(journalPath, grid_, resume, &error)) {
        outcome->error = error;
        return false;
    }
    for (const auto &entry : journal_.recovered()) {
        // Same recovery rule as runRobust: only Ok records are done;
        // failed/quarantined ones get a fresh chance on this run.
        if (entry.first < grid_.size() &&
            entry.second.status == runtime::ResultStatus::Ok) {
            results_[entry.first] = entry.second;
            done_[entry.first] = 1;
            ++resumed_;
            stats::counter("service.results.resumed").inc();
        }
    }

    buildShards();
    if (!shards_.empty()) {
        workers_.resize(static_cast<size_t>(std::max(1, opts_.numWorkers)));
        for (WorkerSlot &slot : workers_) {
            spawnWorker(slot);
            if (!failed_.empty())
                break;
        }
        while (failed_.empty() && !allShardsDone()) {
            if (interrupt::stopRequested()) {
                shutdownWorkers(/*graceful=*/true);
                journal_.close();
                outcome->interrupted = true;
                outcome->resumed = resumed_;
                outcome->error = "interrupted by signal";
                return false;
            }
            reapWorkers();
            checkWatchdogs();
            respawnWorkers();
            assignShards();
            pollSockets(std::max(1, opts_.heartbeatMs / 2));
        }
        shutdownWorkers(/*graceful=*/failed_.empty());
    }
    journal_.close();
    if (!failed_.empty()) {
        outcome->error = failed_;
        return false;
    }

    if (!runtime::writeResultsJson(job_.outPath, results_)) {
        outcome->error = "cannot write merged results to " + job_.outPath;
        return false;
    }
    outcome->ok = true;
    outcome->resumed = resumed_;
    for (const SweepResult &r : results_) {
        if (r.status == runtime::ResultStatus::Ok)
            ++outcome->okResults;
        else
            ++outcome->quarantined;
    }
    return true;
}

} // namespace

bool
SweepServer::runJob(const JobSpec &job, const std::string &journalPath,
                    bool resume, JobOutcome *outcome)
{
    fault::configureFromEnv();
    JobRun run(opts_, job);
    return run.run(journalPath, resume, outcome);
}

int
SweepServer::serve(JobQueue &queue, bool once)
{
    interrupt::installStopHandlers();
    fault::configureFromEnv();
    for (;;) {
        if (interrupt::stopRequested())
            return interrupt::stopExitCode();
        std::string error;
        const std::vector<JobEntry> entries = queue.scan(&error);
        if (!error.empty())
            FSMOE_WARN(error);
        bool ranJob = false;
        for (const JobEntry &entry : entries) {
            if (interrupt::stopRequested())
                return interrupt::stopExitCode();
            if (entry.state != "queued" && entry.state != "active")
                continue;
            JobSpec job;
            if (!queue.loadSpec(entry.id, &job, &error)) {
                FSMOE_WARN("job ", entry.id, ": ", error);
                (void)queue.setState(entry.id, "failed " + error, &error);
                continue;
            }
            const std::string journal = queue.journalPath(entry.id);
            // An "active" job is a previous daemon's unfinished work;
            // either way an existing journal means resume.
            const bool resume = ::access(journal.c_str(), F_OK) == 0;
            stats::counter(entry.state == "queued"
                               ? "service.jobs.queued"
                               : "service.jobs.recovered")
                .inc();
            if (!queue.setState(entry.id, "active", &error))
                FSMOE_WARN(error);
            stats::gauge("service.jobs.active").set(1.0);
            std::printf("job %s: running (%s%s)\n", entry.id.c_str(),
                        entry.state.c_str(),
                        resume ? ", resuming from journal" : "");
            std::fflush(stdout);
            JobOutcome out;
            runJob(job, journal, resume, &out);
            stats::gauge("service.jobs.active").set(0.0);
            ranJob = true;
            if (out.ok) {
                stats::counter("service.jobs.done").inc();
                if (!queue.setState(entry.id, "done", &error))
                    FSMOE_WARN(error);
                std::printf("job %s: done (%zu scenarios: %zu ok, %zu "
                            "quarantined, %zu resumed) -> %s\n",
                            entry.id.c_str(), out.scenarios, out.okResults,
                            out.quarantined, out.resumed,
                            job.outPath.c_str());
                std::fflush(stdout);
            } else if (out.interrupted) {
                // Leave the job "active": the next daemon resumes it
                // from the journal and converges to the same bytes.
                std::printf("job %s: interrupted; left active — restart "
                            "fsmoe_sweepd to resume from %s\n",
                            entry.id.c_str(), journal.c_str());
                std::fflush(stdout);
                return interrupt::stopExitCode();
            } else {
                stats::counter("service.jobs.failed").inc();
                FSMOE_WARN("job ", entry.id, " failed: ", out.error);
                if (!queue.setState(entry.id, "failed " + out.error,
                                    &error))
                    FSMOE_WARN(error);
            }
        }
        if (ranJob)
            continue; // rescan: running a job takes time; queue may grow
        if (once)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.queuePollMs));
    }
}

} // namespace fsmoe::service
