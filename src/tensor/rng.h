/**
 * @file
 * Deterministic random number generation for tests, workload
 * synthesis, and the noisy GShard gate.
 */
#ifndef FSMOE_TENSOR_RNG_H
#define FSMOE_TENSOR_RNG_H

#include <cstdint>
#include <random>

#include "tensor/tensor.h"

namespace fsmoe {

/**
 * A seeded generator producing reproducible tensors. Every stochastic
 * component in FSMoE takes an explicit Rng so that distributed and
 * single-process runs can be compared bit-for-bit.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /** Uniform float in [lo, hi). */
    float uniform(float lo = 0.0f, float hi = 1.0f);

    /** Standard normal sample scaled by @p stddev around @p mean. */
    float normal(float mean = 0.0f, float stddev = 1.0f);

    /** Uniform integer in [lo, hi]. */
    int64_t integer(int64_t lo, int64_t hi);

    /** Tensor of the given shape filled with N(mean, stddev) samples. */
    Tensor normalTensor(std::vector<int64_t> shape, float mean = 0.0f,
                        float stddev = 1.0f);

    /** Tensor of the given shape filled with U[lo, hi) samples. */
    Tensor uniformTensor(std::vector<int64_t> shape, float lo = 0.0f,
                         float hi = 1.0f);

    /** Access the raw engine (for std::shuffle and friends). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace fsmoe

#endif // FSMOE_TENSOR_RNG_H
