#include "tensor/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>

namespace fsmoe {

namespace {

int64_t
shapeNumel(const std::vector<int64_t> &shape)
{
    int64_t n = 1;
    for (int64_t s : shape) {
        FSMOE_CHECK_ARG(s >= 0, "negative extent in shape");
        n *= s;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), data_(shapeNumel(shape_), 0.0f)
{
    FSMOE_CHECK_ARG(shape_.size() >= 1 && shape_.size() <= 4,
                    "tensors must have 1-4 dimensions, got ", shape_.size());
}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values))
{
    FSMOE_CHECK_ARG(shapeNumel(shape_) == numel(),
                    "value count ", numel(), " does not match shape ",
                    shapeString());
}

int64_t
Tensor::size(int i) const
{
    int d = dim();
    if (i < 0)
        i += d;
    FSMOE_CHECK_ARG(i >= 0 && i < d, "dimension index out of range");
    return shape_[i];
}

void
Tensor::checkIndex(int64_t flat_index) const
{
    FSMOE_ASSERT(flat_index >= 0 && flat_index < numel(),
                 "flat index ", flat_index, " out of range for ",
                 shapeString());
}

float &
Tensor::flat(int64_t i)
{
    checkIndex(i);
    return data_[i];
}

float
Tensor::flat(int64_t i) const
{
    checkIndex(i);
    return data_[i];
}

int64_t
Tensor::offset2(int64_t i, int64_t j) const
{
    FSMOE_ASSERT(dim() == 2, "2-D access on ", shapeString());
    FSMOE_ASSERT(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
                 "index (", i, ",", j, ") out of range for ", shapeString());
    return i * shape_[1] + j;
}

int64_t
Tensor::offset3(int64_t i, int64_t j, int64_t k) const
{
    FSMOE_ASSERT(dim() == 3, "3-D access on ", shapeString());
    FSMOE_ASSERT(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] &&
                 k >= 0 && k < shape_[2],
                 "index (", i, ",", j, ",", k, ") out of range for ",
                 shapeString());
    return (i * shape_[1] + j) * shape_[2] + k;
}

float &
Tensor::at(int64_t i, int64_t j)
{
    return data_[offset2(i, j)];
}

float
Tensor::at(int64_t i, int64_t j) const
{
    return data_[offset2(i, j)];
}

float &
Tensor::at(int64_t i, int64_t j, int64_t k)
{
    return data_[offset3(i, j, k)];
}

float
Tensor::at(int64_t i, int64_t j, int64_t k) const
{
    return data_[offset3(i, j, k)];
}

Tensor
Tensor::reshape(std::vector<int64_t> new_shape) const
{
    int64_t known = 1;
    int infer = -1;
    for (size_t i = 0; i < new_shape.size(); ++i) {
        if (new_shape[i] == -1) {
            FSMOE_CHECK_ARG(infer == -1, "at most one -1 extent in reshape");
            infer = static_cast<int>(i);
        } else {
            known *= new_shape[i];
        }
    }
    if (infer >= 0) {
        FSMOE_CHECK_ARG(known > 0 && numel() % known == 0,
                        "cannot infer extent: ", numel(), " vs ", known);
        new_shape[infer] = numel() / known;
    }
    FSMOE_CHECK_ARG(shapeNumel(new_shape) == numel(),
                    "reshape element count mismatch");
    Tensor out;
    out.shape_ = std::move(new_shape);
    out.data_ = data_;
    return out;
}

Tensor
Tensor::sliceDim0(int64_t begin, int64_t end) const
{
    FSMOE_CHECK_ARG(dim() >= 1, "slice of empty tensor");
    FSMOE_CHECK_ARG(begin >= 0 && begin <= end && end <= shape_[0],
                    "bad slice [", begin, ",", end, ") on ", shapeString());
    int64_t row = numel() / std::max<int64_t>(shape_[0], 1);
    std::vector<int64_t> out_shape = shape_;
    out_shape[0] = end - begin;
    Tensor out(out_shape);
    std::copy(data_.begin() + begin * row, data_.begin() + end * row,
              out.data_.begin());
    return out;
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::add_(const Tensor &other)
{
    FSMOE_CHECK_ARG(sameShape(other), "add_ shape mismatch: ", shapeString(),
                    " vs ", other.shapeString());
    for (int64_t i = 0; i < numel(); ++i)
        data_[i] += other.data_[i];
}

void
Tensor::scale_(float s)
{
    for (float &v : data_)
        v *= s;
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            oss << ", ";
        oss << shape_[i];
    }
    oss << "]";
    return oss.str();
}

Tensor
Tensor::full(std::vector<int64_t> shape, float v)
{
    Tensor t(std::move(shape));
    t.fill(v);
    return t;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    Tensor out = a;
    out.add_(b);
    return out;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    FSMOE_CHECK_ARG(a.sameShape(b), "sub shape mismatch");
    Tensor out = a;
    for (int64_t i = 0; i < out.numel(); ++i)
        out.flat(i) -= b.flat(i);
    return out;
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    FSMOE_CHECK_ARG(a.sameShape(b), "mul shape mismatch");
    Tensor out = a;
    for (int64_t i = 0; i < out.numel(); ++i)
        out.flat(i) *= b.flat(i);
    return out;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    FSMOE_CHECK_ARG(a.sameShape(b), "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a.flat(i) - b.flat(i)));
    return m;
}

bool
allClose(const Tensor &a, const Tensor &b, float tol)
{
    return a.sameShape(b) && maxAbsDiff(a, b) <= tol;
}

} // namespace fsmoe
