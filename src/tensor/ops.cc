#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fsmoe {

namespace {

/// Rows/cols of a 2-D tensor with a shape check.
std::pair<int64_t, int64_t>
rowsCols(const Tensor &x, const char *what)
{
    FSMOE_CHECK_ARG(x.dim() == 2, what, " expects a 2-D tensor, got ",
                    x.shapeString());
    return {x.size(0), x.size(1)};
}

float
sigmoidScalar(float v)
{
    if (v >= 0.0f) {
        float e = std::exp(-v);
        return 1.0f / (1.0f + e);
    }
    float e = std::exp(v);
    return e / (1.0f + e);
}

} // namespace

Tensor
softmaxRows(const Tensor &logits)
{
    auto [rows, cols] = rowsCols(logits, "softmaxRows");
    Tensor out({rows, cols});
    for (int64_t r = 0; r < rows; ++r) {
        const float *in = logits.data() + r * cols;
        float *o = out.data() + r * cols;
        float mx = *std::max_element(in, in + cols);
        // -inf rows (all masked) become uniform zeros rather than NaN.
        if (!std::isfinite(mx)) {
            std::fill(o, o + cols, 0.0f);
            continue;
        }
        float sum = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
            float e = std::exp(in[c] - mx);
            o[c] = e;
            sum += e;
        }
        for (int64_t c = 0; c < cols; ++c)
            o[c] /= sum;
    }
    return out;
}

Tensor
softmaxRowsBackward(const Tensor &y, const Tensor &dy)
{
    FSMOE_CHECK_ARG(y.sameShape(dy), "softmax backward shape mismatch");
    auto [rows, cols] = rowsCols(y, "softmaxRowsBackward");
    Tensor dx({rows, cols});
    for (int64_t r = 0; r < rows; ++r) {
        const float *yr = y.data() + r * cols;
        const float *gr = dy.data() + r * cols;
        float *dr = dx.data() + r * cols;
        float dot = 0.0f;
        for (int64_t c = 0; c < cols; ++c)
            dot += yr[c] * gr[c];
        for (int64_t c = 0; c < cols; ++c)
            dr[c] = yr[c] * (gr[c] - dot);
    }
    return dx;
}

TopK
topkRows(const Tensor &scores, int k)
{
    auto [rows, cols] = rowsCols(scores, "topkRows");
    FSMOE_CHECK_ARG(k >= 1 && k <= cols, "top-k k=", k, " out of range for ",
                    cols, " columns");
    TopK out{Tensor({rows, k}), std::vector<int64_t>(rows * k)};
    std::vector<int64_t> order(cols);
    for (int64_t r = 0; r < rows; ++r) {
        const float *in = scores.data() + r * cols;
        std::iota(order.begin(), order.end(), 0);
        std::partial_sort(order.begin(), order.begin() + k, order.end(),
                          [&](int64_t a, int64_t b) {
                              if (in[a] != in[b])
                                  return in[a] > in[b];
                              return a < b; // deterministic tie-break
                          });
        for (int j = 0; j < k; ++j) {
            out.values.at(r, j) = in[order[j]];
            out.indices[r * k + j] = order[j];
        }
    }
    return out;
}

Tensor
sigmoid(const Tensor &x)
{
    Tensor out = x;
    for (int64_t i = 0; i < out.numel(); ++i)
        out.flat(i) = sigmoidScalar(out.flat(i));
    return out;
}

Tensor
sigmoidBackward(const Tensor &y, const Tensor &dy)
{
    FSMOE_CHECK_ARG(y.sameShape(dy), "sigmoid backward shape mismatch");
    Tensor dx = dy;
    for (int64_t i = 0; i < dx.numel(); ++i) {
        float yi = y.flat(i);
        dx.flat(i) *= yi * (1.0f - yi);
    }
    return dx;
}

Tensor
relu(const Tensor &x)
{
    Tensor out = x;
    for (int64_t i = 0; i < out.numel(); ++i)
        out.flat(i) = std::max(0.0f, out.flat(i));
    return out;
}

Tensor
reluBackward(const Tensor &x, const Tensor &dy)
{
    FSMOE_CHECK_ARG(x.sameShape(dy), "relu backward shape mismatch");
    Tensor dx = dy;
    for (int64_t i = 0; i < dx.numel(); ++i) {
        if (x.flat(i) <= 0.0f)
            dx.flat(i) = 0.0f;
    }
    return dx;
}

Tensor
silu(const Tensor &x)
{
    Tensor out = x;
    for (int64_t i = 0; i < out.numel(); ++i) {
        float v = out.flat(i);
        out.flat(i) = v * sigmoidScalar(v);
    }
    return out;
}

Tensor
siluBackward(const Tensor &x, const Tensor &dy)
{
    FSMOE_CHECK_ARG(x.sameShape(dy), "silu backward shape mismatch");
    Tensor dx = dy;
    for (int64_t i = 0; i < dx.numel(); ++i) {
        float v = x.flat(i);
        float s = sigmoidScalar(v);
        dx.flat(i) *= s * (1.0f + v * (1.0f - s));
    }
    return dx;
}

Tensor
gelu(const Tensor &x)
{
    constexpr float kC = 0.7978845608028654f; // sqrt(2/pi)
    Tensor out = x;
    for (int64_t i = 0; i < out.numel(); ++i) {
        float v = out.flat(i);
        float t = std::tanh(kC * (v + 0.044715f * v * v * v));
        out.flat(i) = 0.5f * v * (1.0f + t);
    }
    return out;
}

Tensor
geluBackward(const Tensor &x, const Tensor &dy)
{
    FSMOE_CHECK_ARG(x.sameShape(dy), "gelu backward shape mismatch");
    constexpr float kC = 0.7978845608028654f;
    Tensor dx = dy;
    for (int64_t i = 0; i < dx.numel(); ++i) {
        float v = x.flat(i);
        float u = kC * (v + 0.044715f * v * v * v);
        float t = std::tanh(u);
        float du = kC * (1.0f + 3.0f * 0.044715f * v * v);
        float d = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
        dx.flat(i) *= d;
    }
    return dx;
}

Tensor
softplus(const Tensor &x)
{
    Tensor out = x;
    for (int64_t i = 0; i < out.numel(); ++i) {
        float v = out.flat(i);
        // log1p(exp(v)) with overflow guard.
        out.flat(i) = v > 20.0f ? v : std::log1p(std::exp(v));
    }
    return out;
}

std::vector<float>
l2NormalizeRows(Tensor &x, float eps)
{
    auto [rows, cols] = rowsCols(x, "l2NormalizeRows");
    std::vector<float> norms(rows);
    for (int64_t r = 0; r < rows; ++r) {
        float *row = x.data() + r * cols;
        float ss = 0.0f;
        for (int64_t c = 0; c < cols; ++c)
            ss += row[c] * row[c];
        float norm = std::sqrt(ss);
        norms[r] = norm;
        if (norm > eps) {
            for (int64_t c = 0; c < cols; ++c)
                row[c] /= norm;
        }
    }
    return norms;
}

Tensor
cosineScores(const Tensor &x, const Tensor &w, float eps)
{
    auto [n, d] = rowsCols(x, "cosineScores");
    auto [e, d2] = rowsCols(w, "cosineScores");
    FSMOE_CHECK_ARG(d == d2, "cosineScores dimension mismatch: ", d, " vs ",
                    d2);
    Tensor out({n, e});
    std::vector<float> wn(e);
    for (int64_t j = 0; j < e; ++j) {
        const float *wr = w.data() + j * d;
        float ss = 0.0f;
        for (int64_t c = 0; c < d; ++c)
            ss += wr[c] * wr[c];
        wn[j] = std::sqrt(ss);
    }
    for (int64_t i = 0; i < n; ++i) {
        const float *xr = x.data() + i * d;
        float ss = 0.0f;
        for (int64_t c = 0; c < d; ++c)
            ss += xr[c] * xr[c];
        float xn = std::sqrt(ss);
        for (int64_t j = 0; j < e; ++j) {
            const float *wr = w.data() + j * d;
            float dot = 0.0f;
            for (int64_t c = 0; c < d; ++c)
                dot += xr[c] * wr[c];
            out.at(i, j) = dot / std::max(xn * wn[j], eps);
        }
    }
    return out;
}

Tensor
layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
          LayerNormCache &cache, float eps)
{
    auto [rows, cols] = rowsCols(x, "layerNorm");
    FSMOE_CHECK_ARG(gamma.numel() == cols && beta.numel() == cols,
                    "layerNorm parameter size mismatch");
    cache.mean.resize(rows);
    cache.invStd.resize(rows);
    cache.normalized = Tensor({rows, cols});
    Tensor out({rows, cols});
    for (int64_t r = 0; r < rows; ++r) {
        const float *in = x.data() + r * cols;
        double sum = 0.0;
        for (int64_t c = 0; c < cols; ++c)
            sum += in[c];
        const float mu = static_cast<float>(sum / cols);
        double var = 0.0;
        for (int64_t c = 0; c < cols; ++c)
            var += (in[c] - mu) * (in[c] - mu);
        const float inv = 1.0f / std::sqrt(
                                     static_cast<float>(var / cols) + eps);
        cache.mean[r] = mu;
        cache.invStd[r] = inv;
        float *norm = cache.normalized.data() + r * cols;
        float *o = out.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
            norm[c] = (in[c] - mu) * inv;
            o[c] = norm[c] * gamma.flat(c) + beta.flat(c);
        }
    }
    return out;
}

Tensor
layerNormBackward(const Tensor &dy, const Tensor &gamma,
                  const LayerNormCache &cache, Tensor &d_gamma,
                  Tensor &d_beta)
{
    auto [rows, cols] = rowsCols(dy, "layerNormBackward");
    FSMOE_CHECK_ARG(d_gamma.numel() == cols && d_beta.numel() == cols,
                    "layerNorm gradient buffers mis-sized");
    Tensor dx({rows, cols});
    for (int64_t r = 0; r < rows; ++r) {
        const float *g = dy.data() + r * cols;
        const float *norm = cache.normalized.data() + r * cols;
        const float inv = cache.invStd[r];
        // d_xhat = dy * gamma; dx derives from the standard LN
        // backward: inv * (d_xhat - mean(d_xhat) - xhat*mean(d_xhat*xhat)).
        double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
            const float dxh = g[c] * gamma.flat(c);
            sum_dxhat += dxh;
            sum_dxhat_xhat += dxh * norm[c];
            d_gamma.flat(c) += g[c] * norm[c];
            d_beta.flat(c) += g[c];
        }
        const float m1 = static_cast<float>(sum_dxhat / cols);
        const float m2 = static_cast<float>(sum_dxhat_xhat / cols);
        float *o = dx.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
            const float dxh = g[c] * gamma.flat(c);
            o[c] = inv * (dxh - m1 - norm[c] * m2);
        }
    }
    return dx;
}

Tensor
sumDim0(const Tensor &x)
{
    auto [rows, cols] = rowsCols(x, "sumDim0");
    Tensor out({cols});
    for (int64_t r = 0; r < rows; ++r) {
        const float *row = x.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c)
            out.flat(c) += row[c];
    }
    return out;
}

float
mean(const Tensor &x)
{
    FSMOE_CHECK_ARG(x.numel() > 0, "mean of empty tensor");
    double s = 0.0;
    for (int64_t i = 0; i < x.numel(); ++i)
        s += x.flat(i);
    return static_cast<float>(s / static_cast<double>(x.numel()));
}

} // namespace fsmoe
