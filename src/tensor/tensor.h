/**
 * @file
 * A minimal dense tensor for the FSMoE CPU numerics substrate.
 *
 * The paper's system runs its math on CUDA; model quality and routing
 * behaviour depend only on the math itself, so the reproduction uses a
 * contiguous row-major float tensor on the host. The class deliberately
 * stays small: shape bookkeeping, element access, and a few fill
 * helpers. All heavy math lives in gemm.h and ops.h as free functions.
 */
#ifndef FSMOE_TENSOR_TENSOR_H
#define FSMOE_TENSOR_TENSOR_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/logging.h"

namespace fsmoe {

/**
 * Dense row-major float tensor with value semantics.
 *
 * Supports 1-4 dimensional shapes, which covers everything an MoE layer
 * needs: (B,L,M) activations, (E,T,M) dispatched layouts, and (M,H)
 * weight matrices.
 */
class Tensor
{
  public:
    /** An empty zero-dimensional tensor. */
    Tensor() = default;

    /** Construct a zero-filled tensor of the given shape. */
    explicit Tensor(std::vector<int64_t> shape);

    /** Construct from shape and explicit contents (size must match). */
    Tensor(std::vector<int64_t> shape, std::vector<float> values);

    /** Total number of elements. */
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    /** Number of dimensions. */
    int dim() const { return static_cast<int>(shape_.size()); }

    /** Extent of dimension @p i (negative indices count from the back). */
    int64_t size(int i) const;

    /** The full shape vector. */
    const std::vector<int64_t> &shape() const { return shape_; }

    /** Raw contiguous storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access with bounds checking. */
    float &flat(int64_t i);
    float flat(int64_t i) const;

    /** 2-D element access; tensor must be 2-D. */
    float &at(int64_t i, int64_t j);
    float at(int64_t i, int64_t j) const;

    /** 3-D element access; tensor must be 3-D. */
    float &at(int64_t i, int64_t j, int64_t k);
    float at(int64_t i, int64_t j, int64_t k) const;

    /**
     * Reinterpret the contents with a new shape of equal element count.
     * One extent may be -1 and is inferred.
     */
    Tensor reshape(std::vector<int64_t> new_shape) const;

    /** Copy of row block [begin, end) along dimension 0. */
    Tensor sliceDim0(int64_t begin, int64_t end) const;

    /** Set every element to @p value. */
    void fill(float value);

    /** Elementwise in-place accumulate: this += other (same shape). */
    void add_(const Tensor &other);

    /** Elementwise in-place scale: this *= s. */
    void scale_(float s);

    /** Human-readable shape, e.g. "[4, 1024, 512]". */
    std::string shapeString() const;

    /** True when shapes match exactly. */
    bool sameShape(const Tensor &other) const { return shape_ == other.shape_; }

    /** Zero-filled tensor of the given shape. */
    static Tensor zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

    /** Tensor of the given shape with every element equal to @p v. */
    static Tensor full(std::vector<int64_t> shape, float v);

  private:
    void checkIndex(int64_t flat_index) const;
    int64_t offset2(int64_t i, int64_t j) const;
    int64_t offset3(int64_t i, int64_t j, int64_t k) const;

    std::vector<int64_t> shape_;
    std::vector<float> data_;
};

/** Elementwise c = a + b (shapes must match). */
Tensor add(const Tensor &a, const Tensor &b);

/** Elementwise c = a - b (shapes must match). */
Tensor sub(const Tensor &a, const Tensor &b);

/** Elementwise Hadamard product c = a * b (shapes must match). */
Tensor mul(const Tensor &a, const Tensor &b);

/** Maximum absolute elementwise difference between two tensors. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

/** True when all elements differ by at most @p tol. */
bool allClose(const Tensor &a, const Tensor &b, float tol = 1e-5f);

} // namespace fsmoe

#endif // FSMOE_TENSOR_TENSOR_H
