#include "tensor/gemm.h"

#include <algorithm>

namespace fsmoe {

namespace {

/// Block edge chosen so three blocks fit comfortably in L1/L2.
constexpr int64_t kBlock = 64;

/// Dimensions of op(X) for a 2-D tensor under a transposition flag.
std::pair<int64_t, int64_t>
opShape(const Tensor &x, Trans t)
{
    FSMOE_CHECK_ARG(x.dim() == 2, "gemm operand must be 2-D, got ",
                    x.shapeString());
    if (t == Trans::No)
        return {x.size(0), x.size(1)};
    return {x.size(1), x.size(0)};
}

} // namespace

void
gemm(const Tensor &a, Trans ta, const Tensor &b, Trans tb, Tensor &c,
     float alpha, float beta)
{
    auto [m, ka] = opShape(a, ta);
    auto [kb, n] = opShape(b, tb);
    FSMOE_CHECK_ARG(ka == kb, "gemm inner dimension mismatch: ", ka, " vs ",
                    kb);
    FSMOE_CHECK_ARG(c.dim() == 2 && c.size(0) == m && c.size(1) == n,
                    "gemm output shape mismatch: want [", m, ", ", n,
                    "], got ", c.shapeString());
    const int64_t k = ka;

    float *cd = c.data();
    if (beta == 0.0f) {
        std::fill(cd, cd + m * n, 0.0f);
    } else if (beta != 1.0f) {
        for (int64_t i = 0; i < m * n; ++i)
            cd[i] *= beta;
    }

    const float *ad = a.data();
    const float *bd = b.data();
    const int64_t lda = a.size(1);
    const int64_t ldb = b.size(1);

    auto a_at = [&](int64_t i, int64_t p) {
        return ta == Trans::No ? ad[i * lda + p] : ad[p * lda + i];
    };

    for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
        int64_t i1 = std::min(i0 + kBlock, m);
        for (int64_t p0 = 0; p0 < k; p0 += kBlock) {
            int64_t p1 = std::min(p0 + kBlock, k);
            for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
                int64_t j1 = std::min(j0 + kBlock, n);
                for (int64_t i = i0; i < i1; ++i) {
                    for (int64_t p = p0; p < p1; ++p) {
                        float av = alpha * a_at(i, p);
                        if (av == 0.0f)
                            continue;
                        if (tb == Trans::No) {
                            const float *brow = bd + p * ldb;
                            float *crow = cd + i * n;
                            for (int64_t j = j0; j < j1; ++j)
                                crow[j] += av * brow[j];
                        } else {
                            // op(B)[p][j] = B[j][p]: strided column walk.
                            float *crow = cd + i * n;
                            for (int64_t j = j0; j < j1; ++j)
                                crow[j] += av * bd[j * ldb + p];
                        }
                    }
                }
            }
        }
    }
}

Tensor
matmul(const Tensor &a, const Tensor &b, Trans ta, Trans tb)
{
    auto [m, k] = opShape(a, ta);
    auto [k2, n] = opShape(b, tb);
    (void)k;
    (void)k2;
    Tensor c({m, n});
    gemm(a, ta, b, tb, c);
    return c;
}

} // namespace fsmoe
