/**
 * @file
 * General matrix multiplication for the CPU numerics substrate.
 *
 * Expert feed-forward layers, gate projections and their backward
 * passes are all GEMMs; this header provides the one kernel they share.
 * The implementation is a cache-blocked i-k-j loop — not a BLAS rival,
 * but fast enough for the functional tests, and bit-reproducible.
 */
#ifndef FSMOE_TENSOR_GEMM_H
#define FSMOE_TENSOR_GEMM_H

#include "tensor/tensor.h"

namespace fsmoe {

/** Transposition mode for a GEMM operand. */
enum class Trans { No, Yes };

/**
 * Compute C = alpha * op(A) * op(B) + beta * C.
 *
 * @param a       Left operand; shape (m,k) or (k,m) when transposed.
 * @param ta      Whether to use A transposed.
 * @param b       Right operand; shape (k,n) or (n,k) when transposed.
 * @param tb      Whether to use B transposed.
 * @param c       Output matrix of shape (m,n); must be pre-sized.
 * @param alpha   Scale applied to the product.
 * @param beta    Scale applied to the existing contents of C.
 */
void gemm(const Tensor &a, Trans ta, const Tensor &b, Trans tb, Tensor &c,
          float alpha = 1.0f, float beta = 0.0f);

/** Convenience wrapper returning a fresh C = op(A) * op(B). */
Tensor matmul(const Tensor &a, const Tensor &b, Trans ta = Trans::No,
              Trans tb = Trans::No);

} // namespace fsmoe

#endif // FSMOE_TENSOR_GEMM_H
