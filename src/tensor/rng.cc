#include "tensor/rng.h"

namespace fsmoe {

float
Rng::uniform(float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
}

float
Rng::normal(float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
}

int64_t
Rng::integer(int64_t lo, int64_t hi)
{
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
}

Tensor
Rng::normalTensor(std::vector<int64_t> shape, float mean, float stddev)
{
    Tensor t(std::move(shape));
    for (int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = normal(mean, stddev);
    return t;
}

Tensor
Rng::uniformTensor(std::vector<int64_t> shape, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (int64_t i = 0; i < t.numel(); ++i)
        t.flat(i) = uniform(lo, hi);
    return t;
}

} // namespace fsmoe
