/**
 * @file
 * Elementwise and reduction kernels used by gates and experts.
 *
 * Every forward kernel that participates in training has a matching
 * backward kernel; the MoE layer's manual backpropagation (paper §4.4)
 * is assembled from these primitives.
 */
#ifndef FSMOE_TENSOR_OPS_H
#define FSMOE_TENSOR_OPS_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fsmoe {

/** Result of a row-wise top-k selection. */
struct TopK
{
    /// Selected values, shape (rows, k), sorted descending per row.
    Tensor values;
    /// Column indices of the selected values, shape (rows, k).
    std::vector<int64_t> indices;
};

/** Row-wise softmax over the last dimension of a 2-D tensor. */
Tensor softmaxRows(const Tensor &logits);

/**
 * Backward of softmaxRows.
 *
 * @param y      Softmax output from the forward pass.
 * @param dy     Gradient w.r.t. the softmax output.
 * @return       Gradient w.r.t. the logits.
 */
Tensor softmaxRowsBackward(const Tensor &y, const Tensor &dy);

/** Row-wise top-k of a 2-D tensor (k <= columns). */
TopK topkRows(const Tensor &scores, int k);

/** Numerically stable sigmoid, elementwise. */
Tensor sigmoid(const Tensor &x);

/** Backward of sigmoid given its output y and upstream gradient dy. */
Tensor sigmoidBackward(const Tensor &y, const Tensor &dy);

/** Elementwise ReLU. */
Tensor relu(const Tensor &x);

/** Backward of ReLU given the forward input x and upstream gradient dy. */
Tensor reluBackward(const Tensor &x, const Tensor &dy);

/** Elementwise SiLU (x * sigmoid(x)), the Mixtral expert activation. */
Tensor silu(const Tensor &x);

/** Backward of SiLU given the forward input x and upstream gradient dy. */
Tensor siluBackward(const Tensor &x, const Tensor &dy);

/** Elementwise GELU (tanh approximation). */
Tensor gelu(const Tensor &x);

/** Backward of GELU given the forward input x and upstream gradient dy. */
Tensor geluBackward(const Tensor &x, const Tensor &dy);

/** Softplus ln(1+e^x), used by the GShard noisy gate. */
Tensor softplus(const Tensor &x);

/**
 * L2-normalize each row of a 2-D tensor in place; rows with near-zero
 * norm are left untouched. Returns the per-row norms.
 */
std::vector<float> l2NormalizeRows(Tensor &x, float eps = 1e-12f);

/**
 * Cosine-similarity scores between every row of @p x (n,d) and every
 * row of @p w (e,d); output shape (n,e). Implements the X-MoE scoring
 * s_i = cos(W_proj I, W_g).
 */
Tensor cosineScores(const Tensor &x, const Tensor &w, float eps = 1e-12f);

/** Cached statistics from a layerNorm forward, needed by backward. */
struct LayerNormCache
{
    std::vector<float> mean;   ///< Per-row mean.
    std::vector<float> invStd; ///< Per-row 1/sqrt(var + eps).
    Tensor normalized;         ///< (x - mean) * invStd.
};

/**
 * Row-wise layer normalisation y = (x - mu)/sigma * gamma + beta.
 *
 * @param x      Input (rows, cols).
 * @param gamma  Scale (cols).
 * @param beta   Shift (cols).
 * @param cache  Receives the statistics backward needs.
 */
Tensor layerNorm(const Tensor &x, const Tensor &gamma, const Tensor &beta,
                 LayerNormCache &cache, float eps = 1e-5f);

/**
 * Backward of layerNorm.
 *
 * @param dy      Gradient w.r.t. the output.
 * @param gamma   The forward's scale parameter.
 * @param cache   Statistics from the forward.
 * @param d_gamma Accumulated gradient w.r.t. gamma (pre-sized (cols)).
 * @param d_beta  Accumulated gradient w.r.t. beta (pre-sized (cols)).
 * @return        Gradient w.r.t. the input.
 */
Tensor layerNormBackward(const Tensor &dy, const Tensor &gamma,
                         const LayerNormCache &cache, Tensor &d_gamma,
                         Tensor &d_beta);

/** Sum over dimension 0 of a 2-D tensor, producing shape (cols). */
Tensor sumDim0(const Tensor &x);

/** Mean of all elements. */
float mean(const Tensor &x);

} // namespace fsmoe

#endif // FSMOE_TENSOR_OPS_H
