#include "sim/trace.h"

#include "base/logging.h"

namespace fsmoe::sim {

const char *
linkName(Link link)
{
    switch (link) {
      case Link::InterNode: return "inter-node";
      case Link::IntraNode: return "intra-node";
      case Link::Compute: return "compute";
      default: return "?";
    }
}

std::vector<TraceEvent>
traceEvents(const TaskGraph &graph, const SimResult &result)
{
    FSMOE_CHECK_ARG(result.trace.size() == graph.size(),
                    "SimResult has ", result.trace.size(),
                    " trace records for a graph of ", graph.size(),
                    " tasks; was it produced from this graph?");
    std::vector<TraceEvent> events;
    events.reserve(graph.size());
    for (const TaskTrace &tt : result.trace) {
        const Task &task = graph.task(tt.id);
        TraceEvent ev;
        ev.id = tt.id;
        ev.name = task.name();
        ev.op = task.op;
        ev.link = task.link;
        ev.stream = task.stream;
        ev.startMs = tt.start;
        ev.durationMs = tt.finish - tt.start;
        events.push_back(std::move(ev));
    }
    return events;
}

} // namespace fsmoe::sim
