#include "sim/cluster.h"

#include "base/logging.h"

namespace fsmoe::sim {

ClusterSpec
testbedA()
{
    ClusterSpec spec;
    spec.name = "Testbed-A (6x8 A6000, 200Gb/s IB)";
    spec.numNodes = 6;
    spec.gpusPerNode = 8;
    spec.gemm = {4.26e-2, 2.29e-11};
    spec.alltoall = {2.87e-1, 2.21e-7};
    spec.allgather = {3.37e-1, 2.32e-7};      // caption prints 2.32e-6
    spec.reducescatter = {3.95e-1, 2.34e-7};
    spec.allreduce = {5.11e-1, 4.95e-7};      // caption prints 4.95e-6
    return spec;
}

ClusterSpec
testbedB()
{
    ClusterSpec spec;
    spec.name = "Testbed-B (8x4 RTX2080Ti, 100Gb/s IB)";
    spec.numNodes = 8;
    spec.gpusPerNode = 4;
    spec.gemm = {9.24e-2, 4.42e-11};
    spec.alltoall = {1.75e-1, 3.06e-7};
    spec.allgather = {3.20e-2, 1.68e-7};
    spec.reducescatter = {3.91e-2, 1.67e-7};
    spec.allreduce = {8.37e-2, 5.99e-7};
    return spec;
}

ClusterSpec
scaledTestbedA(int num_nodes)
{
    FSMOE_CHECK_ARG(num_nodes >= 1, "cluster needs at least one node");
    ClusterSpec spec = testbedA();
    int base_nodes = spec.numNodes;
    spec.numNodes = num_nodes;
    spec.name = "Testbed-A scaled to " + std::to_string(num_nodes) +
                " nodes";
    // Ring-based inter-node collectives move (P-1)/P of the data per
    // link; rescale the per-byte terms from the 6-node fit.
    auto ring = [](int p) {
        return p > 1 ? static_cast<double>(p - 1) / p : 0.5;
    };
    double factor = ring(num_nodes) / ring(base_nodes);
    spec.alltoall.beta *= factor;
    spec.allreduce.beta *= factor;
    return spec;
}

} // namespace fsmoe::sim
