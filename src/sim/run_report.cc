#include "sim/run_report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/logging.h"
#include "sim/trace.h"

namespace fsmoe::sim {

namespace {

/**
 * Per-link index of (finish, id), sorted, for O(log n) lookup of "who
 * occupied this link until time t". Built once per analyzeRun.
 */
struct LinkIndex
{
    std::array<std::vector<std::pair<double, TaskId>>,
               static_cast<size_t>(Link::NumLinks)>
        byFinish;

    LinkIndex(const TaskGraph &graph, const SimResult &result)
    {
        for (const Task &t : graph.tasks())
            byFinish[static_cast<size_t>(t.link)].emplace_back(
                result.trace[t.id].finish, t.id);
        for (auto &v : byFinish)
            std::sort(v.begin(), v.end());
    }

    /**
     * Smallest-id task on @p link finishing exactly at @p t that
     * started strictly before @p before (the link's previous
     * occupant); -1 if none.
     */
    TaskId occupantUntil(Link link, double t, double before,
                         const SimResult &result) const
    {
        const auto &v = byFinish[static_cast<size_t>(link)];
        auto it = std::lower_bound(v.begin(), v.end(),
                                   std::make_pair(t, TaskId{-1}));
        for (; it != v.end() && it->first == t; ++it)
            if (result.trace[it->second].start < before)
                return it->second;
        return -1;
    }
};

} // namespace

const char *
hopReasonName(HopReason r)
{
    switch (r) {
      case HopReason::Root: return "root";
      case HopReason::Dependency: return "dep";
      case HopReason::LinkWait: return "link-wait";
      case HopReason::StreamOrder: return "stream-order";
      default: return "?";
    }
}

RunReport
analyzeRun(const TaskGraph &graph, const SimResult &result)
{
    FSMOE_CHECK_ARG(result.trace.size() == graph.size(),
                    "SimResult has ", result.trace.size(),
                    " trace records for a graph of ", graph.size(),
                    " tasks; was it produced from this graph?");
    RunReport report;
    report.makespanMs = result.makespan;
    const size_t n = graph.size();
    if (n == 0)
        return report;

    // Link usage straight from the graph + trace (not SimResult's own
    // linkBusyMs, so reports also work on results from simulators
    // that predate that field, e.g. the retained test reference).
    for (const Task &t : graph.tasks()) {
        LinkUsage &u = report.links[static_cast<size_t>(t.link)];
        u.busyMs += result.trace[t.id].finish - result.trace[t.id].start;
        u.tasks += 1;
    }
    if (report.makespanMs > 0.0) {
        for (LinkUsage &u : report.links) {
            u.utilization = u.busyMs / report.makespanMs;
            u.idleFraction = 1.0 - u.utilization;
        }
    }

    // End of the chain: the task whose finish is the makespan
    // (smallest id on ties).
    TaskId cur = 0;
    for (TaskId id = 0; id < static_cast<TaskId>(n); ++id)
        if (result.trace[id].finish > result.trace[cur].finish)
            cur = id;

    // Stream predecessor by issue order == id order within a stream.
    std::vector<TaskId> stream_pred(n, -1);
    {
        std::vector<TaskId> last(graph.numStreams(), -1);
        for (const Task &t : graph.tasks()) {
            stream_pred[t.id] = last[t.stream];
            last[t.stream] = t.id;
        }
    }

    const LinkIndex links(graph, result);

    // Backward walk. Each hop moves to a task with a strictly smaller
    // (start, id) pair, so it terminates in at most n steps; the
    // explicit bound guards a malformed trace from looping forever.
    std::vector<CriticalHop> path;
    for (size_t steps = 0; steps <= n; ++steps) {
        const TaskTrace &tr = result.trace[cur];
        CriticalHop hop;
        hop.task = cur;
        hop.startMs = tr.start;
        hop.finishMs = tr.finish;
        const double s = tr.start;

        TaskId next = -1;
        if (s <= 0.0) {
            hop.reason = HopReason::Root;
        } else {
            // A dependency that finished exactly at our start
            // (smallest id wins ties, deterministically).
            for (TaskId d : graph.deps(cur)) {
                if (result.trace[d].finish == s &&
                    (next == -1 || d < next)) {
                    next = d;
                    hop.reason = HopReason::Dependency;
                }
            }
            if (next == -1) {
                next = links.occupantUntil(graph.task(cur).link, s,
                                           /*before=*/s, result);
                if (next != -1)
                    hop.reason = HopReason::LinkWait;
            }
            if (next == -1) {
                const TaskId pred = stream_pred[cur];
                if (pred != -1 && result.trace[pred].start == s) {
                    next = pred;
                    hop.reason = HopReason::StreamOrder;
                }
            }
            if (next == -1) {
                // Started mid-timeline with no visible blocker — a
                // trace not produced by our simulator. Treat as root.
                hop.reason = HopReason::Root;
            }
        }

        path.push_back(hop);
        report.criticalPathMs += hop.durationMs();
        report.criticalOpMs[static_cast<size_t>(graph.task(cur).op)] +=
            hop.durationMs();
        if (next == -1)
            break;
        cur = next;
    }

    std::reverse(path.begin(), path.end());
    report.criticalPath = std::move(path);
    return report;
}

std::string
formatRunReport(const TaskGraph &graph, const RunReport &report)
{
    std::ostringstream oss;
    char buf[160];
    std::snprintf(buf, sizeof buf, "makespan %.4f ms, %zu tasks\n",
                  report.makespanMs, graph.size());
    oss << buf;

    oss << "link utilization:\n";
    for (size_t li = 0; li < report.links.size(); ++li) {
        const LinkUsage &u = report.links[li];
        std::snprintf(buf, sizeof buf,
                      "  %-10s busy %10.4f ms  util %5.1f%%  idle %5.1f%%"
                      "  (%d tasks)\n",
                      linkName(static_cast<Link>(li)), u.busyMs,
                      u.utilization * 100.0, u.idleFraction * 100.0,
                      u.tasks);
        oss << buf;
    }

    const double coverage =
        report.makespanMs > 0.0
            ? report.criticalPathMs / report.makespanMs * 100.0
            : 0.0;
    std::snprintf(buf, sizeof buf,
                  "critical path: %zu hops, %.4f ms (%.1f%% of "
                  "makespan)\n",
                  report.criticalPath.size(), report.criticalPathMs,
                  coverage);
    oss << buf;
    for (const CriticalHop &hop : report.criticalPath) {
        const Task &t = graph.task(hop.task);
        std::snprintf(buf, sizeof buf,
                      "  [%-12s] %-12s %-10s start %10.4f  dur %9.4f"
                      "  (%s)\n",
                      hopReasonName(hop.reason), t.name().c_str(),
                      linkName(t.link), hop.startMs, hop.durationMs(),
                      opTypeName(t.op));
        oss << buf;
    }

    oss << "critical-path op breakdown:";
    bool any = false;
    for (size_t op = 0; op < report.criticalOpMs.size(); ++op) {
        if (report.criticalOpMs[op] <= 0.0)
            continue;
        std::snprintf(buf, sizeof buf, "%s %s %.4f ms (%.1f%%)",
                      any ? "," : "",
                      opTypeName(static_cast<OpType>(op)),
                      report.criticalOpMs[op],
                      report.criticalPathMs > 0.0
                          ? report.criticalOpMs[op] /
                                report.criticalPathMs * 100.0
                          : 0.0);
        oss << buf;
        any = true;
    }
    if (!any)
        oss << " (empty)";
    oss << '\n';
    return oss.str();
}

} // namespace fsmoe::sim
