/**
 * @file
 * Post-hoc analytics over one simulated run: where did the makespan go?
 *
 * analyzeRun() distils a (TaskGraph, SimResult) pair into
 *   1. per-link usage — busy milliseconds, utilization, and idle
 *      fraction for each physical link over the makespan, and
 *   2. the critical path — the chain of tasks whose starts are
 *      mutually determined and whose last member's finish *is* the
 *      makespan, with the reason each hop had to wait (a dependency
 *      finishing, the link being occupied, or stream FIFO order).
 *
 * The walk is backwards from the makespan-defining task: a task that
 * started at time s was released either by a dependency that finished
 * at s, by the task occupying its link until s, or by its stream
 * predecessor starting at s (stream FIFO gates on the predecessor's
 * *start*); a task with s == 0 is a root. Ties are broken by smallest
 * task id, so the extracted path is deterministic. When a path
 * contains no stream-order hops, its task durations sum exactly to the
 * makespan; a stream-order hop overlaps its successor, so coverage can
 * drop below 100% (formatRunReport() prints the coverage).
 *
 * Everything here is a pure function of its arguments — thread-safe on
 * distinct data, deterministic, and free of registry side effects.
 * Surfaced as `fsmoe_sweep --explain` and the optional per-link
 * columns in runtime/result_store rows; see docs/OBSERVABILITY.md.
 */
#ifndef FSMOE_SIM_RUN_REPORT_H
#define FSMOE_SIM_RUN_REPORT_H

#include <array>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe::sim {

/** Aggregate use of one physical link over a run. */
struct LinkUsage
{
    double busyMs = 0.0;       ///< Sum of task durations on the link.
    double utilization = 0.0;  ///< busyMs / makespan (0 if makespan 0).
    double idleFraction = 0.0; ///< 1 - utilization (0 if makespan 0).
    int tasks = 0;             ///< Tasks executed on the link.
};

/** Why a critical-path task could not start earlier. */
enum class HopReason
{
    Root,        ///< Started at time 0; nothing blocked it.
    Dependency,  ///< A dependency finished exactly at its start.
    LinkWait,    ///< Its link was occupied until its start.
    StreamOrder, ///< Its stream predecessor started at its start.
};

/** Short printable name of a HopReason. */
const char *hopReasonName(HopReason r);

/** One link of the critical chain, in chronological order. */
struct CriticalHop
{
    TaskId task = -1;
    HopReason reason = HopReason::Root; ///< Why it started no earlier.
    double startMs = 0.0;
    double finishMs = 0.0;

    double durationMs() const { return finishMs - startMs; }
};

/** The analytics product of one simulated run. */
struct RunReport
{
    double makespanMs = 0.0;
    std::array<LinkUsage, static_cast<size_t>(Link::NumLinks)> links{};
    /// Chronological critical chain; empty for an empty graph.
    std::vector<CriticalHop> criticalPath;
    /// Sum of critical-path task durations.
    double criticalPathMs = 0.0;
    /// Critical-path busy time per op class — which operation classes
    /// the makespan is actually made of.
    std::array<double, static_cast<size_t>(OpType::NumOpTypes)>
        criticalOpMs{};
};

/**
 * Analyze @p result, which must have been produced by simulating
 * exactly @p graph (fatal otherwise).
 */
RunReport analyzeRun(const TaskGraph &graph, const SimResult &result);

/**
 * Human-readable rendering: link utilization table, the critical path
 * hop by hop (with task names from @p graph), and the per-op
 * breakdown of the path.
 */
std::string formatRunReport(const TaskGraph &graph, const RunReport &report);

} // namespace fsmoe::sim

#endif // FSMOE_SIM_RUN_REPORT_H
