/**
 * @file
 * Task DAG representation consumed by the cluster simulator.
 *
 * A schedule (paper Fig. 3) is a set of tasks, each bound to a
 * *physical link* (exclusive hardware resource: inter-node NIC,
 * intra-node fabric, or GPU compute) and a *stream* (a FIFO issue
 * queue, the software-visible CUDA-stream analogue). Dependencies
 * express data flow, e.g. expert(i) needs ESP-AllGather(i).
 */
#ifndef FSMOE_SIM_TASK_GRAPH_H
#define FSMOE_SIM_TASK_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/logging.h"

namespace fsmoe::sim {

/** Operation classes, matching the paper's Table 2 breakdown rows. */
enum class OpType
{
    AlltoAll,      ///< EP dispatch/combine (inter-node).
    GradAllReduce, ///< DP gradient synchronisation (inter-node).
    AllGather,     ///< ESP-AllGather (intra-node).
    ReduceScatter, ///< ESP-ReduceScatter / MP (intra-node).
    Experts,       ///< Expert FFN compute.
    Routing,       ///< Gating function compute.
    Order,         ///< (I-)Ordering layout transform.
    Attention,     ///< Attention / other dense compute.
    Other,         ///< Anything else (residual dense parts).
    NumOpTypes
};

/** Short printable name of an OpType. */
const char *opTypeName(OpType t);

/** Physical exclusive resources a task can occupy. */
enum class Link
{
    InterNode, ///< NIC / InfiniBand path between nodes.
    IntraNode, ///< NVLink / shared-memory path inside a node.
    Compute,   ///< The GPU's SMs.
    NumLinks
};

/** Identifier of a task inside one TaskGraph. */
using TaskId = int32_t;

/** One schedulable unit of work. */
struct Task
{
    TaskId id = -1;
    std::string name;        ///< Human-readable label for traces.
    OpType op = OpType::Other;
    Link link = Link::Compute;
    int stream = 0;          ///< FIFO issue queue index.
    double duration = 0.0;   ///< Service time in milliseconds.
    int priority = 0;        ///< Link arbitration class; higher values
                             ///< yield to lower ones (background
                             ///< traffic such as gradient AllReduce).
    std::vector<TaskId> deps; ///< Tasks that must finish first.
};

/**
 * An append-only DAG of tasks. Issue order *within a stream* is the
 * order of addTask calls, mirroring how a runtime enqueues kernels.
 */
class TaskGraph
{
  public:
    /**
     * Append a task.
     *
     * @param name     Trace label.
     * @param op       Operation class (for per-op accounting).
     * @param link     Physical resource the task occupies.
     * @param stream   FIFO issue queue.
     * @param duration Service time in milliseconds (>= 0).
     * @param deps     Prerequisite task ids (must already exist).
     * @param priority Arbitration class; tasks with larger values
     *                 yield the link to concurrently-ready tasks with
     *                 smaller values.
     * @return         Id of the new task.
     */
    TaskId addTask(std::string name, OpType op, Link link, int stream,
                   double duration, std::vector<TaskId> deps = {},
                   int priority = 0);

    const std::vector<Task> &tasks() const { return tasks_; }
    const Task &task(TaskId id) const;
    size_t size() const { return tasks_.size(); }
    bool empty() const { return tasks_.empty(); }

    /** Highest stream index used plus one. */
    int numStreams() const { return num_streams_; }

  private:
    std::vector<Task> tasks_;
    int num_streams_ = 0;
};

} // namespace fsmoe::sim

#endif // FSMOE_SIM_TASK_GRAPH_H
