/**
 * @file
 * Task DAG representation consumed by the cluster simulator.
 *
 * A schedule (paper Fig. 3) is a set of tasks, each bound to a
 * *physical link* (exclusive hardware resource: inter-node NIC,
 * intra-node fabric, or GPU compute) and a *stream* (a FIFO issue
 * queue, the software-visible CUDA-stream analogue). Dependencies
 * express data flow, e.g. expert(i) needs ESP-AllGather(i).
 *
 * The representation is allocation-light by design: sweeps build and
 * simulate millions of short-lived graphs, so the per-task cost must
 * not include heap traffic. Tasks are PODs in one contiguous vector,
 * dependency lists live in a single flat pool addressed CSR-style by
 * (offset, count), and labels are lazy — a TaskLabel is a pointer to a
 * static string plus an optional numeric suffix, materialised into a
 * std::string only when a trace/gantt/Chrome exporter actually asks
 * for the name (see docs/PERFORMANCE.md).
 */
#ifndef FSMOE_SIM_TASK_GRAPH_H
#define FSMOE_SIM_TASK_GRAPH_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/logging.h"

namespace fsmoe::sim {

/** Operation classes, matching the paper's Table 2 breakdown rows. */
enum class OpType
{
    AlltoAll,      ///< EP dispatch/combine (inter-node).
    GradAllReduce, ///< DP gradient synchronisation (inter-node).
    AllGather,     ///< ESP-AllGather (intra-node).
    ReduceScatter, ///< ESP-ReduceScatter / MP (intra-node).
    Experts,       ///< Expert FFN compute.
    Routing,       ///< Gating function compute.
    Order,         ///< (I-)Ordering layout transform.
    Attention,     ///< Attention / other dense compute.
    Other,         ///< Anything else (residual dense parts).
    NumOpTypes
};

/** Short printable name of an OpType. */
const char *opTypeName(OpType t);

/** Physical exclusive resources a task can occupy. */
enum class Link
{
    InterNode, ///< NIC / InfiniBand path between nodes.
    IntraNode, ///< NVLink / shared-memory path inside a node.
    Compute,   ///< The GPU's SMs.
    NumLinks
};

/** Identifier of a task inside one TaskGraph. */
using TaskId = int32_t;

/**
 * Lazy task label: a static base string plus an optional decimal
 * suffix, e.g. {"d", 3} names the task "d3". Building a graph never
 * allocates or formats the name — str() does, and only the trace,
 * gantt, and Chrome exporters call it.
 *
 * @p base must outlive the graph; pass string literals (what all
 * builders do). The implicit const char* conversion keeps
 * addTask("routing", ...) call sites reading naturally.
 */
struct TaskLabel
{
    const char *base = ""; ///< Static-storage label text.
    int32_t index = -1;    ///< Decimal suffix appended when >= 0.

    TaskLabel() = default;
    TaskLabel(const char *b) : base(b) {} // NOLINT: implicit by design
    TaskLabel(const char *b, int32_t i) : base(b), index(i) {}

    /** Materialise the full name (allocates; exporter-only path). */
    std::string str() const
    {
        return index >= 0 ? base + std::to_string(index) : base;
    }

    /** First character, for the ASCII gantt ('#' when empty). */
    char glyph() const { return base[0] == '\0' ? '#' : base[0]; }
};

/**
 * One schedulable unit of work. Dependencies are not stored inline —
 * they live in the owning TaskGraph's flat pool; use TaskGraph::deps().
 */
struct Task
{
    TaskId id = -1;
    OpType op = OpType::Other;
    Link link = Link::Compute;
    int stream = 0;          ///< FIFO issue queue index.
    int priority = 0;        ///< Link arbitration class; higher values
                             ///< yield to lower ones (background
                             ///< traffic such as gradient AllReduce).
    double duration = 0.0;   ///< Service time in milliseconds.
    TaskLabel label;         ///< Lazy trace label.
    uint32_t depBegin = 0;   ///< Offset into the graph's dep pool.
    uint32_t depCount = 0;   ///< Number of dependencies.

    /** Materialised trace label (allocates; exporter-only path). */
    std::string name() const { return label.str(); }
};

/** Non-owning view of one task's dependency list. */
class DepSpan
{
  public:
    DepSpan(const TaskId *data, size_t size) : data_(data), size_(size) {}

    const TaskId *begin() const { return data_; }
    const TaskId *end() const { return data_ + size_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    TaskId operator[](size_t i) const { return data_[i]; }

  private:
    const TaskId *data_;
    size_t size_;
};

/**
 * An append-only DAG of tasks. Issue order *within a stream* is the
 * order of addTask calls, mirroring how a runtime enqueues kernels.
 */
class TaskGraph
{
  public:
    /**
     * Append a task.
     *
     * @param label    Lazy trace label (base must be a static string).
     * @param op       Operation class (for per-op accounting).
     * @param link     Physical resource the task occupies.
     * @param stream   FIFO issue queue.
     * @param duration Service time in milliseconds (>= 0).
     * @param deps     Prerequisite task ids (must already exist).
     * @param priority Arbitration class; tasks with larger values
     *                 yield the link to concurrently-ready tasks with
     *                 smaller values.
     * @return         Id of the new task.
     */
    TaskId addTask(TaskLabel label, OpType op, Link link, int stream,
                   double duration, std::initializer_list<TaskId> deps = {},
                   int priority = 0)
    {
        return addTaskImpl(label, op, link, stream, duration, deps.begin(),
                           deps.size(), priority);
    }

    /** Overload for dynamically built dependency lists. */
    TaskId addTask(TaskLabel label, OpType op, Link link, int stream,
                   double duration, const std::vector<TaskId> &deps,
                   int priority = 0)
    {
        return addTaskImpl(label, op, link, stream, duration, deps.data(),
                           deps.size(), priority);
    }

    /**
     * Pre-size the task vector and dependency pool. Call once per
     * build with (over-)estimates; repeated exact-fit reserves would
     * degrade push_back growth to quadratic copying.
     */
    void reserve(size_t tasks, size_t deps)
    {
        tasks_.reserve(tasks);
        dep_pool_.reserve(deps);
    }

    const std::vector<Task> &tasks() const { return tasks_; }
    const Task &task(TaskId id) const;

    /** The dependency list of @p id (view into the flat pool). */
    DepSpan deps(TaskId id) const
    {
        const Task &t = task(id);
        return {dep_pool_.data() + t.depBegin, t.depCount};
    }

    /** Materialised label of @p id (allocates; exporter-only path). */
    std::string taskName(TaskId id) const { return task(id).name(); }

    size_t size() const { return tasks_.size(); }
    bool empty() const { return tasks_.empty(); }

    /** Total dependency-edge count across all tasks. */
    size_t numDeps() const { return dep_pool_.size(); }

    /** The flat CSR dependency pool (audit and exporter use). */
    const std::vector<TaskId> &depPool() const { return dep_pool_; }

    /** Highest stream index used plus one. */
    int numStreams() const { return num_streams_; }

  private:
    TaskId addTaskImpl(TaskLabel label, OpType op, Link link, int stream,
                       double duration, const TaskId *deps, size_t n_deps,
                       int priority);

    std::vector<Task> tasks_;
    std::vector<TaskId> dep_pool_; ///< All tasks' deps, CSR-flattened.
    int num_streams_ = 0;
};

/**
 * Structural audit of a built graph (see base/audit.h): task ids are
 * dense and in order, every CSR dep span lies inside the pool, every
 * dependency edge points to an *earlier* task (which is the graph's
 * acyclicity invariant — issue order is a topological order), stream
 * indices are within [0, numStreams), durations are finite and
 * non-negative. Panics on the first violation; bumps the
 * "audit.taskGraph.verified" counter on success. O(tasks + deps).
 *
 * Call through FSMOE_AUDIT(auditTaskGraph(g)) so Release builds pay
 * nothing.
 */
void auditTaskGraph(const TaskGraph &g);

/**
 * Raw-span core of auditTaskGraph. Exposed separately because the
 * TaskGraph builder API cannot produce an invalid graph, so tests
 * exercise the audit's failure paths by handing it deliberately
 * corrupted task/pool arrays.
 */
void auditTasksAndDeps(const Task *tasks, size_t num_tasks,
                       const TaskId *dep_pool, size_t pool_size,
                       int num_streams);

} // namespace fsmoe::sim

#endif // FSMOE_SIM_TASK_GRAPH_H
