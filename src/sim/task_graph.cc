#include "sim/task_graph.h"

#include <algorithm>

namespace fsmoe::sim {

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::AlltoAll: return "AlltoAll";
      case OpType::GradAllReduce: return "AllReduce";
      case OpType::AllGather: return "AllGather";
      case OpType::ReduceScatter: return "ReduceScatter";
      case OpType::Experts: return "Experts";
      case OpType::Routing: return "Routing";
      case OpType::Order: return "Order";
      case OpType::Attention: return "Attention";
      case OpType::Other: return "Other";
      default: return "?";
    }
}

TaskId
TaskGraph::addTaskImpl(TaskLabel label, OpType op, Link link, int stream,
                       double duration, const TaskId *deps, size_t n_deps,
                       int priority)
{
    FSMOE_CHECK_ARG(duration >= 0.0, "task '", label.str(),
                    "' has negative duration ", duration);
    FSMOE_CHECK_ARG(stream >= 0, "negative stream index");
    TaskId id = static_cast<TaskId>(tasks_.size());
    for (size_t i = 0; i < n_deps; ++i) {
        FSMOE_CHECK_ARG(deps[i] >= 0 && deps[i] < id, "task '",
                        label.str(), "' depends on unknown task ", deps[i]);
    }
    Task t;
    t.id = id;
    t.op = op;
    t.link = link;
    t.stream = stream;
    t.duration = duration;
    t.priority = priority;
    t.label = label;
    t.depBegin = static_cast<uint32_t>(dep_pool_.size());
    t.depCount = static_cast<uint32_t>(n_deps);
    dep_pool_.insert(dep_pool_.end(), deps, deps + n_deps);
    tasks_.push_back(t);
    num_streams_ = std::max(num_streams_, stream + 1);
    return id;
}

const Task &
TaskGraph::task(TaskId id) const
{
    FSMOE_CHECK_ARG(id >= 0 && static_cast<size_t>(id) < tasks_.size(),
                    "task id out of range");
    return tasks_[id];
}

} // namespace fsmoe::sim
