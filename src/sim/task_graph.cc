#include "sim/task_graph.h"

#include <algorithm>
#include <cmath>

#include "base/audit.h"
#include "base/stats.h"

namespace fsmoe::sim {

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::AlltoAll: return "AlltoAll";
      case OpType::GradAllReduce: return "AllReduce";
      case OpType::AllGather: return "AllGather";
      case OpType::ReduceScatter: return "ReduceScatter";
      case OpType::Experts: return "Experts";
      case OpType::Routing: return "Routing";
      case OpType::Order: return "Order";
      case OpType::Attention: return "Attention";
      case OpType::Other: return "Other";
      default: return "?";
    }
}

TaskId
TaskGraph::addTaskImpl(TaskLabel label, OpType op, Link link, int stream,
                       double duration, const TaskId *deps, size_t n_deps,
                       int priority)
{
    FSMOE_CHECK_ARG(duration >= 0.0, "task '", label.str(),
                    "' has negative duration ", duration);
    FSMOE_CHECK_ARG(stream >= 0, "negative stream index");
    TaskId id = static_cast<TaskId>(tasks_.size());
    for (size_t i = 0; i < n_deps; ++i) {
        FSMOE_CHECK_ARG(deps[i] >= 0 && deps[i] < id, "task '",
                        label.str(), "' depends on unknown task ", deps[i]);
    }
    Task t;
    t.id = id;
    t.op = op;
    t.link = link;
    t.stream = stream;
    t.duration = duration;
    t.priority = priority;
    t.label = label;
    t.depBegin = static_cast<uint32_t>(dep_pool_.size());
    t.depCount = static_cast<uint32_t>(n_deps);
    dep_pool_.insert(dep_pool_.end(), deps, deps + n_deps);
    tasks_.push_back(t);
    num_streams_ = std::max(num_streams_, stream + 1);
    return id;
}

void
auditTasksAndDeps(const Task *tasks, size_t num_tasks,
                  const TaskId *dep_pool, size_t pool_size,
                  int num_streams)
{
    for (size_t i = 0; i < num_tasks; ++i) {
        const Task &t = tasks[i];
        if (t.id != static_cast<TaskId>(i))
            FSMOE_PANIC("task graph audit: task at index ", i,
                        " carries id ", t.id, " (ids must be dense)");
        if (t.stream < 0 || t.stream >= num_streams)
            FSMOE_PANIC("task graph audit: task ", t.id, " on stream ",
                        t.stream, " outside [0, ", num_streams, ")");
        if (!(t.duration >= 0.0) || !std::isfinite(t.duration))
            FSMOE_PANIC("task graph audit: task ", t.id,
                        " has non-finite or negative duration ",
                        t.duration);
        uint64_t dep_end =
            static_cast<uint64_t>(t.depBegin) + t.depCount;
        if (dep_end > pool_size)
            FSMOE_PANIC("task graph audit: task ", t.id,
                        " CSR dep span [", t.depBegin, ", ", dep_end,
                        ") exceeds pool size ", pool_size);
        for (uint32_t j = 0; j < t.depCount; ++j) {
            TaskId d = dep_pool[t.depBegin + j];
            if (d < 0 || d >= t.id)
                FSMOE_PANIC("task graph audit: task ", t.id,
                            " depends on ", d,
                            " which is not an earlier task (dangling "
                            "edge or cycle)");
        }
    }
    // Parenthesised call keeps this exempt from fsmoe_lint's
    // static-mutable rule; the counter itself is an atomic.
    static stats::Counter &verified =
        stats::counter("audit.taskGraph.verified");
    verified.inc();
}

void
auditTaskGraph(const TaskGraph &g)
{
    auditTasksAndDeps(g.tasks().data(), g.size(), g.depPool().data(),
                      g.numDeps(), g.numStreams());
}

const Task &
TaskGraph::task(TaskId id) const
{
    FSMOE_CHECK_ARG(id >= 0 && static_cast<size_t>(id) < tasks_.size(),
                    "task id out of range");
    return tasks_[id];
}

} // namespace fsmoe::sim
