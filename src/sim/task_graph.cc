#include "sim/task_graph.h"

namespace fsmoe::sim {

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::AlltoAll: return "AlltoAll";
      case OpType::GradAllReduce: return "AllReduce";
      case OpType::AllGather: return "AllGather";
      case OpType::ReduceScatter: return "ReduceScatter";
      case OpType::Experts: return "Experts";
      case OpType::Routing: return "Routing";
      case OpType::Order: return "Order";
      case OpType::Attention: return "Attention";
      case OpType::Other: return "Other";
      default: return "?";
    }
}

TaskId
TaskGraph::addTask(std::string name, OpType op, Link link, int stream,
                   double duration, std::vector<TaskId> deps, int priority)
{
    FSMOE_CHECK_ARG(duration >= 0.0, "task '", name,
                    "' has negative duration ", duration);
    FSMOE_CHECK_ARG(stream >= 0, "negative stream index");
    TaskId id = static_cast<TaskId>(tasks_.size());
    for (TaskId d : deps) {
        FSMOE_CHECK_ARG(d >= 0 && d < id, "task '", name,
                        "' depends on unknown task ", d);
    }
    Task t;
    t.id = id;
    t.name = std::move(name);
    t.op = op;
    t.link = link;
    t.stream = stream;
    t.duration = duration;
    t.priority = priority;
    t.deps = std::move(deps);
    tasks_.push_back(std::move(t));
    num_streams_ = std::max(num_streams_, stream + 1);
    return id;
}

const Task &
TaskGraph::task(TaskId id) const
{
    FSMOE_CHECK_ARG(id >= 0 && static_cast<size_t>(id) < tasks_.size(),
                    "task id out of range");
    return tasks_[id];
}

} // namespace fsmoe::sim
