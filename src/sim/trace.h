/**
 * @file
 * Structured timeline extraction from a simulated run — the hook trace
 * exporters build on. Pairs each TaskGraph task with its SimResult
 * timing and presents the merged record in task-id order.
 */
#ifndef FSMOE_SIM_TRACE_H
#define FSMOE_SIM_TRACE_H

#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/task_graph.h"

namespace fsmoe::sim {

/** One executed task with its identity and placement. */
struct TraceEvent
{
    TaskId id = -1;
    std::string name;       ///< Task label from the graph.
    OpType op = OpType::Other;
    Link link = Link::Compute;
    int stream = 0;
    double startMs = 0.0;
    double durationMs = 0.0;
};

/** Short printable name of a Link. */
const char *linkName(Link link);

/**
 * Merge @p graph and @p result into per-task events, ordered by task
 * id. The result must come from running exactly @p graph.
 */
std::vector<TraceEvent> traceEvents(const TaskGraph &graph,
                                    const SimResult &result);

} // namespace fsmoe::sim

#endif // FSMOE_SIM_TRACE_H
