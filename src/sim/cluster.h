/**
 * @file
 * Cluster (testbed) descriptions for the simulated hardware.
 *
 * The paper evaluates on two physical clusters and publishes the fitted
 * alpha/beta coefficients of every communication and GEMM performance
 * model in the caption of Fig. 5. We parameterise the simulator with
 * exactly those coefficients, so the simulated testbeds behave like the
 * paper's own analytical description of its hardware.
 *
 * Unit conventions: times in milliseconds, sizes in bytes, GEMM work in
 * multiply-accumulate operations (the paper plots GEMM against "input
 * size" = m*k*n-proportional work).
 */
#ifndef FSMOE_SIM_CLUSTER_H
#define FSMOE_SIM_CLUSTER_H

#include <string>

namespace fsmoe::sim {

/** Coefficients of one linear cost model t(n) = alpha + beta * n. */
struct CostCoeffs
{
    double alpha = 0.0; ///< Startup latency in milliseconds.
    double beta = 0.0;  ///< Milliseconds per byte (or per MAC for GEMM).

    /** Evaluate the model at volume @p n. */
    double operator()(double n) const { return alpha + beta * n; }
};

/**
 * A homogeneous GPU cluster: topology counts plus the ground-truth cost
 * coefficients the simulator uses to "measure" task durations.
 */
struct ClusterSpec
{
    std::string name;
    int numNodes = 1;
    int gpusPerNode = 1;

    CostCoeffs gemm;          ///< Per-MAC compute model.
    CostCoeffs alltoall;      ///< Inter-node AlltoAll (per byte).
    CostCoeffs allgather;     ///< Intra-node ESP-AllGather (per byte).
    CostCoeffs reducescatter; ///< Intra-node ESP-ReduceScatter (per byte).
    CostCoeffs allreduce;     ///< Inter-node Gradient-AllReduce (per byte).

    /// Relative stddev of multiplicative measurement noise applied when
    /// the profiler "measures" this cluster (0 disables noise).
    double measurementNoise = 0.0;

    int totalGpus() const { return numNodes * gpusPerNode; }
};

/**
 * Testbed A: 6 nodes x 8 Nvidia A6000, NVLink intra-node, 200 Gb/s IB.
 * Coefficients from Fig. 5(a)/(b) captions. Two caption values
 * (beta_ag = 2.32e-06, beta_ar = 4.95e-06) are inconsistent with the
 * plotted curves and with Table 2's measured times by exactly one
 * order of magnitude; we apply the 1e-1 correction and record the
 * discrepancy in EXPERIMENTS.md.
 */
ClusterSpec testbedA();

/**
 * Testbed B: 8 nodes x 4 Nvidia RTX 2080Ti, PCIe intra-node, 100 Gb/s
 * IB. Coefficients from Fig. 5(c)/(d) captions, used verbatim.
 */
ClusterSpec testbedB();

/**
 * A testbed scaled to @p num_nodes nodes (for the Fig. 7 varied-P
 * sweep): inter-node betas scale with the collective's node count as
 * (P'-1)/P' ring steps; intra-node and compute are unchanged.
 */
ClusterSpec scaledTestbedA(int num_nodes);

} // namespace fsmoe::sim

#endif // FSMOE_SIM_CLUSTER_H
