#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>

namespace fsmoe::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Mutable per-task execution state. */
struct TaskState
{
    int pendingDeps = 0;
    double readyTime = 0.0; ///< Max finish time over dependencies so far.
    bool started = false;
    bool finished = false;
};

} // namespace

SimResult
Simulator::run(const TaskGraph &graph) const
{
    const auto &tasks = graph.tasks();
    const size_t n = tasks.size();
    SimResult result;
    result.trace.resize(n);
    if (n == 0)
        return result;

    std::vector<TaskState> state(n);
    std::vector<std::vector<TaskId>> dependents(n);
    for (const Task &t : tasks) {
        state[t.id].pendingDeps = static_cast<int>(t.deps.size());
        for (TaskId d : t.deps)
            dependents[d].push_back(t.id);
    }

    // Per-stream FIFO issue queues in addTask order.
    std::vector<std::vector<TaskId>> streams(graph.numStreams());
    for (const Task &t : tasks)
        streams[t.stream].push_back(t.id);
    std::vector<size_t> head(graph.numStreams(), 0);

    std::array<double, static_cast<size_t>(Link::NumLinks)> link_free{};
    link_free.fill(0.0);

    // Completion events ordered by time.
    using Event = std::pair<double, TaskId>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

    size_t finished_count = 0;
    double now = 0.0;

    auto try_start = [&]() {
        // Keep starting tasks until no link can accept one at `now`.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (size_t li = 0; li < link_free.size(); ++li) {
                if (link_free[li] > now)
                    continue;
                // Eligible = head of its stream, deps done, wants link li.
                // Pick by priority class first (background traffic such
                // as gradient AllReduce yields), then earliest-ready,
                // then issue order.
                TaskId best = -1;
                double best_ready = kInf;
                int best_prio = std::numeric_limits<int>::max();
                for (int s = 0; s < graph.numStreams(); ++s) {
                    if (head[s] >= streams[s].size())
                        continue;
                    TaskId id = streams[s][head[s]];
                    const Task &t = tasks[id];
                    if (static_cast<size_t>(t.link) != li)
                        continue;
                    const TaskState &st = state[id];
                    if (st.pendingDeps > 0 || st.readyTime > now)
                        continue;
                    bool better = t.priority < best_prio ||
                                  (t.priority == best_prio &&
                                   (st.readyTime < best_ready ||
                                    (st.readyTime == best_ready &&
                                     (best == -1 || id < best))));
                    if (better) {
                        best_prio = t.priority;
                        best_ready = st.readyTime;
                        best = id;
                    }
                }
                if (best < 0)
                    continue;
                const Task &t = tasks[best];
                double finish = now + t.duration;
                state[best].started = true;
                result.trace[best] = {best, now, finish};
                link_free[li] = finish;
                head[t.stream]++;
                events.emplace(finish, best);
                progressed = true;
            }
        }
    };

    try_start();
    while (finished_count < n) {
        FSMOE_ASSERT(!events.empty(),
                     "simulator deadlock: no runnable task; check for "
                     "dependency cycles or stream-order inversions");
        auto [t_now, id] = events.top();
        events.pop();
        now = t_now;
        if (state[id].finished)
            continue;
        state[id].finished = true;
        finished_count++;
        result.opTime[static_cast<size_t>(tasks[id].op)] +=
            tasks[id].duration;
        result.makespan = std::max(result.makespan, t_now);
        for (TaskId dep : dependents[id]) {
            TaskState &ds = state[dep];
            ds.pendingDeps--;
            ds.readyTime = std::max(ds.readyTime, t_now);
        }
        try_start();
    }
    return result;
}

std::string
Simulator::gantt(const TaskGraph &graph, const SimResult &result, int columns)
{
    FSMOE_CHECK_ARG(columns >= 10, "gantt needs at least 10 columns");
    std::ostringstream oss;
    double span = std::max(result.makespan, 1e-9);
    for (int s = 0; s < graph.numStreams(); ++s) {
        std::string row(columns, '.');
        for (const Task &t : graph.tasks()) {
            if (t.stream != s || t.duration <= 0.0)
                continue;
            const TaskTrace &tr = result.trace[t.id];
            int c0 = static_cast<int>(tr.start / span * (columns - 1));
            int c1 = static_cast<int>(tr.finish / span * (columns - 1));
            char glyph = t.name.empty() ? '#' : t.name[0];
            for (int c = c0; c <= c1 && c < columns; ++c)
                row[c] = glyph;
        }
        oss << "stream " << s << " |" << row << "|\n";
    }
    oss << "makespan " << result.makespan << " ms\n";
    return oss.str();
}

} // namespace fsmoe::sim
