#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>

#include "base/audit.h"
#include "base/stats.h"
#include "sim/trace.h"

namespace fsmoe::sim {

namespace {

/**
 * Registry handles, resolved once. The hot loop counts into plain
 * locals and flushes here once per run() — the simulator's inner loop
 * never touches an atomic.
 */
struct SimStats
{
    stats::Counter &runs = stats::counter("sim.runs");
    stats::Counter &tasks = stats::counter("sim.tasks.executed");
    stats::Counter &events = stats::counter("sim.events.processed");
    stats::Counter &heapPushes = stats::counter("sim.heap.pushes");
    stats::Counter &heapPops = stats::counter("sim.heap.pops");
    std::array<stats::Gauge *, static_cast<size_t>(Link::NumLinks)>
        linkBusy{};

    SimStats()
    {
        for (size_t li = 0; li < linkBusy.size(); ++li)
            linkBusy[li] = &stats::gauge(
                std::string("sim.link.") +
                linkName(static_cast<Link>(li)) + ".busyMs");
    }

    static SimStats &instance()
    {
        static SimStats s;
        return s;
    }
};

} // namespace

/*
 * The inner loop maintains per-link binary heaps of *issuable*
 * candidates — stream heads whose dependencies have all finished —
 * ordered by the arbitration key (priority, readyTime, issue id).
 * When a task finishes, only its dependents are examined; when a task
 * starts, only the new head of its stream is. That replaces the naive
 * O(links x streams) rescan per event with O(log n) heap maintenance
 * while reproducing the naive scan's choices bit-exactly (the fuzz
 * test in tests/sim_fuzz_test.cc checks this against the retained
 * reference implementation in tests/sim_reference.h).
 *
 * Why every heap entry is eligible *now*: a task's readyTime is the
 * max finish time over its dependencies, which is fixed by the time
 * the last dependency completes — an event at or before the current
 * clock. A task enters a heap only once it is the head of its stream
 * with zero pending dependencies, so readyTime <= now holds at
 * insertion and forever after (the clock never rewinds). The naive
 * scan's `readyTime > now` filter is therefore vacuous, and the heap
 * minimum *is* the task the scan would have picked.
 */

SimResult
Simulator::run(const TaskGraph &graph) const
{
    // Debug-mode audit: full CSR/acyclicity validation of the input
    // graph (compiled out of Release; see base/audit.h).
    FSMOE_AUDIT(auditTaskGraph(graph));

    const auto &tasks = graph.tasks();
    const size_t n = tasks.size();
    SimResult result;
    result.trace.resize(n);
    SimStats &sim_stats = SimStats::instance();
    sim_stats.runs.inc();
    if (n == 0)
        return result;

    // Local telemetry, flushed to the registry once after the loop.
    uint64_t heap_pushes = 0;
    uint64_t heap_pops = 0;
    uint64_t events_processed = 0;
#if FSMOE_AUDIT_ENABLED
    uint64_t audit_pop_checks = 0;
    const bool audit_on = audit::enabled();
#endif

    // Mutable per-task state, flat (one allocation each, not per task).
    std::vector<int32_t> pending(n);
    std::vector<double> ready(n, 0.0);
    std::vector<uint8_t> finished(n, 0);

    // Reverse CSR: dependents of each task, built by counting sort
    // over the graph's flat dependency pool.
    std::vector<uint32_t> rev_off(n + 1, 0);
    for (const Task &t : tasks) {
        pending[t.id] = static_cast<int32_t>(t.depCount);
        for (TaskId d : graph.deps(t.id))
            rev_off[static_cast<size_t>(d) + 1]++;
    }
    for (size_t i = 0; i < n; ++i)
        rev_off[i + 1] += rev_off[i];
    std::vector<TaskId> rev(graph.numDeps());
    {
        std::vector<uint32_t> cursor(rev_off.begin(), rev_off.end() - 1);
        for (const Task &t : tasks)
            for (TaskId d : graph.deps(t.id))
                rev[cursor[d]++] = t.id;
    }

    // Stream CSR: per-stream FIFO issue queues in addTask order;
    // head[s] is an absolute cursor into str_tasks.
    const int num_streams = graph.numStreams();
    std::vector<uint32_t> str_off(num_streams + 1, 0);
    for (const Task &t : tasks)
        str_off[t.stream + 1]++;
    for (int s = 0; s < num_streams; ++s)
        str_off[s + 1] += str_off[s];
    std::vector<TaskId> str_tasks(n);
    std::vector<uint32_t> head(str_off.begin(), str_off.end() - 1);
    for (const Task &t : tasks)
        str_tasks[head[t.stream]++] = t.id;
    std::copy(str_off.begin(), str_off.end() - 1, head.begin());

    // Per-link candidate heaps. Entries carry their full arbitration
    // key so comparisons never chase back into the task array, and
    // std::push_heap keeps the *largest* element at the front, so the
    // comparator inverts the key: smallest (priority, readyTime, id)
    // wins the link.
    struct Cand
    {
        double ready;
        int32_t priority;
        TaskId id;
    };
    auto heap_after = [](const Cand &a, const Cand &b) {
        if (a.priority != b.priority)
            return a.priority > b.priority;
        if (a.ready != b.ready)
            return a.ready > b.ready;
        return a.id > b.id;
    };
    std::array<std::vector<Cand>, static_cast<size_t>(Link::NumLinks)>
        cands;
    auto push_cand = [&](TaskId id) {
        const Task &t = tasks[id];
        auto &h = cands[static_cast<size_t>(t.link)];
        h.push_back({ready[id], t.priority, id});
        std::push_heap(h.begin(), h.end(), heap_after);
        ++heap_pushes;
    };

    // A task is issuable iff it is its stream's current head and has
    // no pending dependencies; it enters its link's heap exactly once,
    // at whichever of the two conditions becomes true last.
    auto push_if_issuable_head = [&](int s) {
        if (head[s] < str_off[s + 1]) {
            TaskId id = str_tasks[head[s]];
            if (pending[id] == 0)
                push_cand(id);
        }
    };
    for (int s = 0; s < num_streams; ++s)
        push_if_issuable_head(s);

    std::array<double, static_cast<size_t>(Link::NumLinks)> link_free{};
    link_free.fill(0.0);

    // Completion events ordered by (time, issue id).
    using Event = std::pair<double, TaskId>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

    size_t finished_count = 0;
    double now = 0.0;

    auto start_best = [&](size_t li) {
        auto &h = cands[li];
        if (h.empty())
            return false;
        std::pop_heap(h.begin(), h.end(), heap_after);
        TaskId id = h.back().id;
        h.pop_back();
        ++heap_pops;
        const Task &t = tasks[id];
#if FSMOE_AUDIT_ENABLED
        // Ready-heap invariants: whatever wins a link must be an
        // unfinished stream head with no pending deps, eligible *now*,
        // on a link that is actually free (the header comment's "every
        // heap entry is eligible now" argument, checked live).
        if (audit_on) {
            if (finished[id])
                FSMOE_PANIC("heap audit: popped finished task ", id);
            if (pending[id] != 0)
                FSMOE_PANIC("heap audit: popped task ", id, " with ",
                            pending[id], " pending dependencies");
            if (static_cast<size_t>(t.link) != li)
                FSMOE_PANIC("heap audit: task ", id, " on link ",
                            linkName(t.link),
                            " surfaced in another link's heap");
            if (head[t.stream] >= str_off[t.stream + 1] ||
                str_tasks[head[t.stream]] != id)
                FSMOE_PANIC("heap audit: popped task ", id,
                            " is not the head of stream ", t.stream);
            if (ready[id] > now)
                FSMOE_PANIC("heap audit: popped task ", id,
                            " ready at ", ready[id],
                            " which is after now=", now);
            if (link_free[li] > now)
                FSMOE_PANIC("heap audit: link ", linkName(t.link),
                            " busy until ", link_free[li],
                            " issued a task at now=", now);
            ++audit_pop_checks;
        }
#endif
        double finish = now + t.duration;
        result.trace[id] = {id, now, finish};
        link_free[li] = finish;
        events.emplace(finish, id);
        head[t.stream]++;
        push_if_issuable_head(t.stream);
        return true;
    };

    auto try_start = [&]() {
        // Keep starting tasks until no link can accept one at `now`.
        // Pass structure (links in index order, at most one start per
        // link per pass) matches the reference scan, so the start
        // sequence — and with it every timestamp — is identical.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (size_t li = 0; li < link_free.size(); ++li) {
                if (link_free[li] > now)
                    continue;
                if (start_best(li))
                    progressed = true;
            }
        }
    };

    try_start();
    while (finished_count < n) {
        FSMOE_ASSERT(!events.empty(),
                     "simulator deadlock: no runnable task; check for "
                     "dependency cycles or stream-order inversions");
        auto [t_now, id] = events.top();
        events.pop();
        ++events_processed;
        now = t_now;
        if (finished[id])
            continue;
        finished[id] = 1;
        finished_count++;
        result.opTime[static_cast<size_t>(tasks[id].op)] +=
            tasks[id].duration;
        result.linkBusyMs[static_cast<size_t>(tasks[id].link)] +=
            tasks[id].duration;
        result.makespan = std::max(result.makespan, t_now);
        for (uint32_t e = rev_off[id]; e < rev_off[id + 1]; ++e) {
            TaskId dep = rev[e];
            ready[dep] = std::max(ready[dep], t_now);
            if (--pending[dep] == 0) {
                int s = tasks[dep].stream;
                if (head[s] < str_off[s + 1] && str_tasks[head[s]] == dep)
                    push_cand(dep);
            }
        }
        try_start();
    }

#if FSMOE_AUDIT_ENABLED
    if (audit_pop_checks > 0) {
        static stats::Counter &pop_checks =
            stats::counter("audit.heap.popChecks");
        pop_checks.inc(audit_pop_checks);
    }
#endif
    sim_stats.tasks.inc(n);
    sim_stats.events.inc(events_processed);
    sim_stats.heapPushes.inc(heap_pushes);
    sim_stats.heapPops.inc(heap_pops);
    for (size_t li = 0; li < result.linkBusyMs.size(); ++li)
        sim_stats.linkBusy[li]->add(result.linkBusyMs[li]);
    return result;
}

std::string
Simulator::gantt(const TaskGraph &graph, const SimResult &result, int columns)
{
    FSMOE_CHECK_ARG(columns >= 10, "gantt needs at least 10 columns");
    std::ostringstream oss;
    double span = std::max(result.makespan, 1e-9);
    for (int s = 0; s < graph.numStreams(); ++s) {
        std::string row(columns, '.');
        for (const Task &t : graph.tasks()) {
            if (t.stream != s || t.duration <= 0.0)
                continue;
            const TaskTrace &tr = result.trace[t.id];
            // Truncate both ends consistently, clamp into the axis,
            // and force c1 >= c0 so every executed task renders at
            // least one cell (a task starting at the makespan lands
            // in the last column instead of vanishing).
            int c0 = static_cast<int>(tr.start / span * (columns - 1));
            int c1 = static_cast<int>(tr.finish / span * (columns - 1));
            c0 = std::clamp(c0, 0, columns - 1);
            c1 = std::clamp(c1, c0, columns - 1);
            for (int c = c0; c <= c1; ++c)
                row[c] = t.label.glyph();
        }
        oss << "stream " << s << " |" << row << "|\n";
    }
    oss << "makespan " << result.makespan << " ms\n";
    return oss.str();
}

} // namespace fsmoe::sim
