/**
 * @file
 * Discrete-event executor for schedule task graphs.
 *
 * Execution rules (paper §4's implicit machine model):
 *   1. A task may start only when every dependency has finished.
 *   2. Tasks on the same stream start in issue order (FIFO), like
 *      kernels on a CUDA stream.
 *   3. Each physical link (inter-node NIC, intra-node fabric, GPU
 *      compute) runs at most one task at a time — in particular two
 *      inter-node collectives (AlltoAll and Gradient-AllReduce) never
 *      overlap, which is the contention rule FSMoE's schedule is
 *      designed around.
 *   4. Among simultaneously eligible tasks competing for a free link,
 *      arbitration is by the key (priority class, readiness time,
 *      issue id), smallest first: background traffic (larger priority
 *      values) yields, then the task that became ready earliest wins,
 *      then issue order breaks exact ties. This total order makes
 *      simulation deterministic — bit-identical across runs, thread
 *      counts, and processes (see docs/PERFORMANCE.md for the full
 *      determinism contract).
 *
 * Complexity: O((n + e) log n) for n tasks and e dependency edges.
 * Eligibility is maintained incrementally in per-link heaps ordered by
 * the arbitration key — a completion event touches only the finished
 * task's dependents and the freed streams' new heads, never the whole
 * stream set (the pre-optimisation loop rescanned every stream for
 * every link on every event, O(events x links x streams); it survives
 * as the reference implementation in tests/sim_reference.h and is the
 * baseline bench_sim_hotpath measures speedup against).
 */
#ifndef FSMOE_SIM_SIMULATOR_H
#define FSMOE_SIM_SIMULATOR_H

#include <array>
#include <string>
#include <vector>

#include "sim/task_graph.h"

namespace fsmoe::sim {

/** Start/finish record for one executed task. */
struct TaskTrace
{
    TaskId id = -1;
    double start = 0.0;
    double finish = 0.0;
};

/** Result of simulating one task graph. */
struct SimResult
{
    /// Completion time of the last task, in milliseconds.
    double makespan = 0.0;
    /// Per-task timing in task-id order.
    std::vector<TaskTrace> trace;
    /// Total busy milliseconds per operation class.
    std::array<double, static_cast<size_t>(OpType::NumOpTypes)> opTime{};
    /// Total busy milliseconds per physical link (feeds the per-link
    /// utilization analytics in sim/run_report.h and the optional
    /// result-store columns).
    std::array<double, static_cast<size_t>(Link::NumLinks)> linkBusyMs{};

    /** Busy time accumulated by tasks of class @p t. */
    double timeOf(OpType t) const
    {
        return opTime[static_cast<size_t>(t)];
    }

    /** Busy time accumulated on link @p l. */
    double busyOf(Link l) const
    {
        return linkBusyMs[static_cast<size_t>(l)];
    }
};

/**
 * The discrete-event engine. Stateless between runs; safe to reuse.
 */
class Simulator
{
  public:
    /** Execute @p graph to completion and return the timing. */
    SimResult run(const TaskGraph &graph) const;

    /**
     * Render an ASCII Gantt chart of a simulated run, one row per
     * stream, for debugging and the schedule_explorer example.
     *
     * @param graph   The graph that was simulated.
     * @param result  Output of run() on the same graph.
     * @param columns Character width of the time axis.
     */
    static std::string gantt(const TaskGraph &graph, const SimResult &result,
                             int columns = 100);
};

} // namespace fsmoe::sim

#endif // FSMOE_SIM_SIMULATOR_H
