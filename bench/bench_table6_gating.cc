/**
 * @file
 * Regenerates paper Table 6: iteration time of the real-world GPT2-XL
 * MoE model on Testbed B under each of the four gating functions,
 * DeepSpeed-MoE vs FSMoE.
 *
 * Two ingredients are combined, as in the paper:
 *  1. the schedule difference (DS-MoE sequential vs FSMoE), priced by
 *     the simulator;
 *  2. the gating-kernel difference: FSMoE's fused gate kernels vs
 *     DS-MoE's original implementations. We measure our actual C++
 *     gate kernels on a real token batch for the FSMoE column and
 *     apply per-gate slowdown factors for DS-MoE's originals
 *     (calibrated from Table 6's measured per-gate spreads; the gate
 *     term is <1% of the iteration, so the factors' role is to
 *     reproduce the per-gate ordering, not the totals).
 */
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/gate.h"
#include "core/schedules/schedule.h"
#include "model/models.h"
#include "tensor/rng.h"

namespace {

using namespace fsmoe;

/** Wall-clock microseconds of one gate forward on (tokens, M). */
double
measureGateUs(core::GateKind kind, int64_t tokens, int64_t embed,
              int num_experts)
{
    Rng rng(5);
    auto gate = core::makeGate(kind, embed, num_experts, 2, rng);
    Tensor x = rng.normalTensor({tokens, embed});
    gate->forward(x); // warm-up
    auto start = std::chrono::steady_clock::now();
    constexpr int kIters = 5;
    for (int i = 0; i < kIters; ++i)
        gate->forward(x);
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(end - start).count() /
           kIters;
}

double
dsGateSlowdown(core::GateKind kind)
{
    // DS-MoE's original gate implementations vs FSMoE's fused ones.
    switch (kind) {
      case core::GateKind::GShard: return 2.0;
      case core::GateKind::XMoe: return 2.6;
      case core::GateKind::Sigmoid: return 2.0;
      case core::GateKind::ExpertChoice: return 1.5;
      default: return 1.0;
    }
}

} // namespace

int
main()
{
    using namespace fsmoe;
    sim::ClusterSpec cluster = sim::testbedB();
    bench::header("Table 6: GPT2-XL iteration time per gating function "
                  "on " + cluster.name);
    std::printf("%-16s %14s %14s %10s %18s\n", "Gating", "DS-MoE[ms]",
                "FSMoE[ms]", "Speedup", "gate kernel [us]");

    model::ModelSpec spec = model::gpt2XlMoe(cluster.numNodes, 1, 256, 24);
    core::ModelCost base = model::makeModelCost(
        spec, cluster, model::paperParallelism(cluster));

    const core::GateKind gates[] = {
        core::GateKind::GShard, core::GateKind::XMoe,
        core::GateKind::Sigmoid, core::GateKind::ExpertChoice};
    for (core::GateKind kind : gates) {
        // Gate kernel relative costs scale the routing term only.
        core::ModelCost ds_cost = base;
        for (core::LayerCost &lc : ds_cost.layers) {
            lc.fwd.routing *= dsGateSlowdown(kind);
            lc.bwd.routing *= dsGateSlowdown(kind);
        }
        double ds =
            core::Schedule::create("ds-moe")
                ->iterationTimeMs(ds_cost);
        double fs = core::Schedule::create("fsmoe")
                        ->iterationTimeMs(base);
        double kernel_us =
            measureGateUs(kind, /*tokens=*/1024, /*embed=*/256,
                          cluster.numNodes);
        std::printf("%-16s %14.1f %14.1f %9.2fx %18.1f\n",
                    core::gateKindName(kind), ds, fs, ds / fs, kernel_us);
    }
    std::printf("\nPaper reference: GShard 968.1->707.7 (1.37x), X-MoE "
                "1064.0->746.9 (1.42x), Sigmoid 986.6->721.0\n(1.37x), EC "
                "909.9->685.5 (1.33x). Expect the same ordering: X-MoE "
                "largest gain, EC smallest.\n");
    return 0;
}
