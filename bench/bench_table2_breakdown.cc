/**
 * @file
 * Regenerates paper Table 2: per-operation time breakdown (ms and % of
 * phase) of one transformer layer of GPT2-XL and Mixtral-7B with
 * B = 4, L = 1024 on both simulated testbeds.
 */
#include <cstdio>

#include "bench_util.h"
#include "core/perf_model.h"
#include "model/models.h"

namespace {

using namespace fsmoe;

struct Row
{
    const char *label;
    core::PhaseTimes t;
};

void
printRow(const Row &row)
{
    const core::PhaseTimes &t = row.t;
    const double total = 2.0 * t.a2a + t.gradAllReduce + t.allgather +
                         t.reducescatter + t.experts + t.routing +
                         2.0 * t.order + t.attention;
    auto cell = [&](double v) {
        std::printf(" %7.1f(%5.2f%%)", v, 100.0 * v / total);
    };
    std::printf("%-18s", row.label);
    cell(2.0 * t.a2a);
    cell(t.gradAllReduce);
    cell(t.allgather);
    cell(t.reducescatter);
    cell(t.experts);
    cell(t.routing);
    cell(2.0 * t.order);
    cell(t.attention);
    std::printf("\n");
}

void
runTestbed(const sim::ClusterSpec &cluster)
{
    bench::header("Table 2 breakdown on " + cluster.name +
                  " (per transformer layer, B=4, L=1024, ms)");
    std::printf("%-18s %15s %15s %15s %15s %15s %15s %15s %15s\n", "",
                "AlltoAll", "AllReduce", "AllGather", "ReduceScatter",
                "Experts", "Routing", "Order", "Attention");

    core::ParallelConfig par = model::paperParallelism(cluster);
    core::PerfModelSet models = core::PerfModelSet::fromCluster(cluster);

    model::ModelSpec gpt = model::gpt2XlMoe(cluster.numNodes, 4, 1024);
    model::ModelSpec mix = model::mixtral7B(cluster.numNodes, 4, 1024);
    for (const model::ModelSpec &spec : {gpt, mix}) {
        core::Workload w = core::deriveWorkload(spec.layer, par);
        Row fwd{spec.name == "GPT2-XL-MoE" ? "GPT2-Forward"
                                           : "Mixtral-Forward",
                core::forwardTimes(models, w)};
        Row bwd{spec.name == "GPT2-XL-MoE" ? "GPT2-Backward"
                                           : "Mixtral-Backward",
                core::backwardTimes(models, w)};
        printRow(fwd);
        printRow(bwd);
    }
    std::printf("\nPaper shape check: communication (AlltoAll + AllReduce "
                "+ AllGather + ReduceScatter)\nexceeds 50%% of each "
                "phase, AlltoAll alone is 10-35%%, routing/order are "
                "negligible.\n\n");
}

} // namespace

int
main()
{
    runTestbed(fsmoe::sim::testbedA());
    runTestbed(fsmoe::sim::testbedB());
    return 0;
}
