/**
 * @file
 * Measures the schedule auto-tuner end to end on the demo query: the
 * cold search (every candidate probed through the sweep engine), a
 * second query on the same tuner (advisor-cache hit, zero
 * simulations), and a fresh-tuner search that shares nothing — the
 * worst case a user pays.
 *
 * With `--bench-json FILE` the numbers are written as a flat JSON
 * document (CI uploads it as BENCH_tuner.json), so advisor latency
 * has a machine-readable trajectory across PRs like the simulator
 * hot path does.
 */
#include <chrono>
#include <cstdio>
#include <cstring>

#include "base/stats.h"
#include "bench_util.h"
#include "runtime/tuner.h"

namespace {

using namespace fsmoe;
using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--bench-json FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::header("schedule auto-tuner (demo query)");

    runtime::TuneQuery query;
    query.model = "gpt2xl-moe";
    query.cluster = "testbedA";

    // Cold: fresh tuner, fresh caches — the full search.
    stats::Counter &sim_runs = stats::counter("sim.runs");
    runtime::Tuner tuner;
    const uint64_t sims_before = sim_runs.value();
    const auto t0 = Clock::now();
    const runtime::TuneAnswer cold = tuner.tune(query);
    const double cold_ms = elapsedMs(t0);
    const uint64_t cold_sims = sim_runs.value() - sims_before;

    // Warm: same tuner, same query — an advisor-cache lookup.
    const auto t1 = Clock::now();
    const runtime::TuneAnswer warm = tuner.tune(query);
    const double warm_ms = elapsedMs(t1);
    if (!warm.fromCache || warm.best != cold.best) {
        std::fprintf(stderr, "warm query was not served from cache\n");
        return 1;
    }

    // Re-search on a fresh tuner: nothing shared, the worst case.
    runtime::Tuner fresh;
    const auto t2 = Clock::now();
    (void)fresh.tune(query);
    const double fresh_ms = elapsedMs(t2);

    std::printf("best spec      : %s (%.3f ms makespan)\n",
                cold.best.c_str(), cold.bestMakespanMs);
    std::printf("cold search    : %8.1f ms  (%zu specs, %llu sims, "
                "%zu on frontier)\n",
                cold_ms, cold.evaluated,
                static_cast<unsigned long long>(cold_sims),
                cold.frontier.size());
    std::printf("warm lookup    : %8.3f ms  (%.0fx faster, 0 sims)\n",
                warm_ms, warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
    std::printf("fresh re-search: %8.1f ms\n", fresh_ms);

    if (json_path != nullptr) {
        std::FILE *f = std::fopen(json_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path);
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"benchmark\": \"tuner\",\n"
            "  \"best_spec\": \"%s\",\n"
            "  \"best_makespan_ms\": %.6f,\n"
            "  \"evaluated_specs\": %zu,\n"
            "  \"frontier_size\": %zu,\n"
            "  \"cold_sims\": %llu,\n"
            "  \"cold_search_ms\": %.3f,\n"
            "  \"warm_lookup_ms\": %.6f,\n"
            "  \"fresh_research_ms\": %.3f\n"
            "}\n",
            cold.best.c_str(), cold.bestMakespanMs, cold.evaluated,
            cold.frontier.size(),
            static_cast<unsigned long long>(cold_sims), cold_ms, warm_ms,
            fresh_ms);
        std::fclose(f);
        std::printf("wrote %s\n", json_path);
    }
    return 0;
}
